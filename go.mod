module resilientft

go 1.22
