// Command resilientd runs one replica of a fault-tolerant application
// over real TCP: the daemon a deployment starts on each of the two hosts.
//
// Start a primary and a backup:
//
//	resilientd -listen 127.0.0.1:7001 -peer 127.0.0.1:7002 -role master -ftm pbr &
//	resilientd -listen 127.0.0.1:7002 -peer 127.0.0.1:7001 -role slave  -ftm pbr &
//
// Then drive it with ftmctl (status, transitions, application calls).
//
// With -shards N each daemon hosts N independent replica groups
// ("0".."N-1", systems "<system>-0".."<system>-N-1") behind the same
// listener; group-stamped requests (rpc routing tier, ftmctl -group)
// reach their shard, and `ftmctl shards` lists the roster:
//
//	resilientd -listen 127.0.0.1:7001 -peer 127.0.0.1:7002 -role master -shards 4 &
//	resilientd -listen 127.0.0.1:7002 -peer 127.0.0.1:7001 -role slave  -shards 4 &
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/mgmt"
	"resilientft/internal/rpc"
	"resilientft/internal/slo"
	"resilientft/internal/stablestore"
	"resilientft/internal/telemetry"
	"resilientft/internal/telemetry/runtimeprof"
	"resilientft/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		listen      = flag.String("listen", "127.0.0.1:7001", "address to listen on")
		peer        = flag.String("peer", "", "peer replica address (empty for single-host FTMs)")
		members     = flag.String("members", "", "comma-separated full membership for multi-replica groups (rank order, master first)")
		system      = flag.String("system", "calc", "protected application name")
		ftmFlag     = flag.String("ftm", "pbr", "initial FTM (pbr, lfr, tr, pbr_tr, lfr_tr, a_pbr, a_lfr)")
		role        = flag.String("role", "master", "initial role (master or slave)")
		storePath   = flag.String("store", "", "stable-storage file (empty = in-memory)")
		heartbeat   = flag.Duration("heartbeat", 100*time.Millisecond, "heartbeat interval")
		suspect     = flag.Duration("suspect", 500*time.Millisecond, "peer suspicion timeout")
		httpAddr    = flag.String("http", "", "observability HTTP address serving /metrics, /events, /trace/{id}, /blackbox, /health, /slo and /debug/pprof (empty = disabled)")
		healthEvery = flag.Duration("health-interval", time.Second, "host health sweep interval")
		sample      = flag.Uint64("trace-sample", telemetry.DefaultSampleEvery, "span sampling: record 1 in N requests (0 = off, 1 = all)")
		boxPath     = flag.String("blackbox", "", "flight-recorder incident file, JSON lines (empty = in-memory only)")
		shards      = flag.Int("shards", 1, "independent replica groups hosted by this daemon")
		sloOn       = flag.Bool("slo", true, "evaluate per-shard SLOs (burn rates, /slo, breach capture)")
		sloP99      = flag.Duration("slo-latency-p99", 50*time.Millisecond, "per-shard latency objective (p99)")
		sloAvail    = flag.Float64("slo-availability", 0.999, "per-shard availability objective")
		sloEvery    = flag.Duration("slo-interval", time.Second, "SLO evaluation tick")
		sloDegrade  = flag.Bool("slo-degrade", false, "let paging shards degrade this replica's FTM (and recover with hysteresis)")
	)
	flag.Parse()

	if _, err := core.Lookup(core.ID(*ftmFlag)); err != nil {
		return err
	}
	ep, err := transport.ListenTCP(*listen)
	if err != nil {
		return err
	}
	defer ep.Close()

	// Tracing + flight recorder: the span sampler is process-wide, the
	// recorder continuously folds events/spans/metrics into its black-box
	// window and persists a snapshot on incidents (suspicion, role
	// changes, panics).
	telemetry.DefaultSampler().SetEvery(*sample)
	telemetry.DefaultSpans().SetOrigin(*listen)
	fr := telemetry.DefaultFlightRecorder()
	var incidents stablestore.IncidentLog
	if *boxPath != "" {
		incidents = stablestore.NewFileIncidentLog(*boxPath)
		fr.SetPersist(func(b telemetry.BlackBox) {
			data, err := json.Marshal(b)
			if err != nil {
				log.Printf("blackbox marshal: %v", err)
				return
			}
			rec := stablestore.IncidentRecord{
				Time: b.Time, Reason: b.Reason, Origin: b.Origin, Data: data,
			}
			if err := incidents.Append(rec); err != nil {
				log.Printf("blackbox persist: %v", err)
			}
		})
	}
	fr.Start(time.Second)
	defer fr.Stop()

	// Export the runtime's own shape (goroutines, heap, GC pauses,
	// scheduling latency) alongside the request-path series: refreshed
	// on every scrape, folded into black boxes like any other series.
	runtimeprof.Enable(telemetry.Default())

	var opts []host.Option
	if *storePath != "" {
		opts = append(opts, host.WithStore(stablestore.NewFileStore(*storePath)))
	}
	h, err := host.NewWithEndpoint(string(ep.Addr()), ep, ftm.NewRegistry(), opts...)
	if err != nil {
		return err
	}
	// Sweep the graded health collectors continuously; the sweep runs
	// off the request path and feeds /health, mgmt health queries and
	// the host_health* series.
	h.Health().Start(*healthEvery)
	defer h.Health().Stop()

	var memberList []transport.Address
	if *members != "" {
		for _, m := range strings.Split(*members, ",") {
			m = strings.TrimSpace(m)
			if m != "" {
				memberList = append(memberList, transport.Address(m))
			}
		}
	}

	ctx := context.Background()
	if *shards < 1 {
		*shards = 1
	}
	// One group is the classic unsharded daemon (empty group ID, bare
	// system name); N groups share this endpoint behind the group mux,
	// each its own replica with its own detector, batcher and reply log.
	srv := mgmt.NewServer(ep)
	engine := adaptation.NewEngine(nil)
	replicas := make([]*ftm.Replica, 0, *shards)
	for k := 0; k < *shards; k++ {
		sysName, gid := *system, ""
		if *shards > 1 {
			gid = fmt.Sprintf("%d", k)
			sysName = fmt.Sprintf("%s-%s", *system, gid)
		}
		name := sysName
		replica, err := ftm.NewReplica(ctx, h, ftm.ReplicaConfig{
			System:            sysName,
			Group:             gid,
			FTM:               core.ID(*ftmFlag),
			Role:              core.Role(*role),
			Peer:              transport.Address(*peer),
			Members:           memberList,
			App:               ftm.NewCalculator(),
			HeartbeatInterval: *heartbeat,
			SuspectTimeout:    *suspect,
		}, ftm.WithEventHook(func(e string) {
			log.Printf("[%s] %s", name, e)
		}))
		if err != nil {
			return err
		}
		replicas = append(replicas, replica)
		srv.Register(replica, engine)
	}

	// Per-shard SLO engine: burn-rate accounting over the rpc layer's
	// per-shard series, a diagnostic bundle (black box + pprof) on every
	// page-grade breach, and — with -slo-degrade — an adaptation reactor
	// per shard that sheds the FTM while the budget burns.
	var sloEng *slo.Engine
	if *sloOn {
		sloEng = slo.New(slo.Config{
			Registry: telemetry.Default(),
			Interval: *sloEvery,
			Capture:  slo.NewCapture(fr, incidents, 0),
		})
		objective := slo.Objective{LatencyP99: *sloP99, Availability: *sloAvail}
		for _, r := range replicas {
			sloEng.SetObjective(rpc.ShardLabel(r.Group()), objective)
		}
		sloEng.Start()
		defer sloEng.Stop()
		srv.SetSLO(sloEng)
		if *sloDegrade {
			mgr := adaptation.NewShardManager(engine)
			for _, r := range replicas {
				mgr.ManageSLOReplica(r, sloEng, adaptation.SLOPolicy{Interval: *sloEvery})
			}
			mgr.StartAll()
			defer mgr.StopAll()
		}
	}

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("observability listen %s: %w", *httpAddr, err)
		}
		handlerOpts := []telemetry.HandlerOption{
			telemetry.WithHealth(func() any { return h.Health().Report() }),
			runtimeprof.PprofHandlers(),
		}
		if sloEng != nil {
			handlerOpts = append(handlerOpts, telemetry.WithSLO(func() any { return sloEng.Report() }))
		}
		srv := &http.Server{Handler: telemetry.Handler(telemetry.Default(), telemetry.DefaultTracer(),
			telemetry.DefaultSpans(), fr, handlerOpts...)}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				log.Printf("observability server: %v", err)
			}
		}()
		defer srv.Close()
		fmt.Printf("resilientd: observability on http://%s/metrics\n", ln.Addr())
	}

	if *shards > 1 {
		fmt.Printf("resilientd: %s x%d shards %s/%s listening on %s (peer %s)\n",
			*system, *shards, *ftmFlag, *role, ep.Addr(), *peer)
	} else {
		fmt.Printf("resilientd: %s %s/%s listening on %s (peer %s)\n",
			*system, *ftmFlag, *role, ep.Addr(), *peer)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	<-sigs
	fmt.Println("resilientd: shutting down")
	h.Crash()
	return nil
}
