// Command ftmctl inspects and drives resilientd replicas over their
// management plane.
//
//	ftmctl -target 127.0.0.1:7001 status
//	ftmctl -target 127.0.0.1:7001 shards
//	ftmctl -target 127.0.0.1:7001 -group 1 status
//	ftmctl -target 127.0.0.1:7001 arch
//	ftmctl -target 127.0.0.1:7001 -peer 127.0.0.1:7002 transition lfr
//	ftmctl -target 127.0.0.1:7001 invoke add:x 5
//	ftmctl -target 127.0.0.1:7001 health
//	ftmctl -target 127.0.0.1:7001 slo
//	ftmctl -target 127.0.0.1:7001 metrics
//	ftmctl -target 127.0.0.1:7001 events
//	ftmctl -target 127.0.0.1:7001 trace <16-hex-id>
//	ftmctl -target 127.0.0.1:7001 blackbox
//	ftmctl -target 127.0.0.1:7001 tune accumWindow -1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/mgmt"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		target = flag.String("target", "127.0.0.1:7001", "replica to address")
		peer   = flag.String("peer", "", "second replica (transitions apply to both)")
		group  = flag.String("group", "", "replica group (shard) to address on a sharded daemon")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		return fmt.Errorf("usage: ftmctl [-target addr] [-peer addr] [-group id] status|shards|arch|health|slo|metrics|events|blackbox|trace <id>|transition <ftm>|invoke <op> <arg>|tune <name> <value>")
	}

	ep, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer ep.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	targets := []transport.Address{transport.Address(*target)}
	if *peer != "" {
		targets = append(targets, transport.Address(*peer))
	}

	switch args[0] {
	case "status":
		for _, addr := range targets {
			st, err := mgmt.QueryStatus(ctx, ep, addr, *group)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			label := ""
			if st.Group != "" {
				label = " group=" + st.Group
			}
			fmt.Printf("%s: system=%s%s ftm=%s role=%s\n", st.Host, st.System, label, st.FTM, st.Role)
			fmt.Printf("  scheme: before=%s proceed=%s after=%s\n",
				st.Scheme.Before, st.Scheme.Proceed, st.Scheme.After)
			for _, e := range st.Events {
				fmt.Printf("  event: %s\n", e)
			}
		}
	case "shards":
		for _, addr := range targets {
			rows, err := mgmt.QueryShards(ctx, ep, addr)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			if len(targets) > 1 {
				fmt.Printf("# %s\n", addr)
			}
			for _, row := range rows {
				line := fmt.Sprintf("shard %-4s system=%s host=%s ftm=%s role=%s health=%s",
					row.Group, row.System, row.Host, row.FTM, row.Role, row.Health)
				if row.SLO != "" {
					line += " slo=" + row.SLO
				}
				fmt.Println(line)
			}
		}
	case "slo":
		for _, addr := range targets {
			doc, err := mgmt.QuerySLO(ctx, ep, addr)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			var rows []struct {
				Shard     string `json:"shard"`
				Objective struct {
					LatencyP99   time.Duration `json:"latency_p99_ns"`
					Availability float64       `json:"availability"`
				} `json:"objective"`
				Grade   string `json:"grade"`
				Windows []struct {
					Window     string  `json:"window"`
					Total      uint64  `json:"total"`
					Bad        uint64  `json:"bad"`
					Burn       float64 `json:"burn"`
					Compliance float64 `json:"compliance"`
				} `json:"windows"`
				BudgetRemaining float64       `json:"budget_remaining"`
				P99             time.Duration `json:"p99_ns"`
				Captures        uint64        `json:"captures"`
			}
			if err := json.Unmarshal([]byte(doc), &rows); err != nil {
				return fmt.Errorf("%s: bad slo reply: %w", addr, err)
			}
			if len(targets) > 1 {
				fmt.Printf("# %s\n", addr)
			}
			for _, row := range rows {
				fmt.Printf("shard %-8s %-4s p99=%s (objective %s @ %.3f%%) budget=%.1f%% captures=%d\n",
					row.Shard, row.Grade, row.P99, row.Objective.LatencyP99,
					row.Objective.Availability*100, row.BudgetRemaining*100, row.Captures)
				for _, w := range row.Windows {
					fmt.Printf("  %-4s burn=%-8.2f compliance=%.4f (%d/%d bad)\n",
						w.Window, w.Burn, w.Compliance, w.Bad, w.Total)
				}
			}
		}
	case "arch":
		for _, addr := range targets {
			arch, err := mgmt.QueryArchitecture(ctx, ep, addr, *group)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			fmt.Println(arch)
		}
	case "health":
		for _, addr := range targets {
			doc, err := mgmt.QueryHealth(ctx, ep, addr, *group)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			var rep struct {
				Host       string `json:"host"`
				Overall    string `json:"overall"`
				Collectors []struct {
					Name    string `json:"name"`
					Verdict string `json:"verdict"`
					Reason  string `json:"reason"`
				} `json:"collectors"`
				Transitions []struct {
					Time  time.Time `json:"time"`
					From  string    `json:"from"`
					To    string    `json:"to"`
					Cause string    `json:"cause"`
				} `json:"transitions"`
			}
			if err := json.Unmarshal([]byte(doc), &rep); err != nil {
				return fmt.Errorf("%s: bad health reply: %w", addr, err)
			}
			fmt.Printf("%s: %s\n", rep.Host, rep.Overall)
			for _, c := range rep.Collectors {
				fmt.Printf("  %-12s %-10s %s\n", c.Name, c.Verdict, c.Reason)
			}
			for _, tr := range rep.Transitions {
				fmt.Printf("  flip %s %s->%s (%s)\n",
					tr.Time.Format(time.RFC3339), tr.From, tr.To, tr.Cause)
			}
		}
	case "metrics":
		for _, addr := range targets {
			text, err := mgmt.QueryMetrics(ctx, ep, addr)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			if len(targets) > 1 {
				fmt.Printf("# %s\n", addr)
			}
			fmt.Print(text)
		}
	case "events":
		kind := ""
		if len(args) > 1 {
			kind = args[1]
		}
		for _, addr := range targets {
			events, err := mgmt.QueryEvents(ctx, ep, addr, kind, 0)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			if len(targets) > 1 {
				fmt.Printf("# %s\n", addr)
			}
			for _, e := range events {
				fmt.Printf("%6d %s %s/%s", e.Seq, e.Time.Format(time.RFC3339Nano), e.Kind, e.Name)
				if e.Dur > 0 {
					fmt.Printf(" dur=%s", e.Dur)
				}
				for k, v := range e.Attrs {
					fmt.Printf(" %s=%s", k, v)
				}
				fmt.Println()
			}
		}
	case "trace":
		if len(args) < 2 {
			return fmt.Errorf("usage: ftmctl trace <16-hex-id>")
		}
		for _, addr := range targets {
			doc, err := mgmt.QueryTrace(ctx, ep, addr, args[1])
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			if len(targets) > 1 {
				fmt.Printf("# %s\n", addr)
			}
			fmt.Println(doc)
		}
	case "blackbox":
		for _, addr := range targets {
			doc, err := mgmt.QueryBlackbox(ctx, ep, addr)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			if len(targets) > 1 {
				fmt.Printf("# %s\n", addr)
			}
			fmt.Println(doc)
		}
	case "transition":
		if len(args) < 2 {
			return fmt.Errorf("usage: ftmctl transition <ftm>")
		}
		to := core.ID(args[1])
		if _, err := core.Lookup(to); err != nil {
			return err
		}
		for _, addr := range targets {
			out, err := mgmt.RequestTransition(ctx, ep, addr, *group, to)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			fmt.Printf("%s: %s -> %s replaced %v (deploy %dµs, script %dµs, remove %dµs)\n",
				addr, out.From, out.To, out.Replaced, out.DeployUS, out.ScriptUS, out.RemoveUS)
		}
	case "tune":
		if len(args) < 3 {
			return fmt.Errorf("usage: ftmctl tune maxWave|accumWindow|accumTarget <value>")
		}
		value, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", args[2], err)
		}
		for _, addr := range targets {
			echo, err := mgmt.RequestTune(ctx, ep, addr, *group, args[1], value)
			if err != nil {
				return fmt.Errorf("%s: %w", addr, err)
			}
			fmt.Printf("%s: %s\n", addr, echo)
		}
	case "invoke":
		if len(args) < 3 {
			return fmt.Errorf("usage: ftmctl invoke <op> <arg>")
		}
		arg, err := strconv.ParseInt(args[2], 10, 64)
		if err != nil {
			return fmt.Errorf("bad argument %q: %w", args[2], err)
		}
		// Each ftmctl run is a fresh client: a unique identity keeps the
		// service's at-most-once reply log from replaying an earlier
		// process's requests. Always-trace makes the single invocation
		// sampled, so `ftmctl trace` can read it back afterwards.
		clientID := fmt.Sprintf("ftmctl-%d-%d", os.Getpid(), time.Now().UnixNano())
		opts := []rpc.ClientOption{rpc.WithAlwaysTrace()}
		if *group != "" {
			opts = append(opts, rpc.WithGroup(*group))
		}
		client := rpc.NewClient(clientID, ep, targets, opts...)
		resp, err := client.Invoke(ctx, args[1], ftm.EncodeArg(arg))
		if err != nil {
			return err
		}
		v, err := ftm.DecodeResult(resp.Payload)
		if err != nil {
			return err
		}
		fmt.Printf("%s %d -> %d\n", args[1], arg, v)
		fmt.Printf("trace %016x\n", telemetry.TraceIDFor(clientID, resp.Seq))
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
	return nil
}
