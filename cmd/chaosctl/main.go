// Command chaosctl runs deterministic chaos campaigns against an
// in-process two-replica system: scenario x seed matrices of
// adversarial programs (asymmetric partitions, gray links, clock skew,
// storage faults, wire corruption, churn during fscript transitions)
// with a post-run audit of the reply-release, exactly-once and
// trace-continuity invariants.
//
//	chaosctl -list
//	chaosctl                                  # full builtin matrix, seeds 1,2
//	chaosctl -scenario churn-mid-transition -seeds 1,2,3,4
//	chaosctl -seeds 7 -json > report.json
//	chaosctl -blackbox /tmp/boxes             # dump evidence per violation
//	chaosctl -scenario gray-peer -v           # replica events to stderr
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"resilientft/internal/chaos"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list builtin scenarios and exit")
		scenario = flag.String("scenario", "", "run one scenario by name (default: all builtins)")
		seeds    = flag.String("seeds", "1,2", "comma-separated seeds; each scenario runs once per seed")
		jsonOut  = flag.Bool("json", false, "emit the campaign report as JSON on stdout")
		boxDir   = flag.String("blackbox", "", "directory to write per-violation black boxes into")
		verbose  = flag.Bool("v", false, "stream replica life-cycle events to stderr")
		timeout  = flag.Duration("timeout", 10*time.Minute, "bound on the whole campaign")
	)
	flag.Parse()

	if *list {
		for _, s := range chaos.Builtins() {
			fmt.Printf("%-40s %s\n", s.Name, s.Description)
		}
		return nil
	}

	cfg := chaos.CampaignConfig{}
	if *scenario != "" {
		s, ok := chaos.FindScenario(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try -list)", *scenario)
		}
		cfg.Scenarios = []chaos.Scenario{s}
	}
	for _, f := range strings.Split(*seeds, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		seed, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", f, err)
		}
		cfg.Seeds = append(cfg.Seeds, seed)
	}
	if *verbose {
		cfg.Options.EventHook = func(host, event string) {
			fmt.Fprintf(os.Stderr, "event %-8s %s\n", host, event)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	report, err := chaos.RunCampaign(ctx, cfg)
	if err != nil {
		return err
	}

	if *boxDir != "" {
		if err := writeBoxes(*boxDir, report); err != nil {
			return err
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		printReport(report)
	}
	if !report.Pass {
		os.Exit(1)
	}
	return nil
}

func printReport(report *chaos.CampaignReport) {
	for _, v := range report.Runs {
		status := "PASS"
		if !v.Pass {
			status = "FAIL"
		}
		fmt.Printf("%s %-40s seed %-3d attempts=%d acked=%d failed=%d final=%d elapsed=%s\n",
			status, v.Scenario, v.Seed, v.Attempts, v.Acked, v.Failed, v.FinalValue,
			v.Elapsed.Round(time.Millisecond))
		for _, viol := range v.Violations {
			fmt.Printf("     violation [%s] %s\n", viol.Invariant, viol.Detail)
		}
	}
	fmt.Printf("campaign: %d runs, %d violations, %s — pass=%v\n",
		len(report.Runs), report.Violations, report.Elapsed.Round(time.Millisecond), report.Pass)
}

// writeBoxes dumps one JSON file per captured black box — the failure
// artifact CI uploads when a nightly campaign run breaks an invariant.
func writeBoxes(dir string, report *chaos.CampaignReport) error {
	boxes := report.Boxes()
	if len(boxes) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, box := range boxes {
		name := fmt.Sprintf("box-%03d-%s.json", i, sanitize(box.Attrs["scenario"]))
		data, err := json.MarshalIndent(box, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d black boxes to %s\n", len(boxes), dir)
	return nil
}

func sanitize(s string) string {
	if s == "" {
		return "unknown"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}
