// Command benchsuite regenerates the paper's evaluation artifacts: every
// table and figure, printed in the paper's layout. Running it end to end
// produces the data recorded in EXPERIMENTS.md.
//
//	benchsuite                  # all experiments
//	benchsuite -exp table3      # one experiment
//	benchsuite -runs 100        # the paper's repetition count
//	benchsuite -exp bench -json BENCH.json   # request-path perf as JSON
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"resilientft/internal/experiments"
	"resilientft/internal/telemetry"
	"resilientft/internal/telemetry/runtimeprof"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: table1|table2|table3|fig2|fig4|fig5|fig6|fig8|fig9|agility|sweep|ablation|bench|all")
		runs     = flag.Int("runs", 100, "repetitions per timed measurement (the paper uses 100)")
		root     = flag.String("root", ".", "repository root (for the SLOC figures)")
		jsonPath = flag.String("json", "", "with -exp bench: write the perf report JSON to this file (stdout when empty)")
		metrics  = flag.Bool("metrics", false, "with -exp bench: embed the flattened telemetry registry in the report")
		shards   = flag.Int("shards", 4, "with -exp bench: measure routed throughput over N replica groups, plus the 1-group parity row (0 = skip the sharded family)")
		sloOn    = flag.Bool("slo", true, "with -exp bench: run the SLO evaluator alongside the suite and embed its report")
	)
	flag.Parse()
	ctx := context.Background()
	// The runtime series ride along in -metrics reports and in RunMeta,
	// same as under resilientd.
	runtimeprof.Enable(telemetry.Default())

	switch *exp {
	case "table1", "table2", "table3", "fig2", "fig4", "fig5", "fig6", "fig8", "fig9",
		"agility", "sweep", "ablation", "bench", "all":
	default:
		log.Fatalf("unknown experiment %q (see -exp in -help)", *exp)
	}

	want := func(name string) bool { return *exp == "all" || *exp == name }
	section := func(title string) {
		fmt.Println(strings.Repeat("=", 78))
		fmt.Println(title)
		fmt.Println(strings.Repeat("=", 78))
	}

	if want("table1") {
		section("Table 1 — (FT, A, R) characteristics")
		fmt.Println(experiments.Table1())
	}
	if want("table2") {
		section("Table 2 — generic execution schemes (live-derived)")
		out, err := experiments.Table2(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
	if want("fig2") {
		section("Figure 2 — transition graph")
		fmt.Println(experiments.Fig2())
	}
	if want("fig8") {
		section("Figure 8 — extended scenario graph")
		fmt.Println(experiments.Fig8())
	}
	if want("fig6") {
		section("Figure 6 — PBR component architecture")
		out, err := experiments.Fig6(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(out)
	}
	if want("table3") {
		section("Table 3 — deployment vs differential transition times")
		res, err := experiments.Table3(ctx, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
		fmt.Println("mean transition by components replaced:")
		byDiff := res.TransitionByDiffSize()
		for n := 1; n <= 3; n++ {
			fmt.Printf("  %d component(s): %v\n", n, byDiff[n])
		}
		fmt.Println()
	}
	if want("fig9") {
		section("Figure 9 — transition time breakdown")
		rows, err := experiments.Fig9(ctx, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderFig9(rows))
	}
	if want("fig5") {
		section("Figure 5 — SLOC per fault-tolerance pattern")
		rows, err := experiments.Fig5(*root)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderFig5(rows))
		summary, err := experiments.SLOCSummary(*root)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(summary)
	}
	if want("fig4") {
		section("Figure 4 (substitution) — framework reuse per FTM")
		rows, err := experiments.Fig4(*root)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderFig4(rows))
	}
	if want("agility") {
		section("§6.2 — agility vs preprogrammed adaptation")
		res, err := experiments.Agility(ctx, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
	}
	if want("sweep") {
		section("Extra — state-size sweep (PBR vs LFR request latency)")
		points, err := experiments.StateSweep(ctx, []int{8, 64, 512, 2048, 8192}, 50)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.RenderSweep(points))
	}
	if *exp == "bench" {
		// Deliberately not part of "all": the perf suite is the
		// machine-readable request-path report (BENCH_pr1.json), not one
		// of the paper's artifacts.
		report, err := experiments.PerfSuite(ctx, *runs, *shards, *sloOn)
		if err != nil {
			log.Fatal(err)
		}
		if *metrics {
			report.Telemetry = telemetry.Default().Flatten()
		}
		data, err := report.JSON()
		if err != nil {
			log.Fatal(err)
		}
		if *jsonPath == "" {
			fmt.Println(string(data))
		} else if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		return
	}
	if want("ablation") {
		section("Extra — differential vs monolithic replacement ablation")
		res, err := experiments.AblationDifferential(ctx, *runs)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(res.Render())
	}
}
