package resilientft

// The benchmarks in this file regenerate the paper's quantitative
// artifacts under `go test -bench`: one benchmark family per evaluation
// table/figure. cmd/benchsuite prints the same data in the paper's
// layout; EXPERIMENTS.md records representative outputs.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/experiments"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/preprog"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
	"resilientft/internal/workload"
)

// newSoloReplica deploys a single replica with a quiet failure detector,
// the unit the paper times ("the time corresponding to one replica").
func newSoloReplica(tb testing.TB, name string, id core.ID) (*ftm.Replica, *host.Host) {
	tb.Helper()
	net := transport.NewMemNetwork(transport.WithSeed(1))
	h, err := host.New(name, net, ftm.NewRegistry())
	if err != nil {
		tb.Fatal(err)
	}
	r, err := ftm.NewReplica(context.Background(), h, ftm.ReplicaConfig{
		System:            "bench",
		FTM:               id,
		Role:              core.RoleMaster,
		App:               ftm.NewCalculator(),
		HeartbeatInterval: time.Hour,
		SuspectTimeout:    24 * time.Hour,
	})
	if err != nil {
		h.Crash()
		tb.Fatal(err)
	}
	return r, h
}

// BenchmarkTable3Deploy measures from-scratch FTM deployment — the first
// row of Table 3.
func BenchmarkTable3Deploy(b *testing.B) {
	for _, id := range core.DeployableSet() {
		b.Run(string(id), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, h := newSoloReplica(b, fmt.Sprintf("d-%s-%d", id, i), id)
				h.Crash()
			}
		})
	}
}

// BenchmarkTable3Transition measures every differential transition of the
// Table 3 matrix.
func BenchmarkTable3Transition(b *testing.B) {
	engine := adaptation.NewEngine(nil)
	for _, from := range core.DeployableSet() {
		for _, to := range core.DeployableSet() {
			if from == to {
				continue
			}
			b.Run(fmt.Sprintf("%s_to_%s", from, to), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					r, h := newSoloReplica(b, fmt.Sprintf("t-%s-%s-%d", from, to, i), from)
					b.StartTimer()
					report := engine.TransitionReplica(context.Background(), r, to)
					b.StopTimer()
					if report.Err != nil {
						b.Fatal(report.Err)
					}
					h.Crash()
					b.StartTimer()
				}
			})
		}
	}
}

// BenchmarkFig9 measures the three reference transitions of Figure 9 and
// reports the per-step shares as custom metrics.
func BenchmarkFig9(b *testing.B) {
	cases := []struct {
		name     string
		from, to core.ID
	}{
		{"1component_lfr_to_lfrtr", core.LFR, core.LFRTR},
		{"2components_pbr_to_lfr", core.PBR, core.LFR},
		{"3components_pbr_to_lfrtr", core.PBR, core.LFRTR},
	}
	engine := adaptation.NewEngine(nil)
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var steps adaptation.StepTimings
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				r, h := newSoloReplica(b, fmt.Sprintf("f9-%s-%d", tc.name, i), tc.from)
				b.StartTimer()
				report := engine.TransitionReplica(context.Background(), r, tc.to)
				b.StopTimer()
				if report.Err != nil {
					b.Fatal(report.Err)
				}
				steps.Deploy += report.Steps.Deploy
				steps.Script += report.Steps.Script
				steps.Remove += report.Steps.Remove
				h.Crash()
				b.StartTimer()
			}
			total := float64(steps.Total())
			if total > 0 {
				b.ReportMetric(100*float64(steps.Deploy)/total, "deploy%")
				b.ReportMetric(100*float64(steps.Script)/total, "script%")
				b.ReportMetric(100*float64(steps.Remove)/total, "remove%")
			}
		})
	}
}

// BenchmarkAgility compares the preprogrammed baseline's monolithic
// switch against the agile differential transition (§6.2).
func BenchmarkAgility(b *testing.B) {
	b.Run("preprogrammed_switch", func(b *testing.B) {
		net := transport.NewMemNetwork(transport.WithSeed(1))
		h, err := host.New("pp", net, ftm.NewRegistry())
		if err != nil {
			b.Fatal(err)
		}
		defer h.Crash()
		r, err := preprog.NewReplica(context.Background(), h, "calc",
			ftm.NewCalculator(), []core.ID{core.PBR, core.LFR})
		if err != nil {
			b.Fatal(err)
		}
		targets := []core.ID{core.LFR, core.PBR}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Switch(context.Background(), targets[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("agile_transition", func(b *testing.B) {
		engine := adaptation.NewEngine(nil)
		r, h := newSoloReplica(b, "ag", core.PBR)
		defer h.Crash()
		targets := []core.ID{core.LFR, core.PBR}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			report := engine.TransitionReplica(context.Background(), r, targets[i%2])
			if report.Err != nil {
				b.Fatal(report.Err)
			}
		}
	})
}

// BenchmarkFig5SLOC measures the Figure 5 source analysis itself (the
// figure's data is a static property; see cmd/benchsuite -exp fig5).
func BenchmarkFig5SLOC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig5("."); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRequestLatency measures the client-visible request latency
// under each FTM — the per-mechanism overhead behind Table 1's R row.
func BenchmarkRequestLatency(b *testing.B) {
	for _, id := range core.DeployableSet() {
		b.Run(string(id), func(b *testing.B) {
			sys, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
				System:            "bench",
				FTM:               id,
				HeartbeatInterval: 50 * time.Millisecond,
				SuspectTimeout:    10 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Shutdown()
			client, err := sys.NewClient(rpc.WithCallTimeout(5 * time.Second))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Invoke(context.Background(), "add:x", ftm.EncodeArg(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkThroughput measures aggregate request throughput with N
// concurrent clients against each FTM. Each client writes its own
// register so the clients contend on the request path (transport,
// protocol, reply log, checkpointing), not on application state. The
// req/s metric is the headline number; allocs/op tracks the per-request
// allocation budget of the whole path.
func BenchmarkThroughput(b *testing.B) {
	for _, id := range core.DeployableSet() {
		for _, clients := range []int{1, 8, 32, 64} {
			b.Run(fmt.Sprintf("%s_%dclients", id, clients), func(b *testing.B) {
				sys, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
					System:            "bench",
					FTM:               id,
					HeartbeatInterval: 50 * time.Millisecond,
					SuspectTimeout:    30 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer sys.Shutdown()
				cls := make([]*rpc.Client, clients)
				for i := range cls {
					if cls[i], err = sys.NewClient(rpc.WithCallTimeout(10 * time.Second)); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				var wg sync.WaitGroup
				for ci, c := range cls {
					n := b.N / clients
					if ci < b.N%clients {
						n++
					}
					wg.Add(1)
					go func(c *rpc.Client, op string, n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							if _, err := c.Invoke(context.Background(), op, ftm.EncodeArg(1)); err != nil {
								b.Error(err)
								return
							}
						}
					}(c, fmt.Sprintf("add:r%d", ci), n)
				}
				wg.Wait()
				elapsed := time.Since(start)
				b.StopTimer()
				if elapsed > 0 {
					b.ReportMetric(float64(b.N)/elapsed.Seconds(), "req/s")
				}
			})
		}
	}
}

// BenchmarkStateSweep measures per-request latency under PBR and LFR at
// two state footprints — the extremes of the state-size sweep (PBR ships
// a checkpoint per request; LFR recomputes).
func BenchmarkStateSweep(b *testing.B) {
	for _, id := range []core.ID{core.PBR, core.LFR} {
		for _, registers := range []int{8, 4096} {
			b.Run(fmt.Sprintf("%s_%dregs", id, registers), func(b *testing.B) {
				sys, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
					System:            "bench",
					FTM:               id,
					HeartbeatInterval: 50 * time.Millisecond,
					SuspectTimeout:    30 * time.Second,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer sys.Shutdown()
				client, err := sys.NewClient(rpc.WithCallTimeout(10 * time.Second))
				if err != nil {
					b.Fatal(err)
				}
				gen := workload.New(workload.Config{Seed: 1, Registers: registers, WriteRatio: 1.0})
				for _, op := range gen.Prefill() {
					if _, err := client.Invoke(context.Background(), op.Name, ftm.EncodeArg(op.Arg)); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					op := gen.Next()
					if _, err := client.Invoke(context.Background(), op.Name, ftm.EncodeArg(op.Arg)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkAblationMonolithic measures the monolithic-replacement
// alternative the differential approach beats (the full comparison runs
// in cmd/benchsuite -exp ablation).
func BenchmarkAblationMonolithic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		r, h := newSoloReplica(b, fmt.Sprintf("abm-%d", i), core.PBR)
		rt := h.Runtime()
		b.StartTimer()

		state, err := r.App().StateManager().CaptureState()
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.Stop(context.Background(), r.Path()); err != nil {
			b.Fatal(err)
		}
		cp, err := rt.LookupComposite(r.Path())
		if err != nil {
			b.Fatal(err)
		}
		for _, child := range cp.Components() {
			if err := rt.Stop(context.Background(), r.Path()+"/"+child.Name()); err != nil {
				b.Fatal(err)
			}
		}
		if err := rt.Remove(r.Path()); err != nil {
			b.Fatal(err)
		}
		app := ftm.NewCalculator()
		if err := app.StateManager().RestoreState(state); err != nil {
			b.Fatal(err)
		}
		if _, err := ftm.DeployFTM(context.Background(), h, ftm.ReplicaConfig{
			System:            "bench",
			FTM:               core.LFR,
			Role:              core.RoleMaster,
			App:               app,
			HeartbeatInterval: time.Hour,
			SuspectTimeout:    24 * time.Hour,
		}, nil); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		h.Crash()
		b.StartTimer()
	}
}

// BenchmarkFailover measures crash-to-promotion time: from the master's
// crash until the slave answers as master.
func BenchmarkFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
			System:            "bench",
			FTM:               core.PBR,
			HeartbeatInterval: 5 * time.Millisecond,
			SuspectTimeout:    25 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		slave := sys.Slave()
		b.StartTimer()
		sys.CrashMaster()
		for sys.Master() != slave {
			time.Sleep(100 * time.Microsecond)
		}
		b.StopTimer()
		sys.Shutdown()
		b.StartTimer()
	}
}

// BenchmarkTracing measures the span layer's request-path overhead on
// PBR: sampler off, the default 1-in-100, and recording every request
// (client span, pipeline stage spans, wave ship span, envelope trailer,
// slave apply span). The default-sampled row is the one the acceptance
// bar holds against the untraced PR3 baseline.
func BenchmarkTracing(b *testing.B) {
	for _, tc := range []struct {
		name  string
		every uint64
	}{
		{"pbr_off", 0},
		{"pbr_1pct", telemetry.DefaultSampleEvery},
		{"pbr_100pct", 1},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prev := telemetry.DefaultSampler().Every()
			telemetry.DefaultSampler().SetEvery(tc.every)
			defer telemetry.DefaultSampler().SetEvery(prev)
			sys, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
				System:            "bench",
				FTM:               core.PBR,
				HeartbeatInterval: 50 * time.Millisecond,
				SuspectTimeout:    10 * time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Shutdown()
			client, err := sys.NewClient(rpc.WithCallTimeout(5 * time.Second))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Invoke(context.Background(), "add:x", ftm.EncodeArg(1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
