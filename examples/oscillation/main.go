// Command oscillation demonstrates the stability analysis of §5.4: a
// resource parameter flapping around its reconfiguration threshold must
// not make the system reconfigure itself back and forth. Two mechanisms
// prevent it: the monitoring engine's rules are edge-triggered with
// hysteresis, and the reverse of every mandatory transition is a possible
// one gated by the system manager.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilientft"
	"resilientft/internal/core"
	"resilientft/internal/monitor"
)

func main() {
	ctx := context.Background()
	sys, err := resilientft.NewSystem(ctx, resilientft.SystemConfig{
		System:            "calc",
		FTM:               resilientft.PBR,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    120 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	approvals := 0
	manager := resilientft.ManagerFunc(func(edge resilientft.ScenarioEdge) bool {
		approvals++
		fmt.Printf("   [manager] asked about %s -> %s (request #%d): declining\n",
			edge.From, edge.To, approvals)
		return false
	})
	svc := resilientft.NewResilience(resilientft.ResilienceConfig{
		System:     sys,
		FaultModel: resilientft.NewFaultModel(resilientft.FaultCrash),
		Traits:     resilientft.AppTraits{Deterministic: true, StateAccess: true},
		Manager:    manager,
	})

	res := sys.Hosts()[0].Resources()
	mon := resilientft.NewMonitor(time.Hour, svc.Sink())
	mon.AddProbe(monitor.BandwidthProbe("bw", res))
	mon.AddRule(resilientft.MonitorRule{
		Name: "bw-drop", Probe: "bw", Cond: monitor.Below,
		Threshold: 1000, Consecutive: 3, Trigger: core.TrigBandwidthDrop,
	})
	mon.AddRule(resilientft.MonitorRule{
		Name: "bw-back", Probe: "bw", Cond: monitor.Above,
		Threshold: 2000, Consecutive: 3, Trigger: core.TrigBandwidthIncrease,
	})

	fmt.Println("== bandwidth flaps around the 1000 kbit/s threshold for 30 samples ==")
	samples := []float64{
		900, 1100, 950, 1050, 980, // noise: hysteresis absorbs it
		800, 750, 700, 650, 600, // sustained drop: rule fires once
		900, 2500, 800, 2600, 700, // flapping across both thresholds
		2500, 2600, 2700, 2800, 2900, // sustained recovery: reverse fires once
		900, 850, 800, 750, 700, // sustained drop again
		2500, 2600, 2700, 2800, 2900, // and recovery again
	}
	for i, bw := range samples {
		res.SetBandwidth(bw)
		for _, trig := range mon.Poll() {
			fmt.Printf("   sample %2d (%5.0f kbit/s): trigger %s\n", i, bw, trig)
		}
	}

	transitions := 0
	for _, d := range svc.Decisions() {
		fmt.Println("  ", d)
		if d.Action == "transition-executed" {
			transitions++
		}
	}
	fmt.Printf("== result: %d trigger(s) fired, %d transition(s) executed, %d manager consultation(s) ==\n",
		len(mon.Fired()), transitions, approvals)
	fmt.Printf("   active FTM settled on %s — no oscillation despite 30 flapping samples\n",
		sys.Master().FTM())
}
