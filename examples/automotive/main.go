// Command automotive plays the paper's other motivating scenario:
// over-the-air software updates in a vehicle. Application updates change
// the A characteristics (a new version may lose determinism or state
// access), connectivity changes the R characteristics, and the resilience
// service must keep the attached FTM consistent across all of it — with
// the fleet operator as the man-in-the-loop.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilientft"
	"resilientft/internal/core"
	"resilientft/internal/monitor"
)

func main() {
	ctx := context.Background()

	fmt.Println("== vehicle boots: driving function v1.0 (deterministic) under LFR ==")
	sys, err := resilientft.NewSystem(ctx, resilientft.SystemConfig{
		System:            "drivefn",
		FTM:               resilientft.LFR,
		HostNames:         [2]string{"ecu-1", "ecu-2"},
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    120 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	operatorApproves := true
	operator := resilientft.ManagerFunc(func(edge resilientft.ScenarioEdge) bool {
		fmt.Printf("   [fleet-ops] possible transition %s -> %s: approve=%v\n",
			edge.From, edge.To, operatorApproves)
		return operatorApproves
	})
	svc := resilientft.NewResilience(resilientft.ResilienceConfig{
		System:     sys,
		FaultModel: resilientft.NewFaultModel(resilientft.FaultCrash),
		Traits:     resilientft.AppTraits{Deterministic: true, StateAccess: true, Version: "v1.0"},
		Manager:    operator,
	})

	// Connectivity monitoring on the telematics link.
	link := sys.Hosts()[0].Resources()
	mon := resilientft.NewMonitor(time.Hour, svc.Sink())
	mon.AddProbe(monitor.BandwidthProbe("telematics", link))
	mon.AddRule(resilientft.MonitorRule{
		Name: "tunnel", Probe: "telematics",
		Cond: monitor.Below, Threshold: 1000, Consecutive: 2,
		Trigger: core.TrigBandwidthDrop,
	})

	client, err := sys.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	drive := func(op string, arg int64) {
		resp, err := client.Invoke(ctx, op, resilientft.EncodeArg(arg))
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		v, _ := resilientft.DecodeResult(resp.Payload)
		fmt.Printf("   %s %d -> %d\n", op, arg, v)
	}
	state := func() {
		m := sys.Master()
		ft, traits, _ := svc.Model()
		fmt.Printf("   FTM=%s  FT=%s  A=%s\n", m.FTM(), ft, traits)
	}

	drive("set:speed-setpoint", 110)
	state()

	fmt.Println("== OTA update v2.0: the new planner is non-deterministic ==")
	d := svc.HandleTrigger(ctx, core.TrigAppNonDeterminism)
	fmt.Println("   decision:", d)
	state()
	drive("add:speed-setpoint", 10)

	fmt.Println("== the car enters a long tunnel: telematics bandwidth collapses ==")
	link.SetBandwidth(200)
	mon.Poll()
	mon.Poll() // hysteresis satisfied on the second sample
	d = lastDecision(svc)
	fmt.Println("   decision:", d)
	if len(d.Inconsistencies) > 0 {
		fmt.Println("   WARNING — deployed FTM inconsistent with (FT,A,R):")
		for _, inc := range d.Inconsistencies {
			fmt.Println("     -", inc)
		}
		fmt.Println("   (PBR needs bandwidth, LFR needs determinism: v2.0 has no generic solution here)")
	}

	fmt.Println("== hotfix v2.1 restores determinism; fleet-ops approves moving to LFR ==")
	d = svc.HandleTrigger(ctx, core.TrigAppDeterminism)
	fmt.Println("   decision:", d)
	state()
	drive("add:speed-setpoint", 5)

	fmt.Println("== tunnel exit: bandwidth back; fleet-ops declines churning back to PBR ==")
	link.SetBandwidth(50_000)
	operatorApproves = false
	d = svc.HandleTrigger(ctx, core.TrigBandwidthIncrease)
	fmt.Println("   decision:", d)
	state()

	fmt.Println("== decision log ==")
	for _, dec := range svc.Decisions() {
		fmt.Println("   ", dec)
	}
}

func lastDecision(svc *resilientft.Resilience) resilientft.Decision {
	ds := svc.Decisions()
	return ds[len(ds)-1]
}
