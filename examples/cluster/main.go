// Command cluster demonstrates the multi-replica variant the paper
// sketches ("we could also consider multiple Backups or Followers"): a
// PBR group with one primary and two backups. Checkpoints broadcast to
// every backup; when the primary crashes, the backups take over with
// rank-staggered delays so exactly one survivor promotes, and the group
// survives a second crash in master-alone mode.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilientft"
	"resilientft/internal/rpc"
)

func main() {
	ctx := context.Background()

	fmt.Println("== boot: PBR group of 3 (node0 primary, node1 and node2 backups) ==")
	cluster, err := resilientft.NewCluster(ctx, resilientft.ClusterConfig{
		System:            "ledger",
		FTM:               resilientft.PBR,
		Replicas:          3,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    120 * time.Millisecond,
		EventHook: func(host, event string) {
			fmt.Printf("   [%s] %s\n", host, event)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Shutdown()

	client, err := cluster.NewClient(rpc.WithCallTimeout(2*time.Second), rpc.WithMaxRounds(30))
	if err != nil {
		log.Fatal(err)
	}
	invoke := func(op string, arg int64) int64 {
		resp, err := client.Invoke(ctx, op, resilientft.EncodeArg(arg))
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		v, _ := resilientft.DecodeResult(resp.Payload)
		fmt.Printf("   %s %d -> %d\n", op, arg, v)
		return v
	}

	invoke("set:balance", 1000)
	invoke("add:balance", 250)

	fmt.Println("== both backups converge through broadcast checkpoints ==")
	time.Sleep(100 * time.Millisecond)
	for _, b := range cluster.LiveBackups() {
		fmt.Printf("   backup %s is synchronized\n", b.Host().Name())
	}

	fmt.Println("== crash the primary: rank-staggered takeover ==")
	cluster.CrashMaster()
	waitForMaster(cluster)
	fmt.Printf("   new primary: %s (%d backup(s) left)\n",
		cluster.Master().Host().Name(), len(cluster.LiveBackups()))
	invoke("get:balance", 0)
	invoke("add:balance", 50)

	fmt.Println("== crash the second primary: the last survivor carries on alone ==")
	cluster.CrashMaster()
	waitForMaster(cluster)
	fmt.Printf("   new primary: %s (master-alone)\n", cluster.Master().Host().Name())
	invoke("get:balance", 0)
	invoke("add:balance", 25)
	fmt.Println("done: two primary crashes, zero lost state.")
}

func waitForMaster(c *resilientft.Cluster) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Master() != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	log.Fatal("no master emerged")
}
