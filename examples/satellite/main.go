// Command satellite plays the paper's motivating scenario for long-lived
// space systems: a satellite launched with one fault tolerance mechanism
// must evolve over a mission in which radiation ages its hardware,
// critical phases demand stronger fault models, and ground control
// uplinks transition packages that did not exist at launch.
//
// The full resilience loop runs: an error observer feeds the Monitoring
// Engine, whose triggers drive the Resilience Management Service; ground
// control is the man-in-the-loop for possible transitions; the Adaptation
// Engine executes differential transitions on both replicas.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilientft"
	"resilientft/internal/core"
	"resilientft/internal/faultinject"
	"resilientft/internal/monitor"
)

func main() {
	ctx := context.Background()

	fmt.Println("== launch: flight software under LFR on the two onboard computers ==")
	inj := faultinject.NewValueInjector(2026)
	onMaster := true
	sys, err := resilientft.NewSystem(ctx, resilientft.SystemConfig{
		System: "flightsw",
		FTM:    resilientft.LFR,
		AppFactory: func() resilientft.Application {
			calc := resilientft.NewCalculator()
			if onMaster {
				calc.SetInjector(inj) // OBC-A is the one that will age
				onMaster = false
			}
			return calc
		},
		HostNames:         [2]string{"obc-a", "obc-b"},
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    120 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	repo := resilientft.NewRepository()
	engine := resilientft.NewEngine(repo)

	// Ground control approves possible transitions explicitly.
	groundApproves := false
	ground := resilientft.ManagerFunc(func(edge resilientft.ScenarioEdge) bool {
		fmt.Printf("   [ground] possible transition %s -> %s: approve=%v\n", edge.From, edge.To, groundApproves)
		return groundApproves
	})
	svc := resilientft.NewResilience(resilientft.ResilienceConfig{
		System:     sys,
		Engine:     engine,
		FaultModel: resilientft.NewFaultModel(resilientft.FaultCrash),
		Traits:     resilientft.AppTraits{Deterministic: true, StateAccess: true, Version: "fsw-1.0"},
		Manager:    ground,
	})

	// The monitoring engine watches the single-event-upset counter.
	seu := monitor.NewErrorObserver("seu-counter", time.Minute)
	mon := resilientft.NewMonitor(time.Hour, svc.Sink()) // polled manually at telemetry passes
	mon.AddProbe(seu)
	mon.AddRule(resilientft.MonitorRule{
		Name: "radiation-aging", Probe: "seu-counter",
		Cond: monitor.Above, Threshold: 3,
		Trigger: core.TrigHardwareAging,
	})

	client, err := sys.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	invoke := func(op string, arg int64) int64 {
		resp, err := client.Invoke(ctx, op, resilientft.EncodeArg(arg))
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		v, _ := resilientft.DecodeResult(resp.Payload)
		return v
	}
	report := func() {
		m := sys.Master()
		fmt.Printf("   active FTM: %s (master on %s)\n", m.FTM(), m.Host().Name())
	}

	fmt.Println("== cruise: routine telemetry processing ==")
	invoke("set:wheel-momentum", 120)
	invoke("add:wheel-momentum", 15)
	report()

	fmt.Println("== year 3: SEU counter rises — radiation is aging OBC-A ==")
	for i := 0; i < 5; i++ {
		seu.Report()
	}
	mon.Poll() // telemetry pass: the aging trigger fires
	fmt.Println("   trigger handled:", last(svc))
	report()
	fmt.Println("   transient value faults are now masked by time redundancy:")
	inj.InjectTransient(1)
	fmt.Printf("   add:wheel-momentum 5 -> %d (fault injected and masked)\n", invoke("add:wheel-momentum", 5))

	fmt.Println("== orbit insertion: ground declares a more critical phase (proactive) ==")
	d := svc.HandleTrigger(ctx, core.TrigCriticalPhase)
	fmt.Println("   trigger handled:", d)
	report()
	fmt.Println("   the assertion-checked duplex also covers permanent faults:")
	inj.SetPermanent(true)
	for i := 0; i < 4; i++ {
		fmt.Printf("   add:wheel-momentum 1 -> %d (OBC-A asserts, OBC-B re-executes)\n", invoke("add:wheel-momentum", 1))
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := sys.Master(); m != nil && m.Host().Name() == "obc-b" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("   OBC-A fell silent after persistent assertion failures; master now on %s\n",
		sys.Master().Host().Name())

	fmt.Println("== insertion complete: ground weighs relaxing the fault model ==")
	groundApproves = false
	d = svc.HandleTrigger(ctx, core.TrigLessCriticalPhase)
	fmt.Println("   trigger handled:", d, "(ground declines: aging persists)")
	report()

	fmt.Println("== year 5: ground uplinks a transition package developed after launch ==")
	// The package for A&PBR -> LFR⊕TR (science mode with time redundancy)
	// was developed and validated on the ground, then uplinked.
	for _, role := range []core.Role{core.RoleMaster, core.RoleSlave} {
		pkg, err := resilientft.BuildTransitionPackage("flightsw", resilientft.APBR, resilientft.LFRTR, role)
		if err != nil {
			log.Fatal(err)
		}
		repo.Upload("flightsw", pkg)
	}
	fmt.Printf("   uplinked; repository synthesized %d packages so far, uplinked ones take precedence\n", repo.Builds())
	groundApproves = true
	inj.SetPermanent(false)
	d = svc.HandleTrigger(ctx, core.TrigStateAccess) // A&Duplex -> LFR⊕TR (possible, approved)
	fmt.Println("   trigger handled:", d)
	report()
	fmt.Printf("   science continues: get:wheel-momentum -> %d\n", invoke("get:wheel-momentum", 0))

	fmt.Println("== mission log (resilience decisions) ==")
	for _, dec := range svc.Decisions() {
		fmt.Println("   ", dec)
	}
}

func last(svc *resilientft.Resilience) resilientft.Decision {
	ds := svc.Decisions()
	return ds[len(ds)-1]
}
