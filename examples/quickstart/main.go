// Command quickstart demonstrates the basics: deploy a PBR-protected
// calculator on two simulated hosts, serve client requests, crash the
// primary and watch the backup take over with the checkpointed state,
// then adapt the running system from PBR to LFR with a differential
// transition.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"resilientft"
)

func main() {
	ctx := context.Background()

	fmt.Println("== deploy: PBR (primary on alpha, backup on beta) ==")
	sys, err := resilientft.NewSystem(ctx, resilientft.SystemConfig{
		System:            "calc",
		FTM:               resilientft.PBR,
		HeartbeatInterval: 20 * time.Millisecond,
		SuspectTimeout:    120 * time.Millisecond,
		EventHook: func(host, event string) {
			fmt.Printf("   [%s] %s\n", host, event)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Shutdown()

	client, err := sys.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	invoke := func(op string, arg int64) int64 {
		resp, err := client.Invoke(ctx, op, resilientft.EncodeArg(arg))
		if err != nil {
			log.Fatalf("%s: %v", op, err)
		}
		v, err := resilientft.DecodeResult(resp.Payload)
		if err != nil {
			log.Fatal(err)
		}
		replay := ""
		if resp.Replayed {
			replay = " (replayed from reply log)"
		}
		fmt.Printf("   %s %d -> %d%s\n", op, arg, v, replay)
		return v
	}

	fmt.Println("== client requests ==")
	invoke("set:balance", 100)
	invoke("add:balance", 42)
	invoke("get:balance", 0)

	fmt.Println("== crash the primary ==")
	sys.CrashMaster()
	deadline := time.Now().Add(5 * time.Second)
	for sys.Master() == nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if m := sys.Master(); m != nil {
		fmt.Printf("   new master: %s (state restored from checkpoints)\n", m.Host().Name())
	}
	invoke("get:balance", 0) // still 142: checkpointed state survived
	invoke("add:balance", 8) // and the survivor makes progress

	fmt.Println("== differential adaptation: PBR -> LFR on the live system ==")
	engine := resilientft.NewEngine(nil)
	report, err := engine.TransitionSystem(ctx, sys, resilientft.LFR)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range report.Replicas {
		fmt.Printf("   [%s] replaced %v in %v (deploy %v, script %v, remove %v)\n",
			rep.Host, rep.Replaced, rep.Steps.Total().Round(time.Microsecond),
			rep.Steps.Deploy.Round(time.Microsecond),
			rep.Steps.Script.Round(time.Microsecond),
			rep.Steps.Remove.Round(time.Microsecond))
	}
	invoke("add:balance", 1)
	fmt.Println("done: the application never stopped serving.")
}
