// Package resilientft is a component-based adaptive fault tolerance
// library: a Go reproduction of "Architecting Resilient Computing
// Systems" (Stoicescu, Fabre, Roy — LAAS-CNRS; DSN 2011 / JSA 2017).
//
// Fault tolerance mechanisms (FTMs) are assembled from small components
// over a reflective runtime, following a generic Before-Proceed-After
// execution scheme. At runtime they are adapted differentially: a
// transition package (new bricks + a reconfiguration script) swaps only
// the variable features that changed, transactionally, while client
// requests buffer at the composite boundary.
//
// The package re-exports the library's public surface:
//
//   - building fault-tolerant systems (System, Replica, Client),
//   - the FTM catalogue and (FT, A, R) model (core),
//   - on-line adaptation (Engine, Repository, TransitionPackage),
//   - the resilience loop (Monitor, Resilience, SystemManager).
//
// Quickstart:
//
//	sys, _ := resilientft.NewSystem(ctx, resilientft.SystemConfig{
//		System: "calc",
//		FTM:    resilientft.PBR,
//	})
//	defer sys.Shutdown()
//	client, _ := sys.NewClient()
//	resp, _ := client.Invoke(ctx, "add:x", resilientft.EncodeArg(5))
//
// See examples/ for complete scenarios.
package resilientft

import (
	"context"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/monitor"
	"resilientft/internal/resilience"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

// Core model types.
type (
	// FTM identifies a fault tolerance mechanism from the catalogue.
	FTM = core.ID
	// FaultModel is the FT parameter: the set of fault classes to
	// tolerate.
	FaultModel = core.FaultModel
	// AppTraits is the A parameter: application characteristics.
	AppTraits = core.AppTraits
	// ResourceState is the R parameter: available resources.
	ResourceState = core.ResourceState
	// Descriptor is an FTM catalogue entry (Table 1 + Table 2).
	Descriptor = core.Descriptor
	// Trigger is a named adaptation trigger.
	Trigger = core.Trigger
	// ScenarioEdge is one edge of the Figure 8 scenario graph.
	ScenarioEdge = core.ScenarioEdge
)

// The FTM catalogue.
const (
	// PBR is Primary-Backup Replication.
	PBR = core.PBR
	// LFR is Leader-Follower Replication.
	LFR = core.LFR
	// TR is single-host Time Redundancy.
	TR = core.TR
	// PBRTR composes PBR with time redundancy (PBR⊕TR).
	PBRTR = core.PBRTR
	// LFRTR composes LFR with time redundancy (LFR⊕TR).
	LFRTR = core.LFRTR
	// APBR composes an assertion-checked duplex over PBR (A&PBR).
	APBR = core.APBR
	// ALFR composes an assertion-checked duplex over LFR (A&LFR).
	ALFR = core.ALFR

	// Extension mechanisms beyond the paper's illustrative set (§3.2.1).

	// RBPBR is Recovery Blocks over PBR: diversified alternates behind an
	// updatable acceptance test (tolerates software faults).
	RBPBR = core.RBPBR
	// TMRT is temporal TMR: three executions and a replaceable decision
	// algorithm on one host.
	TMRT = core.TMRT
	// SemiActive is Delta-4-XPA-style semi-active replication: the leader
	// captures non-deterministic decisions, the follower replays them.
	SemiActive = core.SemiActive
)

// Fault classes.
const (
	// FaultCrash is a fail-silent node crash.
	FaultCrash = core.FaultCrash
	// FaultTransientValue is a transient value fault (bit flip).
	FaultTransientValue = core.FaultTransientValue
	// FaultPermanentValue is a permanent value fault (stuck-at host).
	FaultPermanentValue = core.FaultPermanentValue
)

// System assembly and applications.
type (
	// System is a running two-replica fault-tolerant application.
	System = ftm.System
	// SystemConfig configures NewSystem.
	SystemConfig = ftm.SystemConfig
	// Replica is one half of a fault-tolerant application.
	Replica = ftm.Replica
	// ReplicaConfig configures a single replica deployment.
	ReplicaConfig = ftm.ReplicaConfig
	// Application is the business logic an FTM protects.
	Application = ftm.Application
	// Calculator is the reference deterministic application.
	Calculator = ftm.Calculator
	// Client invokes a replicated service with failover and
	// at-most-once semantics.
	Client = rpc.Client
	// Response is a service reply.
	Response = rpc.Response
	// Network is the simulated network systems run on.
	Network = transport.MemNetwork
	// Cluster is a multi-replica fault-tolerant application (one master,
	// N-1 backups with rank-staggered failover).
	Cluster = ftm.Cluster
	// ClusterConfig configures NewCluster.
	ClusterConfig = ftm.ClusterConfig
)

// Adaptation machinery.
type (
	// Engine is the Adaptation Engine executing differential
	// transitions.
	Engine = adaptation.Engine
	// Repository is the FTM & Adaptation Repository of transition
	// packages.
	Repository = adaptation.Repository
	// TransitionPackage carries new bricks plus a reconfiguration
	// script.
	TransitionPackage = adaptation.TransitionPackage
	// TransitionReport is the outcome of a system-wide transition.
	TransitionReport = adaptation.Report
)

// Resilience loop.
type (
	// Monitor is the Monitoring Engine (probes, rules, triggers).
	Monitor = monitor.Engine
	// MonitorRule maps a probe condition to a trigger.
	MonitorRule = monitor.Rule
	// Resilience is the Resilience Management Service.
	Resilience = resilience.Service
	// ResilienceConfig configures the resilience service.
	ResilienceConfig = resilience.Config
	// SystemManager is the man-in-the-loop approving possible
	// transitions.
	SystemManager = resilience.SystemManager
	// Decision records how one trigger was handled.
	Decision = resilience.Decision
)

// NewSystem boots a two-replica fault-tolerant system on a simulated
// network.
func NewSystem(ctx context.Context, cfg SystemConfig) (*System, error) {
	return ftm.NewSystem(ctx, cfg)
}

// NewReplica deploys a single replica on a host (see internal/host for
// host construction); most callers want NewSystem.
var NewReplica = ftm.NewReplica

// NewCluster boots a multi-replica group (the paper's "multiple Backups
// or Followers" variant).
var NewCluster = ftm.NewCluster

// NewCalculator returns the reference application.
func NewCalculator() *Calculator { return ftm.NewCalculator() }

// NewEngine returns an Adaptation Engine over repo (a fresh repository
// when nil).
func NewEngine(repo *Repository) *Engine { return adaptation.NewEngine(repo) }

// NewRepository returns an empty transition-package repository.
func NewRepository() *Repository { return adaptation.NewRepository() }

// BuildTransitionPackage synthesizes a differential transition package
// from the catalogue (for uploading customized variants, start here).
var BuildTransitionPackage = adaptation.BuildPackage

// NewResilience returns the Resilience Management Service.
func NewResilience(cfg ResilienceConfig) *Resilience { return resilience.New(cfg) }

// NewMonitor returns a Monitoring Engine.
var NewMonitor = monitor.New

// NewFaultModel builds an FT parameter value.
var NewFaultModel = core.NewFaultModel

// Catalogue returns the illustrative-set FTM descriptors.
var Catalogue = core.Catalogue

// Extensions returns the beyond-the-paper FTM descriptors (recovery
// blocks, temporal TMR, semi-active replication).
var Extensions = core.Extensions

// Select returns the preferred FTM for given (FT, A, R) values.
var Select = core.Select

// Validate checks an FTM against (FT, A, R) values.
var Validate = core.Validate

// EncodeArg serializes an int64 application argument.
var EncodeArg = ftm.EncodeArg

// DecodeResult deserializes an int64 application result.
var DecodeResult = ftm.DecodeResult

// AutoApprove approves every possible transition.
type AutoApprove = resilience.AutoApprove

// Conservative declines every possible transition.
type Conservative = resilience.Conservative

// ManagerFunc adapts a function to SystemManager.
type ManagerFunc = resilience.ManagerFunc
