package rpc

import (
	"bytes"
	"testing"

	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

func TestRequestCodecRoundTripWithTrace(t *testing.T) {
	req := Request{
		ClientID: "c1",
		Seq:      42,
		Op:       "add:r0",
		Payload:  []byte{1, 2, 3},
		Trace:    telemetry.SpanContext{TraceID: 0xabc123, SpanID: 0xdef456},
	}
	data, err := transport.Encode(req)
	if err != nil {
		t.Fatal(err)
	}
	var got Request
	if err := transport.Decode(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Trace != req.Trace {
		t.Fatalf("trace lost in round trip: got %+v want %+v", got.Trace, req.Trace)
	}
	if got.ClientID != req.ClientID || got.Seq != req.Seq || got.Op != req.Op || !bytes.Equal(got.Payload, req.Payload) {
		t.Fatalf("fields lost: %+v", got)
	}
}

func TestRequestCodecUnsampledBytesUnchanged(t *testing.T) {
	// An unsampled request must produce exactly the pre-trace wire bytes:
	// no trailer, no size change.
	req := Request{ClientID: "c1", Seq: 7, Op: "get:r0", Payload: []byte("x")}
	withTrailer := req
	withTrailer.Trace = telemetry.SpanContext{TraceID: 1, SpanID: 2}

	plain := req.AppendFast(nil)
	traced := withTrailer.AppendFast(nil)
	if !bytes.HasPrefix(traced, plain) {
		t.Fatal("trailer must extend, not alter, the base encoding")
	}
	if len(traced) == len(plain) {
		t.Fatal("valid trace must append a trailer")
	}

	// A pre-trace decoder (the PR 3 decode loop) read through Payload and
	// discarded the rest; the current decoder must accept trailerless
	// frames as unsampled.
	var got Request
	if err := got.DecodeFast(plain); err != nil {
		t.Fatal(err)
	}
	if got.Trace.Valid() {
		t.Fatalf("trailerless frame decoded a trace: %+v", got.Trace)
	}
}

func TestRequestCodecMalformedTrailerIgnored(t *testing.T) {
	req := Request{ClientID: "c1", Seq: 7, Op: "get:r0"}
	data := req.AppendFast(nil)
	// A truncated/garbage tail (e.g. an unterminated uvarint) must decode
	// as unsampled, never as an error.
	data = append(data, 0x80)
	var got Request
	if err := got.DecodeFast(data); err != nil {
		t.Fatalf("malformed trailer must not fail decode: %v", err)
	}
	if got.Trace.Valid() {
		t.Fatalf("malformed trailer produced a trace: %+v", got.Trace)
	}
}
