package rpc

import "resilientft/internal/telemetry"

// Request-path series, resolved once so the per-call cost is a handful
// of atomic operations. Client-side metrics observe what the
// application experiences (retries and failover included); server-side
// metrics observe one replica's handler.
var (
	mClientRequests  = telemetry.Default().Counter("rpc_client_requests_total")
	mClientLatency   = telemetry.Default().Histogram("rpc_client_request_latency")
	mClientExhausted = telemetry.Default().Counter("rpc_client_exhausted_total")
	mClientFailovers = telemetry.Default().Counter("rpc_client_failovers_total")

	mClientAttemptErrTransport = telemetry.Default().Counter("rpc_client_attempt_errors_total", "reason", "transport")
	mClientAttemptErrDecode    = telemetry.Default().Counter("rpc_client_attempt_errors_total", "reason", "decode")
	mClientAttemptErrRedirect  = telemetry.Default().Counter("rpc_client_attempt_errors_total", "reason", "redirected")

	mServerRequests = telemetry.Default().Counter("rpc_server_requests_total")
	mServerLatency  = telemetry.Default().Histogram("rpc_server_request_latency")
	mServerReplays  = telemetry.Default().Counter("rpc_server_replayed_total")
)

// mServerByStatus maps a Status to its response counter; indexed
// directly on the hot path (statuses are 1..4).
var mServerByStatus = [...]*telemetry.Counter{
	StatusOK:          telemetry.Default().Counter("rpc_server_responses_total", "status", "ok"),
	StatusAppError:    telemetry.Default().Counter("rpc_server_responses_total", "status", "app-error"),
	StatusNotMaster:   telemetry.Default().Counter("rpc_server_responses_total", "status", "not-master"),
	StatusUnavailable: telemetry.Default().Counter("rpc_server_responses_total", "status", "unavailable"),
}

func countServerResponse(s Status) {
	if int(s) > 0 && int(s) < len(mServerByStatus) {
		mServerByStatus[s].Inc()
		return
	}
	telemetry.Default().Counter("rpc_server_responses_total", "status", "unknown").Inc()
}
