package rpc

import (
	"sync"
	"time"

	"resilientft/internal/telemetry"
)

// Request-path series, resolved once so the per-call cost is a handful
// of atomic operations. Client-side metrics observe what the
// application experiences (retries and failover included); server-side
// metrics observe one replica's handler.
var (
	mClientRequests  = telemetry.Default().Counter("rpc_client_requests_total")
	mClientLatency   = telemetry.Default().Histogram("rpc_client_request_latency")
	mClientExhausted = telemetry.Default().Counter("rpc_client_exhausted_total")
	mClientFailovers = telemetry.Default().Counter("rpc_client_failovers_total")

	mClientAttemptErrTransport = telemetry.Default().Counter("rpc_client_attempt_errors_total", "reason", "transport")
	mClientAttemptErrDecode    = telemetry.Default().Counter("rpc_client_attempt_errors_total", "reason", "decode")
	mClientAttemptErrRedirect  = telemetry.Default().Counter("rpc_client_attempt_errors_total", "reason", "redirected")

	mServerRequests = telemetry.Default().Counter("rpc_server_requests_total")
	mServerLatency  = telemetry.Default().Histogram("rpc_server_request_latency")
	mServerReplays  = telemetry.Default().Counter("rpc_server_replayed_total")
)

// mServerByStatus maps a Status to its response counter; indexed
// directly on the hot path (statuses are 1..4).
var mServerByStatus = [...]*telemetry.Counter{
	StatusOK:          telemetry.Default().Counter("rpc_server_responses_total", "status", "ok"),
	StatusAppError:    telemetry.Default().Counter("rpc_server_responses_total", "status", "app-error"),
	StatusNotMaster:   telemetry.Default().Counter("rpc_server_responses_total", "status", "not-master"),
	StatusUnavailable: telemetry.Default().Counter("rpc_server_responses_total", "status", "unavailable"),
}

func countServerResponse(s Status) {
	if int(s) > 0 && int(s) < len(mServerByStatus) {
		mServerByStatus[s].Inc()
		return
	}
	telemetry.Default().Counter("rpc_server_responses_total", "status", "unknown").Inc()
}

// Per-shard request series: one latency histogram plus a per-status
// counter set per replica group, so a shard's success rate and tail
// latency are readable in isolation — exactly the inputs an SLO
// evaluator needs. Resolved once per group and cached; the per-request
// cost after the first hit is one sync.Map load.
const (
	// ShardLatencySeries is the per-shard request latency histogram,
	// labeled {shard}.
	ShardLatencySeries = "rpc_shard_request_latency"
	// ShardResponsesSeries is the per-shard response counter family,
	// labeled {shard, status} with the rpc_server_responses_total
	// status values.
	ShardResponsesSeries = "rpc_shard_responses_total"
)

// ShardLabel maps a replica group ID to the value its shard-labeled
// series carry: the literal group, or "default" for ungrouped traffic
// (the unsharded daemon's sole replica).
func ShardLabel(group string) string {
	if group == "" {
		return "default"
	}
	return group
}

// statusLabels mirrors mServerByStatus's label values, indexed by
// Status.
var statusLabels = [...]string{
	StatusOK:          "ok",
	StatusAppError:    "app-error",
	StatusNotMaster:   "not-master",
	StatusUnavailable: "unavailable",
}

type shardSeries struct {
	latency  *telemetry.Histogram
	byStatus [len(statusLabels)]*telemetry.Counter
	unknown  *telemetry.Counter
}

var shardSeriesCache sync.Map // shard label → *shardSeries

func shardSeriesFor(group string) *shardSeries {
	shard := ShardLabel(group)
	if v, ok := shardSeriesCache.Load(shard); ok {
		return v.(*shardSeries)
	}
	reg := telemetry.Default()
	ss := &shardSeries{
		latency: reg.Histogram(ShardLatencySeries, "shard", shard),
		unknown: reg.Counter(ShardResponsesSeries, "shard", shard, "status", "unknown"),
	}
	for s, label := range statusLabels {
		if label == "" {
			continue
		}
		ss.byStatus[s] = reg.Counter(ShardResponsesSeries, "shard", shard, "status", label)
	}
	actual, _ := shardSeriesCache.LoadOrStore(shard, ss)
	return actual.(*shardSeries)
}

func (ss *shardSeries) record(elapsed time.Duration, s Status) {
	ss.latency.Observe(elapsed)
	if int(s) > 0 && int(s) < len(ss.byStatus) && ss.byStatus[s] != nil {
		ss.byStatus[s].Inc()
		return
	}
	ss.unknown.Inc()
}
