package rpc

import (
	"context"
	"sync"
	"time"
)

// attemptCtx is a pooled, reusable context implementing the per-attempt
// call timeout. context.WithTimeout allocates a context, a timer and a
// done channel per call; at request rates in the hundreds of thousands
// per second those three allocations were among the largest garbage
// producers on the client path. An attemptCtx that expires untriggered —
// the overwhelmingly common case — returns to the pool with its channel
// and timer intact and its next use allocates nothing.
//
// It only substitutes for context.WithTimeout when the parent context
// has no Done channel (context.Background and friends): then expiry is
// the only cancellation source and no propagation goroutine is needed.
// Callers with cancellable parents fall back to the standard library.
type attemptCtx struct {
	parent   context.Context
	deadline time.Time
	timer    *time.Timer

	mu     sync.Mutex
	done   chan struct{}
	err    error
	armed  bool // an acquire is live; expiry outside it is stale
	closed bool // done has been closed and must be replaced
}

var attemptCtxPool = sync.Pool{New: func() any {
	a := &attemptCtx{done: make(chan struct{})}
	a.timer = time.AfterFunc(time.Hour, a.expire)
	a.timer.Stop()
	return a
}}

// expire is the timer callback. A stale callback — one scheduled before
// a Stop that lost the race — is recognized by the armed flag and by
// firing before the current deadline, and ignored.
func (a *attemptCtx) expire() {
	a.mu.Lock()
	if a.armed && a.err == nil && !time.Now().Before(a.deadline) {
		a.err = context.DeadlineExceeded
		close(a.done)
		a.closed = true
	}
	a.mu.Unlock()
}

// acquireAttemptCtx returns a context expiring after d. parent must
// have a nil Done channel.
func acquireAttemptCtx(parent context.Context, d time.Duration) *attemptCtx {
	a := attemptCtxPool.Get().(*attemptCtx)
	a.mu.Lock()
	a.parent = parent
	a.deadline = time.Now().Add(d)
	a.err = nil
	if a.closed {
		a.done = make(chan struct{})
		a.closed = false
	}
	a.armed = true
	a.mu.Unlock()
	a.timer.Reset(d)
	return a
}

// releaseAttemptCtx disarms and pools a. The caller must be done with
// every reference (including the Done channel) before releasing.
func releaseAttemptCtx(a *attemptCtx) {
	a.timer.Stop()
	a.mu.Lock()
	a.armed = false
	a.parent = nil
	a.mu.Unlock()
	attemptCtxPool.Put(a)
}

var _ context.Context = (*attemptCtx)(nil)

func (a *attemptCtx) Deadline() (time.Time, bool) { return a.deadline, true }

func (a *attemptCtx) Done() <-chan struct{} {
	a.mu.Lock()
	d := a.done
	a.mu.Unlock()
	return d
}

func (a *attemptCtx) Err() error {
	a.mu.Lock()
	err := a.err
	a.mu.Unlock()
	return err
}

func (a *attemptCtx) Value(key any) any {
	a.mu.Lock()
	p := a.parent
	a.mu.Unlock()
	if p == nil {
		return nil
	}
	return p.Value(key)
}
