package rpc

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// ShardRoute describes one replica group the router can reach: its
// shard ID and the replica addresses, master usually first.
type ShardRoute struct {
	ID       string
	Replicas []transport.Address
}

// Router is the client-side sharding tier: a consistent-hash ring
// picking the shard for each request key, and one Client per shard
// carrying the request there with the usual retry/failover machinery.
// All shard clients share the router's endpoint, so the transport's
// per-destination connection pools are reused across shards, and each
// stamps its shard's group ID on the wire for the serving-side mux.
//
// Each shard client carries its own identity (routerID@shard): the
// at-most-once reply log is per group, so the same (ClientID, Seq)
// must never reach two groups — a ring rebalance moving a key mid-
// sequence would otherwise collide in the new shard's log.
type Router struct {
	id   string
	ep   transport.Endpoint
	opts []ClientOption

	mu     sync.RWMutex
	ring   *Ring
	shards map[string]*shardClient
}

// shardClient pairs one shard's client with its pre-resolved series.
type shardClient struct {
	c        *Client
	requests *telemetry.Counter
}

// NewRouter returns a router for the given shard routes. opts configure
// every per-shard client (call timeouts, tracing, rounds).
func NewRouter(id string, ep transport.Endpoint, routes []ShardRoute, opts ...ClientOption) *Router {
	r := &Router{
		id:     id,
		ep:     ep,
		opts:   opts,
		ring:   NewRing(),
		shards: make(map[string]*shardClient),
	}
	r.SetShards(routes)
	return r
}

// ID returns the router's base client identity.
func (r *Router) ID() string { return r.id }

// SetShards replaces the route table: added shards get fresh clients,
// removed shards drop theirs, surviving shards keep their client (and
// with it their sequence counters and preferred-master hints).
func (r *Router) SetShards(routes []ShardRoute) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen := make(map[string]bool, len(routes))
	for _, route := range routes {
		seen[route.ID] = true
		if sc, ok := r.shards[route.ID]; ok {
			sc.c.SetReplicas(route.Replicas)
			continue
		}
		opts := make([]ClientOption, 0, len(r.opts)+1)
		opts = append(opts, r.opts...)
		opts = append(opts, WithGroup(route.ID))
		r.shards[route.ID] = &shardClient{
			c:        NewClient(r.id+"@"+route.ID, r.ep, route.Replicas, opts...),
			requests: telemetry.Default().Counter("rpc_router_requests_total", "shard", route.ID),
		}
		r.ring.Add(route.ID)
	}
	for id := range r.shards {
		if !seen[id] {
			delete(r.shards, id)
			r.ring.Remove(id)
		}
	}
}

// Pick returns the shard ID owning key.
func (r *Router) Pick(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.ring.Pick(key)
}

// Shards returns the shard IDs on the ring, sorted.
func (r *Router) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.shards))
	for id := range r.shards {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Shard returns the client bound to a shard ID, or nil. Callers that
// batch many requests to one shard (benchmarks, bulk loads) use it to
// skip the per-call ring lookup.
func (r *Router) Shard(id string) *Client {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if sc, ok := r.shards[id]; ok {
		return sc.c
	}
	return nil
}

// Invoke routes op(payload) by key: the ring picks the shard, the
// shard's client delivers with at-most-once semantics.
func (r *Router) Invoke(ctx context.Context, key, op string, payload []byte) (Response, error) {
	sc, err := r.pick(key)
	if err != nil {
		return Response{}, err
	}
	sc.requests.Inc()
	return sc.c.Invoke(ctx, op, payload)
}

func (r *Router) pick(key string) (*shardClient, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id := r.ring.Pick(key)
	sc, ok := r.shards[id]
	if !ok {
		return nil, fmt.Errorf("rpc: router has no shard for key %q", key)
	}
	return sc, nil
}
