package rpc

import (
	"fmt"

	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// Hand-rolled binary codecs for the per-request message types. Request
// and Response cross the wire once (or more, under replication) per
// client call, so they implement transport's fast-codec interfaces and
// skip gob entirely: no reflection, no type descriptors, one buffer.

var (
	_ transport.FastMarshaler   = Request{}
	_ transport.FastUnmarshaler = (*Request)(nil)
	_ transport.FastMarshaler   = Response{}
	_ transport.FastUnmarshaler = (*Response)(nil)
	_ transport.FastMarshaler   = ResponseList(nil)
	_ transport.FastUnmarshaler = (*ResponseList)(nil)
)

// AppendFast implements transport.FastMarshaler.
func (r Request) AppendFast(buf []byte) []byte {
	buf = transport.AppendLenString(buf, r.ClientID)
	buf = transport.AppendUvarint(buf, r.Seq)
	buf = transport.AppendLenString(buf, r.Op)
	// Group sits between Op and Payload as a mandatory field (empty =
	// unsharded): the trailer slot after Payload is taken by the trace
	// context, whose optionality depends on being the only thing there.
	// Pre-group gob frames still decode through the compat arm.
	buf = transport.AppendLenString(buf, r.Group)
	buf = transport.AppendLenBytes(buf, r.Payload)
	// Optional trace trailer: old decoders discard bytes past the last
	// field, and absence decodes as the zero (unsampled) context, so the
	// format stays compatible in both directions.
	if r.Trace.Valid() {
		buf = transport.AppendUvarint(buf, r.Trace.TraceID)
		buf = transport.AppendUvarint(buf, r.Trace.SpanID)
	}
	return buf
}

// DecodeFast implements transport.FastUnmarshaler.
func (r *Request) DecodeFast(data []byte) error {
	var err error
	// Client IDs and operation names draw from small recurring sets;
	// interning them keeps the per-request decode allocation-free.
	if r.ClientID, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("rpc: request clientID: %w", err)
	}
	if r.Seq, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("rpc: request seq: %w", err)
	}
	if r.Op, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("rpc: request op: %w", err)
	}
	if r.Group, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("rpc: request group: %w", err)
	}
	if r.Payload, data, err = transport.ReadLenBytes(data); err != nil {
		return fmt.Errorf("rpc: request payload: %w", err)
	}
	r.Trace = readTraceTrailer(data)
	return nil
}

// decodeFrom is the server-loop decode: on the fast arm the payload
// aliases frame instead of being copied — the transport keeps the
// inbound frame alive until the handler returns, and nothing on the
// execute path retains the request payload past that point (anything
// forwarded or logged is re-encoded into its own buffer). Non-fast
// frames take the copying gob arm via transport.Decode.
func (r *Request) decodeFrom(frame []byte) error {
	if len(frame) == 0 || frame[0] != transport.FastTag {
		return transport.Decode(frame, r)
	}
	data := frame[1:]
	var err error
	if r.ClientID, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("rpc: request clientID: %w", err)
	}
	if r.Seq, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("rpc: request seq: %w", err)
	}
	if r.Op, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("rpc: request op: %w", err)
	}
	if r.Group, data, err = transport.ReadLenStringInterned(data); err != nil {
		return fmt.Errorf("rpc: request group: %w", err)
	}
	if r.Payload, data, err = transport.ReadLenBytesInPlace(data); err != nil {
		return fmt.Errorf("rpc: request payload: %w", err)
	}
	r.Trace = readTraceTrailer(data)
	return nil
}

// readTraceTrailer decodes the optional trace trailer from whatever
// follows the last mandatory field. Absent or malformed trailers yield
// the zero (unsampled) context: trace metadata is advisory, a frame
// from an older peer is never rejected over it.
func readTraceTrailer(data []byte) telemetry.SpanContext {
	if len(data) == 0 {
		return telemetry.SpanContext{}
	}
	tid, data, err := transport.ReadUvarint(data)
	if err != nil {
		return telemetry.SpanContext{}
	}
	sid, _, err := transport.ReadUvarint(data)
	if err != nil {
		return telemetry.SpanContext{}
	}
	return telemetry.SpanContext{TraceID: tid, SpanID: sid}
}

// appendResponse writes one response body; shared by the single and the
// list codecs.
func appendResponse(buf []byte, r Response) []byte {
	buf = transport.AppendLenString(buf, r.ClientID)
	buf = transport.AppendUvarint(buf, r.Seq)
	buf = transport.AppendUvarint(buf, uint64(r.Status))
	buf = transport.AppendLenBytes(buf, r.Payload)
	buf = transport.AppendLenString(buf, r.Err)
	flag := byte(0)
	if r.Replayed {
		flag = 1
	}
	return append(buf, flag)
}

// readResponse consumes one response body and returns the remainder.
func readResponse(data []byte) (Response, []byte, error) {
	var r Response
	var err error
	if r.ClientID, data, err = transport.ReadLenStringInterned(data); err != nil {
		return r, nil, fmt.Errorf("rpc: response clientID: %w", err)
	}
	if r.Seq, data, err = transport.ReadUvarint(data); err != nil {
		return r, nil, fmt.Errorf("rpc: response seq: %w", err)
	}
	var status uint64
	if status, data, err = transport.ReadUvarint(data); err != nil {
		return r, nil, fmt.Errorf("rpc: response status: %w", err)
	}
	r.Status = Status(status)
	if r.Payload, data, err = transport.ReadLenBytes(data); err != nil {
		return r, nil, fmt.Errorf("rpc: response payload: %w", err)
	}
	if r.Err, data, err = transport.ReadLenString(data); err != nil {
		return r, nil, fmt.Errorf("rpc: response err: %w", err)
	}
	if len(data) < 1 {
		return r, nil, fmt.Errorf("rpc: response replayed flag: %w", transport.ErrShortBuffer)
	}
	r.Replayed = data[0] != 0
	return r, data[1:], nil
}

// AppendFast implements transport.FastMarshaler.
func (r Response) AppendFast(buf []byte) []byte { return appendResponse(buf, r) }

// DecodeFast implements transport.FastUnmarshaler.
func (r *Response) DecodeFast(data []byte) error {
	resp, _, err := readResponse(data)
	if err != nil {
		return err
	}
	*r = resp
	return nil
}

// ResponseList is a fast-coded batch of responses: checkpoint-delta
// reply-log tails travel as one of these. (Full checkpoint snapshots
// stay gob-encoded []Response for wire compatibility across versions.)
type ResponseList []Response

// AppendFast implements transport.FastMarshaler.
func (rl ResponseList) AppendFast(buf []byte) []byte {
	buf = transport.AppendUvarint(buf, uint64(len(rl)))
	for _, r := range rl {
		buf = appendResponse(buf, r)
	}
	return buf
}

// DecodeFast implements transport.FastUnmarshaler. An existing backing
// array is reused when it has the capacity, so a pooled list decodes
// batch after batch without reallocating.
func (rl *ResponseList) DecodeFast(data []byte) error {
	n, data, err := transport.ReadUvarint(data)
	if err != nil {
		return fmt.Errorf("rpc: response list length: %w", err)
	}
	out := (*rl)[:0]
	if uint64(cap(out)) < n {
		out = make(ResponseList, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var r Response
		if r, data, err = readResponse(data); err != nil {
			return fmt.Errorf("rpc: response list entry %d: %w", i, err)
		}
		out = append(out, r)
	}
	*rl = out
	return nil
}
