package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"resilientft/internal/transport"
)

func TestRequestID(t *testing.T) {
	r := Request{ClientID: "c1", Seq: 42}
	if r.ID() != "c1#42" {
		t.Fatalf("ID = %q", r.ID())
	}
}

func TestReplyLogLookupRecord(t *testing.T) {
	l := NewReplyLog(8)
	if _, ok := l.Lookup("c", 1); ok {
		t.Fatal("empty log returned an entry")
	}
	l.Record(Response{ClientID: "c", Seq: 1, Status: StatusOK, Payload: []byte("a")})
	got, ok := l.Lookup("c", 1)
	if !ok {
		t.Fatal("recorded entry not found")
	}
	if !got.Replayed {
		t.Fatal("lookup must mark the response as replayed")
	}
	if string(got.Payload) != "a" {
		t.Fatalf("payload = %q", got.Payload)
	}
}

func TestReplyLogOverwriteSameSeq(t *testing.T) {
	l := NewReplyLog(4)
	l.Record(Response{ClientID: "c", Seq: 1, Payload: []byte("old")})
	l.Record(Response{ClientID: "c", Seq: 1, Payload: []byte("new")})
	got, _ := l.Lookup("c", 1)
	if string(got.Payload) != "new" {
		t.Fatalf("payload = %q, want new", got.Payload)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1", l.Len())
	}
}

func TestReplyLogEviction(t *testing.T) {
	l := NewReplyLog(3)
	for seq := uint64(1); seq <= 10; seq++ {
		l.Record(Response{ClientID: "c", Seq: seq})
	}
	if _, ok := l.Lookup("c", 7); ok {
		t.Fatal("evicted entry still present")
	}
	for seq := uint64(8); seq <= 10; seq++ {
		if _, ok := l.Lookup("c", seq); !ok {
			t.Fatalf("recent entry %d missing", seq)
		}
	}
	// Other clients are unaffected by c's eviction.
	l.Record(Response{ClientID: "d", Seq: 1})
	if _, ok := l.Lookup("d", 1); !ok {
		t.Fatal("entry of other client missing")
	}
}

func TestReplyLogSnapshotRestore(t *testing.T) {
	l := NewReplyLog(8)
	for seq := uint64(1); seq <= 5; seq++ {
		l.Record(Response{ClientID: "a", Seq: seq, Payload: []byte{byte(seq)}})
		l.Record(Response{ClientID: "b", Seq: seq})
	}
	snap := l.Snapshot()
	l2 := NewReplyLog(8)
	l2.Restore(snap)
	if !reflect.DeepEqual(l2.Snapshot(), snap) {
		t.Fatal("snapshot/restore round trip mismatch")
	}
}

// Property: after any sequence of Record operations, Lookup(id, seq)
// either misses or returns the latest recorded payload for that pair.
func TestReplyLogProperty(t *testing.T) {
	type key struct {
		client string
		seq    uint64
	}
	f := func(ops []uint8) bool {
		l := NewReplyLog(16)
		latest := make(map[key][]byte)
		for i, op := range ops {
			k := key{client: fmt.Sprintf("c%d", op%3), seq: uint64(op % 8)}
			payload := []byte{byte(i)}
			l.Record(Response{ClientID: k.client, Seq: k.seq, Payload: payload})
			latest[k] = payload
		}
		for k, want := range latest {
			got, ok := l.Lookup(k.client, k.seq)
			if !ok {
				return false // retention 16 > 8 possible seqs per client, must hit
			}
			if string(got.Payload) != string(want) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// replicaSim is a scripted server used to test client failover.
type replicaSim struct {
	mu     sync.Mutex
	status Status
	log    *ReplyLog
	execs  int
}

func newReplicaSim(n *transport.MemNetwork, addr transport.Address, status Status) (*replicaSim, error) {
	ep, err := n.Endpoint(addr)
	if err != nil {
		return nil, err
	}
	r := &replicaSim{status: status, log: NewReplyLog(8)}
	Serve(ep, func(ctx context.Context, req *Request) Response {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.status != StatusOK {
			return Response{Status: r.status}
		}
		if prev, ok := r.log.Lookup(req.ClientID, req.Seq); ok {
			return prev
		}
		r.execs++
		resp := Response{ClientID: req.ClientID, Seq: req.Seq, Status: StatusOK,
			Payload: []byte(fmt.Sprintf("exec%d", r.execs))}
		r.log.Record(resp)
		return resp
	})
	return r, nil
}

func (r *replicaSim) setStatus(s Status) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.status = s
}

func (r *replicaSim) execCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.execs
}

func TestClientInvokesMaster(t *testing.T) {
	n := transport.NewMemNetwork()
	master, err := newReplicaSim(n, "m", StatusOK)
	if err != nil {
		t.Fatal(err)
	}
	cep, _ := n.Endpoint("client")
	c := NewClient("c1", cep, []transport.Address{"m"})
	resp, err := c.Invoke(context.Background(), "inc", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if string(resp.Payload) != "exec1" {
		t.Fatalf("payload = %q", resp.Payload)
	}
	if master.execCount() != 1 {
		t.Fatalf("executions = %d", master.execCount())
	}
}

func TestClientFailsOverOnNotMaster(t *testing.T) {
	n := transport.NewMemNetwork()
	backup, err := newReplicaSim(n, "backup", StatusNotMaster)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newReplicaSim(n, "primary", StatusOK); err != nil {
		t.Fatal(err)
	}
	cep, _ := n.Endpoint("client")
	// Backup listed first: the client must skip it.
	c := NewClient("c1", cep, []transport.Address{"backup", "primary"})
	resp, err := c.Invoke(context.Background(), "op", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("status = %v", resp.Status)
	}
	if backup.execCount() != 0 {
		t.Fatal("backup executed a request while not master")
	}
	// After failover the client prefers the working primary.
	if got, _ := c.replicaAt(0); got != "primary" {
		t.Fatalf("preferred replica = %s, want primary", got)
	}
}

func TestClientFailsOverOnCrash(t *testing.T) {
	n := transport.NewMemNetwork()
	if _, err := newReplicaSim(n, "p", StatusOK); err != nil {
		t.Fatal(err)
	}
	if _, err := newReplicaSim(n, "b", StatusOK); err != nil {
		t.Fatal(err)
	}
	n.Partition("client", "p") // crash-like unreachability of the primary
	cep, _ := n.Endpoint("client")
	c := NewClient("c1", cep, []transport.Address{"p", "b"}, WithCallTimeout(100*time.Millisecond))
	resp, err := c.Invoke(context.Background(), "op", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("status = %v", resp.Status)
	}
}

func TestClientExhaustsWhenAllDown(t *testing.T) {
	n := transport.NewMemNetwork()
	cep, _ := n.Endpoint("client")
	c := NewClient("c1", cep, []transport.Address{"ghost1", "ghost2"},
		WithCallTimeout(50*time.Millisecond), WithMaxRounds(2))
	_, err := c.Invoke(context.Background(), "op", nil)
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("Invoke: err = %v, want ErrExhausted", err)
	}
}

func TestClientAppErrorSurfaced(t *testing.T) {
	n := transport.NewMemNetwork()
	ep, _ := n.Endpoint("s")
	Serve(ep, func(ctx context.Context, req *Request) Response {
		return Response{Status: StatusAppError, Err: "division by zero"}
	})
	cep, _ := n.Endpoint("client")
	c := NewClient("c1", cep, []transport.Address{"s"})
	_, err := c.Invoke(context.Background(), "div", nil)
	if !errors.Is(err, ErrApp) {
		t.Fatalf("Invoke: err = %v, want ErrApp", err)
	}
}

func TestAtMostOnceAcrossFailover(t *testing.T) {
	// A client retries the same request identity against two replicas
	// sharing a reply log (as a duplex FTM does): the request must
	// execute exactly once.
	n := transport.NewMemNetwork()
	shared := NewReplyLog(8)
	execs := 0
	var mu sync.Mutex
	serveShared := func(addr transport.Address, accept *bool) {
		ep, err := n.Endpoint(addr)
		if err != nil {
			t.Fatal(err)
		}
		Serve(ep, func(ctx context.Context, req *Request) Response {
			mu.Lock()
			defer mu.Unlock()
			if !*accept {
				return Response{Status: StatusUnavailable}
			}
			if prev, ok := shared.Lookup(req.ClientID, req.Seq); ok {
				return prev
			}
			execs++
			resp := Response{ClientID: req.ClientID, Seq: req.Seq, Status: StatusOK, Payload: []byte("done")}
			shared.Record(resp)
			return resp
		})
	}
	acceptA, acceptB := true, false
	serveShared("a", &acceptA)
	serveShared("b", &acceptB)
	cep, _ := n.Endpoint("client")
	c := NewClient("c1", cep, []transport.Address{"a", "b"}, WithCallTimeout(100*time.Millisecond))

	if _, err := c.Invoke(context.Background(), "op", nil); err != nil {
		t.Fatalf("first Invoke: %v", err)
	}
	// Re-deliver the same request identity (as a retry after a lost
	// reply would): role switched to b, which sees the logged reply.
	mu.Lock()
	acceptA, acceptB = false, true
	mu.Unlock()
	resp, err := c.deliver(context.Background(), Request{ClientID: "c1", Seq: 1, Op: "op"})
	if err != nil {
		t.Fatalf("redelivery: %v", err)
	}
	if !resp.Replayed {
		t.Fatal("redelivered request was not served from the reply log")
	}
	mu.Lock()
	defer mu.Unlock()
	if execs != 1 {
		t.Fatalf("executions = %d, want 1 (at-most-once violated)", execs)
	}
}
