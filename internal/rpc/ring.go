package rpc

import (
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring mapping request keys onto shard IDs.
// Each shard contributes a fixed number of virtual points, so keys
// spread nearly uniformly and adding or removing one shard moves only
// the keys that hash into the arcs that shard owned — every other
// key keeps its assignment (bounded movement). The hash is FNV-1a over
// the key bytes: deterministic across processes and architectures, so
// every client of a deployment computes the same key→shard map without
// coordination.
type Ring struct {
	mu     sync.RWMutex
	vnodes int
	// points is the sorted ring: hashes of "shard#replica-point" pairs.
	points []ringPoint
	shards map[string]struct{}
}

type ringPoint struct {
	hash  uint64
	shard string
}

// DefaultVnodes is the virtual-point count per shard. 512 points keep
// the spread within a few percent at the shard counts this system runs
// (units to tens), while a full rebuild stays microseconds.
const DefaultVnodes = 512

// NewRing returns a ring holding the given shards.
func NewRing(shards ...string) *Ring {
	r := &Ring{vnodes: DefaultVnodes, shards: make(map[string]struct{})}
	for _, s := range shards {
		r.add(s)
	}
	r.rebuild()
	return r
}

// fnv1a is the 64-bit FNV-1a hash of s with a final avalanche pass —
// inlined rather than hash/fnv's Writer so a Pick allocates nothing.
// Raw FNV-1a clusters badly on the short, similar strings this ring
// hashes (shard IDs, small numeric keys): its low bytes barely diffuse
// into the high bits that position a point on the ring. The
// splitmix64-style finalizer spreads every input bit across the word,
// which is what the uniformity property tests rely on.
func fnv1a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

func (r *Ring) add(shard string) {
	r.shards[shard] = struct{}{}
}

// rebuild recomputes the sorted point list from the shard set. Called
// under the write lock (or before the ring is shared).
func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for shard := range r.shards {
		// Each virtual point hashes "shard#i": the point set of a shard is
		// a pure function of its ID, so two rings holding the same shards
		// are identical whatever order they were built in.
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:  fnv1a(shard + "#" + strconv.Itoa(i)),
				shard: shard,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties break on the shard ID so the winner is deterministic,
		// not insertion-ordered.
		return r.points[i].shard < r.points[j].shard
	})
}

// Add inserts a shard (no-op when present).
func (r *Ring) Add(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[shard]; ok {
		return
	}
	r.add(shard)
	r.rebuild()
}

// Remove deletes a shard (no-op when absent).
func (r *Ring) Remove(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.shards[shard]; !ok {
		return
	}
	delete(r.shards, shard)
	r.rebuild()
}

// Shards returns the shard IDs on the ring, sorted.
func (r *Ring) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Pick returns the shard owning key: the first ring point at or after
// the key's hash, wrapping at the top. An empty ring picks "".
func (r *Ring) Pick(key string) string {
	h := fnv1a(key)
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := len(r.points)
	if n == 0 {
		return ""
	}
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if i == n {
		i = 0
	}
	return r.points[i].shard
}
