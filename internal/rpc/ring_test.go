package rpc

import (
	"fmt"
	"testing"
)

// ringKeys generates n deterministic test keys shaped like the
// application's request keys.
func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", i)
	}
	return out
}

// TestRingDeterministic pins that two rings built from the same shard
// set — in different orders — assign every key identically, the
// property that lets independent clients route without coordination.
func TestRingDeterministic(t *testing.T) {
	a := NewRing("0", "1", "2", "3")
	b := NewRing("3", "1", "0", "2")
	for _, k := range ringKeys(4096) {
		if got, want := b.Pick(k), a.Pick(k); got != want {
			t.Fatalf("Pick(%q): build order changed the assignment: %q vs %q", k, got, want)
		}
	}
}

// TestRingStabilityUnderAdd checks the bounded-movement property: after
// adding a shard, every key either keeps its old shard or moves to the
// new one — no key shuffles between pre-existing shards.
func TestRingStabilityUnderAdd(t *testing.T) {
	keys := ringKeys(64 * 1024)
	r := NewRing("0", "1", "2")
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Pick(k)
	}
	r.Add("3")
	moved := 0
	for i, k := range keys {
		after := r.Pick(k)
		if after == before[i] {
			continue
		}
		if after != "3" {
			t.Fatalf("key %q moved %q -> %q, not to the added shard", k, before[i], after)
		}
		moved++
	}
	// The new shard should take roughly its proportional share (1/4) of
	// the key space — and, critically, not much more: a broken hash that
	// reshuffled everything would move ~75% of keys.
	frac := float64(moved) / float64(len(keys))
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("adding 1 of 4 shards moved %.1f%% of keys, want ~25%%", 100*frac)
	}
}

// TestRingStabilityUnderRemove checks the converse: removing a shard
// moves only that shard's keys, and every key of a surviving shard
// stays put.
func TestRingStabilityUnderRemove(t *testing.T) {
	keys := ringKeys(64 * 1024)
	r := NewRing("0", "1", "2", "3")
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Pick(k)
	}
	r.Remove("2")
	for i, k := range keys {
		after := r.Pick(k)
		if before[i] == "2" {
			if after == "2" {
				t.Fatalf("key %q still assigned to removed shard", k)
			}
			continue
		}
		if after != before[i] {
			t.Fatalf("key %q on surviving shard moved %q -> %q", k, before[i], after)
		}
	}
}

// TestRingAddRemoveRoundTrip pins that remove(add(ring)) restores the
// original assignment exactly: shard point sets are pure functions of
// the shard ID, so the ring has no history.
func TestRingAddRemoveRoundTrip(t *testing.T) {
	keys := ringKeys(16 * 1024)
	r := NewRing("0", "1", "2")
	before := make([]string, len(keys))
	for i, k := range keys {
		before[i] = r.Pick(k)
	}
	r.Add("9")
	r.Remove("9")
	for i, k := range keys {
		if got := r.Pick(k); got != before[i] {
			t.Fatalf("key %q: add+remove round trip changed %q -> %q", k, before[i], got)
		}
	}
}

// TestRingUniformSpread checks the load-balance property from the
// issue: across 64k keys on 4 shards, every shard's share is within
// 10% of the ideal quarter.
func TestRingUniformSpread(t *testing.T) {
	const nKeys = 64 * 1024
	shards := []string{"0", "1", "2", "3"}
	r := NewRing(shards...)
	counts := make(map[string]int)
	for _, k := range ringKeys(nKeys) {
		counts[r.Pick(k)]++
	}
	ideal := float64(nKeys) / float64(len(shards))
	for _, s := range shards {
		dev := (float64(counts[s]) - ideal) / ideal
		if dev < -0.10 || dev > 0.10 {
			t.Errorf("shard %s holds %d keys, %.1f%% off the ideal %.0f (budget ±10%%)",
				s, counts[s], 100*dev, ideal)
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate sizes: an empty ring
// picks nothing, a single-shard ring picks that shard for every key.
func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing()
	if got := empty.Pick("anything"); got != "" {
		t.Fatalf("empty ring picked %q", got)
	}
	one := NewRing("solo")
	for _, k := range ringKeys(128) {
		if got := one.Pick(k); got != "solo" {
			t.Fatalf("single-shard ring picked %q", got)
		}
	}
}
