package rpc

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// KindRequest is the transport message kind carrying client requests.
const KindRequest = "rpc.request"

// Client invokes a replicated service with retries and failover. The same
// (ClientID, Seq) identity is kept across retries so the service's reply
// log can enforce at-most-once execution.
type Client struct {
	id  string
	ep  transport.Endpoint
	seq atomic.Uint64

	mu       sync.Mutex
	replicas []transport.Address
	// preferred indexes the replica that last answered as master.
	preferred int

	callTimeout time.Duration
	maxRounds   int
	alwaysTrace bool
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithCallTimeout bounds each individual call attempt.
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.callTimeout = d }
}

// WithMaxRounds bounds how many full passes over the replica list a
// single Invoke makes before giving up.
func WithMaxRounds(n int) ClientOption {
	return func(c *Client) { c.maxRounds = n }
}

// WithAlwaysTrace samples every request of this client regardless of
// the process sampler — for diagnostic clients (ftmctl invoke) and
// tests that assert on span trees.
func WithAlwaysTrace() ClientOption {
	return func(c *Client) { c.alwaysTrace = true }
}

// NewClient returns a client identified by id, calling through ep and
// failing over across replicas (tried in order, master usually first).
func NewClient(id string, ep transport.Endpoint, replicas []transport.Address, opts ...ClientOption) *Client {
	c := &Client{
		id:          id,
		ep:          ep,
		replicas:    append([]transport.Address(nil), replicas...),
		callTimeout: 2 * time.Second,
		maxRounds:   3,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ID returns the client's identity — with a sequence number it
// determines the deterministic trace id of each request
// (telemetry.TraceIDFor).
func (c *Client) ID() string { return c.id }

// SetReplicas replaces the replica list (used when the membership
// changes).
func (c *Client) SetReplicas(replicas []transport.Address) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicas = append([]transport.Address(nil), replicas...)
	c.preferred = 0
}

// order returns the replica list starting at the preferred one.
func (c *Client) order() []transport.Address {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]transport.Address, 0, len(c.replicas))
	for i := range c.replicas {
		out = append(out, c.replicas[(c.preferred+i)%len(c.replicas)])
	}
	return out
}

func (c *Client) prefer(addr transport.Address) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range c.replicas {
		if a == addr {
			c.preferred = i
			return
		}
	}
}

// Invoke executes op(payload) on the replicated service with at-most-once
// semantics. It walks the replica list until one accepts the request as
// master, retrying up to the configured number of rounds.
func (c *Client) Invoke(ctx context.Context, op string, payload []byte) (Response, error) {
	req := Request{ClientID: c.id, Seq: c.seq.Add(1), Op: op, Payload: payload}
	req.Trace = c.traceRoot(req.Seq)
	return c.deliver(ctx, req)
}

// Redeliver re-sends a request under an explicit, previously used
// sequence number — the retry path a client takes after losing a reply.
// The service's reply log must replay rather than re-execute it.
func (c *Client) Redeliver(ctx context.Context, seq uint64, op string, payload []byte) (Response, error) {
	req := Request{ClientID: c.id, Seq: seq, Op: op, Payload: payload}
	req.Trace = c.traceRoot(seq)
	return c.deliver(ctx, req)
}

// traceRoot returns the root span context for a request, or the zero
// context when the request is not sampled. The trace ID is a pure
// function of the request identity, so a redelivery of a sampled
// request lands in the original's trace.
func (c *Client) traceRoot(seq uint64) telemetry.SpanContext {
	if c.alwaysTrace || telemetry.DefaultSampler().Sample() {
		return telemetry.SpanContext{TraceID: telemetry.TraceIDFor(c.id, seq)}
	}
	return telemetry.SpanContext{}
}

// deliver sends req until a replica produces a definitive response.
func (c *Client) deliver(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	mClientRequests.Inc()
	defer mClientLatency.ObserveSince(start)
	// Attributes are set inside the nil check: the unsampled path must
	// not pay for the attr slice or the req.ID() string.
	sp := telemetry.DefaultSpans().Start(req.Trace, "rpc.client")
	if sp != nil {
		// Downstream spans (server, execute, ship, apply) nest under the
		// client span, which becomes the trace root.
		sp.SetAttr("op", req.Op)
		sp.SetAttr("req", req.ID())
		req.Trace = sp.Context()
		defer sp.End()
	}
	data, err := transport.Encode(req)
	if err != nil {
		return Response{}, err
	}
	var lastErr error = ErrExhausted
	attempts := 0
	for round := 0; round < c.maxRounds; round++ {
		for _, addr := range c.order() {
			if err := ctx.Err(); err != nil {
				return Response{}, err
			}
			attempts++
			callCtx, cancel := context.WithTimeout(ctx, c.callTimeout)
			replyData, err := c.ep.Call(callCtx, addr, KindRequest, data)
			cancel()
			if err != nil {
				mClientAttemptErrTransport.Inc()
				lastErr = err
				continue
			}
			var resp Response
			if err := transport.Decode(replyData, &resp); err != nil {
				mClientAttemptErrDecode.Inc()
				lastErr = err
				continue
			}
			switch resp.Status {
			case StatusOK, StatusAppError:
				if attempts > 1 {
					mClientFailovers.Inc()
				}
				c.prefer(addr)
				sp.SetAttr("status", resp.Status.String())
				sp.SetAttr("attempts", strconv.Itoa(attempts))
				if resp.Replayed {
					sp.SetAttr("replayed", "true")
				}
				if resp.Status == StatusAppError {
					return resp, fmt.Errorf("%w: %s", ErrApp, resp.Err)
				}
				return resp, nil
			case StatusNotMaster, StatusUnavailable:
				mClientAttemptErrRedirect.Inc()
				lastErr = fmt.Errorf("rpc: %s answered %s", addr, resp.Status)
				continue
			default:
				lastErr = fmt.Errorf("rpc: %s answered unknown status %d", addr, resp.Status)
			}
		}
		// Brief pause between rounds: a failover may be in progress.
		if err := sleepCtx(ctx, 50*time.Millisecond); err != nil {
			return Response{}, err
		}
	}
	mClientExhausted.Inc()
	sp.SetAttr("status", "exhausted")
	return Response{}, fmt.Errorf("%w: last error: %v", ErrExhausted, lastErr)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Handler is the server-side request processor.
type Handler func(ctx context.Context, req Request) Response

// Serve registers h as the request handler on ep. The returned function
// unregisters it.
func Serve(ep transport.Endpoint, h Handler) func() {
	ep.Handle(KindRequest, func(ctx context.Context, p transport.Packet) ([]byte, error) {
		var req Request
		if err := transport.Decode(p.Payload, &req); err != nil {
			return nil, err
		}
		start := time.Now()
		mServerRequests.Inc()
		sp := telemetry.DefaultSpans().Start(req.Trace, "rpc.server")
		if sp != nil {
			// The handler (and everything it ships) nests under the
			// server span.
			sp.SetAttr("op", req.Op)
			sp.SetAttr("req", req.ID())
			req.Trace = sp.Context()
		}
		resp := h(ctx, req)
		resp.ClientID = req.ClientID
		resp.Seq = req.Seq
		if sp != nil {
			sp.SetAttr("status", resp.Status.String())
			if resp.Replayed {
				sp.SetAttr("replayed", "true")
			}
			sp.End()
		}
		mServerLatency.ObserveSince(start)
		countServerResponse(resp.Status)
		if resp.Replayed {
			mServerReplays.Inc()
		}
		return transport.Encode(resp)
	})
	return func() { ep.Handle(KindRequest, nil) }
}
