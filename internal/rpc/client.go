package rpc

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// KindRequest is the transport message kind carrying client requests.
const KindRequest = "rpc.request"

// Client invokes a replicated service with retries and failover. The same
// (ClientID, Seq) identity is kept across retries so the service's reply
// log can enforce at-most-once execution.
type Client struct {
	id  string
	ep  transport.Endpoint
	seq atomic.Uint64

	mu       sync.Mutex
	replicas []transport.Address
	// preferred indexes the replica that last answered as master.
	preferred int

	callTimeout time.Duration
	maxRounds   int
	alwaysTrace bool
	group       string
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithCallTimeout bounds each individual call attempt.
func WithCallTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.callTimeout = d }
}

// WithMaxRounds bounds how many full passes over the replica list a
// single Invoke makes before giving up.
func WithMaxRounds(n int) ClientOption {
	return func(c *Client) { c.maxRounds = n }
}

// WithAlwaysTrace samples every request of this client regardless of
// the process sampler — for diagnostic clients (ftmctl invoke) and
// tests that assert on span trees.
func WithAlwaysTrace() ClientOption {
	return func(c *Client) { c.alwaysTrace = true }
}

// WithGroup stamps every request of this client with a replica-group
// (shard) ID, so a serving-side mux can dispatch it — the per-shard
// clients a Router holds are built with it.
func WithGroup(group string) ClientOption {
	return func(c *Client) { c.group = group }
}

// NewClient returns a client identified by id, calling through ep and
// failing over across replicas (tried in order, master usually first).
func NewClient(id string, ep transport.Endpoint, replicas []transport.Address, opts ...ClientOption) *Client {
	c := &Client{
		id:          id,
		ep:          ep,
		replicas:    append([]transport.Address(nil), replicas...),
		callTimeout: 2 * time.Second,
		maxRounds:   3,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// ID returns the client's identity — with a sequence number it
// determines the deterministic trace id of each request
// (telemetry.TraceIDFor).
func (c *Client) ID() string { return c.id }

// SetReplicas replaces the replica list (used when the membership
// changes).
func (c *Client) SetReplicas(replicas []transport.Address) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.replicas = append([]transport.Address(nil), replicas...)
	c.preferred = 0
}

// replicaAt returns the i-th replica starting from the preferred one,
// plus the list length — the allocation-free form of walking the
// failover order.
func (c *Client) replicaAt(i int) (transport.Address, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.replicas)
	if n == 0 {
		return "", 0
	}
	return c.replicas[(c.preferred+i)%n], n
}

func (c *Client) prefer(addr transport.Address) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range c.replicas {
		if a == addr {
			c.preferred = i
			return
		}
	}
}

// Invoke executes op(payload) on the replicated service with at-most-once
// semantics. It walks the replica list until one accepts the request as
// master, retrying up to the configured number of rounds.
func (c *Client) Invoke(ctx context.Context, op string, payload []byte) (Response, error) {
	req := Request{ClientID: c.id, Seq: c.seq.Add(1), Op: op, Group: c.group, Payload: payload}
	req.Trace = c.traceRoot(req.Seq)
	return c.deliver(ctx, req)
}

// Redeliver re-sends a request under an explicit, previously used
// sequence number — the retry path a client takes after losing a reply.
// The service's reply log must replay rather than re-execute it.
func (c *Client) Redeliver(ctx context.Context, seq uint64, op string, payload []byte) (Response, error) {
	req := Request{ClientID: c.id, Seq: seq, Op: op, Group: c.group, Payload: payload}
	req.Trace = c.traceRoot(seq)
	return c.deliver(ctx, req)
}

// traceRoot returns the root span context for a request, or the zero
// context when the request is not sampled. The trace ID is a pure
// function of the request identity, so a redelivery of a sampled
// request lands in the original's trace.
func (c *Client) traceRoot(seq uint64) telemetry.SpanContext {
	if c.alwaysTrace || telemetry.DefaultSampler().Sample() {
		return telemetry.SpanContext{TraceID: telemetry.TraceIDFor(c.id, seq)}
	}
	return telemetry.SpanContext{}
}

// deliver sends req until a replica produces a definitive response.
func (c *Client) deliver(ctx context.Context, req Request) (Response, error) {
	start := time.Now()
	mClientRequests.Inc()
	defer mClientLatency.ObserveSince(start)
	// Attributes are set inside the nil check: the unsampled path must
	// not pay for the attr slice or the req.ID() string.
	sp := telemetry.DefaultSpans().Start(req.Trace, "rpc.client")
	if sp != nil {
		// Downstream spans (server, execute, ship, apply) nest under the
		// client span, which becomes the trace root.
		sp.SetAttr("op", req.Op)
		sp.SetAttr("req", req.ID())
		req.Trace = sp.Context()
		defer sp.End()
	}
	// Concrete AppendFast call: EncodePooled would box req into its any
	// parameter, one heap allocation per request.
	data := req.AppendFast(transport.FastFrame())
	// The request buffer recycles unless an attempt ended ambiguously (a
	// timeout or cancellation may leave a handler still reading it).
	ambiguous := false
	defer func() {
		if !ambiguous {
			transport.PutBuf(data)
		}
	}()
	var lastErr error = ErrExhausted
	attempts := 0
	for round := 0; round < c.maxRounds; round++ {
		for i := 0; ; i++ {
			addr, n := c.replicaAt(i)
			if i >= n {
				break
			}
			if err := ctx.Err(); err != nil {
				return Response{}, err
			}
			attempts++
			replyData, err := c.callAttempt(ctx, addr, data)
			if err != nil {
				if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
					ambiguous = true
				}
				mClientAttemptErrTransport.Inc()
				lastErr = err
				continue
			}
			var resp Response
			if err := transport.Decode(replyData, &resp); err != nil {
				mClientAttemptErrDecode.Inc()
				lastErr = err
				continue
			}
			// The reply buffer is dead once decoded: Decode copied what
			// the Response keeps.
			transport.PutBuf(replyData)
			switch resp.Status {
			case StatusOK, StatusAppError:
				if attempts > 1 {
					mClientFailovers.Inc()
				}
				c.prefer(addr)
				sp.SetAttr("status", resp.Status.String())
				sp.SetAttr("attempts", strconv.Itoa(attempts))
				if resp.Replayed {
					sp.SetAttr("replayed", "true")
				}
				if resp.Status == StatusAppError {
					return resp, fmt.Errorf("%w: %s", ErrApp, resp.Err)
				}
				return resp, nil
			case StatusNotMaster, StatusUnavailable:
				mClientAttemptErrRedirect.Inc()
				lastErr = fmt.Errorf("rpc: %s answered %s", addr, resp.Status)
				continue
			default:
				lastErr = fmt.Errorf("rpc: %s answered unknown status %d", addr, resp.Status)
			}
		}
		// Brief pause between rounds: a failover may be in progress.
		if err := sleepCtx(ctx, 50*time.Millisecond); err != nil {
			return Response{}, err
		}
	}
	mClientExhausted.Inc()
	sp.SetAttr("status", "exhausted")
	return Response{}, fmt.Errorf("%w: last error: %v", ErrExhausted, lastErr)
}

// callAttempt performs one transport call bounded by the per-attempt
// timeout. When the parent context is non-cancellable — the common case
// for steadily invoking clients — the timeout rides a pooled reusable
// context instead of a fresh context.WithTimeout per attempt.
func (c *Client) callAttempt(ctx context.Context, addr transport.Address, data []byte) ([]byte, error) {
	if c.callTimeout <= 0 {
		return c.ep.Call(ctx, addr, KindRequest, data)
	}
	if ctx.Done() == nil {
		a := acquireAttemptCtx(ctx, c.callTimeout)
		reply, err := c.ep.Call(a, addr, KindRequest, data)
		// A timed-out or cancelled attempt may have left an abandoned
		// handler holding this context; those instances are let go to the
		// garbage collector instead of the pool.
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
			releaseAttemptCtx(a)
		}
		return reply, err
	}
	callCtx, cancel := context.WithTimeout(ctx, c.callTimeout)
	defer cancel()
	return c.ep.Call(callCtx, addr, KindRequest, data)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Handler is the server-side request processor. The request is passed
// by pointer so the serve loop can recycle it; implementations must not
// retain it past their return.
type Handler func(ctx context.Context, req *Request) Response

// reqPool recycles decoded server-side requests.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

// Serve registers h as the request handler on ep. The returned function
// unregisters it.
func Serve(ep transport.Endpoint, h Handler) func() {
	ep.Handle(KindRequest, func(ctx context.Context, p transport.Packet) ([]byte, error) {
		req := reqPool.Get().(*Request)
		*req = Request{}
		if err := req.decodeFrom(p.Payload); err != nil {
			reqPool.Put(req)
			return nil, err
		}
		start := time.Now()
		mServerRequests.Inc()
		group := req.Group
		sp := telemetry.DefaultSpans().Start(req.Trace, "rpc.server")
		if sp != nil {
			// The handler (and everything it ships) nests under the
			// server span.
			sp.SetAttr("op", req.Op)
			sp.SetAttr("req", req.ID())
			req.Trace = sp.Context()
		}
		resp := h(ctx, req)
		resp.ClientID = req.ClientID
		resp.Seq = req.Seq
		reqPool.Put(req)
		if sp != nil {
			sp.SetAttr("status", resp.Status.String())
			if resp.Replayed {
				sp.SetAttr("replayed", "true")
			}
			sp.End()
		}
		elapsed := time.Since(start)
		mServerLatency.Observe(elapsed)
		countServerResponse(resp.Status)
		shardSeriesFor(group).record(elapsed, resp.Status)
		if resp.Replayed {
			mServerReplays.Inc()
		}
		// The reply buffer travels to the caller, which recycles it after
		// decoding (transport.PutBuf in the client). Concrete AppendFast
		// call — EncodePooled would box resp on every reply.
		return resp.AppendFast(transport.FastFrame()), nil
	})
	return func() { ep.Handle(KindRequest, nil) }
}
