// Package rpc implements the client/server request protocol of the
// fault-tolerant applications: client-stamped request identities, retries
// with primary failover, and at-most-once execution semantics backed by a
// reply log that duplex FTMs replicate to their slave (so a failover never
// re-executes a request whose reply was already produced).
package rpc

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Request is one client call. ClientID and Seq together identify the
// request across retries and failovers.
type Request struct {
	ClientID string
	Seq      uint64
	Op       string
	Payload  []byte
}

// ID returns the request's globally unique identity.
func (r Request) ID() string { return fmt.Sprintf("%s#%d", r.ClientID, r.Seq) }

// Status encodes the outcome class of a response.
type Status int

// Response status values.
const (
	// StatusOK is a successful execution.
	StatusOK Status = iota + 1
	// StatusAppError is a business-logic failure (deterministic, logged
	// for at-most-once like any reply).
	StatusAppError
	// StatusNotMaster tells the client to fail over to another replica.
	StatusNotMaster
	// StatusUnavailable reports a replica that cannot serve right now
	// (for example mid-recovery); the client retries elsewhere.
	StatusUnavailable
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAppError:
		return "app-error"
	case StatusNotMaster:
		return "not-master"
	case StatusUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Response is the reply to a Request.
type Response struct {
	ClientID string
	Seq      uint64
	Status   Status
	Payload  []byte
	Err      string
	// Replayed marks a response served from the reply log rather than by
	// re-execution (at-most-once in action).
	Replayed bool
}

// Errors of the rpc package.
var (
	// ErrExhausted reports that all replicas were tried without success.
	ErrExhausted = errors.New("rpc: all replicas unreachable")
	// ErrApp wraps a StatusAppError response on the client side.
	ErrApp = errors.New("rpc: application error")
)

// ReplyLog is the at-most-once cache: the last response per client
// request. It retains a bounded number of entries per client (a client
// only ever retries its most recent requests). The log is part of FTM
// state: PBR ships it inside checkpoints, LFR maintains it on both
// replicas.
type ReplyLog struct {
	mu        sync.Mutex
	perClient int
	entries   map[string][]Response // clientID -> responses ordered by seq
}

// NewReplyLog returns a log retaining perClient responses per client
// (minimum 1).
func NewReplyLog(perClient int) *ReplyLog {
	if perClient < 1 {
		perClient = 1
	}
	return &ReplyLog{perClient: perClient, entries: make(map[string][]Response)}
}

// Lookup returns the logged response for (clientID, seq).
func (l *ReplyLog) Lookup(clientID string, seq uint64) (Response, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range l.entries[clientID] {
		if r.Seq == seq {
			r.Replayed = true
			return r, true
		}
	}
	return Response{}, false
}

// Record stores a response, evicting the oldest entries of that client
// beyond the retention bound.
func (l *ReplyLog) Record(resp Response) {
	l.mu.Lock()
	defer l.mu.Unlock()
	list := l.entries[resp.ClientID]
	for i, r := range list {
		if r.Seq == resp.Seq {
			list[i] = resp
			return
		}
	}
	list = append(list, resp)
	sort.Slice(list, func(i, j int) bool { return list[i].Seq < list[j].Seq })
	if len(list) > l.perClient {
		list = list[len(list)-l.perClient:]
	}
	l.entries[resp.ClientID] = list
}

// Len returns the total number of logged responses.
func (l *ReplyLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, list := range l.entries {
		n += len(list)
	}
	return n
}

// Snapshot serializes the log for inclusion in a checkpoint.
func (l *ReplyLog) Snapshot() []Response {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Response
	for _, list := range l.entries {
		out = append(out, list...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ClientID != out[j].ClientID {
			return out[i].ClientID < out[j].ClientID
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Restore replaces the log contents with a snapshot.
func (l *ReplyLog) Restore(snapshot []Response) {
	l.mu.Lock()
	l.entries = make(map[string][]Response, len(snapshot))
	l.mu.Unlock()
	for _, r := range snapshot {
		l.Record(r)
	}
}
