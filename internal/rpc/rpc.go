// Package rpc implements the client/server request protocol of the
// fault-tolerant applications: client-stamped request identities, retries
// with primary failover, and at-most-once execution semantics backed by a
// reply log that duplex FTMs replicate to their slave (so a failover never
// re-executes a request whose reply was already produced).
package rpc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"resilientft/internal/telemetry"
)

// Request is one client call. ClientID and Seq together identify the
// request across retries and failovers.
type Request struct {
	ClientID string
	Seq      uint64
	Op       string
	// Group is the replica group (shard) the request targets; empty in
	// unsharded deployments. Routers stamp it from the ring pick, and a
	// replica mux on the serving side dispatches on it.
	Group   string
	Payload []byte
	// Trace carries the sampled span context the request executes under;
	// the zero value (unsampled) is the common case. On the wire it
	// travels as an optional codec trailer, so unsampled requests and
	// pre-trace peers produce byte-identical frames.
	Trace telemetry.SpanContext
}

// ID returns the request's globally unique identity.
func (r Request) ID() string { return fmt.Sprintf("%s#%d", r.ClientID, r.Seq) }

// Status encodes the outcome class of a response.
type Status int

// Response status values.
const (
	// StatusOK is a successful execution.
	StatusOK Status = iota + 1
	// StatusAppError is a business-logic failure (deterministic, logged
	// for at-most-once like any reply).
	StatusAppError
	// StatusNotMaster tells the client to fail over to another replica.
	StatusNotMaster
	// StatusUnavailable reports a replica that cannot serve right now
	// (for example mid-recovery); the client retries elsewhere.
	StatusUnavailable
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAppError:
		return "app-error"
	case StatusNotMaster:
		return "not-master"
	case StatusUnavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Response is the reply to a Request.
type Response struct {
	ClientID string
	Seq      uint64
	Status   Status
	Payload  []byte
	Err      string
	// Replayed marks a response served from the reply log rather than by
	// re-execution (at-most-once in action).
	Replayed bool
}

// Errors of the rpc package.
var (
	// ErrExhausted reports that all replicas were tried without success.
	ErrExhausted = errors.New("rpc: all replicas unreachable")
	// ErrApp wraps a StatusAppError response on the client side.
	ErrApp = errors.New("rpc: application error")
)

// clientRing is the per-client retention window: a seq-indexed ring of
// the client's most recent responses. Slot seq%len holds the response
// with the highest seq ever recorded for that residue, which is exactly
// the "keep the newest perClient seqs" retention policy without any
// scanning or sorting.
type clientRing struct {
	slots []Response
	valid []bool
}

// ReplyLog is the at-most-once cache: the last response per client
// request. It retains a bounded number of entries per client (a client
// only ever retries its most recent requests). The log is part of FTM
// state: PBR ships it inside checkpoints, LFR maintains it on both
// replicas.
//
// Lookup and Record are O(1) via per-client ring buffers. A bounded
// journal of recent records, indexed by a monotonic mark, supports
// SnapshotSince so delta checkpoints ship only the responses recorded
// since the peer's last acknowledged mark.
type ReplyLog struct {
	mu        sync.Mutex
	perClient int
	rings     map[string]*clientRing

	// mark counts records ever applied; the journal tail holds the
	// records with indices [tailStart, mark).
	mark      uint64
	tail      []Response
	tailStart uint64
	tailMax   int
}

// NewReplyLog returns a log retaining perClient responses per client
// (minimum 1).
func NewReplyLog(perClient int) *ReplyLog {
	if perClient < 1 {
		perClient = 1
	}
	tailMax := 4 * perClient
	if tailMax < 256 {
		tailMax = 256
	}
	return &ReplyLog{
		perClient: perClient,
		rings:     make(map[string]*clientRing),
		tailMax:   tailMax,
	}
}

// Lookup returns the logged response for (clientID, seq).
func (l *ReplyLog) Lookup(clientID string, seq uint64) (Response, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ring := l.rings[clientID]
	if ring == nil {
		return Response{}, false
	}
	i := int(seq % uint64(l.perClient))
	if !ring.valid[i] || ring.slots[i].Seq != seq {
		return Response{}, false
	}
	r := ring.slots[i]
	r.Replayed = true
	return r, true
}

// Record stores a response, evicting the oldest entry of that client
// sharing its ring slot.
func (l *ReplyLog) Record(resp Response) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.record(resp, true)
}

// RecordAll stores a batch of responses under one lock acquisition; the
// slave applies checkpoint-delta tails through it.
func (l *ReplyLog) RecordAll(resps []Response) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, r := range resps {
		l.record(r, true)
	}
}

func (l *ReplyLog) record(resp Response, journal bool) {
	ring := l.rings[resp.ClientID]
	if ring == nil {
		ring = &clientRing{
			slots: make([]Response, l.perClient),
			valid: make([]bool, l.perClient),
		}
		l.rings[resp.ClientID] = ring
	}
	i := int(resp.Seq % uint64(l.perClient))
	if ring.valid[i] && ring.slots[i].Seq > resp.Seq {
		// A newer request already claimed the slot; under the retention
		// bound the incoming response would have been evicted anyway.
		return
	}
	ring.slots[i] = resp
	ring.valid[i] = true
	if !journal {
		return
	}
	l.mark++
	l.tail = append(l.tail, resp)
	if len(l.tail) > l.tailMax {
		// Drop down to half the bound so trimming stays amortized O(1).
		drop := len(l.tail) - l.tailMax/2
		l.tail = append(l.tail[:0:0], l.tail[drop:]...)
		l.tailStart += uint64(drop)
	}
}

// Mark returns the journal position: the count of records applied so
// far. A later SnapshotSince(mark) yields exactly the records that
// follow.
func (l *ReplyLog) Mark() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.mark
}

// SnapshotSince returns the responses recorded after the given mark and
// the new mark. ok is false when the journal no longer reaches back that
// far (or the mark is from another log's history); the caller must fall
// back to a full Snapshot.
func (l *ReplyLog) SnapshotSince(mark uint64) (tail []Response, newMark uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if mark < l.tailStart || mark > l.mark {
		return nil, l.mark, false
	}
	out := append([]Response(nil), l.tail[mark-l.tailStart:]...)
	return out, l.mark, true
}

// Len returns the total number of logged responses.
func (l *ReplyLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ring := range l.rings {
		for _, v := range ring.valid {
			if v {
				n++
			}
		}
	}
	return n
}

// Snapshot serializes the log for inclusion in a checkpoint. The
// ordering (ClientID, then Seq) is part of the checkpoint wire format
// and must not change.
func (l *ReplyLog) Snapshot() []Response {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked()
}

// SnapshotMarked atomically pairs a full snapshot with the journal mark
// it corresponds to, so a SnapshotSince from that mark continues exactly
// where the snapshot left off.
func (l *ReplyLog) SnapshotMarked() ([]Response, uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshotLocked(), l.mark
}

func (l *ReplyLog) snapshotLocked() []Response {
	var out []Response
	for _, ring := range l.rings {
		for i, v := range ring.valid {
			if v {
				out = append(out, ring.slots[i])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ClientID != out[j].ClientID {
			return out[i].ClientID < out[j].ClientID
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Restore replaces the log contents with a snapshot. The journal is
// cleared (tailStart catches up to mark), so a SnapshotSince against a
// pre-restore mark reports ok=false and forces a full snapshot.
func (l *ReplyLog) Restore(snapshot []Response) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rings = make(map[string]*clientRing, len(snapshot))
	l.tail = nil
	l.tailStart = l.mark
	for _, r := range snapshot {
		l.record(r, false)
	}
}
