package detector

import "resilientft/internal/telemetry"

// Detector series. The per-peer φ gauge and inter-arrival histogram are
// labelled by peer address (peer sets are small — label cardinality is
// bounded by the membership, not by traffic); the transition counters
// split by direction so a flapping peer shows as paired
// suspicion/recovery increments while a hard crash shows one suspicion
// and one eviction.
var (
	mSuspicions = telemetry.Default().Counter("detector_suspicions_total")
	mRecoveries = telemetry.Default().Counter("detector_recoveries_total")
	mEvictions  = telemetry.Default().Counter("detector_evictions_total")

	mHeartbeatsSent    = telemetry.Default().Counter("detector_heartbeats_sent_total")
	mHeartbeatsStalled = telemetry.Default().Counter("detector_heartbeats_stalled_total")
)

// peerPhiGauge resolves the milli-φ gauge of one peer (gauges are
// integral; φ is exported in thousandths).
func peerPhiGauge(peer string) *telemetry.Gauge {
	return telemetry.Default().Gauge("detector_phi_milli", "peer", peer)
}

// peerInterarrival resolves one peer's inter-arrival histogram, whose
// p50/p95/p99 the exporters derive.
func peerInterarrival(peer string) *telemetry.Histogram {
	return telemetry.Default().Histogram("detector_interarrival", "peer", peer)
}
