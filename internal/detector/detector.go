// Package detector implements the failure-detection substrate used by all
// duplex FTMs: a heartbeat emitter on each replica and a watchdog that
// raises a suspicion when a peer's heartbeats stop arriving (the paper's
// "dedicated entity (e.g., heartbeat, watchdog)" that triggers recovery).
package detector

import (
	"context"
	"sync"
	"time"

	"resilientft/internal/transport"
)

// KindHeartbeat is the transport message kind of heartbeats.
const KindHeartbeat = "fd.heartbeat"

// Heartbeater periodically sends heartbeats to a set of peers.
type Heartbeater struct {
	ep       transport.Endpoint
	interval time.Duration

	mu    sync.Mutex
	peers []transport.Address

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewHeartbeater returns a heartbeater sending to peers every interval.
// Call Start to begin and Stop to halt (simulating the silence of a
// crashed replica).
func NewHeartbeater(ep transport.Endpoint, interval time.Duration, peers ...transport.Address) *Heartbeater {
	return &Heartbeater{
		ep:       ep,
		interval: interval,
		peers:    append([]transport.Address(nil), peers...),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SetPeers replaces the peer set.
func (h *Heartbeater) SetPeers(peers ...transport.Address) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.peers = append([]transport.Address(nil), peers...)
}

// Start launches the heartbeat loop.
func (h *Heartbeater) Start() {
	go func() {
		defer close(h.done)
		ticker := time.NewTicker(h.interval)
		defer ticker.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-ticker.C:
				h.beat()
			}
		}
	}()
}

func (h *Heartbeater) beat() {
	h.mu.Lock()
	peers := append([]transport.Address(nil), h.peers...)
	h.mu.Unlock()
	for _, p := range peers {
		// Heartbeats are fire-and-forget; a dead peer's error is the
		// watchdog's business, not ours.
		_ = h.ep.Send(context.Background(), p, KindHeartbeat, []byte(h.ep.Addr()))
	}
}

// Stop halts the heartbeat loop. Safe to call more than once.
func (h *Heartbeater) Stop() {
	h.once.Do(func() { close(h.stop) })
	<-h.done
}

// Watchdog monitors heartbeat arrivals and reports peers whose
// heartbeats have been silent for longer than the timeout.
type Watchdog struct {
	timeout time.Duration

	mu       sync.Mutex
	lastSeen map[transport.Address]time.Time
	suspects map[transport.Address]bool
	onChange func(peer transport.Address, suspected bool)

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewWatchdog returns a watchdog attached to ep. onChange fires once per
// suspicion transition (suspected true when the peer goes silent, false
// when heartbeats resume). Monitor must be called for each watched peer.
func NewWatchdog(ep transport.Endpoint, timeout time.Duration, onChange func(peer transport.Address, suspected bool)) *Watchdog {
	w := &Watchdog{
		timeout:  timeout,
		lastSeen: make(map[transport.Address]time.Time),
		suspects: make(map[transport.Address]bool),
		onChange: onChange,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	ep.Handle(KindHeartbeat, func(ctx context.Context, p transport.Packet) ([]byte, error) {
		w.observe(p.From)
		return nil, nil
	})
	return w
}

// Monitor begins watching a peer; the grace period starts now.
func (w *Watchdog) Monitor(peer transport.Address) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lastSeen[peer] = time.Now()
	w.suspects[peer] = false
}

// Forget stops watching a peer.
func (w *Watchdog) Forget(peer transport.Address) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.lastSeen, peer)
	delete(w.suspects, peer)
}

func (w *Watchdog) observe(peer transport.Address) {
	w.mu.Lock()
	if _, watched := w.lastSeen[peer]; !watched {
		w.mu.Unlock()
		return
	}
	w.lastSeen[peer] = time.Now()
	wasSuspected := w.suspects[peer]
	w.suspects[peer] = false
	cb := w.onChange
	w.mu.Unlock()
	if wasSuspected && cb != nil {
		cb(peer, false)
	}
}

// Suspected reports whether peer is currently suspected.
func (w *Watchdog) Suspected(peer transport.Address) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.suspects[peer]
}

// Start launches the periodic silence check (at a quarter of the
// timeout).
func (w *Watchdog) Start() {
	go func() {
		defer close(w.done)
		period := w.timeout / 4
		if period <= 0 {
			period = time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
				w.check()
			}
		}
	}()
}

func (w *Watchdog) check() {
	now := time.Now()
	type transition struct {
		peer transport.Address
	}
	var fired []transition
	w.mu.Lock()
	for peer, seen := range w.lastSeen {
		if !w.suspects[peer] && now.Sub(seen) > w.timeout {
			w.suspects[peer] = true
			fired = append(fired, transition{peer: peer})
		}
	}
	cb := w.onChange
	w.mu.Unlock()
	if cb == nil {
		return
	}
	for _, tr := range fired {
		cb(tr.peer, true)
	}
}

// Stop halts the watchdog. Safe to call more than once.
func (w *Watchdog) Stop() {
	w.once.Do(func() { close(w.stop) })
	<-w.done
}
