// Package detector implements the failure-detection substrate used by
// all duplex FTMs: a heartbeat emitter on each replica and a phi-accrual
// watchdog that grades each peer's silence into a continuous suspicion
// level (the paper's "dedicated entity (e.g., heartbeat, watchdog)" that
// triggers recovery, upgraded from a binary timeout to a measured
// inter-arrival model — see phi.go).
package detector

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// KindHeartbeat is the transport message kind of heartbeats.
const KindHeartbeat = "fd.heartbeat"

// Heartbeater periodically sends heartbeats to a set of peers. Sends
// fan out concurrently with a per-send timeout, so one slow
// (gray-failed) peer cannot stall the others' beats and make healthy
// peers look silent.
type Heartbeater struct {
	ep          transport.Endpoint
	interval    time.Duration
	sendTimeout time.Duration

	mu    sync.Mutex
	peers []transport.Address

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewHeartbeater returns a heartbeater sending to peers every interval.
// Call Start to begin and Stop to halt (simulating the silence of a
// crashed replica).
func NewHeartbeater(ep transport.Endpoint, interval time.Duration, peers ...transport.Address) *Heartbeater {
	return &Heartbeater{
		ep:       ep,
		interval: interval,
		// One full interval is the natural deadline: a send still in
		// flight when the next beat is due is doing the watchdog's peer no
		// good anyway.
		sendTimeout: interval,
		peers:       append([]transport.Address(nil), peers...),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
}

// SetPeers replaces the peer set.
func (h *Heartbeater) SetPeers(peers ...transport.Address) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.peers = append([]transport.Address(nil), peers...)
}

// Start launches the heartbeat loop.
func (h *Heartbeater) Start() {
	go func() {
		defer close(h.done)
		ticker := time.NewTicker(h.interval)
		defer ticker.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-ticker.C:
				h.beat()
			}
		}
	}()
}

// beat fans one heartbeat out to every peer concurrently. Each send
// carries its own timeout and runs in its own goroutine: a peer that
// accepts bytes slowly (gray failure) delays only its own beat, and
// beat itself never waits — the next tick's sends overlap a stalled
// one rather than queueing behind it.
func (h *Heartbeater) beat() {
	h.mu.Lock()
	peers := append([]transport.Address(nil), h.peers...)
	h.mu.Unlock()
	timeout := h.sendTimeout
	if timeout <= 0 {
		timeout = h.interval
	}
	for _, p := range peers {
		go func(p transport.Address) {
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			// Heartbeats are fire-and-forget; a dead peer's error is the
			// watchdog's business, not ours. A timed-out send is worth
			// counting, though: it is the emitting side's first sign of a
			// gray peer.
			if err := h.ep.Send(ctx, p, KindHeartbeat, []byte(h.ep.Addr())); err != nil {
				if ctx.Err() != nil {
					mHeartbeatsStalled.Inc()
				}
				return
			}
			mHeartbeatsSent.Inc()
		}(p)
	}
}

// Stop halts the heartbeat loop. Safe to call more than once.
func (h *Heartbeater) Stop() {
	h.once.Do(func() { close(h.stop) })
	<-h.done
}

// State grades a watched peer.
type State int

// Peer states, ordered by severity.
const (
	// StateAlive: heartbeats arriving as modelled.
	StateAlive State = iota
	// StateSuspected: φ crossed the suspect threshold — failover
	// machinery engages, but the verdict is revocable.
	StateSuspected
	// StateEvicted: φ crossed the evict threshold — the silence is so
	// far outside the observed distribution the peer is treated as gone
	// for placement purposes until heartbeats durably resume.
	StateEvicted
)

// String renders the state.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspected:
		return "suspected"
	case StateEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Transition reports one peer state change, with the evidence a
// post-mortem needs: the suspicion level at the flip and how long the
// peer had been silent — so operators can tell a flap (short silence,
// quick recovery) from a hard crash (silence that keeps growing).
type Transition struct {
	Peer transport.Address
	// From and To are the states the peer moved between.
	From, To State
	// Phi is the suspicion level when the transition fired.
	Phi float64
	// Silence is how long the peer had been silent at the transition
	// (for recoveries: the gap the resumed heartbeat closed).
	Silence time.Duration
	// SilentSince is the arrival time of the last heartbeat before the
	// transition.
	SilentSince time.Time
}

// Suspected reports whether the transition's target state counts as
// suspected (suspected or evicted).
func (t Transition) Suspected() bool { return t.To >= StateSuspected }

// Config tunes the phi-accrual watchdog.
type Config struct {
	// SuspectPhi is the suspicion level raising StateSuspected
	// (default 8: the observed silence would occur by chance once in
	// 10^8 heartbeats).
	SuspectPhi float64
	// EvictPhi is the suspicion level raising StateEvicted (default 16).
	EvictPhi float64
	// RecoveryPhi is the level φ must fall below before a suspected
	// peer can return to StateAlive (default SuspectPhi/2) — the lower
	// leg of the hysteresis band.
	RecoveryPhi float64
	// RecoveryBeats is how many consecutive arrivals a suspected peer
	// must deliver (each with φ below RecoveryPhi at arrival) before it
	// is unsuspected (default 3) — the other leg: one lucky heartbeat
	// in a long silence does not clear the verdict.
	RecoveryBeats int
	// MinSamples is the inter-arrival sample count below which the
	// model is not trusted and the BootstrapTimeout silence check
	// applies instead (default 8).
	MinSamples int
	// BootstrapTimeout is the binary silence timeout used until the
	// window holds MinSamples (default 8× the expected interval when
	// derived through NewWatchdog, else 500ms).
	BootstrapTimeout time.Duration
	// AcceptablePause is subtracted from the silence before φ is
	// computed (equivalently: added to the modelled mean), absorbing
	// scheduler hiccups and GC pauses that are not evidence of failure
	// (default BootstrapTimeout/2).
	AcceptablePause time.Duration
	// EvictSilence is the minimum raw silence for an eviction verdict,
	// however high φ accrues (default 2× BootstrapTimeout): eviction is
	// the placement-affecting verdict and must mean sustained death,
	// not one sharp spike of the φ curve.
	EvictSilence time.Duration
	// Window is the inter-arrival history size (default DefaultWindow).
	Window int
	// MinStdDev floors the modelled deviation (default
	// BootstrapTimeout/20, at least 1ms).
	MinStdDev time.Duration
}

// DefaultSuspectPhi is the default suspicion threshold: silence this
// unlikely occurs by chance once in 10^8 heartbeats.
const DefaultSuspectPhi = 8

func (c Config) withDefaults() Config {
	if c.SuspectPhi <= 0 {
		c.SuspectPhi = DefaultSuspectPhi
	}
	if c.EvictPhi <= c.SuspectPhi {
		c.EvictPhi = 2 * c.SuspectPhi
	}
	if c.RecoveryPhi <= 0 || c.RecoveryPhi >= c.SuspectPhi {
		c.RecoveryPhi = c.SuspectPhi / 2
	}
	if c.RecoveryBeats <= 0 {
		c.RecoveryBeats = 3
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.BootstrapTimeout <= 0 {
		c.BootstrapTimeout = 500 * time.Millisecond
	}
	if c.AcceptablePause <= 0 {
		c.AcceptablePause = c.BootstrapTimeout / 2
	}
	if c.EvictSilence <= 0 {
		c.EvictSilence = 2 * c.BootstrapTimeout
	}
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.MinStdDev <= 0 {
		c.MinStdDev = c.BootstrapTimeout / 20
		if c.MinStdDev < time.Millisecond {
			c.MinStdDev = time.Millisecond
		}
	}
	return c
}

// peerState is one watched peer's model and graded verdict.
type peerState struct {
	est   *PhiEstimator
	state State
	// anchored is when Monitor started the grace period (the estimator
	// is empty until the first heartbeat lands).
	anchored time.Time
	// freshBeats counts consecutive qualifying arrivals while
	// suspected/evicted, toward RecoveryBeats.
	freshBeats int
	// silentSince snapshots est.LastSeen() when suspicion fired.
	silentSince time.Time
}

// Watchdog monitors heartbeat arrivals and grades each watched peer's
// silence on the φ scale, reporting state transitions with hysteresis.
type Watchdog struct {
	cfg Config

	mu       sync.Mutex
	peers    map[transport.Address]*peerState
	onChange func(Transition)
	now      func() time.Time
	// skewNs is an injected clock offset in nanoseconds. The grading
	// loop, φ reads and silence reads all run against now()+skew, so a
	// chaos campaign can drift one replica's failure-detection clock the
	// way an unsynchronized or stepped system clock would. Atomic: the
	// readers do not hold mu.
	skewNs atomic.Int64

	stop   chan struct{}
	done   chan struct{}
	once   sync.Once
	detach func()
}

// SetSkew shifts the watchdog's notion of the current time by d —
// positive skew makes every silence look longer, driving φ up; the
// clock-skew fault of the chaos repertoire. Safe on a running watchdog.
func (w *Watchdog) SetSkew(d time.Duration) { w.skewNs.Store(int64(d)) }

// Skew returns the currently injected clock offset.
func (w *Watchdog) Skew() time.Duration { return time.Duration(w.skewNs.Load()) }

// clock is the time source every grading and reading path uses: the
// configured now() plus the injected skew.
func (w *Watchdog) clock() time.Time {
	t := w.now()
	if s := w.skewNs.Load(); s != 0 {
		t = t.Add(time.Duration(s))
	}
	return t
}

// beatHub fans one endpoint's heartbeat arrivals out to every watchdog
// attached to it. With one watchdog per endpoint (the classic shape)
// it is a single indirection; with several — N shard detectors in one
// daemon — it is what keeps each watchdog fed, where registering each
// watchdog's own handler would leave only the last one receiving beats
// and the others suspecting live peers.
type beatHub struct {
	mu       sync.Mutex
	watchers []*Watchdog
	// dead marks a hub that emptied and left the registry; a racing
	// attach must build a fresh hub instead of joining a corpse.
	dead bool
}

// beatHubs maps live endpoints to their hub; an entry exists only
// while at least one watchdog is attached, so stopped test systems do
// not pin their endpoints (and the composites the endpoint handlers
// close over).
var beatHubs sync.Map // transport.Endpoint -> *beatHub

// attachBeats subscribes w to ep's heartbeat stream and returns the
// detach hook.
func attachBeats(ep transport.Endpoint, w *Watchdog) func() {
	for {
		v, _ := beatHubs.LoadOrStore(ep, &beatHub{})
		hub := v.(*beatHub)
		if hub.add(ep, w) {
			return func() { hub.remove(ep, w) }
		}
		beatHubs.CompareAndDelete(ep, hub)
	}
}

// add subscribes w, installing the endpoint handler on first use.
// Returns false if the hub is dead.
func (h *beatHub) add(ep transport.Endpoint, w *Watchdog) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.dead {
		return false
	}
	if len(h.watchers) == 0 {
		ep.Handle(KindHeartbeat, func(ctx context.Context, p transport.Packet) ([]byte, error) {
			h.dispatch(p.From)
			return nil, nil
		})
	}
	h.watchers = append(h.watchers, w)
	return true
}

func (h *beatHub) remove(ep transport.Endpoint, w *Watchdog) {
	h.mu.Lock()
	for i, x := range h.watchers {
		if x == w {
			h.watchers = append(h.watchers[:i], h.watchers[i+1:]...)
			break
		}
	}
	dead := len(h.watchers) == 0
	if dead {
		// Uninstall before the death of the hub becomes observable: a
		// racing attach builds its replacement hub only after seeing
		// dead under this lock, so its Handle strictly follows this one.
		ep.Handle(KindHeartbeat, nil)
		h.dead = true
	}
	h.mu.Unlock()
	if dead {
		beatHubs.CompareAndDelete(ep, h)
	}
}

// dispatch folds one arrival into every attached watchdog; each one
// ignores peers it does not Monitor.
func (h *beatHub) dispatch(from transport.Address) {
	h.mu.Lock()
	n := len(h.watchers)
	var solo *Watchdog
	var all []*Watchdog
	if n == 1 {
		solo = h.watchers[0]
	} else if n > 1 {
		all = append(all, h.watchers...)
	}
	h.mu.Unlock()
	if solo != nil {
		solo.observe(from)
		return
	}
	for _, w := range all {
		w.observe(from)
	}
}

// NewWatchdog returns a watchdog attached to ep with thresholds derived
// from the classic silence timeout: the bootstrap check fires at
// timeout, and the deviation floor scales with it so φ thresholds
// behave sensibly across interval regimes. onChange fires once per
// state transition. Monitor must be called for each watched peer.
func NewWatchdog(ep transport.Endpoint, timeout time.Duration, onChange func(Transition)) *Watchdog {
	cfg := Config{BootstrapTimeout: timeout}
	return NewPhiWatchdog(ep, cfg, onChange)
}

// NewPhiWatchdog returns a watchdog attached to ep with explicit
// phi-accrual tuning.
func NewPhiWatchdog(ep transport.Endpoint, cfg Config, onChange func(Transition)) *Watchdog {
	w := &Watchdog{
		cfg:      cfg.withDefaults(),
		peers:    make(map[transport.Address]*peerState),
		onChange: onChange,
		now:      time.Now,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	w.detach = attachBeats(ep, w)
	return w
}

// phiOf computes the pause-adjusted suspicion level: the acceptable
// pause is deducted from the silence first, so φ accrues only against
// the part of the silence the arrival model cannot excuse.
func (w *Watchdog) phiOf(ps *peerState, now time.Time) float64 {
	return ps.est.Phi(now.Add(-w.cfg.AcceptablePause))
}

// Monitor begins watching a peer; the grace period starts now. The
// anchor is recorded on the real clock, like arrivals: the skewed
// clock belongs to the grading side only (see observe).
func (w *Watchdog) Monitor(peer transport.Address) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.peers[peer] = &peerState{
		est:      NewPhiEstimator(w.cfg.Window, w.cfg.MinStdDev),
		anchored: w.now(),
	}
}

// Forget stops watching a peer.
func (w *Watchdog) Forget(peer transport.Address) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.peers, peer)
	peerPhiGauge(string(peer)).Set(0)
}

// observe folds one heartbeat arrival into the peer's model and applies
// the recovery leg of the hysteresis: a suspected peer returns to alive
// only after RecoveryBeats consecutive arrivals, each observed with φ
// already back below RecoveryPhi.
func (w *Watchdog) observe(peer transport.Address) {
	// Arrivals are external events: record them on the real clock. Only
	// the grading side (check, φ and silence reads) runs on the skewed
	// clock — if both sides were skewed the offset would cancel after
	// the first post-skew arrival and injected skew could never
	// manufacture the sustained false suspicion it exists to model.
	arrival := w.now()
	now := w.clock()
	w.mu.Lock()
	ps, watched := w.peers[peer]
	if !watched {
		w.mu.Unlock()
		return
	}
	gap := arrival.Sub(ps.est.LastSeen())
	if ps.est.LastSeen().IsZero() {
		gap = arrival.Sub(ps.anchored)
	}
	if dt := ps.est.Observe(arrival); dt > 0 {
		peerInterarrival(string(peer)).Observe(dt)
	}
	var tr *Transition
	if ps.state != StateAlive {
		if w.phiOf(ps, now) < w.cfg.RecoveryPhi {
			ps.freshBeats++
		} else {
			ps.freshBeats = 0
		}
		if ps.freshBeats >= w.cfg.RecoveryBeats {
			tr = &Transition{
				Peer: peer, From: ps.state, To: StateAlive,
				Phi: w.phiOf(ps, now), Silence: gap, SilentSince: ps.silentSince,
			}
			ps.state = StateAlive
			ps.freshBeats = 0
			ps.silentSince = time.Time{}
		}
	}
	cb := w.onChange
	w.mu.Unlock()
	if tr != nil {
		mRecoveries.Inc()
		telemetry.Emit("detector", "recovered", tr.Silence,
			"peer", string(peer), "phi", fmt.Sprintf("%.2f", tr.Phi))
		if cb != nil {
			cb(*tr)
		}
	}
}

// Suspected reports whether peer is currently suspected (or worse).
func (w *Watchdog) Suspected(peer transport.Address) bool {
	return w.PeerState(peer) >= StateSuspected
}

// PeerState returns the peer's current graded state (StateAlive for
// unwatched peers).
func (w *Watchdog) PeerState(peer transport.Address) State {
	w.mu.Lock()
	defer w.mu.Unlock()
	if ps, ok := w.peers[peer]; ok {
		return ps.state
	}
	return StateAlive
}

// Phi returns the peer's current suspicion level (zero for unwatched
// peers or before any heartbeat).
func (w *Watchdog) Phi(peer transport.Address) float64 {
	w.mu.Lock()
	ps, ok := w.peers[peer]
	w.mu.Unlock()
	if !ok {
		return 0
	}
	return w.phiOf(ps, w.clock())
}

// SilentFor returns how long the peer has been silent (zero for
// unwatched peers; measured from Monitor before the first heartbeat).
func (w *Watchdog) SilentFor(peer transport.Address) time.Duration {
	now := w.clock()
	w.mu.Lock()
	defer w.mu.Unlock()
	ps, ok := w.peers[peer]
	if !ok {
		return 0
	}
	last := ps.est.LastSeen()
	if last.IsZero() {
		last = ps.anchored
	}
	return now.Sub(last)
}

// InterarrivalQuantile returns the q-quantile of the peer's observed
// heartbeat inter-arrival times (zero for unwatched peers or an empty
// window) — heartbeat jitter as a health signal.
func (w *Watchdog) InterarrivalQuantile(peer transport.Address, q float64) time.Duration {
	w.mu.Lock()
	ps, ok := w.peers[peer]
	w.mu.Unlock()
	if !ok {
		return 0
	}
	return ps.est.Quantile(q)
}

// MaxPhi returns the highest current suspicion level across watched
// peers (zero with none) — the scalar a host health collector reads.
func (w *Watchdog) MaxPhi() float64 {
	now := w.clock()
	w.mu.Lock()
	defer w.mu.Unlock()
	var max float64
	for _, ps := range w.peers {
		if p := w.phiOf(ps, now); p > max {
			max = p
		}
	}
	return max
}

// Start launches the periodic grading check (at a quarter of the
// bootstrap timeout).
func (w *Watchdog) Start() {
	go func() {
		defer close(w.done)
		period := w.cfg.BootstrapTimeout / 4
		if period <= 0 {
			period = time.Millisecond
		}
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-ticker.C:
				w.check()
			}
		}
	}()
}

// check grades every watched peer: φ against the suspect and evict
// thresholds once the model has enough samples, the bootstrap silence
// timeout before that. Transitions fire outside the lock.
func (w *Watchdog) check() {
	now := w.clock()
	var fired []Transition
	w.mu.Lock()
	cb := w.onChange
	for peer, ps := range w.peers {
		phi := w.phiOf(ps, now)
		peerPhiGauge(string(peer)).Set(int64(phi * 1000))

		last := ps.est.LastSeen()
		if last.IsZero() {
			last = ps.anchored
		}
		silence := now.Sub(last)

		// Grade the silence: with a trusted model, on the φ scale; while
		// bootstrapping, against the binary timeout (evict at 4× it, the
		// same severity ratio the defaults give φ).
		var to State
		if ps.est.Samples() >= w.cfg.MinSamples {
			switch {
			case phi >= w.cfg.EvictPhi && silence >= w.cfg.EvictSilence:
				to = StateEvicted
			case phi >= w.cfg.SuspectPhi:
				to = StateSuspected
			default:
				to = StateAlive
			}
		} else {
			switch {
			case silence >= w.cfg.EvictSilence:
				to = StateEvicted
			case silence > w.cfg.BootstrapTimeout:
				to = StateSuspected
			default:
				to = StateAlive
			}
		}

		// Only escalations happen here: de-escalation (recovery) is
		// driven by arrivals in observe, where the hysteresis lives.
		if to > ps.state {
			tr := Transition{
				Peer: peer, From: ps.state, To: to,
				Phi: phi, Silence: silence, SilentSince: last,
			}
			if ps.state == StateAlive {
				ps.silentSince = last
			}
			ps.state = to
			ps.freshBeats = 0
			fired = append(fired, tr)
		}
	}
	w.mu.Unlock()

	for _, tr := range fired {
		switch tr.To {
		case StateSuspected:
			mSuspicions.Inc()
			telemetry.Emit("detector", "suspected", tr.Silence,
				"peer", string(tr.Peer), "phi", fmt.Sprintf("%.2f", tr.Phi))
		case StateEvicted:
			mEvictions.Inc()
			telemetry.Emit("detector", "evicted", tr.Silence,
				"peer", string(tr.Peer), "phi", fmt.Sprintf("%.2f", tr.Phi))
		}
		if cb != nil {
			cb(tr)
		}
	}
}

// Stop halts the watchdog and detaches it from its endpoint's
// heartbeat stream. Safe to call more than once.
func (w *Watchdog) Stop() {
	w.once.Do(func() {
		close(w.stop)
		if w.detach != nil {
			w.detach()
		}
	})
	<-w.done
}
