package detector

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// fakeClock drives the watchdog deterministically.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time               { return c.t }
func (c *fakeClock) advance(d time.Duration)      { c.t = c.t.Add(d) }
func (c *fakeClock) at(d time.Duration) time.Time { return c.t.Add(d) }

func TestPhiMonotonicUnderGrowingSilence(t *testing.T) {
	clk := newFakeClock()
	est := NewPhiEstimator(64, time.Millisecond)
	// Regular 10ms arrivals fill the window.
	for i := 0; i < 64; i++ {
		est.Observe(clk.t)
		clk.advance(10 * time.Millisecond)
	}
	// φ must be non-decreasing as the silence grows, and must cross any
	// fixed threshold eventually (no plateau below it).
	prev := -1.0
	crossed8, crossed16 := false, false
	for silence := time.Duration(0); silence <= 2*time.Second; silence += 5 * time.Millisecond {
		phi := est.Phi(clk.at(silence))
		if phi < prev {
			t.Fatalf("phi decreased under growing silence: %v at silence %v (prev %v)", phi, silence, prev)
		}
		prev = phi
		if phi >= 8 {
			crossed8 = true
		}
		if phi >= 16 {
			crossed16 = true
		}
	}
	if !crossed8 || !crossed16 {
		t.Fatalf("phi never crossed thresholds under 2s of silence: final %v", prev)
	}
}

func TestPhiLowWhileArrivalsMatchModel(t *testing.T) {
	clk := newFakeClock()
	est := NewPhiEstimator(64, time.Millisecond)
	rng := rand.New(rand.NewSource(7))
	// Jittered arrivals: 10ms ± 3ms.
	for i := 0; i < 200; i++ {
		est.Observe(clk.t)
		clk.advance(10*time.Millisecond + time.Duration(rng.Intn(6000)-3000)*time.Microsecond)
	}
	// Right at the expected next arrival, suspicion must be negligible.
	if phi := est.Phi(est.LastSeen().Add(10 * time.Millisecond)); phi > 2 {
		t.Fatalf("phi %v at one expected interval of silence, want < 2", phi)
	}
}

func TestPhiEstimatorQuantile(t *testing.T) {
	clk := newFakeClock()
	est := NewPhiEstimator(8, time.Millisecond)
	for _, ms := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90} {
		_ = ms
		est.Observe(clk.t)
		clk.advance(10 * time.Millisecond)
	}
	if q := est.Quantile(0.5); q != 10*time.Millisecond {
		t.Fatalf("median inter-arrival %v, want 10ms", q)
	}
	if q := est.Quantile(0.99); q != 10*time.Millisecond {
		t.Fatalf("p99 inter-arrival %v, want 10ms", q)
	}
}

// deterministicWatchdog builds a watchdog on a throwaway endpoint whose
// clock the test owns; heartbeats are injected via observe.
func deterministicWatchdog(t *testing.T, cfg Config, onChange func(Transition)) (*Watchdog, *fakeClock) {
	t.Helper()
	n := transport.NewMemNetwork()
	ep, err := n.Endpoint(transport.Address("wd-" + t.Name()))
	if err != nil {
		t.Fatal(err)
	}
	w := NewPhiWatchdog(ep, cfg, onChange)
	clk := newFakeClock()
	w.now = clk.now
	return w, clk
}

// TestNoFlappingAroundThreshold is the hysteresis property test: a peer
// whose heartbeats arrive at jittered intervals straddling the nominal
// interval — occasionally stretching far enough to brush the suspect
// threshold — must not oscillate suspect/alive on every brush. The
// recovery band (RecoveryPhi + RecoveryBeats) bounds the transition
// count to the number of genuine long gaps, not the number of samples.
func TestNoFlappingAroundThreshold(t *testing.T) {
	var transitions []Transition
	cfg := Config{
		SuspectPhi:       8,
		BootstrapTimeout: 80 * time.Millisecond,
		AcceptablePause:  time.Nanosecond, // isolate the φ hysteresis itself
		MinStdDev:        time.Millisecond,
	}
	w, clk := deterministicWatchdog(t, cfg, func(tr Transition) {
		transitions = append(transitions, tr)
	})
	const peer = transport.Address("jittery")
	w.Monitor(peer)

	rng := rand.New(rand.NewSource(42))
	// Phase 1: regular 10ms±1ms arrivals train the model.
	for i := 0; i < 100; i++ {
		clk.advance(10*time.Millisecond + time.Duration(rng.Intn(2000)-1000)*time.Microsecond)
		w.observe(peer)
		w.check()
	}
	if len(transitions) != 0 {
		t.Fatalf("transitions during stable phase: %v", transitions)
	}

	// Phase 2: heavy jitter around the effective threshold. With mean
	// ~10ms and σ floored at 1ms, φ=8 sits near 15ms of silence; gaps
	// drawn from 5..25ms brush both sides of it continuously. Check
	// runs between arrivals as the silence peaks.
	for i := 0; i < 400; i++ {
		gap := 5*time.Millisecond + time.Duration(rng.Intn(20))*time.Millisecond
		// Grade mid-gap and at the end of the gap, like the periodic
		// checker would.
		clk.advance(gap / 2)
		w.check()
		clk.advance(gap - gap/2)
		w.check()
		w.observe(peer)
	}

	// Without hysteresis every threshold brush would flip the state:
	// hundreds of transitions. With the recovery band, each suspicion
	// needs RecoveryBeats clean arrivals to clear, so the pair count is
	// bounded by the genuine long-gap count — empirically a handful.
	// The property under test: orders of magnitude fewer transitions
	// than threshold brushes, and never an eviction.
	if len(transitions) > 40 {
		t.Fatalf("detector flapped: %d transitions across 400 jittered beats", len(transitions))
	}
	for _, tr := range transitions {
		if tr.To == StateEvicted {
			t.Fatalf("jittery-but-alive peer was evicted: %+v", tr)
		}
	}
}

// TestRecoveryRequiresConsecutiveBeats: one heartbeat inside a long
// silence must not clear a suspicion; RecoveryBeats of them must.
func TestRecoveryRequiresConsecutiveBeats(t *testing.T) {
	var transitions []Transition
	cfg := Config{
		SuspectPhi:       8,
		RecoveryBeats:    3,
		BootstrapTimeout: 80 * time.Millisecond,
		AcceptablePause:  time.Nanosecond,
		EvictSilence:     time.Hour, // keep the verdict in the suspect band
		MinStdDev:        time.Millisecond,
	}
	w, clk := deterministicWatchdog(t, cfg, func(tr Transition) {
		transitions = append(transitions, tr)
	})
	const peer = transport.Address("lazarus")
	w.Monitor(peer)
	for i := 0; i < 50; i++ {
		clk.advance(10 * time.Millisecond)
		w.observe(peer)
	}
	w.check()
	if w.Suspected(peer) {
		t.Fatal("suspected while heartbeating regularly")
	}

	// Fall silent long enough to be suspected.
	clk.advance(500 * time.Millisecond)
	w.check()
	if !w.Suspected(peer) {
		t.Fatalf("not suspected after 500ms silence (phi %v)", w.Phi(peer))
	}

	// One heartbeat: still suspected (hysteresis).
	clk.advance(10 * time.Millisecond)
	w.observe(peer)
	if !w.Suspected(peer) {
		t.Fatal("single heartbeat cleared the suspicion")
	}

	// Two more at the modelled cadence: recovered.
	clk.advance(10 * time.Millisecond)
	w.observe(peer)
	clk.advance(10 * time.Millisecond)
	w.observe(peer)
	if w.Suspected(peer) {
		t.Fatal("three consecutive heartbeats did not clear the suspicion")
	}

	last := transitions[len(transitions)-1]
	if last.To != StateAlive || last.From != StateSuspected {
		t.Fatalf("last transition %+v, want suspected->alive", last)
	}
}

// TestEvictionAfterSustainedSilence: the graded verdict escalates
// suspected -> evicted as the silence grows, and both transitions carry
// the silence duration evidence.
func TestEvictionAfterSustainedSilence(t *testing.T) {
	var transitions []Transition
	cfg := Config{
		SuspectPhi:       8,
		EvictPhi:         16,
		BootstrapTimeout: 80 * time.Millisecond,
		MinStdDev:        time.Millisecond,
	}
	w, clk := deterministicWatchdog(t, cfg, func(tr Transition) {
		transitions = append(transitions, tr)
	})
	const peer = transport.Address("gone")
	w.Monitor(peer)
	for i := 0; i < 50; i++ {
		clk.advance(10 * time.Millisecond)
		w.observe(peer)
	}

	// Walk the silence out in checker-period steps.
	for i := 0; i < 100; i++ {
		clk.advance(20 * time.Millisecond)
		w.check()
	}
	if got := w.PeerState(peer); got != StateEvicted {
		t.Fatalf("state after 2s silence = %v, want evicted (phi %v)", got, w.Phi(peer))
	}
	if len(transitions) != 2 {
		t.Fatalf("transitions = %+v, want suspected then evicted", transitions)
	}
	if transitions[0].To != StateSuspected || transitions[1].To != StateEvicted {
		t.Fatalf("transition order %v -> %v, want suspected -> evicted", transitions[0].To, transitions[1].To)
	}
	if transitions[1].Silence < w.cfg.EvictSilence {
		t.Fatalf("eviction carried silence %v, below the %v floor", transitions[1].Silence, w.cfg.EvictSilence)
	}
	if transitions[1].Silence <= transitions[0].Silence {
		t.Fatalf("silence did not grow between suspicion (%v) and eviction (%v)",
			transitions[0].Silence, transitions[1].Silence)
	}
	if transitions[0].SilentSince.IsZero() {
		t.Fatal("suspicion transition lost the silent-since timestamp")
	}
}

// graySendEndpoint wraps an endpoint so that Send to one address wedges
// until the context expires — a gray-failed link: the peer is alive but
// accepts bytes arbitrarily slowly.
type graySendEndpoint struct {
	transport.Endpoint
	gray transport.Address
}

func (g *graySendEndpoint) Send(ctx context.Context, to transport.Address, kind string, payload []byte) error {
	if to == g.gray {
		<-ctx.Done()
		return ctx.Err()
	}
	return g.Endpoint.Send(ctx, to, kind, payload)
}

// TestGrayPeerDoesNotStallHealthyBeat: a peer whose link accepts sends
// only after a long delay must not make the heartbeater's other peers
// look silent (the sequential context.Background() beat loop this PR
// fixes would wedge forever on the first gray send).
func TestGrayPeerDoesNotStallHealthyBeat(t *testing.T) {
	n := transport.NewMemNetwork()
	senderEp, _ := n.Endpoint("sender")
	healthyEp, _ := n.Endpoint("healthy")
	if _, err := n.Endpoint("gray"); err != nil {
		t.Fatal(err)
	}

	w := NewWatchdog(healthyEp, 60*time.Millisecond, nil)
	w.Monitor("sender")
	w.Start()
	defer w.Stop()

	hb := NewHeartbeater(&graySendEndpoint{Endpoint: senderEp, gray: "gray"},
		10*time.Millisecond, "healthy", "gray")
	hb.Start()
	defer hb.Stop()

	// The healthy watcher must keep seeing heartbeats well past several
	// suspect timeouts even though every beat to the gray peer wedges
	// until its send timeout.
	time.Sleep(300 * time.Millisecond)
	if w.Suspected("sender") {
		t.Fatalf("healthy peer starved by gray peer: suspected (silent %v)", w.SilentFor("sender"))
	}
	if got := telemetry.Default().Counter("detector_heartbeats_stalled_total").Value(); got == 0 {
		t.Fatal("stalled sends to the gray peer were not counted")
	}
}
