package detector

import (
	"math"
	"sync"
	"time"
)

// Phi-accrual failure estimation (Hayashibara et al., "The φ Accrual
// Failure Detector"): instead of a binary silent/alive verdict at a
// fixed timeout, the detector keeps a sliding window of heartbeat
// inter-arrival times and outputs a continuous suspicion level
//
//	φ(t) = -log10( P(no heartbeat yet after t of silence) )
//
// under a normal model of the observed inter-arrival distribution.
// φ = 1 means the silence would be exceeded by chance 10% of the time,
// φ = 8 once in 10^8 — consumers pick thresholds on a scale that adapts
// itself to the measured arrival jitter, instead of guessing a timeout.

// DefaultWindow is the inter-arrival history retained per peer.
const DefaultWindow = 64

// PhiEstimator models one peer's heartbeat inter-arrival distribution
// over a bounded sample window. It is deterministic given the observed
// arrival times, and safe for concurrent use.
type PhiEstimator struct {
	mu sync.Mutex
	// ring holds the newest inter-arrival samples in nanoseconds.
	ring []float64
	n    int // valid samples
	next int // ring write cursor
	last time.Time
	// minStdDev floors the modelled deviation so a perfectly regular
	// arrival stream (loopback, memnet) does not make the distribution
	// collapse and φ explode on microscopic jitter.
	minStdDev float64
}

// NewPhiEstimator returns an estimator retaining window samples
// (DefaultWindow when <= 0) with the given standard-deviation floor.
func NewPhiEstimator(window int, minStdDev time.Duration) *PhiEstimator {
	if window <= 0 {
		window = DefaultWindow
	}
	if minStdDev <= 0 {
		minStdDev = time.Millisecond
	}
	return &PhiEstimator{ring: make([]float64, window), minStdDev: float64(minStdDev)}
}

// Observe records a heartbeat arrival at t. The first observation only
// anchors the clock; subsequent ones add inter-arrival samples. Returns
// the inter-arrival interval (zero for the anchoring observation).
func (e *PhiEstimator) Observe(t time.Time) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() {
		e.last = t
		return 0
	}
	dt := t.Sub(e.last)
	if dt < 0 {
		dt = 0
	}
	e.last = t
	e.ring[e.next] = float64(dt)
	e.next = (e.next + 1) % len(e.ring)
	if e.n < len(e.ring) {
		e.n++
	}
	return dt
}

// Samples returns how many inter-arrival samples the window holds.
func (e *PhiEstimator) Samples() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

// LastSeen returns the newest observed arrival time (zero before any).
func (e *PhiEstimator) LastSeen() time.Time {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.last
}

// meanStdDevLocked computes the window's mean and (floored) standard
// deviation in nanoseconds.
func (e *PhiEstimator) meanStdDevLocked() (mean, stddev float64) {
	if e.n == 0 {
		return 0, e.minStdDev
	}
	var sum float64
	for i := 0; i < e.n; i++ {
		sum += e.ring[i]
	}
	mean = sum / float64(e.n)
	var sq float64
	for i := 0; i < e.n; i++ {
		d := e.ring[i] - mean
		sq += d * d
	}
	stddev = math.Sqrt(sq / float64(e.n))
	if stddev < e.minStdDev {
		stddev = e.minStdDev
	}
	return mean, stddev
}

// Stats returns the window's mean and floored standard deviation.
func (e *PhiEstimator) Stats() (mean, stddev time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	m, s := e.meanStdDevLocked()
	return time.Duration(m), time.Duration(s)
}

// Quantile returns an exact nearest-rank quantile of the retained
// inter-arrival samples (the p99 the telemetry exports), or zero while
// the window is empty.
func (e *PhiEstimator) Quantile(q float64) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		return 0
	}
	samples := append([]float64(nil), e.ring[:e.n]...)
	// Insertion sort: the window is small and this path is a periodic
	// telemetry read, not the arrival path.
	for i := 1; i < len(samples); i++ {
		for j := i; j > 0 && samples[j] < samples[j-1]; j-- {
			samples[j], samples[j-1] = samples[j-1], samples[j]
		}
	}
	idx := int(math.Ceil(q*float64(len(samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(samples) {
		idx = len(samples) - 1
	}
	return time.Duration(samples[idx])
}

// Phi returns the suspicion level for the silence observed at now.
// Before any arrival it returns zero (nothing to accrue against).
func (e *PhiEstimator) Phi(now time.Time) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last.IsZero() || e.n == 0 {
		return 0
	}
	silence := float64(now.Sub(e.last))
	if silence <= 0 {
		return 0
	}
	mean, stddev := e.meanStdDevLocked()
	return phi(silence, mean, stddev)
}

// phi evaluates -log10(P(X > silence)) for X ~ N(mean, stddev²), using
// the logistic approximation of the normal tail (abs error < 1.4e-4,
// the same approximation the Akka/Cassandra detectors use) so no erfc
// is needed on the check path.
func phi(silence, mean, stddev float64) float64 {
	y := (silence - mean) / stddev
	ey := math.Exp(-y * (1.5976 + 0.070566*y*y))
	var p float64
	if silence > mean {
		p = ey / (1 + ey)
	} else {
		p = 1 - 1/(1+ey)
	}
	if p <= 0 {
		// The tail underflowed: clamp to the largest finite suspicion
		// instead of +Inf so thresholds and gauges stay arithmetic.
		return maxPhi
	}
	return -math.Log10(p)
}

// maxPhi caps the reported suspicion level once the tail probability
// underflows to zero.
const maxPhi = 1000
