package detector

import (
	"sync"
	"testing"
	"time"

	"resilientft/internal/transport"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

type changeLog struct {
	mu     sync.Mutex
	events []string
}

func (c *changeLog) record(tr Transition) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, string(tr.Peer)+":"+tr.To.String())
}

func (c *changeLog) list() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.events...)
}

func TestWatchdogDetectsSilence(t *testing.T) {
	n := transport.NewMemNetwork()
	aEp, _ := n.Endpoint("a")
	bEp, _ := n.Endpoint("b")

	log := &changeLog{}
	w := NewWatchdog(aEp, 50*time.Millisecond, log.record)
	w.Monitor("b")
	w.Start()
	defer w.Stop()

	hb := NewHeartbeater(bEp, 10*time.Millisecond, "a")
	hb.Start()

	// While heartbeating, no suspicion should form.
	time.Sleep(120 * time.Millisecond)
	if w.Suspected("b") {
		t.Fatal("peer suspected while heartbeating")
	}

	// Crash: heartbeats stop, suspicion must follow.
	hb.Stop()
	waitFor(t, 2*time.Second, func() bool { return w.Suspected("b") }, "silent peer never suspected")
	events := log.list()
	if len(events) == 0 || events[len(events)-1] != "b:suspected" {
		t.Fatalf("events = %v, want trailing b:suspected", events)
	}
}

func TestWatchdogRecoversOnHeartbeatResume(t *testing.T) {
	n := transport.NewMemNetwork()
	aEp, _ := n.Endpoint("a")
	bEp, _ := n.Endpoint("b")

	log := &changeLog{}
	w := NewWatchdog(aEp, 40*time.Millisecond, log.record)
	w.Monitor("b")
	w.Start()
	defer w.Stop()

	waitFor(t, 2*time.Second, func() bool { return w.Suspected("b") }, "silent peer never suspected")

	hb := NewHeartbeater(bEp, 10*time.Millisecond, "a")
	hb.Start()
	defer hb.Stop()
	waitFor(t, 2*time.Second, func() bool { return !w.Suspected("b") }, "peer never un-suspected after resume")
}

func TestWatchdogIgnoresUnmonitoredPeers(t *testing.T) {
	n := transport.NewMemNetwork()
	aEp, _ := n.Endpoint("a")
	bEp, _ := n.Endpoint("b")
	w := NewWatchdog(aEp, 30*time.Millisecond, nil)
	w.Start()
	defer w.Stop()
	hb := NewHeartbeater(bEp, 10*time.Millisecond, "a")
	hb.Start()
	defer hb.Stop()
	time.Sleep(60 * time.Millisecond)
	if w.Suspected("b") {
		t.Fatal("unmonitored peer reported suspected")
	}
}

func TestWatchdogForget(t *testing.T) {
	n := transport.NewMemNetwork()
	aEp, _ := n.Endpoint("a")
	w := NewWatchdog(aEp, 20*time.Millisecond, nil)
	w.Monitor("b")
	w.Start()
	defer w.Stop()
	waitFor(t, 2*time.Second, func() bool { return w.Suspected("b") }, "peer never suspected")
	w.Forget("b")
	if w.Suspected("b") {
		t.Fatal("forgotten peer still suspected")
	}
}

func TestHeartbeaterStopIdempotent(t *testing.T) {
	n := transport.NewMemNetwork()
	ep, _ := n.Endpoint("a")
	hb := NewHeartbeater(ep, 5*time.Millisecond, "b")
	hb.Start()
	hb.Stop()
	hb.Stop() // must not panic or hang
}

func TestPartitionCausesSuspicionBothWaysHeals(t *testing.T) {
	n := transport.NewMemNetwork()
	aEp, _ := n.Endpoint("a")
	bEp, _ := n.Endpoint("b")
	wa := NewWatchdog(aEp, 40*time.Millisecond, nil)
	wa.Monitor("b")
	wa.Start()
	defer wa.Stop()
	hb := NewHeartbeater(bEp, 10*time.Millisecond, "a")
	hb.Start()
	defer hb.Stop()

	time.Sleep(60 * time.Millisecond)
	if wa.Suspected("b") {
		t.Fatal("suspected while connected")
	}
	n.Partition("a", "b")
	waitFor(t, 2*time.Second, func() bool { return wa.Suspected("b") }, "partitioned peer never suspected")
	n.Heal("a", "b")
	waitFor(t, 2*time.Second, func() bool { return !wa.Suspected("b") }, "healed peer never un-suspected")
}

func TestClockSkewManufacturesFalseSuspicion(t *testing.T) {
	n := transport.NewMemNetwork()
	aEp, _ := n.Endpoint("a")
	bEp, _ := n.Endpoint("b")

	w := NewWatchdog(aEp, 50*time.Millisecond, nil)
	w.Monitor("b")
	w.Start()
	defer w.Stop()

	hb := NewHeartbeater(bEp, 10*time.Millisecond, "a")
	hb.Start()
	defer hb.Stop()

	// Healthy heartbeats: no suspicion.
	time.Sleep(150 * time.Millisecond)
	if w.Suspected("b") {
		t.Fatal("peer suspected while heartbeating")
	}

	// Skew the watchdog's clock far past any plausible silence: every
	// arrival now looks ancient, so suspicion must form even though the
	// peer is perfectly healthy — the false-suspicion fault chaos
	// campaigns drive promotions with.
	w.SetSkew(10 * time.Second)
	if got := w.Skew(); got != 10*time.Second {
		t.Fatalf("Skew() = %v", got)
	}
	waitFor(t, 2*time.Second, func() bool { return w.Suspected("b") }, "skewed watchdog never suspected a healthy peer")

	// Clearing the skew lets the hysteresis recover the verdict.
	w.SetSkew(0)
	waitFor(t, 2*time.Second, func() bool { return !w.Suspected("b") }, "peer never recovered after skew cleared")
}
