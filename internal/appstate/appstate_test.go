package appstate

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestRegistersBasicOps(t *testing.T) {
	r := NewRegisters()
	if got := r.Get("x"); got != 0 {
		t.Fatalf("Get on fresh register = %d", got)
	}
	r.Set("x", 10)
	if got := r.Add("x", 5); got != 15 {
		t.Fatalf("Add = %d, want 15", got)
	}
	r.Set("y", -1)
	if got := r.Names(); !reflect.DeepEqual(got, []string{"x", "y"}) {
		t.Fatalf("Names = %v", got)
	}
}

func TestCaptureRestoreRoundTrip(t *testing.T) {
	r := NewRegisters()
	r.Set("a", 1)
	r.Set("b", 2)
	data, err := r.CaptureState()
	if err != nil {
		t.Fatalf("CaptureState: %v", err)
	}
	r.Set("a", 99)
	r.Set("c", 3)
	if err := r.RestoreState(data); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if r.Get("a") != 1 || r.Get("b") != 2 || r.Get("c") != 0 {
		t.Fatalf("restored state wrong: a=%d b=%d c=%d", r.Get("a"), r.Get("b"), r.Get("c"))
	}
}

func TestRestoreIntoFreshInstance(t *testing.T) {
	r := NewRegisters()
	r.Set("k", 7)
	data, err := r.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewRegisters()
	if err := fresh.RestoreState(data); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if fresh.Get("k") != 7 {
		t.Fatalf("fresh.Get(k) = %d", fresh.Get("k"))
	}
}

func TestRestoreGarbageFails(t *testing.T) {
	r := NewRegisters()
	if err := r.RestoreState([]byte{1, 2, 3}); err == nil {
		t.Fatal("RestoreState accepted garbage")
	}
}

// Property: capture/restore is lossless for any register contents.
func TestCaptureRestoreProperty(t *testing.T) {
	f := func(keys []string, values []int64) bool {
		r := NewRegisters()
		for i, k := range keys {
			if i < len(values) {
				r.Set(k, values[i])
			}
		}
		data, err := r.CaptureState()
		if err != nil {
			return false
		}
		clone := NewRegisters()
		if err := clone.RestoreState(data); err != nil {
			return false
		}
		if !reflect.DeepEqual(clone.Names(), r.Names()) {
			return false
		}
		for _, k := range r.Names() {
			if clone.Get(k) != r.Get(k) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestOpaqueRefusesAccess(t *testing.T) {
	var o Opaque
	if _, err := o.CaptureState(); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("CaptureState: err = %v, want ErrNoAccess", err)
	}
	if err := o.RestoreState(nil); !errors.Is(err, ErrNoAccess) {
		t.Fatalf("RestoreState: err = %v, want ErrNoAccess", err)
	}
}

func TestCheckpointEncodeDecode(t *testing.T) {
	cp := Checkpoint{AppState: []byte{1, 2}, ReplyLog: []byte{3}, LastSeq: 9}
	data, err := EncodeCheckpoint(cp)
	if err != nil {
		t.Fatalf("EncodeCheckpoint: %v", err)
	}
	out, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatalf("DecodeCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(out, cp) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, cp)
	}
}
