package appstate

import (
	"fmt"
	"sort"

	"resilientft/internal/transport"
)

// Hand-rolled binary codecs for the per-request checkpoint payloads.
// Under delta checkpointing a DeltaCheckpoint (carrying a regDelta)
// crosses the wire on every client request, so both skip gob the same
// way rpc.Request and rpc.Response do. Full Checkpoint snapshots stay
// gob-encoded: they travel only on resync and startup, and keeping the
// rare path on gob preserves wire compatibility across versions. A
// receiver that cannot decode a delta NACKs it and the sender falls
// back to a full checkpoint, so the codec switch degrades to a resync
// rather than a stall.

var (
	_ transport.FastMarshaler   = DeltaCheckpoint{}
	_ transport.FastUnmarshaler = (*DeltaCheckpoint)(nil)
	_ transport.FastMarshaler   = regDelta{}
	_ transport.FastUnmarshaler = (*regDelta)(nil)
)

// AppendFast implements transport.FastMarshaler.
func (dc DeltaCheckpoint) AppendFast(buf []byte) []byte {
	buf = transport.AppendUvarint(buf, dc.BaseVersion)
	buf = transport.AppendUvarint(buf, dc.ToVersion)
	buf = transport.AppendLenBytes(buf, dc.Delta)
	buf = transport.AppendLenBytes(buf, dc.ReplyTail)
	return transport.AppendUvarint(buf, dc.LastSeq)
}

// DecodeFast implements transport.FastUnmarshaler.
func (dc *DeltaCheckpoint) DecodeFast(data []byte) error {
	var err error
	if dc.BaseVersion, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint base: %w", err)
	}
	if dc.ToVersion, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint to: %w", err)
	}
	if dc.Delta, data, err = transport.ReadLenBytes(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint delta: %w", err)
	}
	if dc.ReplyTail, data, err = transport.ReadLenBytes(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint reply tail: %w", err)
	}
	if dc.LastSeq, _, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint last seq: %w", err)
	}
	return nil
}

// AppendFast implements transport.FastMarshaler. Registers are written
// in sorted key order so identical write-sets encode identically.
func (d regDelta) AppendFast(buf []byte) []byte {
	buf = transport.AppendUvarint(buf, d.Base)
	buf = transport.AppendUvarint(buf, d.To)
	keys := make([]string, 0, len(d.Regs))
	for k := range d.Regs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = transport.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = transport.AppendLenString(buf, k)
		buf = transport.AppendVarint(buf, d.Regs[k])
	}
	buf = transport.AppendUvarint(buf, uint64(len(d.Deleted)))
	for _, k := range d.Deleted {
		buf = transport.AppendLenString(buf, k)
	}
	return buf
}

// DecodeFast implements transport.FastUnmarshaler.
func (d *regDelta) DecodeFast(data []byte) error {
	var err error
	if d.Base, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: reg delta base: %w", err)
	}
	if d.To, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: reg delta to: %w", err)
	}
	var n uint64
	if n, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: reg delta count: %w", err)
	}
	d.Regs = make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		var k string
		var v int64
		if k, data, err = transport.ReadLenString(data); err != nil {
			return fmt.Errorf("appstate: reg delta key %d: %w", i, err)
		}
		if v, data, err = transport.ReadVarint(data); err != nil {
			return fmt.Errorf("appstate: reg delta value %q: %w", k, err)
		}
		d.Regs[k] = v
	}
	if n, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: reg delta deleted count: %w", err)
	}
	d.Deleted = nil
	for i := uint64(0); i < n; i++ {
		var k string
		if k, data, err = transport.ReadLenString(data); err != nil {
			return fmt.Errorf("appstate: reg delta deleted %d: %w", i, err)
		}
		d.Deleted = append(d.Deleted, k)
	}
	return nil
}
