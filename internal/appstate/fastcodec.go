package appstate

import (
	"fmt"
	"sort"

	"resilientft/internal/transport"
)

// Hand-rolled binary codecs for the checkpoint payloads. Under delta
// checkpointing a DeltaCheckpoint (carrying a regDelta) crosses the
// wire on every client request, and a full Checkpoint rides the
// periodic refresh every few dozen commit waves, so all of them skip
// gob the same way rpc.Request and rpc.Response do. Gob survives only
// as the decode arm for payloads produced by older versions; a receiver
// that cannot decode a delta NACKs it and the sender falls back to a
// full checkpoint, so any codec mismatch degrades to a resync rather
// than a stall.

var (
	_ transport.FastMarshaler   = DeltaCheckpoint{}
	_ transport.FastUnmarshaler = (*DeltaCheckpoint)(nil)
	_ transport.FastMarshaler   = regDelta{}
	_ transport.FastUnmarshaler = (*regDelta)(nil)
	_ transport.FastMarshaler   = Checkpoint{}
	_ transport.FastUnmarshaler = (*Checkpoint)(nil)
)

// AppendFast implements transport.FastMarshaler.
func (cp Checkpoint) AppendFast(buf []byte) []byte {
	buf = transport.AppendLenBytes(buf, cp.AppState)
	buf = transport.AppendLenBytes(buf, cp.ReplyLog)
	buf = transport.AppendUvarint(buf, cp.LastSeq)
	return transport.AppendUvarint(buf, cp.StateVersion)
}

// DecodeFast implements transport.FastUnmarshaler.
func (cp *Checkpoint) DecodeFast(data []byte) error {
	var err error
	if cp.AppState, data, err = transport.ReadLenBytes(data); err != nil {
		return fmt.Errorf("appstate: checkpoint app state: %w", err)
	}
	if cp.ReplyLog, data, err = transport.ReadLenBytes(data); err != nil {
		return fmt.Errorf("appstate: checkpoint reply log: %w", err)
	}
	if cp.LastSeq, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: checkpoint last seq: %w", err)
	}
	if cp.StateVersion, _, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: checkpoint state version: %w", err)
	}
	return nil
}

// DecodeCheckpointInPlace is DecodeCheckpoint without the defensive
// copies: AppState and ReplyLog alias data. It serves the replica apply
// path, which consumes both before the enclosing handler returns.
func DecodeCheckpointInPlace(data []byte) (Checkpoint, error) {
	if len(data) == 0 || data[0] != transport.FastTag {
		// Scoped to the gob arm: transport.Decode's any parameter forces
		// its argument to the heap, and a single shared variable would
		// make the fast arm pay that allocation on every apply too.
		var cp Checkpoint
		err := transport.Decode(data, &cp)
		return cp, err
	}
	var cp Checkpoint
	data = data[1:]
	var err error
	if cp.AppState, data, err = transport.ReadLenBytesInPlace(data); err != nil {
		return cp, fmt.Errorf("appstate: checkpoint app state: %w", err)
	}
	if cp.ReplyLog, data, err = transport.ReadLenBytesInPlace(data); err != nil {
		return cp, fmt.Errorf("appstate: checkpoint reply log: %w", err)
	}
	if cp.LastSeq, data, err = transport.ReadUvarint(data); err != nil {
		return cp, fmt.Errorf("appstate: checkpoint last seq: %w", err)
	}
	if cp.StateVersion, _, err = transport.ReadUvarint(data); err != nil {
		return cp, fmt.Errorf("appstate: checkpoint state version: %w", err)
	}
	return cp, nil
}

// DecodeDeltaCheckpointInPlace is DecodeDeltaCheckpoint without the
// defensive copies: Delta and ReplyTail alias data. It serves the
// replica apply path, which consumes both before the enclosing handler
// returns; callers that retain the parts must use the copying variant.
func DecodeDeltaCheckpointInPlace(data []byte) (DeltaCheckpoint, error) {
	if len(data) == 0 || data[0] != transport.FastTag {
		// Only fast-coded payloads have a stable in-place layout; the
		// gob arm copies anyway. The variable is scoped here so its
		// heap escape (forced by Decode's any parameter) stays off the
		// fast arm.
		var dc DeltaCheckpoint
		err := transport.Decode(data, &dc)
		return dc, err
	}
	var dc DeltaCheckpoint
	data = data[1:]
	var err error
	if dc.BaseVersion, data, err = transport.ReadUvarint(data); err != nil {
		return dc, fmt.Errorf("appstate: delta checkpoint base: %w", err)
	}
	if dc.ToVersion, data, err = transport.ReadUvarint(data); err != nil {
		return dc, fmt.Errorf("appstate: delta checkpoint to: %w", err)
	}
	if dc.Delta, data, err = transport.ReadLenBytesInPlace(data); err != nil {
		return dc, fmt.Errorf("appstate: delta checkpoint delta: %w", err)
	}
	if dc.ReplyTail, data, err = transport.ReadLenBytesInPlace(data); err != nil {
		return dc, fmt.Errorf("appstate: delta checkpoint reply tail: %w", err)
	}
	if dc.LastSeq, _, err = transport.ReadUvarint(data); err != nil {
		return dc, fmt.Errorf("appstate: delta checkpoint last seq: %w", err)
	}
	return dc, nil
}

// AppendFast implements transport.FastMarshaler.
func (dc DeltaCheckpoint) AppendFast(buf []byte) []byte {
	buf = transport.AppendUvarint(buf, dc.BaseVersion)
	buf = transport.AppendUvarint(buf, dc.ToVersion)
	buf = transport.AppendLenBytes(buf, dc.Delta)
	buf = transport.AppendLenBytes(buf, dc.ReplyTail)
	return transport.AppendUvarint(buf, dc.LastSeq)
}

// DecodeFast implements transport.FastUnmarshaler.
func (dc *DeltaCheckpoint) DecodeFast(data []byte) error {
	var err error
	if dc.BaseVersion, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint base: %w", err)
	}
	if dc.ToVersion, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint to: %w", err)
	}
	if dc.Delta, data, err = transport.ReadLenBytes(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint delta: %w", err)
	}
	if dc.ReplyTail, data, err = transport.ReadLenBytes(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint reply tail: %w", err)
	}
	if dc.LastSeq, _, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: delta checkpoint last seq: %w", err)
	}
	return nil
}

// AppendFast implements transport.FastMarshaler. Registers are written
// in sorted key order so identical write-sets encode identically.
func (d regDelta) AppendFast(buf []byte) []byte {
	buf = transport.AppendUvarint(buf, d.Base)
	buf = transport.AppendUvarint(buf, d.To)
	keys := make([]string, 0, len(d.Regs))
	for k := range d.Regs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = transport.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = transport.AppendLenString(buf, k)
		buf = transport.AppendVarint(buf, d.Regs[k])
	}
	buf = transport.AppendUvarint(buf, uint64(len(d.Deleted)))
	for _, k := range d.Deleted {
		buf = transport.AppendLenString(buf, k)
	}
	return buf
}

// DecodeFast implements transport.FastUnmarshaler.
func (d *regDelta) DecodeFast(data []byte) error {
	var err error
	if d.Base, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: reg delta base: %w", err)
	}
	if d.To, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: reg delta to: %w", err)
	}
	var n uint64
	if n, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: reg delta count: %w", err)
	}
	d.Regs = make(map[string]int64, n)
	for i := uint64(0); i < n; i++ {
		var k string
		var v int64
		if k, data, err = transport.ReadLenString(data); err != nil {
			return fmt.Errorf("appstate: reg delta key %d: %w", i, err)
		}
		if v, data, err = transport.ReadVarint(data); err != nil {
			return fmt.Errorf("appstate: reg delta value %q: %w", k, err)
		}
		d.Regs[k] = v
	}
	if n, data, err = transport.ReadUvarint(data); err != nil {
		return fmt.Errorf("appstate: reg delta deleted count: %w", err)
	}
	d.Deleted = nil
	for i := uint64(0); i < n; i++ {
		var k string
		if k, data, err = transport.ReadLenString(data); err != nil {
			return fmt.Errorf("appstate: reg delta deleted %d: %w", i, err)
		}
		d.Deleted = append(d.Deleted, k)
	}
	return nil
}
