package appstate

import (
	"bytes"
	"testing"

	"resilientft/internal/transport"
)

// The PR 6 zero-alloc apply work pins its gains here: the fast-codec
// round-trips of both checkpoint shapes must stay allocation-free when
// the encode buffer is reused and the decode is the in-place variant.
// A regression (a defensive copy creeping back in, a field moved
// through an interface) fails this test before it shows up as a
// throughput loss in the benchmarks.

func TestAllocBudgetCheckpointRoundTrip(t *testing.T) {
	cp := Checkpoint{
		AppState:     bytes.Repeat([]byte{0xAB}, 512),
		ReplyLog:     bytes.Repeat([]byte{0xCD}, 256),
		LastSeq:      991,
		StateVersion: 77,
	}
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(200, func() {
		buf = append(buf[:0], transport.FastTag)
		buf = cp.AppendFast(buf)
		got, err := DecodeCheckpointInPlace(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.LastSeq != cp.LastSeq || got.StateVersion != cp.StateVersion {
			t.Fatalf("round trip: %+v", got)
		}
	})
	if allocs > 0 {
		t.Errorf("full-checkpoint round trip allocates %.0f/op, budget 0", allocs)
	}
}

func TestAllocBudgetDeltaCheckpointRoundTrip(t *testing.T) {
	dc := DeltaCheckpoint{
		BaseVersion: 40,
		ToVersion:   41,
		Delta:       bytes.Repeat([]byte{0x11}, 128),
		ReplyTail:   bytes.Repeat([]byte{0x22}, 64),
		LastSeq:     1213,
	}
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(200, func() {
		buf = append(buf[:0], transport.FastTag)
		buf = dc.AppendFast(buf)
		got, err := DecodeDeltaCheckpointInPlace(buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.BaseVersion != dc.BaseVersion || got.ToVersion != dc.ToVersion || got.LastSeq != dc.LastSeq {
			t.Fatalf("round trip: %+v", got)
		}
	})
	if allocs > 0 {
		t.Errorf("delta-checkpoint round trip allocates %.0f/op, budget 0", allocs)
	}
}

// FuzzCheckpointDecodeInPlace drives the full-checkpoint decode with
// adversarial bytes: valid encodings, every-prefix truncations, a
// length claim past MaxEnvelope on a short buffer, and gob-arm leads.
// The decode may reject anything, but must never panic, and whatever it
// accepts must re-encode to a decodable equivalent.
func FuzzCheckpointDecodeInPlace(f *testing.F) {
	valid := Checkpoint{
		AppState:     []byte("app-state-bytes"),
		ReplyLog:     []byte("reply-log-bytes"),
		LastSeq:      42,
		StateVersion: 7,
	}
	wire := valid.AppendFast([]byte{transport.FastTag})
	f.Add(wire)
	for _, cut := range []int{0, 1, 2, len(wire) / 2, len(wire) - 1} {
		f.Add(wire[:cut])
	}
	// A length claim beyond MaxEnvelope with (necessarily) no body
	// behind it: the decoder must fail on the short buffer instead of
	// trusting the claim.
	f.Add(transport.AppendUvarint([]byte{transport.FastTag}, uint64(transport.MaxEnvelope)+1))
	// Gob-arm leads: an actual gob encoding and a corrupt non-fast head.
	if gobWire, err := EncodeCheckpoint(valid); err == nil {
		f.Add(gobWire)
		f.Add(gobWire[:len(gobWire)/2])
	}
	f.Add([]byte{0x03, 0xFF, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := DecodeCheckpointInPlace(data)
		if err != nil {
			return
		}
		re := cp.AppendFast([]byte{transport.FastTag})
		back, err := DecodeCheckpointInPlace(re)
		if err != nil {
			t.Fatalf("re-decode of accepted checkpoint failed: %v", err)
		}
		if back.LastSeq != cp.LastSeq || back.StateVersion != cp.StateVersion ||
			!bytes.Equal(back.AppState, cp.AppState) || !bytes.Equal(back.ReplyLog, cp.ReplyLog) {
			t.Fatalf("re-encode drifted: %+v vs %+v", back, cp)
		}
	})
}

// FuzzDeltaCheckpointDecodeInPlace is the same contract for the
// per-request delta shape.
func FuzzDeltaCheckpointDecodeInPlace(f *testing.F) {
	valid := DeltaCheckpoint{BaseVersion: 3, ToVersion: 4, Delta: []byte("delta"), ReplyTail: []byte("tail"), LastSeq: 9}
	wire := valid.AppendFast([]byte{transport.FastTag})
	f.Add(wire)
	for _, cut := range []int{1, len(wire) / 2, len(wire) - 1} {
		f.Add(wire[:cut])
	}
	f.Add(transport.AppendUvarint([]byte{transport.FastTag, 0x01, 0x02}, uint64(transport.MaxEnvelope)+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		dc, err := DecodeDeltaCheckpointInPlace(data)
		if err != nil {
			return
		}
		re := dc.AppendFast([]byte{transport.FastTag})
		if _, err := DecodeDeltaCheckpointInPlace(re); err != nil {
			t.Fatalf("re-decode of accepted delta failed: %v", err)
		}
	})
}
