// Package appstate provides application state management for
// checkpointing-based fault tolerance: the StateManager capture/restore
// contract (the paper's state-access characteristic A), a concrete
// register-file state, and checkpoint containers.
package appstate

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"resilientft/internal/transport"
)

// ErrNoAccess reports an application that does not expose its state
// (checkpointing-based strategies are invalid for it, per Table 1).
var ErrNoAccess = errors.New("appstate: application state not accessible")

// ErrDeltaBase reports a delta whose base version does not match the
// receiver's current state version; the sender must fall back to a full
// checkpoint (the resync path).
var ErrDeltaBase = errors.New("appstate: delta base version mismatch")

// Manager is the StateManager contract of the paper: the hook an
// application exposes so FTMs can capture and restore its state.
type Manager interface {
	// CaptureState serializes the current application state.
	CaptureState() ([]byte, error)
	// RestoreState replaces the application state with a capture.
	RestoreState(data []byte) error
}

// DeltaCapturer is the optional extension of Manager for delta
// checkpointing: a state that tracks its own write-set under a monotonic
// version counter, so a checkpointing FTM can ship O(write-set) deltas
// between acknowledged versions instead of the full state every request.
// The delta payload is opaque to callers, like a full capture.
type DeltaCapturer interface {
	Manager
	// StateVersion returns the current version (bumped on every mutation).
	StateVersion() uint64
	// CaptureVersioned is CaptureState paired atomically with the version
	// the capture represents.
	CaptureVersioned() (data []byte, version uint64, err error)
	// CaptureDelta serializes the changes made after version base.
	// ok=false means the tracker cannot answer for base (it predates the
	// retained history); the caller must ship a full capture instead.
	// Capturing prunes history at or below base, so bases must be taken
	// from previously acknowledged versions and never move backward.
	CaptureDelta(base uint64) (delta []byte, to uint64, ok bool, err error)
	// ApplyDelta applies a delta to a state whose version equals the
	// delta's base, returning the new version. A base mismatch returns
	// ErrDeltaBase and leaves the state untouched.
	ApplyDelta(delta []byte) (version uint64, err error)
	// ApplyFull replaces the state with a full capture and adopts the
	// sender's version, aligning the two sides for subsequent deltas.
	ApplyFull(data []byte, version uint64) error
}

// Registers is a deterministic register-file application state: named
// int64 registers. It is the state container of the example applications
// and workload generators. Every mutation bumps a version counter and
// marks the touched register in a dirty map, which is what makes the
// DeltaCapturer contract cheap: a delta is the dirty keys newer than the
// requested base.
type Registers struct {
	mu   sync.Mutex
	regs map[string]int64

	// version counts mutations; recent maps a register to the version of
	// its last modification, for every modification newer than floor. A
	// register present in recent but absent from regs was deleted.
	version uint64
	recent  map[string]uint64
	floor   uint64
}

// NewRegisters returns an empty register file.
func NewRegisters() *Registers {
	return &Registers{
		regs:   make(map[string]int64),
		recent: make(map[string]uint64),
	}
}

var (
	_ Manager       = (*Registers)(nil)
	_ DeltaCapturer = (*Registers)(nil)
)

// Get returns the value of a register (0 when never written).
func (r *Registers) Get(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.regs[name]
}

// Set writes a register.
func (r *Registers) Set(name string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regs[name] = v
	r.version++
	r.recent[name] = r.version
}

// Add increments a register and returns the new value.
func (r *Registers) Add(name string, delta int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regs[name] += delta
	r.version++
	r.recent[name] = r.version
	return r.regs[name]
}

// Names returns the register names, sorted.
func (r *Registers) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.regs))
	for k := range r.regs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// snapshot is the serialized form of Registers. The layout is checkpoint
// wire format and must not change.
type snapshot struct {
	Regs map[string]int64
}

// regDelta is the serialized form of a Registers write-set between two
// versions.
type regDelta struct {
	Base    uint64
	To      uint64
	Regs    map[string]int64
	Deleted []string
}

// CaptureState serializes the register file.
func (r *Registers) CaptureState() ([]byte, error) {
	data, _, err := r.CaptureVersioned()
	return data, err
}

// CaptureVersioned serializes the register file along with the version
// the capture represents.
func (r *Registers) CaptureVersioned() ([]byte, uint64, error) {
	r.mu.Lock()
	regs := make(map[string]int64, len(r.regs))
	for k, v := range r.regs {
		regs[k] = v
	}
	version := r.version
	r.mu.Unlock()
	data, err := transport.Encode(snapshot{Regs: regs})
	return data, version, err
}

// RestoreState replaces the register file with a capture. The restore is
// applied as a diff against the current contents: only registers whose
// value actually changes (or disappears) are marked dirty, so a
// restore-heavy FTM combination (time redundancy restoring before every
// retry, say) does not blow up the delta write-set.
func (r *Registers) RestoreState(data []byte) error {
	var s snapshot
	if err := transport.Decode(data, &s); err != nil {
		return fmt.Errorf("appstate: restore: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.version++
	v := r.version
	for k, nv := range s.Regs {
		if ov, ok := r.regs[k]; !ok || ov != nv {
			r.regs[k] = nv
			r.recent[k] = v
		}
	}
	for k := range r.regs {
		if _, ok := s.Regs[k]; !ok {
			delete(r.regs, k)
			r.recent[k] = v // tombstone: recorded in recent, absent from regs
		}
	}
	return nil
}

// StateVersion returns the current mutation counter.
func (r *Registers) StateVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// CaptureDelta serializes the registers modified after version base.
func (r *Registers) CaptureDelta(base uint64) ([]byte, uint64, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if base < r.floor || base > r.version {
		return nil, r.version, false, nil
	}
	d := regDelta{Base: base, To: r.version, Regs: make(map[string]int64)}
	for k, mv := range r.recent {
		if mv <= base {
			// History at or below an acknowledged base is dead weight:
			// future captures only ever ask for newer bases.
			delete(r.recent, k)
			continue
		}
		if val, ok := r.regs[k]; ok {
			d.Regs[k] = val
		} else {
			d.Deleted = append(d.Deleted, k)
		}
	}
	if base > r.floor {
		r.floor = base
	}
	sort.Strings(d.Deleted)
	data, err := transport.Encode(d)
	if err != nil {
		return nil, r.version, false, err
	}
	return data, d.To, true, nil
}

// ApplyDelta applies a delta captured against this state's exact current
// version.
func (r *Registers) ApplyDelta(delta []byte) (uint64, error) {
	var d regDelta
	if err := transport.Decode(delta, &d); err != nil {
		return 0, fmt.Errorf("appstate: apply delta: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d.Base != r.version {
		return r.version, fmt.Errorf("%w: at version %d, delta base %d", ErrDeltaBase, r.version, d.Base)
	}
	for k, v := range d.Regs {
		r.regs[k] = v
	}
	for _, k := range d.Deleted {
		delete(r.regs, k)
	}
	r.version = d.To
	// The receiving side's own history is useless below the adopted
	// version: a future capture from here starts with a full checkpoint.
	r.recent = make(map[string]uint64)
	r.floor = r.version
	return r.version, nil
}

// ApplyFull replaces the register file with a full capture and adopts
// the sender's version.
func (r *Registers) ApplyFull(data []byte, version uint64) error {
	var s snapshot
	if err := transport.Decode(data, &s); err != nil {
		return fmt.Errorf("appstate: apply full: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regs = make(map[string]int64, len(s.Regs))
	for k, v := range s.Regs {
		r.regs[k] = v
	}
	r.version = version
	r.recent = make(map[string]uint64)
	r.floor = version
	return nil
}

// Opaque is a Manager over state the application refuses to expose: both
// operations fail with ErrNoAccess. Attaching a checkpointing FTM to such
// an application is the inconsistency Table 1 forbids, and tests use this
// to verify the consistency checker catches it.
type Opaque struct{}

var _ Manager = Opaque{}

// CaptureState always fails.
func (Opaque) CaptureState() ([]byte, error) { return nil, ErrNoAccess }

// RestoreState always fails.
func (Opaque) RestoreState([]byte) error { return ErrNoAccess }

// Checkpoint is what a passive-replication master ships to its slave: the
// application state paired with the reply-log snapshot that preserves
// at-most-once semantics across failover, and the sequence number of the
// last request folded into the state.
//
// StateVersion carries the sender's state version for delta-capable
// states (zero otherwise); a field unknown to older decoders, so the gob
// wire format stays compatible in both directions.
type Checkpoint struct {
	AppState     []byte
	ReplyLog     []byte
	LastSeq      uint64
	StateVersion uint64
}

// DeltaCheckpoint is the incremental counterpart of Checkpoint: the
// state write-set between two acknowledged versions plus the reply-log
// tail recorded since the last shipped checkpoint. It travels under its
// own message payload tag, so mixed-version replicas never confuse the
// two.
type DeltaCheckpoint struct {
	BaseVersion uint64
	ToVersion   uint64
	// Delta is the opaque write-set produced by DeltaCapturer.CaptureDelta.
	Delta []byte
	// ReplyTail is the encoded batch of responses recorded since the last
	// acknowledged checkpoint.
	ReplyTail []byte
	LastSeq   uint64
}

// EncodeCheckpoint serializes a checkpoint for transmission.
func EncodeCheckpoint(cp Checkpoint) ([]byte, error) { return transport.Encode(cp) }

// DecodeCheckpoint deserializes a checkpoint.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var cp Checkpoint
	err := transport.Decode(data, &cp)
	return cp, err
}

// EncodeDeltaCheckpoint serializes a delta checkpoint.
func EncodeDeltaCheckpoint(dc DeltaCheckpoint) ([]byte, error) { return transport.Encode(dc) }

// DecodeDeltaCheckpoint deserializes a delta checkpoint.
func DecodeDeltaCheckpoint(data []byte) (DeltaCheckpoint, error) {
	var dc DeltaCheckpoint
	err := transport.Decode(data, &dc)
	return dc, err
}
