// Package appstate provides application state management for
// checkpointing-based fault tolerance: the StateManager capture/restore
// contract (the paper's state-access characteristic A), a concrete
// register-file state, and checkpoint containers.
package appstate

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"resilientft/internal/transport"
)

// ErrNoAccess reports an application that does not expose its state
// (checkpointing-based strategies are invalid for it, per Table 1).
var ErrNoAccess = errors.New("appstate: application state not accessible")

// Manager is the StateManager contract of the paper: the hook an
// application exposes so FTMs can capture and restore its state.
type Manager interface {
	// CaptureState serializes the current application state.
	CaptureState() ([]byte, error)
	// RestoreState replaces the application state with a capture.
	RestoreState(data []byte) error
}

// Registers is a deterministic register-file application state: named
// int64 registers. It is the state container of the example applications
// and workload generators.
type Registers struct {
	mu   sync.Mutex
	regs map[string]int64
}

// NewRegisters returns an empty register file.
func NewRegisters() *Registers {
	return &Registers{regs: make(map[string]int64)}
}

var _ Manager = (*Registers)(nil)

// Get returns the value of a register (0 when never written).
func (r *Registers) Get(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.regs[name]
}

// Set writes a register.
func (r *Registers) Set(name string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regs[name] = v
}

// Add increments a register and returns the new value.
func (r *Registers) Add(name string, delta int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regs[name] += delta
	return r.regs[name]
}

// Names returns the register names, sorted.
func (r *Registers) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.regs))
	for k := range r.regs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// snapshot is the serialized form of Registers.
type snapshot struct {
	Regs map[string]int64
}

// CaptureState serializes the register file.
func (r *Registers) CaptureState() ([]byte, error) {
	r.mu.Lock()
	regs := make(map[string]int64, len(r.regs))
	for k, v := range r.regs {
		regs[k] = v
	}
	r.mu.Unlock()
	return transport.Encode(snapshot{Regs: regs})
}

// RestoreState replaces the register file with a capture.
func (r *Registers) RestoreState(data []byte) error {
	var s snapshot
	if err := transport.Decode(data, &s); err != nil {
		return fmt.Errorf("appstate: restore: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.regs = make(map[string]int64, len(s.Regs))
	for k, v := range s.Regs {
		r.regs[k] = v
	}
	return nil
}

// Opaque is a Manager over state the application refuses to expose: both
// operations fail with ErrNoAccess. Attaching a checkpointing FTM to such
// an application is the inconsistency Table 1 forbids, and tests use this
// to verify the consistency checker catches it.
type Opaque struct{}

var _ Manager = Opaque{}

// CaptureState always fails.
func (Opaque) CaptureState() ([]byte, error) { return nil, ErrNoAccess }

// RestoreState always fails.
func (Opaque) RestoreState([]byte) error { return ErrNoAccess }

// Checkpoint is what a passive-replication master ships to its slave: the
// application state paired with the reply-log snapshot that preserves
// at-most-once semantics across failover, and the sequence number of the
// last request folded into the state.
type Checkpoint struct {
	AppState []byte
	ReplyLog []byte
	LastSeq  uint64
}

// EncodeCheckpoint serializes a checkpoint for transmission.
func EncodeCheckpoint(cp Checkpoint) ([]byte, error) { return transport.Encode(cp) }

// DecodeCheckpoint deserializes a checkpoint.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var cp Checkpoint
	err := transport.Decode(data, &cp)
	return cp, err
}
