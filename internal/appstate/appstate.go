// Package appstate provides application state management for
// checkpointing-based fault tolerance: the StateManager capture/restore
// contract (the paper's state-access characteristic A), a concrete
// register-file state, and checkpoint containers.
package appstate

import (
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"

	"resilientft/internal/transport"
)

// ErrNoAccess reports an application that does not expose its state
// (checkpointing-based strategies are invalid for it, per Table 1).
var ErrNoAccess = errors.New("appstate: application state not accessible")

// ErrDeltaBase reports a delta whose base version does not match the
// receiver's current state version; the sender must fall back to a full
// checkpoint (the resync path).
var ErrDeltaBase = errors.New("appstate: delta base version mismatch")

// Manager is the StateManager contract of the paper: the hook an
// application exposes so FTMs can capture and restore its state.
type Manager interface {
	// CaptureState serializes the current application state.
	CaptureState() ([]byte, error)
	// RestoreState replaces the application state with a capture.
	RestoreState(data []byte) error
}

// DeltaCapturer is the optional extension of Manager for delta
// checkpointing: a state that tracks its own write-set under a monotonic
// version counter, so a checkpointing FTM can ship O(write-set) deltas
// between acknowledged versions instead of the full state every request.
// The delta payload is opaque to callers, like a full capture.
type DeltaCapturer interface {
	Manager
	// StateVersion returns the current version (bumped on every mutation).
	StateVersion() uint64
	// CaptureVersioned is CaptureState paired atomically with the version
	// the capture represents.
	CaptureVersioned() (data []byte, version uint64, err error)
	// CaptureDelta serializes the changes made after version base.
	// ok=false means the tracker cannot answer for base (it predates the
	// retained history); the caller must ship a full capture instead.
	// Capturing prunes history at or below base, so bases must be taken
	// from previously acknowledged versions and never move backward.
	CaptureDelta(base uint64) (delta []byte, to uint64, ok bool, err error)
	// ApplyDelta applies a delta to a state whose version equals the
	// delta's base, returning the new version. A base mismatch returns
	// ErrDeltaBase and leaves the state untouched.
	ApplyDelta(delta []byte) (version uint64, err error)
	// ApplyFull replaces the state with a full capture and adopts the
	// sender's version, aligning the two sides for subsequent deltas.
	ApplyFull(data []byte, version uint64) error
}

// regCell is one register's storage. Cells are allocated once per
// register name and reused for the life of the Registers; the steady
// state of delta apply on a backup — the per-request hot path of
// passive replication — touches only existing cells and therefore does
// not allocate. A deleted register keeps its cell as a tombstone
// (dead=true) so the deletion travels in deltas.
type regCell struct {
	name  string
	val   int64
	ver   uint64 // version of the last modification
	gen   uint32 // mark for the full-restore sweep
	dead  bool   // tombstone: deleted at ver
	dirty bool   // queued on the dirty list
}

// Registers is a deterministic register-file application state: named
// int64 registers. It is the state container of the example applications
// and workload generators. Every mutation bumps a version counter and
// queues the touched register's cell on a dirty list, which is what
// makes the DeltaCapturer contract cheap in both directions: a delta
// capture walks only the dirty cells, and a delta apply walks the
// encoded bytes in place, mutating existing cells without allocating.
type Registers struct {
	mu   sync.Mutex
	regs map[string]*regCell

	// version counts mutations. dirty queues cells modified after floor,
	// deduplicated by the cell's dirty flag; capture compacts it.
	version uint64
	dirty   []*regCell
	floor   uint64
	live    int    // cells that are not tombstones
	gen     uint32 // current full-restore generation
}

// NewRegisters returns an empty register file.
func NewRegisters() *Registers {
	return &Registers{regs: make(map[string]*regCell)}
}

var (
	_ Manager       = (*Registers)(nil)
	_ DeltaCapturer = (*Registers)(nil)
)

// Get returns the value of a register (0 when never written).
func (r *Registers) Get(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.regs[name]; ok && !c.dead {
		return c.val
	}
	return 0
}

// touch returns name's cell, creating it if needed, bumps the version
// and queues the cell on the dirty list. Callers hold r.mu.
func (r *Registers) touch(name string) *regCell {
	c, ok := r.regs[name]
	if !ok {
		c = &regCell{name: name, dead: true}
		r.regs[name] = c
	}
	if c.dead {
		// A revived register starts from zero, like a never-written one.
		c.dead = false
		c.val = 0
		r.live++
	}
	r.version++
	c.ver = r.version
	if !c.dirty {
		c.dirty = true
		r.dirty = append(r.dirty, c)
	}
	return c
}

// Set writes a register.
func (r *Registers) Set(name string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.touch(name).val = v
}

// Add increments a register and returns the new value.
func (r *Registers) Add(name string, delta int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.touch(name)
	c.val += delta
	return c.val
}

// Names returns the register names, sorted.
func (r *Registers) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, r.live)
	for k, c := range r.regs {
		if !c.dead {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// snapshot is the gob compatibility form of a full register capture.
// New captures use the tagged fast layout (written by CaptureVersioned,
// read by applySnapshot); decoding still accepts this form so captures
// taken by older versions restore cleanly.
type snapshot struct {
	Regs map[string]int64
}

// regDelta is the compatibility form of a Registers write-set between
// two versions. New captures encode the same fast wire layout directly
// from the dirty cells; the type remains for the gob decode arm and for
// mixed-version tests.
type regDelta struct {
	Base    uint64
	To      uint64
	Regs    map[string]int64
	Deleted []string
}

// CaptureState serializes the register file.
func (r *Registers) CaptureState() ([]byte, error) {
	data, _, err := r.CaptureVersioned()
	return data, err
}

// sortedLive returns the live cells sorted by name. Callers hold r.mu.
func (r *Registers) sortedLive() []*regCell {
	cells := make([]*regCell, 0, r.live)
	for _, c := range r.regs {
		if !c.dead {
			cells = append(cells, c)
		}
	}
	slices.SortFunc(cells, func(a, b *regCell) int { return strings.Compare(a.name, b.name) })
	return cells
}

// CaptureVersioned serializes the register file along with the version
// the capture represents. The capture is written in the tagged fast
// layout straight from the cells — full checkpoints ride the periodic
// checkpoint refresh, so they stay off gob like the per-request deltas.
func (r *Registers) CaptureVersioned() ([]byte, uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cells := r.sortedLive()
	// The snapshot buffer comes from the transport pool; the shipper
	// recycles it once the checkpoint envelope has copied it.
	buf := append(transport.GetBuf(), transport.FastTag)
	buf = transport.AppendUvarint(buf, uint64(len(cells)))
	for _, c := range cells {
		buf = transport.AppendLenString(buf, c.name)
		buf = transport.AppendVarint(buf, c.val)
	}
	return buf, r.version, nil
}

// snapshotEntry hands one decoded register of a full capture to apply
// loops. The key aliases the capture buffer and must not be retained.
type snapshotEntry func(key []byte, val int64) error

// walkSnapshot decodes a full capture in either wire form: the tagged
// fast layout is walked in place; gob captures (the compatibility arm)
// are decoded and then walked.
func walkSnapshot(data []byte, fn snapshotEntry) error {
	if len(data) > 0 && data[0] == transport.FastTag {
		rest := data[1:]
		n, rest, err := transport.ReadUvarint(rest)
		if err != nil {
			return fmt.Errorf("appstate: snapshot count: %w", err)
		}
		for i := uint64(0); i < n; i++ {
			var k []byte
			var v int64
			if k, rest, err = transport.ReadLenBytesInPlace(rest); err != nil {
				return fmt.Errorf("appstate: snapshot key %d: %w", i, err)
			}
			if v, rest, err = transport.ReadVarint(rest); err != nil {
				return fmt.Errorf("appstate: snapshot value %d: %w", i, err)
			}
			if err := fn(k, v); err != nil {
				return err
			}
		}
		return nil
	}
	var s snapshot
	if err := transport.Decode(data, &s); err != nil {
		return err
	}
	for k, v := range s.Regs {
		if err := fn([]byte(k), v); err != nil {
			return err
		}
	}
	return nil
}

// setCell updates or creates name's cell without touching version
// bookkeeping. Callers hold r.mu.
func (r *Registers) setCell(key []byte, val int64) *regCell {
	c, ok := r.regs[string(key)]
	if !ok {
		c = &regCell{name: string(key)}
		r.regs[c.name] = c
		r.live++
	} else if c.dead {
		c.dead = false
		r.live++
	}
	c.val = val
	return c
}

// RestoreState replaces the register file with a capture. The restore is
// applied as a diff against the current contents: only registers whose
// value actually changes (or disappears) are marked dirty, so a
// restore-heavy FTM combination (time redundancy restoring before every
// retry, say) does not blow up the delta write-set.
func (r *Registers) RestoreState(data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.version++
	v := r.version
	r.gen++
	gen := r.gen
	err := walkSnapshot(data, func(key []byte, val int64) error {
		c, ok := r.regs[string(key)]
		if !ok || c.dead || c.val != val {
			c = r.setCell(key, val)
			c.ver = v
			if !c.dirty {
				c.dirty = true
				r.dirty = append(r.dirty, c)
			}
		}
		c.gen = gen
		return nil
	})
	if err != nil {
		return fmt.Errorf("appstate: restore: %w", err)
	}
	// Registers absent from the capture disappear; the tombstone keeps
	// the deletion visible to delta captures.
	for _, c := range r.regs {
		if c.gen != gen && !c.dead {
			c.dead = true
			r.live--
			c.ver = v
			if !c.dirty {
				c.dirty = true
				r.dirty = append(r.dirty, c)
			}
		}
	}
	return nil
}

// StateVersion returns the current mutation counter.
func (r *Registers) StateVersion() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// CaptureDelta serializes the registers modified after version base,
// encoding the regDelta fast wire layout directly from the dirty cells
// (no intermediate map). Capturing compacts the dirty list: cells at or
// below an acknowledged base are dead weight, since future captures only
// ever ask for newer bases.
func (r *Registers) CaptureDelta(base uint64) ([]byte, uint64, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if base < r.floor || base > r.version {
		return nil, r.version, false, nil
	}
	kept := r.dirty[:0]
	for _, c := range r.dirty {
		if c.ver <= base {
			c.dirty = false
			continue
		}
		kept = append(kept, c)
	}
	r.dirty = kept
	if base > r.floor {
		r.floor = base
	}
	// Sorted by name so identical write-sets encode identically; the
	// list stays sorted in place, which keeps repeat captures of a hot
	// write-set nearly free.
	slices.SortFunc(kept, func(a, b *regCell) int { return strings.Compare(a.name, b.name) })
	liveN, deadN := 0, 0
	for _, c := range kept {
		if c.dead {
			deadN++
		} else {
			liveN++
		}
	}
	// The delta buffer comes from the transport pool; the shipper
	// recycles it once the checkpoint envelope has copied it.
	buf := append(transport.GetBuf(), transport.FastTag)
	buf = transport.AppendUvarint(buf, base)
	buf = transport.AppendUvarint(buf, r.version)
	buf = transport.AppendUvarint(buf, uint64(liveN))
	for _, c := range kept {
		if !c.dead {
			buf = transport.AppendLenString(buf, c.name)
			buf = transport.AppendVarint(buf, c.val)
		}
	}
	buf = transport.AppendUvarint(buf, uint64(deadN))
	for _, c := range kept {
		if c.dead {
			buf = transport.AppendLenString(buf, c.name)
		}
	}
	return buf, r.version, true, nil
}

// ApplyDelta applies a delta captured against this state's exact current
// version. Fast-coded deltas — the steady state — are walked in place:
// existing cells are mutated through a no-allocation map lookup, so a
// backup applying the write-sets of a stable register population does
// zero per-message heap allocation.
func (r *Registers) ApplyDelta(delta []byte) (uint64, error) {
	if len(delta) > 0 && delta[0] == transport.FastTag {
		return r.applyDeltaFast(delta[1:])
	}
	// Compatibility arm: gob-coded delta from an older sender.
	var d regDelta
	if err := transport.Decode(delta, &d); err != nil {
		return 0, fmt.Errorf("appstate: apply delta: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d.Base != r.version {
		return r.version, fmt.Errorf("%w: at version %d, delta base %d", ErrDeltaBase, r.version, d.Base)
	}
	for k, v := range d.Regs {
		c := r.setCell([]byte(k), v)
		c.ver = d.To
	}
	for _, k := range d.Deleted {
		r.tombstone([]byte(k), d.To)
	}
	r.adoptVersion(d.To)
	return r.version, nil
}

func (r *Registers) applyDeltaFast(data []byte) (uint64, error) {
	base, data, err := transport.ReadUvarint(data)
	if err != nil {
		return 0, fmt.Errorf("appstate: delta base: %w", err)
	}
	to, data, err := transport.ReadUvarint(data)
	if err != nil {
		return 0, fmt.Errorf("appstate: delta to: %w", err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if base != r.version {
		return r.version, fmt.Errorf("%w: at version %d, delta base %d", ErrDeltaBase, r.version, base)
	}
	n, data, err := transport.ReadUvarint(data)
	if err != nil {
		return r.version, fmt.Errorf("appstate: delta count: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		var k []byte
		var v int64
		if k, data, err = transport.ReadLenBytesInPlace(data); err != nil {
			return r.version, fmt.Errorf("appstate: delta key %d: %w", i, err)
		}
		if v, data, err = transport.ReadVarint(data); err != nil {
			return r.version, fmt.Errorf("appstate: delta value %d: %w", i, err)
		}
		// Existing cells — the steady state — mutate in place; only a
		// register name never seen before allocates.
		if c, ok := r.regs[string(k)]; ok {
			if c.dead {
				c.dead = false
				r.live++
			}
			c.val = v
			c.ver = to
		} else {
			c := r.setCell(k, v)
			c.ver = to
		}
	}
	if n, data, err = transport.ReadUvarint(data); err != nil {
		return r.version, fmt.Errorf("appstate: delta deleted count: %w", err)
	}
	for i := uint64(0); i < n; i++ {
		var k []byte
		if k, data, err = transport.ReadLenBytesInPlace(data); err != nil {
			return r.version, fmt.Errorf("appstate: delta deleted %d: %w", i, err)
		}
		r.tombstone(k, to)
	}
	r.adoptVersion(to)
	return r.version, nil
}

// tombstone marks key deleted at version ver. Callers hold r.mu.
func (r *Registers) tombstone(key []byte, ver uint64) {
	c, ok := r.regs[string(key)]
	if !ok {
		return
	}
	if !c.dead {
		c.dead = true
		r.live--
	}
	c.ver = ver
}

// adoptVersion moves the receiver to the sender's version after a delta
// apply. The receiving side's own history is useless below the adopted
// version: a future capture from here starts with a full checkpoint.
// Callers hold r.mu.
func (r *Registers) adoptVersion(to uint64) {
	r.version = to
	r.floor = to
}

// ApplyFull replaces the register file with a full capture and adopts
// the sender's version. Like RestoreState it diffs against the current
// contents, reusing cells, so repeated resyncs do not churn the heap.
func (r *Registers) ApplyFull(data []byte, version uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gen++
	gen := r.gen
	err := walkSnapshot(data, func(key []byte, val int64) error {
		c := r.setCell(key, val)
		c.ver = version
		c.gen = gen
		return nil
	})
	if err != nil {
		return fmt.Errorf("appstate: apply full: %w", err)
	}
	for _, c := range r.regs {
		if c.gen != gen && !c.dead {
			c.dead = true
			r.live--
			c.ver = version
		}
	}
	r.adoptVersion(version)
	return nil
}

// Opaque is a Manager over state the application refuses to expose: both
// operations fail with ErrNoAccess. Attaching a checkpointing FTM to such
// an application is the inconsistency Table 1 forbids, and tests use this
// to verify the consistency checker catches it.
type Opaque struct{}

var _ Manager = Opaque{}

// CaptureState always fails.
func (Opaque) CaptureState() ([]byte, error) { return nil, ErrNoAccess }

// RestoreState always fails.
func (Opaque) RestoreState([]byte) error { return ErrNoAccess }

// Checkpoint is what a passive-replication master ships to its slave: the
// application state paired with the reply-log snapshot that preserves
// at-most-once semantics across failover, and the sequence number of the
// last request folded into the state.
//
// StateVersion carries the sender's state version for delta-capable
// states (zero otherwise). Checkpoints now encode through the fast
// codec; gob-coded checkpoints from older senders still decode through
// the compatibility arm.
type Checkpoint struct {
	AppState     []byte
	ReplyLog     []byte
	LastSeq      uint64
	StateVersion uint64
}

// DeltaCheckpoint is the incremental counterpart of Checkpoint: the
// state write-set between two acknowledged versions plus the reply-log
// tail recorded since the last shipped checkpoint. It travels under its
// own message payload tag, so mixed-version replicas never confuse the
// two.
type DeltaCheckpoint struct {
	BaseVersion uint64
	ToVersion   uint64
	// Delta is the opaque write-set produced by DeltaCapturer.CaptureDelta.
	Delta []byte
	// ReplyTail is the encoded batch of responses recorded since the last
	// acknowledged checkpoint.
	ReplyTail []byte
	LastSeq   uint64
}

// EncodeCheckpoint serializes a checkpoint for transmission.
func EncodeCheckpoint(cp Checkpoint) ([]byte, error) { return transport.Encode(cp) }

// DecodeCheckpoint deserializes a checkpoint.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var cp Checkpoint
	err := transport.Decode(data, &cp)
	return cp, err
}

// EncodeDeltaCheckpoint serializes a delta checkpoint.
func EncodeDeltaCheckpoint(dc DeltaCheckpoint) ([]byte, error) { return transport.Encode(dc) }

// DecodeDeltaCheckpoint deserializes a delta checkpoint.
func DecodeDeltaCheckpoint(data []byte) (DeltaCheckpoint, error) {
	var dc DeltaCheckpoint
	err := transport.Decode(data, &dc)
	return dc, err
}
