package appstate

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"

	"resilientft/internal/transport"
)

func TestDeltaCheckpointFastRoundTrip(t *testing.T) {
	in := DeltaCheckpoint{
		BaseVersion: 7,
		ToVersion:   12,
		Delta:       []byte{1, 2, 3},
		ReplyTail:   []byte("tail"),
		LastSeq:     99,
	}
	data, err := EncodeDeltaCheckpoint(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDeltaCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestRegDeltaFastRoundTrip(t *testing.T) {
	in := regDelta{
		Base:    3,
		To:      9,
		Regs:    map[string]int64{"a": -5, "b": 1 << 40, "c": 0},
		Deleted: []string{"gone", "too"},
	}
	data, err := transport.Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out regDelta
	if err := transport.Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

// A delta produced by an older gob-only sender must still decode: the
// fast codec only changes what this version emits, not what it accepts.
func TestDeltaCheckpointDecodesGob(t *testing.T) {
	in := DeltaCheckpoint{BaseVersion: 1, ToVersion: 2, Delta: []byte{9}, LastSeq: 4}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatal(err)
	}
	out, err := DecodeDeltaCheckpoint(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("gob decode: got %+v, want %+v", out, in)
	}
}

func TestDeltaRoundTripThroughRegisters(t *testing.T) {
	src := NewRegisters()
	src.Set("a", 1)
	base := src.StateVersion()
	dst := NewRegisters()
	full, ver, err := src.CaptureVersioned()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ApplyFull(full, ver); err != nil {
		t.Fatal(err)
	}
	src.Set("b", -7)
	src.Set("a", 2)
	delta, to, ok, err := src.CaptureDelta(base)
	if err != nil || !ok {
		t.Fatalf("CaptureDelta: ok=%v err=%v", ok, err)
	}
	got, err := dst.ApplyDelta(delta)
	if err != nil {
		t.Fatal(err)
	}
	if got != to {
		t.Fatalf("ApplyDelta version = %d, want %d", got, to)
	}
	if dst.Get("a") != 2 || dst.Get("b") != -7 {
		t.Fatalf("state after delta: a=%d b=%d", dst.Get("a"), dst.Get("b"))
	}
}
