package experiments

import (
	"context"
	"strings"
	"testing"

	"resilientft/internal/core"
)

func TestTable1MatchesPaper(t *testing.T) {
	out := Table1()
	// Spot-check the paper's cells.
	for _, want := range []string{
		"FT: crash", "FT: transient value", "FT: permanent value",
		"A: requires state access", "R: bandwidth", "R: CPU",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing row %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	find := func(prefix string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				return l
			}
		}
		return ""
	}
	// PBR: crash yes; bandwidth high, CPU low; TR bandwidth n/a CPU high.
	bw := find("R: bandwidth")
	if !strings.Contains(bw, "high") || !strings.Contains(bw, "n/a") {
		t.Errorf("bandwidth row wrong: %s", bw)
	}
}

func TestTable2DerivedFromLiveArchitectures(t *testing.T) {
	out, err := Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rows := []string{
		"PBR (Primary)", "Nothing", "Compute", "Checkpoint to Backup",
		"PBR (Backup)", "Process checkpoint",
		"LFR (Leader)", "Forward request", "Notify Follower",
		"LFR (Follower)", "Receive request", "Process notification",
		"TR", "Capture state", "Restore state",
	}
	for _, want := range rows {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestFig2AndFig8Render(t *testing.T) {
	f2 := Fig2()
	if !strings.Contains(f2, "PBR <-> LFR [A,R]") {
		t.Errorf("Figure 2 missing PBR<->LFR edge:\n%s", f2)
	}
	f8 := Fig8()
	for _, want := range []string{"Mandatory", "Possible", "Intra-FTM",
		"bandwidth-drop", "proactive", "no-generic-solution"} {
		if !strings.Contains(f8, want) {
			t.Errorf("Figure 8 missing %q", want)
		}
	}
}

func TestFig6ShowsPBRArchitecture(t *testing.T) {
	out, err := Fig6(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"protocol", "syncBefore", "proceed", "syncAfter", "replyLog", "server"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 6 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	res, err := Table3(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Deployment must cost more than any differential transition — the
	// paper's headline result.
	meanDep, meanTr := res.MeanDeploy(), res.MeanTransition()
	if meanDep <= meanTr {
		t.Fatalf("deployment (%v) not slower than transition (%v)", meanDep, meanTr)
	}
	// Diagonal is zero.
	for _, id := range core.DeployableSet() {
		if res.Transition[[2]core.ID{id, id}] != 0 {
			t.Errorf("diagonal %s not zero", id)
		}
	}
	// Transition time grows with the number of components replaced.
	byDiff := res.TransitionByDiffSize()
	if byDiff[1] == 0 || byDiff[2] == 0 || byDiff[3] == 0 {
		t.Fatalf("missing diff sizes: %v", byDiff)
	}
	if float64(byDiff[1]) >= 1.2*float64(byDiff[3]) {
		t.Errorf("1-component transition (%v) not faster than 3-component (%v)", byDiff[1], byDiff[3])
	}
	if !strings.Contains(res.Render(), "Table 3") {
		t.Error("render missing title")
	}
}

func TestFig9Shape(t *testing.T) {
	if _, err := Fig9(context.Background(), 1); err != nil { // warm-up
		t.Fatal(err)
	}
	rows, err := Fig9(context.Background(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Components != 1 || rows[1].Components != 2 || rows[2].Components != 3 {
		t.Fatalf("component counts = %d/%d/%d", rows[0].Components, rows[1].Components, rows[2].Components)
	}
	// Total transition time grows with components replaced; allow a small
	// scheduling-noise margin on the strict ordering.
	if float64(rows[0].Steps.Total()) >= 1.2*float64(rows[2].Steps.Total()) {
		t.Errorf("1-component total (%v) not below 3-component total (%v)",
			rows[0].Steps.Total(), rows[2].Steps.Total())
	}
	out := RenderFig9(rows)
	if !strings.Contains(out, "Figure 9") {
		t.Error("render missing title")
	}
}

func TestFig5AttributesPatterns(t *testing.T) {
	rows, err := Fig5("../..")
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]int, len(rows))
	for _, r := range rows {
		got[r.Pattern] = r.Lines
	}
	for _, pattern := range []string{"PBR", "LFR", "TR", "Assertion",
		"FaultToleranceProtocol", "DuplexProtocol", "Generic scheme"} {
		if got[pattern] == 0 {
			t.Errorf("pattern %q has no attributed lines: %v", pattern, got)
		}
	}
	// The factored common parts dwarf any single pattern — the design-
	// for-adaptation claim.
	if got["FaultToleranceProtocol"] < got["PBR"] {
		t.Errorf("common protocol (%d) smaller than PBR-specific code (%d)",
			got["FaultToleranceProtocol"], got["PBR"])
	}
}

func TestFig4CompositionCostsNothing(t *testing.T) {
	rows, err := Fig4("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if (r.FTM == core.PBRTR || r.FTM == core.LFRTR) && r.Specific != 0 {
			t.Errorf("composition %s has %d specific lines, want 0", r.FTM, r.Specific)
		}
		if r.ReuseRatio() < 0.5 {
			t.Errorf("FTM %s reuse ratio %.2f below 0.5", r.FTM, r.ReuseRatio())
		}
	}
	if !strings.Contains(RenderFig4(rows), "Figure 4") {
		t.Error("render missing title")
	}
}

func TestAgilityComparison(t *testing.T) {
	res, err := Agility(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// The preprogrammed stack carries far more resident components.
	if res.PreprogComponents <= res.AgileComponents {
		t.Errorf("preprog components %d not above agile %d", res.PreprogComponents, res.AgileComponents)
	}
	if !res.PreprogForeseenOnly {
		t.Error("preprogrammed replica accepted an unforeseen FTM")
	}
	out := res.Render()
	if !strings.Contains(out, "agility") {
		t.Error("render missing title")
	}
}

func TestSLOCSummary(t *testing.T) {
	out, err := SLOCSummary("../..")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "library SLOC") {
		t.Errorf("summary = %q", out)
	}
}
