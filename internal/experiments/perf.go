package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
	"resilientft/internal/slo"
	"resilientft/internal/telemetry"
)

// PerfMetric is one measured point of the performance suite. Throughput
// points repeat the measurement (Runs times, fresh system each) and
// report the median as the headline ReqPerSec — single runs of the
// 1-client points spread up to tens of percent with scheduler luck, so
// one draw is not a number worth comparing across commits — with the
// min alongside as the reproducible floor.
type PerfMetric struct {
	Name      string  `json:"name"`
	NsPerOp   int64   `json:"ns_per_op"`
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
	// ReqPerSecMin is the worst of the repeated runs; Runs how many were
	// taken (absent on single-run latency points).
	ReqPerSecMin float64 `json:"req_per_sec_min,omitempty"`
	Runs         int     `json:"runs,omitempty"`
}

// PerfReport is the machine-readable output of the performance suite —
// the data behind BENCH_pr1.json. `benchsuite -exp bench -json FILE`
// regenerates it.
type PerfReport struct {
	Suite       string       `json:"suite"`
	Meta        RunMeta      `json:"meta"`
	OpsPerPoint int          `json:"ops_per_point"`
	Metrics     []PerfMetric `json:"metrics"`
	// Telemetry is the flattened telemetry registry at the end of the
	// run (benchsuite -metrics); the counters behind the measurements.
	Telemetry map[string]float64 `json:"telemetry,omitempty"`
	// SLO is the per-shard SLO report of an evaluator that ran alongside
	// the whole suite at its default cadence (PerfSuite sloOn): the
	// bench's own traffic graded against the default objectives, and the
	// proof that the evaluator was live while the numbers above were
	// taken.
	SLO []slo.ShardSnapshot `json:"slo,omitempty"`
}

// JSON renders the report as indented JSON.
func (r *PerfReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// PerfSuite measures the request-path performance families the repo's
// benchmarks track (`go test -bench` is the precise instrument; this
// suite is the scriptable one): client-visible request latency per FTM,
// the state-size sweep extremes under full and delta checkpointing,
// aggregate multi-client throughput, and — when shards > 0 — the same
// throughput points against a consistent-hash-routed N-group system,
// plus a 1-group routed point (the parity row: what the routing tier
// itself costs over a single group).
//
// With sloOn an SLO evaluator runs over the whole suite at its default
// cadence, objectives declared for every shard the bench drives; its
// final report is embedded in the output. The point is the cost, not
// the grades: a report taken with the evaluator live is the regression
// guard for the evaluator's own overhead.
func PerfSuite(ctx context.Context, ops, shards int, sloOn bool) (*PerfReport, error) {
	if ops < 1 {
		ops = 200
	}
	report := &PerfReport{Suite: "request-path", Meta: CollectRunMeta(), OpsPerPoint: ops}

	var sloEng *slo.Engine
	if sloOn {
		sloEng = slo.New(slo.Config{Registry: telemetry.Default()})
		sloEng.SetObjective(rpc.ShardLabel(""), slo.DefaultObjective())
		for k := 0; k < shards; k++ {
			sloEng.SetObjective(fmt.Sprintf("%d", k), slo.DefaultObjective())
		}
		sloEng.Start()
		defer func() {
			sloEng.Stop()
			// One final fold so requests issued after the last timed tick
			// (the tail families) still reach the report.
			sloEng.Tick()
			report.SLO = sloEng.Report()
		}()
	}

	add := func(name string, ns time.Duration, reqs float64) {
		report.Metrics = append(report.Metrics, PerfMetric{
			Name: name, NsPerOp: ns.Nanoseconds(), ReqPerSec: reqs,
		})
	}

	for _, id := range []core.ID{core.PBR, core.LFR} {
		lat, _, err := measureLatency(ctx, id, 4, ops, false)
		if err != nil {
			return nil, fmt.Errorf("experiments: perf latency %s: %w", id, err)
		}
		add("request_latency/"+string(id), lat, 0)
	}

	// Tracing-overhead family: the same PBR latency point with the span
	// sampler off, at the shipped default (1-in-100), and tracing every
	// request. The delta between rows is what the span layer costs.
	sampler := telemetry.DefaultSampler()
	prevEvery := sampler.Every()
	for _, tc := range []struct {
		name  string
		every uint64
	}{
		{"tracing/pbr_off", 0},
		{"tracing/pbr_1pct", telemetry.DefaultSampleEvery},
		{"tracing/pbr_100pct", 1},
	} {
		sampler.SetEvery(tc.every)
		lat, _, err := measureLatency(ctx, core.PBR, 4, ops, false)
		if err != nil {
			sampler.SetEvery(prevEvery)
			return nil, fmt.Errorf("experiments: perf tracing %s: %w", tc.name, err)
		}
		add(tc.name, lat, 0)
	}
	sampler.SetEvery(prevEvery)

	type sweepCase struct {
		name     string
		ftm      core.ID
		regs     int
		fullOnly bool
	}
	for _, c := range []sweepCase{
		{"state_sweep/pbr_8regs", core.PBR, 8, false},
		{"state_sweep/pbr_4096regs", core.PBR, 4096, false},
		{"state_sweep/pbr_full_4096regs", core.PBR, 4096, true},
		{"state_sweep/lfr_4096regs", core.LFR, 4096, false},
	} {
		lat, _, err := measureLatency(ctx, c.ftm, c.regs, ops, c.fullOnly)
		if err != nil {
			return nil, fmt.Errorf("experiments: perf sweep %s: %w", c.name, err)
		}
		add(c.name, lat, 0)
	}

	for _, id := range []core.ID{core.PBR, core.LFR} {
		// 32 clients exercises the group-commit path: far more contention
		// on the synchronizing After brick than ships.
		for _, clients := range []int{1, 8, 32} {
			name := fmt.Sprintf("throughput/%s_%dclients", id, clients)
			runs := make([]throughputRun, throughputRuns)
			for i := range runs {
				var err error
				if runs[i], err = measureThroughput(ctx, id, clients, ops); err != nil {
					return nil, fmt.Errorf("experiments: perf throughput %s@%d: %w", id, clients, err)
				}
			}
			sort.Slice(runs, func(i, j int) bool { return runs[i].reqs < runs[j].reqs })
			med := runs[len(runs)/2]
			report.Metrics = append(report.Metrics, PerfMetric{
				Name: name, NsPerOp: med.lat.Nanoseconds(), ReqPerSec: med.reqs,
				ReqPerSecMin: runs[0].reqs, Runs: len(runs),
			})
		}
	}

	if shards > 0 {
		// Sharded family, PBR only (the checkpoint-heavy mechanism is the
		// one whose serialization sharding relieves): N groups behind the
		// ring router, and the N=1 parity point. Compare these to the
		// same-run throughput/pbr_32clients row — ratios within one report
		// are meaningful, absolutes across machines are not.
		for _, n := range []int{1, shards} {
			name := fmt.Sprintf("throughput/pbr_sharded%d_32clients", n)
			runs := make([]throughputRun, throughputRuns)
			for i := range runs {
				var err error
				if runs[i], err = measureShardedThroughput(ctx, core.PBR, n, 32, ops); err != nil {
					return nil, fmt.Errorf("experiments: perf sharded throughput %d: %w", n, err)
				}
			}
			sort.Slice(runs, func(i, j int) bool { return runs[i].reqs < runs[j].reqs })
			med := runs[len(runs)/2]
			report.Metrics = append(report.Metrics, PerfMetric{
				Name: name, NsPerOp: med.lat.Nanoseconds(), ReqPerSec: med.reqs,
				ReqPerSecMin: runs[0].reqs, Runs: len(runs),
			})
			if n == shards {
				break // shards == 1: the parity row is the whole family
			}
		}
	}
	return report, nil
}

// Throughput repetition policy: each point is measured throughputRuns
// times on a fresh system, after a pinned warm-up of throughputWarmup
// requests per client that is excluded from the timing. The warm-up is
// a fixed count — not a fraction of ops — so the measured region starts
// from the same state (connections dialed, pools primed, the adaptive
// accumulation window converged) at every ops setting.
const (
	throughputRuns   = 3
	throughputWarmup = 64
)

type throughputRun struct {
	reqs float64
	lat  time.Duration
}

// measureThroughput runs clients concurrent clients, each issuing ops
// writes to its own register after a pinned untimed warm-up, and
// returns aggregate requests per second plus the mean wall-clock time
// per request.
func measureThroughput(ctx context.Context, ftmID core.ID, clients, ops int) (throughputRun, error) {
	sys, err := ftm.NewSystem(ctx, ftm.SystemConfig{
		System:            "perf",
		FTM:               ftmID,
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectTimeout:    30 * time.Second,
	})
	if err != nil {
		return throughputRun{}, err
	}
	defer sys.Shutdown()

	cls := make([]*rpc.Client, clients)
	for i := range cls {
		if cls[i], err = sys.NewClient(rpc.WithCallTimeout(10 * time.Second)); err != nil {
			return throughputRun{}, err
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	drive := func(count int) {
		for ci, c := range cls {
			wg.Add(1)
			go func(c *rpc.Client, op string) {
				defer wg.Done()
				for i := 0; i < count; i++ {
					if _, err := c.Invoke(ctx, op, ftm.EncodeArg(1)); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(c, fmt.Sprintf("add:r%d", ci))
		}
		wg.Wait()
	}
	drive(throughputWarmup)
	if firstErr != nil {
		return throughputRun{}, firstErr
	}
	start := time.Now()
	drive(ops)
	elapsed := time.Since(start)
	if firstErr != nil {
		return throughputRun{}, firstErr
	}
	total := clients * ops
	return throughputRun{
		reqs: float64(total) / elapsed.Seconds(),
		lat:  elapsed / time.Duration(total),
	}, nil
}

// measureShardedThroughput is measureThroughput against a sharded
// system: shards independent groups behind consistent-hash routers,
// each worker writing its own register through its own router. Worker
// keys are picked so the load spreads evenly over the groups — the
// benchmark measures the sharded request path, not hash luck on 32
// short strings.
func measureShardedThroughput(ctx context.Context, ftmID core.ID, shards, clients, ops int) (throughputRun, error) {
	sys, err := ftm.NewShardedSystem(ctx, ftm.ShardedConfig{
		System:            "perf",
		FTM:               ftmID,
		Shards:            shards,
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectTimeout:    30 * time.Second,
	})
	if err != nil {
		return throughputRun{}, err
	}
	defer sys.Shutdown()

	routers := make([]*rpc.Router, clients)
	keys := make([]string, clients)
	for i := range routers {
		if routers[i], err = sys.NewRouter(rpc.WithCallTimeout(10 * time.Second)); err != nil {
			return throughputRun{}, err
		}
		// Search for a key the ring maps to this worker's target group.
		want := sys.IDs()[i%shards]
		for j := 0; ; j++ {
			key := fmt.Sprintf("r%d-%d", i, j)
			if routers[i].Pick(key) == want {
				keys[i] = key
				break
			}
		}
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	drive := func(count int) {
		for ci := range routers {
			wg.Add(1)
			go func(r *rpc.Router, key string) {
				defer wg.Done()
				op := "add:" + key
				for i := 0; i < count; i++ {
					if _, err := r.Invoke(ctx, key, op, ftm.EncodeArg(1)); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
						return
					}
				}
			}(routers[ci], keys[ci])
		}
		wg.Wait()
	}
	drive(throughputWarmup)
	if firstErr != nil {
		return throughputRun{}, firstErr
	}
	start := time.Now()
	drive(ops)
	elapsed := time.Since(start)
	if firstErr != nil {
		return throughputRun{}, firstErr
	}
	total := clients * ops
	return throughputRun{
		reqs: float64(total) / elapsed.Seconds(),
		lat:  elapsed / time.Duration(total),
	}, nil
}
