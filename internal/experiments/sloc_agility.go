package experiments

import (
	"context"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/preprog"
	"resilientft/internal/sloc"
	"resilientft/internal/transport"
)

// PatternSLOC is the Figure 5 measurement: source lines per
// fault-tolerance design pattern, attributed by parsing this repository's
// FTM implementation and grouping top-level declarations.
type PatternSLOC struct {
	Pattern string
	Lines   int
}

// patternOf attributes a top-level declaration name of the ftm package to
// a design pattern.
func patternOf(name string) string {
	lower := strings.ToLower(name)
	switch {
	case strings.HasPrefix(lower, "pbr"):
		return "PBR"
	case strings.HasPrefix(lower, "lfr"):
		return "LFR"
	case strings.HasPrefix(lower, "tr"):
		return "TR"
	case strings.HasPrefix(lower, "assert"):
		return "Assertion"
	case strings.HasPrefix(lower, "protocol"):
		return "FaultToleranceProtocol"
	case strings.HasPrefix(lower, "peer"), strings.HasPrefix(lower, "detector"):
		return "DuplexProtocol"
	case strings.HasPrefix(lower, "replylog"), strings.HasPrefix(lower, "lookup"):
		return "FaultToleranceProtocol"
	case strings.HasPrefix(lower, "nop"), strings.HasPrefix(lower, "noproceed"),
		strings.HasPrefix(lower, "compute"), strings.HasPrefix(lower, "brick"),
		strings.HasPrefix(lower, "callpayload"), strings.HasPrefix(lower, "sameoutcome"),
		strings.HasPrefix(lower, "newbrick"):
		return "Generic scheme"
	default:
		return ""
	}
}

// Fig5 measures SLOC per fault-tolerance pattern over the repository's
// FTM sources (repoRoot is the repository root).
func Fig5(repoRoot string) ([]PatternSLOC, error) {
	dir := filepath.Join(repoRoot, "internal", "ftm")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}
	lines := make(map[string]int)
	fset := token.NewFileSet()
	for _, entry := range entries {
		name := entry.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		file, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 parse %s: %w", name, err)
		}
		for _, decl := range file.Decls {
			declName := topLevelName(decl)
			if declName == "" {
				continue
			}
			pattern := patternOf(declName)
			if pattern == "" {
				continue
			}
			start := fset.Position(decl.Pos()).Line
			end := fset.Position(decl.End()).Line
			lines[pattern] += end - start + 1
		}
	}
	out := make([]PatternSLOC, 0, len(lines))
	for pattern, n := range lines {
		out = append(out, PatternSLOC{Pattern: pattern, Lines: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pattern < out[j].Pattern })
	return out, nil
}

// topLevelName extracts the declared name (methods attribute to their
// receiver type).
func topLevelName(decl ast.Decl) string {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Recv != nil && len(d.Recv.List) > 0 {
			return receiverTypeName(d.Recv.List[0].Type)
		}
		return d.Name.Name
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			if ts, ok := spec.(*ast.TypeSpec); ok {
				return ts.Name.Name
			}
		}
	}
	return ""
}

func receiverTypeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return receiverTypeName(t.X)
	}
	return ""
}

// RenderFig5 formats the Figure 5 measurement.
func RenderFig5(rows []PatternSLOC) string {
	var b strings.Builder
	b.WriteString("Figure 5: source lines of code per fault-tolerance design pattern (this repository)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %5d SLOC\n", r.Pattern, r.Lines)
	}
	return b.String()
}

// ReuseRow is the Figure 4 substitution: for each FTM, the
// pattern-specific code it needed vs the framework code it reuses. The
// paper's Figure 4 measures engineer-days — not computationally
// reproducible — but its claim ("after the design loops, a new FTM costs
// little new effort") maps onto marginal code size.
type ReuseRow struct {
	FTM      core.ID
	Specific int
	Reused   int
}

// ReuseRatio returns reused/(specific+reused).
func (r ReuseRow) ReuseRatio() float64 {
	total := r.Specific + r.Reused
	if total == 0 {
		return 0
	}
	return float64(r.Reused) / float64(total)
}

// Fig4 computes the framework-reuse measurement for each deployable FTM.
func Fig4(repoRoot string) ([]ReuseRow, error) {
	patterns, err := Fig5(repoRoot)
	if err != nil {
		return nil, err
	}
	byPattern := make(map[string]int, len(patterns))
	for _, p := range patterns {
		byPattern[p.Pattern] = p.Lines
	}
	common := byPattern["FaultToleranceProtocol"] + byPattern["Generic scheme"]
	duplex := byPattern["DuplexProtocol"]

	specificFor := func(id core.ID) int {
		switch id {
		case core.PBR:
			return byPattern["PBR"]
		case core.LFR:
			return byPattern["LFR"]
		case core.TR:
			return byPattern["TR"]
		case core.PBRTR:
			return 0 // pure composition: PBR bricks + TR proceed, no new code
		case core.LFRTR:
			return 0
		case core.APBR, core.ALFR:
			return byPattern["Assertion"]
		default:
			return 0
		}
	}
	ids := append([]core.ID{core.TR}, core.DeployableSet()...)
	out := make([]ReuseRow, 0, len(ids))
	for _, id := range ids {
		reused := common
		if core.MustLookup(id).Hosts >= 2 {
			reused += duplex
		}
		switch id {
		case core.PBRTR:
			reused += byPattern["PBR"] + byPattern["TR"]
		case core.LFRTR:
			reused += byPattern["LFR"] + byPattern["TR"]
		case core.APBR:
			reused += byPattern["PBR"]
		case core.ALFR:
			reused += byPattern["LFR"]
		}
		out = append(out, ReuseRow{FTM: id, Specific: specificFor(id), Reused: reused})
	}
	return out, nil
}

// RenderFig4 formats the reuse measurement.
func RenderFig4(rows []ReuseRow) string {
	var b strings.Builder
	b.WriteString("Figure 4 (substitution): marginal code per FTM vs framework reuse\n")
	b.WriteString("(the paper reports engineer-days — a human measurement; the same claim is\n")
	b.WriteString(" tested here as marginal SLOC: composition costs ~0 new lines)\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-8s specific %5d SLOC, reused %5d SLOC (%.0f%% reuse)\n",
			r.FTM, r.Specific, r.Reused, 100*r.ReuseRatio())
	}
	return b.String()
}

// AgilityResult is the §6.2 comparison between preprogrammed and agile
// adaptation.
type AgilityResult struct {
	PreprogSwitch     time.Duration
	AgileTransition   time.Duration
	PreprogComponents int
	AgileComponents   int
	// PreprogForeseenOnly reports that the preprogrammed replica refused
	// a transition outside its design-time set while the agile engine
	// executed it.
	PreprogForeseenOnly bool
	Runs                int
}

// Agility measures the passive->active switch under both regimes and the
// dead-code footprint each carries (§6.2).
func Agility(ctx context.Context, runs int) (*AgilityResult, error) {
	if runs < 1 {
		runs = 1
	}
	res := &AgilityResult{Runs: runs}

	// Preprogrammed: all six FTMs deployed up-front; switch PBR->LFR.
	for run := 0; run < runs; run++ {
		net := transport.NewMemNetwork(transport.WithSeed(1))
		h, err := host.New(fmt.Sprintf("pp-%d", run), net, ftm.NewRegistry())
		if err != nil {
			return nil, err
		}
		// The preprogrammed set deliberately excludes A&LFR to
		// demonstrate the foreseen-only limitation.
		supported := []core.ID{core.PBR, core.LFR, core.PBRTR, core.LFRTR, core.APBR}
		r, err := preprog.NewReplica(ctx, h, "calc", ftm.NewCalculator(), supported)
		if err != nil {
			h.Crash()
			return nil, err
		}
		d, err := r.Switch(ctx, core.LFR)
		if err != nil {
			h.Crash()
			return nil, err
		}
		res.PreprogSwitch += d
		if run == 0 {
			res.PreprogComponents, err = r.ComponentCount()
			if err != nil {
				h.Crash()
				return nil, err
			}
			if _, err := r.Switch(ctx, core.ALFR); err != nil {
				res.PreprogForeseenOnly = true
			}
		}
		h.Crash()
	}
	res.PreprogSwitch /= time.Duration(runs)

	// Agile: one FTM deployed; the transition package arrives on-line.
	engine := adaptation.NewEngine(nil)
	for run := 0; run < runs; run++ {
		r, h, err := soloReplica(ctx, fmt.Sprintf("ag-%d", run), core.PBR)
		if err != nil {
			return nil, err
		}
		report := engine.TransitionReplica(ctx, r, core.LFR)
		if report.Err != nil {
			h.Crash()
			return nil, report.Err
		}
		res.AgileTransition += report.Steps.Total()
		if run == 0 {
			d, err := h.Runtime().Describe("")
			if err != nil {
				h.Crash()
				return nil, err
			}
			res.AgileComponents = len(d.ComponentPaths())
			// The agile engine reaches FTMs the preprogrammed set never
			// foresaw.
			if rep := engine.TransitionReplica(ctx, r, core.ALFR); rep.Err != nil {
				h.Crash()
				return nil, fmt.Errorf("experiments: agile transition to unforeseen FTM: %w", rep.Err)
			}
		}
		h.Crash()
	}
	res.AgileTransition /= time.Duration(runs)
	return res, nil
}

// Render formats the agility comparison.
func (r *AgilityResult) Render() string {
	var b strings.Builder
	b.WriteString("§6.2 agility: preprogrammed AFT baseline vs agile differential adaptation\n")
	fmt.Fprintf(&b, "  passive->active switch: preprogrammed %v, agile %v (mean of %d runs)\n",
		r.PreprogSwitch.Round(time.Microsecond), r.AgileTransition.Round(time.Microsecond), r.Runs)
	fmt.Fprintf(&b, "  resident components:    preprogrammed %d, agile %d (dead code carried by preprogramming)\n",
		r.PreprogComponents, r.AgileComponents)
	fmt.Fprintf(&b, "  unforeseen FTM (A&LFR): preprogrammed refused=%v, agile executed=true\n", r.PreprogForeseenOnly)
	b.WriteString("  (paper: preprogrammed switches are faster — 4.5 to 390 ms in related work vs 1003 ms agile —\n")
	b.WriteString("   but cannot leave the design-time FTM set and permanently carry every inactive FTM)\n")
	return b.String()
}

// SLOCSummary counts the repository's code (library vs tests) — context
// for the Figure 5 measurement.
func SLOCSummary(repoRoot string) (string, error) {
	lib, err := sloc.CountDir(repoRoot, sloc.Options{})
	if err != nil {
		return "", err
	}
	all, err := sloc.CountDir(repoRoot, sloc.Options{IncludeTests: true})
	if err != nil {
		return "", err
	}
	libTotal := sloc.Total(lib)
	allTotal := sloc.Total(all)
	testCode := allTotal.Code - libTotal.Code
	return fmt.Sprintf("repository: %d library SLOC, %d test SLOC (%d files)\n",
		libTotal.Code, testCode, allTotal.Files), nil
}
