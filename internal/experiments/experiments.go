// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (FTM characteristics), Table 2 (generic execution
// schemes, derived live from deployed architectures), Table 3 (deployment
// vs differential transition times), Figures 2 and 8 (transition and
// scenario graphs), Figure 5 (SLOC per fault-tolerance pattern, measured
// over this repository), the Figure 4 substitution (framework reuse), the
// Figure 6 architecture dump, Figure 9 (transition time breakdown) and
// the §6.2 agility comparison against preprogrammed adaptation.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/transport"
)

// Table1 renders the (FT, A, R) characteristics of the illustrative FTM
// set from the live catalogue — the paper's Table 1 plus the composed
// mechanisms.
func Table1() string {
	var b strings.Builder
	cols := []core.ID{core.PBR, core.LFR, core.TR, core.ALFR, core.PBRTR, core.LFRTR}
	header := []string{"PBR", "LFR", "TR", "A&Duplex", "PBR⊕TR", "LFR⊕TR"}
	fmt.Fprintf(&b, "Table 1: (FT, A, R) parameters of considered FTMs\n")
	fmt.Fprintf(&b, "%-28s", "Characteristic")
	for _, h := range header {
		fmt.Fprintf(&b, "%-10s", h)
	}
	b.WriteByte('\n')

	row := func(label string, cell func(d core.Descriptor) string) {
		fmt.Fprintf(&b, "%-28s", label)
		for _, id := range cols {
			fmt.Fprintf(&b, "%-10s", cell(core.MustLookup(id)))
		}
		b.WriteByte('\n')
	}
	check := func(v bool) string {
		if v {
			return "yes"
		}
		return "-"
	}
	row("FT: crash", func(d core.Descriptor) string { return check(d.Tolerates.Has(core.FaultCrash)) })
	row("FT: transient value", func(d core.Descriptor) string { return check(d.Tolerates.Has(core.FaultTransientValue)) })
	row("FT: permanent value", func(d core.Descriptor) string { return check(d.Tolerates.Has(core.FaultPermanentValue)) })
	row("A: deterministic", func(d core.Descriptor) string { return "yes" })
	row("A: non-deterministic", func(d core.Descriptor) string { return check(!d.NeedsDeterminism) })
	row("A: requires state access", func(d core.Descriptor) string { return check(d.NeedsStateAccess) })
	row("R: bandwidth", func(d core.Descriptor) string { return d.Bandwidth.String() })
	row("R: CPU", func(d core.Descriptor) string { return d.CPU.String() })
	return b.String()
}

// slotPhrase translates a brick component type into the Table 2 wording.
var slotPhrase = map[string]string{
	core.TypeNop:            "Nothing",
	core.TypeComputeProceed: "Compute",
	core.TypeNoProceed:      "Nothing",
	core.TypeTRProceed:      "Compute twice & compare",
	core.TypeAssertProceed:  "Compute & assert output",
	core.TypePBRCheckpoint:  "Checkpoint to Backup",
	core.TypePBRApply:       "Process checkpoint",
	core.TypeLFRForward:     "Forward request",
	core.TypeLFRReceive:     "Receive request",
	core.TypeLFRNotify:      "Notify Follower",
	core.TypeLFRAck:         "Process notification",
	core.TypeTRCapture:      "Capture state",
	core.TypeTRRestore:      "Restore state",
}

// Table2 derives the generic execution scheme of every FTM from live
// deployments: each mechanism is deployed on a scratch host and the
// before/proceed/after component types are read back by introspection —
// the table reports what actually runs, not what the catalogue claims.
func Table2(ctx context.Context) (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: generic execution scheme of considered FTMs (derived from live architectures)\n")
	fmt.Fprintf(&b, "%-18s %-24s %-26s %-24s\n", "FTM (role)", "Before", "Proceed", "After")

	type rowSpec struct {
		id    core.ID
		role  core.Role
		label string
	}
	rows := []rowSpec{
		{core.PBR, core.RoleMaster, "PBR (Primary)"},
		{core.PBR, core.RoleSlave, "PBR (Backup)"},
		{core.LFR, core.RoleMaster, "LFR (Leader)"},
		{core.LFR, core.RoleSlave, "LFR (Follower)"},
		{core.TR, core.RoleMaster, "TR"},
		{core.APBR, core.RoleMaster, "A&PBR (Primary)"},
		{core.ALFR, core.RoleMaster, "A&LFR (Leader)"},
		{core.PBRTR, core.RoleMaster, "PBR⊕TR (Primary)"},
		{core.LFRTR, core.RoleMaster, "LFR⊕TR (Leader)"},
	}
	for i, r := range rows {
		scheme, err := deployAndInspect(ctx, fmt.Sprintf("t2-%d", i), r.id, r.role)
		if err != nil {
			return "", fmt.Errorf("experiments: table2 %s/%s: %w", r.id, r.role, err)
		}
		fmt.Fprintf(&b, "%-18s %-24s %-26s %-24s\n", r.label,
			slotPhrase[scheme.Before], slotPhrase[scheme.Proceed], slotPhrase[scheme.After])
	}
	return b.String(), nil
}

// deployAndInspect deploys one replica on a scratch host and reads its
// live scheme back.
func deployAndInspect(ctx context.Context, name string, id core.ID, role core.Role) (core.Scheme, error) {
	net := transport.NewMemNetwork(transport.WithSeed(1))
	h, err := host.New(name, net, ftm.NewRegistry())
	if err != nil {
		return core.Scheme{}, err
	}
	defer h.Crash()
	r, err := ftm.NewReplica(ctx, h, ftm.ReplicaConfig{
		System:            "probe",
		FTM:               id,
		Role:              role,
		App:               ftm.NewCalculator(),
		HeartbeatInterval: time.Hour,
		SuspectTimeout:    24 * time.Hour,
	})
	if err != nil {
		return core.Scheme{}, err
	}
	return r.CurrentScheme()
}

// Fig6 dumps the live component architecture of a PBR primary — the
// paper's Figure 6.
func Fig6(ctx context.Context) (string, error) {
	net := transport.NewMemNetwork(transport.WithSeed(1))
	h, err := host.New("fig6", net, ftm.NewRegistry())
	if err != nil {
		return "", err
	}
	defer h.Crash()
	r, err := ftm.NewReplica(ctx, h, ftm.ReplicaConfig{
		System:            "master",
		FTM:               core.PBR,
		Role:              core.RoleMaster,
		App:               ftm.NewCalculator(),
		HeartbeatInterval: time.Hour,
		SuspectTimeout:    24 * time.Hour,
	})
	if err != nil {
		return "", err
	}
	d, err := h.Runtime().Describe(r.Path())
	if err != nil {
		return "", err
	}
	return "Figure 6: component-based architecture of PBR (primary replica)\n" + d.String(), nil
}

// Fig2 renders the Figure 2 transition graph.
func Fig2() string {
	var b strings.Builder
	b.WriteString("Figure 2: transitions between FTMs\n")
	for _, e := range core.TransitionGraph() {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	return b.String()
}

// Fig8 renders the Figure 8 extended scenario graph grouped by kind.
func Fig8() string {
	var b strings.Builder
	b.WriteString("Figure 8: extended graph of transition scenarios\n")
	groups := []struct {
		kind  core.TransitionKind
		title string
	}{
		{core.Mandatory, "Mandatory inter-FTM transitions"},
		{core.Possible, "Possible inter-FTM transitions (system-manager gated)"},
		{core.Intra, "Intra-FTM transitions"},
	}
	for _, g := range groups {
		fmt.Fprintf(&b, "%s:\n", g.title)
		for _, e := range core.ScenarioGraph() {
			if e.Kind == g.kind {
				fmt.Fprintf(&b, "  %s --[%s]--> %s  (detected by %s, %s)\n",
					e.From, e.Trigger, e.To, e.Detection, e.Nature)
			}
		}
	}
	return b.String()
}

// Table3Result holds the deployment-vs-transition measurements.
type Table3Result struct {
	// Deploy is the from-scratch deployment time per FTM (one replica).
	Deploy map[core.ID]time.Duration
	// Transition is the differential transition time per (from, to) pair
	// (one replica).
	Transition map[[2]core.ID]time.Duration
	Runs       int
}

// soloReplica deploys a single measurable replica (no peer, quiet
// detector) of an FTM.
func soloReplica(ctx context.Context, name string, id core.ID) (*ftm.Replica, *host.Host, error) {
	net := transport.NewMemNetwork(transport.WithSeed(1))
	h, err := host.New(name, net, ftm.NewRegistry())
	if err != nil {
		return nil, nil, err
	}
	r, err := ftm.NewReplica(ctx, h, ftm.ReplicaConfig{
		System:            "bench",
		FTM:               id,
		Role:              core.RoleMaster,
		App:               ftm.NewCalculator(),
		HeartbeatInterval: time.Hour,
		SuspectTimeout:    24 * time.Hour,
	})
	if err != nil {
		h.Crash()
		return nil, nil, err
	}
	return r, h, nil
}

// Table3 measures, over runs repetitions, the from-scratch deployment
// time of each FTM in the evaluation set and every differential
// transition between them, reporting one replica's time (the paper's
// Table 3 protocol).
func Table3(ctx context.Context, runs int) (*Table3Result, error) {
	if runs < 1 {
		runs = 1
	}
	res := &Table3Result{
		Deploy:     make(map[core.ID]time.Duration),
		Transition: make(map[[2]core.ID]time.Duration),
		Runs:       runs,
	}
	set := core.DeployableSet()
	for _, id := range set {
		var total time.Duration
		for run := 0; run < runs; run++ {
			start := time.Now()
			r, h, err := soloReplica(ctx, fmt.Sprintf("t3-dep-%s-%d", id, run), id)
			elapsed := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("experiments: deploy %s: %w", id, err)
			}
			_ = r
			total += elapsed
			h.Crash()
		}
		res.Deploy[id] = total / time.Duration(runs)
	}
	engine := adaptation.NewEngine(nil)
	for _, from := range set {
		for _, to := range set {
			if from == to {
				res.Transition[[2]core.ID{from, to}] = 0
				continue
			}
			var total time.Duration
			for run := 0; run < runs; run++ {
				r, h, err := soloReplica(ctx, fmt.Sprintf("t3-tr-%s-%s-%d", from, to, run), from)
				if err != nil {
					return nil, fmt.Errorf("experiments: prepare %s: %w", from, err)
				}
				report := engine.TransitionReplica(ctx, r, to)
				if report.Err != nil {
					h.Crash()
					return nil, fmt.Errorf("experiments: transition %s->%s: %w", from, to, report.Err)
				}
				total += report.Steps.Total()
				h.Crash()
			}
			res.Transition[[2]core.ID{from, to}] = total / time.Duration(runs)
		}
	}
	return res, nil
}

// Render formats the Table 3 matrix (microseconds; the paper's FraSCAti
// numbers are milliseconds — the shape, not the absolute scale, is the
// reproduction target).
func (r *Table3Result) Render() string {
	var b strings.Builder
	set := core.DeployableSet()
	label := map[core.ID]string{
		core.PBR: "PBR", core.LFR: "LFR", core.PBRTR: "PBR⊕TR",
		core.LFRTR: "LFR⊕TR", core.APBR: "A&PBR", core.ALFR: "A&LFR",
	}
	fmt.Fprintf(&b, "Table 3: FTM deployment from scratch vs transition execution time (µs, mean of %d runs, one replica)\n", r.Runs)
	fmt.Fprintf(&b, "%-10s", "FTM1\\FTM2")
	for _, to := range set {
		fmt.Fprintf(&b, "%10s", label[to])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-10s", "∅ (deploy)")
	for _, to := range set {
		fmt.Fprintf(&b, "%10d", r.Deploy[to].Microseconds())
	}
	b.WriteByte('\n')
	for _, from := range set {
		fmt.Fprintf(&b, "%-10s", label[from])
		for _, to := range set {
			fmt.Fprintf(&b, "%10d", r.Transition[[2]core.ID{from, to}].Microseconds())
		}
		b.WriteByte('\n')
	}
	// The paper's headline ratio: deployment vs mean transition.
	var depTotal, trTotal time.Duration
	trCount := 0
	for _, d := range r.Deploy {
		depTotal += d
	}
	for k, d := range r.Transition {
		if k[0] != k[1] {
			trTotal += d
			trCount++
		}
	}
	meanDep := depTotal / time.Duration(len(r.Deploy))
	meanTr := trTotal / time.Duration(trCount)
	fmt.Fprintf(&b, "mean deployment %v, mean transition %v, ratio %.2fx (paper: 3819/1003 ≈ 3.8x)\n",
		meanDep, meanTr, float64(meanDep)/float64(meanTr))
	return b.String()
}

// MeanDeploy returns the mean from-scratch deployment time.
func (r *Table3Result) MeanDeploy() time.Duration {
	var total time.Duration
	for _, d := range r.Deploy {
		total += d
	}
	return total / time.Duration(len(r.Deploy))
}

// MeanTransition returns the mean differential transition time.
func (r *Table3Result) MeanTransition() time.Duration {
	var total time.Duration
	n := 0
	for k, d := range r.Transition {
		if k[0] != k[1] {
			total += d
			n++
		}
	}
	return total / time.Duration(n)
}

// TransitionByDiffSize groups mean transition time by the number of
// components replaced.
func (r *Table3Result) TransitionByDiffSize() map[int]time.Duration {
	sums := make(map[int]time.Duration)
	counts := make(map[int]int)
	for k, d := range r.Transition {
		if k[0] == k[1] {
			continue
		}
		n := len(core.Diff(core.MustLookup(k[0]).MasterScheme, core.MustLookup(k[1]).MasterScheme))
		sums[n] += d
		counts[n]++
	}
	out := make(map[int]time.Duration, len(sums))
	for n, sum := range sums {
		out[n] = sum / time.Duration(counts[n])
	}
	return out
}

// Fig9Row is one transition's step breakdown.
type Fig9Row struct {
	Label      string
	Components int
	Steps      adaptation.StepTimings
}

// Percentages returns the per-step shares of the total.
func (r Fig9Row) Percentages() (deploy, script, remove float64) {
	total := float64(r.Steps.Total())
	if total == 0 {
		return 0, 0, 0
	}
	return 100 * float64(r.Steps.Deploy) / total,
		100 * float64(r.Steps.Script) / total,
		100 * float64(r.Steps.Remove) / total
}

// Fig9 measures the three-step breakdown of the paper's three reference
// transitions (1, 2 and 3 components replaced), averaged over runs.
func Fig9(ctx context.Context, runs int) ([]Fig9Row, error) {
	if runs < 1 {
		runs = 1
	}
	cases := []struct {
		label    string
		from, to core.ID
	}{
		{"LFR -> LFR⊕TR", core.LFR, core.LFRTR},
		{"PBR -> LFR", core.PBR, core.LFR},
		{"PBR -> LFR⊕TR", core.PBR, core.LFRTR},
	}
	engine := adaptation.NewEngine(nil)
	out := make([]Fig9Row, 0, len(cases))
	for i, tc := range cases {
		var steps adaptation.StepTimings
		var components int
		for run := 0; run < runs; run++ {
			r, h, err := soloReplica(ctx, fmt.Sprintf("f9-%d-%d", i, run), tc.from)
			if err != nil {
				return nil, err
			}
			report := engine.TransitionReplica(ctx, r, tc.to)
			if report.Err != nil {
				h.Crash()
				return nil, fmt.Errorf("experiments: fig9 %s: %w", tc.label, report.Err)
			}
			components = len(report.Replaced)
			steps.Deploy += report.Steps.Deploy
			steps.Script += report.Steps.Script
			steps.Remove += report.Steps.Remove
			h.Crash()
		}
		steps.Deploy /= time.Duration(runs)
		steps.Script /= time.Duration(runs)
		steps.Remove /= time.Duration(runs)
		out = append(out, Fig9Row{Label: tc.label, Components: components, Steps: steps})
	}
	return out, nil
}

// RenderFig9 formats the Figure 9 rows.
func RenderFig9(rows []Fig9Row) string {
	var b strings.Builder
	b.WriteString("Figure 9: transition time distribution w.r.t. number of components replaced\n")
	fmt.Fprintf(&b, "%-16s %-11s %-22s %-22s %-22s\n",
		"Transition", "Components", "Deploy package", "Execute script", "Remove package")
	for _, r := range rows {
		dp, sp, rp := r.Percentages()
		fmt.Fprintf(&b, "%-16s %-11d %8v (%4.1f%%)      %8v (%4.1f%%)      %8v (%4.1f%%)\n",
			r.Label, r.Components,
			r.Steps.Deploy.Round(time.Microsecond), dp,
			r.Steps.Script.Round(time.Microsecond), sp,
			r.Steps.Remove.Round(time.Microsecond), rp)
	}
	b.WriteString("(paper: script share grows 19% -> 35% -> 40% with 1 -> 2 -> 3 components)\n")
	return b.String()
}

// sortedIDs returns the evaluation set sorted for deterministic output.
func sortedIDs() []core.ID {
	out := append([]core.ID(nil), core.DeployableSet()...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
