package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestStateSweepShape(t *testing.T) {
	points, err := StateSweep(context.Background(), []int{8, 2048}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	small, large := points[0], points[1]
	// The checkpoint footprint grows with the register space.
	if large.CheckpointBytes <= small.CheckpointBytes {
		t.Fatalf("checkpoint did not grow: %d -> %d", small.CheckpointBytes, large.CheckpointBytes)
	}
	// Full-checkpoint PBR's per-request cost grows with state (it ships
	// the whole state per request); the growth must outpace LFR's.
	pbrGrowth := float64(large.PBRFullLatency) / float64(small.PBRFullLatency)
	lfrGrowth := float64(large.LFRLatency) / float64(small.LFRLatency)
	if pbrGrowth <= lfrGrowth {
		t.Fatalf("full-checkpoint PBR latency growth (%.2fx) not above LFR's (%.2fx)", pbrGrowth, lfrGrowth)
	}
	// At the large state size full-checkpoint PBR must be the slower
	// mechanism.
	if large.PBRFullLatency <= large.LFRLatency {
		t.Fatalf("full-checkpoint PBR (%v) not slower than LFR (%v) at %d registers",
			large.PBRFullLatency, large.LFRLatency, large.Registers)
	}
	// Delta checkpointing removes the growth: at the large state size it
	// must beat the full-checkpoint regime.
	if large.PBRLatency >= large.PBRFullLatency {
		t.Fatalf("delta PBR (%v) not faster than full-checkpoint PBR (%v) at %d registers",
			large.PBRLatency, large.PBRFullLatency, large.Registers)
	}
	out := RenderSweep(points)
	if !strings.Contains(out, "State-size sweep") {
		t.Error("render missing title")
	}
}

func TestAblationDifferentialWins(t *testing.T) {
	res, err := AblationDifferential(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Monolithic <= res.Differential {
		t.Fatalf("monolithic (%v) not slower than differential (%v)", res.Monolithic, res.Differential)
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Error("render missing title")
	}
}
