package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestStateSweepShape(t *testing.T) {
	points, err := StateSweep(context.Background(), []int{8, 2048}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	small, large := points[0], points[1]
	// The checkpoint footprint grows with the register space.
	if large.CheckpointBytes <= small.CheckpointBytes {
		t.Fatalf("checkpoint did not grow: %d -> %d", small.CheckpointBytes, large.CheckpointBytes)
	}
	// PBR's per-request cost grows with state (it ships a checkpoint per
	// request); the growth must outpace LFR's.
	pbrGrowth := float64(large.PBRLatency) / float64(small.PBRLatency)
	lfrGrowth := float64(large.LFRLatency) / float64(small.LFRLatency)
	if pbrGrowth <= lfrGrowth {
		t.Fatalf("PBR latency growth (%.2fx) not above LFR's (%.2fx)", pbrGrowth, lfrGrowth)
	}
	// At the large state size PBR must be the slower mechanism.
	if large.PBRLatency <= large.LFRLatency {
		t.Fatalf("PBR (%v) not slower than LFR (%v) at %d registers",
			large.PBRLatency, large.LFRLatency, large.Registers)
	}
	out := RenderSweep(points)
	if !strings.Contains(out, "State-size sweep") {
		t.Error("render missing title")
	}
}

func TestAblationDifferentialWins(t *testing.T) {
	res, err := AblationDifferential(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Monolithic <= res.Differential {
		t.Fatalf("monolithic (%v) not slower than differential (%v)", res.Monolithic, res.Differential)
	}
	if !strings.Contains(res.Render(), "Ablation") {
		t.Error("render missing title")
	}
}
