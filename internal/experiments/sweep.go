package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
	"resilientft/internal/workload"
)

// SweepPoint is one application-state size in the PBR-vs-LFR sweep.
// PBRFullLatency is PBR forced into the paper's original cost model
// (full checkpoint per request); PBRLatency is PBR with delta
// checkpoints enabled, the default.
type SweepPoint struct {
	Registers       int
	CheckpointBytes int
	PBRLatency      time.Duration
	PBRFullLatency  time.Duration
	LFRLatency      time.Duration
}

// StateSweep quantifies the R trade-off behind Table 1's bandwidth row:
// a full-checkpointing PBR ships the whole state per request, so its
// request latency grows with the application state footprint, while
// LFR's stays flat (the follower recomputes instead). The crossover
// justifies the paper's PBR→LFR mandatory transition on bandwidth loss.
// The sweep also measures delta-checkpointing PBR, whose per-request
// cost tracks the write-set instead of the state size — the regime that
// removes the crossover for write-bounded workloads.
func StateSweep(ctx context.Context, sizes []int, opsPerPoint int) ([]SweepPoint, error) {
	if opsPerPoint < 1 {
		opsPerPoint = 50
	}
	out := make([]SweepPoint, 0, len(sizes))
	for _, size := range sizes {
		point := SweepPoint{Registers: size}
		type variant struct {
			ftm      core.ID
			fullOnly bool
			dst      *time.Duration
		}
		for _, v := range []variant{
			{core.PBR, false, &point.PBRLatency},
			{core.PBR, true, &point.PBRFullLatency},
			{core.LFR, false, &point.LFRLatency},
		} {
			latency, cpBytes, err := measureLatency(ctx, v.ftm, size, opsPerPoint, v.fullOnly)
			if err != nil {
				return nil, fmt.Errorf("experiments: sweep %s@%d: %w", v.ftm, size, err)
			}
			*v.dst = latency
			if v.ftm == core.PBR && v.fullOnly {
				point.CheckpointBytes = cpBytes
			}
		}
		out = append(out, point)
	}
	return out, nil
}

// measureLatency runs a seeded workload against a fresh system under the
// given FTM with the given state footprint and returns the mean request
// latency plus the application checkpoint size. fullOnly hides the state
// manager's delta tracking, forcing full checkpoints per request.
func measureLatency(ctx context.Context, ftmID core.ID, registers, ops int, fullOnly bool) (time.Duration, int, error) {
	appFactory := func() ftm.Application { return ftm.NewCalculator() }
	if fullOnly {
		appFactory = func() ftm.Application { return ftm.FullStateOnly{Application: ftm.NewCalculator()} }
	}
	sys, err := ftm.NewSystem(ctx, ftm.SystemConfig{
		System:            "sweep",
		FTM:               ftmID,
		AppFactory:        appFactory,
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectTimeout:    30 * time.Second,
	})
	if err != nil {
		return 0, 0, err
	}
	defer sys.Shutdown()
	client, err := sys.NewClient(rpc.WithCallTimeout(10 * time.Second))
	if err != nil {
		return 0, 0, err
	}
	gen := workload.New(workload.Config{Seed: int64(registers), Registers: registers, WriteRatio: 1.0})

	run := func(op workload.Op) error {
		resp, err := client.Invoke(ctx, op.Name, ftm.EncodeArg(op.Arg))
		if err != nil {
			return err
		}
		got, err := ftm.DecodeResult(resp.Payload)
		if err != nil {
			return err
		}
		if got != op.Expected {
			return fmt.Errorf("wrong result for %s: got %d, want %d", op.Name, got, op.Expected)
		}
		return nil
	}
	// Prefill establishes the state footprint.
	for _, op := range gen.Prefill() {
		if err := run(op); err != nil {
			return 0, 0, err
		}
	}
	start := time.Now()
	for _, op := range gen.Stream(ops) {
		if err := run(op); err != nil {
			return 0, 0, err
		}
	}
	latency := time.Since(start) / time.Duration(ops)

	state, err := sys.Master().App().StateManager().CaptureState()
	if err != nil {
		return 0, 0, err
	}
	return latency, len(state), nil
}

// RenderSweep formats the sweep.
func RenderSweep(points []SweepPoint) string {
	var b strings.Builder
	b.WriteString("State-size sweep: request latency under PBR vs LFR (mean per request)\n")
	fmt.Fprintf(&b, "%-12s %-16s %-14s %-14s %-14s %-10s\n",
		"Registers", "Checkpoint (B)", "PBR(full)", "PBR(delta)", "LFR", "Full/LFR")
	for _, p := range points {
		ratio := float64(p.PBRFullLatency) / float64(p.LFRLatency)
		fmt.Fprintf(&b, "%-12d %-16d %-14v %-14v %-14v %-10.2f\n",
			p.Registers, p.CheckpointBytes,
			p.PBRFullLatency.Round(time.Microsecond),
			p.PBRLatency.Round(time.Microsecond),
			p.LFRLatency.Round(time.Microsecond), ratio)
	}
	b.WriteString("(Full-checkpoint PBR ships the whole state per request: latency grows with state;\n")
	b.WriteString(" LFR recomputes: flat. This is the R trade-off behind the mandatory PBR->LFR\n")
	b.WriteString(" transition on bandwidth loss. Delta-checkpoint PBR ships the write-set instead,\n")
	b.WriteString(" which removes the growth for write-bounded workloads.)\n")
	return b.String()
}

// AblationResult compares the differential transition against a
// monolithic replacement of the whole FTM composite.
type AblationResult struct {
	Differential time.Duration
	Monolithic   time.Duration
	Runs         int
}

// AblationDifferential measures the design choice at the heart of the
// paper: a PBR→LFR differential transition (swap two bricks) vs a
// monolithic replacement (tear the composite down, redeploy the target
// FTM from scratch, transfer state explicitly).
func AblationDifferential(ctx context.Context, runs int) (*AblationResult, error) {
	if runs < 1 {
		runs = 1
	}
	res := &AblationResult{Runs: runs}
	engine := adaptation.NewEngine(nil)

	for run := 0; run < runs; run++ {
		// Differential.
		r, h, err := soloReplica(ctx, fmt.Sprintf("abl-d-%d", run), core.PBR)
		if err != nil {
			return nil, err
		}
		report := engine.TransitionReplica(ctx, r, core.LFR)
		if report.Err != nil {
			h.Crash()
			return nil, report.Err
		}
		res.Differential += report.Steps.Total()
		h.Crash()

		// Monolithic: capture state, remove the composite, deploy the
		// target FTM, restore state.
		r, h, err = soloReplica(ctx, fmt.Sprintf("abl-m-%d", run), core.PBR)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		state, err := r.App().StateManager().CaptureState()
		if err != nil {
			h.Crash()
			return nil, err
		}
		rt := h.Runtime()
		if err := rt.Stop(ctx, r.Path()); err != nil {
			h.Crash()
			return nil, err
		}
		cp, err := rt.LookupComposite(r.Path())
		if err != nil {
			h.Crash()
			return nil, err
		}
		for _, child := range cp.Components() {
			if err := rt.Stop(ctx, r.Path()+"/"+child.Name()); err != nil {
				h.Crash()
				return nil, err
			}
		}
		// Monolithic replacement discards the whole composite (its
		// internal wiring goes with it).
		if err := rt.Remove(r.Path()); err != nil {
			h.Crash()
			return nil, err
		}
		newApp := ftm.NewCalculator()
		if err := newApp.StateManager().RestoreState(state); err != nil {
			h.Crash()
			return nil, err
		}
		if _, err := ftm.DeployFTM(ctx, h, ftm.ReplicaConfig{
			System:            "bench",
			FTM:               core.LFR,
			Role:              core.RoleMaster,
			App:               newApp,
			HeartbeatInterval: time.Hour,
			SuspectTimeout:    24 * time.Hour,
		}, nil); err != nil {
			h.Crash()
			return nil, err
		}
		res.Monolithic += time.Since(start)
		h.Crash()
	}
	res.Differential /= time.Duration(runs)
	res.Monolithic /= time.Duration(runs)
	return res, nil
}

// Render formats the ablation.
func (r *AblationResult) Render() string {
	var b strings.Builder
	b.WriteString("Ablation: differential transition vs monolithic FTM replacement (PBR -> LFR, one replica)\n")
	fmt.Fprintf(&b, "  differential (swap 2 bricks):        %v\n", r.Differential.Round(time.Microsecond))
	fmt.Fprintf(&b, "  monolithic (teardown + redeploy):    %v  (%.1fx slower, plus explicit state transfer)\n",
		r.Monolithic.Round(time.Microsecond), float64(r.Monolithic)/float64(r.Differential))
	fmt.Fprintf(&b, "  (mean of %d runs)\n", r.Runs)
	return b.String()
}
