package experiments

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// RunMeta stamps a perf report with enough provenance to compare it
// against another run: what code, what toolchain, what parallelism.
type RunMeta struct {
	GitCommit  string `json:"git_commit,omitempty"`
	Date       string `json:"date"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CollectRunMeta gathers the metadata of the current process. The
// commit comes from the binary's embedded build info when the build
// recorded it, falling back to asking git; an unknown commit is left
// empty rather than guessed.
func CollectRunMeta() RunMeta {
	meta := RunMeta{
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				meta.GitCommit = s.Value
			}
		}
	}
	if meta.GitCommit == "" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			meta.GitCommit = strings.TrimSpace(string(out))
		}
	}
	return meta
}
