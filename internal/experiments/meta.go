package experiments

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"resilientft/internal/telemetry/runtimeprof"
)

// RunMeta stamps a perf report with enough provenance to compare it
// against another run: what code, what toolchain, what parallelism,
// and the runtime's shape at collection time (a report taken from a
// process already carrying thousands of goroutines or a swollen heap
// is not comparable to a fresh one).
type RunMeta struct {
	GitCommit     string `json:"git_commit,omitempty"`
	Date          string `json:"date"`
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Goroutines    int    `json:"goroutines"`
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
}

// CollectRunMeta gathers the metadata of the current process. The
// commit comes from the binary's embedded build info when the build
// recorded it, falling back to asking git; an unknown commit is left
// empty rather than guessed.
func CollectRunMeta() RunMeta {
	sum := runtimeprof.ReadSummary()
	meta := RunMeta{
		Date:          time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Goroutines:    sum.Goroutines,
		HeapLiveBytes: sum.HeapLiveBytes,
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" {
				meta.GitCommit = s.Value
			}
		}
	}
	if meta.GitCommit == "" {
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			meta.GitCommit = strings.TrimSpace(string(out))
		}
	}
	return meta
}
