package slo

import (
	"context"
	"encoding/json"
	"log"
	"time"

	"resilientft/internal/stablestore"
	"resilientft/internal/telemetry"
	"resilientft/internal/telemetry/runtimeprof"
)

// Diagnostic capture: the moment a shard pages is the moment the
// evidence exists — the seconds of telemetry before the breach (the
// flight recorder's black box) and the runtime's current shape (pprof
// profiles: where the CPU went, what the heap holds, what every
// goroutine is doing). Both are frozen into one bundle and persisted
// via stablestore next to the other incident records, so the question
// "why did the budget burn" is answerable after the fact.

// Incident-record reasons written on a breach. The black box itself
// (dumped through the flight recorder, so it also lands in the
// in-memory /blackbox ring and the recorder's own persist hook) uses
// ReasonBreach; the profile-carrying bundle record uses ReasonBundle.
const (
	ReasonBreach = "slo-breach"
	ReasonBundle = "slo-bundle"
)

// Bundle is the persisted diagnostic evidence of one breach.
type Bundle struct {
	Shard           string                `json:"shard"`
	Grade           string                `json:"grade"`
	BurnShort       float64               `json:"burn_short"`
	BurnLong        float64               `json:"burn_long"`
	BudgetRemaining float64               `json:"budget_remaining"`
	BlackBox        telemetry.BlackBox    `json:"blackbox"`
	Profiles        *runtimeprof.Profiles `json:"profiles,omitempty"`
	ProfilesErr     string                `json:"profiles_err,omitempty"`
}

// DefaultCaptureCPU is the CPU-profile duration a capture samples: long
// enough to catch a hot path mid-burn, short enough that the capture
// itself is not an outage.
const DefaultCaptureCPU = 200 * time.Millisecond

// NewCapture returns a Capture hook for Config: on each page-grade
// breach it dumps a black box through fr, captures runtime profiles
// (cpuDur of CPU; <= 0 takes DefaultCaptureCPU), and appends the
// combined bundle to incidents (nil: the bundle is built but only the
// black box persists, through fr's own hook). Capture errors are
// logged, never fatal — diagnostics must not take down the patient.
func NewCapture(fr *telemetry.FlightRecorder, incidents stablestore.IncidentLog, cpuDur time.Duration) func(Breach) {
	if cpuDur <= 0 {
		cpuDur = DefaultCaptureCPU
	}
	return func(br Breach) {
		box := fr.Dump(ReasonBreach,
			"shard", br.Shard, "grade", br.Grade.String(),
			"burn_short", fmtBurn(br.BurnShort), "burn_long", fmtBurn(br.BurnLong))
		if incidents == nil {
			return
		}
		bundle := Bundle{
			Shard:           br.Shard,
			Grade:           br.Grade.String(),
			BurnShort:       br.BurnShort,
			BurnLong:        br.BurnLong,
			BudgetRemaining: br.BudgetRemaining,
			BlackBox:        box,
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		profiles, err := runtimeprof.Capture(ctx, cpuDur)
		cancel()
		if err != nil {
			bundle.ProfilesErr = err.Error()
		} else {
			bundle.Profiles = profiles
		}
		data, err := json.Marshal(bundle)
		if err != nil {
			log.Printf("slo: bundle marshal: %v", err)
			return
		}
		rec := stablestore.IncidentRecord{
			Time: br.At, Reason: ReasonBundle, Origin: box.Origin, Data: data,
		}
		if err := incidents.Append(rec); err != nil {
			log.Printf("slo: bundle persist: %v", err)
		}
	}
}
