package slo

import (
	"encoding/json"
	"testing"
	"time"

	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
)

func TestBudgetRingRollingSums(t *testing.T) {
	r := newBudgetRing(4, []int{2, 4})
	push := func(total, bad uint64) { r.push(tickBucket{total: total, bad: bad}) }

	push(10, 1)
	push(10, 2)
	if total, bad := r.window(0); total != 20 || bad != 3 {
		t.Fatalf("2-tick window = %d/%d, want 20/3", bad, total)
	}
	push(10, 3) // the (10,1) bucket leaves the 2-tick window
	if total, bad := r.window(0); total != 20 || bad != 5 {
		t.Fatalf("2-tick window after evict = %d/%d, want 20/5", bad, total)
	}
	if total, bad := r.window(1); total != 30 || bad != 6 {
		t.Fatalf("4-tick window = %d/%d, want 30/6", bad, total)
	}
	push(10, 4)
	push(10, 5) // wraps: (10,1) leaves the 4-tick window too
	if total, bad := r.window(1); total != 40 || bad != 14 {
		t.Fatalf("4-tick window after wrap = %d/%d, want 40/14", bad, total)
	}
	// Long-run check against a naive recompute.
	for i := 0; i < 37; i++ {
		push(uint64(i), uint64(i/2))
	}
	var wantTotal, wantBad uint64
	for i := 37 - 4; i < 37; i++ {
		wantTotal += uint64(i)
		wantBad += uint64(i / 2)
	}
	if total, bad := r.window(1); total != wantTotal || bad != wantBad {
		t.Fatalf("4-tick window = %d/%d, want %d/%d", bad, total, wantBad, wantTotal)
	}
}

func TestBurnRateMath(t *testing.T) {
	cases := []struct {
		name       string
		total, bad uint64
		budget     float64
		burn       float64
		remaining  float64
	}{
		{"zero traffic", 0, 0, 0.001, 0, 1},
		{"zero budget", 100, 10, 0, 0, 1},
		{"sustainable pace", 1000, 1, 0.001, 1, 0},
		{"exact exhaustion", 10, 1, 0.1, 1, 0},
		{"half budget", 1000, 5, 0.01, 0.5, 0.5},
		{"all bad", 10, 10, 0.001, 1000, 0},
	}
	for _, tc := range cases {
		if got := burnRate(tc.total, tc.bad, tc.budget); got != tc.burn {
			t.Errorf("%s: burn = %v, want %v", tc.name, got, tc.burn)
		}
		if got := budgetRemaining(tc.total, tc.bad, tc.budget); got != tc.remaining {
			t.Errorf("%s: remaining = %v, want %v", tc.name, got, tc.remaining)
		}
	}
	if got := complianceRatio(0, 0); got != 1 {
		t.Errorf("idle compliance = %v, want 1", got)
	}
	if got := complianceRatio(10, 1); got != 0.9 {
		t.Errorf("compliance = %v, want 0.9", got)
	}
}

// testEngine returns an engine over a private registry with tick-sized
// windows (fast 2/4 ticks, slow 8/16), plus the series the rpc layer
// would have recorded for shard "0".
func testEngine(t *testing.T, cfg Config) (*Engine, *telemetry.Histogram, *telemetry.Counter) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Registry = reg
	cfg.Interval = time.Second
	cfg.Windows = Windows{
		FastShort: 2 * time.Second,
		FastLong:  4 * time.Second,
		SlowShort: 8 * time.Second,
		SlowLong:  16 * time.Second,
	}
	e := New(cfg)
	e.SetObjective("0", Objective{LatencyP99: 1 << 20, Availability: 0.999})
	lat := reg.Histogram(rpc.ShardLatencySeries, "shard", "0")
	errs := reg.Counter(rpc.ShardResponsesSeries, "shard", "0", "status", "app-error")
	return e, lat, errs
}

const (
	fastReq = 1000 * time.Nanosecond    // well under the 1<<20 ns target
	slowReq = 4 << 20 * time.Nanosecond // well over it
)

func TestZeroTrafficNeverPages(t *testing.T) {
	e, _, _ := testEngine(t, Config{})
	for i := 0; i < 20; i++ {
		e.Tick()
	}
	snap, ok := e.Snapshot("0")
	if !ok {
		t.Fatal("shard missing")
	}
	if snap.Grade != GradeOK {
		t.Fatalf("idle shard graded %s", snap.Grade)
	}
	if snap.BudgetRemaining != 1 {
		t.Fatalf("idle budget remaining = %v, want 1", snap.BudgetRemaining)
	}
	for _, w := range snap.Windows {
		if w.Burn != 0 || w.Compliance != 1 {
			t.Fatalf("idle window %s: burn=%v compliance=%v", w.Window, w.Burn, w.Compliance)
		}
	}
}

func TestBaselinePriming(t *testing.T) {
	e, lat, errs := testEngine(t, Config{})
	// Traffic from before the first tick must not be charged.
	for i := 0; i < 100; i++ {
		lat.Observe(slowReq)
	}
	errs.Add(50)
	e.Tick()
	snap, _ := e.Snapshot("0")
	if snap.Windows[0].Bad != 0 || snap.Windows[0].Total != 0 {
		t.Fatalf("pre-engine traffic charged: %+v", snap.Windows[0])
	}
	if snap.Grade != GradeOK {
		t.Fatalf("graded %s off pre-engine traffic", snap.Grade)
	}
}

func TestPageOnFastBurnAndRecovery(t *testing.T) {
	var breaches []Breach
	e, lat, _ := testEngine(t, Config{
		OnBreach: func(b Breach) { breaches = append(breaches, b) },
	})
	// 100% slow traffic: burn = 1/0.001 = 1000 in every filled window.
	// Both fast windows carry bad traffic from the first tick, so the
	// page fires within two ticks of the breach starting.
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			lat.Observe(slowReq)
		}
		e.Tick()
	}
	if !e.Paging("0") {
		t.Fatal("100% slow traffic did not page")
	}
	if e.Burn("0") < 100 {
		t.Fatalf("burn = %v, want >> 14.4", e.Burn("0"))
	}
	if len(breaches) != 1 || breaches[0].Grade != GradePage {
		t.Fatalf("breaches = %+v, want one page", breaches)
	}
	if breaches[0].Shard != "0" || breaches[0].BurnShort <= 14.4 {
		t.Fatalf("breach detail wrong: %+v", breaches[0])
	}
	snap, _ := e.Snapshot("0")
	if snap.LastPage.IsZero() {
		t.Fatal("LastPage not stamped")
	}

	// Good traffic drains the fast windows: grade returns to OK without
	// a second breach event (edge-acting, not level-acting).
	for i := 0; i < 6; i++ {
		for j := 0; j < 10; j++ {
			lat.Observe(fastReq)
		}
		e.Tick()
	}
	if e.Paging("0") {
		t.Fatal("shard still paging after fast windows drained")
	}
	if len(breaches) != 1 {
		t.Fatalf("recovery fired a breach: %+v", breaches)
	}
}

func TestFlappingPagesEachEpisodeButThrottlesCapture(t *testing.T) {
	var captures int
	e, lat, _ := testEngine(t, Config{
		Capture:       func(Breach) { captures++ },
		CaptureMinGap: time.Hour,
	})
	reg := e.cfg.Registry
	drive := func(d time.Duration, ticks int) {
		for i := 0; i < ticks; i++ {
			for j := 0; j < 10; j++ {
				lat.Observe(d)
			}
			e.Tick()
		}
	}
	drive(slowReq, 3) // episode 1: page + capture
	if !e.Paging("0") {
		t.Fatal("episode 1 did not page")
	}
	drive(fastReq, 6) // recover
	if e.Paging("0") {
		t.Fatal("did not recover")
	}
	drive(slowReq, 3) // episode 2: page again, capture throttled
	if !e.Paging("0") {
		t.Fatal("episode 2 did not page")
	}
	pages, ok := reg.FindCounter("slo_breaches_total", "shard", "0", "grade", "page")
	if !ok || pages.Value() != 2 {
		t.Fatalf("page breaches = %v, want 2", pages)
	}
	if captures != 1 {
		t.Fatalf("captures = %d, want 1 (throttled by CaptureMinGap)", captures)
	}
	caps, ok := reg.FindCounter("slo_captures_total", "shard", "0")
	if !ok || caps.Value() != 1 {
		t.Fatalf("slo_captures_total = %v, want 1", caps)
	}
}

func TestExactBudgetExhaustionDoesNotPage(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Config{Registry: reg, Interval: time.Second, Windows: Windows{
		FastShort: 2 * time.Second, FastLong: 4 * time.Second,
		SlowShort: 8 * time.Second, SlowLong: 16 * time.Second,
	}})
	// 90% availability: a steady 1-bad-in-10 is burn exactly 1.0 —
	// spending the whole budget at the sustainable pace, alert-free.
	e.SetObjective("0", Objective{LatencyP99: 1 << 20, Availability: 0.9})
	lat := reg.Histogram(rpc.ShardLatencySeries, "shard", "0")
	for i := 0; i < 20; i++ {
		lat.Observe(slowReq)
		for j := 0; j < 9; j++ {
			lat.Observe(fastReq)
		}
		e.Tick()
	}
	snap, _ := e.Snapshot("0")
	if snap.Grade != GradeOK {
		t.Fatalf("burn 1.0 graded %s, want ok", snap.Grade)
	}
	// The budget is 1-0.9 in floats, so burn lands within an ulp of 1.
	for _, w := range snap.Windows {
		if w.Burn < 1-1e-9 || w.Burn > 1+1e-9 {
			t.Fatalf("window %s burn = %v, want 1", w.Window, w.Burn)
		}
	}
	if snap.BudgetRemaining > 1e-9 {
		t.Fatalf("budget remaining = %v, want 0 (exhausted)", snap.BudgetRemaining)
	}
}

func TestErrorsCountAgainstBudgetOnce(t *testing.T) {
	e, lat, errs := testEngine(t, Config{})
	e.Tick() // prime both sources
	// 10 requests, all of them slow errors: the histogram observed all
	// 10 (slow) and the error counter grew by 10 — bad must cap at 10,
	// not double to 20.
	for j := 0; j < 10; j++ {
		lat.Observe(slowReq)
	}
	errs.Add(10)
	e.Tick()
	snap, _ := e.Snapshot("0")
	if snap.Windows[0].Total != 10 || snap.Windows[0].Bad != 10 {
		t.Fatalf("window = %d bad / %d total, want 10/10 (no double count)",
			snap.Windows[0].Bad, snap.Windows[0].Total)
	}
}

func TestWarnOnSlowBurn(t *testing.T) {
	reg := telemetry.NewRegistry()
	var breaches []Breach
	e := New(Config{
		Registry: reg, Interval: time.Second,
		Windows: Windows{
			FastShort: 2 * time.Second, FastLong: 4 * time.Second,
			SlowShort: 8 * time.Second, SlowLong: 16 * time.Second,
			PageBurn: 1e9, // unreachable: isolate the warn path
		},
		OnBreach: func(b Breach) { breaches = append(breaches, b) },
	})
	e.SetObjective("0", Objective{LatencyP99: 1 << 20, Availability: 0.999})
	lat := reg.Histogram(rpc.ShardLatencySeries, "shard", "0")
	for i := 0; i < 20; i++ {
		for j := 0; j < 10; j++ {
			lat.Observe(slowReq)
		}
		e.Tick()
	}
	snap, _ := e.Snapshot("0")
	if snap.Grade != GradeWarn {
		t.Fatalf("grade = %s, want warn", snap.Grade)
	}
	if len(breaches) != 1 || breaches[0].Grade != GradeWarn {
		t.Fatalf("breaches = %+v, want one warn", breaches)
	}
}

func TestSeriesExported(t *testing.T) {
	e, lat, _ := testEngine(t, Config{})
	for j := 0; j < 10; j++ {
		lat.Observe(fastReq)
	}
	e.Tick()
	e.Tick()
	reg := e.cfg.Registry
	flat := reg.Flatten()
	if flat[`slo_budget_remaining{shard="0"}`] != 1e6 {
		t.Fatalf("budget gauge = %v, want 1e6 ppm", flat[`slo_budget_remaining{shard="0"}`])
	}
	for _, w := range []string{"2s", "4s", "8s", "16s"} {
		burn := `slo_burn_rate{shard="0",window="` + w + `"}`
		comp := `slo_compliance_ratio{shard="0",window="` + w + `"}`
		if _, ok := flat[burn]; !ok {
			t.Fatalf("missing %s in %v", burn, flat)
		}
		if flat[comp] != 1e6 {
			t.Fatalf("%s = %v, want 1e6 ppm", comp, flat[comp])
		}
	}
}

func TestReportAndJSON(t *testing.T) {
	e, lat, _ := testEngine(t, Config{})
	e.SetObjective("1", Objective{})
	for j := 0; j < 10; j++ {
		lat.Observe(fastReq)
	}
	e.Tick()
	report := e.Report()
	if len(report) != 2 || report[0].Shard != "0" || report[1].Shard != "1" {
		t.Fatalf("report = %+v, want shards [0 1]", report)
	}
	if report[0].Ticks != 1 || len(report[0].Windows) != 4 {
		t.Fatalf("shard 0 row wrong: %+v", report[0])
	}
	data, err := e.ReportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back []ShardSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Grade != GradeOK {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
	if grade, ok := e.ShardGrade("0"); !ok || grade != "ok" {
		t.Fatalf("ShardGrade = %q/%v", grade, ok)
	}
	if _, ok := e.ShardGrade("nope"); ok {
		t.Fatal("ShardGrade resolved an undeclared shard")
	}
}

func TestSetObjectiveRedeclareResetsAccounting(t *testing.T) {
	e, lat, _ := testEngine(t, Config{})
	for i := 0; i < 3; i++ {
		for j := 0; j < 10; j++ {
			lat.Observe(slowReq)
		}
		e.Tick()
	}
	if !e.Paging("0") {
		t.Fatal("precondition: shard should page")
	}
	e.SetObjective("0", Objective{LatencyP99: 1 << 30, Availability: 0.999})
	if e.Paging("0") {
		t.Fatal("redeclare kept the old grade")
	}
	snap, _ := e.Snapshot("0")
	if snap.Windows[0].Total != 0 {
		t.Fatal("redeclare kept the old accounting")
	}
}

func TestGradeJSON(t *testing.T) {
	for _, g := range []Grade{GradeOK, GradeWarn, GradePage} {
		data, err := json.Marshal(g)
		if err != nil {
			t.Fatal(err)
		}
		var back Grade
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != g {
			t.Fatalf("grade %s did not round trip", g)
		}
	}
}

func TestSlowFromIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 1},
		{1 << 20, 21}, // power of two: exact lower edge of its bucket
		{(1 << 20) + 1, 21},
		{(1 << 21) - 1, 21}, // conservative: same bucket as the target
		{1 << 62, 63},
	}
	for _, tc := range cases {
		if got := slowFromIndex(tc.d); got != tc.want {
			t.Errorf("slowFromIndex(%d) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestWindowLabel(t *testing.T) {
	cases := map[time.Duration]string{
		time.Minute:            "1m",
		5 * time.Minute:        "5m",
		30 * time.Minute:       "30m",
		6 * time.Hour:          "6h",
		10 * time.Second:       "10s",
		300 * time.Millisecond: "300ms",
		90 * time.Second:       "1m30s",
	}
	for d, want := range cases {
		if got := windowLabel(d); got != want {
			t.Errorf("windowLabel(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestStartStopTicksOnTimer(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(Config{Registry: reg, Interval: 5 * time.Millisecond})
	e.SetObjective("0", Objective{})
	e.Start()
	e.Start() // idempotent
	defer e.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if snap, _ := e.Snapshot("0"); snap.Ticks >= 2 {
			e.Stop()
			e.Stop() // idempotent
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("engine never ticked")
}
