// Package slo turns the raw telemetry the request path records into
// objective-level conclusions: is each shard meeting its declared
// latency/availability objective, and how fast is it burning its
// error budget? It implements multi-window burn-rate evaluation in
// the Google SRE workbook style — a fast 1m/5m window pair that pages
// (both must burn above the page threshold, so a blip in one window
// cannot page alone) and a slow 30m/6h pair that warns — over an
// error-budget accounting ring fed from the per-shard rpc series.
//
// On a page-grade breach the engine fires its capture hook (the
// diagnostic bundle: flight-recorder black box plus pprof profiles,
// persisted via stablestore) and its breach hook (the adaptation
// layer's SLO reactors). The engine only concludes and raises; what
// to *do* about a burning shard is the Adaptation Engine's decision,
// per the paper's separation of monitoring from adaptation.
package slo

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
)

// Objective is one shard's declarative service-level objective.
type Objective struct {
	// LatencyP99 is the p99 latency target: a request slower than this
	// violates the objective. The histogram's power-of-two buckets make
	// the slow count conservative within a factor of two for targets
	// that are not powers of two (the bucket containing the target
	// counts as slow); exact for power-of-two targets.
	LatencyP99 time.Duration `json:"latency_p99_ns"`
	// Availability is the target fraction of good requests over the
	// accounting window (e.g. 0.999). The error budget is its
	// complement.
	Availability float64 `json:"availability"`
}

func (o Objective) withDefaults() Objective {
	if o.LatencyP99 <= 0 {
		o.LatencyP99 = 50 * time.Millisecond
	}
	if o.Availability <= 0 || o.Availability >= 1 {
		o.Availability = 0.999
	}
	return o
}

// DefaultObjective is the objective shards get when none is declared:
// p99 under 50ms, 99.9% good requests.
func DefaultObjective() Objective { return Objective{}.withDefaults() }

// Windows configures the multi-window burn-rate evaluation. The
// fast pair pages (wake someone: the budget is burning so hot that
// hours remain), the slow pair warns (a ticket: sustained slow burn).
type Windows struct {
	FastShort time.Duration
	FastLong  time.Duration
	SlowShort time.Duration
	SlowLong  time.Duration
	// PageBurn and WarnBurn are the burn-rate thresholds; both windows
	// of a pair must exceed theirs for the grade to apply.
	PageBurn float64
	WarnBurn float64
}

// DefaultWindows returns the SRE-workbook shape: 1m/5m paging at
// 14.4x burn, 30m/6h warning at 6x.
func DefaultWindows() Windows {
	return Windows{
		FastShort: time.Minute,
		FastLong:  5 * time.Minute,
		SlowShort: 30 * time.Minute,
		SlowLong:  6 * time.Hour,
		PageBurn:  14.4,
		WarnBurn:  6,
	}
}

func (w Windows) withDefaults() Windows {
	d := DefaultWindows()
	if w.FastShort <= 0 {
		w.FastShort = d.FastShort
	}
	if w.FastLong <= 0 {
		w.FastLong = d.FastLong
	}
	if w.SlowShort <= 0 {
		w.SlowShort = d.SlowShort
	}
	if w.SlowLong <= 0 {
		w.SlowLong = d.SlowLong
	}
	if w.PageBurn <= 0 {
		w.PageBurn = d.PageBurn
	}
	if w.WarnBurn <= 0 {
		w.WarnBurn = d.WarnBurn
	}
	return w
}

// Grade is a shard's current SLO standing.
type Grade int8

const (
	GradeOK Grade = iota
	GradeWarn
	GradePage
)

func (g Grade) String() string {
	switch g {
	case GradeWarn:
		return "warn"
	case GradePage:
		return "page"
	default:
		return "ok"
	}
}

// MarshalJSON renders the grade as its name.
func (g Grade) MarshalJSON() ([]byte, error) { return json.Marshal(g.String()) }

// UnmarshalJSON parses a grade name; unknown names read as ok.
func (g *Grade) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	switch s {
	case "warn":
		*g = GradeWarn
	case "page":
		*g = GradePage
	default:
		*g = GradeOK
	}
	return nil
}

// Breach describes one grade elevation, handed to the hooks.
type Breach struct {
	Shard string
	Grade Grade
	// BurnShort and BurnLong are the burn rates of the window pair
	// that elevated the grade.
	BurnShort, BurnLong float64
	BudgetRemaining     float64
	At                  time.Time
}

// Config assembles an Engine.
type Config struct {
	// Registry is read for the per-shard series and written for the
	// slo_* series (default: the process registry).
	Registry *telemetry.Registry
	// Interval is the evaluation tick (default 1s). Every window is
	// measured in ticks, so shrinking it in tests shrinks real time.
	Interval time.Duration
	// Windows configures the burn-rate evaluation (zero fields take
	// the SRE-workbook defaults).
	Windows Windows
	// OnBreach runs on every grade elevation (warn and page), outside
	// the engine lock.
	OnBreach func(Breach)
	// Capture runs on page-grade elevations, throttled by
	// CaptureMinGap, outside the engine lock — the diagnostic-bundle
	// hook.
	Capture func(Breach)
	// CaptureMinGap is the minimum spacing between captures per shard
	// (default 1m): a flapping shard must not bury the incident log.
	CaptureMinGap time.Duration
}

// Engine evaluates objectives over the telemetry registry. Shards are
// declared with SetObjective; Tick evaluates all of them once (Start
// does so on a timer).
type Engine struct {
	cfg       Config
	winDurs   [4]time.Duration
	winTicks  [4]int
	winLabels [4]string

	mu     sync.Mutex
	shards map[string]*shardEval
	order  []string
	stop   chan struct{}
	done   chan struct{}
}

// New returns an engine; declare shards with SetObjective.
func New(cfg Config) *Engine {
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.CaptureMinGap <= 0 {
		cfg.CaptureMinGap = time.Minute
	}
	cfg.Windows = cfg.Windows.withDefaults()
	e := &Engine{cfg: cfg, shards: make(map[string]*shardEval)}
	e.winDurs = [4]time.Duration{cfg.Windows.FastShort, cfg.Windows.FastLong, cfg.Windows.SlowShort, cfg.Windows.SlowLong}
	for i, d := range e.winDurs {
		t := int(d / cfg.Interval)
		if t < 1 {
			t = 1
		}
		e.winTicks[i] = t
		e.winLabels[i] = windowLabel(d)
	}
	return e
}

// Interval returns the evaluation tick the engine was built with.
func (e *Engine) Interval() time.Duration { return e.cfg.Interval }

// SetObjective declares (or redeclares, resetting accounting) a
// shard's objective. The shard key is the value of the `shard` label
// on the rpc per-shard series — the group ID, or rpc.ShardLabel("")
// for the unsharded daemon's traffic.
func (e *Engine) SetObjective(shard string, obj Objective) {
	obj = obj.withDefaults()
	reg := e.cfg.Registry
	s := &shardEval{
		shard:    shard,
		obj:      obj,
		slowFrom: slowFromIndex(obj.LatencyP99),
		lat:      reg.HistogramHandle(rpc.ShardLatencySeries, "shard", shard),
		errs: [2]*telemetry.CounterHandle{
			reg.CounterHandle(rpc.ShardResponsesSeries, "shard", shard, "status", "app-error"),
			reg.CounterHandle(rpc.ShardResponsesSeries, "shard", shard, "status", "unavailable"),
		},
		ring:    newBudgetRing(e.winTicks[3], e.winTicks[:]),
		latWin:  newLatWindow(e.winTicks[1]),
		gBudget: reg.Gauge("slo_budget_remaining", "shard", shard),
		cPage:   reg.Counter("slo_breaches_total", "shard", shard, "grade", "page"),
		cWarn:   reg.Counter("slo_breaches_total", "shard", shard, "grade", "warn"),
		cCaps:   reg.Counter("slo_captures_total", "shard", shard),
	}
	// Gauges are integers, so ratio series pick a fixed grain (the
	// detector_phi_milli precedent): burn rates in thousandths,
	// compliance and budget in parts per million — 99.9% vs 99.99% is
	// the whole game.
	for i, label := range e.winLabels {
		s.gBurn[i] = reg.Gauge("slo_burn_rate", "shard", shard, "window", label)
		s.gComp[i] = reg.Gauge("slo_compliance_ratio", "shard", shard, "window", label)
	}
	s.gBudget.Set(ppm(1))
	e.mu.Lock()
	if _, ok := e.shards[shard]; !ok {
		e.order = append(e.order, shard)
		sort.Strings(e.order)
	}
	e.shards[shard] = s
	e.mu.Unlock()
}

// Shards returns the declared shard keys, sorted.
func (e *Engine) Shards() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]string(nil), e.order...)
}

// Tick evaluates every declared shard once. Exported so tests and
// simulations drive evaluation deterministically; Start calls it on
// the configured interval. Hooks run after the lock is released.
func (e *Engine) Tick() {
	now := time.Now()
	e.mu.Lock()
	var fire []func()
	for _, name := range e.order {
		if f := e.shards[name].tick(e, now); f != nil {
			fire = append(fire, f...)
		}
	}
	e.mu.Unlock()
	for _, f := range fire {
		f()
	}
}

// Start ticks the engine on its interval until Stop.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.stop != nil {
		e.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	e.stop, e.done = stop, done
	e.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(e.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				e.Tick()
			}
		}
	}()
}

// Stop halts the evaluation loop.
func (e *Engine) Stop() {
	e.mu.Lock()
	stop, done := e.stop, e.done
	e.stop, e.done = nil, nil
	e.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Paging reports whether the shard currently holds page grade — the
// reading an SLOBreachProbe samples.
func (e *Engine) Paging(shard string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.shards[shard]
	return ok && s.grade == GradePage
}

// Burn returns the shard's fast-long-window burn rate — the headline
// number a burn-rate probe samples.
func (e *Engine) Burn(shard string) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.shards[shard]
	if !ok {
		return 0
	}
	return s.burns[1]
}

// WindowStat is one window's standing in a snapshot.
type WindowStat struct {
	Window     string  `json:"window"`
	Total      uint64  `json:"total"`
	Bad        uint64  `json:"bad"`
	Burn       float64 `json:"burn"`
	Compliance float64 `json:"compliance"`
}

// ShardSnapshot is one shard's full SLO standing: the /slo document's
// per-shard row and the reading the adaptation reactors consume.
type ShardSnapshot struct {
	Shard           string        `json:"shard"`
	Objective       Objective     `json:"objective"`
	Grade           Grade         `json:"grade"`
	Windows         []WindowStat  `json:"windows"`
	BudgetRemaining float64       `json:"budget_remaining"`
	P99             time.Duration `json:"p99_ns"`
	LastPage        time.Time     `json:"last_page"`
	Captures        uint64        `json:"captures"`
	Ticks           uint64        `json:"ticks"`
}

// Snapshot returns one shard's standing.
func (e *Engine) Snapshot(shard string) (ShardSnapshot, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.shards[shard]
	if !ok {
		return ShardSnapshot{}, false
	}
	return s.snapshot(e), true
}

// Report returns every shard's standing, sorted by shard key.
func (e *Engine) Report() []ShardSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]ShardSnapshot, 0, len(e.order))
	for _, name := range e.order {
		out = append(out, e.shards[name].snapshot(e))
	}
	return out
}

// ReportJSON renders Report as JSON — the /slo and OpSLO document.
func (e *Engine) ReportJSON() ([]byte, error) {
	return json.Marshal(e.Report())
}

// ShardGrade returns a shard's grade name, for roster rows.
func (e *Engine) ShardGrade(shard string) (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.shards[shard]
	if !ok {
		return "", false
	}
	return s.grade.String(), true
}

// shardEval is one shard's evaluation state.
type shardEval struct {
	shard    string
	obj      Objective
	slowFrom int

	lat  *telemetry.HistogramHandle
	errs [2]*telemetry.CounterHandle

	latPrimed bool
	lastLat   telemetry.HistogramSnapshot
	errPrimed bool
	lastErrs  uint64

	ring   *budgetRing
	latWin *latWindow

	burns       [4]float64
	grade       Grade
	ticks       uint64
	lastPage    time.Time
	lastCapture time.Time

	gBurn   [4]*telemetry.Gauge
	gComp   [4]*telemetry.Gauge
	gBudget *telemetry.Gauge
	cPage   *telemetry.Counter
	cWarn   *telemetry.Counter
	cCaps   *telemetry.Counter
}

// tick gathers one interval's traffic, pushes it through the ring,
// re-grades the shard and returns the hooks to fire (nil for none).
// The first reading of each source primes its baseline, so traffic
// from before the engine existed is not charged against the budget.
func (s *shardEval) tick(e *Engine, now time.Time) []func() {
	var b tickBucket
	if h, ok := s.lat.Get(); ok {
		snap := h.Snapshot()
		if !s.latPrimed {
			s.latPrimed = true
			s.lastLat = snap
		}
		delta := snap.Delta(s.lastLat)
		s.lastLat = snap
		b.total = delta.Count
		for i := s.slowFrom; i < len(delta.Buckets); i++ {
			b.bad += delta.Buckets[i]
		}
		s.latWin.push(delta)
	}
	var errs uint64
	for _, h := range s.errs {
		errs += h.Value()
	}
	if !s.errPrimed {
		s.errPrimed = true
		s.lastErrs = errs
	}
	if errs > s.lastErrs {
		// Errors are also observed by the latency histogram, so total
		// already includes them; a slow error must not count twice.
		b.bad += errs - s.lastErrs
	}
	s.lastErrs = errs
	if b.bad > b.total {
		b.bad = b.total
	}
	s.ring.push(b)
	s.ticks++

	budget := 1 - s.obj.Availability
	for i := range s.burns {
		total, bad := s.ring.window(i)
		s.burns[i] = burnRate(total, bad, budget)
		s.gBurn[i].Set(milli(s.burns[i]))
		s.gComp[i].Set(ppm(complianceRatio(total, bad)))
	}
	total, bad := s.ring.window(3)
	remaining := budgetRemaining(total, bad, budget)
	s.gBudget.Set(ppm(remaining))

	w := e.cfg.Windows
	grade := GradeOK
	if s.burns[2] > w.WarnBurn && s.burns[3] > w.WarnBurn {
		grade = GradeWarn
	}
	if s.burns[0] > w.PageBurn && s.burns[1] > w.PageBurn {
		grade = GradePage
	}

	var fire []func()
	if grade > s.grade {
		br := Breach{
			Shard: s.shard, Grade: grade, At: now,
			BurnShort: s.burns[0], BurnLong: s.burns[1],
			BudgetRemaining: remaining,
		}
		if grade == GradePage {
			s.cPage.Inc()
		} else {
			br.BurnShort, br.BurnLong = s.burns[2], s.burns[3]
			s.cWarn.Inc()
		}
		telemetry.Emit("slo", "breach", 0,
			"shard", s.shard, "grade", grade.String(),
			"burn_short", fmtBurn(br.BurnShort), "burn_long", fmtBurn(br.BurnLong),
			"budget_remaining", fmtBurn(remaining))
		if hook := e.cfg.OnBreach; hook != nil {
			fire = append(fire, func() { hook(br) })
		}
		if hook := e.cfg.Capture; hook != nil && grade == GradePage &&
			now.Sub(s.lastCapture) >= e.cfg.CaptureMinGap {
			s.lastCapture = now
			s.cCaps.Inc()
			fire = append(fire, func() { hook(br) })
		}
	}
	if grade == GradePage {
		// Recovery hysteresis measures quiet time from the *end* of the
		// paging episode, so the timestamp tracks every paging tick.
		s.lastPage = now
	}
	s.grade = grade
	return fire
}

func (s *shardEval) snapshot(e *Engine) ShardSnapshot {
	snap := ShardSnapshot{
		Shard:     s.shard,
		Objective: s.obj,
		Grade:     s.grade,
		P99:       s.latWin.p99(),
		LastPage:  s.lastPage,
		Captures:  s.cCaps.Value(),
		Ticks:     s.ticks,
	}
	budget := 1 - s.obj.Availability
	for i := range s.burns {
		total, bad := s.ring.window(i)
		snap.Windows = append(snap.Windows, WindowStat{
			Window:     e.winLabels[i],
			Total:      total,
			Bad:        bad,
			Burn:       s.burns[i],
			Compliance: complianceRatio(total, bad),
		})
	}
	total, bad := s.ring.window(3)
	snap.BudgetRemaining = budgetRemaining(total, bad, budget)
	return snap
}

// slowFromIndex maps a latency target onto the first histogram bucket
// counted as slow: the bucket whose range contains the target. For
// power-of-two targets the target is that bucket's lower edge and the
// count is exact; otherwise observations up to a factor of two below
// the target also count — conservative, never optimistic.
func slowFromIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	i := bits.Len64(uint64(d))
	if i > 63 {
		return 63
	}
	return i
}

// milli scales a ratio into thousandths for an integer gauge (the
// detector_phi_milli convention).
func milli(v float64) int64 { return int64(v * 1000) }

// ppm scales a ratio into parts per million for an integer gauge —
// compliance ratios need finer grain than milli (99.9% vs 99.99% is
// the whole game).
func ppm(v float64) int64 { return int64(v * 1e6) }

func fmtBurn(v float64) string { return fmt.Sprintf("%.2f", v) }

// windowLabel renders a window duration as a compact label ("1m",
// "6h", "300ms"): trailing zero components of the stdlib rendering
// ("1m0s", "6h0m0s") are dropped.
func windowLabel(d time.Duration) string {
	s := d.String()
	for len(s) > 2 {
		tail := s[len(s)-2:]
		if (tail != "0s" && tail != "0m") || isDigit(s[len(s)-3]) {
			break
		}
		s = s[:len(s)-2]
	}
	return s
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
