package slo

import (
	"time"

	"resilientft/internal/telemetry"
)

// The error-budget accounting ring: one bucket per evaluator tick,
// fixed capacity (the longest window), with a rolling sum maintained
// per configured window so a tick costs O(windows), not a rescan of
// six hours of buckets. Buckets carry raw request counts — the
// windowed bad fraction and burn rate are derived at read time, so
// the ring itself has no opinion about objectives.

// tickBucket is one evaluation interval's traffic: how many requests
// the shard served and how many violated the objective (errors plus
// latency-slow, capped at total).
type tickBucket struct {
	total uint64
	bad   uint64
}

// windowSum is the rolling sum over the last `ticks` pushes.
type windowSum struct {
	ticks int
	total uint64
	bad   uint64
}

// budgetRing holds capacity tick buckets and maintains one rolling sum
// per window. Not safe for concurrent use; the engine serializes
// ticks under its own lock.
type budgetRing struct {
	buckets []tickBucket
	head    int // next write position
	n       int // filled buckets, up to capacity
	windows []windowSum
}

// newBudgetRing returns a ring of the given capacity with rolling
// sums over windowTicks (each clamped to capacity).
func newBudgetRing(capacity int, windowTicks []int) *budgetRing {
	if capacity < 1 {
		capacity = 1
	}
	r := &budgetRing{buckets: make([]tickBucket, capacity)}
	for _, t := range windowTicks {
		if t < 1 {
			t = 1
		}
		if t > capacity {
			t = capacity
		}
		r.windows = append(r.windows, windowSum{ticks: t})
	}
	return r
}

// push appends one tick's bucket, updating every rolling sum: the new
// bucket enters, the bucket that left each window is subtracted.
func (r *budgetRing) push(b tickBucket) {
	size := len(r.buckets)
	for i := range r.windows {
		w := &r.windows[i]
		w.total += b.total
		w.bad += b.bad
		if r.n >= w.ticks {
			// The bucket pushed w.ticks pushes ago leaves the window. With
			// w.ticks == capacity that is the slot about to be overwritten,
			// still holding its old value.
			old := r.buckets[(r.head-w.ticks+size)%size]
			w.total -= old.total
			w.bad -= old.bad
		}
	}
	r.buckets[r.head] = b
	r.head = (r.head + 1) % size
	if r.n < size {
		r.n++
	}
}

// window returns the rolling totals of window i.
func (r *budgetRing) window(i int) (total, bad uint64) {
	return r.windows[i].total, r.windows[i].bad
}

// burnRate converts a window's traffic into an error-budget burn
// rate: the bad fraction divided by the budget (1 − availability). A
// burn of 1.0 spends the budget exactly at the sustainable pace; 14.4
// exhausts a 30-day budget in two days. A zero-traffic window burns
// nothing — the alternatives (NaN, or treating silence as failure)
// would page idle shards.
func burnRate(total, bad uint64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return float64(bad) / float64(total) / budget
}

// complianceRatio is the windowed fraction of good requests; an idle
// window is fully compliant (it spent none of the budget).
func complianceRatio(total, bad uint64) float64 {
	if total == 0 {
		return 1
	}
	if bad > total {
		return 0
	}
	return float64(total-bad) / float64(total)
}

// budgetRemaining is the unspent fraction of the error budget over
// the accounting window, clamped to [0, 1]: 1 with an untouched
// budget, 0 at or past exhaustion.
func budgetRemaining(total, bad uint64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 1
	}
	spent := float64(bad) / float64(total) / budget
	if spent >= 1 {
		return 0
	}
	return 1 - spent
}

// latWindow is a rolling histogram over the last `size` ticks, built
// from per-tick snapshot deltas, so the reported p99 is the recent
// tail, not the lifetime one. Same subtract-on-evict discipline as
// budgetRing.
type latWindow struct {
	deltas []telemetry.HistogramSnapshot
	head   int
	n      int
	sum    telemetry.HistogramSnapshot
}

func newLatWindow(size int) *latWindow {
	if size < 1 {
		size = 1
	}
	return &latWindow{deltas: make([]telemetry.HistogramSnapshot, size)}
}

func (w *latWindow) push(d telemetry.HistogramSnapshot) {
	if w.n >= len(w.deltas) {
		old := &w.deltas[w.head]
		w.sum.Count -= old.Count
		w.sum.SumNs -= old.SumNs
		for i := range w.sum.Buckets {
			w.sum.Buckets[i] -= old.Buckets[i]
		}
	}
	w.sum.Count += d.Count
	w.sum.SumNs += d.SumNs
	for i := range w.sum.Buckets {
		w.sum.Buckets[i] += d.Buckets[i]
	}
	w.deltas[w.head] = d
	w.head = (w.head + 1) % len(w.deltas)
	if w.n < len(w.deltas) {
		w.n++
	}
}

// p99 returns the windowed 99th-percentile upper bound.
func (w *latWindow) p99() time.Duration { return w.sum.Quantile(0.99) }
