package slo_test

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/appstate"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
	"resilientft/internal/slo"
	"resilientft/internal/stablestore"
	"resilientft/internal/telemetry"
)

// slowApp wraps the calculator with a settable processing delay — the
// gray failure the drill injects: the replica is alive, heartbeating
// and correct, but every request crawls. Only the plain Application
// surface is implemented (no optional fast paths), so the delay sits
// on every processed request.
type slowApp struct {
	calc  *ftm.Calculator
	delay atomic.Int64 // nanoseconds added to each Process
}

func (a *slowApp) Process(op string, arg int64) (int64, int64, error) {
	if d := a.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return a.calc.Process(op, arg)
}

func (a *slowApp) Assert(op string, arg, before, result int64) bool {
	return a.calc.Assert(op, arg, before, result)
}

func (a *slowApp) StateManager() appstate.Manager { return a.calc.StateManager() }

func (a *slowApp) Deterministic() bool { return a.calc.Deterministic() }

// TestSLOBreachDrill is the end-to-end drill the ISSUE specifies: a
// live PBR pair is driven past its latency objective, the engine pages
// within the fast windows, the diagnostic bundle (black box + pprof)
// lands in stable storage, the SLO reactor degrades the shard to LFR
// with a traced cause, and — once the injected slowness is lifted and
// the budget refills — recovers it back to PBR.
func TestSLOBreachDrill(t *testing.T) {
	const group = "slo-e2e"
	ctx := context.Background()

	app := &slowApp{calc: ftm.NewCalculator()}
	sys, err := ftm.NewSystem(ctx, ftm.SystemConfig{
		System:            "slodrill",
		Group:             group,
		FTM:               core.PBR,
		AppFactory:        func() ftm.Application { return app },
		HeartbeatInterval: 50 * time.Millisecond,
		SuspectTimeout:    30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()

	// The rpc layer records per-shard series into the default registry,
	// so the engine reads it too; the drill's unique group keeps its
	// series apart from anything else the test binary records.
	fr := telemetry.NewFlightRecorder(telemetry.DefaultTracer(), telemetry.DefaultSpans(), telemetry.Default())
	incidents := stablestore.NewFileIncidentLog(t.TempDir() + "/incidents.jsonl")
	eng := slo.New(slo.Config{
		Registry: telemetry.Default(),
		Interval: 10 * time.Millisecond,
		Windows: slo.Windows{
			FastShort: 100 * time.Millisecond,
			FastLong:  300 * time.Millisecond,
			SlowShort: time.Second,
			SlowLong:  1500 * time.Millisecond,
		},
		Capture: slo.NewCapture(fr, incidents, 30*time.Millisecond),
	})
	eng.SetObjective(group, slo.Objective{LatencyP99: 1 << 22, Availability: 0.999}) // ~4.2ms
	eng.Start()
	defer eng.Stop()

	mgr := adaptation.NewShardManager(nil)
	mgr.ManageSLO(group, sys, eng, adaptation.SLOPolicy{
		DegradeTo:     core.LFR,
		RecoverBudget: 0.9,
		RecoverAfter:  300 * time.Millisecond,
		Interval:      20 * time.Millisecond,
	})
	mgr.StartAll()
	defer mgr.StopAll()

	// Background traffic for the whole drill; errors during transitions
	// are part of the scenario, not failures.
	client, err := sys.NewClient(rpc.WithGroup(group), rpc.WithCallTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	stopTraffic := make(chan struct{})
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		for {
			select {
			case <-stopTraffic:
				return
			default:
			}
			_, _ = client.Invoke(ctx, "add:x", ftm.EncodeArg(1))
		}
	}()
	defer func() { close(stopTraffic); <-trafficDone }()

	waitFor := func(what string, deadline time.Duration, ok func() bool) {
		t.Helper()
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if ok() {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		snap, _ := eng.Snapshot(group)
		t.Fatalf("%s never happened; slo snapshot: %+v", what, snap)
	}

	// Phase 1 — inject 10ms of per-request slowness: every request
	// lands far past the ~4.2ms objective, both fast windows burn at
	// ~1000x, and the reactor degrades the shard to LFR.
	app.delay.Store(int64(10 * time.Millisecond))
	waitFor("degrade to LFR", 10*time.Second, func() bool {
		m := sys.Master()
		return m != nil && m.FTM() == core.LFR
	})

	reg := telemetry.Default()
	if c, ok := reg.FindCounter("slo_breaches_total", "shard", group, "grade", "page"); !ok || c.Value() == 0 {
		t.Fatal("no page-grade breach counted")
	}
	if c, ok := reg.FindCounter("adaptation_shard_decision_total", "shard", group, "decision", "slo-degrade"); !ok || c.Value() == 0 {
		t.Fatal("degrade decision not counted")
	}

	// The traced cause: the engine's breach event and the reactor's
	// decision event, both carrying the shard.
	var sawBreach, sawDecision bool
	for _, e := range telemetry.DefaultTracer().Since(0) {
		if e.Kind == "slo" && e.Name == "breach" && e.Attrs["shard"] == group {
			sawBreach = true
		}
		if e.Kind == "adaptation" && e.Name == "slo-degrade" && e.Attrs["shard"] == group {
			sawDecision = true
		}
	}
	if !sawBreach || !sawDecision {
		t.Fatalf("trace events missing: breach=%v decision=%v", sawBreach, sawDecision)
	}

	// Phase 2 — the diagnostic bundle: a breach black box in the
	// recorder's ring and a profile-carrying bundle in stable storage.
	waitFor("diagnostic bundle persisted", 10*time.Second, func() bool {
		recs, err := incidents.Records()
		if err != nil {
			return false
		}
		for _, rec := range recs {
			if rec.Reason == slo.ReasonBundle {
				return true
			}
		}
		return false
	})
	recs, err := incidents.Records()
	if err != nil {
		t.Fatal(err)
	}
	var bundle slo.Bundle
	found := false
	for _, rec := range recs {
		if rec.Reason != slo.ReasonBundle {
			continue
		}
		if err := json.Unmarshal(rec.Data, &bundle); err != nil {
			t.Fatalf("bundle unmarshal: %v", err)
		}
		found = true
	}
	if !found {
		t.Fatal("no bundle record")
	}
	if bundle.Shard != group || bundle.Grade != "page" {
		t.Fatalf("bundle identity wrong: %+v", bundle)
	}
	if bundle.BurnShort <= 14.4 {
		t.Fatalf("bundle burn = %v, want above the page threshold", bundle.BurnShort)
	}
	if bundle.Profiles == nil {
		t.Fatalf("bundle has no profiles (err %q)", bundle.ProfilesErr)
	}
	if len(bundle.Profiles.Heap) == 0 || len(bundle.Profiles.Goroutine) == 0 {
		t.Fatal("bundle profiles empty")
	}
	boxOK := false
	for _, box := range fr.Boxes() {
		if box.Reason == slo.ReasonBreach && box.Attrs["shard"] == group {
			boxOK = true
		}
	}
	if !boxOK {
		t.Fatal("no breach black box in the recorder ring")
	}

	// Phase 3 — lift the slowness: the fast windows drain, the budget
	// refills past the recovery threshold, and after the quiet period
	// the reactor restores PBR.
	app.delay.Store(0)
	waitFor("recovery to PBR", 20*time.Second, func() bool {
		m := sys.Master()
		return m != nil && m.FTM() == core.PBR
	})
	if c, ok := reg.FindCounter("adaptation_shard_decision_total", "shard", group, "decision", "slo-recover"); !ok || c.Value() == 0 {
		t.Fatal("recover decision not counted")
	}
}
