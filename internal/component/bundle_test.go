package component

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBundleVerifyRoundTrip(t *testing.T) {
	b := NewBundle("ftm.pbr.syncAfter", 4096, "ftm.duplex")
	if err := b.Verify(); err != nil {
		t.Fatalf("Verify fresh bundle: %v", err)
	}
	if b.Size() != 4096 {
		t.Fatalf("Size = %d, want 4096", b.Size())
	}
}

func TestBundleVerifyDetectsTampering(t *testing.T) {
	b := NewBundle("ftm.lfr.syncBefore", 1024)
	b.Code[17] ^= 0xff
	if err := b.Verify(); !errors.Is(err, ErrBundle) {
		t.Fatalf("Verify tampered bundle: err = %v, want ErrBundle", err)
	}
}

func TestEmptyBundleVerifies(t *testing.T) {
	var b Bundle
	if err := b.Verify(); err != nil {
		t.Fatalf("Verify empty bundle: %v", err)
	}
}

func TestBundleDeterministic(t *testing.T) {
	a := NewBundle("t", 512, "x", "y")
	b := NewBundle("t", 512, "x", "y")
	if a.Checksum != b.Checksum {
		t.Fatal("bundles of identical inputs differ")
	}
}

// Property: any single bit flip anywhere in the code blob is detected.
func TestBundleBitFlipDetected_Property(t *testing.T) {
	b := NewBundle("prop", 256)
	f := func(pos uint16, bit uint8) bool {
		c := b
		c.Code = append([]byte(nil), b.Code...)
		c.Code[int(pos)%len(c.Code)] ^= 1 << (bit % 8)
		return errors.Is(c.Verify(), ErrBundle)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryRegisterResolve(t *testing.T) {
	r := NewRegistry()
	factory := func(map[string]any) (Content, error) { return newEchoContent(), nil }
	if err := r.Register("test.echo", factory); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register("test.echo", factory); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("double Register: err = %v, want ErrAlreadyExists", err)
	}
	if _, err := r.Resolve("test.echo"); err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if _, err := r.Resolve("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Resolve missing: err = %v, want ErrNotFound", err)
	}
	if got := r.Types(); !reflect.DeepEqual(got, []string{"test.echo"}) {
		t.Fatalf("Types = %v", got)
	}
}

func TestRegistryLink(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("dep", func(map[string]any) (Content, error) { return newEchoContent(), nil })
	ok := NewBundle("pkg", 128, "dep")
	if err := r.Link(ok); err != nil {
		t.Fatalf("Link resolvable bundle: %v", err)
	}
	bad := NewBundle("pkg2", 128, "missing")
	if err := r.Link(bad); !errors.Is(err, ErrBundle) {
		t.Fatalf("Link unresolvable bundle: err = %v, want ErrBundle", err)
	}
}

func TestDeployFromRegistry(t *testing.T) {
	r := NewRegistry()
	r.MustRegister("test.echo", func(props map[string]any) (Content, error) {
		c := newEchoContent()
		for k, v := range props {
			c.props[k] = v
		}
		return c, nil
	})
	rt := NewRuntime(r)
	def := Definition{
		Name:       "deployed",
		Type:       "test.echo",
		Services:   []string{"svc"},
		Properties: map[string]any{"role": "leader"},
		Bundle:     NewBundle("test.echo", 2048),
	}
	c, err := rt.AddComponent("", def)
	if err != nil {
		t.Fatalf("AddComponent from registry: %v", err)
	}
	if err := rt.Start(context.Background(), "deployed"); err != nil {
		t.Fatalf("Start: %v", err)
	}
	ep, err := c.ServiceEndpoint("svc")
	if err != nil {
		t.Fatalf("ServiceEndpoint: %v", err)
	}
	if _, err := ep.Invoke(context.Background(), NewMessage("echo", "ok")); err != nil {
		t.Fatalf("Invoke deployed component: %v", err)
	}
}

func TestDeployUnknownTypeFails(t *testing.T) {
	rt := NewRuntime(nil)
	_, err := rt.AddComponent("", Definition{Name: "x", Type: "unknown"})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("deploy unknown type: err = %v, want ErrNotFound", err)
	}
}
