package component

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// Bundle is the deployable unit of a component: a synthetic analogue of
// the OSGi/SCA bundles FraSCAti loads when a transition package arrives.
// The paper's deployment step dominates transition time because bundles
// must be transferred, verified and linked before components can be
// instantiated; this type reproduces that cost structure. A bundle
// carries a symbol table that must resolve against the local Registry and
// a code blob protected by a checksum that must verify at load time.
type Bundle struct {
	// Type is the component type the bundle provides.
	Type string
	// Symbols are the component types this bundle links against; they
	// must all be resolvable in the deploying runtime's Registry.
	Symbols []string
	// Code is the opaque payload (its size models the brick's size).
	Code []byte
	// Checksum is the SHA-256 of Type, Symbols and Code.
	Checksum [sha256.Size]byte
}

// NewBundle assembles a sealed bundle of codeSize synthetic bytes for the
// given component type, linking against the given symbols.
func NewBundle(typ string, codeSize int, symbols ...string) Bundle {
	code := make([]byte, codeSize)
	// Deterministic filler so checksums are stable across runs.
	var counter [8]byte
	for i := 0; i < len(code); i += sha256.Size {
		binary.BigEndian.PutUint64(counter[:], uint64(i))
		sum := sha256.Sum256(append([]byte(typ), counter[:]...))
		copy(code[i:], sum[:])
	}
	b := Bundle{
		Type:    typ,
		Symbols: append([]string(nil), symbols...),
		Code:    code,
	}
	b.Checksum = b.digest()
	return b
}

func (b Bundle) digest() [sha256.Size]byte {
	h := sha256.New()
	h.Write([]byte(b.Type))
	syms := append([]string(nil), b.Symbols...)
	sort.Strings(syms)
	for _, s := range syms {
		h.Write([]byte{0})
		h.Write([]byte(s))
	}
	h.Write([]byte{0})
	h.Write(b.Code)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Verify re-computes the bundle checksum and compares it against the
// sealed one, modelling signature verification at deployment time.
func (b Bundle) Verify() error {
	if len(b.Code) == 0 && b.Type == "" {
		// Empty bundle: components defined in-process carry no bundle
		// and deploy without verification cost.
		return nil
	}
	if got := b.digest(); !bytes.Equal(got[:], b.Checksum[:]) {
		return fmt.Errorf("%w: checksum mismatch for type %q", ErrBundle, b.Type)
	}
	return nil
}

// Size returns the code size in bytes.
func (b Bundle) Size() int { return len(b.Code) }

// Factory constructs the content of a component type from its properties.
type Factory func(properties map[string]any) (Content, error)

// Registry resolves component types to factories. It models the class
// space of a running replica: transition packages cannot ship executable
// code, they reference types that must already be resolvable locally —
// exactly the OSGi bundle-resolution contract FraSCAti relies on.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]Factory
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]Factory)}
}

// Register binds a component type to its factory. Registering the same
// type twice is an error so that packaging bugs surface early.
func (r *Registry) Register(typ string, f Factory) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.factories[typ]; ok {
		return fmt.Errorf("%w: factory for type %q", ErrAlreadyExists, typ)
	}
	r.factories[typ] = f
	return nil
}

// MustRegister is Register that panics on error; intended for wiring done
// at program assembly time where a duplicate is a programming error.
func (r *Registry) MustRegister(typ string, f Factory) {
	if err := r.Register(typ, f); err != nil {
		panic(err)
	}
}

// Resolve returns the factory for typ.
func (r *Registry) Resolve(typ string) (Factory, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.factories[typ]
	if !ok {
		return nil, fmt.Errorf("%w: component type %q", ErrNotFound, typ)
	}
	return f, nil
}

// Types returns all registered type names, sorted.
func (r *Registry) Types() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.factories))
	for t := range r.factories {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Link verifies the bundle and resolves each of its symbols against the
// registry, modelling the load/link phase of package deployment.
func (r *Registry) Link(b Bundle) error {
	if err := b.Verify(); err != nil {
		return err
	}
	for _, sym := range b.Symbols {
		if _, err := r.Resolve(sym); err != nil {
			return fmt.Errorf("%w: unresolved symbol %q in bundle %q", ErrBundle, sym, b.Type)
		}
	}
	return nil
}
