package component

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Invoker continues an intercepted invocation.
type Invoker func(ctx context.Context, msg Message) (Message, error)

// Interceptor wraps every invocation of a component's services — the
// membrane-level interception a reflective component model provides for
// non-functional concerns (metrics, tracing, policy) without touching
// content code.
type Interceptor struct {
	// Name identifies the interceptor for introspection and removal.
	Name string
	// Around runs instead of the invocation; call next to proceed.
	Around func(ctx context.Context, service string, msg Message, next Invoker) (Message, error)
}

// AddInterceptor installs an interceptor on the component. Interceptors
// run in installation order, outermost first.
func (c *Component) AddInterceptor(i Interceptor) error {
	if i.Name == "" || i.Around == nil {
		return fmt.Errorf("%w: interceptor needs a name and an Around function", ErrBadState)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, existing := range c.interceptors {
		if existing.Name == i.Name {
			return fmt.Errorf("%w: interceptor %q on %q", ErrAlreadyExists, i.Name, c.def.Name)
		}
	}
	c.interceptors = append(c.interceptors, i)
	c.storeChain()
	return nil
}

// RemoveInterceptor uninstalls an interceptor by name.
func (c *Component) RemoveInterceptor(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for idx, existing := range c.interceptors {
		if existing.Name == name {
			c.interceptors = append(c.interceptors[:idx], c.interceptors[idx+1:]...)
			c.storeChain()
			return nil
		}
	}
	return fmt.Errorf("%w: interceptor %q on %q", ErrNotFound, name, c.def.Name)
}

// Interceptors returns the installed interceptor names, in order.
func (c *Component) Interceptors() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.interceptors))
	for _, i := range c.interceptors {
		out = append(out, i.Name)
	}
	return out
}

// storeChain publishes an immutable snapshot of the interceptor chain.
// Called with c.mu held; the invocation path reads the snapshot without
// copying (the slice is never mutated after publication).
func (c *Component) storeChain() {
	if len(c.interceptors) == 0 {
		c.chain.Store(nil)
		return
	}
	snap := append([]Interceptor(nil), c.interceptors...)
	c.chain.Store(&snap)
}

// interceptorChain returns the published chain snapshot for one
// invocation.
func (c *Component) interceptorChain() []Interceptor {
	snap := c.chain.Load()
	if snap == nil {
		return nil
	}
	return *snap
}

// dispatch runs an invocation through the interceptor chain into the
// content.
func (c *Component) dispatch(ctx context.Context, service string, msg Message) (Message, error) {
	chain := c.interceptorChain()
	if len(chain) == 0 {
		// No interceptors: invoke the content directly instead of
		// building a closure chain per call.
		return c.def.Content.Invoke(ctx, service, msg)
	}
	var next Invoker = func(ctx context.Context, m Message) (Message, error) {
		return c.def.Content.Invoke(ctx, service, m)
	}
	for idx := len(chain) - 1; idx >= 0; idx-- {
		i := chain[idx]
		inner := next
		next = func(ctx context.Context, m Message) (Message, error) {
			return i.Around(ctx, service, m, inner)
		}
	}
	return next(ctx, msg)
}

// ServiceMetrics aggregates one service's invocation statistics.
type ServiceMetrics struct {
	Invocations uint64
	Errors      uint64
	Total       time.Duration
}

// Mean returns the mean invocation latency.
func (m ServiceMetrics) Mean() time.Duration {
	if m.Invocations == 0 {
		return 0
	}
	return m.Total / time.Duration(m.Invocations)
}

// InvocationMetrics collects per-service invocation statistics; attach it
// with Interceptor() and feed monitoring probes from Snapshot(). This is
// the membrane-level resource observation the paper's Monitoring Engine
// needs for the R dimension.
type InvocationMetrics struct {
	mu       sync.Mutex
	services map[string]ServiceMetrics
}

// NewInvocationMetrics returns an empty collector.
func NewInvocationMetrics() *InvocationMetrics {
	return &InvocationMetrics{services: make(map[string]ServiceMetrics)}
}

// Interceptor returns the interceptor feeding this collector.
func (m *InvocationMetrics) Interceptor(name string) Interceptor {
	return Interceptor{
		Name: name,
		Around: func(ctx context.Context, service string, msg Message, next Invoker) (Message, error) {
			start := time.Now()
			reply, err := next(ctx, msg)
			m.record(service, time.Since(start), err != nil)
			return reply, err
		},
	}
}

func (m *InvocationMetrics) record(service string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.services[service]
	s.Invocations++
	s.Total += d
	if failed {
		s.Errors++
	}
	m.services[service] = s
}

// Snapshot returns a copy of the per-service statistics.
func (m *InvocationMetrics) Snapshot() map[string]ServiceMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]ServiceMetrics, len(m.services))
	for k, v := range m.services {
		out[k] = v
	}
	return out
}

// TotalInvocations sums invocations across services.
func (m *InvocationMetrics) TotalInvocations() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n uint64
	for _, s := range m.services {
		n += s.Invocations
	}
	return n
}

// BusyTime sums processing time across services — a CPU-load proxy.
func (m *InvocationMetrics) BusyTime() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	var d time.Duration
	for _, s := range m.services {
		d += s.Total
	}
	return d
}

// Services returns the observed service names, sorted.
func (m *InvocationMetrics) Services() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.services))
	for k := range m.services {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
