package component

import "errors"

// Sentinel errors reported by the runtime. Callers match them with
// errors.Is; most are wrapped with path/name context at the call site.
var (
	// ErrNotFound reports a component, service or reference that does not
	// exist at the addressed path.
	ErrNotFound = errors.New("component: not found")

	// ErrAlreadyExists reports a name collision inside a composite.
	ErrAlreadyExists = errors.New("component: already exists")

	// ErrBadState reports a lifecycle operation invalid in the current
	// state (for example starting a removed component).
	ErrBadState = errors.New("component: bad lifecycle state")

	// ErrRemoved reports an invocation on a component that has been
	// removed from its composite.
	ErrRemoved = errors.New("component: removed")

	// ErrIntegrity reports a violated architecture integrity constraint.
	ErrIntegrity = errors.New("component: integrity constraint violated")

	// ErrUnknownOp reports an operation not understood by a service.
	ErrUnknownOp = errors.New("component: unknown operation")

	// ErrRefUnwired reports an invocation through a reference that is not
	// currently wired to any service.
	ErrRefUnwired = errors.New("component: reference not wired")

	// ErrBundle reports a transition-package bundle that failed
	// verification or symbol resolution at deployment time.
	ErrBundle = errors.New("component: bundle verification failed")
)
