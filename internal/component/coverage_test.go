package component

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestMessageMeta(t *testing.T) {
	m := NewMessage("op", 1)
	if m.MetaValue("k") != "" {
		t.Fatal("fresh message has meta")
	}
	m2 := m.WithMeta("k", "v").WithMeta("k2", "v2")
	if m2.MetaValue("k") != "v" || m2.MetaValue("k2") != "v2" {
		t.Fatalf("meta = %v", m2.Meta)
	}
	// The original is untouched (copy-on-write).
	if m.Meta != nil {
		t.Fatal("WithMeta mutated the receiver")
	}
}

func TestStateStrings(t *testing.T) {
	cases := map[State]string{
		StateStopped: "stopped",
		StateStarted: "started",
		StateRemoved: "removed",
		State(99):    "state(99)",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("State(%d).String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestComponentTypeAndRuntimeAccessors(t *testing.T) {
	reg := NewRegistry()
	rt := NewRuntime(reg)
	if rt.Registry() != reg {
		t.Fatal("Registry accessor wrong")
	}
	if rt.Root() == nil {
		t.Fatal("Root accessor wrong")
	}
	c := mustAdd(t, rt, "", echoDef("a"))
	if c.Type() != "test.echo" {
		t.Fatalf("Type = %q", c.Type())
	}
	mustAdd(t, rt, "", echoDef("b"))
	if err := rt.Wire("a", "next", "b", "svc"); err != nil {
		t.Fatal(err)
	}
	wires := rt.Wires()
	if len(wires) != 1 || wires[0].String() != "a.next -> b.svc" {
		t.Fatalf("Wires = %v", wires)
	}
}

func TestDeletePropertyRemovesRecord(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	if err := rt.SetProperty("a", "k", "v"); err != nil {
		t.Fatal(err)
	}
	c.DeleteProperty("k")
	if _, ok := c.Property("k"); ok {
		t.Fatal("property survived deletion")
	}
}

func TestMustRegisterPanicsOnDuplicate(t *testing.T) {
	r := NewRegistry()
	f := func(map[string]any) (Content, error) { return newEchoContent(), nil }
	r.MustRegister("t", f)
	defer func() {
		if recover() == nil {
			t.Fatal("MustRegister did not panic on duplicate")
		}
	}()
	r.MustRegister("t", f)
}

func TestCompositeRemovalCascades(t *testing.T) {
	rt := NewRuntime(nil)
	if _, err := rt.AddComposite("box"); err != nil {
		t.Fatal(err)
	}
	a := mustAdd(t, rt, "box", echoDef("a"))
	mustAdd(t, rt, "box", echoDef("b"))
	if err := rt.Wire("box/a", "next", "box/b", "svc"); err != nil {
		t.Fatal(err)
	}
	mustStart(t, rt, "box/a")
	ep, err := a.ServiceEndpoint("svc")
	if err != nil {
		t.Fatal(err)
	}
	// Removal of the whole composite (internal wiring included) requires
	// only a stopped boundary; children become removed too.
	if err := rt.Stop(context.Background(), "box"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Stop(context.Background(), "box/a"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Remove("box"); err != nil {
		t.Fatalf("Remove composite: %v", err)
	}
	if a.State() != StateRemoved {
		t.Fatalf("child state = %v, want removed", a.State())
	}
	if _, err := ep.Invoke(context.Background(), NewMessage("echo", 1)); !errors.Is(err, ErrRemoved) {
		t.Fatalf("invoke on removed child: %v", err)
	}
	if rt.Exists("box/b") {
		t.Fatal("nested child still addressable")
	}
}

func TestRemoveCompositeWithInboundWireRefused(t *testing.T) {
	rt := NewRuntime(nil)
	if _, err := rt.AddComposite("box"); err != nil {
		t.Fatal(err)
	}
	inner := mustAdd(t, rt, "box", echoDef("inner"))
	_ = inner
	mustAdd(t, rt, "", echoDef("outside"))
	if err := rt.Wire("outside", "next", "box/inner", "svc"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Stop(context.Background(), "box"); err != nil {
		t.Fatal(err)
	}
	if err := rt.Remove("box"); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("Remove with inbound wire: %v, want ErrIntegrity", err)
	}
}

func TestCompositeChildAccessors(t *testing.T) {
	rt := NewRuntime(nil)
	cp, err := rt.AddComposite("box")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddComposite("box/nested"); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rt, "box", echoDef("leaf"))
	comps := cp.Components()
	if len(comps) != 1 || comps[0].Name() != "leaf" {
		t.Fatalf("Components = %v", comps)
	}
	subs := cp.Composites()
	if len(subs) != 1 || subs[0].Name() != "nested" {
		t.Fatalf("Composites = %v", subs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Path: "a/b", Detail: "unwired"}
	if v.String() != "a/b: unwired" {
		t.Fatalf("String = %q", v.String())
	}
}

func TestIntegrityDetectsDanglingWireAfterForcedRemoval(t *testing.T) {
	// Integrity checking must flag a wire whose target service was
	// demoted out from under it.
	rt := NewRuntime(nil)
	cp, err := rt.AddComposite("box")
	if err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rt, "box", echoDef("inner"))
	if err := cp.Promote("svc", "inner", "svc"); err != nil {
		t.Fatal(err)
	}
	mustAdd(t, rt, "", echoDef("outside"))
	if err := rt.Wire("outside", "next", "box", "svc"); err != nil {
		t.Fatal(err)
	}
	if len(rt.CheckIntegrity()) != 0 {
		t.Fatal("healthy promotion flagged")
	}
	if err := cp.Demote("svc"); err != nil {
		t.Fatal(err)
	}
	violations := rt.CheckIntegrity()
	if len(violations) != 1 || !strings.Contains(violations[0].String(), "unpromoted") {
		t.Fatalf("violations = %v", violations)
	}
}

func TestRenderPropertyValueVariants(t *testing.T) {
	cases := map[string]any{
		"<nil>":      nil,
		"text":       "text",
		"42":         42,
		"true":       true,
		"1.5":        1.5,
		"1s":         time.Second, // fmt.Stringer
		"<[]int>":    []int{1},
		"<chan int>": make(chan int),
	}
	for want, v := range cases {
		if got := renderPropertyValue(v); got != want {
			t.Errorf("renderPropertyValue(%T) = %q, want %q", v, got, want)
		}
	}
}

func TestGateIsOpen(t *testing.T) {
	g := newGate()
	if g.isOpen() {
		t.Fatal("fresh gate open")
	}
	g.openGate()
	if !g.isOpen() {
		t.Fatal("opened gate closed")
	}
}
