package component

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// State is the lifecycle state of a component. A freshly added component
// is Stopped; Start opens its invocation gate; Remove is terminal.
type State int

// Lifecycle states.
const (
	StateStopped State = iota + 1
	StateStarted
	StateRemoved
)

// String returns the lower-case state name.
func (s State) String() string {
	switch s {
	case StateStopped:
		return "stopped"
	case StateStarted:
		return "started"
	case StateRemoved:
		return "removed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Component is a runtime component instance: a Content implementation
// framed by a membrane that enforces lifecycle gating (quiescence),
// reference injection and property pushes.
type Component struct {
	// mu is read-mostly: the invocation path reads state, wires and the
	// interceptor chain under a read lock; lifecycle and reconfiguration
	// take the write lock.
	mu    sync.RWMutex
	def   Definition
	state State
	g     *gate
	// wires maps reference name -> current wire, for introspection and
	// integrity checking. The actual call path is the injected proxy.
	wires map[string]*Wire
	// interceptors wrap every service invocation, outermost first.
	interceptors []Interceptor
	// chain is the published immutable snapshot of interceptors, read
	// lock-free on every invocation.
	chain atomic.Pointer[[]Interceptor]
	// eps caches the per-service invocation closure. The service set is
	// fixed by the definition and the closure resolves state, wiring and
	// interceptors on every call, so entries never invalidate.
	eps sync.Map
}

func newComponent(def Definition) *Component {
	return &Component{
		def:   def.clone(),
		state: StateStopped,
		g:     newGate(),
		wires: make(map[string]*Wire),
	}
}

// Name returns the component's name inside its composite.
func (c *Component) Name() string { return c.def.Name }

// Type returns the component's type identifier.
func (c *Component) Type() string { return c.def.Type }

// Definition returns a copy of the component's definition.
func (c *Component) Definition() Definition {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.def.clone()
}

// State returns the current lifecycle state.
func (c *Component) State() State {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.state
}

// Start runs the content's OnStart hook (if any) and opens the gate,
// releasing any invocations buffered while the component was stopped.
func (c *Component) Start(ctx context.Context) error {
	c.mu.Lock()
	switch c.state {
	case StateRemoved:
		c.mu.Unlock()
		return fmt.Errorf("%w: start %q", ErrBadState, c.def.Name)
	case StateStarted:
		c.mu.Unlock()
		return nil
	}
	content := c.def.Content
	c.mu.Unlock()

	if lc, ok := content.(Lifecycle); ok {
		if err := lc.OnStart(ctx); err != nil {
			return fmt.Errorf("component %q: OnStart: %w", c.def.Name, err)
		}
	}
	c.mu.Lock()
	c.state = StateStarted
	c.mu.Unlock()
	c.g.openGate()
	return nil
}

// Stop closes the gate, waits for in-flight invocations to drain
// (quiescence, paper §5.3) and then runs the content's OnStop hook.
// Invocations arriving while stopped block until the component is
// restarted or removed.
func (c *Component) Stop(ctx context.Context) error {
	c.mu.Lock()
	switch c.state {
	case StateRemoved:
		c.mu.Unlock()
		return fmt.Errorf("%w: stop %q", ErrBadState, c.def.Name)
	case StateStopped:
		c.mu.Unlock()
		return nil
	}
	content := c.def.Content
	c.mu.Unlock()

	if err := c.g.close(ctx); err != nil {
		// The gate is now shut but quiescence was not reached; reopen so
		// the architecture is not left half-stopped.
		c.g.openGate()
		return fmt.Errorf("component %q: %w", c.def.Name, err)
	}
	if lc, ok := content.(Lifecycle); ok {
		if err := lc.OnStop(ctx); err != nil {
			c.g.openGate()
			return fmt.Errorf("component %q: OnStop: %w", c.def.Name, err)
		}
	}
	c.mu.Lock()
	c.state = StateStopped
	c.mu.Unlock()
	return nil
}

// markRemoved transitions the component to its terminal state, failing
// buffered and future invocations.
func (c *Component) markRemoved() {
	c.mu.Lock()
	c.state = StateRemoved
	c.mu.Unlock()
	c.g.remove()
}

// ServiceEndpoint returns the invocable endpoint for the named service.
// The endpoint enforces the component's gate on every call, which is what
// buffers invocations during reconfiguration.
func (c *Component) ServiceEndpoint(service string) (Service, error) {
	if !c.def.HasService(service) {
		return nil, fmt.Errorf("%w: service %q on component %q", ErrNotFound, service, c.def.Name)
	}
	// Composite dispatch re-resolves the child endpoint on every request
	// (that is what makes promotion re-pointing take effect live), so the
	// closure is cached rather than rebuilt per call.
	if ep, ok := c.eps.Load(service); ok {
		return ep.(Service), nil
	}
	var ep Service = ServiceFunc(func(ctx context.Context, msg Message) (Message, error) {
		if err := c.g.enter(ctx); err != nil {
			return Message{}, fmt.Errorf("component %q service %q: %w", c.def.Name, service, err)
		}
		defer c.g.leave()
		return c.dispatch(ctx, service, msg)
	})
	actual, _ := c.eps.LoadOrStore(service, ep)
	return actual.(Service), nil
}

// setReference injects target (possibly nil) into the content under the
// declared reference name.
func (c *Component) setReference(name string, target Service) error {
	if _, ok := c.def.Reference(name); !ok {
		return fmt.Errorf("%w: reference %q on component %q", ErrNotFound, name, c.def.Name)
	}
	rr, ok := c.def.Content.(RefReceiver)
	if !ok {
		return fmt.Errorf("component %q declares references but content does not implement RefReceiver", c.def.Name)
	}
	rr.SetReference(name, target)
	return nil
}

// SetProperty pushes a property value into the content and records it in
// the definition for introspection.
func (c *Component) SetProperty(name string, value any) error {
	c.mu.Lock()
	if c.state == StateRemoved {
		c.mu.Unlock()
		return fmt.Errorf("%w: set property on %q", ErrBadState, c.def.Name)
	}
	if c.def.Properties == nil {
		c.def.Properties = make(map[string]any)
	}
	c.def.Properties[name] = value
	content := c.def.Content
	c.mu.Unlock()

	if pr, ok := content.(PropertyReceiver); ok {
		if err := pr.SetProperty(name, value); err != nil {
			return fmt.Errorf("component %q: property %q: %w", c.def.Name, name, err)
		}
	}
	return nil
}

// DeleteProperty removes a property record (the content keeps whatever
// value was last pushed). Used to roll back a SetProperty that introduced
// a previously-absent property.
func (c *Component) DeleteProperty(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.def.Properties, name)
}

// Property returns a property value recorded on the component.
func (c *Component) Property(name string) (any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.def.Properties[name]
	return v, ok
}

// recordWire registers the wire attached to one of this component's
// references.
func (c *Component) recordWire(w *Wire) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wires[w.Reference] = w
}

// dropWire forgets the wire attached to the named reference.
func (c *Component) dropWire(reference string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.wires, reference)
}

// WireFor returns the wire currently attached to the named reference.
func (c *Component) WireFor(reference string) (*Wire, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	w, ok := c.wires[reference]
	return w, ok
}

// Wires returns the component's outgoing wires sorted by reference name.
func (c *Component) Wires() []*Wire {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Wire, 0, len(c.wires))
	for _, w := range c.wires {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Reference < out[j].Reference })
	return out
}

// Wire records a reference-to-service connection between two components.
type Wire struct {
	// From is the path of the component owning the reference.
	From string
	// Reference is the reference name on From.
	Reference string
	// To is the path of the component providing the service.
	To string
	// Service is the service name on To.
	Service string
}

// String renders the wire as "from.ref -> to.svc".
func (w *Wire) String() string {
	return fmt.Sprintf("%s.%s -> %s.%s", w.From, w.Reference, w.To, w.Service)
}
