package component

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoContent is a minimal content echoing its payload and counting
// invocations; it records injected references and properties.
type echoContent struct {
	mu       sync.Mutex
	calls    int
	refs     map[string]Service
	props    map[string]any
	started  atomic.Bool
	startErr error
	stopErr  error
}

func newEchoContent() *echoContent {
	return &echoContent{refs: make(map[string]Service), props: make(map[string]any)}
}

func (e *echoContent) Invoke(ctx context.Context, service string, msg Message) (Message, error) {
	e.mu.Lock()
	e.calls++
	e.mu.Unlock()
	if msg.Op == "delegate" {
		e.mu.Lock()
		next := e.refs["next"]
		e.mu.Unlock()
		if next == nil {
			return Message{}, ErrRefUnwired
		}
		return next.Invoke(ctx, NewMessage("echo", msg.Payload))
	}
	return NewMessage("reply", fmt.Sprintf("%s:%v", service, msg.Payload)), nil
}

func (e *echoContent) SetReference(name string, target Service) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.refs[name] = target
}

func (e *echoContent) SetProperty(name string, value any) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.props[name] = value
	return nil
}

func (e *echoContent) OnStart(ctx context.Context) error {
	e.started.Store(true)
	return e.startErr
}

func (e *echoContent) OnStop(ctx context.Context) error {
	e.started.Store(false)
	return e.stopErr
}

func (e *echoContent) callCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

var (
	_ Content          = (*echoContent)(nil)
	_ RefReceiver      = (*echoContent)(nil)
	_ PropertyReceiver = (*echoContent)(nil)
	_ Lifecycle        = (*echoContent)(nil)
)

func echoDef(name string) Definition {
	return Definition{
		Name:       name,
		Type:       "test.echo",
		Services:   []string{"svc"},
		References: []Ref{{Name: "next", Required: false}},
		Content:    newEchoContent(),
	}
}

func mustAdd(t *testing.T, rt *Runtime, parent string, def Definition) *Component {
	t.Helper()
	c, err := rt.AddComponent(parent, def)
	if err != nil {
		t.Fatalf("AddComponent(%q, %q): %v", parent, def.Name, err)
	}
	return c
}

func mustStart(t *testing.T, rt *Runtime, path string) {
	t.Helper()
	if err := rt.Start(context.Background(), path); err != nil {
		t.Fatalf("Start(%q): %v", path, err)
	}
}

func TestComponentLifecycle(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	if got := c.State(); got != StateStopped {
		t.Fatalf("initial state = %v, want stopped", got)
	}
	mustStart(t, rt, "a")
	if got := c.State(); got != StateStarted {
		t.Fatalf("state after start = %v, want started", got)
	}
	content := c.Definition().Content.(*echoContent)
	if !content.started.Load() {
		t.Fatal("OnStart hook did not run")
	}
	if err := rt.Stop(context.Background(), "a"); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if got := c.State(); got != StateStopped {
		t.Fatalf("state after stop = %v, want stopped", got)
	}
	if content.started.Load() {
		t.Fatal("OnStop hook did not run")
	}
}

func TestStartIsIdempotent(t *testing.T) {
	rt := NewRuntime(nil)
	mustAdd(t, rt, "", echoDef("a"))
	mustStart(t, rt, "a")
	if err := rt.Start(context.Background(), "a"); err != nil {
		t.Fatalf("second Start: %v", err)
	}
	if err := rt.Stop(context.Background(), "a"); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if err := rt.Stop(context.Background(), "a"); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
}

func TestInvocationThroughEndpoint(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	mustStart(t, rt, "a")
	ep, err := c.ServiceEndpoint("svc")
	if err != nil {
		t.Fatalf("ServiceEndpoint: %v", err)
	}
	reply, err := ep.Invoke(context.Background(), NewMessage("echo", "hi"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if reply.Payload != "svc:hi" {
		t.Fatalf("reply payload = %v, want svc:hi", reply.Payload)
	}
}

func TestUndeclaredServiceRejected(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	if _, err := c.ServiceEndpoint("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("endpoint for undeclared service: err = %v, want ErrNotFound", err)
	}
}

func TestStoppedComponentBuffersInvocations(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	ep, err := c.ServiceEndpoint("svc")
	if err != nil {
		t.Fatalf("ServiceEndpoint: %v", err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := ep.Invoke(context.Background(), NewMessage("echo", 1))
		done <- err
	}()

	select {
	case err := <-done:
		t.Fatalf("invocation on stopped component returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	mustStart(t, rt, "a")
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("buffered invocation failed after start: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("buffered invocation was not released by Start")
	}
}

func TestStopWaitsForQuiescence(t *testing.T) {
	rt := NewRuntime(nil)
	release := make(chan struct{})
	entered := make(chan struct{})
	slow := ContentFunc(func(ctx context.Context, service string, msg Message) (Message, error) {
		close(entered)
		<-release
		return NewMessage("done", nil), nil
	})
	c := mustAdd(t, rt, "", Definition{Name: "slow", Type: "test.slow", Services: []string{"svc"}, Content: slow})
	mustStart(t, rt, "slow")
	ep, err := c.ServiceEndpoint("svc")
	if err != nil {
		t.Fatalf("ServiceEndpoint: %v", err)
	}

	invDone := make(chan struct{})
	go func() {
		defer close(invDone)
		if _, err := ep.Invoke(context.Background(), NewMessage("go", nil)); err != nil {
			t.Errorf("in-flight invocation failed: %v", err)
		}
	}()
	<-entered

	stopDone := make(chan error, 1)
	go func() { stopDone <- rt.Stop(context.Background(), "slow") }()
	select {
	case err := <-stopDone:
		t.Fatalf("Stop returned before quiescence: %v", err)
	case <-time.After(30 * time.Millisecond):
	}

	close(release)
	if err := <-stopDone; err != nil {
		t.Fatalf("Stop: %v", err)
	}
	<-invDone
}

func TestStopQuiescenceTimeout(t *testing.T) {
	rt := NewRuntime(nil)
	release := make(chan struct{})
	entered := make(chan struct{})
	slow := ContentFunc(func(ctx context.Context, service string, msg Message) (Message, error) {
		close(entered)
		<-release
		return Message{}, nil
	})
	c := mustAdd(t, rt, "", Definition{Name: "slow", Type: "test.slow", Services: []string{"svc"}, Content: slow})
	mustStart(t, rt, "slow")
	ep, _ := c.ServiceEndpoint("svc")
	go func() {
		_, _ = ep.Invoke(context.Background(), NewMessage("go", nil))
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := rt.Stop(ctx, "slow"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Stop with stuck invocation: err = %v, want deadline exceeded", err)
	}
	// The gate must have been reopened so the architecture is usable.
	if c.State() != StateStarted {
		t.Fatalf("state after failed stop = %v, want started", c.State())
	}
	close(release)
}

func TestRemovedComponentFailsInvocations(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	ep, err := c.ServiceEndpoint("svc")
	if err != nil {
		t.Fatalf("ServiceEndpoint: %v", err)
	}
	if err := rt.Remove("a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := ep.Invoke(context.Background(), NewMessage("echo", nil)); !errors.Is(err, ErrRemoved) {
		t.Fatalf("invoke on removed: err = %v, want ErrRemoved", err)
	}
	if rt.Exists("a") {
		t.Fatal("component still addressable after Remove")
	}
}

func TestRemoveStartedRefused(t *testing.T) {
	rt := NewRuntime(nil)
	mustAdd(t, rt, "", echoDef("a"))
	mustStart(t, rt, "a")
	if err := rt.Remove("a"); !errors.Is(err, ErrBadState) {
		t.Fatalf("Remove started: err = %v, want ErrBadState", err)
	}
}

func TestWireAndInvokeThroughReference(t *testing.T) {
	rt := NewRuntime(nil)
	a := mustAdd(t, rt, "", echoDef("a"))
	mustAdd(t, rt, "", echoDef("b"))
	if err := rt.Wire("a", "next", "b", "svc"); err != nil {
		t.Fatalf("Wire: %v", err)
	}
	mustStart(t, rt, "a")
	mustStart(t, rt, "b")
	ep, _ := a.ServiceEndpoint("svc")
	reply, err := ep.Invoke(context.Background(), NewMessage("delegate", "x"))
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if reply.Payload != "svc:x" {
		t.Fatalf("delegated reply = %v, want svc:x", reply.Payload)
	}
}

func TestDoubleWireRefused(t *testing.T) {
	rt := NewRuntime(nil)
	mustAdd(t, rt, "", echoDef("a"))
	mustAdd(t, rt, "", echoDef("b"))
	if err := rt.Wire("a", "next", "b", "svc"); err != nil {
		t.Fatalf("Wire: %v", err)
	}
	if err := rt.Wire("a", "next", "b", "svc"); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("second Wire: err = %v, want ErrAlreadyExists", err)
	}
}

func TestUnwireDisconnects(t *testing.T) {
	rt := NewRuntime(nil)
	a := mustAdd(t, rt, "", echoDef("a"))
	mustAdd(t, rt, "", echoDef("b"))
	if err := rt.Wire("a", "next", "b", "svc"); err != nil {
		t.Fatalf("Wire: %v", err)
	}
	if err := rt.Unwire("a", "next"); err != nil {
		t.Fatalf("Unwire: %v", err)
	}
	mustStart(t, rt, "a")
	ep, _ := a.ServiceEndpoint("svc")
	if _, err := ep.Invoke(context.Background(), NewMessage("delegate", "x")); !errors.Is(err, ErrRefUnwired) {
		t.Fatalf("invoke through unwired ref: err = %v, want ErrRefUnwired", err)
	}
	if err := rt.Unwire("a", "next"); !errors.Is(err, ErrRefUnwired) {
		t.Fatalf("double Unwire: err = %v, want ErrRefUnwired", err)
	}
}

func TestRemoveTargetOfWireRefused(t *testing.T) {
	rt := NewRuntime(nil)
	mustAdd(t, rt, "", echoDef("a"))
	mustAdd(t, rt, "", echoDef("b"))
	if err := rt.Wire("a", "next", "b", "svc"); err != nil {
		t.Fatalf("Wire: %v", err)
	}
	if err := rt.Remove("b"); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("Remove wired target: err = %v, want ErrIntegrity", err)
	}
	if err := rt.Unwire("a", "next"); err != nil {
		t.Fatalf("Unwire: %v", err)
	}
	if err := rt.Remove("b"); err != nil {
		t.Fatalf("Remove after unwire: %v", err)
	}
}

func TestCompositePromotionAndSwap(t *testing.T) {
	rt := NewRuntime(nil)
	cp, err := rt.AddComposite("ftm")
	if err != nil {
		t.Fatalf("AddComposite: %v", err)
	}
	mustAdd(t, rt, "ftm", echoDef("inner"))
	mustStart(t, rt, "ftm/inner")
	if err := cp.Promote("svc", "inner", "svc"); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	ep, err := cp.ServiceEndpoint("svc")
	if err != nil {
		t.Fatalf("composite endpoint: %v", err)
	}
	reply, err := ep.Invoke(context.Background(), NewMessage("echo", "q"))
	if err != nil {
		t.Fatalf("Invoke via promotion: %v", err)
	}
	if reply.Payload != "svc:q" {
		t.Fatalf("promoted reply = %v, want svc:q", reply.Payload)
	}

	// Swap the child behind the promotion: the held endpoint must follow.
	if err := rt.Stop(context.Background(), "ftm/inner"); err != nil {
		t.Fatalf("Stop inner: %v", err)
	}
	if err := cp.Demote("svc"); err != nil {
		t.Fatalf("Demote: %v", err)
	}
	if err := rt.Remove("ftm/inner"); err != nil {
		t.Fatalf("Remove inner: %v", err)
	}
	def2 := echoDef("inner2")
	mustAdd(t, rt, "ftm", def2)
	mustStart(t, rt, "ftm/inner2")
	if err := cp.Promote("svc", "inner2", "svc"); err != nil {
		t.Fatalf("re-Promote: %v", err)
	}
	reply, err = ep.Invoke(context.Background(), NewMessage("echo", "r"))
	if err != nil {
		t.Fatalf("Invoke after swap: %v", err)
	}
	if reply.Payload != "svc:r" {
		t.Fatalf("post-swap reply = %v, want svc:r", reply.Payload)
	}
}

func TestCompositeBoundaryBuffersDuringStop(t *testing.T) {
	rt := NewRuntime(nil)
	cp, err := rt.AddComposite("ftm")
	if err != nil {
		t.Fatalf("AddComposite: %v", err)
	}
	mustAdd(t, rt, "ftm", echoDef("inner"))
	mustStart(t, rt, "ftm/inner")
	if err := cp.Promote("svc", "inner", "svc"); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if err := rt.Stop(context.Background(), "ftm"); err != nil {
		t.Fatalf("Stop composite: %v", err)
	}
	ep, _ := cp.ServiceEndpoint("svc")
	done := make(chan error, 1)
	go func() {
		_, err := ep.Invoke(context.Background(), NewMessage("echo", 1))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("boundary call completed on stopped composite: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	mustStart(t, rt, "ftm")
	if err := <-done; err != nil {
		t.Fatalf("buffered boundary call failed: %v", err)
	}
}

func TestPropertiesPushedToContent(t *testing.T) {
	rt := NewRuntime(nil)
	def := echoDef("a")
	def.Properties = map[string]any{"role": "primary"}
	c := mustAdd(t, rt, "", def)
	content := c.Definition().Content.(*echoContent)
	content.mu.Lock()
	got := content.props["role"]
	content.mu.Unlock()
	if got != "primary" {
		t.Fatalf("deploy-time property = %v, want primary", got)
	}
	if err := rt.SetProperty("a", "role", "backup"); err != nil {
		t.Fatalf("SetProperty: %v", err)
	}
	content.mu.Lock()
	got = content.props["role"]
	content.mu.Unlock()
	if got != "backup" {
		t.Fatalf("reconfigured property = %v, want backup", got)
	}
	if v, ok := c.Property("role"); !ok || v != "backup" {
		t.Fatalf("introspected property = %v/%v, want backup/true", v, ok)
	}
}

func TestIntegrityDetectsUnwiredRequiredReference(t *testing.T) {
	rt := NewRuntime(nil)
	def := echoDef("a")
	def.References = []Ref{{Name: "next", Required: true}}
	mustAdd(t, rt, "", def)
	mustStart(t, rt, "a")
	violations := rt.CheckIntegrity()
	if len(violations) != 1 {
		t.Fatalf("violations = %v, want exactly one", violations)
	}
	mustAdd(t, rt, "", echoDef("b"))
	if err := rt.Wire("a", "next", "b", "svc"); err != nil {
		t.Fatalf("Wire: %v", err)
	}
	if violations := rt.CheckIntegrity(); len(violations) != 0 {
		t.Fatalf("violations after wiring = %v, want none", violations)
	}
}

func TestDuplicateNameRefused(t *testing.T) {
	rt := NewRuntime(nil)
	mustAdd(t, rt, "", echoDef("a"))
	if _, err := rt.AddComponent("", echoDef("a")); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate add: err = %v, want ErrAlreadyExists", err)
	}
}

func TestNestedPathsResolve(t *testing.T) {
	rt := NewRuntime(nil)
	if _, err := rt.AddComposite("outer"); err != nil {
		t.Fatalf("AddComposite outer: %v", err)
	}
	if _, err := rt.AddComposite("outer/inner"); err != nil {
		t.Fatalf("AddComposite outer/inner: %v", err)
	}
	mustAdd(t, rt, "outer/inner", echoDef("leaf"))
	if _, err := rt.Lookup("outer/inner/leaf"); err != nil {
		t.Fatalf("Lookup nested: %v", err)
	}
	if _, err := rt.Lookup("outer/missing/leaf"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Lookup missing: err = %v, want ErrNotFound", err)
	}
}

func TestDescribeListsArchitecture(t *testing.T) {
	rt := NewRuntime(nil)
	if _, err := rt.AddComposite("ftm"); err != nil {
		t.Fatalf("AddComposite: %v", err)
	}
	mustAdd(t, rt, "ftm", echoDef("proto"))
	mustAdd(t, rt, "ftm", echoDef("sync"))
	if err := rt.Wire("ftm/proto", "next", "ftm/sync", "svc"); err != nil {
		t.Fatalf("Wire: %v", err)
	}
	d, err := rt.Describe("ftm")
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	paths := d.ComponentPaths()
	if len(paths) != 2 || paths[0] != "ftm/proto" || paths[1] != "ftm/sync" {
		t.Fatalf("component paths = %v", paths)
	}
	text := d.String()
	for _, want := range []string{"ftm/proto", "ftm/sync", "ftm/proto.next -> ftm/sync.svc"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Describe output missing %q:\n%s", want, text)
		}
	}
}

func TestConcurrentInvocationsAreSafe(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	mustStart(t, rt, "a")
	ep, _ := c.ServiceEndpoint("svc")
	const n = 64
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			if _, err := ep.Invoke(context.Background(), NewMessage("echo", i)); err != nil {
				t.Errorf("Invoke %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := c.Definition().Content.(*echoContent).callCount(); got != n {
		t.Fatalf("call count = %d, want %d", got, n)
	}
}
