package component

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Runtime is the reflective membrane of one replica: a rooted tree of
// composites and components addressed by slash-separated paths, a type
// registry for deploying components from transition packages, and the
// reconfiguration operations the paper identifies as the minimal API for
// fine-grained adaptation (lifecycle control, binding control).
type Runtime struct {
	// mu serializes structural reconfiguration (add/remove/wire/unwire)
	// against whole-tree reads (Wires, CheckIntegrity). Pure lookups go
	// straight to the composites' own read locks.
	mu       sync.RWMutex
	root     *Composite
	registry *Registry
}

// NewRuntime returns a runtime with an empty, started root composite and
// the given type registry (a fresh one when nil).
func NewRuntime(registry *Registry) *Runtime {
	if registry == nil {
		registry = NewRegistry()
	}
	rt := &Runtime{root: newComposite(""), registry: registry}
	rt.root.g.openGate()
	rt.root.state = StateStarted
	return rt
}

// Registry returns the runtime's component type registry.
func (rt *Runtime) Registry() *Registry { return rt.registry }

// Root returns the root composite.
func (rt *Runtime) Root() *Composite { return rt.root }

// splitPath splits "a/b/c" into segments, rejecting empty segments.
func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil
	}
	segs := strings.Split(path, "/")
	for _, s := range segs {
		if s == "" {
			return nil, fmt.Errorf("%w: empty segment in path %q", ErrNotFound, path)
		}
	}
	return segs, nil
}

// find resolves a path to a node. The empty path resolves to the root.
func (rt *Runtime) find(path string) (node, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	var cur node = rt.root
	for i, s := range segs {
		cp, ok := cur.(*Composite)
		if !ok {
			return nil, fmt.Errorf("%w: %q is not a composite", ErrNotFound, strings.Join(segs[:i], "/"))
		}
		next, ok := cp.child(s)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, strings.Join(segs[:i+1], "/"))
		}
		cur = next
	}
	return cur, nil
}

// Lookup returns the component at path.
func (rt *Runtime) Lookup(path string) (*Component, error) {
	n, err := rt.find(path)
	if err != nil {
		return nil, err
	}
	c, ok := n.(*Component)
	if !ok {
		return nil, fmt.Errorf("%w: %q is not a component", ErrNotFound, path)
	}
	return c, nil
}

// LookupComposite returns the composite at path ("" is the root).
func (rt *Runtime) LookupComposite(path string) (*Composite, error) {
	n, err := rt.find(path)
	if err != nil {
		return nil, err
	}
	cp, ok := n.(*Composite)
	if !ok {
		return nil, fmt.Errorf("%w: %q is not a composite", ErrNotFound, path)
	}
	return cp, nil
}

// Exists reports whether a node exists at path.
func (rt *Runtime) Exists(path string) bool {
	_, err := rt.find(path)
	return err == nil
}

// parentOf resolves the parent composite and leaf name of path.
func (rt *Runtime) parentOf(path string) (*Composite, string, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, "", err
	}
	if len(segs) == 0 {
		return nil, "", fmt.Errorf("%w: root has no parent", ErrNotFound)
	}
	parent := strings.Join(segs[:len(segs)-1], "/")
	cp, err := rt.LookupComposite(parent)
	if err != nil {
		return nil, "", err
	}
	return cp, segs[len(segs)-1], nil
}

// AddComposite creates an empty composite at path and starts its
// boundary.
func (rt *Runtime) AddComposite(path string) (*Composite, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	parent, name, err := rt.parentOf(path)
	if err != nil {
		return nil, err
	}
	cp := newComposite(name)
	if err := parent.addChild(cp); err != nil {
		return nil, err
	}
	if err := cp.Start(context.Background()); err != nil {
		return nil, err
	}
	return cp, nil
}

// AddComponent instantiates def as a child of the composite at
// parentPath. When def.Content is nil the component is deployed from its
// type: the bundle is verified and linked against the registry and the
// factory constructs the content — this is the deployment path taken by
// transition packages. The new component is left Stopped.
func (rt *Runtime) AddComponent(parentPath string, def Definition) (*Component, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.addComponentLocked(parentPath, def)
}

func (rt *Runtime) addComponentLocked(parentPath string, def Definition) (*Component, error) {
	if def.Name == "" {
		return nil, fmt.Errorf("%w: component definition without name", ErrBadState)
	}
	parent, err := rt.LookupComposite(parentPath)
	if err != nil {
		return nil, err
	}
	if def.Content == nil {
		if err := rt.registry.Link(def.Bundle); err != nil {
			return nil, err
		}
		factory, err := rt.registry.Resolve(def.Type)
		if err != nil {
			return nil, err
		}
		content, err := factory(def.Properties)
		if err != nil {
			return nil, fmt.Errorf("component %q: factory for type %q: %w", def.Name, def.Type, err)
		}
		def.Content = content
	}
	c := newComponent(def)
	if pr, ok := def.Content.(PropertyReceiver); ok {
		for k, v := range def.Properties {
			if err := pr.SetProperty(k, v); err != nil {
				return nil, fmt.Errorf("component %q: property %q: %w", def.Name, k, err)
			}
		}
	}
	if err := parent.addChild(c); err != nil {
		return nil, err
	}
	return c, nil
}

// Remove deletes the stopped node at path. Removal is refused while other
// components hold wires to the node, or while a component is started —
// the same integrity discipline FScript enforces.
func (rt *Runtime) Remove(path string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.removeLocked(path)
}

func (rt *Runtime) removeLocked(path string) error {
	n, err := rt.find(path)
	if err != nil {
		return err
	}
	if n.State() == StateStarted {
		return fmt.Errorf("%w: remove started node %q", ErrBadState, path)
	}
	norm := normalizePath(path)
	inSubtree := func(p string) bool {
		return p == norm || strings.HasPrefix(p, norm+"/")
	}
	for _, w := range rt.allWiresLocked() {
		// Wires wholly inside the removed subtree disappear with it; a
		// wire reaching in from outside makes removal inconsistent.
		if inSubtree(w.To) && !inSubtree(w.From) {
			return fmt.Errorf("%w: wire %s still targets %q", ErrIntegrity, w, path)
		}
		if c, ok := n.(*Component); ok && w.From == norm {
			// Outgoing wires of the removed component disappear with it;
			// silently discard their records.
			c.dropWire(w.Reference)
		}
	}
	parent, name, err := rt.parentOf(path)
	if err != nil {
		return err
	}
	removed, err := parent.removeChild(name)
	if err != nil {
		return err
	}
	removed.markRemoved()
	return nil
}

// Start opens the node at path.
func (rt *Runtime) Start(ctx context.Context, path string) error {
	n, err := rt.find(path)
	if err != nil {
		return err
	}
	return n.Start(ctx)
}

// Stop drains and closes the node at path.
func (rt *Runtime) Stop(ctx context.Context, path string) error {
	n, err := rt.find(path)
	if err != nil {
		return err
	}
	return n.Stop(ctx)
}

// normalizePath canonicalizes a path for wire bookkeeping.
func normalizePath(path string) string {
	return strings.Trim(path, "/")
}

// Wire connects fromPath's reference to toPath's service. The injected
// proxy resolves the target endpoint at wire time; gating at the target
// keeps invocations safe across that component's lifecycle changes.
func (rt *Runtime) Wire(fromPath, reference, toPath, service string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.wireLocked(fromPath, reference, toPath, service)
}

func (rt *Runtime) wireLocked(fromPath, reference, toPath, service string) error {
	from, err := rt.Lookup(fromPath)
	if err != nil {
		return err
	}
	target, err := rt.find(toPath)
	if err != nil {
		return err
	}
	if _, ok := from.WireFor(reference); ok {
		return fmt.Errorf("%w: reference %q on %q is already wired", ErrAlreadyExists, reference, fromPath)
	}
	ep, err := target.endpoint(service)
	if err != nil {
		return err
	}
	if err := from.setReference(reference, ep); err != nil {
		return err
	}
	from.recordWire(&Wire{
		From:      normalizePath(fromPath),
		Reference: reference,
		To:        normalizePath(toPath),
		Service:   service,
	})
	return nil
}

// Unwire disconnects fromPath's reference.
func (rt *Runtime) Unwire(fromPath, reference string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.unwireLocked(fromPath, reference)
}

func (rt *Runtime) unwireLocked(fromPath, reference string) error {
	from, err := rt.Lookup(fromPath)
	if err != nil {
		return err
	}
	if _, ok := from.WireFor(reference); !ok {
		return fmt.Errorf("%w: reference %q on %q", ErrRefUnwired, reference, fromPath)
	}
	if err := from.setReference(reference, nil); err != nil {
		return err
	}
	from.dropWire(reference)
	return nil
}

// SetProperty pushes a property to the component at path.
func (rt *Runtime) SetProperty(path, name string, value any) error {
	c, err := rt.Lookup(path)
	if err != nil {
		return err
	}
	return c.SetProperty(name, value)
}

// walk visits every node under (and including) the composite at prefix.
func walk(prefix string, n node, visit func(path string, n node)) {
	visit(prefix, n)
	cp, ok := n.(*Composite)
	if !ok {
		return
	}
	for _, name := range cp.Children() {
		ch, ok := cp.child(name)
		if !ok {
			continue
		}
		childPath := name
		if prefix != "" {
			childPath = prefix + "/" + name
		}
		walk(childPath, ch, visit)
	}
}

// allWiresLocked collects every wire in the tree, sorted by origin.
func (rt *Runtime) allWiresLocked() []*Wire {
	var out []*Wire
	walk("", rt.root, func(path string, n node) {
		if c, ok := n.(*Component); ok {
			out = append(out, c.Wires()...)
		}
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].Reference < out[j].Reference
	})
	return out
}

// Wires returns every wire in the runtime.
func (rt *Runtime) Wires() []*Wire {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.allWiresLocked()
}

// Violation describes one failed integrity constraint.
type Violation struct {
	Path   string
	Detail string
}

// String renders the violation.
func (v Violation) String() string { return v.Path + ": " + v.Detail }

// CheckIntegrity verifies the architecture's integrity constraints: every
// started component has all required references wired, and every wire
// targets an existing node that provides the named service. It returns
// all violations found.
func (rt *Runtime) CheckIntegrity() []Violation {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	var out []Violation
	walk("", rt.root, func(path string, n node) {
		c, ok := n.(*Component)
		if !ok {
			return
		}
		def := c.Definition()
		if c.State() == StateStarted {
			for _, ref := range def.References {
				if !ref.Required {
					continue
				}
				if _, wired := c.WireFor(ref.Name); !wired {
					out = append(out, Violation{
						Path:   path,
						Detail: fmt.Sprintf("required reference %q of started component is unwired", ref.Name),
					})
				}
			}
		}
		for _, w := range c.Wires() {
			target, err := rt.find(w.To)
			if err != nil {
				out = append(out, Violation{Path: path, Detail: fmt.Sprintf("wire %s targets missing node", w)})
				continue
			}
			if target.State() == StateRemoved {
				out = append(out, Violation{Path: path, Detail: fmt.Sprintf("wire %s targets removed node", w)})
				continue
			}
			switch t := target.(type) {
			case *Component:
				if !t.Definition().HasService(w.Service) {
					out = append(out, Violation{Path: path, Detail: fmt.Sprintf("wire %s targets undeclared service", w)})
				}
			case *Composite:
				found := false
				for _, p := range t.Promotions() {
					if p.Service == w.Service {
						found = true
						break
					}
				}
				if !found {
					out = append(out, Violation{Path: path, Detail: fmt.Sprintf("wire %s targets unpromoted service", w)})
				}
			}
		}
	})
	return out
}
