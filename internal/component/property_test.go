package component

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// reconfigMachine drives random-but-valid reconfiguration sequences
// against a runtime, used by the integrity property test.
type reconfigMachine struct {
	t       *testing.T
	rt      *Runtime
	rng     *rand.Rand
	nextID  int
	members []string // live component paths
}

func (m *reconfigMachine) randomMember() (string, bool) {
	if len(m.members) == 0 {
		return "", false
	}
	return m.members[m.rng.Intn(len(m.members))], true
}

// step performs one random operation from the runtime's reconfiguration
// vocabulary. Operations that are invalid in the current architecture
// are allowed to fail; what must never happen is a violated integrity
// constraint afterwards.
func (m *reconfigMachine) step(ctx context.Context) {
	switch m.rng.Intn(6) {
	case 0: // add
		name := fmt.Sprintf("c%d", m.nextID)
		m.nextID++
		if _, err := m.rt.AddComponent("", echoDef(name)); err != nil {
			m.t.Fatalf("add %s: %v", name, err)
		}
		m.members = append(m.members, name)
	case 1: // remove (must be stopped and untargeted; failures tolerated)
		path, ok := m.randomMember()
		if !ok {
			return
		}
		_ = m.rt.Stop(ctx, path)
		if err := m.rt.Remove(path); err == nil {
			for i, p := range m.members {
				if p == path {
					m.members = append(m.members[:i], m.members[i+1:]...)
					break
				}
			}
		} else if !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrBadState) {
			m.t.Fatalf("remove %s: unexpected error class %v", path, err)
		}
	case 2: // wire
		from, ok := m.randomMember()
		if !ok {
			return
		}
		to, _ := m.randomMember()
		err := m.rt.Wire(from, "next", to, "svc")
		if err != nil && !errors.Is(err, ErrAlreadyExists) {
			m.t.Fatalf("wire %s->%s: %v", from, to, err)
		}
	case 3: // unwire
		from, ok := m.randomMember()
		if !ok {
			return
		}
		err := m.rt.Unwire(from, "next")
		if err != nil && !errors.Is(err, ErrRefUnwired) {
			m.t.Fatalf("unwire %s: %v", from, err)
		}
	case 4: // start
		path, ok := m.randomMember()
		if !ok {
			return
		}
		if err := m.rt.Start(ctx, path); err != nil {
			m.t.Fatalf("start %s: %v", path, err)
		}
	case 5: // stop
		path, ok := m.randomMember()
		if !ok {
			return
		}
		if err := m.rt.Stop(ctx, path); err != nil {
			m.t.Fatalf("stop %s: %v", path, err)
		}
	}
}

// TestRandomReconfigurationPreservesIntegrity is the architecture
// invariant property: any sequence of runtime reconfiguration operations
// — whatever succeeds or fails individually — leaves the component graph
// without integrity violations, and live components keep answering.
func TestRandomReconfigurationPreservesIntegrity(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			m := &reconfigMachine{t: t, rt: NewRuntime(nil), rng: rand.New(rand.NewSource(seed))}
			for step := 0; step < 300; step++ {
				m.step(ctx)
				// The optional 'next' reference means no violation is
				// ever acceptable mid-sequence either.
				if violations := m.rt.CheckIntegrity(); len(violations) != 0 {
					t.Fatalf("step %d: integrity violated: %v", step, violations)
				}
			}
			// Every started member still answers.
			for _, path := range m.members {
				c, err := m.rt.Lookup(path)
				if err != nil {
					t.Fatalf("lookup %s: %v", path, err)
				}
				if c.State() != StateStarted {
					continue
				}
				ep, err := c.ServiceEndpoint("svc")
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ep.Invoke(ctx, NewMessage("echo", path)); err != nil {
					t.Fatalf("invoke %s: %v", path, err)
				}
			}
		})
	}
}
