package component

import (
	"context"
	"fmt"
	"sort"
	"sync"
)

// node is the common shape of composite children.
type node interface {
	Name() string
	State() State
	Start(ctx context.Context) error
	Stop(ctx context.Context) error
	// endpoint returns the invocable endpoint for a provided (possibly
	// promoted) service.
	endpoint(service string) (Service, error)
	markRemoved()
}

var (
	_ node = (*Component)(nil)
	_ node = (*Composite)(nil)
)

func (c *Component) endpoint(service string) (Service, error) {
	return c.ServiceEndpoint(service)
}

// Promotion exposes a child's service on the composite boundary.
type Promotion struct {
	// Service is the name under which the composite exposes the service.
	Service string
	// Child is the name of the providing child.
	Child string
	// ChildService is the service name on the child.
	ChildService string
}

// Composite is a hierarchical container of components and nested
// composites. It has its own boundary gate so that a reconfiguration can
// atomically buffer external traffic while rearranging the inside.
type Composite struct {
	name string
	g    *gate

	// mu is read-mostly: every boundary invocation resolves promotions
	// and children under a read lock, while reconfiguration (add/remove
	// child, promote/demote, lifecycle) takes the write lock.
	mu         sync.RWMutex
	state      State
	children   map[string]node
	promotions map[string]Promotion
}

func newComposite(name string) *Composite {
	return &Composite{
		name:       name,
		g:          newGate(),
		state:      StateStopped,
		children:   make(map[string]node),
		promotions: make(map[string]Promotion),
	}
}

// Name returns the composite's name inside its parent.
func (cp *Composite) Name() string { return cp.name }

// State returns the composite boundary state.
func (cp *Composite) State() State {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	return cp.state
}

// Start opens the composite boundary gate.
func (cp *Composite) Start(ctx context.Context) error {
	cp.mu.Lock()
	if cp.state == StateRemoved {
		cp.mu.Unlock()
		return fmt.Errorf("%w: start composite %q", ErrBadState, cp.name)
	}
	cp.state = StateStarted
	cp.mu.Unlock()
	cp.g.openGate()
	return nil
}

// Stop closes the boundary gate after draining in-flight boundary
// invocations. Inner components keep their own states.
func (cp *Composite) Stop(ctx context.Context) error {
	cp.mu.Lock()
	if cp.state == StateRemoved {
		cp.mu.Unlock()
		return fmt.Errorf("%w: stop composite %q", ErrBadState, cp.name)
	}
	cp.mu.Unlock()
	if err := cp.g.close(ctx); err != nil {
		cp.g.openGate()
		return fmt.Errorf("composite %q: %w", cp.name, err)
	}
	cp.mu.Lock()
	cp.state = StateStopped
	cp.mu.Unlock()
	return nil
}

func (cp *Composite) markRemoved() {
	cp.mu.Lock()
	cp.state = StateRemoved
	children := make([]node, 0, len(cp.children))
	for _, ch := range cp.children {
		children = append(children, ch)
	}
	cp.mu.Unlock()
	cp.g.remove()
	for _, ch := range children {
		ch.markRemoved()
	}
}

// Promote exposes child's childService as service on the composite
// boundary.
func (cp *Composite) Promote(service, child, childService string) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, ok := cp.children[child]; !ok {
		return fmt.Errorf("%w: child %q in composite %q", ErrNotFound, child, cp.name)
	}
	if _, ok := cp.promotions[service]; ok {
		return fmt.Errorf("%w: promotion %q in composite %q", ErrAlreadyExists, service, cp.name)
	}
	cp.promotions[service] = Promotion{Service: service, Child: child, ChildService: childService}
	return nil
}

// Demote removes a promoted service from the boundary.
func (cp *Composite) Demote(service string) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if _, ok := cp.promotions[service]; !ok {
		return fmt.Errorf("%w: promotion %q in composite %q", ErrNotFound, service, cp.name)
	}
	delete(cp.promotions, service)
	return nil
}

// Promotions returns the boundary promotions sorted by service name.
func (cp *Composite) Promotions() []Promotion {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	out := make([]Promotion, 0, len(cp.promotions))
	for _, p := range cp.promotions {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Service < out[j].Service })
	return out
}

// endpoint resolves a promoted boundary service. The returned endpoint
// re-resolves the promotion on every call, so re-pointing a promotion to
// a replacement child takes effect immediately — that is what allows a
// differential transition to swap a brick without touching its callers.
func (cp *Composite) endpoint(service string) (Service, error) {
	cp.mu.RLock()
	_, ok := cp.promotions[service]
	cp.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: promoted service %q on composite %q", ErrNotFound, service, cp.name)
	}
	return ServiceFunc(func(ctx context.Context, msg Message) (Message, error) {
		if err := cp.g.enter(ctx); err != nil {
			return Message{}, fmt.Errorf("composite %q service %q: %w", cp.name, service, err)
		}
		defer cp.g.leave()

		cp.mu.RLock()
		p, ok := cp.promotions[service]
		var child node
		if ok {
			child = cp.children[p.Child]
		}
		cp.mu.RUnlock()
		if !ok || child == nil {
			return Message{}, fmt.Errorf("%w: promoted service %q on composite %q", ErrNotFound, service, cp.name)
		}
		ep, err := child.endpoint(p.ChildService)
		if err != nil {
			return Message{}, err
		}
		return ep.Invoke(ctx, msg)
	}), nil
}

// ServiceEndpoint returns the invocable endpoint of a promoted boundary
// service.
func (cp *Composite) ServiceEndpoint(service string) (Service, error) {
	return cp.endpoint(service)
}

// child returns the named child.
func (cp *Composite) child(name string) (node, bool) {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	ch, ok := cp.children[name]
	return ch, ok
}

// addChild inserts a child node.
func (cp *Composite) addChild(n node) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.state == StateRemoved {
		return fmt.Errorf("%w: add into removed composite %q", ErrBadState, cp.name)
	}
	if _, ok := cp.children[n.Name()]; ok {
		return fmt.Errorf("%w: %q in composite %q", ErrAlreadyExists, n.Name(), cp.name)
	}
	cp.children[n.Name()] = n
	return nil
}

// removeChild deletes a child node and any promotions pointing at it.
func (cp *Composite) removeChild(name string) (node, error) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ch, ok := cp.children[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q in composite %q", ErrNotFound, name, cp.name)
	}
	delete(cp.children, name)
	for svc, p := range cp.promotions {
		if p.Child == name {
			delete(cp.promotions, svc)
		}
	}
	return ch, nil
}

// Children returns the child names, sorted.
func (cp *Composite) Children() []string {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	out := make([]string, 0, len(cp.children))
	for name := range cp.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Components returns the direct child components, sorted by name.
func (cp *Composite) Components() []*Component {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	out := make([]*Component, 0, len(cp.children))
	for _, ch := range cp.children {
		if c, ok := ch.(*Component); ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Composites returns the direct child composites, sorted by name.
func (cp *Composite) Composites() []*Composite {
	cp.mu.RLock()
	defer cp.mu.RUnlock()
	out := make([]*Composite, 0, len(cp.children))
	for _, ch := range cp.children {
		if c, ok := ch.(*Composite); ok {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}
