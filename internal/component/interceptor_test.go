package component

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestInterceptorOrderAndShortCircuit(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	mustStart(t, rt, "a")

	var mu sync.Mutex
	var trace []string
	logStep := func(name string) Interceptor {
		return Interceptor{
			Name: name,
			Around: func(ctx context.Context, service string, msg Message, next Invoker) (Message, error) {
				mu.Lock()
				trace = append(trace, name+">")
				mu.Unlock()
				reply, err := next(ctx, msg)
				mu.Lock()
				trace = append(trace, "<"+name)
				mu.Unlock()
				return reply, err
			},
		}
	}
	if err := c.AddInterceptor(logStep("outer")); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInterceptor(logStep("inner")); err != nil {
		t.Fatal(err)
	}

	ep, _ := c.ServiceEndpoint("svc")
	if _, err := ep.Invoke(context.Background(), NewMessage("echo", 1)); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	got := strings.Join(trace, " ")
	mu.Unlock()
	if got != "outer> inner> <inner <outer" {
		t.Fatalf("trace = %q", got)
	}

	// A short-circuiting interceptor blocks the content.
	deny := Interceptor{
		Name: "deny",
		Around: func(ctx context.Context, service string, msg Message, next Invoker) (Message, error) {
			return Message{}, errors.New("denied by policy")
		},
	}
	if err := c.AddInterceptor(deny); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Invoke(context.Background(), NewMessage("echo", 2)); err == nil {
		t.Fatal("policy interceptor did not block")
	}
	if err := c.RemoveInterceptor("deny"); err != nil {
		t.Fatal(err)
	}
	if _, err := ep.Invoke(context.Background(), NewMessage("echo", 3)); err != nil {
		t.Fatalf("invocation after removal: %v", err)
	}
}

func TestInterceptorValidation(t *testing.T) {
	rt := NewRuntime(nil)
	c := mustAdd(t, rt, "", echoDef("a"))
	if err := c.AddInterceptor(Interceptor{}); err == nil {
		t.Fatal("nameless interceptor accepted")
	}
	ok := Interceptor{Name: "x", Around: func(ctx context.Context, s string, m Message, n Invoker) (Message, error) {
		return n(ctx, m)
	}}
	if err := c.AddInterceptor(ok); err != nil {
		t.Fatal(err)
	}
	if err := c.AddInterceptor(ok); !errors.Is(err, ErrAlreadyExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if err := c.RemoveInterceptor("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("remove ghost: %v", err)
	}
	if got := c.Interceptors(); len(got) != 1 || got[0] != "x" {
		t.Fatalf("Interceptors = %v", got)
	}
}

func TestInvocationMetrics(t *testing.T) {
	rt := NewRuntime(nil)
	def := echoDef("a")
	slow := ContentFunc(func(ctx context.Context, service string, msg Message) (Message, error) {
		time.Sleep(time.Millisecond)
		if msg.Op == "boom" {
			return Message{}, errors.New("kaput")
		}
		return NewMessage("ok", nil), nil
	})
	def.Content = slow
	c := mustAdd(t, rt, "", def)
	mustStart(t, rt, "a")

	metrics := NewInvocationMetrics()
	if err := c.AddInterceptor(metrics.Interceptor("metrics")); err != nil {
		t.Fatal(err)
	}
	ep, _ := c.ServiceEndpoint("svc")
	for i := 0; i < 5; i++ {
		if _, err := ep.Invoke(context.Background(), NewMessage("echo", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ep.Invoke(context.Background(), NewMessage("boom", nil)); err == nil {
		t.Fatal("want error")
	}

	snap := metrics.Snapshot()
	svc := snap["svc"]
	if svc.Invocations != 6 || svc.Errors != 1 {
		t.Fatalf("metrics = %+v", svc)
	}
	if svc.Mean() < time.Millisecond {
		t.Fatalf("mean latency = %v, want >= 1ms", svc.Mean())
	}
	if metrics.TotalInvocations() != 6 {
		t.Fatalf("total = %d", metrics.TotalInvocations())
	}
	if metrics.BusyTime() < 6*time.Millisecond {
		t.Fatalf("busy = %v", metrics.BusyTime())
	}
	if got := metrics.Services(); len(got) != 1 || got[0] != "svc" {
		t.Fatalf("services = %v", got)
	}

	// The interceptor shows up in introspection.
	d, err := rt.Describe("")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(d.String(), "interceptors: metrics") {
		t.Fatalf("describe missing interceptor:\n%s", d)
	}
}

func TestEmptyMetricsMean(t *testing.T) {
	var m ServiceMetrics
	if m.Mean() != 0 {
		t.Fatal("zero-division in Mean")
	}
}
