// Package component implements a reflective component model in the spirit
// of SCA/FraSCAti: hierarchical composites of components exposing named
// services and references connected by wires, with runtime introspection
// and consistent dynamic reconfiguration.
//
// The model is deliberately uniform: every service is invoked through the
// single Service interface. That uniformity is what makes the runtime
// reflective — wires, lifecycle gates (quiescence) and reconfiguration
// scripts can manipulate any binding without per-interface adapters.
package component

import "context"

// Message is the uniform unit of exchange between component services.
// Op selects an operation on the target service; Payload carries the
// operation argument, and Meta carries small string annotations (request
// ids, replica roles, ...).
type Message struct {
	Op      string
	Payload any
	Meta    map[string]string
}

// NewMessage returns a Message for op carrying payload.
func NewMessage(op string, payload any) Message {
	return Message{Op: op, Payload: payload}
}

// WithMeta returns a copy of m with key=value added to its metadata.
// The original message is not modified.
func (m Message) WithMeta(key, value string) Message {
	meta := make(map[string]string, len(m.Meta)+1)
	for k, v := range m.Meta {
		meta[k] = v
	}
	meta[key] = value
	m.Meta = meta
	return m
}

// Meta returns the metadata value for key, or "" when absent.
func (m Message) MetaValue(key string) string {
	return m.Meta[key]
}

// Service is the uniform invocation interface implemented by every
// component service endpoint and every wire proxy.
type Service interface {
	Invoke(ctx context.Context, msg Message) (Message, error)
}

// ServiceFunc adapts a function to the Service interface.
type ServiceFunc func(ctx context.Context, msg Message) (Message, error)

// Invoke calls f.
func (f ServiceFunc) Invoke(ctx context.Context, msg Message) (Message, error) {
	return f(ctx, msg)
}

var _ Service = (ServiceFunc)(nil)
