package component

import (
	"fmt"
	"sort"
	"strings"
)

// Description is a serializable snapshot of a subtree of the component
// architecture, produced by introspection. It backs the paper's Figure 6
// (component architecture of an FTM) and the live derivation of Table 2.
type Description struct {
	Path         string
	Kind         string // "component" or "composite"
	Type         string
	State        string
	Services     []string
	References   []string
	Properties   map[string]string
	Wires        []string
	Promotions   []string
	Interceptors []string
	Children     []Description
}

// Describe produces a Description of the subtree rooted at path.
func (rt *Runtime) Describe(path string) (Description, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	n, err := rt.find(path)
	if err != nil {
		return Description{}, err
	}
	return describeNode(normalizePath(path), n), nil
}

func describeNode(path string, n node) Description {
	switch t := n.(type) {
	case *Component:
		def := t.Definition()
		d := Description{
			Path:     path,
			Kind:     "component",
			Type:     def.Type,
			State:    t.State().String(),
			Services: append([]string(nil), def.Services...),
		}
		for _, r := range def.References {
			suffix := ""
			if r.Required {
				suffix = " (required)"
			}
			d.References = append(d.References, r.Name+suffix)
		}
		if len(def.Properties) > 0 {
			d.Properties = make(map[string]string, len(def.Properties))
			for k, v := range def.Properties {
				d.Properties[k] = renderPropertyValue(v)
			}
		}
		for _, w := range t.Wires() {
			d.Wires = append(d.Wires, w.String())
		}
		d.Interceptors = t.Interceptors()
		return d
	case *Composite:
		d := Description{
			Path:  path,
			Kind:  "composite",
			State: t.State().String(),
		}
		for _, p := range t.Promotions() {
			d.Promotions = append(d.Promotions, fmt.Sprintf("%s => %s.%s", p.Service, p.Child, p.ChildService))
		}
		for _, name := range t.Children() {
			ch, ok := t.child(name)
			if !ok {
				continue
			}
			childPath := name
			if path != "" {
				childPath = path + "/" + name
			}
			d.Children = append(d.Children, describeNode(childPath, ch))
		}
		sort.Slice(d.Children, func(i, j int) bool { return d.Children[i].Path < d.Children[j].Path })
		return d
	default:
		return Description{Path: path, Kind: "unknown"}
	}
}

// renderPropertyValue keeps introspection output readable: scalar
// configuration prints literally, injected runtime objects print as an
// opaque type tag.
func renderPropertyValue(v any) string {
	switch t := v.(type) {
	case nil:
		return "<nil>"
	case string:
		return t
	case bool, int, int8, int16, int32, int64, uint, uint8, uint16, uint32, uint64, float32, float64:
		return fmt.Sprint(t)
	case fmt.Stringer:
		return t.String()
	default:
		return fmt.Sprintf("<%T>", v)
	}
}

// String renders the description as an indented architecture listing.
func (d Description) String() string {
	var b strings.Builder
	d.render(&b, 0)
	return b.String()
}

func (d Description) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	name := d.Path
	if name == "" {
		name = "<root>"
	}
	fmt.Fprintf(b, "%s%s %s [%s]", indent, d.Kind, name, d.State)
	if d.Type != "" {
		fmt.Fprintf(b, " type=%s", d.Type)
	}
	b.WriteByte('\n')
	if len(d.Services) > 0 {
		fmt.Fprintf(b, "%s  services: %s\n", indent, strings.Join(d.Services, ", "))
	}
	if len(d.References) > 0 {
		fmt.Fprintf(b, "%s  references: %s\n", indent, strings.Join(d.References, ", "))
	}
	if len(d.Properties) > 0 {
		keys := make([]string, 0, len(d.Properties))
		for k := range d.Properties {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		pairs := make([]string, 0, len(keys))
		for _, k := range keys {
			pairs = append(pairs, k+"="+d.Properties[k])
		}
		fmt.Fprintf(b, "%s  properties: %s\n", indent, strings.Join(pairs, ", "))
	}
	for _, w := range d.Wires {
		fmt.Fprintf(b, "%s  wire: %s\n", indent, w)
	}
	if len(d.Interceptors) > 0 {
		fmt.Fprintf(b, "%s  interceptors: %s\n", indent, strings.Join(d.Interceptors, ", "))
	}
	for _, p := range d.Promotions {
		fmt.Fprintf(b, "%s  promotes: %s\n", indent, p)
	}
	for _, ch := range d.Children {
		ch.render(b, depth+1)
	}
}

// ComponentPaths returns the paths of all components in the subtree, in
// sorted order.
func (d Description) ComponentPaths() []string {
	var out []string
	var rec func(Description)
	rec = func(x Description) {
		if x.Kind == "component" {
			out = append(out, x.Path)
		}
		for _, ch := range x.Children {
			rec(ch)
		}
	}
	rec(d)
	sort.Strings(out)
	return out
}
