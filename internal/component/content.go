package component

import "context"

// Content is the implementation object hosted inside a component. The
// runtime dispatches every invocation on any of the component's services
// to Invoke with the service name.
type Content interface {
	Invoke(ctx context.Context, service string, msg Message) (Message, error)
}

// ContentFunc adapts a function to the Content interface.
type ContentFunc func(ctx context.Context, service string, msg Message) (Message, error)

// Invoke calls f.
func (f ContentFunc) Invoke(ctx context.Context, service string, msg Message) (Message, error) {
	return f(ctx, service, msg)
}

var _ Content = (ContentFunc)(nil)

// RefReceiver is implemented by content that consumes references. The
// runtime injects the wire proxy when a reference is wired and nil when it
// is unwired.
type RefReceiver interface {
	SetReference(name string, target Service)
}

// PropertyReceiver is implemented by content that consumes configuration
// properties. Properties are pushed at deployment time and on SetProperty
// reconfigurations.
type PropertyReceiver interface {
	SetProperty(name string, value any) error
}

// Lifecycle is implemented by content that needs start/stop hooks. OnStart
// runs before the component's gate opens; OnStop runs after quiescence.
type Lifecycle interface {
	OnStart(ctx context.Context) error
	OnStop(ctx context.Context) error
}

// Ref declares a reference (required interface) of a component.
type Ref struct {
	Name     string
	Required bool
}

// Definition describes a component to be instantiated in a composite: its
// name, its component type (resolved against a Registry when deploying
// from a transition package), the services it provides, the references it
// requires, its configuration properties, and the deployable bundle whose
// verification models the deployment cost.
type Definition struct {
	Name       string
	Type       string
	Services   []string
	References []Ref
	Properties map[string]any
	Content    Content
	Bundle     Bundle
}

// clone returns a deep-enough copy of d so that runtime mutations never
// alias caller-owned maps or slices.
func (d Definition) clone() Definition {
	out := d
	out.Services = append([]string(nil), d.Services...)
	out.References = append([]Ref(nil), d.References...)
	if d.Properties != nil {
		out.Properties = make(map[string]any, len(d.Properties))
		for k, v := range d.Properties {
			out.Properties[k] = v
		}
	}
	return out
}

// HasService reports whether d declares the named service.
func (d Definition) HasService(name string) bool {
	for _, s := range d.Services {
		if s == name {
			return true
		}
	}
	return false
}

// Reference returns the declared reference with the given name.
func (d Definition) Reference(name string) (Ref, bool) {
	for _, r := range d.References {
		if r.Name == name {
			return r, true
		}
	}
	return Ref{}, false
}
