package component

import (
	"context"
	"fmt"
	"sync"
)

// gate implements the quiescence protocol of the runtime (paper §5.3):
// invocations on a stopped component block (they are buffered as waiting
// goroutines) until the component is restarted, and stopping a component
// waits for all in-flight invocations to drain before returning.
type gate struct {
	mu       sync.Mutex
	open     bool
	removed  bool
	inflight int
	// changed is closed and replaced on every state change; waiters
	// re-check the condition after it fires (a channel-based broadcast).
	changed chan struct{}
}

func newGate() *gate {
	return &gate{changed: make(chan struct{})}
}

func (g *gate) broadcastLocked() {
	close(g.changed)
	g.changed = make(chan struct{})
}

// enter blocks until the gate is open, then registers one in-flight
// invocation. It fails when the component is removed or ctx is done.
func (g *gate) enter(ctx context.Context) error {
	for {
		g.mu.Lock()
		if g.removed {
			g.mu.Unlock()
			return ErrRemoved
		}
		if g.open {
			g.inflight++
			g.mu.Unlock()
			return nil
		}
		wait := g.changed
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return fmt.Errorf("component: invocation buffered at stopped component: %w", ctx.Err())
		case <-wait:
		}
	}
}

// leave unregisters one in-flight invocation.
func (g *gate) leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.inflight--
	// Only a closer waits on the in-flight count, and close shuts the
	// gate (under this mutex) before waiting; while the gate is open
	// nobody is watching, so skip the channel churn on the hot path.
	if !g.open {
		g.broadcastLocked()
	}
}

// close shuts the gate and waits for quiescence (no in-flight
// invocations). New invocations block until openGate or remove.
func (g *gate) close(ctx context.Context) error {
	g.mu.Lock()
	g.open = false
	g.broadcastLocked()
	g.mu.Unlock()
	for {
		g.mu.Lock()
		if g.inflight == 0 {
			g.mu.Unlock()
			return nil
		}
		wait := g.changed
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return fmt.Errorf("component: waiting for quiescence: %w", ctx.Err())
		case <-wait:
		}
	}
}

// openGate opens the gate, releasing buffered invocations.
func (g *gate) openGate() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.open = true
	g.broadcastLocked()
}

// remove marks the gate permanently removed, failing buffered and future
// invocations with ErrRemoved.
func (g *gate) remove() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.removed = true
	g.open = false
	g.broadcastLocked()
}

// isOpen reports whether invocations currently pass.
func (g *gate) isOpen() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.open
}
