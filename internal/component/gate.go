package component

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// gate implements the quiescence protocol of the runtime (paper §5.3):
// invocations on a stopped component block (they are buffered as waiting
// goroutines) until the component is restarted, and stopping a component
// waits for all in-flight invocations to drain before returning.
//
// The hot path — enter and leave on an open gate — is a single CAS or
// atomic add on a packed state word: flag bits for open/removed in the
// high bits, the in-flight count in the low bits. Every service
// invocation crosses one component gate plus its composite's, so the
// two mutex acquisitions the naive version paid per crossing were
// measurable on the request path. The mutex and broadcast channel
// survive only for the slow paths: invocations buffered at a shut gate,
// and closers draining to quiescence.
type gate struct {
	// state packs gateOpen/gateRemoved with the in-flight count
	// (gateCountMask). Transitions that clear gateOpen go through CAS so
	// no increment is lost; enter increments only while gateOpen is set
	// in the value it compared against.
	state atomic.Uint64

	mu sync.Mutex
	// changed is closed and replaced on every state change; waiters
	// re-check the condition after it fires (a channel-based broadcast).
	changed chan struct{}
}

const (
	gateOpen      = uint64(1) << 63
	gateRemoved   = uint64(1) << 62
	gateCountMask = gateRemoved - 1
)

func newGate() *gate {
	return &gate{changed: make(chan struct{})}
}

func (g *gate) broadcastLocked() {
	close(g.changed)
	g.changed = make(chan struct{})
}

// broadcast fires the change channel for any slow-path waiter.
func (g *gate) broadcast() {
	g.mu.Lock()
	g.broadcastLocked()
	g.mu.Unlock()
}

// enter blocks until the gate is open, then registers one in-flight
// invocation. It fails when the component is removed or ctx is done.
func (g *gate) enter(ctx context.Context) error {
	for {
		s := g.state.Load()
		switch {
		case s&gateRemoved != 0:
			return ErrRemoved
		case s&gateOpen != 0:
			// The CAS pairs the open check with the increment: a closer
			// clearing gateOpen concurrently fails this CAS, so no
			// invocation slips in after close observed the gate shut.
			if g.state.CompareAndSwap(s, s+1) {
				return nil
			}
			continue
		}
		// Shut gate: buffer as a waiting goroutine until a state change.
		g.mu.Lock()
		wait := g.changed
		g.mu.Unlock()
		// Re-check after taking the channel — the gate may have changed
		// state between the Load and the Lock, whose broadcast this
		// waiter would have missed.
		if s := g.state.Load(); s&(gateOpen|gateRemoved) != 0 {
			continue
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("component: invocation buffered at stopped component: %w", ctx.Err())
		case <-wait:
		}
	}
}

// leave unregisters one in-flight invocation.
func (g *gate) leave() {
	s := g.state.Add(^uint64(0)) // decrement the packed count
	// Only a closer waits on the in-flight count, and close shuts the
	// gate before waiting; while the gate is open nobody is watching, so
	// the hot path is the bare atomic decrement.
	if s&gateOpen == 0 {
		g.broadcast()
	}
}

// shut clears gateOpen (keeping the count and, when asked, setting the
// removed bit) and wakes every slow-path waiter.
func (g *gate) shut(alsoRemove bool) {
	for {
		s := g.state.Load()
		next := s &^ gateOpen
		if alsoRemove {
			next |= gateRemoved
		}
		if g.state.CompareAndSwap(s, next) {
			g.broadcast()
			return
		}
	}
}

// close shuts the gate and waits for quiescence (no in-flight
// invocations). New invocations block until openGate or remove.
func (g *gate) close(ctx context.Context) error {
	g.shut(false)
	for {
		g.mu.Lock()
		if g.state.Load()&gateCountMask == 0 {
			g.mu.Unlock()
			return nil
		}
		wait := g.changed
		g.mu.Unlock()
		select {
		case <-ctx.Done():
			return fmt.Errorf("component: waiting for quiescence: %w", ctx.Err())
		case <-wait:
		}
	}
}

// openGate opens the gate, releasing buffered invocations.
func (g *gate) openGate() {
	for {
		s := g.state.Load()
		if g.state.CompareAndSwap(s, s|gateOpen) {
			break
		}
	}
	g.broadcast()
}

// remove marks the gate permanently removed, failing buffered and future
// invocations with ErrRemoved.
func (g *gate) remove() {
	g.shut(true)
}

// isOpen reports whether invocations currently pass.
func (g *gate) isOpen() bool {
	return g.state.Load()&gateOpen != 0
}
