package fscript

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"resilientft/internal/component"
)

// probe is a trivial content for script tests.
type probe struct {
	mu    sync.Mutex
	refs  map[string]component.Service
	props map[string]any
}

func newProbe() *probe {
	return &probe{refs: make(map[string]component.Service), props: make(map[string]any)}
}

func (p *probe) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	return component.NewMessage("ok", msg.Payload), nil
}

func (p *probe) SetReference(name string, target component.Service) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.refs[name] = target
}

func (p *probe) SetProperty(name string, value any) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.props[name] = value
	return nil
}

func probeDef(name string) component.Definition {
	return component.Definition{
		Name:       name,
		Type:       "test.probe",
		Services:   []string{"svc"},
		References: []component.Ref{{Name: "next"}},
		Content:    newProbe(),
	}
}

func newTestRuntime(t *testing.T) *component.Runtime {
	t.Helper()
	rt := component.NewRuntime(nil)
	if _, err := rt.AddComposite("ftm"); err != nil {
		t.Fatalf("AddComposite: %v", err)
	}
	for _, name := range []string{"protocol", "syncBefore", "syncAfter"} {
		if _, err := rt.AddComponent("ftm", probeDef(name)); err != nil {
			t.Fatalf("AddComponent %s: %v", name, err)
		}
		if err := rt.Start(context.Background(), "ftm/"+name); err != nil {
			t.Fatalf("Start %s: %v", name, err)
		}
	}
	if err := rt.Wire("ftm/protocol", "next", "ftm/syncBefore", "svc"); err != nil {
		t.Fatalf("Wire: %v", err)
	}
	return rt
}

// snapshot captures a comparable view of the architecture for the
// all-or-nothing property.
func snapshot(t *testing.T, rt *component.Runtime) string {
	t.Helper()
	d, err := rt.Describe("")
	if err != nil {
		t.Fatalf("Describe: %v", err)
	}
	return d.String()
}

func TestParseRendersBack(t *testing.T) {
	src := `
# differential transition PBR -> LFR
stop ftm/syncBefore
unwire ftm/protocol.before -> ftm/syncBefore.sync
`
	// unwire takes no arrow; this must fail to parse.
	if _, err := Parse(src); err == nil {
		t.Fatal("Parse accepted malformed unwire")
	}
}

func TestParseAllStatements(t *testing.T) {
	src := `
# a comment
stop ftm/syncBefore;
unwire ftm/protocol.before
remove ftm/syncBefore
add lfr_syncBefore as ftm/syncBefore // trailing comment
wire ftm/protocol.before -> ftm/syncBefore.sync
set ftm/syncBefore.role = "leader"
set ftm/syncBefore.retries = 3
set ftm/syncBefore.threshold = 0.5
set ftm/syncBefore.enabled = true
promote ftm:service => protocol.request
demote ftm:service
start ftm/syncBefore
fail "boom"
`
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Stmts) != 13 {
		t.Fatalf("parsed %d statements, want 13:\n%s", len(s.Stmts), s)
	}
	wantKinds := []string{"StopStmt", "UnwireStmt", "RemoveStmt", "AddStmt", "WireStmt",
		"SetStmt", "SetStmt", "SetStmt", "SetStmt", "PromoteStmt", "DemoteStmt", "StartStmt", "FailStmt"}
	for i, st := range s.Stmts {
		got := fmt.Sprintf("%T", st)
		if !strings.HasSuffix(got, wantKinds[i]) {
			t.Errorf("stmt %d: type %s, want %s", i, got, wantKinds[i])
		}
	}
	if s.Stmts[5].(SetStmt).Value != "leader" {
		t.Errorf("string literal = %v", s.Stmts[5].(SetStmt).Value)
	}
	if s.Stmts[6].(SetStmt).Value != int64(3) {
		t.Errorf("int literal = %v (%T)", s.Stmts[6].(SetStmt).Value, s.Stmts[6].(SetStmt).Value)
	}
	if s.Stmts[7].(SetStmt).Value != 0.5 {
		t.Errorf("float literal = %v", s.Stmts[7].(SetStmt).Value)
	}
	if s.Stmts[8].(SetStmt).Value != true {
		t.Errorf("bool literal = %v", s.Stmts[8].(SetStmt).Value)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`add x`,                      // missing 'as'
		`wire a.b => c.d`,            // wrong arrow
		`bogus path`,                 // unknown keyword
		`set a.b = `,                 // missing literal
		`fail unquoted`,              // fail requires string
		`wire a.b -> c`,              // missing member
		"add x as y extra tokens ok", // trailing garbage
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestExecuteDifferentialSwap(t *testing.T) {
	rt := newTestRuntime(t)
	env := Env{Definitions: map[string]component.Definition{
		"new_syncBefore": probeDef(""),
	}}
	script := MustParse(`
stop ftm/syncBefore
unwire ftm/protocol.next
remove ftm/syncBefore
add new_syncBefore as ftm/syncBefore
wire ftm/protocol.next -> ftm/syncBefore.svc
start ftm/syncBefore
`)
	res, err := Execute(context.Background(), rt, script, env)
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if res.Executed != 6 {
		t.Fatalf("Executed = %d, want 6", res.Executed)
	}
	c, err := rt.Lookup("ftm/syncBefore")
	if err != nil {
		t.Fatalf("Lookup replacement: %v", err)
	}
	if c.State() != component.StateStarted {
		t.Fatalf("replacement state = %v, want started", c.State())
	}
	if len(rt.CheckIntegrity()) != 0 {
		t.Fatalf("integrity violations after swap: %v", rt.CheckIntegrity())
	}
}

func TestExecuteRollsBackOnInjectedFailure(t *testing.T) {
	rt := newTestRuntime(t)
	before := snapshot(t, rt)
	env := Env{Definitions: map[string]component.Definition{
		"new_syncBefore": probeDef(""),
	}}
	script := MustParse(`
stop ftm/syncBefore
unwire ftm/protocol.next
remove ftm/syncBefore
add new_syncBefore as ftm/syncBefore
fail "injected mid-transition"
wire ftm/protocol.next -> ftm/syncBefore.svc
`)
	_, err := Execute(context.Background(), rt, script, env)
	var serr *ScriptError
	if !errors.As(err, &serr) {
		t.Fatalf("Execute error = %v, want *ScriptError", err)
	}
	if !errors.Is(err, ErrInjectedFailure) {
		t.Fatalf("cause = %v, want ErrInjectedFailure", err)
	}
	if serr.RollbackErr != nil {
		t.Fatalf("rollback failed: %v", serr.RollbackErr)
	}
	if after := snapshot(t, rt); after != before {
		t.Fatalf("architecture changed despite rollback:\nbefore:\n%s\nafter:\n%s", before, after)
	}
}

func TestExecuteRollsBackOnIntegrityViolation(t *testing.T) {
	rt := newTestRuntime(t)
	// Make 'next' required on protocol so unwiring it violates integrity.
	rtReq := component.NewRuntime(nil)
	if _, err := rtReq.AddComposite("ftm"); err != nil {
		t.Fatal(err)
	}
	def := probeDef("protocol")
	def.References = []component.Ref{{Name: "next", Required: true}}
	if _, err := rtReq.AddComponent("ftm", def); err != nil {
		t.Fatal(err)
	}
	if _, err := rtReq.AddComponent("ftm", probeDef("syncBefore")); err != nil {
		t.Fatal(err)
	}
	if err := rtReq.Wire("ftm/protocol", "next", "ftm/syncBefore", "svc"); err != nil {
		t.Fatal(err)
	}
	if err := rtReq.Start(context.Background(), "ftm/protocol"); err != nil {
		t.Fatal(err)
	}
	before := snapshot(t, rtReq)
	script := MustParse(`unwire ftm/protocol.next`)
	_, err := Execute(context.Background(), rtReq, script, Env{})
	if !errors.Is(err, component.ErrIntegrity) {
		t.Fatalf("Execute error = %v, want ErrIntegrity", err)
	}
	if after := snapshot(t, rtReq); after != before {
		t.Fatalf("architecture changed despite rollback")
	}
	_ = rt
}

func TestExecuteUnknownDefinition(t *testing.T) {
	rt := newTestRuntime(t)
	script := MustParse(`add missing_def as ftm/x`)
	_, err := Execute(context.Background(), rt, script, Env{})
	if !errors.Is(err, component.ErrNotFound) {
		t.Fatalf("Execute error = %v, want ErrNotFound", err)
	}
}

func TestSetPropertyRollbackRestoresOldValue(t *testing.T) {
	rt := newTestRuntime(t)
	if err := rt.SetProperty("ftm/protocol", "mode", "old"); err != nil {
		t.Fatal(err)
	}
	script := MustParse(`
set ftm/protocol.mode = "new"
fail "abort"
`)
	if _, err := Execute(context.Background(), rt, script, Env{}); err == nil {
		t.Fatal("Execute succeeded, want failure")
	}
	c, _ := rt.Lookup("ftm/protocol")
	if v, _ := c.Property("mode"); v != "old" {
		t.Fatalf("property after rollback = %v, want old", v)
	}
}

func TestSetPropertyRollbackRemovesNewProperty(t *testing.T) {
	rt := newTestRuntime(t)
	script := MustParse(`
set ftm/protocol.fresh = 42
fail "abort"
`)
	if _, err := Execute(context.Background(), rt, script, Env{}); err == nil {
		t.Fatal("Execute succeeded, want failure")
	}
	c, _ := rt.Lookup("ftm/protocol")
	if _, ok := c.Property("fresh"); ok {
		t.Fatal("property survived rollback")
	}
}

// TestRollbackProperty verifies the all-or-nothing contract of the paper:
// for every prefix of a transition script, injecting a failure after that
// prefix leaves the architecture exactly as it was (random failure points
// driven by a seeded source).
func TestRollbackProperty(t *testing.T) {
	fullScript := []string{
		"stop ftm/syncBefore",
		"unwire ftm/protocol.next",
		"remove ftm/syncBefore",
		"add new_syncBefore as ftm/syncBefore",
		"wire ftm/protocol.next -> ftm/syncBefore.svc",
		"start ftm/syncBefore",
		"stop ftm/syncAfter",
		"set ftm/syncAfter.role = \"follower\"",
		"start ftm/syncAfter",
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		cut := rng.Intn(len(fullScript)) // fail after this many statements
		rt := newTestRuntime(t)
		before := snapshot(t, rt)
		src := strings.Join(fullScript[:cut], "\n") + "\nfail \"chaos\"\n"
		env := Env{Definitions: map[string]component.Definition{
			"new_syncBefore": probeDef(""),
		}}
		_, err := Execute(context.Background(), rt, MustParse(src), env)
		if !errors.Is(err, ErrInjectedFailure) {
			t.Fatalf("trial %d (cut %d): err = %v, want injected failure", trial, cut, err)
		}
		if after := snapshot(t, rt); after != before {
			t.Fatalf("trial %d (cut %d): architecture changed despite rollback\nbefore:\n%s\nafter:\n%s",
				trial, cut, before, after)
		}
	}
}
