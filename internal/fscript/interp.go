package fscript

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/telemetry"
)

// ScriptError is the paper's ScriptException: a reconfiguration failed (a
// statement error, an integrity-constraint violation, or an injected
// fault) and the transaction was rolled back. When even the rollback
// failed — leaving the architecture inconsistent — RollbackErr is set and
// the caller must apply the fail-silent policy (kill the replica).
type ScriptError struct {
	Stmt        string
	Line        int
	Err         error
	RollbackErr error
}

// Error renders the failure.
func (e *ScriptError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fscript: line %d: %s: %v", e.Line, e.Stmt, e.Err)
	if e.RollbackErr != nil {
		fmt.Fprintf(&b, " (ROLLBACK FAILED: %v)", e.RollbackErr)
	}
	return b.String()
}

// Unwrap exposes the underlying cause.
func (e *ScriptError) Unwrap() error { return e.Err }

// ErrInjectedFailure is raised by the `fail` statement.
var ErrInjectedFailure = errors.New("fscript: injected failure")

// Env is the execution environment of a script: the component definitions
// shipped in the transition package, addressable by name from `add`
// statements.
type Env struct {
	Definitions map[string]component.Definition
}

// Result summarizes a successful execution.
type Result struct {
	// Executed is the number of statements applied.
	Executed int
}

// inverseOp undoes one applied statement.
type inverseOp struct {
	describe string
	apply    func(ctx context.Context) error
}

// Execute runs the script against rt transactionally. On any failure the
// already-applied statements are undone in reverse order and a
// *ScriptError is returned; the architecture is then in its initial
// configuration (all-or-nothing semantics, paper §5.3). After the last
// statement the runtime's integrity constraints are checked; violations
// also abort and roll back.
func Execute(ctx context.Context, rt *component.Runtime, script *Script, env Env) (Result, error) {
	var inverses []inverseOp

	rollback := func() error {
		var errs []error
		for i := len(inverses) - 1; i >= 0; i-- {
			if err := inverses[i].apply(ctx); err != nil {
				errs = append(errs, fmt.Errorf("undo %s: %w", inverses[i].describe, err))
			}
		}
		return errors.Join(errs...)
	}

	for _, stmt := range script.Stmts {
		stepStart := time.Now()
		inv, err := apply(ctx, rt, stmt, env)
		status := "ok"
		if err != nil {
			status = "error"
		}
		// Every reconfiguration step leaves a trace event: the verb
		// (stop/add/wire/start/...), the full statement, and how long the
		// runtime took to apply it.
		telemetry.Emit("transition.step", stmtVerb(stmt), time.Since(stepStart),
			"stmt", stmt.String(),
			"line", strconv.Itoa(stmt.Line()),
			"status", status)
		if err != nil {
			return Result{}, &ScriptError{
				Stmt:        stmt.String(),
				Line:        stmt.Line(),
				Err:         err,
				RollbackErr: rollback(),
			}
		}
		if inv != nil {
			inverses = append(inverses, *inv)
		}
	}

	if violations := rt.CheckIntegrity(); len(violations) > 0 {
		details := make([]string, 0, len(violations))
		for _, v := range violations {
			details = append(details, v.String())
		}
		return Result{}, &ScriptError{
			Stmt:        "post-conditions",
			Line:        0,
			Err:         fmt.Errorf("%w: %s", component.ErrIntegrity, strings.Join(details, "; ")),
			RollbackErr: rollback(),
		}
	}
	return Result{Executed: len(script.Stmts)}, nil
}

// stmtVerb returns the statement's leading keyword ("stop", "add",
// "wire", ...), the name its trace event carries.
func stmtVerb(stmt Stmt) string {
	s := stmt.String()
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

// apply executes one statement and returns its inverse.
func apply(ctx context.Context, rt *component.Runtime, stmt Stmt, env Env) (*inverseOp, error) {
	switch s := stmt.(type) {
	case AddStmt:
		def, ok := env.Definitions[s.Def]
		if !ok {
			return nil, fmt.Errorf("%w: definition %q in transition package", component.ErrNotFound, s.Def)
		}
		parent, leaf := splitParent(s.Path)
		def.Name = leaf
		if _, err := rt.AddComponent(parent, def); err != nil {
			return nil, err
		}
		return &inverseOp{
			describe: "add " + s.Path,
			apply:    func(ctx context.Context) error { return rt.Remove(s.Path) },
		}, nil

	case RemoveStmt:
		c, err := rt.Lookup(s.Path)
		if err != nil {
			return nil, err
		}
		savedDef := c.Definition()
		savedWires := c.Wires()
		if err := rt.Remove(s.Path); err != nil {
			return nil, err
		}
		parent, leaf := splitParent(s.Path)
		savedDef.Name = leaf
		return &inverseOp{
			describe: "remove " + s.Path,
			apply: func(ctx context.Context) error {
				if _, err := rt.AddComponent(parent, savedDef); err != nil {
					return err
				}
				for _, w := range savedWires {
					if err := rt.Wire(w.From, w.Reference, w.To, w.Service); err != nil {
						return err
					}
				}
				return nil
			},
		}, nil

	case WireStmt:
		if err := rt.Wire(s.FromPath, s.Reference, s.ToPath, s.Service); err != nil {
			return nil, err
		}
		return &inverseOp{
			describe: "wire " + s.FromPath + "." + s.Reference,
			apply:    func(ctx context.Context) error { return rt.Unwire(s.FromPath, s.Reference) },
		}, nil

	case UnwireStmt:
		c, err := rt.Lookup(s.FromPath)
		if err != nil {
			return nil, err
		}
		saved, ok := c.WireFor(s.Reference)
		if !ok {
			return nil, fmt.Errorf("%w: %s.%s", component.ErrRefUnwired, s.FromPath, s.Reference)
		}
		if err := rt.Unwire(s.FromPath, s.Reference); err != nil {
			return nil, err
		}
		return &inverseOp{
			describe: "unwire " + s.FromPath + "." + s.Reference,
			apply: func(ctx context.Context) error {
				return rt.Wire(saved.From, saved.Reference, saved.To, saved.Service)
			},
		}, nil

	case StartStmt:
		prev, err := nodeState(rt, s.Path)
		if err != nil {
			return nil, err
		}
		if err := rt.Start(ctx, s.Path); err != nil {
			return nil, err
		}
		if prev == component.StateStarted {
			return nil, nil // no-op, nothing to undo
		}
		return &inverseOp{
			describe: "start " + s.Path,
			apply:    func(ctx context.Context) error { return rt.Stop(ctx, s.Path) },
		}, nil

	case StopStmt:
		prev, err := nodeState(rt, s.Path)
		if err != nil {
			return nil, err
		}
		if err := rt.Stop(ctx, s.Path); err != nil {
			return nil, err
		}
		if prev == component.StateStopped {
			return nil, nil
		}
		return &inverseOp{
			describe: "stop " + s.Path,
			apply:    func(ctx context.Context) error { return rt.Start(ctx, s.Path) },
		}, nil

	case SetStmt:
		c, err := rt.Lookup(s.Path)
		if err != nil {
			return nil, err
		}
		oldValue, hadValue := c.Property(s.Name)
		if err := rt.SetProperty(s.Path, s.Name, s.Value); err != nil {
			return nil, err
		}
		return &inverseOp{
			describe: "set " + s.Path + "." + s.Name,
			apply: func(ctx context.Context) error {
				if hadValue {
					return rt.SetProperty(s.Path, s.Name, oldValue)
				}
				c.DeleteProperty(s.Name)
				return nil
			},
		}, nil

	case PromoteStmt:
		cp, err := rt.LookupComposite(s.Composite)
		if err != nil {
			return nil, err
		}
		if err := cp.Promote(s.Service, s.Child, s.ChildService); err != nil {
			return nil, err
		}
		return &inverseOp{
			describe: "promote " + s.Composite + ":" + s.Service,
			apply:    func(ctx context.Context) error { return cp.Demote(s.Service) },
		}, nil

	case DemoteStmt:
		cp, err := rt.LookupComposite(s.Composite)
		if err != nil {
			return nil, err
		}
		var saved *component.Promotion
		for _, p := range cp.Promotions() {
			if p.Service == s.Service {
				saved = &p
				break
			}
		}
		if saved == nil {
			return nil, fmt.Errorf("%w: promotion %q on %q", component.ErrNotFound, s.Service, s.Composite)
		}
		if err := cp.Demote(s.Service); err != nil {
			return nil, err
		}
		return &inverseOp{
			describe: "demote " + s.Composite + ":" + s.Service,
			apply: func(ctx context.Context) error {
				return cp.Promote(saved.Service, saved.Child, saved.ChildService)
			},
		}, nil

	case FailStmt:
		return nil, fmt.Errorf("%w: %s", ErrInjectedFailure, s.Message)

	default:
		return nil, fmt.Errorf("fscript: unsupported statement %T", stmt)
	}
}

func nodeState(rt *component.Runtime, path string) (component.State, error) {
	if c, err := rt.Lookup(path); err == nil {
		return c.State(), nil
	}
	cp, err := rt.LookupComposite(path)
	if err != nil {
		return 0, err
	}
	return cp.State(), nil
}

// splitParent splits "a/b/c" into ("a/b", "c").
func splitParent(path string) (parent, leaf string) {
	path = strings.Trim(path, "/")
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i], path[i+1:]
	}
	return "", path
}
