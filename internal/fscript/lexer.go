package fscript

import (
	"fmt"
	"strings"
)

// lex tokenizes src. Words may contain letters, digits, '_', '-' and '/'
// (so component paths are single tokens); '.' is a separator so that
// "path.member" splits into three tokens. Comments run from '#' or "//"
// to end of line. Newlines and ';' terminate statements.
func lex(src string) ([]token, error) {
	var tokens []token
	line := 1
	i := 0
	emit := func(kind tokenKind, text string) {
		tokens = append(tokens, token{kind: kind, text: text, line: line})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			// Collapse consecutive newlines into one terminator.
			if n := len(tokens); n > 0 && tokens[n-1].kind != tokenTerminator {
				emit(tokenTerminator, "\\n")
			}
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';':
			if n := len(tokens); n == 0 || tokens[n-1].kind != tokenTerminator {
				emit(tokenTerminator, ";")
			}
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '.':
			emit(tokenDot, ".")
			i++
		case c == ',':
			emit(tokenComma, ",")
			i++
		case c == ':':
			emit(tokenColon, ":")
			i++
		case c == '=':
			if i+1 < len(src) && src[i+1] == '>' {
				emit(tokenDoubleArrow, "=>")
				i += 2
			} else {
				emit(tokenEquals, "=")
				i++
			}
		case c == '-' && i+1 < len(src) && src[i+1] == '>':
			emit(tokenArrow, "->")
			i += 2
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\n' {
					return nil, fmt.Errorf("fscript: line %d: unterminated string", line)
				}
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("fscript: line %d: unterminated string", line)
			}
			emit(tokenString, sb.String())
			i = j + 1
		case isDigit(c) || (c == '-' && i+1 < len(src) && isDigit(src[i+1])):
			j := i + 1
			for j < len(src) && (isDigit(src[j]) || src[j] == '.') {
				j++
			}
			emit(tokenNumber, src[i:j])
			i = j
		case isWordChar(c):
			j := i
			for j < len(src) && isWordChar(src[j]) {
				if src[j] == '-' && j+1 < len(src) && src[j+1] == '>' {
					break // an '->' arrow begins here, not part of the word
				}
				j++
			}
			emit(tokenWord, src[i:j])
			i = j
		default:
			return nil, fmt.Errorf("fscript: line %d: unexpected character %q", line, string(c))
		}
	}
	if n := len(tokens); n > 0 && tokens[n-1].kind != tokenTerminator {
		emit(tokenTerminator, "eof")
	}
	emit(tokenEOF, "")
	return tokens, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isWordChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || isDigit(c) || c == '_' || c == '-' || c == '/' || c == '$'
}
