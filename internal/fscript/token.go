// Package fscript implements the reconfiguration script language of the
// adaptation layer — the analogue of FScript in the paper. A script is a
// sequence of architecture reconfiguration statements executed against a
// component runtime with all-or-nothing semantics: every statement records
// its inverse, post-execution integrity constraints are verified, and any
// failure rolls the architecture back to its initial configuration and
// surfaces a *ScriptError (the paper's ScriptException).
package fscript

import "fmt"

// tokenKind enumerates lexical token kinds.
type tokenKind int

const (
	tokenWord tokenKind = iota + 1
	tokenString
	tokenNumber
	tokenDot
	tokenComma
	tokenEquals
	tokenArrow       // ->
	tokenDoubleArrow // =>
	tokenColon
	tokenTerminator // ';' or newline
	tokenEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokenWord:
		return "word"
	case tokenString:
		return "string"
	case tokenNumber:
		return "number"
	case tokenDot:
		return "'.'"
	case tokenComma:
		return "','"
	case tokenEquals:
		return "'='"
	case tokenArrow:
		return "'->'"
	case tokenDoubleArrow:
		return "'=>'"
	case tokenColon:
		return "':'"
	case tokenTerminator:
		return "statement terminator"
	case tokenEOF:
		return "end of script"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexical unit with its source line for diagnostics.
type token struct {
	kind tokenKind
	text string
	line int
}

func (t token) String() string {
	if t.text != "" {
		return fmt.Sprintf("%s %q (line %d)", t.kind, t.text, t.line)
	}
	return fmt.Sprintf("%s (line %d)", t.kind, t.line)
}
