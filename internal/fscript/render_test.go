package fscript

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"resilientft/internal/component"
)

// TestRenderParseRoundTrip: rendering a parsed script and re-parsing it
// yields the same AST — the String methods emit valid source.
func TestRenderParseRoundTrip(t *testing.T) {
	src := `
stop ftm/syncBefore
unwire ftm/protocol.before
remove ftm/syncBefore
add new_brick as ftm/syncBefore
wire ftm/protocol.before -> ftm/syncBefore.sync
set ftm/syncBefore.role = "leader"
set ftm/syncBefore.count = 3
promote ftm:request => protocol.request
demote ftm:request
start ftm/syncBefore
fail "boom"
`
	first, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rendered := first.String()
	second, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered script failed: %v\n%s", err, rendered)
	}
	// Line numbers reflect source offsets and legitimately differ; the
	// rendered forms must agree.
	if second.String() != rendered {
		t.Fatalf("round trip changed the script:\nfirst:\n%s\nsecond:\n%s", rendered, second.String())
	}
	if len(first.Stmts) != len(second.Stmts) {
		t.Fatalf("statement counts differ: %d vs %d", len(first.Stmts), len(second.Stmts))
	}
	for i := range first.Stmts {
		if reflect.TypeOf(first.Stmts[i]) != reflect.TypeOf(second.Stmts[i]) {
			t.Fatalf("stmt %d type changed: %T vs %T", i, first.Stmts[i], second.Stmts[i])
		}
	}
	// Spot-check renderings.
	for _, want := range []string{
		"add new_brick as ftm/syncBefore",
		"wire ftm/protocol.before -> ftm/syncBefore.sync",
		`set ftm/syncBefore.role = leader`,
		"promote ftm:request => protocol.request",
		"demote ftm:request",
		`fail "boom"`,
	} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered script missing %q:\n%s", want, rendered)
		}
	}
}

func TestScriptErrorRendering(t *testing.T) {
	e := &ScriptError{Stmt: "remove x", Line: 3, Err: ErrInjectedFailure}
	if !strings.Contains(e.Error(), "line 3") || !strings.Contains(e.Error(), "remove x") {
		t.Fatalf("Error() = %q", e.Error())
	}
	e.RollbackErr = errors.New("undo failed")
	if !strings.Contains(e.Error(), "ROLLBACK FAILED") {
		t.Fatalf("Error() with rollback failure = %q", e.Error())
	}
	if !errors.Is(e, ErrInjectedFailure) {
		t.Fatal("Unwrap broken")
	}
}

func TestPromoteDemoteStatements(t *testing.T) {
	rt := component.NewRuntime(nil)
	if _, err := rt.AddComposite("box"); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddComponent("box", probeDef("inner")); err != nil {
		t.Fatal(err)
	}
	script := MustParse(`promote box:svc => inner.svc`)
	if _, err := Execute(context.Background(), rt, script, Env{}); err != nil {
		t.Fatalf("promote: %v", err)
	}
	cp, _ := rt.LookupComposite("box")
	if len(cp.Promotions()) != 1 {
		t.Fatal("promotion not applied")
	}
	// Demote and roll back: the promotion must return.
	script = MustParse("demote box:svc\nfail \"abort\"")
	if _, err := Execute(context.Background(), rt, script, Env{}); err == nil {
		t.Fatal("want failure")
	}
	if len(cp.Promotions()) != 1 {
		t.Fatal("demote was not rolled back")
	}
	// Promote roll back: the promotion must vanish.
	script = MustParse("demote box:svc\npromote box:svc => inner.svc\nfail \"abort\"")
	if _, err := Execute(context.Background(), rt, script, Env{}); err == nil {
		t.Fatal("want failure")
	}
	if len(cp.Promotions()) != 1 {
		t.Fatal("nested promote/demote rollback broken")
	}
}

func TestCompositeLifecycleStatements(t *testing.T) {
	rt := component.NewRuntime(nil)
	if _, err := rt.AddComposite("box"); err != nil {
		t.Fatal(err)
	}
	script := MustParse("stop box\nstart box")
	if _, err := Execute(context.Background(), rt, script, Env{}); err != nil {
		t.Fatalf("composite lifecycle: %v", err)
	}
	cp, _ := rt.LookupComposite("box")
	if cp.State() != component.StateStarted {
		t.Fatalf("state = %v", cp.State())
	}
	// Rolling back a composite stop restarts it.
	script = MustParse("stop box\nfail \"abort\"")
	if _, err := Execute(context.Background(), rt, script, Env{}); err == nil {
		t.Fatal("want failure")
	}
	if cp.State() != component.StateStarted {
		t.Fatalf("composite stop not rolled back: %v", cp.State())
	}
}

func TestDemoteMissingPromotion(t *testing.T) {
	rt := component.NewRuntime(nil)
	if _, err := rt.AddComposite("box"); err != nil {
		t.Fatal(err)
	}
	script := MustParse("demote box:ghost")
	if _, err := Execute(context.Background(), rt, script, Env{}); !errors.Is(err, component.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestStatementsOnMissingTargets(t *testing.T) {
	rt := component.NewRuntime(nil)
	for _, src := range []string{
		"stop ghost",
		"start ghost",
		"remove ghost",
		"set ghost.x = 1",
		"wire ghost.a -> ghost.b",
		"unwire ghost.a",
		"promote ghost:svc => child.svc",
	} {
		if _, err := Execute(context.Background(), rt, MustParse(src), Env{}); err == nil {
			t.Errorf("Execute(%q) succeeded on empty runtime", src)
		}
	}
}
