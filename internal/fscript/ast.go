package fscript

import (
	"fmt"
	"strings"
)

// Stmt is one reconfiguration statement.
type Stmt interface {
	fmt.Stringer
	// Line returns the source line of the statement for diagnostics.
	Line() int
}

type stmtBase struct{ line int }

func (s stmtBase) Line() int { return s.line }

// AddStmt instantiates a component definition (named in the transition
// package environment) at a path: `add <def> as <path>`.
type AddStmt struct {
	stmtBase
	Def  string
	Path string
}

func (s AddStmt) String() string { return fmt.Sprintf("add %s as %s", s.Def, s.Path) }

// RemoveStmt deletes the component at a path: `remove <path>`.
type RemoveStmt struct {
	stmtBase
	Path string
}

func (s RemoveStmt) String() string { return "remove " + s.Path }

// WireStmt connects a reference to a service:
// `wire <path>.<ref> -> <path>.<svc>`.
type WireStmt struct {
	stmtBase
	FromPath  string
	Reference string
	ToPath    string
	Service   string
}

func (s WireStmt) String() string {
	return fmt.Sprintf("wire %s.%s -> %s.%s", s.FromPath, s.Reference, s.ToPath, s.Service)
}

// UnwireStmt disconnects a reference: `unwire <path>.<ref>`.
type UnwireStmt struct {
	stmtBase
	FromPath  string
	Reference string
}

func (s UnwireStmt) String() string { return fmt.Sprintf("unwire %s.%s", s.FromPath, s.Reference) }

// StartStmt opens a node: `start <path>`.
type StartStmt struct {
	stmtBase
	Path string
}

func (s StartStmt) String() string { return "start " + s.Path }

// StopStmt drains and closes a node: `stop <path>`.
type StopStmt struct {
	stmtBase
	Path string
}

func (s StopStmt) String() string { return "stop " + s.Path }

// SetStmt pushes a property: `set <path>.<name> = <literal>`.
type SetStmt struct {
	stmtBase
	Path  string
	Name  string
	Value any
}

func (s SetStmt) String() string { return fmt.Sprintf("set %s.%s = %v", s.Path, s.Name, s.Value) }

// PromoteStmt exposes a child service on a composite boundary:
// `promote <compositePath>:<svc> => <child>.<childSvc>`.
type PromoteStmt struct {
	stmtBase
	Composite    string
	Service      string
	Child        string
	ChildService string
}

func (s PromoteStmt) String() string {
	return fmt.Sprintf("promote %s:%s => %s.%s", s.Composite, s.Service, s.Child, s.ChildService)
}

// DemoteStmt removes a promoted service: `demote <compositePath>:<svc>`.
type DemoteStmt struct {
	stmtBase
	Composite string
	Service   string
}

func (s DemoteStmt) String() string { return fmt.Sprintf("demote %s:%s", s.Composite, s.Service) }

// FailStmt unconditionally raises a ScriptError: `fail "<message>"`. It
// exists so tests and fault-injection campaigns can exercise the rollback
// and fail-silent machinery at a chosen point.
type FailStmt struct {
	stmtBase
	Message string
}

func (s FailStmt) String() string { return fmt.Sprintf("fail %q", s.Message) }

// Script is a parsed reconfiguration script.
type Script struct {
	Stmts []Stmt
}

// String renders the script back to source form.
func (s *Script) String() string {
	lines := make([]string, 0, len(s.Stmts))
	for _, st := range s.Stmts {
		lines = append(lines, st.String())
	}
	return strings.Join(lines, "\n")
}
