package fscript

import (
	"fmt"
	"strconv"
)

// Parse compiles script source into a Script.
func Parse(src string) (*Script, error) {
	tokens, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	return p.parseScript()
}

// MustParse is Parse that panics on error; for scripts embedded in the
// transition-package catalogue where a syntax error is a programming bug.
func MustParse(src string) *Script {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) peek() token { return p.tokens[p.pos] }

func (p *parser) next() token {
	t := p.tokens[p.pos]
	if t.kind != tokenEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokenKind) (token, error) {
	t := p.next()
	if t.kind != kind {
		return token{}, fmt.Errorf("fscript: line %d: expected %s, got %s", t.line, kind, t)
	}
	return t, nil
}

func (p *parser) skipTerminators() {
	for p.peek().kind == tokenTerminator {
		p.next()
	}
}

func (p *parser) parseScript() (*Script, error) {
	s := &Script{}
	for {
		p.skipTerminators()
		if p.peek().kind == tokenEOF {
			return s, nil
		}
		stmt, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Stmts = append(s.Stmts, stmt)
		if t := p.peek(); t.kind != tokenTerminator && t.kind != tokenEOF {
			return nil, fmt.Errorf("fscript: line %d: unexpected %s after statement", t.line, t)
		}
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	kw, err := p.expect(tokenWord)
	if err != nil {
		return nil, err
	}
	base := stmtBase{line: kw.line}
	switch kw.text {
	case "add":
		def, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		if as, err := p.expect(tokenWord); err != nil || as.text != "as" {
			return nil, fmt.Errorf("fscript: line %d: expected 'as' in add statement", kw.line)
		}
		path, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		return AddStmt{stmtBase: base, Def: def.text, Path: path.text}, nil
	case "remove":
		path, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		return RemoveStmt{stmtBase: base, Path: path.text}, nil
	case "wire":
		fromPath, ref, err := p.parseMember()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokenArrow); err != nil {
			return nil, err
		}
		toPath, svc, err := p.parseMember()
		if err != nil {
			return nil, err
		}
		return WireStmt{stmtBase: base, FromPath: fromPath, Reference: ref, ToPath: toPath, Service: svc}, nil
	case "unwire":
		fromPath, ref, err := p.parseMember()
		if err != nil {
			return nil, err
		}
		return UnwireStmt{stmtBase: base, FromPath: fromPath, Reference: ref}, nil
	case "start":
		path, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		return StartStmt{stmtBase: base, Path: path.text}, nil
	case "stop":
		path, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		return StopStmt{stmtBase: base, Path: path.text}, nil
	case "set":
		path, name, err := p.parseMember()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokenEquals); err != nil {
			return nil, err
		}
		value, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return SetStmt{stmtBase: base, Path: path, Name: name, Value: value}, nil
	case "promote":
		composite, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokenColon); err != nil {
			return nil, err
		}
		svc, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokenDoubleArrow); err != nil {
			return nil, err
		}
		child, childSvc, err := p.parseMember()
		if err != nil {
			return nil, err
		}
		return PromoteStmt{stmtBase: base, Composite: composite.text, Service: svc.text, Child: child, ChildService: childSvc}, nil
	case "demote":
		composite, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokenColon); err != nil {
			return nil, err
		}
		svc, err := p.expect(tokenWord)
		if err != nil {
			return nil, err
		}
		return DemoteStmt{stmtBase: base, Composite: composite.text, Service: svc.text}, nil
	case "fail":
		msg, err := p.expect(tokenString)
		if err != nil {
			return nil, err
		}
		return FailStmt{stmtBase: base, Message: msg.text}, nil
	default:
		return nil, fmt.Errorf("fscript: line %d: unknown statement %q", kw.line, kw.text)
	}
}

// parseMember parses `<path>.<ident>`.
func (p *parser) parseMember() (path, member string, err error) {
	pathTok, err := p.expect(tokenWord)
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect(tokenDot); err != nil {
		return "", "", err
	}
	memberTok, err := p.expect(tokenWord)
	if err != nil {
		return "", "", err
	}
	return pathTok.text, memberTok.text, nil
}

func (p *parser) parseLiteral() (any, error) {
	t := p.next()
	switch t.kind {
	case tokenString:
		return t.text, nil
	case tokenNumber:
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return i, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("fscript: line %d: bad number %q", t.line, t.text)
		}
		return f, nil
	case tokenWord:
		switch t.text {
		case "true":
			return true, nil
		case "false":
			return false, nil
		}
		return t.text, nil
	default:
		return nil, fmt.Errorf("fscript: line %d: expected literal, got %s", t.line, t)
	}
}
