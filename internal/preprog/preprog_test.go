package preprog

import (
	"context"
	"testing"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

func newReplica(t *testing.T, supported []core.ID) *Replica {
	t.Helper()
	net := transport.NewMemNetwork(transport.WithSeed(1))
	h, err := host.New("station", net, ftm.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Crash)
	r, err := NewReplica(context.Background(), h, "calc", ftm.NewCalculator(), supported)
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	return r
}

func TestAllFTMsDeployedUpFront(t *testing.T) {
	r := newReplica(t, core.DeployableSet())
	if got := len(r.Supported()); got != 6 {
		t.Fatalf("supported = %d", got)
	}
	count, err := r.ComponentCount()
	if err != nil {
		t.Fatal(err)
	}
	// Six full FTM composites: the dead-code footprint. Each carries 8
	// components (5 infrastructure + 3 bricks).
	if count != 48 {
		t.Fatalf("component count = %d, want 48", count)
	}
	if r.Active() != core.DeployableSet()[0] {
		t.Fatalf("active = %s", r.Active())
	}
}

func TestSwitchTransfersState(t *testing.T) {
	r := newReplica(t, []core.ID{core.PBR, core.LFR})
	// Mutate state through the active composite's server.
	app := r.app
	if _, _, err := app.Process("set:x", 41); err != nil {
		t.Fatal(err)
	}
	d, err := r.Switch(context.Background(), core.LFR)
	if err != nil {
		t.Fatalf("Switch: %v", err)
	}
	if d <= 0 {
		t.Fatal("switch duration not measured")
	}
	if r.Active() != core.LFR {
		t.Fatalf("active = %s", r.Active())
	}
	result, _, err := app.Process("get:x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if result != 41 {
		t.Fatalf("state after switch = %d", result)
	}
}

func TestSwitchOutsideForeseenSetFails(t *testing.T) {
	r := newReplica(t, []core.ID{core.PBR, core.LFR})
	if _, err := r.Switch(context.Background(), core.ALFR); err == nil {
		t.Fatal("switch to unforeseen FTM accepted")
	}
}

func TestSwitchToSelfIsNoOp(t *testing.T) {
	r := newReplica(t, []core.ID{core.PBR, core.LFR})
	if _, err := r.Switch(context.Background(), core.PBR); err != nil {
		t.Fatalf("self switch: %v", err)
	}
}

func TestOnlyActiveCompositeIsStarted(t *testing.T) {
	r := newReplica(t, []core.ID{core.PBR, core.LFR})
	rt := r.h.Runtime()
	activeCP, err := rt.LookupComposite(r.composites[core.PBR])
	if err != nil {
		t.Fatal(err)
	}
	if activeCP.State() != component.StateStarted {
		t.Fatal("active composite not started")
	}
	idleCP, err := rt.LookupComposite(r.composites[core.LFR])
	if err != nil {
		t.Fatal(err)
	}
	if idleCP.State() != component.StateStopped {
		t.Fatal("idle composite not stopped")
	}
}

func TestSwitchBackAndForthKeepsState(t *testing.T) {
	r := newReplica(t, []core.ID{core.PBR, core.LFR, core.LFRTR})
	if _, _, err := r.app.Process("set:x", 11); err != nil {
		t.Fatal(err)
	}
	chain := []core.ID{core.LFR, core.LFRTR, core.PBR, core.LFR}
	for _, to := range chain {
		if _, err := r.Switch(context.Background(), to); err != nil {
			t.Fatalf("switch to %s: %v", to, err)
		}
		got, _, err := r.app.Process("get:x", 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != 11 {
			t.Fatalf("state after switch to %s = %d", to, got)
		}
	}
}

func TestReplyLogTransfersAcrossSwitch(t *testing.T) {
	// The monolithic switch must move the reply log too, or at-most-once
	// breaks across switches.
	r := newReplica(t, []core.ID{core.PBR, core.LFR})
	rt := r.h.Runtime()
	logComp, err := rt.Lookup(r.composites[core.PBR] + "/" + ftm.NameReplyLog)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := logComp.ServiceEndpoint(ftm.SvcLog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Invoke(context.Background(), component.Message{
		Op:      ftm.OpRecord,
		Payload: rpc.Response{ClientID: "c", Seq: 1, Status: rpc.StatusOK},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Switch(context.Background(), core.LFR); err != nil {
		t.Fatal(err)
	}
	target, err := rt.Lookup(r.composites[core.LFR] + "/" + ftm.NameReplyLog)
	if err != nil {
		t.Fatal(err)
	}
	tsvc, err := target.ServiceEndpoint(ftm.SvcLog)
	if err != nil {
		t.Fatal(err)
	}
	reply, err := tsvc.Invoke(context.Background(), component.Message{Op: ftm.OpSnapshot})
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := reply.Payload.([]rpc.Response)
	if len(snap) != 1 || snap[0].ClientID != "c" {
		t.Fatalf("reply log after switch = %v", snap)
	}
}
