// Package preprog implements the baseline the paper compares against
// (§6.2, related work [8][9][10]): preprogrammed adaptive fault
// tolerance. Every FTM that may ever be needed is deployed up-front as a
// complete composite; adaptation switches which composite is active and
// transfers state monolithically between them. Switching is fast — the
// code is already loaded — but the system permanently carries every
// inactive FTM ("dead code"), and only transitions foreseen at design
// time are possible.
package preprog

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/appstate"
	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

// Replica is one host carrying the full preprogrammed FTM stack: one
// composite per supported FTM, exactly one active at a time.
type Replica struct {
	h *host.Host

	mu         sync.Mutex
	system     string
	app        ftm.Application
	active     core.ID
	composites map[core.ID]string // FTM -> composite path
}

// NewReplica deploys every FTM in supported as a stand-alone composite on
// a fresh host and activates the first one.
func NewReplica(ctx context.Context, h *host.Host, system string, app ftm.Application, supported []core.ID) (*Replica, error) {
	if len(supported) == 0 {
		return nil, fmt.Errorf("preprog: empty FTM set")
	}
	r := &Replica{
		h:          h,
		system:     system,
		app:        app,
		composites: make(map[core.ID]string, len(supported)),
	}
	for _, id := range supported {
		path, err := ftm.DeployFTM(ctx, h, ftm.ReplicaConfig{
			System: system + "-" + string(id),
			FTM:    id,
			Role:   core.RoleMaster,
			App:    app,
			// Detector timing is irrelevant here; there is no peer.
			HeartbeatInterval: time.Second,
			SuspectTimeout:    5 * time.Second,
		}, nil)
		if err != nil {
			return nil, fmt.Errorf("preprog: deploy %s: %w", id, err)
		}
		r.composites[id] = path
		// Deactivate: only the selected FTM's boundary is open.
		if err := h.Runtime().Stop(ctx, path); err != nil {
			return nil, err
		}
	}
	first := supported[0]
	if err := h.Runtime().Start(ctx, r.composites[first]); err != nil {
		return nil, err
	}
	r.active = first
	return r, nil
}

// Active returns the currently selected FTM.
func (r *Replica) Active() core.ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.active
}

// Supported returns the preprogrammed FTM set, in no particular order.
func (r *Replica) Supported() []core.ID {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]core.ID, 0, len(r.composites))
	for id := range r.composites {
		out = append(out, id)
	}
	return out
}

// ComponentCount returns how many components the host carries — the
// dead-code footprint the paper's agile approach avoids.
func (r *Replica) ComponentCount() (int, error) {
	d, err := r.h.Runtime().Describe("")
	if err != nil {
		return 0, err
	}
	return len(d.ComponentPaths()), nil
}

// Switch activates another preprogrammed FTM: stop the active composite,
// transfer application state and reply log monolithically, start the
// target. It returns the switch duration. Switching to an FTM outside
// the preprogrammed set fails — the limitation motivating the paper's
// agile approach.
func (r *Replica) Switch(ctx context.Context, to core.ID) (time.Duration, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	start := time.Now()
	if to == r.active {
		return time.Since(start), nil
	}
	fromPath, ok := r.composites[r.active]
	if !ok {
		return 0, fmt.Errorf("preprog: active composite missing")
	}
	toPath, ok := r.composites[to]
	if !ok {
		return 0, fmt.Errorf("preprog: FTM %s was not foreseen at design time", to)
	}
	rt := r.h.Runtime()

	// Monolithic replacement: quiesce the old FTM, transfer state, start
	// the new one.
	if err := rt.Stop(ctx, fromPath); err != nil {
		return 0, err
	}
	cp, err := r.captureFrom(ctx, rt, fromPath)
	if err != nil {
		return 0, err
	}
	if err := rt.Start(ctx, toPath); err != nil {
		return 0, err
	}
	if err := r.restoreInto(ctx, rt, toPath, cp); err != nil {
		return 0, err
	}
	r.active = to
	return time.Since(start), nil
}

// captureFrom snapshots app state and reply log from a composite.
func (r *Replica) captureFrom(ctx context.Context, rt *component.Runtime, path string) (appstate.Checkpoint, error) {
	stateSvc, logSvc, err := stateAndLog(rt, path)
	if err != nil {
		return appstate.Checkpoint{}, err
	}
	stateReply, err := stateSvc.Invoke(ctx, component.Message{Op: ftm.OpCapture})
	if err != nil {
		return appstate.Checkpoint{}, err
	}
	appState, _ := stateReply.Payload.([]byte)
	logReply, err := logSvc.Invoke(ctx, component.Message{Op: ftm.OpSnapshot})
	if err != nil {
		return appstate.Checkpoint{}, err
	}
	snap, _ := logReply.Payload.([]rpc.Response)
	logData, err := transport.Encode(snap)
	if err != nil {
		return appstate.Checkpoint{}, err
	}
	return appstate.Checkpoint{AppState: appState, ReplyLog: logData}, nil
}

// restoreInto installs a checkpoint into a composite.
func (r *Replica) restoreInto(ctx context.Context, rt *component.Runtime, path string, cp appstate.Checkpoint) error {
	stateSvc, logSvc, err := stateAndLog(rt, path)
	if err != nil {
		return err
	}
	if _, err := stateSvc.Invoke(ctx, component.Message{Op: ftm.OpRestoreState, Payload: cp.AppState}); err != nil {
		return err
	}
	var snap []rpc.Response
	if err := transport.Decode(cp.ReplyLog, &snap); err != nil {
		return err
	}
	_, err = logSvc.Invoke(ctx, component.Message{Op: ftm.OpRestoreL, Payload: snap})
	return err
}

func stateAndLog(rt *component.Runtime, path string) (component.Service, component.Service, error) {
	server, err := rt.Lookup(path + "/" + ftm.NameServer)
	if err != nil {
		return nil, nil, err
	}
	stateSvc, err := server.ServiceEndpoint(ftm.SvcState)
	if err != nil {
		return nil, nil, err
	}
	logComp, err := rt.Lookup(path + "/" + ftm.NameReplyLog)
	if err != nil {
		return nil, nil, err
	}
	logSvc, err := logComp.ServiceEndpoint(ftm.SvcLog)
	if err != nil {
		return nil, nil, err
	}
	return stateSvc, logSvc, nil
}

// Note: the preprogrammed replicas share one application instance across
// their composites in this implementation (state transfer is still
// performed explicitly through the checkpoint path so its cost is
// measured), mirroring preprogrammed middleware where all strategies wrap
// the same servant object.
