// Package resilience implements the Resilience Management Service: it
// owns the system's (FT, A, R) model, checks the deployed FTM's
// consistency against it, maps adaptation triggers onto the Figure 8
// scenario graph, and drives the Adaptation Engine — automatically for
// mandatory transitions, through the system manager (man-in-the-loop)
// for possible ones. The mandatory/possible asymmetry plus the manager
// gate is what prevents FTM oscillation (§5.4).
package resilience

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
)

// SystemManager is the man-in-the-loop deciding whether to execute a
// possible (non-mandatory) transition.
type SystemManager interface {
	// ApprovePossible is consulted before executing a possible
	// transition.
	ApprovePossible(edge core.ScenarioEdge) bool
}

// AutoApprove approves every possible transition (fully autonomous
// operation).
type AutoApprove struct{}

// ApprovePossible always returns true.
func (AutoApprove) ApprovePossible(core.ScenarioEdge) bool { return true }

// Conservative declines every possible transition (only mandatory
// transitions execute).
type Conservative struct{}

// ApprovePossible always returns false.
func (Conservative) ApprovePossible(core.ScenarioEdge) bool { return false }

// ManagerFunc adapts a function to the SystemManager interface.
type ManagerFunc func(edge core.ScenarioEdge) bool

// ApprovePossible calls the function.
func (f ManagerFunc) ApprovePossible(edge core.ScenarioEdge) bool { return f(edge) }

// Action classifies the outcome of handling one trigger.
type Action string

// Actions.
const (
	// ActionTransition reports an executed inter-FTM transition.
	ActionTransition Action = "transition-executed"
	// ActionDeclined reports a possible transition the manager declined.
	ActionDeclined Action = "possible-declined"
	// ActionIntra reports an intra-FTM reconfiguration.
	ActionIntra Action = "intra-ftm"
	// ActionNone reports a trigger with no matching scenario edge.
	ActionNone Action = "no-edge"
	// ActionDeadEnd reports a transition into the no-generic-solution
	// state: the application runs unprotected until characteristics
	// change.
	ActionDeadEnd Action = "no-generic-solution"
	// ActionFailed reports a transition that failed to execute.
	ActionFailed Action = "transition-failed"
)

// Decision records how one trigger was handled.
type Decision struct {
	Trigger core.Trigger
	From    core.ScenState
	Edge    *core.ScenarioEdge
	Action  Action
	FromFTM core.ID
	ToFTM   core.ID
	// Inconsistencies lists (FT, A, R) violations of the FTM deployed
	// after handling the trigger (empty when consistent).
	Inconsistencies []core.Inconsistency
	Err             error
	At              time.Time
}

// String renders the decision.
func (d Decision) String() string {
	s := fmt.Sprintf("%s @ %s: %s", d.Trigger, d.From, d.Action)
	if d.Action == ActionTransition {
		s += fmt.Sprintf(" (%s -> %s)", d.FromFTM, d.ToFTM)
	}
	if d.Err != nil {
		s += " error: " + d.Err.Error()
	}
	return s
}

// Config assembles a resilience service.
type Config struct {
	System *ftm.System
	Engine *adaptation.Engine
	// FaultModel is the initially required fault model.
	FaultModel core.FaultModel
	// Traits are the application's initial characteristics.
	Traits core.AppTraits
	// Resources is the initial resource state.
	Resources core.ResourceState
	// Thresholds partition the resource state (defaults apply when
	// zero).
	Thresholds core.Thresholds
	// Manager is the man-in-the-loop (Conservative when nil).
	Manager SystemManager
}

// Service is the Resilience Management Service.
type Service struct {
	mu        sync.Mutex
	sys       *ftm.System
	engine    *adaptation.Engine
	ft        core.FaultModel
	traits    core.AppTraits
	res       core.ResourceState
	th        core.Thresholds
	manager   SystemManager
	decisions []Decision
	// deadEnd marks the no-generic-solution state: no FTM is deployed
	// conceptually (the last one remains attached but is known-invalid).
	deadEnd bool
}

// New returns a resilience service.
func New(cfg Config) *Service {
	if cfg.Manager == nil {
		cfg.Manager = Conservative{}
	}
	if cfg.Thresholds == (core.Thresholds{}) {
		cfg.Thresholds = core.DefaultThresholds()
	}
	if cfg.Engine == nil {
		cfg.Engine = adaptation.NewEngine(nil)
	}
	if cfg.Resources.Hosts == 0 {
		cfg.Resources = core.ResourceState{BandwidthKbps: 10_000, CPUFree: 0.9, Energy: 1, Hosts: 2}
	}
	return &Service{
		sys:     cfg.System,
		engine:  cfg.Engine,
		ft:      cfg.FaultModel,
		traits:  cfg.Traits,
		res:     cfg.Resources,
		th:      cfg.Thresholds,
		manager: cfg.Manager,
	}
}

// Sink returns a trigger sink for the monitoring engine, delivering into
// HandleTrigger with a background context.
func (s *Service) Sink() func(core.Trigger) {
	return func(t core.Trigger) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.HandleTrigger(ctx, t)
	}
}

// Decisions returns the decision log.
func (s *Service) Decisions() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Decision(nil), s.decisions...)
}

// Model returns the service's current (FT, A, R) view.
func (s *Service) Model() (core.FaultModel, core.AppTraits, core.ResourceState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ft, s.traits, s.res
}

// SetResources replaces the resource view (called by monitoring glue
// that knows actual values; triggers alone apply default magnitudes).
func (s *Service) SetResources(r core.ResourceState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.res = r
}

// currentFTM reads the live master's mechanism.
func (s *Service) currentFTM() (core.ID, error) {
	if m := s.sys.Master(); m != nil {
		return m.FTM(), nil
	}
	for _, r := range s.sys.Replicas() {
		if r != nil && !r.Host().Crashed() {
			return r.FTM(), nil
		}
	}
	return "", fmt.Errorf("resilience: no live replica")
}

// CheckConsistency validates the deployed FTM against the current
// (FT, A, R) model.
func (s *Service) CheckConsistency() ([]core.Inconsistency, error) {
	id, err := s.currentFTM()
	if err != nil {
		return nil, err
	}
	desc, err := core.Lookup(id)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	ft, traits, res, th := s.ft, s.traits, s.res, s.th
	s.mu.Unlock()
	return core.Validate(desc, ft, traits, res, th), nil
}

// applyTrigger folds a trigger's semantics into the (FT, A, R) model.
// R triggers apply representative magnitudes; callers with exact values
// use SetResources first.
func (s *Service) applyTrigger(t core.Trigger) {
	switch t {
	case core.TrigBandwidthDrop:
		if s.res.BandwidthKbps >= s.th.LowBandwidthKbps {
			s.res.BandwidthKbps = s.th.LowBandwidthKbps / 2
		}
	case core.TrigBandwidthIncrease:
		if s.res.BandwidthKbps < s.th.LowBandwidthKbps {
			s.res.BandwidthKbps = s.th.LowBandwidthKbps * 5
		}
	case core.TrigCPUDrop:
		if s.res.CPUFree >= s.th.LowCPUFree {
			s.res.CPUFree = s.th.LowCPUFree / 2
		}
	case core.TrigCPUIncrease:
		if s.res.CPUFree < 0.9 {
			s.res.CPUFree = 0.9
		}
	case core.TrigStateAccessLoss:
		s.traits.StateAccess = false
	case core.TrigStateAccess:
		s.traits.StateAccess = true
	case core.TrigAppDeterminism:
		s.traits.Deterministic = true
	case core.TrigAppNonDeterminism:
		s.traits.Deterministic = false
	case core.TrigHardwareAging:
		s.ft = s.ft.With(core.FaultTransientValue)
	case core.TrigHardwareReplaced:
		s.ft = s.ft.Without(core.FaultTransientValue)
	case core.TrigCriticalPhase:
		s.ft = s.ft.With(core.FaultTransientValue, core.FaultPermanentValue)
	case core.TrigLessCriticalPhase:
		s.ft = s.ft.Without(core.FaultPermanentValue)
	}
}

// HandleTrigger processes one adaptation trigger: it updates the
// (FT, A, R) model, resolves the Figure 8 edge for the current state,
// and executes or declines the corresponding transition.
func (s *Service) HandleTrigger(ctx context.Context, trigger core.Trigger) Decision {
	s.mu.Lock()
	d := Decision{Trigger: trigger, At: time.Now()}

	var state core.ScenState
	if s.deadEnd {
		state = core.StNone
	} else {
		id, err := s.currentFTMLocked()
		if err != nil {
			d.Err = err
			d.Action = ActionFailed
			s.decisions = append(s.decisions, d)
			s.mu.Unlock()
			return d
		}
		d.FromFTM = id
		st, err := core.StateFor(id, s.traits)
		if err != nil {
			d.Err = err
			d.Action = ActionFailed
			s.decisions = append(s.decisions, d)
			s.mu.Unlock()
			return d
		}
		state = st
	}
	d.From = state
	s.applyTrigger(trigger)
	traits := s.traits

	edges := core.Outgoing(state, trigger)
	var chosen *core.ScenarioEdge
	var intra *core.ScenarioEdge
	for i := range edges {
		e := edges[i]
		switch e.Kind {
		case core.Mandatory, core.Possible:
			if chosen == nil {
				chosen = &e
			}
		case core.Intra:
			intra = &e
		}
	}
	manager := s.manager
	s.mu.Unlock()

	switch {
	case chosen == nil && intra == nil:
		d.Action = ActionNone
	case chosen == nil:
		d.Edge = intra
		d.Action = ActionIntra
	default:
		d.Edge = chosen
		if chosen.Kind == core.Possible && !manager.ApprovePossible(*chosen) {
			// Declined: fall back to the intra-FTM edge when one exists.
			if intra != nil {
				d.Edge = intra
				d.Action = ActionIntra
			} else {
				d.Action = ActionDeclined
			}
		} else {
			d = s.executeEdge(ctx, d, *chosen, traits)
		}
	}

	if inc, err := s.CheckConsistency(); err == nil {
		d.Inconsistencies = inc
	}
	s.mu.Lock()
	s.decisions = append(s.decisions, d)
	s.mu.Unlock()
	return d
}

func (s *Service) currentFTMLocked() (core.ID, error) {
	// currentFTM does not touch s.mu; safe to call with it held.
	return s.currentFTM()
}

// executeEdge runs the transition an edge prescribes.
func (s *Service) executeEdge(ctx context.Context, d Decision, edge core.ScenarioEdge, traits core.AppTraits) Decision {
	if edge.To == core.StNone {
		s.mu.Lock()
		s.deadEnd = true
		s.mu.Unlock()
		d.Action = ActionDeadEnd
		return d
	}
	target, err := core.FTMFor(edge.To, traits)
	if err != nil {
		d.Action = ActionFailed
		d.Err = err
		return d
	}
	d.ToFTM = target
	if target == d.FromFTM && !s.isDeadEnd() {
		d.Action = ActionIntra
		return d
	}
	if _, err := s.engine.TransitionSystem(ctx, s.sys, target); err != nil {
		d.Action = ActionFailed
		d.Err = err
		return d
	}
	s.mu.Lock()
	s.deadEnd = false
	s.mu.Unlock()
	d.Action = ActionTransition
	return d
}

func (s *Service) isDeadEnd() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deadEnd
}
