package resilience

import (
	"context"
	"fmt"
	"testing"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
)

// traitsForEdge derives the application characteristics a system must
// start with so that it sits exactly in the edge's From state and the
// trigger's semantics lead to the edge's To state.
func traitsForEdge(e core.ScenarioEdge) (core.AppTraits, bool) {
	t := core.AppTraits{Deterministic: true, StateAccess: true}
	switch e.From {
	case core.StPBRDet:
	case core.StPBRNonDet:
		t.Deterministic = false
	case core.StLFRState:
	case core.StLFRNoState:
		t.StateAccess = false
	case core.StLFRTR:
	case core.StADuplex, core.StNone:
		// The A&Duplex and dead-end states exist for both state-access
		// configurations; pick the one consistent with the edge.
		switch e.Trigger {
		case core.TrigStateAccess:
			t.StateAccess = false
		case core.TrigHardwareReplaced:
			t.StateAccess = false
		case core.TrigLessCriticalPhase:
			t.StateAccess = e.To == core.StLFRState
		case core.TrigAppDeterminism:
			t.StateAccess = false
			t.Deterministic = false
		case core.TrigAppNonDeterminism:
			t.StateAccess = false
		}
		if e.From == core.StNone {
			t.Deterministic = false
			if e.Trigger == core.TrigAppDeterminism {
				t.Deterministic = false // restored by the trigger itself
			}
		}
	default:
		return t, false
	}
	return t, true
}

// TestScenarioGraphWalk drives every mandatory and possible inter-FTM
// edge of Figure 8 end-to-end: a real two-replica system is deployed in
// the edge's From state, the trigger is injected, and the system must
// arrive in the edge's To state with the corresponding FTM actually
// deployed (verified by live scheme introspection, not bookkeeping).
func TestScenarioGraphWalk(t *testing.T) {
	for i, e := range core.ScenarioGraph() {
		if e.Kind == core.Intra {
			continue // exercised by TestIntraTransitionUpdatesTraitsOnly
		}
		e := e
		name := fmt.Sprintf("%02d_%s__%s__%s", i, e.From, e.Trigger, e.To)
		t.Run(name, func(t *testing.T) {
			traits, ok := traitsForEdge(e)
			if !ok {
				t.Fatalf("no trait derivation for %s", e)
			}

			// Resolve the FTM the From state runs (the dead end deploys
			// the last FTM before the dead end was entered: A&LFR).
			var startFTM core.ID
			if e.From == core.StNone {
				startFTM = core.ALFR
			} else {
				id, err := core.FTMFor(e.From, traits)
				if err != nil {
					t.Fatalf("FTMFor(%s): %v", e.From, err)
				}
				startFTM = id
			}

			sys, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
				System:            "walk",
				FTM:               startFTM,
				HeartbeatInterval: 50 * time.Millisecond,
				SuspectTimeout:    10 * time.Second,
			})
			if err != nil {
				t.Fatalf("NewSystem(%s): %v", startFTM, err)
			}
			defer sys.Shutdown()

			svc := New(Config{
				System:     sys,
				Engine:     adaptation.NewEngine(nil),
				FaultModel: core.MustLookup(startFTM).Tolerates,
				Traits:     traits,
				Manager:    AutoApprove{},
			})
			if e.From == core.StNone {
				// Enter the dead end for real first.
				d := svc.HandleTrigger(context.Background(), core.TrigAppNonDeterminism)
				if d.Action != ActionDeadEnd {
					t.Fatalf("dead-end setup: %s", d)
				}
			}

			d := svc.HandleTrigger(context.Background(), e.Trigger)

			if e.To == core.StNone {
				if d.Action != ActionDeadEnd {
					t.Fatalf("edge %s: action %s, want dead end (%v)", e, d.Action, d.Err)
				}
				return
			}
			if d.Action != ActionTransition {
				t.Fatalf("edge %s: action %s (%v)", e, d.Action, d.Err)
			}
			_, traitsAfter, _ := svc.Model()
			wantFTM, err := core.FTMFor(e.To, traitsAfter)
			if err != nil {
				t.Fatalf("FTMFor(%s): %v", e.To, err)
			}
			m := sys.Master()
			if m.FTM() != wantFTM {
				t.Fatalf("edge %s: deployed %s, want %s", e, m.FTM(), wantFTM)
			}
			scheme, err := m.CurrentScheme()
			if err != nil {
				t.Fatal(err)
			}
			if scheme != core.MustLookup(wantFTM).MasterScheme {
				t.Fatalf("edge %s: live scheme %+v does not match %s", e, scheme, wantFTM)
			}
			// The arrived state round-trips.
			st, err := core.StateFor(m.FTM(), traitsAfter)
			if err != nil {
				t.Fatal(err)
			}
			if st != e.To && !(e.To == core.StADuplex && (st == core.StADuplex)) {
				t.Fatalf("edge %s: arrived in %s", e, st)
			}
		})
	}
}
