package resilience

import (
	"context"
	"strings"
	"testing"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/monitor"
)

func newService(t *testing.T, ftmID core.ID, mgr SystemManager) (*Service, *ftm.System) {
	t.Helper()
	s, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
		System:            "calc",
		FTM:               ftmID,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	svc := New(Config{
		System:     s,
		Engine:     adaptation.NewEngine(nil),
		FaultModel: core.NewFaultModel(core.FaultCrash),
		Traits:     core.AppTraits{Deterministic: true, StateAccess: true},
		Manager:    mgr,
	})
	return svc, s
}

func TestMandatoryTransitionExecutesAutomatically(t *testing.T) {
	svc, sys := newService(t, core.PBR, Conservative{})
	d := svc.HandleTrigger(context.Background(), core.TrigBandwidthDrop)
	if d.Action != ActionTransition {
		t.Fatalf("action = %s (%v)", d.Action, d.Err)
	}
	if d.FromFTM != core.PBR || d.ToFTM != core.LFR {
		t.Fatalf("transition %s -> %s", d.FromFTM, d.ToFTM)
	}
	if sys.Master().FTM() != core.LFR {
		t.Fatalf("live FTM = %s", sys.Master().FTM())
	}
	if len(d.Inconsistencies) != 0 {
		t.Fatalf("inconsistencies after mandatory transition: %v", d.Inconsistencies)
	}
}

func TestPossibleTransitionNeedsManagerApproval(t *testing.T) {
	svc, sys := newService(t, core.PBR, Conservative{})
	d := svc.HandleTrigger(context.Background(), core.TrigCPUIncrease)
	if d.Action != ActionDeclined {
		t.Fatalf("action = %s", d.Action)
	}
	if sys.Master().FTM() != core.PBR {
		t.Fatal("declined transition still executed")
	}

	svc2, sys2 := newService(t, core.PBR, AutoApprove{})
	d = svc2.HandleTrigger(context.Background(), core.TrigCPUIncrease)
	if d.Action != ActionTransition || d.ToFTM != core.LFR {
		t.Fatalf("approved possible transition: %s (%s -> %s) %v", d.Action, d.FromFTM, d.ToFTM, d.Err)
	}
	if sys2.Master().FTM() != core.LFR {
		t.Fatal("approved transition not executed")
	}
}

func TestIntraTransitionUpdatesTraitsOnly(t *testing.T) {
	svc, sys := newService(t, core.PBR, Conservative{})
	d := svc.HandleTrigger(context.Background(), core.TrigAppNonDeterminism)
	if d.Action != ActionIntra {
		t.Fatalf("action = %s", d.Action)
	}
	if sys.Master().FTM() != core.PBR {
		t.Fatal("intra transition changed the FTM")
	}
	_, traits, _ := svc.Model()
	if traits.Deterministic {
		t.Fatal("traits not updated")
	}
	// The FTM stays consistent: PBR supports non-determinism.
	if len(d.Inconsistencies) != 0 {
		t.Fatalf("inconsistencies: %v", d.Inconsistencies)
	}
}

func TestDeclinedPossibleFallsBackToIntra(t *testing.T) {
	// PBR/non-det + app-determinism: possible edge to LFR, intra edge to
	// PBR/det. With a conservative manager the intra edge is taken.
	svc, sys := newService(t, core.PBR, Conservative{})
	svc.HandleTrigger(context.Background(), core.TrigAppNonDeterminism)
	d := svc.HandleTrigger(context.Background(), core.TrigAppDeterminism)
	if d.Action != ActionIntra {
		t.Fatalf("action = %s", d.Action)
	}
	if sys.Master().FTM() != core.PBR {
		t.Fatal("fallback changed the FTM")
	}
}

func TestProactiveHardeningOnHardwareAging(t *testing.T) {
	svc, sys := newService(t, core.LFR, Conservative{})
	d := svc.HandleTrigger(context.Background(), core.TrigHardwareAging)
	if d.Action != ActionTransition || d.ToFTM != core.LFRTR {
		t.Fatalf("hardware aging: %s -> %s (%s) %v", d.FromFTM, d.ToFTM, d.Action, d.Err)
	}
	if sys.Master().FTM() != core.LFRTR {
		t.Fatal("LFR⊕TR not deployed")
	}
	ft, _, _ := svc.Model()
	if !ft.Has(core.FaultTransientValue) {
		t.Fatal("fault model not extended")
	}
	if d.Edge.Nature != core.Proactive {
		t.Fatal("FT-driven edge not proactive")
	}
}

func TestCriticalPhaseMovesToAssertionDuplex(t *testing.T) {
	svc, sys := newService(t, core.LFR, Conservative{})
	d := svc.HandleTrigger(context.Background(), core.TrigCriticalPhase)
	if d.Action != ActionTransition {
		t.Fatalf("action = %s: %v", d.Action, d.Err)
	}
	if got := sys.Master().FTM(); got != core.APBR {
		t.Fatalf("critical phase deployed %s, want a_pbr (state access available)", got)
	}
}

func TestStateAccessLossOnLFRTRMovesToADuplex(t *testing.T) {
	svc, sys := newService(t, core.LFRTR, Conservative{})
	// Align the model with the deployed FTM.
	svc.mu.Lock()
	svc.ft = core.NewFaultModel(core.FaultCrash, core.FaultTransientValue)
	svc.mu.Unlock()
	d := svc.HandleTrigger(context.Background(), core.TrigStateAccessLoss)
	if d.Action != ActionTransition {
		t.Fatalf("action = %s: %v", d.Action, d.Err)
	}
	if got := sys.Master().FTM(); got != core.ALFR {
		t.Fatalf("deployed %s, want a_lfr (no state access)", got)
	}
}

func TestDeadEndAndRecovery(t *testing.T) {
	svc, sys := newService(t, core.ALFR, AutoApprove{})
	d := svc.HandleTrigger(context.Background(), core.TrigAppNonDeterminism)
	if d.Action != ActionDeadEnd {
		t.Fatalf("action = %s", d.Action)
	}
	// A&LFR stays physically attached but is known-inconsistent.
	if inc, err := svc.CheckConsistency(); err != nil || len(inc) == 0 {
		t.Fatalf("dead-end consistency = %v, %v (want violations)", inc, err)
	}
	// State access returning offers a way out (possible edge, approved).
	d = svc.HandleTrigger(context.Background(), core.TrigStateAccess)
	if d.Action != ActionTransition || d.ToFTM != core.PBR {
		t.Fatalf("dead-end exit: %s to %s: %v", d.Action, d.ToFTM, d.Err)
	}
	if sys.Master().FTM() != core.PBR {
		t.Fatal("PBR not deployed after dead-end exit")
	}
}

func TestOscillationGuard(t *testing.T) {
	// A bandwidth value flapping around the threshold causes exactly one
	// transition under a conservative manager: the mandatory drop edge
	// fires; the reverse is possible and declined; further drops find the
	// system already adapted.
	svc, sys := newService(t, core.PBR, Conservative{})
	transitions := 0
	for i := 0; i < 5; i++ {
		d1 := svc.HandleTrigger(context.Background(), core.TrigBandwidthDrop)
		if d1.Action == ActionTransition {
			transitions++
		}
		d2 := svc.HandleTrigger(context.Background(), core.TrigBandwidthIncrease)
		if d2.Action == ActionTransition {
			transitions++
		}
	}
	if transitions != 1 {
		t.Fatalf("flapping caused %d transitions, want 1", transitions)
	}
	if sys.Master().FTM() != core.LFR {
		t.Fatal("system did not settle on LFR")
	}
	if len(svc.Decisions()) != 10 {
		t.Fatalf("decision log has %d entries", len(svc.Decisions()))
	}
}

func TestMonitorToResilienceLoop(t *testing.T) {
	// Full loop: a probe crosses a threshold, the monitoring engine fires
	// the trigger into the resilience service, which executes the
	// mandatory transition.
	svc, sys := newService(t, core.PBR, Conservative{})
	res := sys.Hosts()[0].Resources()
	eng := monitor.New(time.Hour, svc.Sink())
	eng.AddProbe(monitor.BandwidthProbe("bw", res))
	eng.AddRule(monitor.Rule{
		Probe: "bw", Cond: monitor.Below, Threshold: 1000,
		Consecutive: 2, Trigger: core.TrigBandwidthDrop,
	})

	eng.Poll() // healthy
	res.SetBandwidth(200)
	eng.Poll() // first low sample: hysteresis holds
	if sys.Master().FTM() != core.PBR {
		t.Fatal("transition fired before hysteresis was satisfied")
	}
	eng.Poll() // second low sample: trigger fires
	if sys.Master().FTM() != core.LFR {
		t.Fatal("monitor-driven mandatory transition did not execute")
	}
}

func TestNoEdgeTrigger(t *testing.T) {
	svc, _ := newService(t, core.PBR, Conservative{})
	d := svc.HandleTrigger(context.Background(), core.TrigHardwareReplaced)
	if d.Action != ActionNone {
		t.Fatalf("action = %s", d.Action)
	}
}

func TestMeasuredLoadDrivesTransition(t *testing.T) {
	// Full measured loop: an invocation-metrics interceptor on the live
	// server feeds a busy-fraction probe; sustained load crosses the
	// CPU rule and the resilience service executes the approved
	// LFR -> PBR transition (the "CPU drop" edge of Figure 8).
	svc, sys := newService(t, core.LFR, AutoApprove{})
	metrics, err := sys.Master().AttachMetrics()
	if err != nil {
		t.Fatal(err)
	}
	c, err := sys.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	eng := monitor.New(time.Hour, svc.Sink())
	eng.AddProbe(monitor.BusyFractionProbe("server-load", metrics.BusyTime))
	eng.AddRule(monitor.Rule{
		Name: "cpu-pressure", Probe: "server-load",
		Cond: monitor.Above, Threshold: 0.001, Consecutive: 1,
		Trigger: core.TrigCPUDrop,
	})

	eng.Poll() // baseline sample
	// Generate real load: enough requests to register busy time.
	for i := 0; i < 200; i++ {
		if _, err := c.Invoke(context.Background(), "add:x", ftm.EncodeArg(1)); err != nil {
			t.Fatal(err)
		}
	}
	eng.Poll()
	if sys.Master().FTM() != core.PBR {
		t.Fatalf("measured load did not drive the transition; FTM = %s (fired: %v)",
			sys.Master().FTM(), eng.Fired())
	}
}

func TestDecisionStringAndAccessors(t *testing.T) {
	d := Decision{
		Trigger: core.TrigBandwidthDrop,
		From:    core.StPBRDet,
		Action:  ActionTransition,
		FromFTM: core.PBR,
		ToFTM:   core.LFR,
	}
	s := d.String()
	for _, want := range []string{"bandwidth-drop", "transition-executed", "pbr", "lfr"} {
		if !strings.Contains(s, want) {
			t.Errorf("Decision.String() = %q missing %q", s, want)
		}
	}
	d.Err = context.DeadlineExceeded
	if !strings.Contains(d.String(), "error:") {
		t.Error("error not rendered")
	}
	var mgr SystemManager = AutoApprove{}
	if !mgr.ApprovePossible(core.ScenarioEdge{}) {
		t.Error("AutoApprove declined")
	}
}

func TestSetResourcesFeedsConsistency(t *testing.T) {
	svc, _ := newService(t, core.PBR, Conservative{})
	// Precise resource values from monitoring glue override the trigger
	// defaults.
	svc.SetResources(core.ResourceState{BandwidthKbps: 100, CPUFree: 0.9, Energy: 1, Hosts: 2})
	inc, err := svc.CheckConsistency()
	if err != nil {
		t.Fatal(err)
	}
	if len(inc) == 0 {
		t.Fatal("bandwidth-starved PBR reported consistent")
	}
	_, _, res := svc.Model()
	if res.BandwidthKbps != 100 {
		t.Fatalf("resources = %+v", res)
	}
}

func TestHandleTriggerWithAllReplicasDead(t *testing.T) {
	svc, sys := newService(t, core.PBR, Conservative{})
	sys.Shutdown()
	d := svc.HandleTrigger(context.Background(), core.TrigBandwidthDrop)
	if d.Action != ActionFailed || d.Err == nil {
		t.Fatalf("decision on dead system = %+v", d)
	}
	if _, err := svc.CheckConsistency(); err == nil {
		t.Fatal("consistency check succeeded on dead system")
	}
}

func TestCurrentFTMFallsBackToSlave(t *testing.T) {
	// With the master mid-failover (crashed, slave not yet promoted), the
	// service still resolves the deployed FTM from the surviving slave.
	svc, sys := newService(t, core.PBR, Conservative{})
	// Freeze failover by using a very long suspect timeout system.
	slow, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
		System:            "calc2",
		FTM:               core.PBR,
		HeartbeatInterval: time.Hour,
		SuspectTimeout:    24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(slow.Shutdown)
	svc2 := New(Config{
		System:     slow,
		FaultModel: core.NewFaultModel(core.FaultCrash),
		Traits:     core.AppTraits{Deterministic: true, StateAccess: true},
	})
	slow.CrashMaster()
	if _, err := svc2.CheckConsistency(); err != nil {
		t.Fatalf("consistency via surviving slave: %v", err)
	}
	_ = svc
	_ = sys
}
