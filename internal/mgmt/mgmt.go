// Package mgmt is the management-plane protocol spoken between the
// resilientd daemon and the ftmctl tool: replica status introspection,
// remotely requested differential transitions, and application
// invocations for smoke-testing a deployment. A daemon hosting several
// replica groups (shards) serves them all from one endpoint; requests
// carry an optional group ID to address one shard.
package mgmt

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// Kind is the transport message kind of management traffic.
const Kind = "mgmt"

// Ops.
const (
	OpStatus     = "status"
	OpTransition = "transition"
	OpDescribe   = "describe"
	OpMetrics    = "metrics"
	OpEvents     = "events"
	OpTrace      = "trace"
	OpBlackbox   = "blackbox"
	OpTune       = "tune"
	OpHealth     = "health"
	OpShards     = "shards"
	OpSLO        = "slo"
)

// SLOReporter is the slice of the SLO engine the management plane
// serves: the full per-shard report as JSON (OpSLO) and a shard's
// one-word grade (the SLO column of OpShards). *slo.Engine implements
// it; the indirection keeps mgmt decoupled from slo's types.
type SLOReporter interface {
	ReportJSON() ([]byte, error)
	ShardGrade(shard string) (string, bool)
}

// tunables lists the replication knobs OpTune may push, all properties
// of the synchronizing After brick: the wave-size cap and the adaptive
// accumulation window's pin/budget (nanoseconds; accumWindow -1
// restores adaptation).
var tunables = map[string]bool{
	"maxWave":     true,
	"accumWindow": true,
	"accumTarget": true,
}

// Request is a management command.
type Request struct {
	Op string
	// Group addresses one replica group on a sharded daemon; empty
	// reaches the daemon's sole replica (the unsharded shape).
	Group string
	// To is the target FTM of a transition.
	To string
	// Trace is the trace id an OpTrace request asks for, in the %016x
	// form the tools print.
	Trace string
	// SinceSeq and EventKind filter an OpEvents request (zero/empty:
	// everything retained).
	SinceSeq  uint64
	EventKind string
	// Name and Value carry an OpTune assignment.
	Name  string
	Value int64
}

// Status reports a replica's state.
type Status struct {
	System string
	Group  string
	Host   string
	FTM    string
	Role   string
	Scheme core.Scheme
	Events []string
}

// ShardStatus is one row of an OpShards reply: a replica group's
// identity and a condensed view of its state.
type ShardStatus struct {
	Group  string
	System string
	Host   string
	FTM    string
	Role   string
	Health string
	// SLO is the shard's current objective grade (ok/warn/page), empty
	// on daemons running without an SLO engine.
	SLO string
}

// TransitionOutcome reports a remotely requested transition.
type TransitionOutcome struct {
	From, To string
	Replaced []string
	DeployUS int64
	ScriptUS int64
	RemoveUS int64
	Err      string
}

// reply is the wire envelope of every management response.
type reply struct {
	Status     *Status
	Transition *TransitionOutcome
	Describe   string
	// Metrics carries the daemon's telemetry registry in the Prometheus
	// text exposition format.
	Metrics string
	// Events carries the daemon's retained trace events (OpEvents).
	Events []telemetry.Event
	// Trace and Boxes carry pre-marshaled JSON (the same documents the
	// daemon's HTTP /trace/{id} and /blackbox routes serve), so the tool
	// side prints them without re-encoding.
	Trace string
	Boxes string
	// Tune echoes an applied OpTune assignment.
	Tune string
	// Health carries the host's graded health report pre-marshaled as
	// JSON (the same document the daemon's HTTP /health route serves).
	Health string
	// SLO carries the per-shard SLO report pre-marshaled as JSON (the
	// same document the daemon's HTTP /slo route serves).
	SLO string
	// Shards carries the per-group roster of a sharded daemon.
	Shards []ShardStatus
	Err    string
}

// served is one replica group under management.
type served struct {
	r      *ftm.Replica
	engine *adaptation.Engine
}

// Server answers management requests for every replica group
// registered on one endpoint. Replica-scoped ops resolve their target
// through the request's group stamp; process-scoped ops (metrics,
// events, traces, black boxes) ignore it — those stores are shared.
type Server struct {
	mu      sync.Mutex
	byGroup map[string]*served
	order   []*served
	slo     SLOReporter
	// promBuf is reused across OpMetrics renders so a metrics poll costs
	// one string copy, not a buffer regrowth per call (the same
	// render-once discipline OpHealth applies to its JSON document).
	promBuf bytes.Buffer
}

// NewServer installs a management handler on ep and returns the server
// to register replicas on.
func NewServer(ep transport.Endpoint) *Server {
	s := &Server{byGroup: make(map[string]*served)}
	ep.Handle(Kind, s.handle)
	return s
}

// Register adds a replica group; a same-group registration replaces the
// previous one. engine executes remotely requested transitions for this
// group's replica.
func (s *Server) Register(r *ftm.Replica, engine *adaptation.Engine) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := &served{r: r, engine: engine}
	if old, ok := s.byGroup[r.Group()]; ok {
		for i, ent := range s.order {
			if ent == old {
				s.order[i] = e
			}
		}
	} else {
		s.order = append(s.order, e)
	}
	s.byGroup[r.Group()] = e
}

// SetSLO wires the daemon's SLO engine into the server; OpSLO replies
// and the SLO column of OpShards stay empty until set.
func (s *Server) SetSLO(rep SLOReporter) {
	s.mu.Lock()
	s.slo = rep
	s.mu.Unlock()
}

// Serve installs a management handler serving the single replica r — the
// unsharded shape, kept for callers predating multi-group daemons.
func Serve(ep transport.Endpoint, r *ftm.Replica, engine *adaptation.Engine) {
	NewServer(ep).Register(r, engine)
}

// resolve picks the replica group a request addresses, mirroring the
// data plane's dispatch: an exact group match wins; an unstamped
// request reaches the sole group; a stamped request is also served by a
// sole group that declares no group ID (an unsharded daemon behind
// group-aware tooling).
func (s *Server) resolve(group string) *served {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byGroup[group]; ok {
		return e
	}
	if len(s.order) == 1 {
		if sole := s.order[0]; group == "" || sole.r.Group() == "" {
			return sole
		}
	}
	return nil
}

func (s *Server) handle(ctx context.Context, p transport.Packet) ([]byte, error) {
	var req Request
	if err := transport.Decode(p.Payload, &req); err != nil {
		return nil, err
	}
	var out reply
	switch req.Op {
	// Process-scoped ops first: they read shared stores and need no
	// replica resolution.
	case OpMetrics:
		s.mu.Lock()
		s.promBuf.Reset()
		err := telemetry.Default().WritePrometheus(&s.promBuf)
		if err == nil {
			out.Metrics = s.promBuf.String()
		}
		s.mu.Unlock()
		if err != nil {
			out.Err = err.Error()
		}
	case OpEvents:
		events := telemetry.DefaultTracer().Since(req.SinceSeq)
		if req.EventKind != "" {
			filtered := events[:0]
			for _, e := range events {
				if e.Kind == req.EventKind {
					filtered = append(filtered, e)
				}
			}
			events = filtered
		}
		out.Events = events
	case OpTrace:
		id, err := strconv.ParseUint(req.Trace, 16, 64)
		if err != nil || id == 0 {
			out.Err = fmt.Sprintf("bad trace id %q (want 16 hex digits)", req.Trace)
			break
		}
		data, err := telemetry.MarshalTrace(id, telemetry.DefaultSpans().ForTrace(id))
		if err != nil {
			out.Err = err.Error()
			break
		}
		out.Trace = string(data)
	case OpBlackbox:
		data, err := telemetry.MarshalBlackBoxes(telemetry.DefaultFlightRecorder().Boxes())
		if err != nil {
			out.Err = err.Error()
			break
		}
		out.Boxes = string(data)
	case OpShards:
		s.mu.Lock()
		entries := append([]*served(nil), s.order...)
		rep := s.slo
		s.mu.Unlock()
		out.Shards = make([]ShardStatus, 0, len(entries))
		for _, e := range entries {
			row := ShardStatus{
				Group:  e.r.Group(),
				System: e.r.System(),
				Host:   e.r.Host().Name(),
				FTM:    string(e.r.FTM()),
				Role:   string(e.r.Role()),
			}
			if hm := e.r.Host().Health(); hm != nil {
				row.Health = hm.Report().Overall.String()
			}
			if rep != nil {
				if grade, ok := rep.ShardGrade(rpc.ShardLabel(e.r.Group())); ok {
					row.SLO = grade
				}
			}
			out.Shards = append(out.Shards, row)
		}
	case OpSLO:
		s.mu.Lock()
		rep := s.slo
		s.mu.Unlock()
		if rep == nil {
			out.Err = "no SLO engine on this daemon"
			break
		}
		data, err := rep.ReportJSON()
		if err != nil {
			out.Err = err.Error()
			break
		}
		out.SLO = string(data)
	default:
		e := s.resolve(req.Group)
		if e == nil {
			out.Err = fmt.Sprintf("no replica for group %q", req.Group)
			break
		}
		s.handleReplica(ctx, e, &req, &out)
	}
	return transport.Encode(out)
}

// handleReplica answers the replica-scoped ops against one group.
func (s *Server) handleReplica(ctx context.Context, e *served, req *Request, out *reply) {
	r := e.r
	switch req.Op {
	case OpStatus:
		scheme, err := r.CurrentScheme()
		if err != nil {
			out.Err = err.Error()
			break
		}
		out.Status = &Status{
			System: r.System(),
			Group:  r.Group(),
			Host:   r.Host().Name(),
			FTM:    string(r.FTM()),
			Role:   string(r.Role()),
			Scheme: scheme,
			Events: r.Events(),
		}
	case OpTransition:
		from := r.FTM()
		report := e.engine.TransitionReplica(ctx, r, core.ID(req.To))
		out.Transition = &TransitionOutcome{
			From:     string(from),
			To:       req.To,
			Replaced: report.Replaced,
			DeployUS: report.Steps.Deploy.Microseconds(),
			ScriptUS: report.Steps.Script.Microseconds(),
			RemoveUS: report.Steps.Remove.Microseconds(),
		}
		if report.Err != nil {
			out.Transition.Err = report.Err.Error()
		}
	case OpTune:
		if !tunables[req.Name] {
			out.Err = fmt.Sprintf("unknown tunable %q", req.Name)
			break
		}
		rt := r.Host().Runtime()
		if rt == nil {
			out.Err = "host crashed"
			break
		}
		path := r.Path() + "/" + core.SlotAfter
		if err := rt.SetProperty(path, req.Name, int(req.Value)); err != nil {
			out.Err = err.Error()
			break
		}
		out.Tune = fmt.Sprintf("%s=%d on %s", req.Name, req.Value, path)
	case OpHealth:
		hm := r.Host().Health()
		// Run the collectors now: a health query deserves a fresh
		// measurement, not the last sweep's.
		hm.Check()
		data, err := json.Marshal(hm.Report())
		if err != nil {
			out.Err = err.Error()
			break
		}
		out.Health = string(data)
	case OpDescribe:
		rt := r.Host().Runtime()
		if rt == nil {
			out.Err = "host crashed"
			break
		}
		d, err := rt.Describe(r.Path())
		if err != nil {
			out.Err = err.Error()
			break
		}
		out.Describe = d.String()
	default:
		out.Err = fmt.Sprintf("unknown management op %q", req.Op)
	}
}

// call performs one management round-trip.
func call(ctx context.Context, ep transport.Endpoint, target transport.Address, req Request) (reply, error) {
	data, err := transport.Encode(req)
	if err != nil {
		return reply{}, err
	}
	callCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	respData, err := ep.Call(callCtx, target, Kind, data)
	if err != nil {
		return reply{}, err
	}
	var out reply
	if err := transport.Decode(respData, &out); err != nil {
		return reply{}, err
	}
	if out.Err != "" {
		return reply{}, fmt.Errorf("mgmt: %s", out.Err)
	}
	return out, nil
}

// QueryStatus fetches a replica's status. group addresses one shard of
// a multi-group daemon; empty reaches the sole replica.
func QueryStatus(ctx context.Context, ep transport.Endpoint, target transport.Address, group string) (Status, error) {
	out, err := call(ctx, ep, target, Request{Op: OpStatus, Group: group})
	if err != nil {
		return Status{}, err
	}
	if out.Status == nil {
		return Status{}, fmt.Errorf("mgmt: empty status reply")
	}
	return *out.Status, nil
}

// QueryShards fetches the roster of replica groups a daemon hosts.
func QueryShards(ctx context.Context, ep transport.Endpoint, target transport.Address) ([]ShardStatus, error) {
	out, err := call(ctx, ep, target, Request{Op: OpShards})
	if err != nil {
		return nil, err
	}
	return out.Shards, nil
}

// RequestTransition asks a replica to transition to another FTM.
func RequestTransition(ctx context.Context, ep transport.Endpoint, target transport.Address, group string, to core.ID) (TransitionOutcome, error) {
	out, err := call(ctx, ep, target, Request{Op: OpTransition, Group: group, To: string(to)})
	if err != nil {
		return TransitionOutcome{}, err
	}
	if out.Transition == nil {
		return TransitionOutcome{}, fmt.Errorf("mgmt: empty transition reply")
	}
	if out.Transition.Err != "" {
		return *out.Transition, fmt.Errorf("mgmt: transition failed: %s", out.Transition.Err)
	}
	return *out.Transition, nil
}

// QueryMetrics fetches a daemon's telemetry registry rendered as
// Prometheus text.
func QueryMetrics(ctx context.Context, ep transport.Endpoint, target transport.Address) (string, error) {
	out, err := call(ctx, ep, target, Request{Op: OpMetrics})
	if err != nil {
		return "", err
	}
	return out.Metrics, nil
}

// QueryEvents fetches a daemon's retained trace events, optionally
// filtered by kind and a sequence watermark.
func QueryEvents(ctx context.Context, ep transport.Endpoint, target transport.Address, kind string, since uint64) ([]telemetry.Event, error) {
	out, err := call(ctx, ep, target, Request{Op: OpEvents, EventKind: kind, SinceSeq: since})
	if err != nil {
		return nil, err
	}
	return out.Events, nil
}

// QueryTrace fetches one trace's retained spans as the JSON document the
// daemon's /trace/{id} route serves. traceID is the %016x form.
func QueryTrace(ctx context.Context, ep transport.Endpoint, target transport.Address, traceID string) (string, error) {
	out, err := call(ctx, ep, target, Request{Op: OpTrace, Trace: traceID})
	if err != nil {
		return "", err
	}
	return out.Trace, nil
}

// QueryBlackbox fetches a daemon's retained black boxes as JSON.
func QueryBlackbox(ctx context.Context, ep transport.Endpoint, target transport.Address) (string, error) {
	out, err := call(ctx, ep, target, Request{Op: OpBlackbox})
	if err != nil {
		return "", err
	}
	return out.Boxes, nil
}

// QueryHealth fetches a host's graded health report as the JSON
// document the daemon's /health route serves.
func QueryHealth(ctx context.Context, ep transport.Endpoint, target transport.Address, group string) (string, error) {
	out, err := call(ctx, ep, target, Request{Op: OpHealth, Group: group})
	if err != nil {
		return "", err
	}
	if out.Health == "" {
		return "", fmt.Errorf("mgmt: empty health reply")
	}
	return out.Health, nil
}

// QuerySLO fetches a daemon's per-shard SLO report as the JSON
// document the daemon's /slo route serves.
func QuerySLO(ctx context.Context, ep transport.Endpoint, target transport.Address) (string, error) {
	out, err := call(ctx, ep, target, Request{Op: OpSLO})
	if err != nil {
		return "", err
	}
	return out.SLO, nil
}

// RequestTune pushes a replication tunable (maxWave, accumWindow,
// accumTarget) onto a replica's synchronizing After brick.
func RequestTune(ctx context.Context, ep transport.Endpoint, target transport.Address, group, name string, value int64) (string, error) {
	out, err := call(ctx, ep, target, Request{Op: OpTune, Group: group, Name: name, Value: value})
	if err != nil {
		return "", err
	}
	return out.Tune, nil
}

// QueryArchitecture fetches a replica's live component architecture.
func QueryArchitecture(ctx context.Context, ep transport.Endpoint, target transport.Address, group string) (string, error) {
	out, err := call(ctx, ep, target, Request{Op: OpDescribe, Group: group})
	if err != nil {
		return "", err
	}
	return out.Describe, nil
}
