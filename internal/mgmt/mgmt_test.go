package mgmt

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

func newServedReplica(t *testing.T) (*ftm.Replica, transport.Endpoint) {
	t.Helper()
	net := transport.NewMemNetwork(transport.WithSeed(1))
	h, err := host.New("node", net, ftm.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Crash)
	r, err := ftm.NewReplica(context.Background(), h, ftm.ReplicaConfig{
		System:            "calc",
		FTM:               core.PBR,
		Role:              core.RoleMaster,
		App:               ftm.NewCalculator(),
		HeartbeatInterval: time.Hour,
		SuspectTimeout:    24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	Serve(h.Endpoint(), r, adaptation.NewEngine(nil))
	ctl, err := net.Endpoint("ctl")
	if err != nil {
		t.Fatal(err)
	}
	return r, ctl
}

// newShardedServer deploys two replica groups on one host and serves
// both from its endpoint.
func newShardedServer(t *testing.T) (*Server, transport.Endpoint) {
	t.Helper()
	net := transport.NewMemNetwork(transport.WithSeed(1))
	h, err := host.New("node", net, ftm.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Crash)
	srv := NewServer(h.Endpoint())
	for _, gid := range []string{"0", "1"} {
		r, err := ftm.NewReplica(context.Background(), h, ftm.ReplicaConfig{
			System:            "calc-" + gid,
			Group:             gid,
			FTM:               core.PBR,
			Role:              core.RoleMaster,
			App:               ftm.NewCalculator(),
			HeartbeatInterval: time.Hour,
			SuspectTimeout:    24 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		srv.Register(r, adaptation.NewEngine(nil))
	}
	ctl, err := net.Endpoint("ctl")
	if err != nil {
		t.Fatal(err)
	}
	return srv, ctl
}

func TestShardedServerRoutesByGroup(t *testing.T) {
	_, ctl := newShardedServer(t)
	ctx := context.Background()

	// Each group answers for itself.
	for _, gid := range []string{"0", "1"} {
		st, err := QueryStatus(ctx, ctl, "node", gid)
		if err != nil {
			t.Fatalf("status of group %s: %v", gid, err)
		}
		if st.Group != gid || st.System != "calc-"+gid {
			t.Fatalf("group %s status = %+v", gid, st)
		}
	}
	// A group the daemon does not host is an error, and with two groups
	// an unstamped replica-scoped request is ambiguous.
	if _, err := QueryStatus(ctx, ctl, "node", "9"); err == nil {
		t.Fatal("status of unhosted group succeeded")
	}
	if _, err := QueryStatus(ctx, ctl, "node", ""); err == nil {
		t.Fatal("unstamped status on a two-group daemon succeeded")
	}

	// The roster lists both groups with their identity and health grade.
	rows, err := QueryShards(ctx, ctl, "node")
	if err != nil {
		t.Fatalf("QueryShards: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("shard roster = %+v", rows)
	}
	seen := map[string]bool{}
	for _, row := range rows {
		seen[row.Group] = true
		if row.System != "calc-"+row.Group || row.Host != "node" || row.FTM != "pbr" || row.Role != "master" {
			t.Fatalf("shard row = %+v", row)
		}
		if row.Health == "" {
			t.Fatalf("shard row %s has no health grade", row.Group)
		}
	}
	if !seen["0"] || !seen["1"] {
		t.Fatalf("roster misses a group: %+v", rows)
	}

	// A transition addressed to group 1 leaves group 0 untouched.
	if _, err := RequestTransition(ctx, ctl, "node", "1", core.LFR); err != nil {
		t.Fatalf("transition of group 1: %v", err)
	}
	st0, err := QueryStatus(ctx, ctl, "node", "0")
	if err != nil {
		t.Fatal(err)
	}
	st1, err := QueryStatus(ctx, ctl, "node", "1")
	if err != nil {
		t.Fatal(err)
	}
	if st0.FTM != "pbr" || st1.FTM != "lfr" {
		t.Fatalf("after group-1 transition: group0=%s group1=%s", st0.FTM, st1.FTM)
	}
}

func TestGroupStampReachesSoleUngroupedReplica(t *testing.T) {
	// Group-aware tooling pointed at an unsharded daemon still works:
	// the stamp is ignored by a sole replica with no group ID.
	_, ctl := newServedReplica(t)
	st, err := QueryStatus(context.Background(), ctl, "node", "0")
	if err != nil {
		t.Fatalf("stamped status on unsharded daemon: %v", err)
	}
	if st.System != "calc" {
		t.Fatalf("status = %+v", st)
	}
}

func TestStatusRoundTrip(t *testing.T) {
	r, ctl := newServedReplica(t)
	st, err := QueryStatus(context.Background(), ctl, "node", "")
	if err != nil {
		t.Fatalf("QueryStatus: %v", err)
	}
	if st.System != "calc" || st.FTM != "pbr" || st.Role != "master" || st.Host != "node" {
		t.Fatalf("status = %+v", st)
	}
	if st.Scheme != core.MustLookup(core.PBR).MasterScheme {
		t.Fatalf("scheme = %+v", st.Scheme)
	}
	_ = r
}

func TestRemoteTransition(t *testing.T) {
	r, ctl := newServedReplica(t)
	out, err := RequestTransition(context.Background(), ctl, "node", "", core.LFR)
	if err != nil {
		t.Fatalf("RequestTransition: %v", err)
	}
	if len(out.Replaced) != 2 {
		t.Fatalf("replaced = %v", out.Replaced)
	}
	if out.DeployUS <= 0 || out.ScriptUS <= 0 || out.RemoveUS <= 0 {
		t.Fatalf("timings = %+v", out)
	}
	if r.FTM() != core.LFR {
		t.Fatalf("replica FTM = %s", r.FTM())
	}
}

func TestRemoteTransitionToUnknownFTMFails(t *testing.T) {
	_, ctl := newServedReplica(t)
	if _, err := RequestTransition(context.Background(), ctl, "node", "", core.ID("bogus")); err == nil {
		t.Fatal("transition to bogus FTM accepted")
	}
}

func TestQueryArchitecture(t *testing.T) {
	_, ctl := newServedReplica(t)
	arch, err := QueryArchitecture(context.Background(), ctl, "node", "")
	if err != nil {
		t.Fatalf("QueryArchitecture: %v", err)
	}
	for _, want := range []string{"protocol", "syncBefore", "proceed", "syncAfter"} {
		if !strings.Contains(arch, want) {
			t.Errorf("architecture missing %q", want)
		}
	}
}

func TestUnknownOpRejected(t *testing.T) {
	_, ctl := newServedReplica(t)
	if _, err := call(context.Background(), ctl, "node", Request{Op: "frob"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func TestStatusOfCrashedReplica(t *testing.T) {
	r, ctl := newServedReplica(t)
	r.Host().Crash()
	if _, err := QueryStatus(context.Background(), ctl, "node", ""); err == nil {
		t.Fatal("status of crashed replica succeeded")
	}
}

func TestQueryUnreachableTarget(t *testing.T) {
	_, ctl := newServedReplica(t)
	if _, err := QueryStatus(context.Background(), ctl, "ghost", ""); err == nil {
		t.Fatal("status of unreachable target succeeded")
	}
	if _, err := QueryArchitecture(context.Background(), ctl, "ghost", ""); err == nil {
		t.Fatal("arch of unreachable target succeeded")
	}
	if _, err := RequestTransition(context.Background(), ctl, "ghost", "", core.LFR); err == nil {
		t.Fatal("transition on unreachable target succeeded")
	}
}

func TestTransitionEventsVisibleInStatus(t *testing.T) {
	r, ctl := newServedReplica(t)
	if _, err := RequestTransition(context.Background(), ctl, "node", "", core.LFR); err != nil {
		t.Fatal(err)
	}
	st, err := QueryStatus(context.Background(), ctl, "node", "")
	if err != nil {
		t.Fatal(err)
	}
	if st.FTM != "lfr" {
		t.Fatalf("status FTM = %s", st.FTM)
	}
	if len(st.Events) == 0 {
		t.Fatal("no events reported")
	}
	_ = r
}

func TestQueryEventsTraceAndBlackbox(t *testing.T) {
	_, ctl := newServedReplica(t)
	ctx := context.Background()

	// Deploying the replica emitted events on the process-wide tracer.
	events, err := QueryEvents(ctx, ctl, "node", "replica", 0)
	if err != nil {
		t.Fatalf("QueryEvents: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no replica events returned")
	}

	// A span recorded on the process-wide recorder is fetchable by id.
	root := telemetry.SpanContext{TraceID: telemetry.TraceIDFor("mgmt-test", 1), SpanID: 9}
	sp := telemetry.DefaultSpans().Start(root, "rpc.server", "op", "inc")
	sp.End()
	doc, err := QueryTrace(ctx, ctl, "node", fmt.Sprintf("%016x", root.TraceID))
	if err != nil {
		t.Fatalf("QueryTrace: %v", err)
	}
	if !strings.Contains(doc, "rpc.server") {
		t.Fatalf("trace document missing span: %s", doc)
	}
	if _, err := QueryTrace(ctx, ctl, "node", "nothex"); err == nil {
		t.Fatal("bad trace id should fail")
	}

	telemetry.DumpBlackBox("mgmt-test-incident")
	boxes, err := QueryBlackbox(ctx, ctl, "node")
	if err != nil {
		t.Fatalf("QueryBlackbox: %v", err)
	}
	if !strings.Contains(boxes, "mgmt-test-incident") {
		t.Fatalf("blackbox document missing incident: %s", boxes)
	}
}

func TestQueryHealthRoundTrip(t *testing.T) {
	r, ctl := newServedReplica(t)
	// Starve the host so the fresh measurement the query runs shows a
	// graded, caused verdict, not just a healthy default.
	r.Host().Resources().SetCPUFree(0.01)

	data, err := QueryHealth(context.Background(), ctl, "node", "")
	if err != nil {
		t.Fatalf("QueryHealth: %v", err)
	}
	var rep host.Report
	if err := json.Unmarshal([]byte(data), &rep); err != nil {
		t.Fatalf("health reply is not a report: %v\n%s", err, data)
	}
	if rep.Host != "node" || rep.Overall != host.Unhealthy {
		t.Fatalf("report = %+v, want node unhealthy", rep)
	}
	var cpuSeen bool
	for _, c := range rep.Collectors {
		if c.Name == "cpu" {
			cpuSeen = true
			if c.Verdict != host.Unhealthy || !strings.Contains(c.Reason, "cpu_free=") {
				t.Fatalf("cpu collector = %+v", c)
			}
		}
	}
	if !cpuSeen {
		t.Fatal("report carries no cpu collector")
	}
}

// fakeSLOReporter serves a canned report and per-shard grades.
type fakeSLOReporter struct {
	report string
	err    error
	grades map[string]string
}

func (f *fakeSLOReporter) ReportJSON() ([]byte, error) { return []byte(f.report), f.err }

func (f *fakeSLOReporter) ShardGrade(shard string) (string, bool) {
	g, ok := f.grades[shard]
	return g, ok
}

func TestQuerySLORoundTrip(t *testing.T) {
	srv, ctl := newShardedServer(t)
	ctx := context.Background()

	// Without an engine the op reports the absence, not an empty doc.
	if _, err := QuerySLO(ctx, ctl, "node"); err == nil ||
		!strings.Contains(err.Error(), "no SLO engine") {
		t.Fatalf("engine-less QuerySLO err = %v", err)
	}

	srv.SetSLO(&fakeSLOReporter{
		report: `[{"shard":"0","grade":"page"}]`,
		grades: map[string]string{"0": "page"},
	})
	doc, err := QuerySLO(ctx, ctl, "node")
	if err != nil {
		t.Fatalf("QuerySLO: %v", err)
	}
	var rows []map[string]any
	if err := json.Unmarshal([]byte(doc), &rows); err != nil {
		t.Fatalf("reply is not the report JSON: %v\n%s", err, doc)
	}
	if len(rows) != 1 || rows[0]["shard"] != "0" || rows[0]["grade"] != "page" {
		t.Fatalf("report rows = %v", rows)
	}

	// A reporter error surfaces as an op error.
	srv.SetSLO(&fakeSLOReporter{err: fmt.Errorf("engine stopped")})
	if _, err := QuerySLO(ctx, ctl, "node"); err == nil ||
		!strings.Contains(err.Error(), "engine stopped") {
		t.Fatalf("reporter error not surfaced: %v", err)
	}
}

func TestShardRowsCarrySLOGrade(t *testing.T) {
	srv, ctl := newShardedServer(t)
	ctx := context.Background()

	rows, err := QueryShards(ctx, ctl, "node")
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.SLO != "" {
			t.Fatalf("SLO column set without an engine: %+v", row)
		}
	}

	// Only shard 0 has a declared objective; shard 1's column stays empty.
	srv.SetSLO(&fakeSLOReporter{grades: map[string]string{"0": "warn"}})
	rows, err = QueryShards(ctx, ctl, "node")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range rows {
		got[row.Group] = row.SLO
	}
	if got["0"] != "warn" || got["1"] != "" {
		t.Fatalf("SLO columns = %v, want 0=warn 1=empty", got)
	}
}
