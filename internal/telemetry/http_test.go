package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsAndEvents(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("rpc_server_requests_total").Add(7)
	tr := NewTracer(16)
	tr.Emit("transition", "deploy", 0, "host", "h1")
	tr.Emit("replica", "promoted", 0)

	srv := httptest.NewServer(Handler(reg, tr, nil, nil))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "rpc_server_requests_total 7") {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	code, body = get("/events")
	if code != http.StatusOK {
		t.Fatalf("/events status %d", code)
	}
	var events []Event
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("events not JSON: %v\n%s", err, body)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}

	_, body = get("/events?kind=replica")
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "promoted" {
		t.Fatalf("kind filter returned %+v", events)
	}

	_, body = get("/events?since=1")
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Seq != 2 {
		t.Fatalf("since filter returned %+v", events)
	}

	code, _ = get("/events?since=notanumber")
	if code != http.StatusBadRequest {
		t.Fatalf("bad since returned %d, want 400", code)
	}
}

func TestHandlerTraceAndBlackbox(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(16)
	spans := NewSpanRecorder(64)
	root := SpanContext{TraceID: TraceIDFor("c1", 1), SpanID: 42}
	sp := spans.Start(root, "rpc.server", "op", "inc")
	sp.End()
	fr := NewFlightRecorder(tr, spans, reg)
	fr.Dump("peer-suspected", "host", "h1")

	srv := httptest.NewServer(Handler(reg, tr, spans, fr))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get(fmt.Sprintf("/trace/%016x", root.TraceID))
	if code != http.StatusOK {
		t.Fatalf("/trace status %d: %s", code, body)
	}
	var tj TraceJSON
	if err := json.Unmarshal([]byte(body), &tj); err != nil {
		t.Fatalf("trace not JSON: %v\n%s", err, body)
	}
	if len(tj.Spans) != 1 || tj.Spans[0].Name != "rpc.server" {
		t.Fatalf("trace spans = %+v, want the one recorded span", tj.Spans)
	}

	code, _ = get("/trace/nothex")
	if code != http.StatusBadRequest {
		t.Fatalf("bad trace id returned %d, want 400", code)
	}

	code, body = get("/blackbox")
	if code != http.StatusOK {
		t.Fatalf("/blackbox status %d", code)
	}
	var boxes []BlackBox
	if err := json.Unmarshal([]byte(body), &boxes); err != nil {
		t.Fatalf("blackbox not JSON: %v\n%s", err, body)
	}
	if len(boxes) != 1 || boxes[0].Reason != "peer-suspected" {
		t.Fatalf("boxes = %+v, want one peer-suspected box", boxes)
	}
}
