package telemetry

import (
	"sync"
	"testing"
	"time"
)

func TestTraceIDForDeterministicAndDistinct(t *testing.T) {
	a := TraceIDFor("client-1", 7)
	if a == 0 {
		t.Fatal("trace id must be nonzero")
	}
	if b := TraceIDFor("client-1", 7); b != a {
		t.Fatalf("same identity produced different trace ids: %x vs %x", a, b)
	}
	if b := TraceIDFor("client-1", 8); b == a {
		t.Fatal("different seq should produce a different trace id")
	}
	if b := TraceIDFor("client-2", 7); b == a {
		t.Fatal("different client should produce a different trace id")
	}
}

func TestSpanContextStringRoundTrip(t *testing.T) {
	c := SpanContext{TraceID: 0xdeadbeef01020304, SpanID: 0x1122334455667788}
	got := ParseSpanContext(c.String())
	if got != c {
		t.Fatalf("round trip: got %+v want %+v", got, c)
	}
	for _, bad := range []string{"", "zz", c.String() + "x", "0123456789abcdef_0123456789abcdef"} {
		if got := ParseSpanContext(bad); got.Valid() {
			t.Fatalf("malformed %q parsed as valid %+v", bad, got)
		}
	}
}

func TestSamplerRates(t *testing.T) {
	off := NewSampler(0)
	for i := 0; i < 10; i++ {
		if off.Sample() {
			t.Fatal("every=0 must never sample")
		}
	}
	always := NewSampler(1)
	for i := 0; i < 10; i++ {
		if !always.Sample() {
			t.Fatal("every=1 must always sample")
		}
	}
	tenth := NewSampler(10)
	hits := 0
	for i := 0; i < 1000; i++ {
		if tenth.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Fatalf("every=10 over 1000 draws: got %d hits, want 100", hits)
	}
}

func TestSpanRecorderStartEnd(t *testing.T) {
	r := NewSpanRecorder(16)
	r.SetOrigin("replica-a")
	root := SpanContext{TraceID: TraceIDFor("c", 1), SpanID: newSpanID()}

	sp := r.Start(root, "ftm.execute", "op", "add:r0")
	if sp == nil {
		t.Fatal("sampled parent must yield an active span")
	}
	child := r.Start(sp.Context(), "ftm.before")
	child.SetAttr("outcome", "ok")
	child.End()
	sp.End()
	sp.End() // double End must not re-record

	spans := r.ForTrace(root.TraceID)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2: %+v", len(spans), spans)
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	exec, before := byName["ftm.execute"], byName["ftm.before"]
	if exec.Parent != root.SpanID {
		t.Fatalf("execute parent = %x, want root %x", exec.Parent, root.SpanID)
	}
	if before.Parent != exec.SpanID {
		t.Fatalf("before parent = %x, want execute %x", before.Parent, exec.SpanID)
	}
	if exec.Origin != "replica-a" || before.Origin != "replica-a" {
		t.Fatalf("origin not stamped: %q / %q", exec.Origin, before.Origin)
	}
	if before.Attrs["outcome"] != "ok" || exec.Attrs["op"] != "add:r0" {
		t.Fatalf("attrs lost: %+v", spans)
	}
}

func TestNilActiveSpanIsInert(t *testing.T) {
	r := NewSpanRecorder(4)
	sp := r.Start(SpanContext{}, "unsampled")
	if sp != nil {
		t.Fatal("invalid parent must yield nil")
	}
	// All methods must be nil-safe.
	sp.SetAttr("k", "v")
	if c := sp.Context(); c.Valid() {
		t.Fatalf("nil span context must be invalid, got %+v", c)
	}
	sp.End()
	r.Add(SpanContext{}, "unsampled", time.Now(), time.Millisecond)
	if got := r.Spans(); len(got) != 0 {
		t.Fatalf("nothing should be recorded, got %+v", got)
	}
}

func TestSpanRecorderRingEviction(t *testing.T) {
	r := NewSpanRecorder(4)
	parent := SpanContext{TraceID: 42, SpanID: 1}
	base := time.Now()
	for i := 0; i < 10; i++ {
		r.Add(parent, "s", base.Add(time.Duration(i)*time.Millisecond), time.Microsecond)
	}
	spans := r.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring of 4 retained %d spans", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start.Before(spans[i-1].Start) {
			t.Fatalf("spans not sorted by start: %+v", spans)
		}
	}
	// Newest four survive.
	if spans[0].Start != base.Add(6*time.Millisecond) {
		t.Fatalf("oldest retained = %v, want base+6ms", spans[0].Start.Sub(base))
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			parent := SpanContext{TraceID: uint64(g + 1), SpanID: 1}
			for i := 0; i < 200; i++ {
				sp := r.Start(parent, "concurrent")
				sp.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Spans() // readers race with writers; -race validates safety
		}
	}()
	wg.Wait()
	<-done
	if got := len(r.Spans()); got != 64 {
		t.Fatalf("ring should be full: got %d of 64", got)
	}
}

func TestNamedFilter(t *testing.T) {
	r := NewSpanRecorder(16)
	parent := SpanContext{TraceID: 9, SpanID: 1}
	now := time.Now()
	r.Add(parent, "ftm.wave.ship", now, time.Millisecond)
	r.Add(parent, "ftm.replica.apply", now.Add(time.Millisecond), 2*time.Millisecond)
	r.Add(parent, "ftm.wave.ship", now.Add(2*time.Millisecond), 3*time.Millisecond)
	ships := r.Named("ftm.wave.ship")
	if len(ships) != 2 {
		t.Fatalf("got %d ship spans, want 2", len(ships))
	}
	for _, s := range ships {
		if s.Name != "ftm.wave.ship" {
			t.Fatalf("filter leaked %q", s.Name)
		}
	}
}
