package telemetry

import (
	"sync"
	"time"
)

// Event is one structured trace record: a reconfiguration step, a
// failover, a checkpoint resync — the discrete occurrences the paper's
// transition-time tables are built from. Events are cheap but not free
// (a lock and a map), so they instrument control-plane paths, not the
// per-request hot path.
type Event struct {
	// Seq is the event's position in the tracer's history, monotonically
	// increasing from 1; readers use it as a watermark.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind groups related events ("transition.step", "transition",
	// "replica"); Name is the specific occurrence ("stop", "promoted").
	Kind string `json:"kind"`
	Name string `json:"name"`
	// Dur is the step duration for timed events, zero otherwise.
	Dur time.Duration `json:"dur_ns"`
	// Attrs carries event-specific context (paths, hosts, sizes).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Tracer is a bounded ring buffer of events: writers never block on
// slow readers, and the newest window is always available for export.
type Tracer struct {
	mu   sync.Mutex
	ring []Event
	next uint64 // sequence of the next event
	len  int    // number of valid entries
}

// DefaultTracerCapacity sizes the process-wide tracer.
const DefaultTracerCapacity = 4096

// NewTracer returns a tracer retaining the last capacity events
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]Event, capacity), next: 1}
}

var defaultTracer = NewTracer(DefaultTracerCapacity)

// DefaultTracer returns the process-wide tracer.
func DefaultTracer() *Tracer { return defaultTracer }

// Emit records an event built from kind, name, a duration and
// alternating attribute key/value pairs, returning its sequence number.
func (t *Tracer) Emit(kind, name string, dur time.Duration, attrs ...string) uint64 {
	var m map[string]string
	if len(attrs) > 0 {
		m = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			m[attrs[i]] = attrs[i+1]
		}
	}
	e := Event{Time: time.Now(), Kind: kind, Name: name, Dur: dur, Attrs: m}
	t.mu.Lock()
	e.Seq = t.next
	t.next++
	t.ring[int((e.Seq-1)%uint64(len(t.ring)))] = e
	if t.len < len(t.ring) {
		t.len++
	}
	t.mu.Unlock()
	return e.Seq
}

// Mark returns the sequence watermark: every event emitted after the
// call has Seq > Mark().
func (t *Tracer) Mark() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next - 1
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event { return t.Since(0) }

// Since returns the retained events with Seq > mark, oldest first.
func (t *Tracer) Since(mark uint64) []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, t.len)
	first := t.next - uint64(t.len)
	for seq := first; seq < t.next; seq++ {
		if seq <= mark {
			continue
		}
		out = append(out, t.ring[int((seq-1)%uint64(len(t.ring)))])
	}
	return out
}

// Emit records an event on the process-wide tracer.
func Emit(kind, name string, dur time.Duration, attrs ...string) uint64 {
	return defaultTracer.Emit(kind, name, dur, attrs...)
}
