package telemetry

import "sync/atomic"

// Cached series handles. Probes and evaluators that read someone
// else's series used to call FindCounter/FindHistogram on every tick,
// rebuilding the canonical series key (label sort plus string build)
// each time. A handle performs that lookup once and caches the
// instrument pointer — series are never unregistered, so a resolved
// pointer stays valid for the registry's lifetime — while an
// unresolved handle keeps retrying, so probe and instrumentation may
// still initialize in either order.

// CounterHandle is a resolve-once reference to a counter series that
// may not exist yet.
type CounterHandle struct {
	reg    *Registry
	name   string
	labels []string
	c      atomic.Pointer[Counter]
}

// CounterHandle returns a handle on (name, labels) without creating
// the series.
func (r *Registry) CounterHandle(name string, labels ...string) *CounterHandle {
	return &CounterHandle{reg: r, name: name, labels: append([]string(nil), labels...)}
}

// Get returns the counter, resolving and caching it on first success.
func (h *CounterHandle) Get() (*Counter, bool) {
	if c := h.c.Load(); c != nil {
		return c, true
	}
	c, ok := h.reg.FindCounter(h.name, h.labels...)
	if ok {
		h.c.Store(c)
	}
	return c, ok
}

// Value returns the counter's reading, or zero while the series does
// not exist.
func (h *CounterHandle) Value() uint64 {
	c, ok := h.Get()
	if !ok {
		return 0
	}
	return c.Value()
}

// HistogramHandle is a resolve-once reference to a histogram series
// that may not exist yet.
type HistogramHandle struct {
	reg    *Registry
	name   string
	labels []string
	h      atomic.Pointer[Histogram]
}

// HistogramHandle returns a handle on (name, labels) without creating
// the series.
func (r *Registry) HistogramHandle(name string, labels ...string) *HistogramHandle {
	return &HistogramHandle{reg: r, name: name, labels: append([]string(nil), labels...)}
}

// Get returns the histogram, resolving and caching it on first
// success.
func (h *HistogramHandle) Get() (*Histogram, bool) {
	if hist := h.h.Load(); hist != nil {
		return hist, true
	}
	hist, ok := h.reg.FindHistogram(h.name, h.labels...)
	if ok {
		h.h.Store(hist)
	}
	return hist, ok
}
