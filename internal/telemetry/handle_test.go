package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestCounterHandleResolvesLazily(t *testing.T) {
	r := NewRegistry()
	h := r.CounterHandle("late_total", "shard", "0")
	if _, ok := h.Get(); ok {
		t.Fatal("handle resolved a series that does not exist")
	}
	if got := h.Value(); got != 0 {
		t.Fatalf("unresolved handle value = %d, want 0", got)
	}
	c := r.Counter("late_total", "shard", "0")
	c.Add(3)
	got, ok := h.Get()
	if !ok || got != c {
		t.Fatal("handle did not resolve to the registered counter")
	}
	if v := h.Value(); v != 3 {
		t.Fatalf("handle value = %d, want 3", v)
	}
}

func TestCounterHandleIgnoresOtherLabels(t *testing.T) {
	r := NewRegistry()
	h := r.CounterHandle("late_total", "shard", "0")
	r.Counter("late_total", "shard", "1").Inc()
	if _, ok := h.Get(); ok {
		t.Fatal("handle resolved a series with different labels")
	}
}

func TestHistogramHandleResolvesLazily(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramHandle("lat", "shard", "0")
	if _, ok := h.Get(); ok {
		t.Fatal("handle resolved a series that does not exist")
	}
	hist := r.Histogram("lat", "shard", "0")
	hist.Observe(time.Millisecond)
	got, ok := h.Get()
	if !ok || got != hist {
		t.Fatal("handle did not resolve to the registered histogram")
	}
}

func TestObserveN(t *testing.T) {
	var h Histogram
	h.ObserveN(time.Millisecond, 5)
	h.ObserveN(time.Millisecond, 0) // no-op
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	var single Histogram
	single.Observe(time.Millisecond)
	if h.Quantile(0.99) != single.Quantile(0.99) {
		t.Fatalf("ObserveN landed in a different bucket than Observe: %v vs %v",
			h.Quantile(0.99), single.Quantile(0.99))
	}
	if got, want := h.Snapshot().SumNs, single.Snapshot().SumNs*5; got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestOnCollectRunsBeforeReads(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("fresh")
	n := 0
	r.OnCollect(func() { n++; g.Set(int64(n)) })

	if samples := r.Snapshot(); len(samples) == 0 {
		t.Fatal("no samples")
	}
	if n != 1 {
		t.Fatalf("collector ran %d times after Snapshot, want 1", n)
	}
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("collector ran %d times after WritePrometheus, want 2", n)
	}
	if !strings.Contains(sb.String(), "fresh 2") {
		t.Fatalf("exposition did not carry the refreshed value:\n%s", sb.String())
	}

	if got := r.Flatten()["fresh"]; got != 3 {
		t.Fatalf("Flatten fresh = %v, want 3 (collector refreshed)", got)
	}
}
