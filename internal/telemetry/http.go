package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the registry and tracer over HTTP:
//
//	GET /metrics  Prometheus text exposition of every series
//	GET /events   JSON array of retained trace events,
//	              filterable with ?kind=... and ?since=<seq>
//
// cmd/resilientd mounts it behind its -http flag; tests mount it on
// httptest servers.
func Handler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		events := tr.Since(since)
		if kind := req.URL.Query().Get("kind"); kind != "" {
			filtered := events[:0]
			for _, e := range events {
				if e.Kind == kind {
					filtered = append(filtered, e)
				}
			}
			events = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(events)
	})
	return mux
}
