package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the registry, tracer, span recorder and flight
// recorder over HTTP:
//
//	GET /metrics     Prometheus text exposition of every series
//	GET /events      JSON array of retained trace events,
//	                 filterable with ?kind=... and ?since=<seq>
//	GET /trace/{id}  JSON of every retained span of one trace
//	                 (id in the %016x form the tools print)
//	GET /blackbox    JSON array of the retained black boxes
//	GET /health      JSON health report (only with WithHealth)
//	GET /slo         JSON per-shard SLO report (only with WithSLO)
//
// spans and fr may be nil; the corresponding routes then answer 404.
// cmd/resilientd mounts it behind its -http flag; tests mount it on
// httptest servers.
func Handler(reg *Registry, tr *Tracer, spans *SpanRecorder, fr *FlightRecorder, opts ...HandlerOption) http.Handler {
	mux := http.NewServeMux()
	for _, o := range opts {
		o(mux)
	}
	if spans != nil {
		mux.HandleFunc("/trace/{id}", func(w http.ResponseWriter, req *http.Request) {
			id, err := strconv.ParseUint(req.PathValue("id"), 16, 64)
			if err != nil || id == 0 {
				http.Error(w, "bad trace id (want 16 hex digits)", http.StatusBadRequest)
				return
			}
			data, err := MarshalTrace(id, spans.ForTrace(id))
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
		})
	}
	if fr != nil {
		mux.HandleFunc("/blackbox", func(w http.ResponseWriter, req *http.Request) {
			data, err := MarshalBlackBoxes(fr.Boxes())
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
		})
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		var since uint64
		if s := req.URL.Query().Get("since"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter", http.StatusBadRequest)
				return
			}
			since = v
		}
		events := tr.Since(since)
		if kind := req.URL.Query().Get("kind"); kind != "" {
			filtered := events[:0]
			for _, e := range events {
				if e.Kind == kind {
					filtered = append(filtered, e)
				}
			}
			events = filtered
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(events)
	})
	return mux
}

// HandlerOption adds optional routes to Handler.
type HandlerOption func(*http.ServeMux)

// WithSLO mounts GET /slo serving the JSON encoding of whatever
// report() returns (typically the slo engine's per-shard report). As
// with WithHealth, telemetry stays ignorant of the report's shape.
func WithSLO(report func() any) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/slo", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(report())
		})
	}
}

// WithHealth mounts GET /health serving the JSON encoding of whatever
// report() returns (typically the host's aggregated health report).
// The telemetry package stays ignorant of the report's shape — health
// is owned by the host layer, this is just its window.
func WithHealth(report func() any) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/health", func(w http.ResponseWriter, req *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(report())
		})
	}
}
