// Package telemetry is the dependency-free observability core of the
// resilient system: atomic counters, gauges and bucketed latency
// histograms behind a named registry, plus a structured trace-event ring
// buffer. It is the measurement substrate the paper's Monitoring Engine
// reads (probes over live metrics rather than synthetic values) and the
// source of the per-step transition timings the evaluation reports.
//
// Hot paths hold *Counter / *Histogram pointers resolved once at setup;
// recording is then one or two atomic operations, cheap enough to leave
// enabled permanently (the ≤5%-overhead budget of the request path).
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the bucket count of a Histogram: one power-of-two
// bucket per bit position of a nanosecond duration, covering 1ns to
// ~292 years. Bucket i holds observations d with bits.Len64(d) == i,
// i.e. d in [2^(i-1), 2^i); factor-two resolution is coarse but makes
// Observe a shift plus two atomic adds, with no configuration to get
// wrong.
const histBuckets = 64

// Histogram is a latency histogram over exponential (power-of-two)
// nanosecond buckets. The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sumNs   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

func bucketIndex(ns uint64) int {
	i := bits.Len64(ns)
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one duration. Negative durations count as zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// ObserveSince records the time elapsed since t0.
func (h *Histogram) ObserveSince(t0 time.Time) { h.Observe(time.Since(t0)) }

// ObserveN records n observations of d in one shot — the bulk form
// needed when replaying another histogram's bucket counts (the
// runtime-metrics bridge replays thousands of scheduler latencies per
// sweep; one Observe per event would dominate the sweep).
func (h *Histogram) ObserveN(d time.Duration, n uint64) {
	if n == 0 {
		return
	}
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.count.Add(n)
	h.sumNs.Add(ns * n)
	h.buckets[bucketIndex(ns)].Add(n)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the summed observed time.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Mean returns the mean observation, or zero without observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of
// the observed durations: the upper edge of the bucket in which the
// quantile falls (within a factor of two of the true value). It returns
// zero without observations.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketUpperBound(i)
		}
	}
	return bucketUpperBound(histBuckets - 1)
}

// bucketUpperBound returns the exclusive upper edge of bucket i in
// nanoseconds, as a duration.
func bucketUpperBound(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(uint64(1) << uint(i))
}

// HistogramSnapshot is a consistent-enough copy of a histogram's state
// for export (buckets are read individually; a concurrent Observe may
// skew count vs buckets by one).
type HistogramSnapshot struct {
	Count   uint64
	SumNs   uint64
	Buckets [histBuckets]uint64
}

// Snapshot copies the histogram counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// Quantile computes the q-quantile upper bound from a snapshot, mirroring
// Histogram.Quantile.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(s.Count)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			return bucketUpperBound(i)
		}
	}
	return bucketUpperBound(histBuckets - 1)
}

// Delta returns the observations recorded between prev and s as a
// snapshot of its own, so windowed statistics (recent mean, recent
// quantiles) come from snapshot differencing rather than lifetime
// counters. A prev not taken from the same histogram earlier yields
// garbage; same-or-newer prev yields the zero snapshot.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	var d HistogramSnapshot
	if s.Count <= prev.Count {
		return d
	}
	d.Count = s.Count - prev.Count
	d.SumNs = s.SumNs - prev.SumNs
	for i := range s.Buckets {
		d.Buckets[i] = s.Buckets[i] - prev.Buckets[i]
	}
	return d
}

// MeanNs returns the snapshot's mean observation in nanoseconds, or
// zero without observations. For batch-size histograms (which record
// raw counts, not durations) this is the mean batch size.
func (s HistogramSnapshot) MeanNs() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNs) / float64(s.Count)
}
