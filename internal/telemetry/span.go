package telemetry

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Causal tracing support. A trace is the end-to-end life of one client
// request: the client delivery, the master's Before/Proceed/After
// stages, the commit wave that covered it, the peer ship carrying the
// synchronization, the slave-side apply — and, after a failover, the
// replay of its logged reply. Every hop records a Span into a lock-free
// ring; a trace ID computed deterministically from the request identity
// (client ID + sequence number) makes a post-failover redelivery land in
// the *same* trace as the original execution, which is what lets the
// flight of one request be reassembled across replicas and incidents.
//
// The layer is built for the request hot path: an unsampled request
// carries a zero SpanContext and every span operation on it is a nil
// check; a sampled one costs one ring slot per span.

// SpanContext identifies a position in a trace: the trace and the span
// under which children nest. The zero value means "not sampled" and
// disables all downstream span recording.
type SpanContext struct {
	TraceID uint64 `json:"trace_id,string"`
	SpanID  uint64 `json:"span_id,string"`
}

// Valid reports whether the context belongs to a sampled trace.
func (c SpanContext) Valid() bool { return c.TraceID != 0 }

// String renders the context as "traceID-spanID" in hex — the form that
// travels in component message metadata.
func (c SpanContext) String() string {
	return fmt.Sprintf("%016x-%016x", c.TraceID, c.SpanID)
}

// ParseSpanContext parses the String form. Malformed input yields the
// zero (unsampled) context: trace metadata is advisory, never an error.
func ParseSpanContext(s string) SpanContext {
	if len(s) != 33 || s[16] != '-' {
		return SpanContext{}
	}
	tid, err1 := strconv.ParseUint(s[:16], 16, 64)
	sid, err2 := strconv.ParseUint(s[17:], 16, 64)
	if err1 != nil || err2 != nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: tid, SpanID: sid}
}

// TraceIDFor derives the trace ID of a request identity. It is a pure
// function of (clientID, seq), so every delivery attempt of one request
// — the original, a timeout retry, a post-failover redelivery — lands in
// the same trace, and a replayed reply links to the execution it
// replays. Never zero.
func TraceIDFor(clientID string, seq uint64) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(clientID))
	var b [8]byte
	for i := 0; i < 8; i++ {
		b[i] = byte(seq >> (8 * i))
	}
	_, _ = h.Write(b[:])
	id := h.Sum64()
	if id == 0 {
		return 1
	}
	return id
}

// newSpanID returns a fresh nonzero span ID.
func newSpanID() uint64 {
	for {
		if id := rand.Uint64(); id != 0 {
			return id
		}
	}
}

// Span is one completed, timed segment of a trace.
type Span struct {
	TraceID uint64 `json:"trace_id,string"`
	SpanID  uint64 `json:"span_id,string"`
	// Parent is the span this one nests under (zero for trace roots).
	Parent uint64 `json:"parent_id,string,omitempty"`
	// Name identifies the segment ("rpc.client", "ftm.proceed",
	// "ftm.wave.ship", ...); the span catalogue is in the README.
	Name string `json:"name"`
	// Origin names the process/replica that recorded the span (set via
	// SetOrigin); it is what distinguishes master-side from slave-side
	// spans in an assembled cross-replica view.
	Origin string        `json:"origin,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
	// Attrs carries span-specific context (op, kind, outcome, sizes).
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Sampler is a counting sampler: it admits one trace in Every. It is a
// single atomic add on the hot path.
type Sampler struct {
	every atomic.Uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler admitting one in every (0 disables
// sampling entirely, 1 samples everything).
func NewSampler(every uint64) *Sampler {
	s := &Sampler{}
	s.every.Store(every)
	return s
}

// SetEvery changes the sampling rate (0 = off, 1 = always, N = 1/N).
func (s *Sampler) SetEvery(every uint64) { s.every.Store(every) }

// Every returns the current rate.
func (s *Sampler) Every() uint64 { return s.every.Load() }

// Sample reports whether the next trace should be recorded.
func (s *Sampler) Sample() bool {
	switch e := s.every.Load(); e {
	case 0:
		return false
	case 1:
		return true
	default:
		return s.n.Add(1)%e == 1
	}
}

// DefaultSampleEvery is the default sampling rate: 1% of client
// requests, cheap enough to leave on permanently while still feeding
// the trace-derived probes under steady load.
const DefaultSampleEvery = 100

var defaultSampler = NewSampler(DefaultSampleEvery)

// DefaultSampler returns the process-wide sampler consulted by trace
// entry points (the rpc client).
func DefaultSampler() *Sampler { return defaultSampler }

// SpanRecorder retains the newest spans in a lock-free ring: writers
// claim a slot with one atomic add and publish with one atomic pointer
// store, so recording never blocks the request path and readers always
// see a complete span or none.
type SpanRecorder struct {
	ring   []atomic.Pointer[Span]
	pos    atomic.Uint64
	origin atomic.Pointer[string]
}

// DefaultSpanCapacity sizes the process-wide span recorder.
const DefaultSpanCapacity = 8192

// NewSpanRecorder returns a recorder retaining the last capacity spans
// (minimum 1).
func NewSpanRecorder(capacity int) *SpanRecorder {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRecorder{ring: make([]atomic.Pointer[Span], capacity)}
}

var defaultSpans = NewSpanRecorder(DefaultSpanCapacity)

// DefaultSpans returns the process-wide span recorder.
func DefaultSpans() *SpanRecorder { return defaultSpans }

// SetOrigin stamps every subsequently recorded span with the given
// origin (typically the replica's listen address or host name).
func (r *SpanRecorder) SetOrigin(origin string) { r.origin.Store(&origin) }

// Origin returns the configured origin ("" until set).
func (r *SpanRecorder) Origin() string {
	if p := r.origin.Load(); p != nil {
		return *p
	}
	return ""
}

// record publishes one completed span into the ring.
func (r *SpanRecorder) record(s Span) {
	if s.Origin == "" {
		s.Origin = r.Origin()
	}
	p := r.pos.Add(1)
	r.ring[(p-1)%uint64(len(r.ring))].Store(&s)
}

// Add records a completed span under parent with the given timing —
// the one-shot form used when there is no surrounding Start/End pair
// (wave coverage links, replays). It is a no-op on an invalid parent.
func (r *SpanRecorder) Add(parent SpanContext, name string, start time.Time, dur time.Duration, attrs ...string) {
	if !parent.Valid() {
		return
	}
	r.record(Span{
		TraceID: parent.TraceID,
		SpanID:  newSpanID(),
		Parent:  parent.SpanID,
		Name:    name,
		Start:   start,
		Dur:     dur,
		Attrs:   attrMap(attrs),
	})
}

// Start opens a span under parent. It returns nil — on which every
// ActiveSpan method is a safe no-op — when the parent context is not
// sampled, so call sites never branch on sampling themselves.
func (r *SpanRecorder) Start(parent SpanContext, name string, attrs ...string) *ActiveSpan {
	if !parent.Valid() {
		return nil
	}
	return &ActiveSpan{
		rec: r,
		span: Span{
			TraceID: parent.TraceID,
			SpanID:  newSpanID(),
			Parent:  parent.SpanID,
			Name:    name,
			Start:   time.Now(),
			Attrs:   attrMap(attrs),
		},
	}
}

// Spans returns the retained spans, oldest start time first.
func (r *SpanRecorder) Spans() []Span {
	out := make([]Span, 0, len(r.ring))
	for i := range r.ring {
		if s := r.ring[i].Load(); s != nil {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// ForTrace returns the retained spans of one trace, oldest first.
func (r *SpanRecorder) ForTrace(traceID uint64) []Span {
	if traceID == 0 {
		return nil
	}
	var out []Span
	for i := range r.ring {
		if s := r.ring[i].Load(); s != nil && s.TraceID == traceID {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// Named returns the retained spans with the given name, oldest first —
// the read the trace-derived monitor probes make.
func (r *SpanRecorder) Named(name string) []Span {
	var out []Span
	for i := range r.ring {
		if s := r.ring[i].Load(); s != nil && s.Name == name {
			out = append(out, *s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// ActiveSpan is a span being timed. The nil ActiveSpan is valid and
// inert: unsampled paths carry nil and pay only the pointer check.
type ActiveSpan struct {
	rec   *SpanRecorder
	span  Span
	ended atomic.Bool
}

// Context returns the context children should nest under (the zero
// context on a nil span).
func (s *ActiveSpan) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.span.TraceID, SpanID: s.span.SpanID}
}

// SetAttr annotates the span. Call before End.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[key] = value
}

// End completes the span and records it. Safe to call more than once;
// only the first call records.
func (s *ActiveSpan) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	s.span.Dur = time.Since(s.span.Start)
	s.rec.record(s.span)
}

// attrMap builds an attribute map from alternating key/value pairs.
func attrMap(attrs []string) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs)/2)
	for i := 0; i+1 < len(attrs); i += 2 {
		m[attrs[i]] = attrs[i+1]
	}
	return m
}

// TraceJSON is the assembled view of one trace as served by the /trace
// endpoint and the management plane: the spans a single replica holds
// for that trace. ftmctl merges several replicas' views into the
// cross-replica picture.
type TraceJSON struct {
	TraceID uint64 `json:"trace_id,string"`
	Spans   []Span `json:"spans"`
}

// MarshalTrace renders one trace's local spans as JSON.
func MarshalTrace(traceID uint64, spans []Span) ([]byte, error) {
	return json.Marshal(TraceJSON{TraceID: traceID, Spans: spans})
}
