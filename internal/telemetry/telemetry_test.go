package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("requests_total"); again != c {
		t.Fatal("same name did not return the same counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestLabelOrderIsCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("drops_total", "reason", "loss", "dir", "tx")
	b := r.Counter("drops_total", "dir", "tx", "reason", "loss")
	if a != b {
		t.Fatal("label order split one series in two")
	}
	c := r.Counter("drops_total", "reason", "partition", "dir", "tx")
	if c == a {
		t.Fatal("different label values shared a series")
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations around 1µs, 10 slow ones around 1ms: p50
	// lands in the fast band, p99 in the slow band.
	for i := 0; i < 90; i++ {
		h.Observe(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	p50 := h.Quantile(0.50)
	if p50 < 500*time.Nanosecond || p50 > 4*time.Microsecond {
		t.Fatalf("p50 = %v, want ~1µs (bucket bound)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 500*time.Microsecond || p99 > 4*time.Millisecond {
		t.Fatalf("p99 = %v, want ~1ms (bucket bound)", p99)
	}
	if mean := h.Mean(); mean <= 0 {
		t.Fatalf("mean = %v, want > 0", mean)
	}
	var empty Histogram
	if got := empty.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram p99 = %v, want 0", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("count = %d, want 8000", got)
	}
}

func TestSnapshotAndFlatten(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("b").Set(-2)
	r.Histogram("lat").Observe(2 * time.Millisecond)

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}

	flat := r.Flatten()
	if flat["a_total"] != 3 {
		t.Fatalf("flat a_total = %v, want 3", flat["a_total"])
	}
	if flat["b"] != -2 {
		t.Fatalf("flat b = %v, want -2", flat["b"])
	}
	if flat["lat_count"] != 1 {
		t.Fatalf("flat lat_count = %v, want 1", flat["lat_count"])
	}
	if flat["lat_p99_ns"] <= 0 {
		t.Fatalf("flat lat_p99_ns = %v, want > 0", flat["lat_p99_ns"])
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("drops_total", "reason", "loss").Add(2)
	r.Counter("drops_total", "reason", "partition").Inc()
	r.Histogram("lat").Observe(time.Millisecond)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE drops_total counter",
		`drops_total{reason="loss"} 2`,
		`drops_total{reason="partition"} 1`,
		"# TYPE lat histogram",
		`lat_bucket{le="+Inf"} 1`,
		"lat_count 1",
		"lat_sum",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "# TYPE drops_total"); n != 1 {
		t.Errorf("TYPE line for drops_total emitted %d times, want once", n)
	}
}

func TestTracerRingAndSince(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Emit("k", "e", 0, "i", string(rune('a'+i)))
	}
	events := tr.Events()
	if len(events) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(events))
	}
	if events[0].Seq != 3 || events[3].Seq != 6 {
		t.Fatalf("ring window = [%d..%d], want [3..6]", events[0].Seq, events[3].Seq)
	}
	since := tr.Since(5)
	if len(since) != 1 || since[0].Seq != 6 {
		t.Fatalf("Since(5) = %+v, want just seq 6", since)
	}
	if mark := tr.Mark(); mark != 6 {
		t.Fatalf("Mark() = %d, want 6", mark)
	}
}

func TestTracerAttrsAndDuration(t *testing.T) {
	tr := NewTracer(8)
	tr.Emit("transition.step", "stop", 42*time.Microsecond, "path", "calc/before")
	e := tr.Events()[0]
	if e.Kind != "transition.step" || e.Name != "stop" {
		t.Fatalf("event = %+v", e)
	}
	if e.Dur != 42*time.Microsecond {
		t.Fatalf("dur = %v, want 42µs", e.Dur)
	}
	if e.Attrs["path"] != "calc/before" {
		t.Fatalf("attrs = %v", e.Attrs)
	}
}
