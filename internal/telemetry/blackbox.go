package telemetry

import (
	"encoding/json"
	"sync"
	"time"
)

// Flight recorder: a black box each replica maintains continuously so
// the seconds *before* an incident are available *after* it. The
// recorder folds the newest trace events, recent spans, and a
// metric-registry snapshot into a bounded in-memory window; on an
// incident (detector-reported suspicion, demotion/promotion, panic in
// the replica server) a Dump freezes that window into a BlackBox,
// keeps it in a small in-memory ring for live retrieval, and hands it
// to an optional persist hook (the stablestore incident log) so the
// record survives the crash it describes.

// BlackBox is one frozen pre-incident window.
type BlackBox struct {
	Time time.Time `json:"time"`
	// Reason names the incident ("peer-suspected", "promoted",
	// "demoted", "panic").
	Reason string `json:"reason"`
	// Origin names the replica that dumped the box.
	Origin string `json:"origin,omitempty"`
	// Attrs carries incident-specific context (peer addresses, the
	// panic value, the role transition).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Events is the retained pre-incident event window, oldest first.
	Events []Event `json:"events"`
	// Spans is the newest retained span window, oldest first.
	Spans []Span `json:"spans"`
	// Metrics is the registry snapshot taken at dump time.
	Metrics []Sample `json:"metrics"`
}

// DefaultBlackBoxEvents bounds the event window a dump freezes.
const DefaultBlackBoxEvents = 1024

// DefaultBlackBoxSpans bounds the span window a dump freezes.
const DefaultBlackBoxSpans = 256

// DefaultBlackBoxRetain bounds how many dumped boxes stay retrievable
// in memory.
const DefaultBlackBoxRetain = 8

// FlightRecorder folds telemetry sources into dumpable black boxes.
type FlightRecorder struct {
	tracer *Tracer
	spans  *SpanRecorder
	reg    *Registry

	mu        sync.Mutex
	maxEvents int
	maxSpans  int
	// window is the folded event deque; fold() keeps it current so a
	// dump taken during a wedged process still has the last window the
	// recorder goroutine saw.
	window []Event
	mark   uint64 // tracer watermark of the newest folded event
	boxes  []BlackBox
	retain int
	// persist, when set, durably writes each dumped box.
	persist func(BlackBox)

	stop chan struct{}
	done chan struct{}
}

// NewFlightRecorder returns a recorder folding the given sources with
// the default window bounds.
func NewFlightRecorder(tracer *Tracer, spans *SpanRecorder, reg *Registry) *FlightRecorder {
	return &FlightRecorder{
		tracer:    tracer,
		spans:     spans,
		reg:       reg,
		maxEvents: DefaultBlackBoxEvents,
		maxSpans:  DefaultBlackBoxSpans,
		retain:    DefaultBlackBoxRetain,
	}
}

var (
	defaultRecorderOnce sync.Once
	defaultRecorder     *FlightRecorder
)

// DefaultFlightRecorder returns the process-wide recorder, folding the
// default tracer, span recorder and registry.
func DefaultFlightRecorder() *FlightRecorder {
	defaultRecorderOnce.Do(func() {
		defaultRecorder = NewFlightRecorder(DefaultTracer(), DefaultSpans(), Default())
	})
	return defaultRecorder
}

// SetPersist installs the durable sink dumps are handed to (nil
// disables persistence). The hook runs inline with the dump; it must
// not call back into the recorder.
func (f *FlightRecorder) SetPersist(persist func(BlackBox)) {
	f.mu.Lock()
	f.persist = persist
	f.mu.Unlock()
}

// fold pulls events newer than the watermark into the bounded window.
func (f *FlightRecorder) fold() {
	f.mu.Lock()
	defer f.mu.Unlock()
	fresh := f.tracer.Since(f.mark)
	if len(fresh) == 0 {
		return
	}
	f.mark = fresh[len(fresh)-1].Seq
	f.window = append(f.window, fresh...)
	if over := len(f.window) - f.maxEvents; over > 0 {
		f.window = append(f.window[:0:0], f.window[over:]...)
	}
}

// Start launches the background fold loop. interval <= 0 uses one
// second. Stop terminates it.
func (f *FlightRecorder) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	f.mu.Lock()
	if f.stop != nil {
		f.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	f.stop, f.done = stop, done
	f.mu.Unlock()
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				f.fold()
			}
		}
	}()
}

// Stop terminates the background fold loop, if running.
func (f *FlightRecorder) Stop() {
	f.mu.Lock()
	stop, done := f.stop, f.done
	f.stop, f.done = nil, nil
	f.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Dump freezes the current window into a BlackBox: the incident hook.
// It folds once more first, so events emitted on the incident path
// itself (the suspicion, the demotion) are inside the box.
func (f *FlightRecorder) Dump(reason string, attrs ...string) BlackBox {
	f.fold()

	spans := f.spans.Spans()
	if over := len(spans) - f.maxSpans; over > 0 {
		spans = spans[over:]
	}
	box := BlackBox{
		Time:    time.Now(),
		Reason:  reason,
		Origin:  f.spans.Origin(),
		Attrs:   attrMap(attrs),
		Spans:   spans,
		Metrics: f.reg.Snapshot(),
	}

	f.mu.Lock()
	box.Events = append([]Event(nil), f.window...)
	f.boxes = append(f.boxes, box)
	if over := len(f.boxes) - f.retain; over > 0 {
		f.boxes = append(f.boxes[:0:0], f.boxes[over:]...)
	}
	persist := f.persist
	f.mu.Unlock()

	if persist != nil {
		persist(box)
	}
	return box
}

// Boxes returns the retained dumps, oldest first.
func (f *FlightRecorder) Boxes() []BlackBox {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]BlackBox(nil), f.boxes...)
}

// DumpBlackBox dumps on the process-wide recorder — the form the
// incident hooks in the replica call.
func DumpBlackBox(reason string, attrs ...string) BlackBox {
	return DefaultFlightRecorder().Dump(reason, attrs...)
}

// MarshalBlackBoxes renders dumps as JSON for the /blackbox endpoint.
func MarshalBlackBoxes(boxes []BlackBox) ([]byte, error) {
	return json.Marshal(boxes)
}
