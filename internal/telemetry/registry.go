package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// metricKind discriminates the registry's metric families.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// metric is one registered series: a base name, an optional label set,
// and the instrument behind it.
type metric struct {
	name   string
	labels []string // alternating key, value; sorted by key
	kind   metricKind

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry is a named collection of metrics. Lookups create on first
// use, so instrumented packages declare their series as package vars
// and hot paths never touch the registry. All methods are safe for
// concurrent use.
type Registry struct {
	mu      sync.RWMutex
	metrics map[string]*metric
	// byName indexes series by base name so family-wide reads
	// (SumCounters) touch only the family, not every series — probes
	// tick these reads continuously and the series count grows with
	// label cardinality.
	byName map[string][]*metric

	// collectors run before each export (Snapshot, WritePrometheus) so
	// pull-style sources — runtime metrics, anything sampled rather
	// than recorded — refresh their gauges at scrape time. Guarded by
	// its own mutex: a collector updates instruments, which takes mu.
	collectMu  sync.Mutex
	collectors []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		metrics: make(map[string]*metric),
		byName:  make(map[string][]*metric),
	}
}

// defaultRegistry is the process-wide registry the instrumented
// packages record into; exporters (the /metrics endpoint, benchsuite
// counter dumps, ftmctl metrics) read from it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// seriesKey builds the canonical identity of (name, labels). Labels are
// alternating key/value strings, sorted by key before hashing, so label
// order at the call site does not split a series in two.
func seriesKey(name string, labels []string) (string, []string) {
	if len(labels) == 0 {
		return name, nil
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: metric %q has odd label list %v", name, labels))
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, pair{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	sorted := make([]string, 0, len(labels))
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
		sorted = append(sorted, p.k, p.v)
	}
	b.WriteByte('}')
	return b.String(), sorted
}

// lookup returns the metric registered under (name, labels), creating
// it via make on first use. A kind clash on an existing key panics:
// metric identities are static properties of the program.
func (r *Registry) lookup(name string, labels []string, kind metricKind, make func(*metric)) *metric {
	key, sorted := seriesKey(name, labels)
	r.mu.RLock()
	m, ok := r.metrics[key]
	r.mu.RUnlock()
	if ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok = r.metrics[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s (was %s)", key, kind, m.kind))
		}
		return m
	}
	m = &metric{name: name, labels: sorted, kind: kind}
	make(m)
	r.metrics[key] = m
	r.byName[name] = append(r.byName[name], m)
	return m
}

// Counter returns the counter registered under name and the given
// alternating label key/value pairs, creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, labels, kindCounter, func(m *metric) { m.counter = &Counter{} }).counter
}

// Gauge returns the gauge registered under name and labels.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, labels, kindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// Histogram returns the histogram registered under name and labels.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.lookup(name, labels, kindHistogram, func(m *metric) { m.histogram = &Histogram{} }).histogram
}

// FindHistogram returns the histogram registered under (name, labels)
// without creating it, for probes that read someone else's series.
func (r *Registry) FindHistogram(name string, labels ...string) (*Histogram, bool) {
	key, _ := seriesKey(name, labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.metrics[key]
	if !ok || m.kind != kindHistogram {
		return nil, false
	}
	return m.histogram, true
}

// SumCounters returns the summed value of every counter series
// registered under the base name, across all label sets — the reading a
// rate probe wants when the family splits one logical event stream by
// reason or status.
func (r *Registry) SumCounters(name string) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var total uint64
	for _, m := range r.byName[name] {
		if m.kind == kindCounter {
			total += m.counter.Value()
		}
	}
	return total
}

// FindCounter returns the counter registered under (name, labels)
// without creating it.
func (r *Registry) FindCounter(name string, labels ...string) (*Counter, bool) {
	key, _ := seriesKey(name, labels)
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.metrics[key]
	if !ok || m.kind != kindCounter {
		return nil, false
	}
	return m.counter, true
}

// Sample is one exported series value. Histograms flatten into count,
// sum and quantile upper bounds.
type Sample struct {
	// Name is the full series identity, labels included.
	Name string `json:"name"`
	// Kind is "counter", "gauge" or "histogram".
	Kind string `json:"kind"`
	// Value carries the counter/gauge reading.
	Value float64 `json:"value"`
	// Histogram-only fields, in nanoseconds where durations.
	Count uint64 `json:"count,omitempty"`
	SumNs uint64 `json:"sum_ns,omitempty"`
	P50Ns int64  `json:"p50_ns,omitempty"`
	P95Ns int64  `json:"p95_ns,omitempty"`
	P99Ns int64  `json:"p99_ns,omitempty"`
}

// OnCollect registers f to run before every export of the registry.
// Collectors must only record into instruments (Set, Observe, Add);
// they must not export the registry themselves.
func (r *Registry) OnCollect(f func()) {
	r.collectMu.Lock()
	r.collectors = append(r.collectors, f)
	r.collectMu.Unlock()
}

// runCollectors runs the registered pull-style sources. Serialized so
// two concurrent scrapes do not double-feed delta-replaying collectors.
func (r *Registry) runCollectors() {
	r.collectMu.Lock()
	defer r.collectMu.Unlock()
	for _, f := range r.collectors {
		f()
	}
}

// Snapshot returns every registered series, sorted by name.
func (r *Registry) Snapshot() []Sample {
	r.runCollectors()
	r.mu.RLock()
	metrics := make([]*metric, 0, len(r.metrics))
	keys := make([]string, 0, len(r.metrics))
	for key, m := range r.metrics {
		metrics = append(metrics, m)
		keys = append(keys, key)
	}
	r.mu.RUnlock()

	out := make([]Sample, 0, len(metrics))
	for i, m := range metrics {
		s := Sample{Name: keys[i], Kind: m.kind.String()}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.counter.Value())
		case kindGauge:
			s.Value = float64(m.gauge.Value())
		case kindHistogram:
			hs := m.histogram.Snapshot()
			s.Count = hs.Count
			s.SumNs = hs.SumNs
			s.P50Ns = hs.Quantile(0.50).Nanoseconds()
			s.P95Ns = hs.Quantile(0.95).Nanoseconds()
			s.P99Ns = hs.Quantile(0.99).Nanoseconds()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Flatten renders the registry as a flat name→value map: counters and
// gauges directly, histograms as _count, _sum_ns, _p50_ns, _p95_ns and
// _p99_ns series. This is the shape benchsuite embeds in BENCH files.
func (r *Registry) Flatten() map[string]float64 {
	out := make(map[string]float64)
	for _, s := range r.Snapshot() {
		switch s.Kind {
		case "histogram":
			out[s.Name+"_count"] = float64(s.Count)
			out[s.Name+"_sum_ns"] = float64(s.SumNs)
			out[s.Name+"_p50_ns"] = float64(s.P50Ns)
			out[s.Name+"_p95_ns"] = float64(s.P95Ns)
			out[s.Name+"_p99_ns"] = float64(s.P99Ns)
		default:
			out[s.Name] = s.Value
		}
	}
	return out
}

// labelString renders a label set (plus optional extra pair) in
// Prometheus brace syntax; empty when there are no labels.
func labelString(labels []string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for i := 0; i+1 < len(labels); i += 2 {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", labels[i], labels[i+1])
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (durations in seconds, as the conventions require). Histograms
// emit cumulative le buckets up to the highest occupied bucket, plus
// +Inf, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollectors()
	r.mu.RLock()
	metrics := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		metrics = append(metrics, m)
	}
	r.mu.RUnlock()
	sort.Slice(metrics, func(i, j int) bool {
		if metrics[i].name != metrics[j].name {
			return metrics[i].name < metrics[j].name
		}
		return labelString(metrics[i].labels, "", "") < labelString(metrics[j].labels, "", "")
	})

	typed := make(map[string]bool)
	for _, m := range metrics {
		if !typed[m.name] {
			typed[m.name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, m.kind); err != nil {
				return err
			}
		}
		ls := labelString(m.labels, "", "")
		switch m.kind {
		case kindCounter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, ls, m.counter.Value()); err != nil {
				return err
			}
		case kindGauge:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", m.name, ls, m.gauge.Value()); err != nil {
				return err
			}
		case kindHistogram:
			hs := m.histogram.Snapshot()
			top := 0
			for i, n := range hs.Buckets {
				if n > 0 {
					top = i
				}
			}
			var cum uint64
			for i := 0; i <= top; i++ {
				cum += hs.Buckets[i]
				le := float64(bucketUpperBound(i).Nanoseconds()) / 1e9
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					m.name, labelString(m.labels, "le", fmt.Sprintf("%g", le)), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				m.name, labelString(m.labels, "le", "+Inf"), hs.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", m.name, ls, float64(hs.SumNs)/1e9); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", m.name, ls, hs.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
