package telemetry

import (
	"testing"
	"time"
)

func newTestRecorder() (*FlightRecorder, *Tracer, *SpanRecorder, *Registry) {
	tr := NewTracer(64)
	sp := NewSpanRecorder(64)
	reg := NewRegistry()
	return NewFlightRecorder(tr, sp, reg), tr, sp, reg
}

func TestFlightRecorderDumpCapturesWindow(t *testing.T) {
	f, tr, sp, reg := newTestRecorder()
	sp.SetOrigin("replica-a")
	reg.Counter("test_requests_total").Inc()
	tr.Emit("replica", "started", 0, "host", "a")
	tr.Emit("replica", "suspect", 0, "peer", "b")
	sp.Add(SpanContext{TraceID: 7, SpanID: 1}, "ftm.execute", time.Now(), time.Millisecond)

	box := f.Dump("peer-suspected", "peer", "b")
	if box.Reason != "peer-suspected" || box.Attrs["peer"] != "b" {
		t.Fatalf("reason/attrs wrong: %+v", box)
	}
	if box.Origin != "replica-a" {
		t.Fatalf("origin = %q, want replica-a", box.Origin)
	}
	if len(box.Events) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(box.Events), box.Events)
	}
	if box.Events[0].Name != "started" || box.Events[1].Name != "suspect" {
		t.Fatalf("events out of order or missing: %+v", box.Events)
	}
	if len(box.Spans) != 1 || box.Spans[0].Name != "ftm.execute" {
		t.Fatalf("spans missing: %+v", box.Spans)
	}
	found := false
	for _, s := range box.Metrics {
		if s.Name == "test_requests_total" && s.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("metric snapshot missing counter: %+v", box.Metrics)
	}
	if got := f.Boxes(); len(got) != 1 {
		t.Fatalf("retained %d boxes, want 1", len(got))
	}
}

func TestFlightRecorderWindowBounded(t *testing.T) {
	f, tr, _, _ := newTestRecorder()
	f.maxEvents = 4
	for i := 0; i < 20; i++ {
		tr.Emit("k", "n", 0)
		f.fold()
	}
	box := f.Dump("test")
	if len(box.Events) != 4 {
		t.Fatalf("window not bounded: %d events", len(box.Events))
	}
	if box.Events[len(box.Events)-1].Seq != 20 {
		t.Fatalf("window lost the newest events: last seq %d", box.Events[len(box.Events)-1].Seq)
	}
}

func TestFlightRecorderRetainsBoundedBoxes(t *testing.T) {
	f, _, _, _ := newTestRecorder()
	f.retain = 2
	f.Dump("one")
	f.Dump("two")
	f.Dump("three")
	boxes := f.Boxes()
	if len(boxes) != 2 {
		t.Fatalf("retained %d boxes, want 2", len(boxes))
	}
	if boxes[0].Reason != "two" || boxes[1].Reason != "three" {
		t.Fatalf("wrong boxes survived: %q %q", boxes[0].Reason, boxes[1].Reason)
	}
}

func TestFlightRecorderPersistHook(t *testing.T) {
	f, tr, _, _ := newTestRecorder()
	var persisted []BlackBox
	f.SetPersist(func(b BlackBox) { persisted = append(persisted, b) })
	tr.Emit("replica", "demoted", 0)
	f.Dump("demoted")
	if len(persisted) != 1 || persisted[0].Reason != "demoted" {
		t.Fatalf("persist hook missed the dump: %+v", persisted)
	}
	if len(persisted[0].Events) != 1 {
		t.Fatalf("persisted box lost events: %+v", persisted[0].Events)
	}
}

func TestFlightRecorderStartStopFoldsInBackground(t *testing.T) {
	f, tr, _, _ := newTestRecorder()
	f.Start(5 * time.Millisecond)
	defer f.Stop()
	tr.Emit("k", "background", 0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		f.mu.Lock()
		n := len(f.window)
		f.mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background fold never picked up the event")
		}
		time.Sleep(time.Millisecond)
	}
	f.Stop() // second Stop must be safe
}
