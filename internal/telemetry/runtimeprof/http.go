package runtimeprof

import (
	"net/http"
	"net/http/pprof"

	"resilientft/internal/telemetry"
)

// PprofHandlers returns a telemetry.HandlerOption mounting the
// standard net/http/pprof handlers under /debug/pprof/ on the
// observability mux. The handlers are mounted explicitly — the
// DefaultServeMux this import registers on is never served — so the
// profiles live on the same (firewallable) port as /metrics and /slo,
// and telemetry itself stays free of the dependency.
func PprofHandlers() telemetry.HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
