package runtimeprof

import (
	"context"
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"

	"resilientft/internal/telemetry"
)

func TestCollectPopulatesSeries(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(reg)
	c.Collect() // first sweep primes the histogram baselines
	runtime.GC()
	c.Collect()

	flat := reg.Flatten()
	if flat[SeriesGoroutines] < 1 {
		t.Fatalf("%s = %v, want >= 1", SeriesGoroutines, flat[SeriesGoroutines])
	}
	if flat[SeriesHeapLive] <= 0 {
		t.Fatalf("%s = %v, want > 0", SeriesHeapLive, flat[SeriesHeapLive])
	}
	if got, want := int(flat[SeriesGomaxprocs]), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("%s = %d, want %d", SeriesGomaxprocs, got, want)
	}
	if flat[SeriesGCPause+"_count"] == 0 {
		t.Fatalf("%s carried no observations after a forced GC", SeriesGCPause)
	}
}

func TestCollectDeltasNotCumulative(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := NewCollector(reg)
	c.Collect() // prime
	runtime.GC()
	c.Collect()
	h, ok := reg.FindHistogram(SeriesGCPause)
	if !ok {
		t.Fatal("gc pause series missing")
	}
	first := h.Count()
	// A second sweep with no GC in between must not replay old pauses.
	c.Collect()
	if again := h.Count(); again != first {
		t.Fatalf("second sweep replayed %d old pauses", again-first)
	}
	runtime.GC()
	c.Collect()
	if after := h.Count(); after <= first {
		t.Fatalf("sweep after GC added nothing (count still %d)", after)
	}
}

func TestEnableIsIdempotentAndRefreshesOnExport(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := Enable(reg)
	if b := Enable(reg); b != a {
		t.Fatal("second Enable installed a second collector")
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), SeriesGoroutines) {
		t.Fatalf("export missing %s:\n%s", SeriesGoroutines, sb.String())
	}
}

func TestReadSummary(t *testing.T) {
	s := ReadSummary()
	if s.Goroutines < 1 || s.HeapLiveBytes == 0 || s.Gomaxprocs < 1 {
		t.Fatalf("implausible summary: %+v", s)
	}
}

func TestCaptureProfiles(t *testing.T) {
	prev := EnableMutexProfiling(5)
	defer EnableMutexProfiling(prev)

	ctx := context.Background()
	p, err := Capture(ctx, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Heap) == 0 || len(p.Goroutine) == 0 || len(p.Mutex) == 0 {
		t.Fatalf("empty profile payloads: heap=%d goroutine=%d mutex=%d",
			len(p.Heap), len(p.Goroutine), len(p.Mutex))
	}
	if len(p.CPU) == 0 && p.CPUErr == "" {
		t.Fatal("neither a CPU profile nor an explanation")
	}
	if p.Summary.Goroutines < 1 {
		t.Fatalf("summary missing: %+v", p.Summary)
	}
	// The bundle must survive a JSON round trip (incident records carry
	// it as JSON; []byte rides as base64).
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Profiles
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Heap) != len(p.Heap) {
		t.Fatal("heap profile mangled by JSON round trip")
	}
}

func TestCaptureSingleFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		captureMu.Lock()
		close(started)
		<-release
		captureMu.Unlock()
	}()
	<-started
	if _, err := Capture(context.Background(), 0); err != ErrCaptureBusy {
		t.Fatalf("err = %v, want ErrCaptureBusy", err)
	}
	close(release)
	<-done
}

func TestCaptureCtxShortensCPU(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := Capture(ctx, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("capture ignored ctx, took %v", took)
	}
}
