// Package runtimeprof is the runtime-diagnostics layer of the
// observability stack: it bridges the Go runtime's own metrics
// (goroutine count, live heap, GC pauses, scheduler latencies) into
// the telemetry registry so every /metrics scrape carries runtime
// context, and captures pprof profiles (CPU, heap, goroutine, mutex)
// on demand — the evidence an SLO-breach diagnostic bundle needs to
// explain *why* a budget burned, not just that it did.
package runtimeprof

import (
	"bytes"
	"context"
	"errors"
	"math"
	"runtime"
	"runtime/metrics"
	"runtime/pprof"
	"sync"
	"time"

	"resilientft/internal/telemetry"
)

// The bridged series. Gauges are sampled at scrape time; the two
// histograms are fed by replaying the runtime's own bucket counts
// (delta since the previous sweep) into power-of-two telemetry
// buckets, each runtime bucket mapped to its upper edge.
const (
	SeriesGoroutines   = "runtime_goroutines"
	SeriesHeapLive     = "runtime_heap_live_bytes"
	SeriesGomaxprocs   = "runtime_gomaxprocs"
	SeriesGCPause      = "runtime_gc_pause_ns"
	SeriesSchedLatency = "runtime_sched_latency_ns"
)

// runtime/metrics sample names read per sweep.
const (
	sampleGoroutines = "/sched/goroutines:goroutines"
	sampleHeapLive   = "/memory/classes/heap/objects:bytes"
	sampleGomaxprocs = "/sched/gomaxprocs:threads"
	sampleGCPause    = "/gc/pauses:seconds"
	sampleSchedLat   = "/sched/latencies:seconds"
)

// Collector sweeps runtime/metrics into one telemetry registry. A
// sweep is cheap (one metrics.Read plus a bucket diff); it runs on
// every registry export via OnCollect.
type Collector struct {
	mu      sync.Mutex
	samples []metrics.Sample

	goroutines *telemetry.Gauge
	heapLive   *telemetry.Gauge
	gomaxprocs *telemetry.Gauge
	gcPause    *telemetry.Histogram
	schedLat   *telemetry.Histogram

	lastGCPause  []uint64
	lastSchedLat []uint64
}

// NewCollector returns a collector recording into reg.
func NewCollector(reg *telemetry.Registry) *Collector {
	c := &Collector{
		samples: []metrics.Sample{
			{Name: sampleGoroutines},
			{Name: sampleHeapLive},
			{Name: sampleGomaxprocs},
			{Name: sampleGCPause},
			{Name: sampleSchedLat},
		},
		goroutines: reg.Gauge(SeriesGoroutines),
		heapLive:   reg.Gauge(SeriesHeapLive),
		gomaxprocs: reg.Gauge(SeriesGomaxprocs),
		gcPause:    reg.Histogram(SeriesGCPause),
		schedLat:   reg.Histogram(SeriesSchedLatency),
	}
	return c
}

// Collect performs one sweep. Safe for concurrent use; sweeps are
// serialized so bucket deltas are never replayed twice.
func (c *Collector) Collect() {
	c.mu.Lock()
	defer c.mu.Unlock()
	metrics.Read(c.samples)
	for _, s := range c.samples {
		switch s.Name {
		case sampleGoroutines:
			c.goroutines.Set(int64(s.Value.Uint64()))
		case sampleHeapLive:
			c.heapLive.Set(int64(s.Value.Uint64()))
		case sampleGomaxprocs:
			c.gomaxprocs.Set(int64(s.Value.Uint64()))
		case sampleGCPause:
			c.lastGCPause = feedHistogram(c.gcPause, c.lastGCPause, s.Value.Float64Histogram())
		case sampleSchedLat:
			c.lastSchedLat = feedHistogram(c.schedLat, c.lastSchedLat, s.Value.Float64Histogram())
		}
	}
}

// feedHistogram replays the counts a runtime histogram gained since
// prev into h (each bucket at its upper edge, +Inf at the last finite
// edge) and returns the new baseline. A changed bucket layout resets
// the baseline without replaying — wrong once beats double-counted
// forever.
func feedHistogram(h *telemetry.Histogram, prev []uint64, src *metrics.Float64Histogram) []uint64 {
	if src == nil {
		return prev
	}
	reset := len(prev) != len(src.Counts)
	next := prev
	if reset {
		next = make([]uint64, len(src.Counts))
	}
	for i, n := range src.Counts {
		var d uint64
		if !reset && n >= prev[i] {
			d = n - prev[i]
		}
		next[i] = n
		if d == 0 || reset {
			continue
		}
		edge := src.Buckets[i+1]
		if math.IsInf(edge, 1) {
			edge = src.Buckets[i]
		}
		h.ObserveN(time.Duration(edge*float64(time.Second)), d)
	}
	return next
}

var (
	enableMu sync.Mutex
	enabled  = make(map[*telemetry.Registry]*Collector)
)

// Enable installs a collector on reg's export path (OnCollect), so
// every Snapshot/WritePrometheus/Flatten carries fresh runtime
// series. Idempotent per registry.
func Enable(reg *telemetry.Registry) *Collector {
	enableMu.Lock()
	defer enableMu.Unlock()
	if c, ok := enabled[reg]; ok {
		return c
	}
	c := NewCollector(reg)
	enabled[reg] = c
	reg.OnCollect(c.Collect)
	return c
}

// Summary is a point-in-time digest of the runtime's vital signs, the
// cheap numbers a diagnostic bundle or a bench report stamps next to
// its data.
type Summary struct {
	Goroutines    int    `json:"goroutines"`
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	Gomaxprocs    int    `json:"gomaxprocs"`
}

// ReadSummary samples the runtime once.
func ReadSummary() Summary {
	samples := []metrics.Sample{{Name: sampleGoroutines}, {Name: sampleHeapLive}}
	metrics.Read(samples)
	return Summary{
		Goroutines:    int(samples[0].Value.Uint64()),
		HeapLiveBytes: samples[1].Value.Uint64(),
		Gomaxprocs:    runtime.GOMAXPROCS(0),
	}
}

// Profiles is one on-demand capture of the runtime profiles. The
// profile payloads are gzipped pprof protos ([]byte marshals as
// base64 in JSON), small enough to ride inside an incident record.
type Profiles struct {
	CapturedAt time.Time     `json:"captured_at"`
	CPUSeconds float64       `json:"cpu_seconds,omitempty"`
	CPU        []byte        `json:"cpu,omitempty"`
	CPUErr     string        `json:"cpu_err,omitempty"`
	Heap       []byte        `json:"heap,omitempty"`
	Goroutine  []byte        `json:"goroutine,omitempty"`
	Mutex      []byte        `json:"mutex,omitempty"`
	Took       time.Duration `json:"took_ns"`
	Summary    Summary       `json:"summary"`
}

// ErrCaptureBusy reports that a capture was already in flight; the
// caller's breach is already being diagnosed.
var ErrCaptureBusy = errors.New("runtimeprof: capture already in progress")

var captureMu sync.Mutex

// Capture grabs heap, goroutine and mutex profiles plus — when cpuDur
// is positive — a CPU profile of that duration (shortened if ctx ends
// first). Captures are single-flight: a second concurrent call
// returns ErrCaptureBusy rather than queueing diagnostics behind
// diagnostics. A CPU profiler already running elsewhere (the HTTP
// pprof endpoint, a test) is reported in CPUErr, not treated as
// failure — the other capture has the evidence.
func Capture(ctx context.Context, cpuDur time.Duration) (*Profiles, error) {
	if !captureMu.TryLock() {
		return nil, ErrCaptureBusy
	}
	defer captureMu.Unlock()

	start := time.Now()
	p := &Profiles{CapturedAt: start, Summary: ReadSummary()}

	if cpuDur > 0 {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			p.CPUErr = err.Error()
		} else {
			t := time.NewTimer(cpuDur)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
			pprof.StopCPUProfile()
			p.CPU = buf.Bytes()
			p.CPUSeconds = time.Since(start).Seconds()
		}
	}
	p.Heap = lookupProfile("heap")
	p.Goroutine = lookupProfile("goroutine")
	p.Mutex = lookupProfile("mutex")
	p.Took = time.Since(start)
	return p, nil
}

func lookupProfile(name string) []byte {
	prof := pprof.Lookup(name)
	if prof == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		return nil
	}
	return buf.Bytes()
}

// EnableMutexProfiling turns on mutex contention sampling at the
// given fraction (0 restores the default of none) and returns the
// previous setting. Captured mutex profiles are empty until enabled.
func EnableMutexProfiling(fraction int) int {
	return runtime.SetMutexProfileFraction(fraction)
}
