// Package faultinject provides the software-implemented fault injection
// used throughout tests, examples and experiments: the fault classes of
// the paper's FT dimension — crash faults, transient value faults
// (one-shot bit flips) and permanent value faults (stuck-at corruption on
// one host). All injectors are seeded and deterministic.
package faultinject

import (
	"math/rand"
	"sync"
)

// ValueInjector corrupts computation results at a chosen point in the
// server's processing path. Transient faults corrupt a bounded number of
// results (each once — a re-execution computes cleanly, which is what
// time redundancy exploits); a permanent fault corrupts every result
// (what assertion-and-switch-host strategies exist for).
type ValueInjector struct {
	mu        sync.Mutex
	rng       *rand.Rand
	transient int
	permanent bool
	// stuckMask is the corruption applied under a permanent fault; fixed
	// per injector so the fault is consistent, like real stuck-at bits.
	stuckMask int64
	injected  int
}

// NewValueInjector returns an injector with a seeded random source.
func NewValueInjector(seed int64) *ValueInjector {
	rng := rand.New(rand.NewSource(seed))
	// Intn(64) spans the whole word — bit 0 (the LSB a ±1 error flips)
	// and bit 63 (the sign bit) are as fair game as any.
	return &ValueInjector{
		rng:       rng,
		stuckMask: int64(1) << uint(rng.Intn(64)),
	}
}

// InjectTransient arms n one-shot bit flips: each of the next n results
// passed to Apply is corrupted once.
func (v *ValueInjector) InjectTransient(n int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.transient += n
}

// SetPermanent switches permanent corruption on or off.
func (v *ValueInjector) SetPermanent(on bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.permanent = on
}

// Apply passes a computation result through the injector, corrupting it
// according to the armed faults.
func (v *ValueInjector) Apply(result int64) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.permanent {
		v.injected++
		return result ^ v.stuckMask
	}
	if v.transient > 0 {
		v.transient--
		v.injected++
		bit := uint(v.rng.Intn(64))
		return result ^ (int64(1) << bit)
	}
	return result
}

// Injected returns how many corruptions were applied so far.
func (v *ValueInjector) Injected() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.injected
}

// Armed reports whether any fault is currently armed.
func (v *ValueInjector) Armed() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.permanent || v.transient > 0
}

// CrashSwitch is a one-way crash flag shared between a host and the
// entities that must fall silent with it.
type CrashSwitch struct {
	mu      sync.Mutex
	tripped bool
	onTrip  []func()
}

// OnTrip registers a callback to run when the switch trips. A callback
// registered after tripping runs immediately.
func (c *CrashSwitch) OnTrip(f func()) {
	c.mu.Lock()
	tripped := c.tripped
	if !tripped {
		c.onTrip = append(c.onTrip, f)
	}
	c.mu.Unlock()
	if tripped {
		f()
	}
}

// Trip fires the crash. Idempotent.
func (c *CrashSwitch) Trip() {
	c.mu.Lock()
	if c.tripped {
		c.mu.Unlock()
		return
	}
	c.tripped = true
	callbacks := c.onTrip
	c.onTrip = nil
	c.mu.Unlock()
	for _, f := range callbacks {
		f()
	}
}

// Tripped reports whether the crash fired.
func (c *CrashSwitch) Tripped() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tripped
}
