package faultinject

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestTransientCorruptsExactlyOnceEach(t *testing.T) {
	v := NewValueInjector(1)
	v.InjectTransient(2)
	if !v.Armed() {
		t.Fatal("injector not armed after InjectTransient")
	}
	const clean = int64(12345)
	first := v.Apply(clean)
	second := v.Apply(clean)
	third := v.Apply(clean)
	if first == clean || second == clean {
		t.Fatalf("armed corruption did not fire: %d, %d", first, second)
	}
	if third != clean {
		t.Fatalf("third result corrupted after faults exhausted: %d", third)
	}
	if v.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", v.Injected())
	}
	if v.Armed() {
		t.Fatal("injector still armed after exhaustion")
	}
}

func TestPermanentCorruptsEveryResultConsistently(t *testing.T) {
	v := NewValueInjector(2)
	v.SetPermanent(true)
	const clean = int64(777)
	a := v.Apply(clean)
	b := v.Apply(clean)
	if a == clean || b == clean {
		t.Fatal("permanent fault did not corrupt")
	}
	if a != b {
		t.Fatalf("permanent fault is inconsistent: %d != %d (stuck-at must be stable)", a, b)
	}
	v.SetPermanent(false)
	if got := v.Apply(clean); got != clean {
		t.Fatalf("result corrupted after permanent fault cleared: %d", got)
	}
}

func TestSeededInjectorsAreReproducible(t *testing.T) {
	mk := func() []int64 {
		v := NewValueInjector(99)
		v.InjectTransient(5)
		out := make([]int64, 5)
		for i := range out {
			out[i] = v.Apply(1000)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d != %d", i, a[i], b[i])
		}
	}
}

// Property: a corrupted value always differs from the clean value (a bit
// flip can never be the identity), and corruption is an involution under
// the same mask for permanent faults.
func TestCorruptionNeverIdentity_Property(t *testing.T) {
	f := func(seed int64, value int64) bool {
		v := NewValueInjector(seed)
		v.InjectTransient(1)
		return v.Apply(value) != value
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCrashSwitch(t *testing.T) {
	var c CrashSwitch
	var fired atomic.Int32
	c.OnTrip(func() { fired.Add(1) })
	if c.Tripped() {
		t.Fatal("fresh switch tripped")
	}
	c.Trip()
	c.Trip() // idempotent
	if !c.Tripped() {
		t.Fatal("switch not tripped")
	}
	if fired.Load() != 1 {
		t.Fatalf("callback fired %d times, want 1", fired.Load())
	}
	// Late registration runs immediately.
	c.OnTrip(func() { fired.Add(1) })
	if fired.Load() != 2 {
		t.Fatalf("late callback not fired: %d", fired.Load())
	}
}
