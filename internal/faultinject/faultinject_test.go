package faultinject

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestTransientCorruptsExactlyOnceEach(t *testing.T) {
	v := NewValueInjector(1)
	v.InjectTransient(2)
	if !v.Armed() {
		t.Fatal("injector not armed after InjectTransient")
	}
	const clean = int64(12345)
	first := v.Apply(clean)
	second := v.Apply(clean)
	third := v.Apply(clean)
	if first == clean || second == clean {
		t.Fatalf("armed corruption did not fire: %d, %d", first, second)
	}
	if third != clean {
		t.Fatalf("third result corrupted after faults exhausted: %d", third)
	}
	if v.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", v.Injected())
	}
	if v.Armed() {
		t.Fatal("injector still armed after exhaustion")
	}
}

func TestPermanentCorruptsEveryResultConsistently(t *testing.T) {
	v := NewValueInjector(2)
	v.SetPermanent(true)
	const clean = int64(777)
	a := v.Apply(clean)
	b := v.Apply(clean)
	if a == clean || b == clean {
		t.Fatal("permanent fault did not corrupt")
	}
	if a != b {
		t.Fatalf("permanent fault is inconsistent: %d != %d (stuck-at must be stable)", a, b)
	}
	v.SetPermanent(false)
	if got := v.Apply(clean); got != clean {
		t.Fatalf("result corrupted after permanent fault cleared: %d", got)
	}
}

func TestSeededInjectorsAreReproducible(t *testing.T) {
	mk := func() []int64 {
		v := NewValueInjector(99)
		v.InjectTransient(5)
		out := make([]int64, 5)
		for i := range out {
			out[i] = v.Apply(1000)
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %d != %d", i, a[i], b[i])
		}
	}
}

// Property: a corrupted value always differs from the clean value (a bit
// flip can never be the identity), and corruption is an involution under
// the same mask for permanent faults.
func TestCorruptionNeverIdentity_Property(t *testing.T) {
	f := func(seed int64, value int64) bool {
		v := NewValueInjector(seed)
		v.InjectTransient(1)
		return v.Apply(value) != value
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// The injector must be able to hit every bit of the word. The original
// implementation drew from Intn(62)+1, so bit 0 (LSB: off-by-one
// corruptions) and bit 63 (sign flips) were unreachable — an adversary
// with a blind spot exactly where arithmetic bugs live.
func TestTransientFlipsCoverFullWord(t *testing.T) {
	v := NewValueInjector(4242)
	const rounds = 64 * 128 // missing-bit probability ~ 64·(63/64)^8192 ≈ 0
	v.InjectTransient(rounds)
	var seen [64]bool
	for i := 0; i < rounds; i++ {
		flipped := v.Apply(0) // Apply(0) exposes the flipped bit directly
		if flipped == 0 {
			t.Fatal("transient flip produced identity")
		}
		for b := 0; b < 64; b++ {
			if flipped == int64(1)<<uint(b) {
				seen[b] = true
			}
		}
	}
	for b, ok := range seen {
		if !ok {
			t.Fatalf("bit %d never flipped in %d transient corruptions", b, rounds)
		}
	}
	if !seen[0] || !seen[63] {
		t.Fatal("boundary bits 0/63 not covered")
	}
}

// The permanent stuck-at mask must likewise range over all 64 bit
// positions across seeds, including both word boundaries.
func TestStuckMaskCoversFullWord(t *testing.T) {
	var seen [64]bool
	for seed := int64(0); seed < 64*128; seed++ {
		v := NewValueInjector(seed)
		v.SetPermanent(true)
		mask := v.Apply(0)
		if mask == 0 {
			t.Fatalf("seed %d: stuck mask is zero", seed)
		}
		found := false
		for b := 0; b < 64; b++ {
			if mask == int64(1)<<uint(b) {
				seen[b] = true
				found = true
			}
		}
		if !found {
			t.Fatalf("seed %d: stuck mask %#x is not a single bit", seed, uint64(mask))
		}
	}
	for b, ok := range seen {
		if !ok {
			t.Fatalf("bit %d never chosen as stuck mask", b)
		}
	}
}

func TestCrashSwitch(t *testing.T) {
	var c CrashSwitch
	var fired atomic.Int32
	c.OnTrip(func() { fired.Add(1) })
	if c.Tripped() {
		t.Fatal("fresh switch tripped")
	}
	c.Trip()
	c.Trip() // idempotent
	if !c.Tripped() {
		t.Fatal("switch not tripped")
	}
	if fired.Load() != 1 {
		t.Fatalf("callback fired %d times, want 1", fired.Load())
	}
	// Late registration runs immediately.
	c.OnTrip(func() { fired.Add(1) })
	if fired.Load() != 2 {
		t.Fatalf("late callback not fired: %d", fired.Load())
	}
}
