// Package sloc counts source lines of Go code — the measurement behind
// the Figure 5 reproduction (SLOC per fault-tolerance design pattern) and
// the Figure 4 substitution (framework reuse: new code a mechanism needs
// vs code it reuses).
package sloc

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Stats aggregates line counts.
type Stats struct {
	Files   int
	Code    int
	Comment int
	Blank   int
}

// Add folds another count in.
func (s *Stats) Add(o Stats) {
	s.Files += o.Files
	s.Code += o.Code
	s.Comment += o.Comment
	s.Blank += o.Blank
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("%d files, %d code, %d comment, %d blank", s.Files, s.Code, s.Comment, s.Blank)
}

// CountSource counts lines in one Go source text. The classifier handles
// line comments, block comments and blank lines; a line carrying both
// code and a comment counts as code.
func CountSource(src string) Stats {
	stats := Stats{Files: 1}
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case inBlock:
			stats.Comment++
			if idx := strings.Index(trimmed, "*/"); idx >= 0 {
				inBlock = false
				rest := strings.TrimSpace(trimmed[idx+2:])
				if rest != "" {
					stats.Comment--
					stats.Code++
				}
			}
		case trimmed == "":
			stats.Blank++
		case strings.HasPrefix(trimmed, "//"):
			stats.Comment++
		case strings.HasPrefix(trimmed, "/*"):
			stats.Comment++
			if !strings.Contains(trimmed, "*/") {
				inBlock = true
			}
		default:
			stats.Code++
			// A block comment may open mid-line and continue.
			if idx := strings.LastIndex(trimmed, "/*"); idx >= 0 {
				tail := trimmed[idx:]
				if !strings.Contains(tail, "*/") {
					inBlock = true
				}
			}
		}
	}
	// The final split element after a trailing newline is empty.
	if strings.HasSuffix(src, "\n") {
		stats.Blank--
	}
	if stats.Blank < 0 {
		stats.Blank = 0
	}
	return stats
}

// CountFile counts one file on disk.
func CountFile(path string) (Stats, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Stats{}, fmt.Errorf("sloc: %w", err)
	}
	return CountSource(string(data)), nil
}

// Options filter a directory count.
type Options struct {
	// IncludeTests counts _test.go files too.
	IncludeTests bool
	// Match restricts to files whose base name passes the filter.
	Match func(name string) bool
}

// CountDir recursively counts Go files under root, returning per-file
// stats keyed by path relative to root.
func CountDir(root string, opts Options) (map[string]Stats, error) {
	out := make(map[string]Stats)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		name := d.Name()
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		if !opts.IncludeTests && strings.HasSuffix(name, "_test.go") {
			return nil
		}
		if opts.Match != nil && !opts.Match(name) {
			return nil
		}
		stats, err := CountFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		out[rel] = stats
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("sloc: walk %s: %w", root, err)
	}
	return out, nil
}

// Total sums a per-file map.
func Total(perFile map[string]Stats) Stats {
	var total Stats
	keys := make([]string, 0, len(perFile))
	for k := range perFile {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		total.Add(perFile[k])
	}
	return total
}
