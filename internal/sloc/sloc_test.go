package sloc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCountSourceClassification(t *testing.T) {
	src := `// Package doc.
package x

/*
block comment
*/
func F() int {
	return 1 // trailing comment counts as code
}
`
	got := CountSource(src)
	if got.Code != 4 {
		t.Errorf("Code = %d, want 4", got.Code)
	}
	if got.Comment != 4 {
		t.Errorf("Comment = %d, want 4", got.Comment)
	}
	if got.Blank != 1 {
		t.Errorf("Blank = %d, want 1", got.Blank)
	}
	if got.Files != 1 {
		t.Errorf("Files = %d", got.Files)
	}
}

func TestCountSourceBlockEdgeCases(t *testing.T) {
	src := "x := 1 /* opens\nstill comment\nends */ y := 2\n"
	got := CountSource(src)
	if got.Code != 2 {
		t.Errorf("Code = %d, want 2 (open line and close line with code)", got.Code)
	}
	if got.Comment != 1 {
		t.Errorf("Comment = %d, want 1", got.Comment)
	}
}

func TestCountDirFiltersTests(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"a.go":          "package a\nvar X = 1\n",
		"a_test.go":     "package a\nvar T = 1\n",
		"sub/b.go":      "package b\nvar Y = 1\nvar Z = 2\n",
		"sub/notes.txt": "not go\n",
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := CountDir(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("files counted = %v", got)
	}
	total := Total(got)
	if total.Code != 5 {
		t.Fatalf("total code = %d, want 5", total.Code)
	}

	withTests, err := CountDir(dir, Options{IncludeTests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(withTests) != 3 {
		t.Fatalf("files with tests = %d", len(withTests))
	}

	onlyB, err := CountDir(dir, Options{Match: func(name string) bool {
		return strings.HasPrefix(name, "b")
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(onlyB) != 1 {
		t.Fatalf("matched files = %v", onlyB)
	}
}

func TestCountsThisPackage(t *testing.T) {
	got, err := CountDir(".", Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, ok := got["sloc.go"]
	if !ok {
		t.Fatalf("sloc.go not counted: %v", got)
	}
	if stats.Code < 50 {
		t.Fatalf("sloc.go code lines = %d, suspiciously low", stats.Code)
	}
}
