package chaos

import "resilientft/internal/core"

// Builtins returns the standard campaign: seven scenarios, one per
// attack surface plus the combined churn case. Each script ends
// serviceable (heal/settle) because the audit interrogates a healed
// system; what the scenarios must NOT do is crash a degraded master
// holding unshipped acknowledgements — those writes are legitimately
// lost in a two-replica design, and the audit would (correctly) flag
// them.
func Builtins() []Scenario {
	return []Scenario{
		{
			Name: "asymmetric-partition",
			Description: "Cut only beta->alpha: the master's ships reach beta but " +
				"acks and heartbeats die on the way back, so alpha degrades to " +
				"master-alone while beta still hears alpha and stays slave. Heal; " +
				"the resync path must hand beta everything it acked blind.",
			FTM: core.PBR,
			Script: `
load 6
partition beta -> alpha
sleep 120ms      # alpha suspects silent beta, degrades
load 10
heal beta -> alpha
settle
load 4
`,
		},
		{
			Name: "asymmetric-partition-master-isolated",
			Description: "Cut only alpha->beta: beta stops hearing the master and " +
				"promotes while alpha still serves — the classic split brain. " +
				"Beta's return path to alpha stays up, so the promotion guard " +
				"must discover the live senior master and step back down.",
			FTM: core.PBR,
			Script: `
load 6
partition alpha -> beta
sleep 150ms      # beta suspects alpha, promotes into split brain
load 10
heal alpha -> beta
settle
load 4
`,
		},
		{
			Name: "gray-peer",
			Description: "Degrade the replica link without cutting it: latency and " +
				"jitter plus call loss toward beta, one-way send loss toward " +
				"alpha. Waves limp, heartbeats stutter, nothing is cleanly dead — " +
				"the system may degrade or limp through, but acks must hold.",
			FTM: core.PBR,
			Script: `
load 5
link alpha -> beta latency=30ms jitter=20ms callloss=0.3
link beta -> alpha loss=0.5
load 12
sleep 60ms
clear-links
settle
load 4
`,
		},
		{
			Name: "clock-skew",
			Description: "Shift beta's failure-detection clock far forward: healthy " +
				"heartbeats read as ancient silence and beta manufactures a false " +
				"suspicion of a live master. The promotion guard must keep the " +
				"false suspicion from minting a second master, or resolve it.",
			FTM: core.PBR,
			Script: `
load 6
skew beta 5s
sleep 120ms      # phi explodes on manufactured silence
load 10
skew beta 0
settle
load 4
`,
		},
		{
			Name: "store-degraded",
			Description: "Slow both stable stores, run an adaptation under the " +
				"slowness, then fill alpha's store so the next transition's " +
				"config commit is refused — adaptation must fail closed, and " +
				"the workload must survive the whole episode.",
			FTM: core.PBR,
			Script: `
load 5
store-slow alpha 15ms
store-slow beta 15ms
transition lfr
load 6
store-full alpha on
transition pbr
load 6
store-full alpha off
store-slow alpha 0
store-slow beta 0
settle
load 4
`,
		},
		{
			Name: "corrupt-wire",
			Description: "Flip bits in a share of alpha->beta deliveries and throw " +
				"malformed and over-limit frames at both replicas: decode " +
				"boundaries must reject garbage, corrupted ships must fail waves " +
				"rather than ack, and the envelope limit must hold at the sender.",
			FTM: core.PBR,
			Script: `
load 5
link alpha -> beta corrupt=0.4
garbage alpha 8
garbage beta 8
load 12
clear-links
settle
load 4
`,
		},
		{
			Name: "churn-mid-transition",
			Description: "Aim host churn into the fscript window: crash the slave " +
				"during one differential transition, the master during another. " +
				"Transitions may abort — fail closed — but the replica group " +
				"must come back serviceable and no acked write may vanish.",
			FTM: core.PBR,
			Script: `
load 6
transition lfr async
crash slave
await-transition
restart beta
settle
load 6
transition pbr async
sleep 5ms
crash master
await-transition
settle
load 4
`,
		},
	}
}

// FindScenario returns the builtin with the given name.
func FindScenario(name string) (Scenario, bool) {
	for _, s := range Builtins() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}
