// Package chaos implements a deterministic, seedable adversary over the
// simulated transport and host layers: the chaos scenario engine of
// ROADMAP item 4. A scenario is a small program in a line-based DSL
// (see dsl.go) whose verbs compose the fault repertoire — asymmetric
// partitions, gray links, clock skew, slow/full stable storage, wire
// corruption, host churn during fscript transitions — against a live
// two-replica system, while a concurrent workload keeps writing.
//
// After every scenario the engine heals the world and audits it: the
// reply-release invariant (an acknowledged write survives and replays,
// never re-executes), exactly-once execution (the register's final value
// is the count of executed writes and every intermediate value was
// returned exactly once), and trace continuity (a redelivery joins the
// original request's trace). Each violation dumps a flight-recorder
// black box — the evidence format the monitoring layer already speaks.
//
// Everything is driven by one seed: the network's randomness, the
// scheduler's target choices and the corruption bits all derive from
// it, so a failing campaign run replays identically under the same
// seed — determinism is the debugging contract.
package chaos

import (
	"time"

	"resilientft/internal/core"
	"resilientft/internal/telemetry"
)

// Fault names one adversarial action class of the chaos vocabulary —
// the fault-injection counterpart of core.Trigger: where a Trigger
// names a legitimate parameter variation the adaptation layer reacts
// to, a Fault names an adversity the fault-tolerance layer must absorb.
type Fault string

// The fault repertoire.
const (
	// FaultPartition cuts a link in both directions.
	FaultPartition Fault = "partition"
	// FaultPartitionOneWay cuts a single direction — the canonical gray
	// failure shape (heartbeats arrive, deliveries vanish, or vice
	// versa).
	FaultPartitionOneWay Fault = "partition-oneway"
	// FaultGrayLink degrades a direction without cutting it: extra
	// latency, jitter, probabilistic loss.
	FaultGrayLink Fault = "gray-link"
	// FaultClockSkew shifts one replica's failure-detection clock,
	// manufacturing false suspicion from healthy silence.
	FaultClockSkew Fault = "clock-skew"
	// FaultStoreSlow imposes latency on a host's stable store.
	FaultStoreSlow Fault = "store-slow"
	// FaultStoreFull makes a host's stable store reject commits.
	FaultStoreFull Fault = "store-full"
	// FaultCorruption flips bits in delivered payloads.
	FaultCorruption Fault = "corruption"
	// FaultGarbage throws malformed and boundary-sized frames at a
	// replica's endpoint.
	FaultGarbage Fault = "garbage"
	// FaultCrash fail-stops a host.
	FaultCrash Fault = "crash"
	// FaultRestart restarts a crashed host (recovery is adversity too:
	// the rejoin path runs under whatever else is broken).
	FaultRestart Fault = "restart"
	// FaultChurnTransition runs an FTM transition — the fscript window
	// other faults are aimed into.
	FaultChurnTransition Fault = "transition"
)

// Layer is the architectural layer a fault attacks.
type Layer string

// Attack surfaces.
const (
	LayerTransport  Layer = "transport"
	LayerDetector   Layer = "detector"
	LayerStore      Layer = "store"
	LayerHost       Layer = "host"
	LayerAdaptation Layer = "adaptation"
)

// FaultLayer maps a fault to the layer it attacks, the way
// core.TriggerClass maps triggers to parameter classes.
func FaultLayer(f Fault) Layer {
	switch f {
	case FaultPartition, FaultPartitionOneWay, FaultGrayLink, FaultCorruption, FaultGarbage:
		return LayerTransport
	case FaultClockSkew:
		return LayerDetector
	case FaultStoreSlow, FaultStoreFull:
		return LayerStore
	case FaultCrash, FaultRestart:
		return LayerHost
	case FaultChurnTransition:
		return LayerAdaptation
	default:
		return ""
	}
}

// Scenario is one adversarial program.
type Scenario struct {
	// Name identifies the scenario in reports and metrics.
	Name string `json:"name"`
	// Description says what the scenario attacks and what should hold.
	Description string `json:"description"`
	// FTM is the mechanism the system boots with (default core.PBR).
	FTM core.ID `json:"ftm,omitempty"`
	// Script is the DSL program (see dsl.go for the grammar).
	Script string `json:"script"`
}

// Options tunes a scenario run.
type Options struct {
	// Seed drives every random choice of the run (default 1).
	Seed int64
	// Clients is the number of concurrent workload writers (default 3);
	// one extra always-traced client rides along for the continuity
	// audit.
	Clients int
	// CallTimeout bounds each workload call attempt (default 200ms —
	// short, so chaos windows produce ambiguous outcomes instead of
	// stalling the load).
	CallTimeout time.Duration
	// MaxRounds bounds workload failover rounds per invoke (default 2).
	MaxRounds int
	// SettleTimeout bounds each settle/wait-master step (default 5s).
	SettleTimeout time.Duration
	// EventHook, when set, receives replica life-cycle events as the
	// scenario unfolds — diagnostics only, never part of the verdict.
	EventHook func(host, event string)
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clients <= 0 {
		o.Clients = 3
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 200 * time.Millisecond
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 2
	}
	if o.SettleTimeout <= 0 {
		o.SettleTimeout = 5 * time.Second
	}
	return o
}

// Violation is one invariant breach found by the post-scenario audit.
type Violation struct {
	// Invariant names the broken contract: "reply-release",
	// "acked-stability", "exactly-once", "trace-continuity",
	// "sweep-delivery", "envelope", "settle".
	Invariant string `json:"invariant"`
	// Detail is the evidence.
	Detail string `json:"detail"`
}

// Verdict is the outcome of one scenario run.
type Verdict struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Pass     bool   `json:"pass"`
	// Violations lists every invariant breach (empty when Pass).
	Violations []Violation `json:"violations,omitempty"`
	// Schedule is the ordered log of resolved adversarial actions — two
	// runs with the same seed must produce identical schedules.
	Schedule []string `json:"schedule"`
	// Attempts/Acked/Failed count the workload: every attempt is swept
	// for the exactly-once audit whether or not it was acknowledged.
	Attempts int `json:"attempts"`
	Acked    int `json:"acked"`
	Failed   int `json:"failed"`
	// FinalValue is the chaos register's value after the sweep.
	FinalValue int64 `json:"final_value"`
	// Elapsed is wall-clock run time (excluded from determinism
	// comparisons).
	Elapsed time.Duration `json:"elapsed_ns"`
	// Boxes holds the black boxes dumped for this run's violations.
	Boxes []telemetry.BlackBox `json:"-"`
}
