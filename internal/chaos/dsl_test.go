package chaos

import (
	"strings"
	"testing"
	"time"

	"resilientft/internal/core"
)

func TestParseFullGrammar(t *testing.T) {
	script := `
# a comment line
partition alpha beta
partition alpha -> beta
partition beta->alpha
heal alpha beta
heal alpha -> beta
heal-all
link alpha -> beta latency=30ms jitter=10ms loss=0.25 callloss=0.1
link beta -> alpha corrupt=0.5
clear-links
skew beta 5s
store-slow alpha 20ms
store-full alpha on
store-full alpha off
garbage master 8
crash slave
restart beta
transition lfr async
await-transition
load 12 async
await-load
sleep 50ms
wait-master 2s
settle
`
	steps, err := Parse(script)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 23 {
		t.Fatalf("parsed %d steps, want 23", len(steps))
	}

	if s := steps[0]; s.Fault != FaultPartition || s.OneWay || s.A != "alpha" || s.B != "beta" {
		t.Fatalf("symmetric partition parsed as %+v", s)
	}
	if s := steps[1]; s.Fault != FaultPartitionOneWay || !s.OneWay {
		t.Fatalf("spaced one-way partition parsed as %+v", s)
	}
	if s := steps[2]; s.Fault != FaultPartitionOneWay || s.A != "beta" || s.B != "alpha" {
		t.Fatalf("compact one-way partition parsed as %+v", s)
	}
	if s := steps[6]; s.Fault != FaultGrayLink || s.Link.ExtraLatency != 30*time.Millisecond ||
		s.Link.Jitter != 10*time.Millisecond || s.Link.Loss != 0.25 || s.Link.DropCalls != 0.1 {
		t.Fatalf("gray link parsed as %+v", s)
	}
	if s := steps[7]; s.Fault != FaultCorruption || s.Link.Corrupt != 0.5 {
		t.Fatalf("corrupt link parsed as %+v", s)
	}
	if s := steps[9]; s.Fault != FaultClockSkew || s.A != "beta" || s.Dur != 5*time.Second {
		t.Fatalf("skew parsed as %+v", s)
	}
	if s := steps[11]; s.Fault != FaultStoreFull || !s.On {
		t.Fatalf("store-full on parsed as %+v", s)
	}
	if s := steps[13]; s.Fault != FaultGarbage || s.A != "master" || s.N != 8 {
		t.Fatalf("garbage parsed as %+v", s)
	}
	if s := steps[16]; s.Fault != FaultChurnTransition || s.To != core.LFR || !s.Async {
		t.Fatalf("transition parsed as %+v", s)
	}
	if s := steps[18]; s.N != 12 || !s.Async {
		t.Fatalf("load parsed as %+v", s)
	}
	if s := steps[21]; s.Verb != "wait-master" || s.Dur != 2*time.Second {
		t.Fatalf("wait-master parsed as %+v", s)
	}
}

func TestParseRejectsMalformedScripts(t *testing.T) {
	cases := map[string]string{
		"unknown verb":            "explode alpha",
		"partition arity":         "partition alpha",
		"link without direction":  "link alpha beta loss=0.5",
		"link without faults":     "link alpha -> beta",
		"link bad probability":    "link alpha -> beta loss=1.5",
		"link unknown fault":      "link alpha -> beta heat=0.5",
		"store-full bad flag":     "store-full alpha maybe",
		"garbage bad count":       "garbage alpha -3",
		"transition unknown ftm":  "transition warp",
		"transition unknown flag": "transition lfr eventually",
		"load zero":               "load 0",
		"bad duration":            "sleep fast",
		"empty script":            "# only a comment",
	}
	for name, script := range cases {
		if _, err := Parse(script); err == nil {
			t.Errorf("%s: Parse(%q) accepted", name, script)
		} else if !strings.Contains(err.Error(), "chaos:") {
			t.Errorf("%s: error %q lacks chaos: prefix", name, err)
		}
	}
}

func TestBuiltinScenariosParse(t *testing.T) {
	builtins := Builtins()
	if len(builtins) < 6 {
		t.Fatalf("only %d builtin scenarios, want >= 6", len(builtins))
	}
	names := map[string]bool{}
	for _, s := range builtins {
		if names[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		names[s.Name] = true
		if _, err := Parse(s.Script); err != nil {
			t.Errorf("builtin %q does not parse: %v", s.Name, err)
		}
		if s.Description == "" {
			t.Errorf("builtin %q has no description", s.Name)
		}
	}
	for _, want := range []string{"asymmetric-partition", "gray-peer", "clock-skew", "store-degraded", "corrupt-wire", "churn-mid-transition"} {
		if !names[want] {
			t.Errorf("builtin scenario %q missing", want)
		}
	}
	if _, ok := FindScenario("gray-peer"); !ok {
		t.Error("FindScenario failed to find gray-peer")
	}
	if _, ok := FindScenario("nope"); ok {
		t.Error("FindScenario invented a scenario")
	}
}
