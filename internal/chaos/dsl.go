package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/transport"
)

// The scenario DSL is line-based: one statement per line, `#` starts a
// comment, blank lines are ignored. Host operands are host names
// ("alpha", "beta") or the dynamic selectors "master", "slave" and
// "any" (resolved at execution time; "any" draws from the seeded
// scheduler). Durations use Go syntax (150ms, 2s).
//
//	partition a b          cut the a<->b link both ways
//	partition a -> b       cut only the a->b direction
//	heal a b               restore a<->b
//	heal a -> b            restore only a->b
//	heal-all               remove every partition
//	link a -> b k=v ...    install a gray-failure profile on a->b:
//	                       latency=40ms jitter=10ms loss=0.2
//	                       callloss=0.1 corrupt=0.3
//	clear-links            remove every link fault
//	skew h 2s              shift h's failure-detection clock (0 clears)
//	store-slow h 20ms      impose latency on h's stable store (0 clears)
//	store-full h on|off    make h's stable store reject commits
//	garbage h n            throw n malformed/boundary frames at h
//	crash h                fail-stop h
//	restart h              restart a crashed h (rejoin as slave)
//	transition ftm [async] run the differential transition to ftm
//	await-transition       join the pending async transition
//	load n [async]         issue n workload writes across the clients
//	await-load             join the pending async load
//	sleep d                let the fault cook for d
//	wait-master [d]        wait until a live master answers
//	settle                 heal everything, restart the dead, wait-master
type Step struct {
	// Line is the 1-based script line (diagnostics).
	Line int
	// Verb is the statement keyword.
	Verb string
	// Fault classifies the adversarial verbs ("" for control verbs).
	Fault Fault

	// A and B are host/selector operands (A alone for single-host
	// verbs).
	A, B string
	// OneWay marks a directional partition/heal.
	OneWay bool
	// Dur is the duration operand (sleep, skew, store-slow,
	// wait-master).
	Dur time.Duration
	// N is the count operand (load, garbage).
	N int
	// To is the transition target FTM.
	To core.ID
	// Async marks a non-blocking load/transition.
	Async bool
	// On is the boolean operand (store-full).
	On bool
	// Link is the gray profile operand (link).
	Link transport.LinkFault
}

// Parse compiles a scenario script into steps.
func Parse(script string) ([]Step, error) {
	var steps []Step
	for i, raw := range strings.Split(script, "\n") {
		line := raw
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		st, err := parseStep(fields)
		if err != nil {
			return nil, fmt.Errorf("chaos: line %d: %w", i+1, err)
		}
		st.Line = i + 1
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("chaos: empty script")
	}
	return steps, nil
}

// parseEnds reads the "a b" / "a -> b" / "a->b" operand forms.
func parseEnds(args []string) (a, b string, oneWay bool, err error) {
	joined := strings.Join(args, " ")
	if strings.Contains(joined, "->") {
		parts := strings.SplitN(joined, "->", 2)
		a = strings.TrimSpace(parts[0])
		b = strings.TrimSpace(parts[1])
		if a == "" || b == "" {
			return "", "", false, fmt.Errorf("malformed link %q", joined)
		}
		return a, b, true, nil
	}
	if len(args) != 2 {
		return "", "", false, fmt.Errorf("want two hosts or a -> b, got %q", joined)
	}
	return args[0], args[1], false, nil
}

func parseStep(fields []string) (Step, error) {
	verb, args := fields[0], fields[1:]
	st := Step{Verb: verb}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s wants %d operand(s), got %d", verb, n, len(args))
		}
		return nil
	}
	switch verb {
	case "partition", "heal":
		a, b, oneWay, err := parseEnds(args)
		if err != nil {
			return st, err
		}
		st.A, st.B, st.OneWay = a, b, oneWay
		if verb == "partition" {
			st.Fault = FaultPartition
			if oneWay {
				st.Fault = FaultPartitionOneWay
			}
		}
	case "heal-all", "clear-links", "await-transition", "await-load", "settle":
		if err := need(0); err != nil {
			return st, err
		}
	case "link":
		// First operands up to the ones containing '=' form the a->b
		// part.
		var ends, kvs []string
		for _, a := range args {
			if strings.Contains(a, "=") {
				kvs = append(kvs, a)
			} else {
				ends = append(ends, a)
			}
		}
		a, b, oneWay, err := parseEnds(ends)
		if err != nil {
			return st, err
		}
		if !oneWay {
			return st, fmt.Errorf("link wants a -> b (directional)")
		}
		if len(kvs) == 0 {
			return st, fmt.Errorf("link wants at least one k=v fault")
		}
		st.A, st.B, st.OneWay, st.Fault = a, b, true, FaultGrayLink
		for _, kv := range kvs {
			parts := strings.SplitN(kv, "=", 2)
			k, v := parts[0], parts[1]
			switch k {
			case "latency", "jitter":
				d, err := time.ParseDuration(v)
				if err != nil {
					return st, fmt.Errorf("link %s: %w", k, err)
				}
				if k == "latency" {
					st.Link.ExtraLatency = d
				} else {
					st.Link.Jitter = d
				}
			case "loss", "callloss", "corrupt":
				f, err := strconv.ParseFloat(v, 64)
				if err != nil || f < 0 || f > 1 {
					return st, fmt.Errorf("link %s: want probability 0..1, got %q", k, v)
				}
				switch k {
				case "loss":
					st.Link.Loss = f
				case "callloss":
					st.Link.DropCalls = f
				case "corrupt":
					st.Link.Corrupt = f
					st.Fault = FaultCorruption
				}
			default:
				return st, fmt.Errorf("link: unknown fault %q", k)
			}
		}
	case "skew", "store-slow":
		if err := need(2); err != nil {
			return st, err
		}
		d, err := time.ParseDuration(args[1])
		if err != nil {
			return st, fmt.Errorf("%s: %w", verb, err)
		}
		st.A, st.Dur = args[0], d
		st.Fault = FaultClockSkew
		if verb == "store-slow" {
			st.Fault = FaultStoreSlow
		}
	case "store-full":
		if err := need(2); err != nil {
			return st, err
		}
		switch args[1] {
		case "on":
			st.On = true
		case "off":
			st.On = false
		default:
			return st, fmt.Errorf("store-full wants on|off, got %q", args[1])
		}
		st.A, st.Fault = args[0], FaultStoreFull
	case "garbage":
		if err := need(2); err != nil {
			return st, err
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n <= 0 {
			return st, fmt.Errorf("garbage wants a positive count, got %q", args[1])
		}
		st.A, st.N, st.Fault = args[0], n, FaultGarbage
	case "crash", "restart":
		if err := need(1); err != nil {
			return st, err
		}
		st.A = args[0]
		st.Fault = FaultCrash
		if verb == "restart" {
			st.Fault = FaultRestart
		}
	case "transition":
		if len(args) < 1 || len(args) > 2 {
			return st, fmt.Errorf("transition wants an FTM id [async]")
		}
		id := core.ID(args[0])
		if _, err := core.Lookup(id); err != nil {
			return st, fmt.Errorf("transition: %w", err)
		}
		st.To, st.Fault = id, FaultChurnTransition
		if len(args) == 2 {
			if args[1] != "async" {
				return st, fmt.Errorf("transition: unknown flag %q", args[1])
			}
			st.Async = true
		}
	case "load":
		if len(args) < 1 || len(args) > 2 {
			return st, fmt.Errorf("load wants a count [async]")
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n <= 0 {
			return st, fmt.Errorf("load wants a positive count, got %q", args[0])
		}
		st.N = n
		if len(args) == 2 {
			if args[1] != "async" {
				return st, fmt.Errorf("load: unknown flag %q", args[1])
			}
			st.Async = true
		}
	case "sleep":
		if err := need(1); err != nil {
			return st, err
		}
		d, err := time.ParseDuration(args[0])
		if err != nil {
			return st, fmt.Errorf("sleep: %w", err)
		}
		st.Dur = d
	case "wait-master":
		if len(args) > 1 {
			return st, fmt.Errorf("wait-master wants at most a timeout")
		}
		if len(args) == 1 {
			d, err := time.ParseDuration(args[0])
			if err != nil {
				return st, fmt.Errorf("wait-master: %w", err)
			}
			st.Dur = d
		}
	default:
		return st, fmt.Errorf("unknown verb %q", verb)
	}
	return st, nil
}
