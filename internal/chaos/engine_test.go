package chaos

import (
	"context"
	"fmt"
	"testing"
)

// runScenario is the test harness around Run with failure diagnostics.
func runScenario(t *testing.T, name string, seed int64) *Verdict {
	t.Helper()
	scn, ok := FindScenario(name)
	if !ok {
		t.Fatalf("no builtin scenario %q", name)
	}
	v, err := Run(context.Background(), scn, Options{Seed: seed})
	if err != nil {
		t.Fatalf("%s seed %d: %v", name, seed, err)
	}
	if !v.Pass {
		for _, viol := range v.Violations {
			t.Errorf("%s seed %d: [%s] %s", name, seed, viol.Invariant, viol.Detail)
		}
		t.Fatalf("%s seed %d failed with %d violations", name, seed, len(v.Violations))
	}
	return v
}

// TestScenarioSmoke drives the base asymmetric-partition scenario once
// and sanity-checks the verdict's bookkeeping.
func TestScenarioSmoke(t *testing.T) {
	v := runScenario(t, "asymmetric-partition", 1)
	if v.Attempts != 20 {
		t.Fatalf("attempts = %d, want 20 (6+10+4 loads)", v.Attempts)
	}
	if v.FinalValue != int64(v.Attempts) {
		t.Fatalf("final value %d != attempts %d", v.FinalValue, v.Attempts)
	}
	if len(v.Schedule) == 0 {
		t.Fatal("empty schedule")
	}
	if v.Acked+v.Failed != v.Attempts {
		t.Fatalf("acked %d + failed %d != attempts %d", v.Acked, v.Failed, v.Attempts)
	}
}

// TestScenarioDeterminism is the replay contract: the same scenario
// under the same seed must produce an identical schedule and verdict,
// no matter how the wall clock felt about it.
func TestScenarioDeterminism(t *testing.T) {
	scn, _ := FindScenario("asymmetric-partition")
	var schedules []string
	var passes []bool
	var violations []int
	for i := 0; i < 2; i++ {
		v, err := Run(context.Background(), scn, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		schedules = append(schedules, fmt.Sprintf("%v", v.Schedule))
		passes = append(passes, v.Pass)
		violations = append(violations, len(v.Violations))
	}
	if schedules[0] != schedules[1] {
		t.Fatalf("same seed produced different schedules:\n run1: %s\n run2: %s", schedules[0], schedules[1])
	}
	if passes[0] != passes[1] || violations[0] != violations[1] {
		t.Fatalf("same seed produced different verdicts: pass %v/%v, violations %d/%d",
			passes[0], passes[1], violations[0], violations[1])
	}
}
