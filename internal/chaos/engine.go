package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"resilientft/internal/adaptation"
	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
	"resilientft/internal/stablestore"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// opAdd is the workload operation: every write adds 1 to one register,
// so after the redelivery sweep the register's value must equal the
// attempt count and the per-attempt replies must enumerate 1..N — the
// whole exactly-once audit reduces to arithmetic.
const (
	opAdd   = "add:chaos"
	opProbe = "get:chaos"
)

// runCounter disambiguates client identities across runs in one
// process: trace IDs derive from (client ID, seq), so reusing a client
// ID across scenario runs would splice unrelated traces together.
var runCounter atomic.Uint64

// attempt is one workload write, tracked whether or not it was
// acknowledged — the sweep redelivers every one of them.
type attempt struct {
	client *rpc.Client
	seq    uint64
	traced bool
	acked  bool
	value  int64
}

// runner holds the live machinery of one scenario run.
type runner struct {
	opts  Options
	scn   Scenario
	steps []Step

	// rng is the scheduler's own stream, independent of the network's
	// seeded stream so fault timing draws don't perturb delivery draws.
	rng     *rand.Rand
	net     *transport.MemNetwork
	sys     *ftm.System
	eng     *adaptation.Engine
	stores  map[string]*stablestore.FaultStore
	hostIdx map[string]int
	crashed map[int]bool

	clients   []*rpc.Client
	clientSeq []uint64
	tracerIdx int
	probe     *rpc.Client
	rogue     transport.Endpoint
	oversize  []byte

	loadWG  sync.WaitGroup
	transWG sync.WaitGroup

	mu       sync.Mutex
	attempts []attempt

	v *Verdict
}

// Run executes one scenario under one seed and audits the system
// afterwards. The returned Verdict is complete even when invariants
// fail; the error covers only malformed scenarios and broken harness
// setup.
func Run(ctx context.Context, scn Scenario, opts Options) (*Verdict, error) {
	opts = opts.withDefaults()
	steps, err := Parse(scn.Script)
	if err != nil {
		return nil, err
	}
	ftmID := scn.FTM
	if ftmID == "" {
		ftmID = core.PBR
	}

	r := &runner{
		opts:    opts,
		scn:     scn,
		steps:   steps,
		rng:     rand.New(rand.NewSource(opts.Seed*2654435761 + 1)),
		stores:  map[string]*stablestore.FaultStore{},
		hostIdx: map[string]int{},
		crashed: map[int]bool{},
		v:       &Verdict{Scenario: scn.Name, Seed: opts.Seed},
	}
	r.net = transport.NewMemNetwork(transport.WithSeed(opts.Seed))
	var storeMu sync.Mutex
	sys, err := ftm.NewSystem(ctx, ftm.SystemConfig{
		System:            "chaos",
		FTM:               ftmID,
		Net:               r.net,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
		EventHook:         opts.EventHook,
		StoreFactory: func(hostName string) stablestore.Store {
			fs := stablestore.NewFaultStore(stablestore.NewMemStore())
			storeMu.Lock()
			r.stores[hostName] = fs
			storeMu.Unlock()
			return fs
		},
	})
	if err != nil {
		return nil, err
	}
	r.sys = sys
	defer sys.Shutdown()
	for i, h := range sys.Hosts() {
		r.hostIdx[h.Name()] = i
	}
	r.eng = adaptation.NewEngine(nil)

	runID := runCounter.Add(1)
	if err := r.buildClients(runID); err != nil {
		return nil, err
	}

	start := time.Now()
	for _, st := range r.steps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r.execute(ctx, st)
	}
	// The audit only means something against a healed, serviceable
	// system: quiesce unconditionally even if the script already did.
	r.settle(ctx)
	r.awaitAsync()
	r.audit(ctx)
	r.v.Elapsed = time.Since(start)

	r.v.Pass = len(r.v.Violations) == 0
	if r.v.Pass {
		mScenarioPass.Inc()
	} else {
		mScenarioFail.Inc()
	}
	return r.v, nil
}

func (r *runner) buildClients(runID uint64) error {
	addrs := r.sys.Addresses()
	n := r.opts.Clients + 1 // last one is the always-traced client
	r.tracerIdx = n - 1
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("chaos-r%d-c%d", runID, i)
		ep, err := r.net.Endpoint(transport.Address(id))
		if err != nil {
			return err
		}
		copts := []rpc.ClientOption{
			rpc.WithCallTimeout(r.opts.CallTimeout),
			rpc.WithMaxRounds(r.opts.MaxRounds),
		}
		if i == r.tracerIdx {
			copts = append(copts, rpc.WithAlwaysTrace())
		}
		r.clients = append(r.clients, rpc.NewClient(id, ep, addrs, copts...))
		r.clientSeq = append(r.clientSeq, 0)
	}
	probeID := fmt.Sprintf("chaos-r%d-probe", runID)
	pep, err := r.net.Endpoint(transport.Address(probeID))
	if err != nil {
		return err
	}
	r.probe = rpc.NewClient(probeID, pep, addrs,
		rpc.WithCallTimeout(time.Second), rpc.WithMaxRounds(3))
	r.rogue, err = r.net.Endpoint(transport.Address(fmt.Sprintf("chaos-r%d-rogue", runID)))
	return err
}

// record appends one resolved action to the deterministic schedule.
// Only the sequential step loop calls it, so ordering is the script
// order with selectors resolved — never async outcomes, which are
// timing-dependent.
func (r *runner) record(format string, args ...any) {
	r.v.Schedule = append(r.v.Schedule, fmt.Sprintf(format, args...))
}

func (r *runner) violate(invariant, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	r.mu.Lock()
	r.v.Violations = append(r.v.Violations, Violation{Invariant: invariant, Detail: detail})
	r.mu.Unlock()
	violationMetric(invariant).Inc()
	box := telemetry.DumpBlackBox("chaos-violation",
		"scenario", r.scn.Name,
		"seed", fmt.Sprintf("%d", r.opts.Seed),
		"invariant", invariant,
		"detail", detail)
	r.v.Boxes = append(r.v.Boxes, box)
}

// resolveHost turns a host operand — a literal name or a master/slave/
// any selector — into (name, host index).
func (r *runner) resolveHost(sel string) (string, int, error) {
	switch sel {
	case "master", "slave":
		deadline := time.Now().Add(r.opts.SettleTimeout)
		for {
			var rep *ftm.Replica
			if sel == "master" {
				rep = r.sys.Master()
			} else {
				rep = r.sys.Slave()
			}
			if rep != nil {
				name := rep.Host().Name()
				return name, r.hostIdx[name], nil
			}
			if time.Now().After(deadline) {
				return "", 0, fmt.Errorf("no live %s to resolve", sel)
			}
			time.Sleep(2 * time.Millisecond)
		}
	case "any":
		hosts := r.sys.Hosts()
		h := hosts[r.rng.Intn(len(hosts))]
		return h.Name(), r.hostIdx[h.Name()], nil
	default:
		idx, ok := r.hostIdx[sel]
		if !ok {
			return "", 0, fmt.Errorf("unknown host %q", sel)
		}
		return sel, idx, nil
	}
}

func (r *runner) addr(idx int) transport.Address {
	return r.sys.Hosts()[idx].Addr()
}

// replicaAt returns the live replica currently deployed on host idx, or
// nil when that host is down.
func (r *runner) replicaAt(idx int) *ftm.Replica {
	for _, rep := range r.sys.Replicas() {
		if rep != nil && !rep.Host().Crashed() && rep.Host() == r.sys.Hosts()[idx] {
			return rep
		}
	}
	return nil
}

func (r *runner) execute(ctx context.Context, st Step) {
	stepMetric(st.Verb).Inc()
	if st.Fault != "" {
		faultMetric(st.Fault).Inc()
	}
	switch st.Verb {
	case "partition", "heal":
		a, ai, errA := r.resolveHost(st.A)
		b, bi, errB := r.resolveHost(st.B)
		if errA != nil || errB != nil {
			r.record("%s %s %s (unresolved)", st.Verb, st.A, st.B)
			return
		}
		arrow := " "
		if st.OneWay {
			arrow = " -> "
		}
		r.record("%s %s%s%s", st.Verb, a, arrow, b)
		switch {
		case st.Verb == "partition" && st.OneWay:
			r.net.PartitionOneWay(r.addr(ai), r.addr(bi))
		case st.Verb == "partition":
			r.net.Partition(r.addr(ai), r.addr(bi))
		case st.OneWay:
			r.net.HealOneWay(r.addr(ai), r.addr(bi))
		default:
			r.net.Heal(r.addr(ai), r.addr(bi))
		}
	case "heal-all":
		r.record("heal-all")
		r.net.HealAll()
	case "link":
		a, ai, errA := r.resolveHost(st.A)
		b, bi, errB := r.resolveHost(st.B)
		if errA != nil || errB != nil {
			r.record("link %s -> %s (unresolved)", st.A, st.B)
			return
		}
		r.record("link %s -> %s latency=%v jitter=%v loss=%g callloss=%g corrupt=%g",
			a, b, st.Link.ExtraLatency, st.Link.Jitter, st.Link.Loss, st.Link.DropCalls, st.Link.Corrupt)
		r.net.SetLinkFault(r.addr(ai), r.addr(bi), st.Link)
	case "clear-links":
		r.record("clear-links")
		r.net.ClearLinkFaults()
	case "skew":
		name, idx, err := r.resolveHost(st.A)
		if err != nil {
			r.record("skew %s (unresolved)", st.A)
			return
		}
		r.record("skew %s %v", name, st.Dur)
		if rep := r.replicaAt(idx); rep != nil {
			_ = rep.SetClockSkew(st.Dur)
		}
	case "store-slow":
		name, _, err := r.resolveHost(st.A)
		if err != nil {
			r.record("store-slow %s (unresolved)", st.A)
			return
		}
		r.record("store-slow %s %v", name, st.Dur)
		r.stores[name].SetDelay(st.Dur)
	case "store-full":
		name, _, err := r.resolveHost(st.A)
		if err != nil {
			r.record("store-full %s (unresolved)", st.A)
			return
		}
		r.record("store-full %s %v", name, st.On)
		r.stores[name].SetFull(st.On)
	case "garbage":
		name, idx, err := r.resolveHost(st.A)
		if err != nil {
			r.record("garbage %s (unresolved)", st.A)
			return
		}
		r.record("garbage %s %d", name, st.N)
		r.throwGarbage(ctx, idx, st.N)
	case "crash":
		name, idx, err := r.resolveHost(st.A)
		if err != nil {
			r.record("crash %s (unresolved)", st.A)
			return
		}
		if r.sys.Hosts()[idx].Crashed() {
			r.record("crash %s (already down)", name)
			return
		}
		if st.A == "master" || st.A == "slave" || st.A == "any" {
			r.record("crash %s(%s)", st.A, name)
		} else {
			r.record("crash %s", name)
		}
		r.sys.Hosts()[idx].Crash()
		r.crashed[idx] = true
	case "restart":
		name, idx, err := r.resolveHost(st.A)
		if err != nil {
			r.record("restart %s (unresolved)", st.A)
			return
		}
		r.record("restart %s", name)
		r.restartHost(ctx, idx)
	case "transition":
		if st.Async {
			r.record("transition %s async", st.To)
			r.transWG.Add(1)
			go func() {
				defer r.transWG.Done()
				_, _ = r.eng.TransitionSystem(ctx, r.sys, st.To)
			}()
			return
		}
		r.record("transition %s", st.To)
		_, _ = r.eng.TransitionSystem(ctx, r.sys, st.To)
	case "await-transition":
		r.record("await-transition")
		r.transWG.Wait()
	case "load":
		if st.Async {
			r.record("load %d async", st.N)
			r.loadWG.Add(1)
			go func() {
				defer r.loadWG.Done()
				r.load(ctx, st.N)
			}()
			return
		}
		r.record("load %d", st.N)
		r.load(ctx, st.N)
	case "await-load":
		r.record("await-load")
		r.loadWG.Wait()
	case "sleep":
		r.record("sleep %v", st.Dur)
		time.Sleep(st.Dur)
	case "wait-master":
		r.record("wait-master")
		d := st.Dur
		if d <= 0 {
			d = r.opts.SettleTimeout
		}
		if !r.waitMaster(d) {
			r.violate("settle", "no master within %v after wait-master (line %d)", d, st.Line)
		}
	case "settle":
		r.record("settle")
		r.settle(ctx)
	}
}

// load issues n workload writes round-robin across the clients. Every
// attempt is recorded before its invoke: ambiguous outcomes (lost
// replies, timeouts) still get swept.
func (r *runner) load(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		r.mu.Lock()
		ci := 0
		min := r.clientSeq[0]
		for j, s := range r.clientSeq {
			if s < min {
				ci, min = j, s
			}
		}
		r.clientSeq[ci]++
		seq := r.clientSeq[ci]
		ai := len(r.attempts)
		r.attempts = append(r.attempts, attempt{
			client: r.clients[ci],
			seq:    seq,
			traced: ci == r.tracerIdx,
		})
		r.mu.Unlock()

		// Redeliver, not Invoke: the sequence number is reserved above so
		// the sweep can re-send the identical request; concurrent async
		// loads sharing a client would otherwise desynchronise the
		// client's internal counter from the recorded attempts.
		resp, err := r.clients[ci].Redeliver(ctx, seq, opAdd, ftm.EncodeArg(1))
		if err == nil {
			if v, derr := ftm.DecodeResult(resp.Payload); derr == nil {
				r.mu.Lock()
				r.attempts[ai].acked = true
				r.attempts[ai].value = v
				r.mu.Unlock()
				mRequestsAcked.Inc()
				continue
			}
		}
		mRequestsFailed.Inc()
	}
}

// throwGarbage fires n malformed frames at host idx — random junk on
// the RPC and replica kinds, alternating one-way sends with calls so
// both server decode paths chew on it — plus one over-limit envelope
// that the transport must reject at the sender.
func (r *runner) throwGarbage(ctx context.Context, idx int, n int) {
	target := r.addr(idx)
	kinds := []string{rpc.KindRequest, ftm.KindReplica}
	for i := 0; i < n; i++ {
		buf := make([]byte, 8+r.rng.Intn(56))
		r.rng.Read(buf)
		kind := kinds[i%len(kinds)]
		if i%2 == 0 {
			_ = r.rogue.Send(ctx, target, kind, buf)
		} else {
			cctx, cancel := context.WithTimeout(ctx, r.opts.CallTimeout)
			_, _ = r.rogue.Call(cctx, target, kind, buf)
			cancel()
		}
	}
	if r.oversize == nil {
		r.oversize = make([]byte, transport.MaxEnvelope+1)
	}
	if err := r.rogue.Send(ctx, target, rpc.KindRequest, r.oversize); !errors.Is(err, transport.ErrTooLarge) {
		r.violate("envelope", "oversize frame (%d bytes) not rejected: %v", len(r.oversize), err)
	}
}

func (r *runner) waitMaster(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if r.sys.Master() != nil {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// restartHost brings a crashed host back, retrying while the rejoin
// races whatever else the scenario still has broken.
func (r *runner) restartHost(ctx context.Context, idx int) {
	if !r.sys.Hosts()[idx].Crashed() {
		return
	}
	deadline := time.Now().Add(r.opts.SettleTimeout)
	for {
		if _, err := r.sys.RestartReplica(ctx, idx); err == nil {
			delete(r.crashed, idx)
			return
		}
		if time.Now().After(deadline) {
			r.violate("settle", "host %s would not restart within %v",
				r.sys.Hosts()[idx].Name(), r.opts.SettleTimeout)
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// settle heals the world — network, clocks, stores, crashed hosts —
// then waits for a serviceable master. The audit runs only against a
// settled system; a system that cannot settle is itself a violation.
func (r *runner) settle(ctx context.Context) {
	r.net.HealAll()
	r.net.ClearLinkFaults()
	for _, fs := range r.stores {
		fs.SetDelay(0)
		fs.SetFull(false)
	}
	for _, rep := range r.sys.Replicas() {
		if rep != nil && !rep.Host().Crashed() {
			_ = rep.SetClockSkew(0)
		}
	}
	for idx := range r.crashed {
		r.restartHost(ctx, idx)
	}
	if !r.waitMaster(r.opts.SettleTimeout) {
		r.violate("settle", "no master within %v after healing everything", r.opts.SettleTimeout)
		return
	}
	// A master exists; prove it answers. The probe retries because the
	// first requests after a failover can race the promotion.
	deadline := time.Now().Add(r.opts.SettleTimeout)
	for {
		pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		_, err := r.probe.Invoke(pctx, opProbe, ftm.EncodeArg(0))
		cancel()
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			r.violate("settle", "settled system does not answer probes: %v", err)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// awaitAsync joins any async load/transition still running after the
// script ended (scripts should await explicitly; this is the backstop).
func (r *runner) awaitAsync() {
	r.loadWG.Wait()
	r.transWG.Wait()
}
