package chaos

import (
	"context"
	"fmt"
	"time"

	"resilientft/internal/telemetry"
)

// CampaignConfig is a scenario x seed matrix.
type CampaignConfig struct {
	// Scenarios to run (Builtins() when empty).
	Scenarios []Scenario
	// Seeds to run each scenario under (default {1, 2}).
	Seeds []int64
	// Options applies to every run; the seed is overridden per run.
	Options Options
}

// CampaignReport is the outcome of a full matrix.
type CampaignReport struct {
	Runs []*Verdict `json:"runs"`
	// Pass is true when every run passed.
	Pass bool `json:"pass"`
	// Violations counts breaches across all runs.
	Violations int `json:"violations"`
	// Elapsed is the wall-clock cost of the whole matrix.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Boxes returns every black box captured across the campaign's runs —
// the failure artifact CI uploads.
func (r *CampaignReport) Boxes() []telemetry.BlackBox {
	var out []telemetry.BlackBox
	for _, v := range r.Runs {
		out = append(out, v.Boxes...)
	}
	return out
}

// RunCampaign executes the matrix sequentially — the runs share the
// process-global telemetry and each one owns its timing, so parallel
// runs would perturb each other's failure detectors.
func RunCampaign(ctx context.Context, cfg CampaignConfig) (*CampaignReport, error) {
	scenarios := cfg.Scenarios
	if len(scenarios) == 0 {
		scenarios = Builtins()
	}
	seeds := cfg.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1, 2}
	}
	report := &CampaignReport{Pass: true}
	start := time.Now()
	for _, scn := range scenarios {
		for _, seed := range seeds {
			opts := cfg.Options
			opts.Seed = seed
			v, err := Run(ctx, scn, opts)
			if err != nil {
				return report, fmt.Errorf("chaos: %s seed %d: %w", scn.Name, seed, err)
			}
			report.Runs = append(report.Runs, v)
			report.Violations += len(v.Violations)
			if !v.Pass {
				report.Pass = false
			}
		}
	}
	report.Elapsed = time.Since(start)
	return report, nil
}
