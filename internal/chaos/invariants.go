package chaos

import (
	"context"
	"sort"
	"time"

	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
	"resilientft/internal/telemetry"
)

// audit is the post-scenario truth procedure. It runs against the
// settled system and checks, in order:
//
//  1. sweep-delivery — every recorded attempt, acknowledged or not, can
//     be redelivered to the healed system;
//  2. reply-release — an acknowledged write replays from the reply log
//     (Replayed=true): the ack implied a covering ship, so no failover
//     may have forgotten it, and it must never re-execute;
//  3. acked-stability — the replayed reply carries the same value the
//     client originally saw;
//  4. exactly-once — after the sweep the register equals the attempt
//     count, and the per-attempt replies enumerate {1..N} exactly: each
//     attempt executed once, no more, no less;
//  5. trace-continuity — a traced attempt's redelivery joined the
//     original request's trace (same deterministic trace ID) and the
//     trace shows the client call, the execution and the replay.
func (r *runner) audit(ctx context.Context) {
	r.mu.Lock()
	attempts := append([]attempt(nil), r.attempts...)
	r.mu.Unlock()
	r.v.Attempts = len(attempts)
	for _, a := range attempts {
		if a.acked {
			r.v.Acked++
		} else {
			r.v.Failed++
		}
	}

	values := make([]int64, 0, len(attempts))
	for i, a := range attempts {
		resp, err := r.sweepOne(ctx, a)
		if err != nil {
			inv := "sweep-delivery"
			if a.acked {
				// Losing an acknowledged write outright is a reply-release
				// breach, not a delivery hiccup.
				inv = "reply-release"
			}
			r.violate(inv, "attempt %d (%s seq %d, acked=%v) unredeliverable: %v",
				i, a.client.ID(), a.seq, a.acked, err)
			continue
		}
		v, derr := ftm.DecodeResult(resp.Payload)
		if derr != nil {
			r.violate("sweep-delivery", "attempt %d (%s seq %d): undecodable reply: %v",
				i, a.client.ID(), a.seq, derr)
			continue
		}
		values = append(values, v)
		if a.acked {
			if !resp.Replayed {
				r.violate("reply-release", "acked attempt %d (%s seq %d) re-executed instead of replaying (value %d, original %d)",
					i, a.client.ID(), a.seq, v, a.value)
			}
			if v != a.value {
				r.violate("acked-stability", "acked attempt %d (%s seq %d) replayed value %d, client was told %d",
					i, a.client.ID(), a.seq, v, a.value)
			}
		}
	}

	r.auditExactlyOnce(ctx, values)
	r.auditTraces(attempts)
}

// sweepOne redelivers one attempt, retrying a few times: the settled
// system is healthy, but the first calls after a promotion can race it.
func (r *runner) sweepOne(ctx context.Context, a attempt) (resp rpc.Response, err error) {
	for try := 0; try < 3; try++ {
		sctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		resp, err = a.client.Redeliver(sctx, a.seq, opAdd, ftm.EncodeArg(1))
		cancel()
		if err == nil {
			return resp, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return resp, err
}

// auditExactlyOnce checks that the register's final value equals the
// attempt count and that the swept replies enumerate {1..N}: every
// attempt executed exactly once across all the chaos.
func (r *runner) auditExactlyOnce(ctx context.Context, values []int64) {
	pctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	resp, err := r.probe.Invoke(pctx, opProbe, ftm.EncodeArg(0))
	cancel()
	if err != nil {
		r.violate("exactly-once", "final probe failed: %v", err)
		return
	}
	final, err := ftm.DecodeResult(resp.Payload)
	if err != nil {
		r.violate("exactly-once", "final probe undecodable: %v", err)
		return
	}
	r.v.FinalValue = final

	n := int64(r.v.Attempts)
	if final != n {
		r.violate("exactly-once", "register is %d after sweeping %d attempts (each adds 1): %+d executions",
			final, n, final-n)
	}
	if int64(len(values)) != n {
		// Already reported per-attempt; the enumeration check below would
		// only double-report.
		return
	}
	sorted := append([]int64(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, v := range sorted {
		if v != int64(i)+1 {
			r.violate("exactly-once", "swept replies do not enumerate 1..%d: position %d holds %d (duplicate or hole means a double or lost execution)",
				n, i, v)
			return
		}
	}
}

// auditTraces verifies trace continuity on the traced client's
// acknowledged attempts: the sweep's redelivery must have landed in the
// original trace (the trace ID is a pure function of client identity
// and sequence number), which then shows at least two client calls, the
// execution and the replay.
func (r *runner) auditTraces(attempts []attempt) {
	checked := 0
	for i, a := range attempts {
		if !a.traced || !a.acked {
			continue
		}
		if checked >= 5 {
			return
		}
		checked++
		traceID := telemetry.TraceIDFor(a.client.ID(), a.seq)
		counts := map[string]int{}
		for _, sp := range telemetry.DefaultSpans().ForTrace(traceID) {
			counts[sp.Name]++
		}
		if counts["rpc.client"] < 2 || counts["ftm.execute"] < 1 || counts["ftm.replay"] < 1 {
			r.violate("trace-continuity", "attempt %d (%s seq %d) trace %016x: want >=2 rpc.client, >=1 ftm.execute, >=1 ftm.replay; got %v",
				i, a.client.ID(), a.seq, traceID, counts)
		}
	}
}
