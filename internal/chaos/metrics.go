package chaos

import "resilientft/internal/telemetry"

// Chaos campaign metrics, exported through the shared registry so a
// campaign's damage report sits next to the system metrics it stressed.
var (
	mScenarioPass = telemetry.Default().Counter("chaos_scenarios_total", "result", "pass")
	mScenarioFail = telemetry.Default().Counter("chaos_scenarios_total", "result", "fail")

	mRequestsAcked  = telemetry.Default().Counter("chaos_requests_total", "outcome", "acked")
	mRequestsFailed = telemetry.Default().Counter("chaos_requests_total", "outcome", "failed")
)

func stepMetric(verb string) *telemetry.Counter {
	return telemetry.Default().Counter("chaos_steps_total", "verb", verb)
}

func faultMetric(f Fault) *telemetry.Counter {
	return telemetry.Default().Counter("chaos_faults_injected_total", "fault", string(f), "layer", string(FaultLayer(f)))
}

func violationMetric(invariant string) *telemetry.Counter {
	return telemetry.Default().Counter("chaos_violations_total", "invariant", invariant)
}
