package chaos

import (
	"context"
	"testing"
)

// TestCampaignBuiltins runs the full scenario x seed matrix — the same
// campaign CI runs nightly — and demands a clean sweep: every invariant
// holds for every scenario under every seed.
func TestCampaignBuiltins(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = []int64{1}
	}
	report, err := RunCampaign(context.Background(), CampaignConfig{Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range report.Runs {
		t.Logf("%-40s seed %d: pass=%v attempts=%d acked=%d failed=%d elapsed=%v",
			v.Scenario, v.Seed, v.Pass, v.Attempts, v.Acked, v.Failed, v.Elapsed.Round(1e6))
		for _, viol := range v.Violations {
			t.Errorf("%s seed %d: [%s] %s", v.Scenario, v.Seed, viol.Invariant, viol.Detail)
		}
	}
	if !report.Pass {
		t.Fatalf("campaign failed: %d violations across %d runs (black boxes: %d)",
			report.Violations, len(report.Runs), len(report.Boxes()))
	}
	if want := len(Builtins()) * len(seeds); len(report.Runs) != want {
		t.Fatalf("ran %d scenarios, want %d", len(report.Runs), want)
	}
}
