package workload

import (
	"reflect"
	"strings"
	"testing"
)

func TestDeterministicStreams(t *testing.T) {
	a := New(Config{Seed: 7, Registers: 4})
	b := New(Config{Seed: 7, Registers: 4})
	sa, sb := a.Stream(100), b.Stream(100)
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("same seed produced different streams")
	}
	c := New(Config{Seed: 8, Registers: 4})
	if reflect.DeepEqual(sa, c.Stream(100)) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestModelTracksExpectations(t *testing.T) {
	g := New(Config{Seed: 3, Registers: 2, WriteRatio: 1.0})
	state := map[string]int64{}
	for _, op := range g.Stream(200) {
		parts := strings.SplitN(op.Name, ":", 2)
		verb, reg := parts[0], parts[1]
		switch verb {
		case "set":
			state[reg] = op.Arg
		case "add":
			state[reg] += op.Arg
		case "sub":
			state[reg] -= op.Arg
		}
		if state[reg] != op.Expected {
			t.Fatalf("op %q arg %d: expected %d, model says %d", op.Name, op.Arg, op.Expected, state[reg])
		}
	}
	if !reflect.DeepEqual(g.Model(), state) {
		t.Fatalf("Model() = %v, replay = %v", g.Model(), state)
	}
}

func TestReadsDoNotMutate(t *testing.T) {
	g := New(Config{Seed: 5, Registers: 3, WriteRatio: 0.0001})
	before := g.Model()
	reads := 0
	for _, op := range g.Stream(100) {
		if strings.HasPrefix(op.Name, "get:") {
			reads++
		}
	}
	if reads < 90 {
		t.Fatalf("write ratio ignored: only %d reads", reads)
	}
	_ = before
}

func TestPrefillInitializesAllRegisters(t *testing.T) {
	g := New(Config{Seed: 1, Registers: 16})
	ops := g.Prefill()
	if len(ops) != 16 {
		t.Fatalf("prefill ops = %d", len(ops))
	}
	if len(g.Model()) != 16 {
		t.Fatalf("model size = %d", len(g.Model()))
	}
	if g.Count() != 0 {
		t.Fatalf("prefill counted as generated ops: %d", g.Count())
	}
}
