// Package workload generates deterministic client workloads for the
// stress tests, benchmarks and parameter sweeps: seeded streams of
// application operations over a configurable register space, with a
// shadow model that predicts every expected result so correctness can be
// checked operation by operation.
package workload

import (
	"fmt"
	"math/rand"
)

// Op is one generated operation with its expected outcome.
type Op struct {
	// Name is the application operation ("add:r3").
	Name string
	// Arg is the operation argument.
	Arg int64
	// Expected is the result a correct system returns.
	Expected int64
}

// Config shapes a generated workload.
type Config struct {
	// Seed drives the generator.
	Seed int64
	// Registers is the size of the register space (the application state
	// footprint; the state-sweep experiment varies it).
	Registers int
	// WriteRatio is the fraction of mutating operations (0..1); the rest
	// are reads.
	WriteRatio float64
}

// Generator produces a deterministic operation stream and tracks the
// expected state.
type Generator struct {
	cfg   Config
	rng   *rand.Rand
	model map[string]int64
	count int
}

// New returns a generator.
func New(cfg Config) *Generator {
	if cfg.Registers < 1 {
		cfg.Registers = 1
	}
	if cfg.WriteRatio <= 0 {
		cfg.WriteRatio = 0.5
	}
	return &Generator{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		model: make(map[string]int64, cfg.Registers),
	}
}

// Next produces the next operation and the result a correct execution
// must return.
func (g *Generator) Next() Op {
	g.count++
	reg := fmt.Sprintf("r%d", g.rng.Intn(g.cfg.Registers))
	if g.rng.Float64() >= g.cfg.WriteRatio {
		return Op{Name: "get:" + reg, Arg: 0, Expected: g.model[reg]}
	}
	arg := int64(g.rng.Intn(1000) - 500)
	switch g.rng.Intn(3) {
	case 0:
		g.model[reg] = arg
		return Op{Name: "set:" + reg, Arg: arg, Expected: arg}
	case 1:
		g.model[reg] += arg
		return Op{Name: "add:" + reg, Arg: arg, Expected: g.model[reg]}
	default:
		g.model[reg] -= arg
		return Op{Name: "sub:" + reg, Arg: arg, Expected: g.model[reg]}
	}
}

// Stream produces the next n operations.
func (g *Generator) Stream(n int) []Op {
	out := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, g.Next())
	}
	return out
}

// Count returns how many operations were generated.
func (g *Generator) Count() int { return g.count }

// Model returns a copy of the expected register state.
func (g *Generator) Model() map[string]int64 {
	out := make(map[string]int64, len(g.model))
	for k, v := range g.model {
		out[k] = v
	}
	return out
}

// Prefill returns set operations initializing every register (the
// state-footprint knob of the sweep experiments) and folds them into the
// model.
func (g *Generator) Prefill() []Op {
	out := make([]Op, 0, g.cfg.Registers)
	for i := 0; i < g.cfg.Registers; i++ {
		reg := fmt.Sprintf("r%d", i)
		v := int64(g.rng.Intn(1000))
		g.model[reg] = v
		out = append(out, Op{Name: "set:" + reg, Arg: v, Expected: v})
	}
	return out
}
