package stablestore

import (
	"errors"
	"testing"
	"time"
)

func TestFaultStoreFullRejectsCommitsReadsSurvive(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	if err := fs.Commit(ConfigRecord{System: "app", FTM: "pbr", Version: 1}); err != nil {
		t.Fatal(err)
	}

	fs.SetFull(true)
	err := fs.Commit(ConfigRecord{System: "app", FTM: "lfr", Version: 2})
	if !errors.Is(err, ErrStoreFull) {
		t.Fatalf("full store accepted a commit: %v", err)
	}
	if fs.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1", fs.Rejected())
	}
	// Reads keep working and see only the pre-fault record.
	rec, ok, err := fs.Current("app")
	if err != nil || !ok || rec.FTM != "pbr" {
		t.Fatalf("Current = %+v ok=%v err=%v", rec, ok, err)
	}

	fs.SetFull(false)
	if err := fs.Commit(ConfigRecord{System: "app", FTM: "lfr", Version: 2}); err != nil {
		t.Fatalf("cleared store rejected a commit: %v", err)
	}
	hist, err := fs.History("app")
	if err != nil || len(hist) != 2 {
		t.Fatalf("History = %v err=%v", hist, err)
	}
}

func TestFaultStoreDelayStallsOperations(t *testing.T) {
	fs := NewFaultStore(NewMemStore())
	fs.SetDelay(30 * time.Millisecond)
	start := time.Now()
	if _, _, err := fs.Current("app"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("slow store answered in %v", d)
	}
	fs.SetDelay(0)
	start = time.Now()
	if _, _, err := fs.Current("app"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("restored store still slow: %v", d)
	}
}
