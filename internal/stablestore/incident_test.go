package stablestore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testIncidentLog(t *testing.T, log IncidentLog) {
	t.Helper()
	recs, err := log.Records()
	if err != nil {
		t.Fatalf("empty records: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log not empty: %+v", recs)
	}
	for i, reason := range []string{"peer-suspected", "promoted"} {
		rec := IncidentRecord{
			Time:   time.Now(),
			Reason: reason,
			Origin: "replica-a",
			Data:   json.RawMessage(`{"events":[],"n":` + string(rune('0'+i)) + `}`),
		}
		if err := log.Append(rec); err != nil {
			t.Fatalf("append %q: %v", reason, err)
		}
	}
	recs, err = log.Records()
	if err != nil {
		t.Fatalf("records: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Reason != "peer-suspected" || recs[1].Reason != "promoted" {
		t.Fatalf("order wrong: %q %q", recs[0].Reason, recs[1].Reason)
	}
	if recs[1].Origin != "replica-a" {
		t.Fatalf("origin lost: %+v", recs[1])
	}
	var payload map[string]any
	if err := json.Unmarshal(recs[1].Data, &payload); err != nil {
		t.Fatalf("data did not round-trip: %v", err)
	}
}

func TestMemIncidentLog(t *testing.T) {
	testIncidentLog(t, NewMemIncidentLog())
}

func TestFileIncidentLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incidents.jsonl")
	testIncidentLog(t, NewFileIncidentLog(path))
}

func TestFileIncidentLogToleratesTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "incidents.jsonl")
	log := NewFileIncidentLog(path)
	if err := log.Append(IncidentRecord{Reason: "whole", Data: json.RawMessage(`{}`)}); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"reason":"torn","da`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := log.Records()
	if err != nil {
		t.Fatalf("load with torn tail: %v", err)
	}
	if len(recs) != 1 || recs[0].Reason != "whole" {
		t.Fatalf("torn line not skipped: %+v", recs)
	}
}
