package stablestore

import (
	"errors"
	"sync/atomic"
	"time"
)

// ErrStoreFull is returned by a FaultStore whose full fault is armed —
// the disk-full shape: commits are rejected while reads keep working.
var ErrStoreFull = errors.New("stablestore: store full")

// FaultStore wraps a Store with injectable degradation: a per-operation
// latency (the slow-disk gray failure, which the host's stable-store
// health collector observes as degradation) and a full switch that
// rejects commits. All knobs are atomic and safe to flip on a live
// store mid-campaign.
type FaultStore struct {
	inner Store

	delayNs  atomic.Int64
	full     atomic.Bool
	rejected atomic.Uint64
}

// NewFaultStore wraps inner with clean (zero) fault knobs.
func NewFaultStore(inner Store) *FaultStore {
	return &FaultStore{inner: inner}
}

var _ Store = (*FaultStore)(nil)

// SetDelay imposes d of latency on every subsequent operation (zero
// restores full speed).
func (s *FaultStore) SetDelay(d time.Duration) { s.delayNs.Store(int64(d)) }

// Delay returns the currently imposed per-operation latency.
func (s *FaultStore) Delay() time.Duration { return time.Duration(s.delayNs.Load()) }

// SetFull arms or clears the disk-full fault.
func (s *FaultStore) SetFull(on bool) { s.full.Store(on) }

// Full reports whether the disk-full fault is armed.
func (s *FaultStore) Full() bool { return s.full.Load() }

// Rejected returns how many commits the full fault has refused.
func (s *FaultStore) Rejected() uint64 { return s.rejected.Load() }

func (s *FaultStore) stall() {
	if d := s.delayNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// Commit stalls by the injected delay, then rejects when full,
// otherwise delegates.
func (s *FaultStore) Commit(rec ConfigRecord) error {
	s.stall()
	if s.full.Load() {
		s.rejected.Add(1)
		return ErrStoreFull
	}
	return s.inner.Commit(rec)
}

// Current stalls by the injected delay, then delegates — a full disk
// still reads.
func (s *FaultStore) Current(system string) (ConfigRecord, bool, error) {
	s.stall()
	return s.inner.Current(system)
}

// History stalls by the injected delay, then delegates.
func (s *FaultStore) History(system string) ([]ConfigRecord, error) {
	s.stall()
	return s.inner.History(system)
}
