package stablestore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// Incident log: the durable side of the flight recorder. A replica's
// black box is only useful if it survives the incident it describes, so
// dumps are appended here with the same crash-tolerant discipline as
// configuration records (one fsynced JSON line per record, torn final
// line tolerated on load).

// IncidentRecord is one persisted black-box dump.
type IncidentRecord struct {
	Time time.Time `json:"time"`
	// Reason names the incident ("peer-suspected", "promoted", "panic").
	Reason string `json:"reason"`
	// Origin names the replica that dumped the box.
	Origin string `json:"origin,omitempty"`
	// Data is the serialized telemetry.BlackBox. Kept opaque here so
	// stablestore does not depend on telemetry.
	Data json.RawMessage `json:"data"`
}

// IncidentLog is the durable incident sink contract.
type IncidentLog interface {
	// Append durably appends one incident record.
	Append(rec IncidentRecord) error
	// Records returns all persisted records, oldest first.
	Records() ([]IncidentRecord, error)
}

// MemIncidentLog is an in-memory IncidentLog for simulations and tests.
type MemIncidentLog struct {
	mu      sync.Mutex
	records []IncidentRecord
}

// NewMemIncidentLog returns an empty in-memory incident log.
func NewMemIncidentLog() *MemIncidentLog { return &MemIncidentLog{} }

var _ IncidentLog = (*MemIncidentLog)(nil)

// Append appends a record.
func (l *MemIncidentLog) Append(rec IncidentRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records, rec)
	return nil
}

// Records returns all records, oldest first.
func (l *MemIncidentLog) Records() ([]IncidentRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]IncidentRecord(nil), l.records...), nil
}

// FileIncidentLog is a file-backed IncidentLog: one JSON record per
// line, fsynced on every append.
type FileIncidentLog struct {
	mu   sync.Mutex
	path string
}

// NewFileIncidentLog returns a log persisting to path (created on first
// append).
func NewFileIncidentLog(path string) *FileIncidentLog {
	return &FileIncidentLog{path: path}
}

var _ IncidentLog = (*FileIncidentLog)(nil)

// Append durably appends a record.
func (l *FileIncidentLog) Append(rec IncidentRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("stablestore: incident open: %w", err)
	}
	defer f.Close()
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("stablestore: incident marshal: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("stablestore: incident write: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("stablestore: incident sync: %w", err)
	}
	return nil
}

// Records returns all persisted records, oldest first.
func (l *FileIncidentLog) Records() ([]IncidentRecord, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	f, err := os.Open(l.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("stablestore: incident open: %w", err)
	}
	defer f.Close()
	var out []IncidentRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20) // boxes are far larger than config records
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec IncidentRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final line from a crash mid-write is tolerated;
			// anything before it was fsynced whole.
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stablestore: incident scan: %w", err)
	}
	return out, nil
}
