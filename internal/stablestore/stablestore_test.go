package stablestore

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testStoreContract(t *testing.T, s Store) {
	t.Helper()
	if _, ok, err := s.Current("app"); err != nil || ok {
		t.Fatalf("Current on empty store = ok %v, err %v", ok, err)
	}
	records := []ConfigRecord{
		{System: "app", FTM: "pbr", Version: 1, Committed: time.Unix(100, 0).UTC()},
		{System: "other", FTM: "lfr", Version: 1, Committed: time.Unix(150, 0).UTC()},
		{System: "app", FTM: "lfr", Version: 2, Committed: time.Unix(200, 0).UTC()},
		{System: "app", FTM: "lfr_tr", Version: 3, Committed: time.Unix(300, 0).UTC()},
	}
	for _, r := range records {
		if err := s.Commit(r); err != nil {
			t.Fatalf("Commit: %v", err)
		}
	}
	cur, ok, err := s.Current("app")
	if err != nil || !ok {
		t.Fatalf("Current: ok %v, err %v", ok, err)
	}
	if cur.FTM != "lfr_tr" || cur.Version != 3 {
		t.Fatalf("Current = %+v", cur)
	}
	hist, err := s.History("app")
	if err != nil {
		t.Fatalf("History: %v", err)
	}
	if len(hist) != 3 || hist[0].FTM != "pbr" || hist[2].FTM != "lfr_tr" {
		t.Fatalf("History = %+v", hist)
	}
	other, ok, err := s.Current("other")
	if err != nil || !ok || other.FTM != "lfr" {
		t.Fatalf("Current(other) = %+v, ok %v, err %v", other, ok, err)
	}
}

func TestMemStore(t *testing.T) {
	testStoreContract(t, NewMemStore())
}

func TestFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.log")
	testStoreContract(t, NewFileStore(path))
}

func TestFileStoreSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.log")
	s := NewFileStore(path)
	if err := s.Commit(ConfigRecord{System: "app", FTM: "pbr", Version: 1}); err != nil {
		t.Fatal(err)
	}
	// A fresh store over the same file sees the committed record — this
	// is the recovery-of-adaptation path after a replica restart.
	s2 := NewFileStore(path)
	cur, ok, err := s2.Current("app")
	if err != nil || !ok || cur.FTM != "pbr" {
		t.Fatalf("Current after reopen = %+v, ok %v, err %v", cur, ok, err)
	}
}

func TestFileStoreToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "config.log")
	s := NewFileStore(path)
	if err := s.Commit(ConfigRecord{System: "app", FTM: "pbr", Version: 1}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, non-JSON final line.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"system":"app","ftm":"lfr","ver`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cur, ok, err := NewFileStore(path).Current("app")
	if err != nil || !ok {
		t.Fatalf("Current with torn tail: ok %v, err %v", ok, err)
	}
	if cur.FTM != "pbr" {
		t.Fatalf("Current = %+v, want the last whole record", cur)
	}
}
