// Package stablestore implements the stable storage of the adaptation
// layer (paper §5.3, "Recovery of adaptation"): a crash-surviving,
// append-only record of the currently-active FTM configuration per
// replica. A replica restarted after crashing mid-transition reads its
// counterpart's committed configuration from here and rejoins in that
// configuration.
package stablestore

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"time"
)

// ConfigRecord is one committed FTM configuration.
type ConfigRecord struct {
	// System identifies the protected application.
	System string `json:"system"`
	// FTM is the identifier of the active fault tolerance mechanism.
	FTM string `json:"ftm"`
	// Version increases with every committed transition.
	Version uint64 `json:"version"`
	// Committed is when the transition completed.
	Committed time.Time `json:"committed"`
}

// Store is the stable storage contract.
type Store interface {
	// Commit durably appends a configuration record.
	Commit(rec ConfigRecord) error
	// Current returns the latest committed record for a system.
	Current(system string) (ConfigRecord, bool, error)
	// History returns all committed records for a system, oldest first.
	History(system string) ([]ConfigRecord, error)
}

// MemStore is an in-memory Store for simulations and tests. Its
// "stability" is its survival across simulated host crashes, which tear
// down runtimes but not the store.
type MemStore struct {
	mu      sync.Mutex
	records []ConfigRecord
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

var _ Store = (*MemStore)(nil)

// Commit appends a record.
func (s *MemStore) Commit(rec ConfigRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = append(s.records, rec)
	return nil
}

// Current returns the latest record for system.
func (s *MemStore) Current(system string) (ConfigRecord, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.records) - 1; i >= 0; i-- {
		if s.records[i].System == system {
			return s.records[i], true, nil
		}
	}
	return ConfigRecord{}, false, nil
}

// History returns all records for system, oldest first.
func (s *MemStore) History(system string) ([]ConfigRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []ConfigRecord
	for _, r := range s.records {
		if r.System == system {
			out = append(out, r)
		}
	}
	return out, nil
}

// FileStore is a file-backed Store: one JSON record per line, fsynced on
// every commit.
type FileStore struct {
	mu   sync.Mutex
	path string
}

// NewFileStore returns a store persisting to path (created on first
// commit).
func NewFileStore(path string) *FileStore { return &FileStore{path: path} }

var _ Store = (*FileStore)(nil)

// Commit durably appends a record.
func (s *FileStore) Commit(rec ConfigRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("stablestore: open: %w", err)
	}
	defer f.Close()
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("stablestore: marshal: %w", err)
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("stablestore: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("stablestore: sync: %w", err)
	}
	return nil
}

func (s *FileStore) load() ([]ConfigRecord, error) {
	f, err := os.Open(s.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("stablestore: open: %w", err)
	}
	defer f.Close()
	var out []ConfigRecord
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec ConfigRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn final line from a crash mid-write is tolerated;
			// anything before it was fsynced whole.
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stablestore: scan: %w", err)
	}
	return out, nil
}

// Current returns the latest record for system.
func (s *FileStore) Current(system string) (ConfigRecord, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	records, err := s.load()
	if err != nil {
		return ConfigRecord{}, false, err
	}
	for i := len(records) - 1; i >= 0; i-- {
		if records[i].System == system {
			return records[i], true, nil
		}
	}
	return ConfigRecord{}, false, nil
}

// History returns all records for system, oldest first.
func (s *FileStore) History(system string) ([]ConfigRecord, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	records, err := s.load()
	if err != nil {
		return nil, err
	}
	var out []ConfigRecord
	for _, r := range records {
		if r.System == system {
			out = append(out, r)
		}
	}
	return out, nil
}
