package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Encode gob-serializes v for transmission.
func Encode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("transport: encode %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// Decode gob-deserializes data into v (a pointer).
func Decode(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("transport: decode into %T: %w", v, err)
	}
	return nil
}

// MustEncode is Encode that panics on error; for values whose
// encodability is a static property of the program.
func MustEncode(v any) []byte {
	data, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return data
}
