package transport

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// encBufPool recycles the scratch buffers behind Encode. Gob encoders
// themselves cannot be pooled — a gob stream transmits type descriptors
// only once, so an encoder reused across messages produces streams a
// fresh decoder cannot read — but the buffer growth is where the
// allocation cost lives.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// fastTag marks a hand-rolled binary encoding produced by a
// FastMarshaler. A gob stream always begins with a message byte count
// encoded as an unsigned varint, whose first byte is either 0x01..0x7F
// (small counts) or 0xF8..0xFF (negated byte-count prefix), so 0xD1 can
// never open a gob stream and the two formats coexist on one wire.
const fastTag = 0xD1

// FastTag is the public name of the fast-format tag byte, for codecs
// (the appstate register file) that build tagged buffers directly
// instead of round-tripping through an intermediate value.
const FastTag = fastTag

// FastMarshaler is implemented by high-frequency fixed-shape message
// types (rpc requests and responses, replica envelopes) that encode
// themselves with a hand-rolled binary layout instead of gob. Encode
// recognizes the interface and emits the tagged fast format; Decode
// dispatches on the tag. The appended body must be self-delimiting.
type FastMarshaler interface {
	AppendFast(buf []byte) []byte
}

// FastUnmarshaler is the decoding half of the fast path, implemented on
// the pointer type.
type FastUnmarshaler interface {
	DecodeFast(data []byte) error
}

// Encode serializes v for transmission: the hand-rolled fast format for
// FastMarshaler values, gob for everything else.
func Encode(v any) ([]byte, error) {
	if fm, ok := v.(FastMarshaler); ok {
		mEncodeFast.Inc()
		buf := make([]byte, 1, 64)
		buf[0] = fastTag
		return fm.AppendFast(buf), nil
	}
	mEncodeGob.Inc()
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		return nil, fmt.Errorf("transport: encode %T: %w", v, err)
	}
	out := append([]byte(nil), buf.Bytes()...)
	encBufPool.Put(buf)
	return out, nil
}

// EncodePooled is Encode drawing its output buffer from the transport
// buffer pool. The caller owns the returned bytes and should hand them
// back with PutBuf once nothing references them (for gob-encoded
// values it behaves exactly like Encode; only the fast path pools).
func EncodePooled(v any) ([]byte, error) {
	if fm, ok := v.(FastMarshaler); ok {
		mEncodeFast.Inc()
		buf := append(GetBuf(), fastTag)
		return fm.AppendFast(buf), nil
	}
	return Encode(v)
}

// FastFrame returns a pooled buffer primed with the fast-codec tag.
// Hot paths call value.AppendFast(FastFrame()) directly instead of
// EncodePooled(value): the concrete call skips the interface boxing
// that EncodePooled's any parameter forces on every request.
func FastFrame() []byte {
	mEncodeFast.Inc()
	return append(GetBuf(), fastTag)
}

// Decode deserializes data into v (a pointer), dispatching between the
// fast format and gob on the leading tag byte.
func Decode(data []byte, v any) error {
	if len(data) > 0 && data[0] == fastTag {
		fu, ok := v.(FastUnmarshaler)
		if !ok {
			CountDrop(DropCodecMismatch)
			return fmt.Errorf("transport: fast-coded data but %T cannot fast-decode", v)
		}
		if err := fu.DecodeFast(data[1:]); err != nil {
			CountDrop(DropDecodeError)
			return fmt.Errorf("transport: decode into %T: %w", v, err)
		}
		mDecodeFast.Inc()
		return nil
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		CountDrop(DropDecodeError)
		return fmt.Errorf("transport: decode into %T: %w", v, err)
	}
	mDecodeGob.Inc()
	return nil
}

// MustEncode is Encode that panics on error; for values whose
// encodability is a static property of the program.
func MustEncode(v any) []byte {
	data, err := Encode(v)
	if err != nil {
		panic(err)
	}
	return data
}
