package transport

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func TestTCPFrameRoundTrip(t *testing.T) {
	frames := []tcpFrame{
		{ID: 1, From: "127.0.0.1:9", Kind: "rpc", Payload: []byte("hello"), OneWay: false},
		{ID: 0, From: "", Kind: "", Payload: nil, OneWay: true},
		{ID: 1 << 62, From: "a", Kind: "replica", Payload: bytes.Repeat([]byte{0xFB}, 4096), Err: "boom"},
	}
	for _, want := range frames {
		wire := appendTCPFrame(nil, &want)
		n := binary.BigEndian.Uint32(wire)
		if int(n) != len(wire)-4 {
			t.Fatalf("length prefix %d, body %d", n, len(wire)-4)
		}
		var got tcpFrame
		if err := decodeTCPFrame(wire[4:], &got); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.ID != want.ID || got.From != want.From || got.Kind != want.Kind ||
			got.OneWay != want.OneWay || got.Err != want.Err || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestTCPFrameDecodeTruncated(t *testing.T) {
	frame := tcpFrame{ID: 7, From: "x", Kind: "rpc", Payload: []byte("payload")}
	wire := appendTCPFrame(nil, &frame)
	body := wire[4:]
	// Every truncation of the pre-payload header must error, never panic
	// or misread. (Truncating inside the payload is undetectable by
	// design — the length prefix, checked by the read loops, owns that.)
	headerLen := len(body) - len(frame.Payload)
	for i := 0; i < headerLen; i++ {
		var got tcpFrame
		if err := decodeTCPFrame(body[:i], &got); err == nil {
			t.Fatalf("truncation at %d decoded: %+v", i, got)
		}
	}
}

// errAfterConn passes writes through to a real connection until limit
// bytes, then fails. Writev-style batches degrade to sequential writes
// on it (it is not a *net.TCPConn), which is exactly what lets the test
// pin per-frame outcomes.
type errAfterConn struct {
	net.Conn
	mu      sync.Mutex
	limit   int
	written int
}

func (c *errAfterConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	room := c.limit - c.written
	if room <= 0 {
		return 0, errors.New("injected: connection broke")
	}
	if len(p) <= room {
		n, err := c.Conn.Write(p)
		c.written += n
		return n, err
	}
	n, err := c.Conn.Write(p[:room])
	c.written += n
	if err != nil {
		return n, err
	}
	return n, errors.New("injected: connection broke mid-frame")
}

// TestTCPWriterPartialBatchOutcomes drives a coalesced batch into a
// connection that dies midway and checks the three-way outcome split:
// frames fully written report done, the frame the failure landed in
// reports ambiguous (must not be resent), and frames never written
// report failed (safe to resend).
func TestTCPWriterPartialBatchOutcomes(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	go io.Copy(io.Discard, server)

	mkframe := func(id uint64) []byte {
		return appendTCPFrame(nil, &tcpFrame{ID: id, Kind: "rpc", Payload: bytes.Repeat([]byte{byte(id)}, 64)})
	}
	one := mkframe(1)
	// Let frame 1 through whole and cut inside frame 2.
	conn := &errAfterConn{Conn: client, limit: len(one) + 10}
	w := newTCPWriter(conn)

	// Stall the flusher inside frame 1's write by not reading from the
	// pipe yet... net.Pipe writes block until read, so enqueue the whole
	// batch before the copier drains it: queue all three under the
	// writer's own batching by enqueueing them back to back.
	w.mu.Lock() // hold the queue so all three frames land in one batch
	var pfs []*pendingFrame
	done := make(chan struct{})
	go func() {
		defer close(done)
		pfs = []*pendingFrame{
			w.enqueue(one, true),
			w.enqueue(mkframe(2), true),
			w.enqueue(mkframe(3), true),
		}
	}()
	// The first enqueue blocks on w.mu; give the goroutine a moment to
	// line up, then release the queue.
	time.Sleep(10 * time.Millisecond)
	w.mu.Unlock()
	<-done

	want := []writeStatus{writeDone, writeAmbiguous, writeFailed}
	for i, pf := range pfs {
		select {
		case <-pf.done:
		case <-time.After(5 * time.Second):
			t.Fatalf("frame %d outcome never resolved", i+1)
		}
		if pf.status != want[i] {
			t.Errorf("frame %d: status %d, want %d", i+1, pf.status, want[i])
		}
	}
	// The writer is sticky-broken: later frames fail fast as unwritten.
	pf := w.enqueue(mkframe(4), true)
	<-pf.done
	if pf.status != writeFailed {
		t.Errorf("post-error enqueue: status %d, want writeFailed", pf.status)
	}
}

// TestTCPRedialDoesNotReshipWrittenFrames is the transport-level
// at-most-once guarantee behind redial-once: a Send whose frame died
// mid-write must error out instead of re-shipping on a fresh
// connection, while a Send whose frame never touched the wire retries
// transparently.
func TestTCPRedialDoesNotReshipWrittenFrames(t *testing.T) {
	var mu sync.Mutex
	got := 0
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("rpc", func(ctx context.Context, p Packet) ([]byte, error) {
		mu.Lock()
		got++
		mu.Unlock()
		return []byte("ok"), nil
	})

	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	// Prime the pooled connection, then break it under the client's feet
	// so the next write fails without having sent a byte.
	if _, err := cli.Call(ctx, srv.Addr(), "rpc", []byte("prime")); err != nil {
		t.Fatal(err)
	}
	cli.mu.Lock()
	c := cli.conns[srv.Addr()]
	cli.mu.Unlock()
	c.conn.Close()
	// The closed connection surfaces as either an immediate write error
	// (frame unwritten -> transparent redial) or a read-loop failure
	// marking the conn dead (register fails -> transparent redial). Both
	// must end with the frame delivered exactly once.
	if _, err := cli.Call(ctx, srv.Addr(), "rpc", []byte("retry")); err != nil {
		t.Fatalf("redial-once call: %v", err)
	}
	mu.Lock()
	calls := got
	mu.Unlock()
	if calls != 2 {
		t.Fatalf("server saw %d calls, want 2 (prime + exactly-once retry)", calls)
	}

	// Mid-write ambiguity must NOT retry: ship an oversized-but-legal
	// frame into a pipe that cuts mid-frame and check the error names
	// the ambiguity. Driven at the writer layer (the endpoint cannot
	// inject byte-level faults), asserting the status Call/Send branch on.
	client, server := net.Pipe()
	defer server.Close()
	go io.Copy(io.Discard, server)
	w := newTCPWriter(&errAfterConn{Conn: client, limit: 10})
	pf := w.enqueue(appendTCPFrame(nil, &tcpFrame{ID: 9, Kind: "rpc", Payload: bytes.Repeat([]byte{9}, 256)}), true)
	<-pf.done
	if pf.status != writeAmbiguous {
		t.Fatalf("mid-frame cut: status %d, want writeAmbiguous", pf.status)
	}
}

// TestTCPGobCompatArm connects a v1 gob client by hand and checks the
// server still decodes its stream and answers in gob.
func TestTCPGobCompatArm(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("rpc", func(ctx context.Context, p Packet) ([]byte, error) {
		return append([]byte("echo:"), p.Payload...), nil
	})

	conn, err := net.Dial("tcp", string(srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(&tcpFrame{ID: 1, From: "v1", Kind: "rpc", Payload: []byte("legacy")}); err != nil {
		t.Fatal(err)
	}
	dec := gob.NewDecoder(conn)
	var reply tcpFrame
	if err := dec.Decode(&reply); err != nil {
		t.Fatalf("gob reply: %v", err)
	}
	if reply.ID != 1 || string(reply.Payload) != "echo:legacy" || reply.Err != "" {
		t.Fatalf("gob reply: %+v", reply)
	}
}

// TestTCPCoalescingMetrics checks that concurrent calls on one
// connection advance the write-syscall counter by less than the frame
// count would under one-write-per-frame, and that the frames-per-write
// histogram sees the batches.
func TestTCPCoalescingMetrics(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	block := make(chan struct{})
	srv.Handle("rpc", func(ctx context.Context, p Packet) ([]byte, error) {
		<-block
		return []byte("ok"), nil
	})
	cli, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const calls = 32
	before := mWriteSyscalls.Value()
	framesBefore := mFramesPerWrite.Snapshot()
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.Call(context.Background(), srv.Addr(), "rpc", []byte("x")); err != nil {
				t.Error(err)
			}
		}()
	}
	// Release the handlers once all requests are in flight; their
	// replies then coalesce on the server's writer too.
	time.Sleep(50 * time.Millisecond)
	close(block)
	wg.Wait()

	// The flusher records its write only after WriteTo returns, so a
	// caller can hold the reply before the last observation lands; poll
	// until the counters settle instead of snapshotting once.
	snap := mFramesPerWrite.Snapshot().Delta(framesBefore)
	writes := mWriteSyscalls.Value() - before
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if writes > 0 && snap.Count == writes && snap.SumNs >= 2*calls {
			break
		}
		time.Sleep(5 * time.Millisecond)
		snap = mFramesPerWrite.Snapshot().Delta(framesBefore)
		writes = mWriteSyscalls.Value() - before
	}
	if writes == 0 || snap.Count == 0 {
		t.Fatalf("coalescing metrics did not move: writes=%d batches=%d", writes, snap.Count)
	}
	// One histogram observation per batched write, each batch carrying at
	// least one frame; the batch sizes (SumNs accumulates raw frame
	// counts) cover all 2*calls frames of the exchange across both
	// endpoints' writers. How hard the batches coalesce depends on
	// scheduling, so the test pins the invariants, not a batching factor.
	if snap.Count != writes {
		t.Errorf("%d batch observations for %d batched writes", snap.Count, writes)
	}
	if snap.SumNs < 2*calls {
		t.Errorf("batches carried %d frames, want >= %d", snap.SumNs, 2*calls)
	}
	if snap.SumNs < snap.Count {
		t.Errorf("batches carried %d frames over %d writes: impossible", snap.SumNs, snap.Count)
	}
}
