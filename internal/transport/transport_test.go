package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMemCallRoundTrip(t *testing.T) {
	n := NewMemNetwork()
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatalf("Endpoint a: %v", err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatalf("Endpoint b: %v", err)
	}
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) {
		if p.From != "a" {
			t.Errorf("From = %s, want a", p.From)
		}
		return append([]byte("re:"), p.Payload...), nil
	})
	reply, err := a.Call(context.Background(), "b", "echo", []byte("hi"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "re:hi" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestMemCallToMissingEndpoint(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	if _, err := a.Call(context.Background(), "ghost", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Call ghost: err = %v, want ErrUnreachable", err)
	}
}

func TestMemCallNoHandler(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	_, _ = n.Endpoint("b")
	if _, err := a.Call(context.Background(), "b", "none", nil); !errors.Is(err, ErrNoHandler) {
		t.Fatalf("Call without handler: err = %v, want ErrNoHandler", err)
	}
}

func TestMemHandlerErrorWrapped(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	b.Handle("boom", func(ctx context.Context, p Packet) ([]byte, error) {
		return nil, errors.New("kaput")
	})
	_, err := a.Call(context.Background(), "b", "boom", nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("Call: err = %v, want ErrRemote", err)
	}
}

func TestMemSendOneWay(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	got := make(chan []byte, 1)
	b.Handle("hb", func(ctx context.Context, p Packet) ([]byte, error) {
		got <- p.Payload
		return nil, nil
	})
	if err := a.Send(context.Background(), "b", "hb", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case p := <-got:
		if string(p) != "x" {
			t.Fatalf("payload = %q", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("one-way message never delivered")
	}
}

func TestMemPartition(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) { return p.Payload, nil })

	n.Partition("a", "b")
	if _, err := a.Call(context.Background(), "b", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Call across partition: err = %v, want ErrUnreachable", err)
	}
	n.Heal("a", "b")
	if _, err := a.Call(context.Background(), "b", "echo", nil); err != nil {
		t.Fatalf("Call after heal: %v", err)
	}
	n.Partition("a", "b")
	n.HealAll()
	if _, err := a.Call(context.Background(), "b", "echo", nil); err != nil {
		t.Fatalf("Call after HealAll: %v", err)
	}
}

func TestMemClosedEndpointUnreachable(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) { return p.Payload, nil })
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := a.Call(context.Background(), "b", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Call closed endpoint: err = %v, want ErrUnreachable", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("Close a: %v", err)
	}
	if _, err := a.Call(context.Background(), "b", "echo", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Call from closed endpoint: err = %v, want ErrClosed", err)
	}
}

func TestMemLatencyApplied(t *testing.T) {
	n := NewMemNetwork(WithLatency(20 * time.Millisecond))
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) { return p.Payload, nil })
	start := time.Now()
	if _, err := a.Call(context.Background(), "b", "echo", nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if rtt := time.Since(start); rtt < 40*time.Millisecond {
		t.Fatalf("round trip = %v, want >= 40ms (2x one-way latency)", rtt)
	}
}

func TestMemCallHonorsContext(t *testing.T) {
	n := NewMemNetwork(WithLatency(time.Second))
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) { return p.Payload, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := a.Call(ctx, "b", "echo", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call: err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("Call did not return promptly on context expiry")
	}
}

func TestMemLossDropsSends(t *testing.T) {
	n := NewMemNetwork(WithLoss(1.0), WithSeed(42))
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	var received atomic.Int64
	b.Handle("hb", func(ctx context.Context, p Packet) ([]byte, error) {
		received.Add(1)
		return nil, nil
	})
	for i := 0; i < 20; i++ {
		if err := a.Send(context.Background(), "b", "hb", nil); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	if got := received.Load(); got != 0 {
		t.Fatalf("received %d messages on a fully lossy link", got)
	}
	// Calls are never lost: they model connection-oriented traffic.
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) { return p.Payload, nil })
	if _, err := a.Call(context.Background(), "b", "echo", nil); err != nil {
		t.Fatalf("Call on lossy network: %v", err)
	}
}

func TestMemStatsAccounting(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) { return p.Payload, nil })
	payload := make([]byte, 100)
	if _, err := a.Call(context.Background(), "b", "echo", payload); err != nil {
		t.Fatalf("Call: %v", err)
	}
	sa, sb := n.Stats("a"), n.Stats("b")
	if sa.MessagesSent != 1 || sa.BytesSent != 100 {
		t.Fatalf("a stats = %+v", sa)
	}
	if sb.MessagesReceived != 1 || sb.BytesReceived != 100 {
		t.Fatalf("b stats = %+v", sb)
	}
	if sa.BytesReceived != 100 {
		t.Fatalf("a reply accounting = %+v", sa)
	}
}

func TestMemDuplicateAddress(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Endpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatal("duplicate address accepted")
	}
}

func TestMemConcurrentCalls(t *testing.T) {
	n := NewMemNetwork(WithJitter(time.Millisecond), WithSeed(3))
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) { return p.Payload, nil })
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("m%d", i)
			reply, err := a.Call(context.Background(), "b", "echo", []byte(want))
			if err != nil {
				t.Errorf("Call %d: %v", i, err)
				return
			}
			if string(reply) != want {
				t.Errorf("reply %d = %q, want %q", i, reply, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestGobCodecRoundTrip(t *testing.T) {
	type record struct {
		ID    uint64
		Name  string
		Blob  []byte
		Count int
	}
	in := record{ID: 7, Name: "checkpoint", Blob: []byte{1, 2, 3}, Count: -4}
	data, err := Encode(in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out record
	if err := Decode(data, &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.ID != in.ID || out.Name != in.Name || out.Count != in.Count || string(out.Blob) != string(in.Blob) {
		t.Fatalf("round trip mismatch: %+v != %+v", out, in)
	}
}

func TestDecodeGarbageFails(t *testing.T) {
	var out int
	if err := Decode([]byte{0xde, 0xad}, &out); err == nil {
		t.Fatal("Decode accepted garbage")
	}
}

func TestTCPCallRoundTrip(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenTCP a: %v", err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ListenTCP b: %v", err)
	}
	defer b.Close()
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) {
		return append([]byte("re:"), p.Payload...), nil
	})
	reply, err := a.Call(context.Background(), b.Addr(), "echo", []byte("tcp"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(reply) != "re:tcp" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestTCPHandlerError(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Handle("boom", func(ctx context.Context, p Packet) ([]byte, error) {
		return nil, errors.New("server-side failure")
	})
	if _, err := a.Call(context.Background(), b.Addr(), "boom", nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("Call: err = %v, want ErrRemote", err)
	}
	if _, err := a.Call(context.Background(), b.Addr(), "missing", nil); !errors.Is(err, ErrRemote) {
		t.Fatalf("Call missing handler: err = %v, want ErrRemote", err)
	}
}

func TestTCPSendOneWay(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got := make(chan string, 1)
	b.Handle("hb", func(ctx context.Context, p Packet) ([]byte, error) {
		got <- string(p.Payload)
		return nil, nil
	})
	if err := a.Send(context.Background(), b.Addr(), "hb", []byte("beat")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	select {
	case v := <-got:
		if v != "beat" {
			t.Fatalf("payload = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("one-way TCP message never delivered")
	}
}

func TestTCPClosedUnreachable(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := a.Call(context.Background(), addr, "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Call closed TCP endpoint: err = %v, want ErrUnreachable", err)
	}
}

func TestTCPCallsArePipelined(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	const delay = 100 * time.Millisecond
	b.Handle("slow", func(ctx context.Context, p Packet) ([]byte, error) {
		time.Sleep(delay)
		return append([]byte("re:"), p.Payload...), nil
	})
	// Eight concurrent calls over the one pooled connection. Pipelined,
	// they finish in roughly one handler delay; a sequential link would
	// need eight.
	const calls = 8
	var wg sync.WaitGroup
	start := time.Now()
	errs := make([]error, calls)
	replies := make([]string, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reply, err := a.Call(context.Background(), b.Addr(), "slow", []byte(fmt.Sprintf("c%d", i)))
			errs[i], replies[i] = err, string(reply)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i := 0; i < calls; i++ {
		if errs[i] != nil {
			t.Fatalf("call %d: %v", i, errs[i])
		}
		if want := fmt.Sprintf("re:c%d", i); replies[i] != want {
			t.Fatalf("call %d: reply = %q, want %q (misrouted correlation ID?)", i, replies[i], want)
		}
	}
	if elapsed > time.Duration(calls)*delay/2 {
		t.Fatalf("8 concurrent calls took %v; a pipelined link should take about one %v handler delay, not %d stacked", elapsed, delay, calls)
	}
}

func TestTCPCallContextTimeout(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	release := make(chan struct{})
	b.Handle("stall", func(ctx context.Context, p Packet) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, b.Addr(), "stall", nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Call: err = %v, want context.DeadlineExceeded", err)
	}
	// The connection survives an abandoned call: later calls still work.
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) {
		return p.Payload, nil
	})
	reply, err := a.Call(context.Background(), b.Addr(), "echo", []byte("after"))
	if err != nil {
		t.Fatalf("Call after timeout: %v", err)
	}
	if string(reply) != "after" {
		t.Fatalf("reply = %q", reply)
	}
}

func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) {
		return p.Payload, nil
	})
	addr := string(b.Addr())
	if _, err := a.Call(context.Background(), Address(addr), "echo", []byte("x")); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Restart the peer on the same port; the stale pooled connection must
	// be replaced transparently (the write fails, the call redials once).
	b2, err := ListenTCP(addr)
	if err != nil {
		t.Skipf("port %s not immediately reusable: %v", addr, err)
	}
	defer b2.Close()
	b2.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) {
		return append([]byte("v2:"), p.Payload...), nil
	})
	deadline := time.Now().Add(5 * time.Second)
	for {
		reply, err := a.Call(context.Background(), Address(addr), "echo", []byte("y"))
		if err == nil {
			if string(reply) != "v2:y" {
				t.Fatalf("reply = %q", reply)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("Call after peer restart never succeeded: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
