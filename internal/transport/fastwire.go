package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Helpers for the hand-rolled binary wire format of FastMarshaler
// message types: length-prefixed strings and byte slices plus unsigned
// varints, shared by every fast codec so the layouts stay uniform.

// ErrShortBuffer reports a truncated fast-coded message.
var ErrShortBuffer = errors.New("transport: fast decode: short buffer")

// AppendUvarint appends v as an unsigned varint.
func AppendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

// AppendLenBytes appends p with a varint length prefix.
func AppendLenBytes(buf []byte, p []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(p)))
	return append(buf, p...)
}

// AppendLenString appends s with a varint length prefix.
func AppendLenString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// AppendVarint appends v as a zig-zag signed varint.
func AppendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

// ReadUvarint consumes an unsigned varint and returns the remainder.
func ReadUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint", ErrShortBuffer)
	}
	return v, data[n:], nil
}

// ReadVarint consumes a zig-zag signed varint and returns the remainder.
func ReadVarint(data []byte) (int64, []byte, error) {
	v, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad varint", ErrShortBuffer)
	}
	return v, data[n:], nil
}

// ReadLenBytes consumes a length-prefixed byte slice (copied out of the
// input) and returns the remainder. A zero length yields nil.
func ReadLenBytes(data []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, ErrShortBuffer
	}
	if n == 0 {
		return nil, rest, nil
	}
	return append([]byte(nil), rest[:n]...), rest[n:], nil
}

// ReadLenBytesInPlace consumes a length-prefixed byte slice and returns
// it as a subslice of data, without copying. The result aliases the
// input buffer: it is only valid while the input is, and callers that
// retain it beyond the enclosing handler must copy. Decode paths that
// consume the bytes synchronously (the replica apply path) use this to
// stay allocation-free.
func ReadLenBytesInPlace(data []byte) ([]byte, []byte, error) {
	n, rest, err := ReadUvarint(data)
	if err != nil {
		return nil, nil, err
	}
	if uint64(len(rest)) < n {
		return nil, nil, ErrShortBuffer
	}
	if n == 0 {
		return nil, rest, nil
	}
	return rest[:n:n], rest[n:], nil
}

// ReadLenStringInterned consumes a length-prefixed string through the
// intern cache: identifier-like fields (client IDs, operation names,
// message kinds) that recur across messages decode without allocating
// after first sight.
func ReadLenStringInterned(data []byte) (string, []byte, error) {
	n, rest, err := ReadUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, ErrShortBuffer
	}
	return Intern(rest[:n]), rest[n:], nil
}

// ReadLenString consumes a length-prefixed string and returns the
// remainder.
func ReadLenString(data []byte) (string, []byte, error) {
	n, rest, err := ReadUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if uint64(len(rest)) < n {
		return "", nil, ErrShortBuffer
	}
	return string(rest[:n]), rest[n:], nil
}
