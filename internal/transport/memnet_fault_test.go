package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// echoPair attaches endpoints a and b to a fresh network, with b echoing
// calls and recording one-way deliveries.
func echoPair(t *testing.T, opts ...MemOption) (*MemNetwork, Endpoint, Endpoint, *[]([]byte)) {
	t.Helper()
	n := NewMemNetwork(opts...)
	a, err := n.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	b.Handle("echo", func(_ context.Context, p Packet) ([]byte, error) {
		<-mu
		got = append(got, append([]byte(nil), p.Payload...))
		mu <- struct{}{}
		return p.Payload, nil
	})
	return n, a, b, &got
}

func TestPartitionOneWayIsDirectional(t *testing.T) {
	n, a, b, _ := echoPair(t)
	a.Handle("echo", func(_ context.Context, p Packet) ([]byte, error) { return p.Payload, nil })

	n.PartitionOneWay("a", "b")
	if _, err := a.Call(context.Background(), "b", "echo", []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("a->b should be blocked, got %v", err)
	}
	// The reverse direction still flows one-way; a call from b executes
	// on a but its reply dies on the cut a->b return leg.
	executed := make(chan struct{}, 1)
	a.Handle("mark", func(_ context.Context, p Packet) ([]byte, error) {
		executed <- struct{}{}
		return nil, nil
	})
	if err := b.Send(context.Background(), "a", "mark", []byte("y")); err != nil {
		t.Fatalf("b->a send should flow: %v", err)
	}
	select {
	case <-executed:
	case <-time.After(time.Second):
		t.Fatal("b->a send never delivered")
	}
	if _, err := b.Call(context.Background(), "a", "echo", []byte("y")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("b->a call should lose its reply on the cut return leg, got %v", err)
	}
	if !n.Partitioned("a", "b") || n.Partitioned("b", "a") {
		t.Fatalf("partition state wrong: a->b=%v b->a=%v", n.Partitioned("a", "b"), n.Partitioned("b", "a"))
	}

	n.HealOneWay("a", "b")
	if _, err := a.Call(context.Background(), "b", "echo", []byte("x")); err != nil {
		t.Fatalf("healed a->b should flow: %v", err)
	}
}

func TestSymmetricPartitionStillBlocksBothWays(t *testing.T) {
	n, a, b, _ := echoPair(t)
	a.Handle("echo", func(_ context.Context, p Packet) ([]byte, error) { return p.Payload, nil })

	n.Partition("a", "b")
	if _, err := a.Call(context.Background(), "b", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("a->b: want unreachable, got %v", err)
	}
	if _, err := b.Call(context.Background(), "a", "echo", nil); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("b->a: want unreachable, got %v", err)
	}
	n.Heal("a", "b")
	if _, err := a.Call(context.Background(), "b", "echo", nil); err != nil {
		t.Fatalf("healed: %v", err)
	}
	// A one-way cut plus HealAll leaves a clean network.
	n.PartitionOneWay("b", "a")
	n.HealAll()
	if _, err := b.Call(context.Background(), "a", "echo", nil); err != nil {
		t.Fatalf("after HealAll: %v", err)
	}
}

func TestReplyLostWhenReverseLinkPartitioned(t *testing.T) {
	n := NewMemNetwork()
	a, _ := n.Endpoint("a")
	b, _ := n.Endpoint("b")
	executed := 0
	b.Handle("echo", func(_ context.Context, p Packet) ([]byte, error) {
		executed++
		// The handler itself cuts the reply path before returning: the
		// effect stands, the acknowledgement vanishes.
		n.PartitionOneWay("b", "a")
		return p.Payload, nil
	})
	_, err := a.Call(context.Background(), "b", "echo", []byte("x"))
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want lost reply as unreachable, got %v", err)
	}
	if executed != 1 {
		t.Fatalf("handler should have executed once, got %d", executed)
	}
}

func TestLinkFaultExtraLatencyIsDirectional(t *testing.T) {
	n, a, _, _ := echoPair(t)
	n.SetLinkFault("a", "b", LinkFault{ExtraLatency: 30 * time.Millisecond})

	start := time.Now()
	if _, err := a.Call(context.Background(), "b", "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("gray link should add >=30ms, call took %v", d)
	}

	n.ClearLinkFault("a", "b")
	start = time.Now()
	if _, err := a.Call(context.Background(), "b", "echo", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("cleared link should be fast again, call took %v", d)
	}
}

func TestLinkFaultCallLoss(t *testing.T) {
	n, a, _, got := echoPair(t)
	n.SetLinkFault("a", "b", LinkFault{DropCalls: 1.0})

	before := DropCount(DropCallLoss)
	if _, err := a.Call(context.Background(), "b", "echo", []byte("x")); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("want call loss as unreachable, got %v", err)
	}
	if len(*got) != 0 {
		t.Fatalf("request-leg loss must not reach the handler, got %d deliveries", len(*got))
	}
	if DropCount(DropCallLoss) != before+1 {
		t.Fatalf("call-loss drop not counted")
	}
	n.ClearLinkFaults()
	if _, err := a.Call(context.Background(), "b", "echo", []byte("x")); err != nil {
		t.Fatalf("cleared faults: %v", err)
	}
}

func TestLinkFaultOneWayLoss(t *testing.T) {
	n, a, _, got := echoPair(t)
	n.SetLinkFault("a", "b", LinkFault{Loss: 1.0})
	for i := 0; i < 20; i++ {
		if err := a.Send(context.Background(), "b", "echo", []byte("x")); err != nil {
			t.Fatalf("lossy send must stay silent: %v", err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if len(*got) != 0 {
		t.Fatalf("full loss delivered %d messages", len(*got))
	}
	// Calls are unaffected by one-way Loss (only DropCalls hits them).
	if _, err := a.Call(context.Background(), "b", "echo", []byte("x")); err != nil {
		t.Fatalf("call through Loss-only fault: %v", err)
	}
}

func TestLinkFaultCorruptionFlipsBitsDeterministically(t *testing.T) {
	run := func(seed int64) [][]byte {
		n, a, _, got := echoPair(t, WithSeed(seed))
		n.SetLinkFault("a", "b", LinkFault{Corrupt: 1.0})
		payload := []byte("hello, resilient world")
		for i := 0; i < 5; i++ {
			if _, err := a.Call(context.Background(), "b", "echo", payload); err != nil {
				t.Fatal(err)
			}
		}
		if string(payload) != "hello, resilient world" {
			t.Fatalf("corruption touched the caller's buffer: %q", payload)
		}
		return *got
	}
	first := run(7)
	if len(first) != 5 {
		t.Fatalf("want 5 deliveries, got %d", len(first))
	}
	mutated := 0
	for _, d := range first {
		if string(d) != "hello, resilient world" {
			mutated++
		}
	}
	if mutated == 0 {
		t.Fatal("Corrupt=1.0 never flipped a bit")
	}
	second := run(7)
	for i := range first {
		if string(first[i]) != string(second[i]) {
			t.Fatalf("same seed produced different corruption at delivery %d: %q vs %q", i, first[i], second[i])
		}
	}
}
