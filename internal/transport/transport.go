// Package transport provides the messaging substrate of the replicated
// system: addressed endpoints exchanging one-way messages and
// request/reply calls. Two implementations share the interface: an
// in-memory simulated network with configurable latency, loss and
// partitions (the default for experiments, making them reproducible on a
// laptop), and a TCP transport for real deployments (cmd/resilientd).
package transport

import (
	"context"
	"errors"
)

// Address identifies an endpoint on a network.
type Address string

// Packet is one delivered message.
type Packet struct {
	From    Address
	To      Address
	Kind    string
	Payload []byte
}

// Handler processes an inbound packet. For Call round-trips the returned
// bytes travel back to the caller; for one-way Sends they are discarded.
type Handler func(ctx context.Context, p Packet) ([]byte, error)

// Endpoint is one attachment point on a network.
type Endpoint interface {
	// Addr returns the endpoint's address.
	Addr() Address
	// Handle registers the handler for a message kind. Registering twice
	// replaces the handler; a nil handler unregisters.
	Handle(kind string, h Handler)
	// Send delivers a one-way message (fire-and-forget, may be lost).
	Send(ctx context.Context, to Address, kind string, payload []byte) error
	// Call performs a request/reply round-trip.
	Call(ctx context.Context, to Address, kind string, payload []byte) ([]byte, error)
	// Close detaches the endpoint; subsequent traffic to it fails with
	// ErrUnreachable.
	Close() error
}

// Errors reported by transports.
var (
	// ErrUnreachable reports a destination with no live endpoint.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrNoHandler reports a message kind with no registered handler.
	ErrNoHandler = errors.New("transport: no handler for message kind")
	// ErrClosed reports use of a closed endpoint.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrRemote wraps a handler-side failure returned through a Call.
	ErrRemote = errors.New("transport: remote handler error")
	// ErrTooLarge reports a payload exceeding MaxEnvelope. The sender
	// gets the error and the drop counter records it; an unbounded
	// envelope would otherwise stall a replica pair on one runaway
	// checkpoint.
	ErrTooLarge = errors.New("transport: payload exceeds maximum envelope size")
)

// MaxEnvelope bounds a single message payload (checkpoints included).
// Large enough for any state the experiments ship, small enough that a
// corrupted length or a runaway snapshot fails fast instead of
// exhausting memory.
const MaxEnvelope = 64 << 20

// Stats aggregates traffic counters for an endpoint, consumed by the
// monitoring engine's bandwidth probes.
type Stats struct {
	MessagesSent     uint64
	MessagesReceived uint64
	BytesSent        uint64
	BytesReceived    uint64
}
