package transport

import "resilientft/internal/telemetry"

// Process-wide traffic series. The per-endpoint Stats counters remain
// the per-address view; these aggregate across every endpoint in the
// process so the /metrics endpoint and the Monitoring Engine's probes
// see total transport behaviour. Resolved once at init: the message
// hot path only does atomic adds.
var (
	mMessagesSent     = telemetry.Default().Counter("transport_messages_sent_total")
	mMessagesReceived = telemetry.Default().Counter("transport_messages_received_total")
	mBytesSent        = telemetry.Default().Counter("transport_bytes_sent_total")
	mBytesReceived    = telemetry.Default().Counter("transport_bytes_received_total")

	// Coalesced-write series: one transport_write_syscalls_total tick per
	// batched net.Buffers write on a TCP connection, and the batch sizes
	// in ftm_wave_frames_per_write. messages_sent / write_syscalls is the
	// coalescing factor the wave shipping achieves.
	mWriteSyscalls  = telemetry.Default().Counter("transport_write_syscalls_total")
	mFramesPerWrite = telemetry.Default().Histogram("ftm_wave_frames_per_write")

	mEncodeFast = telemetry.Default().Counter("transport_encode_total", "path", "fast")
	mEncodeGob  = telemetry.Default().Counter("transport_encode_total", "path", "gob")
	mDecodeFast = telemetry.Default().Counter("transport_decode_total", "path", "fast")
	mDecodeGob  = telemetry.Default().Counter("transport_decode_total", "path", "gob")

	// mCorrupted counts payloads mutated by a LinkFault corruption
	// profile — deliveries that arrived, but wrong.
	mCorrupted = telemetry.Default().Counter("transport_corrupted_total")
)

// Drop reasons. Every discarded message increments
// transport_dropped_total{reason=...}; nothing vanishes silently.
const (
	DropLoss          = "loss"           // simulated one-way loss (memnet)
	DropPartition     = "partition"      // memnet partition blocked the route
	DropUnreachable   = "unreachable"    // no live endpoint at the destination
	DropClosed        = "closed"         // sender or receiver endpoint closed
	DropNoHandler     = "no-handler"     // no handler registered for the kind
	DropOversized     = "oversized"      // payload exceeded MaxEnvelope
	DropCodecMismatch = "codec-mismatch" // fast-coded data hit a gob-only type
	DropDecodeError   = "decode-error"   // payload failed to decode
	DropTCPDecode     = "tcp-decode"     // broken frame on a TCP connection
	DropCallLoss      = "call-loss"      // LinkFault dropped a call or reply leg
)

// dropCounters pre-registers a counter per reason so hot paths do not
// hit the registry.
var dropCounters = map[string]*telemetry.Counter{
	DropLoss:          telemetry.Default().Counter("transport_dropped_total", "reason", DropLoss),
	DropPartition:     telemetry.Default().Counter("transport_dropped_total", "reason", DropPartition),
	DropUnreachable:   telemetry.Default().Counter("transport_dropped_total", "reason", DropUnreachable),
	DropClosed:        telemetry.Default().Counter("transport_dropped_total", "reason", DropClosed),
	DropNoHandler:     telemetry.Default().Counter("transport_dropped_total", "reason", DropNoHandler),
	DropOversized:     telemetry.Default().Counter("transport_dropped_total", "reason", DropOversized),
	DropCodecMismatch: telemetry.Default().Counter("transport_dropped_total", "reason", DropCodecMismatch),
	DropDecodeError:   telemetry.Default().Counter("transport_dropped_total", "reason", DropDecodeError),
	DropTCPDecode:     telemetry.Default().Counter("transport_dropped_total", "reason", DropTCPDecode),
	DropCallLoss:      telemetry.Default().Counter("transport_dropped_total", "reason", DropCallLoss),
}

// CountDrop increments the process-wide drop counter for reason. Other
// packages (rpc request decoding, replica envelope handling) report
// their discarded messages through it so one series covers every path
// a message can vanish on.
func CountDrop(reason string) {
	if c, ok := dropCounters[reason]; ok {
		c.Inc()
		return
	}
	telemetry.Default().Counter("transport_dropped_total", "reason", reason).Inc()
}

// DropCount reads the current drop count for reason (testing and
// probes).
func DropCount(reason string) uint64 {
	if c, ok := dropCounters[reason]; ok {
		return c.Value()
	}
	c, ok := telemetry.Default().FindCounter("transport_dropped_total", "reason", reason)
	if !ok {
		return 0
	}
	return c.Value()
}
