package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// tcpFrame is the wire format of the TCP transport: one gob-encoded frame
// per request or reply on a dedicated connection.
type tcpFrame struct {
	From    string
	Kind    string
	Payload []byte
	OneWay  bool
	// Reply fields
	Err string
}

// TCPEndpoint implements Endpoint over real TCP connections. Addresses
// are host:port strings. Each Call uses one connection; the simulated
// MemNetwork remains the default for experiments, this transport backs
// cmd/resilientd deployments.
type TCPEndpoint struct {
	addr     Address
	listener net.Listener

	mu       sync.Mutex
	handlers map[string]Handler
	closed   bool
	wg       sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// ListenTCP starts an endpoint listening on addr ("host:port"; ":0" picks
// a free port — read the effective address back with Addr).
func ListenTCP(addr string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &TCPEndpoint{
		addr:     Address(l.Addr().String()),
		listener: l,
		handlers: make(map[string]Handler),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serve(conn)
		}()
	}
}

func (e *TCPEndpoint) serve(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var frame tcpFrame
		if err := dec.Decode(&frame); err != nil {
			// EOF is a connection simply closing; anything else is a
			// broken frame the sender will never hear about.
			if !errors.Is(err, io.EOF) {
				CountDrop(DropTCPDecode)
			}
			return
		}
		e.mu.Lock()
		h, ok := e.handlers[frame.Kind]
		closed := e.closed
		e.mu.Unlock()
		if closed {
			CountDrop(DropClosed)
			return
		}
		mMessagesReceived.Inc()
		mBytesReceived.Add(uint64(len(frame.Payload)))
		pkt := Packet{From: Address(frame.From), To: e.addr, Kind: frame.Kind, Payload: frame.Payload}
		var reply tcpFrame
		if !ok {
			CountDrop(DropNoHandler)
			reply.Err = fmt.Sprintf("no handler for %q", frame.Kind)
		} else {
			out, err := h(context.Background(), pkt)
			if err != nil {
				reply.Err = err.Error()
			} else {
				reply.Payload = out
			}
		}
		if frame.OneWay {
			continue
		}
		if err := enc.Encode(&reply); err != nil {
			return
		}
	}
}

// Addr returns the endpoint's effective listen address.
func (e *TCPEndpoint) Addr() Address { return e.addr }

// Handle registers the handler for a message kind.
func (e *TCPEndpoint) Handle(kind string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h == nil {
		delete(e.handlers, kind)
		return
	}
	e.handlers[kind] = h
}

func (e *TCPEndpoint) dial(ctx context.Context, to Address) (net.Conn, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", string(to))
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	return conn, nil
}

// Send delivers a one-way message.
func (e *TCPEndpoint) Send(ctx context.Context, to Address, kind string, payload []byte) error {
	if len(payload) > MaxEnvelope {
		CountDrop(DropOversized)
		return fmt.Errorf("%w: %d bytes to %s", ErrTooLarge, len(payload), to)
	}
	conn, err := e.dial(ctx, to)
	if err != nil {
		return err
	}
	defer conn.Close()
	mMessagesSent.Inc()
	mBytesSent.Add(uint64(len(payload)))
	frame := tcpFrame{From: string(e.addr), Kind: kind, Payload: payload, OneWay: true}
	return gob.NewEncoder(conn).Encode(&frame)
}

// Call performs a request/reply round-trip.
func (e *TCPEndpoint) Call(ctx context.Context, to Address, kind string, payload []byte) ([]byte, error) {
	if len(payload) > MaxEnvelope {
		CountDrop(DropOversized)
		return nil, fmt.Errorf("%w: %d bytes to %s", ErrTooLarge, len(payload), to)
	}
	conn, err := e.dial(ctx, to)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(deadline); err != nil {
			return nil, fmt.Errorf("transport: set deadline: %w", err)
		}
	}
	mMessagesSent.Inc()
	mBytesSent.Add(uint64(len(payload)))
	frame := tcpFrame{From: string(e.addr), Kind: kind, Payload: payload}
	if err := gob.NewEncoder(conn).Encode(&frame); err != nil {
		return nil, fmt.Errorf("transport: send to %s: %w", to, err)
	}
	var reply tcpFrame
	if err := gob.NewDecoder(conn).Decode(&reply); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
	}
	if reply.Err != "" {
		return nil, fmt.Errorf("%w: %s", ErrRemote, reply.Err)
	}
	mMessagesReceived.Inc()
	mBytesReceived.Add(uint64(len(reply.Payload)))
	return reply.Payload, nil
}

// Close stops the listener and waits for in-flight handlers.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.listener.Close()
	e.wg.Wait()
	return err
}
