package transport

import (
	"bufio"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpDialTimeout bounds the dial of a pooled connection. It is not tied
// to any single caller's context because the connection is shared;
// callers stop waiting as soon as their own context expires.
const tcpDialTimeout = 10 * time.Second

// tcpReadBuffer sizes the buffered reader in front of each connection.
const tcpReadBuffer = 64 << 10

// tcpFrame is one message on a TCP connection: frames multiplexed over
// a persistent connection, binary length-prefixed on the wire (see
// tcpwire.go; gob streams from v1 peers are still decoded). ID
// correlates a reply with its request, so many calls can be in flight
// on one connection (pipelining) instead of one dial and one round-trip
// at a time.
type tcpFrame struct {
	ID      uint64
	From    string
	Kind    string
	Payload []byte
	OneWay  bool
	// Reply fields
	Err string
}

// TCPEndpoint implements Endpoint over real TCP connections. Addresses
// are host:port strings. Outbound traffic to each destination shares one
// pipelined connection whose frames coalesce into batched writes;
// inbound frames are served concurrently, replies multiplexed back by
// frame ID. The simulated MemNetwork remains the default for
// experiments, this transport backs cmd/resilientd deployments.
type TCPEndpoint struct {
	addr     Address
	listener net.Listener

	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[Address]*tcpConn
	inbound  map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

var _ Endpoint = (*TCPEndpoint)(nil)

// tcpConn is one pooled outbound connection. Requests enter the
// connection's coalescing writer; a reader goroutine dispatches replies
// to the waiting callers by frame ID. When the connection dies, every
// pending call fails at once (channel close) and the conn leaves the
// pool.
type tcpConn struct {
	dialed  chan struct{} // closed once dialing finished
	dialErr error         // valid after dialed
	conn    net.Conn      // valid after dialed when dialErr == nil
	w       *tcpWriter    // valid with conn

	mu      sync.Mutex
	pending map[uint64]chan tcpFrame // in-flight calls by frame ID
	nextID  uint64
	dead    bool
}

// register allocates a frame ID and its reply channel. It fails on a
// connection already known dead, so the caller can redial instead of
// writing into a corpse.
func (c *tcpConn) register() (uint64, chan tcpFrame, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return 0, nil, false
	}
	c.nextID++
	ch := make(chan tcpFrame, 1)
	c.pending[c.nextID] = ch
	return c.nextID, ch, true
}

func (c *tcpConn) unregister(id uint64) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// fail marks the connection dead and releases every pending caller.
// Only the reader goroutine calls it, so closing the reply channels
// cannot race with the reader's own sends.
func (c *tcpConn) fail() {
	c.mu.Lock()
	c.dead = true
	pending := c.pending
	c.pending = make(map[uint64]chan tcpFrame)
	c.mu.Unlock()
	c.conn.Close()
	c.w.fail(errors.New("transport: connection lost"))
	for _, ch := range pending {
		close(ch)
	}
}

// ListenTCP starts an endpoint listening on addr ("host:port"; ":0" picks
// a free port — read the effective address back with Addr).
func ListenTCP(addr string) (*TCPEndpoint, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	ep := &TCPEndpoint{
		addr:     Address(l.Addr().String()),
		listener: l,
		handlers: make(map[string]Handler),
		conns:    make(map[Address]*tcpConn),
		inbound:  make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep, nil
}

func (e *TCPEndpoint) acceptLoop() {
	defer e.wg.Done()
	for {
		conn, err := e.listener.Accept()
		if err != nil {
			return // listener closed
		}
		// Inbound connections are tracked so Close can tear them down;
		// their serve loops otherwise block reading until the remote
		// side hangs up.
		e.mu.Lock()
		if e.closed {
			e.mu.Unlock()
			conn.Close()
			continue
		}
		e.inbound[conn] = struct{}{}
		e.mu.Unlock()
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serve(conn)
			e.mu.Lock()
			delete(e.inbound, conn)
			e.mu.Unlock()
		}()
	}
}

// serve sniffs the stream format — one magic byte opens a binary v2
// stream, anything else is a v1 gob stream — and runs the matching
// loop. Gob is the compatibility arm: decoded when a v1 peer connects,
// never chosen for new streams.
func (e *TCPEndpoint) serve(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, tcpReadBuffer)
	first, err := br.Peek(1)
	if err != nil {
		return // closed before the first byte
	}
	if first[0] == tcpMagic {
		br.Discard(1)
		e.serveBinary(conn, br)
		return
	}
	e.serveGob(conn, br)
}

// serveBinary handles one inbound v2 connection: length-prefixed frames
// in, coalesced reply writes out.
func (e *TCPEndpoint) serveBinary(conn net.Conn, br *bufio.Reader) {
	if _, err := conn.Write([]byte{tcpMagic}); err != nil {
		return
	}
	w := newTCPWriter(conn)
	var inflight sync.WaitGroup
	defer inflight.Wait()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				CountDrop(DropTCPDecode)
			}
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || int64(n) > MaxEnvelope+tcpFrameOverhead {
			CountDrop(DropTCPDecode)
			return
		}
		body := frameBuf(int(n))
		if _, err := io.ReadFull(br, body); err != nil {
			PutBuf(body)
			CountDrop(DropTCPDecode)
			return
		}
		var frame tcpFrame
		if err := decodeTCPFrame(body, &frame); err != nil {
			PutBuf(body)
			CountDrop(DropTCPDecode)
			return
		}
		e.mu.Lock()
		h, ok := e.handlers[frame.Kind]
		closed := e.closed
		e.mu.Unlock()
		if closed {
			PutBuf(body)
			CountDrop(DropClosed)
			return
		}
		mMessagesReceived.Inc()
		mBytesReceived.Add(uint64(len(frame.Payload)))
		// Each frame is served in its own goroutine so a slow handler
		// does not stall the frames pipelined behind it; replies
		// coalesce on the connection's writer. The frame payload
		// aliases body, which is recycled once the reply is encoded.
		inflight.Add(1)
		go func(frame tcpFrame, body []byte, h Handler, ok bool) {
			defer inflight.Done()
			pkt := Packet{From: Address(frame.From), To: e.addr, Kind: frame.Kind, Payload: frame.Payload}
			reply := tcpFrame{ID: frame.ID}
			if !ok {
				CountDrop(DropNoHandler)
				reply.Err = fmt.Sprintf("no handler for %q", frame.Kind)
			} else {
				out, err := h(context.Background(), pkt)
				if err != nil {
					reply.Err = err.Error()
				} else {
					reply.Payload = out
				}
			}
			if frame.OneWay {
				PutBuf(body)
				return
			}
			// Encode before recycling body: the handler's reply may alias
			// the request payload.
			rb := appendTCPFrame(GetBuf(), &reply)
			PutBuf(body)
			w.enqueue(rb, false)
		}(frame, body, h, ok)
	}
}

// serveGob handles one inbound v1 connection — the gob compatibility
// arm for peers that predate the binary framing.
func (e *TCPEndpoint) serveGob(conn net.Conn, br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	var inflight sync.WaitGroup
	defer inflight.Wait()
	for {
		var frame tcpFrame
		if err := dec.Decode(&frame); err != nil {
			// EOF is a connection simply closing; anything else is a
			// broken frame the sender will never hear about.
			if !errors.Is(err, io.EOF) {
				CountDrop(DropTCPDecode)
			}
			return
		}
		e.mu.Lock()
		h, ok := e.handlers[frame.Kind]
		closed := e.closed
		e.mu.Unlock()
		if closed {
			CountDrop(DropClosed)
			return
		}
		mMessagesReceived.Inc()
		mBytesReceived.Add(uint64(len(frame.Payload)))
		inflight.Add(1)
		go func(frame tcpFrame, h Handler, ok bool) {
			defer inflight.Done()
			pkt := Packet{From: Address(frame.From), To: e.addr, Kind: frame.Kind, Payload: frame.Payload}
			reply := tcpFrame{ID: frame.ID}
			if !ok {
				CountDrop(DropNoHandler)
				reply.Err = fmt.Sprintf("no handler for %q", frame.Kind)
			} else {
				out, err := h(context.Background(), pkt)
				if err != nil {
					reply.Err = err.Error()
				} else {
					reply.Payload = out
				}
			}
			if frame.OneWay {
				return
			}
			encMu.Lock()
			err := enc.Encode(&reply)
			encMu.Unlock()
			if err != nil {
				conn.Close() // wake the decode loop; the caller is gone
			}
		}(frame, h, ok)
	}
}

// Addr returns the endpoint's effective listen address.
func (e *TCPEndpoint) Addr() Address { return e.addr }

// Handle registers the handler for a message kind.
func (e *TCPEndpoint) Handle(kind string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h == nil {
		delete(e.handlers, kind)
		return
	}
	e.handlers[kind] = h
}

// getConn returns the pooled connection to a destination, dialing one if
// none exists. Dialing happens once per destination regardless of how
// many callers arrive concurrently; each caller waits under its own
// context.
func (e *TCPEndpoint) getConn(ctx context.Context, to Address) (*tcpConn, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	c, ok := e.conns[to]
	if !ok {
		c = &tcpConn{dialed: make(chan struct{}), pending: make(map[uint64]chan tcpFrame)}
		e.conns[to] = c
		e.wg.Add(1)
		go e.dialAndRead(c, to)
	}
	e.mu.Unlock()
	select {
	case <-c.dialed:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if c.dialErr != nil {
		return nil, c.dialErr
	}
	return c, nil
}

// dropConn removes a connection from the pool if it is still the pooled
// instance (a replacement may already have taken its slot).
func (e *TCPEndpoint) dropConn(to Address, c *tcpConn) {
	e.mu.Lock()
	if e.conns[to] == c {
		delete(e.conns, to)
	}
	e.mu.Unlock()
}

func (e *TCPEndpoint) dialAndRead(c *tcpConn, to Address) {
	defer e.wg.Done()
	d := net.Dialer{Timeout: tcpDialTimeout}
	conn, err := d.Dial("tcp", string(to))
	if err != nil {
		c.dialErr = fmt.Errorf("%w: %s: %v", ErrUnreachable, to, err)
		e.dropConn(to, c)
		close(c.dialed)
		return
	}
	c.conn = conn
	c.w = newTCPWriter(conn)
	// Announce the binary stream before the first frame. A failure here
	// means the connection is already broken; the read loop below finds
	// that out immediately and fails the pending callers.
	conn.Write([]byte{tcpMagic})
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	close(c.dialed)
	if closed {
		// The endpoint closed while dialing; the read loop below exits
		// immediately on the closed connection.
		conn.Close()
	}
	e.readLoop(c, to)
}

// readLoop dispatches reply frames to their waiting callers by ID. The
// reply stream format is sniffed like the serve side's: binary from a
// current peer, gob from a v1 one. On any decode error the connection
// is dead: it leaves the pool and every pending call fails.
func (e *TCPEndpoint) readLoop(c *tcpConn, to Address) {
	br := bufio.NewReaderSize(c.conn, tcpReadBuffer)
	first, err := br.Peek(1)
	if err != nil {
		e.dropConn(to, c)
		c.fail()
		return
	}
	if first[0] == tcpMagic {
		br.Discard(1)
		e.readLoopBinary(c, to, br)
		return
	}
	e.readLoopGob(c, to, br)
}

func (e *TCPEndpoint) readLoopBinary(c *tcpConn, to Address, br *bufio.Reader) {
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			e.dropConn(to, c)
			c.fail()
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		bad := n == 0 || int64(n) > MaxEnvelope+tcpFrameOverhead
		var body []byte
		if !bad {
			body = frameBuf(int(n))
			if _, err := io.ReadFull(br, body); err != nil {
				PutBuf(body)
				bad = true
			}
		}
		var frame tcpFrame
		if !bad && decodeTCPFrame(body, &frame) != nil {
			PutBuf(body)
			bad = true
		}
		if bad {
			CountDrop(DropTCPDecode)
			e.dropConn(to, c)
			c.fail()
			return
		}
		c.mu.Lock()
		ch := c.pending[frame.ID]
		delete(c.pending, frame.ID)
		c.mu.Unlock()
		if ch == nil {
			PutBuf(body) // caller gave up (context expired)
			continue
		}
		// The frame payload aliases body; ownership moves to the caller,
		// which may recycle it with PutBuf when done.
		ch <- frame // buffered; one reply per ID
	}
}

func (e *TCPEndpoint) readLoopGob(c *tcpConn, to Address, br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	for {
		var frame tcpFrame
		if err := dec.Decode(&frame); err != nil {
			e.dropConn(to, c)
			c.fail()
			return
		}
		c.mu.Lock()
		ch := c.pending[frame.ID]
		delete(c.pending, frame.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- frame // buffered; one reply per ID
		}
	}
}

// ship encodes frame into a pooled buffer, hands it to the connection's
// coalescing writer, and waits for the per-frame write outcome.
func (c *tcpConn) ship(ctx context.Context, frame *tcpFrame) (writeStatus, error) {
	pf := c.w.enqueue(appendTCPFrame(GetBuf(), frame), true)
	select {
	case <-pf.done:
		return pf.status, nil
	case <-ctx.Done():
		// The frame stays queued; whether it reaches the wire is now
		// unknowable, exactly like a frame written just before the
		// deadline. The caller's context owns the decision to stop.
		return writeAmbiguous, ctx.Err()
	}
}

// Send delivers a one-way message on the pooled connection.
func (e *TCPEndpoint) Send(ctx context.Context, to Address, kind string, payload []byte) error {
	if len(payload) > MaxEnvelope {
		CountDrop(DropOversized)
		return fmt.Errorf("%w: %d bytes to %s", ErrTooLarge, len(payload), to)
	}
	frame := tcpFrame{From: string(e.addr), Kind: kind, Payload: payload, OneWay: true}
	for attempt := 0; ; attempt++ {
		c, err := e.getConn(ctx, to)
		if err != nil {
			return err
		}
		status, err := c.ship(ctx, &frame)
		if err != nil {
			return err
		}
		switch status {
		case writeDone:
			mMessagesSent.Inc()
			mBytesSent.Add(uint64(len(payload)))
			return nil
		case writeFailed:
			// No byte of the frame was written (the usual cause is a peer
			// that closed the idle pooled connection, e.g. after a
			// restart): safe to resend once on a fresh connection.
			e.dropConn(to, c)
			c.conn.Close()
			if attempt == 0 {
				continue
			}
			return fmt.Errorf("transport: send to %s: connection lost", to)
		default:
			// The coalesced write died inside this frame: part of it is
			// on the wire, so resending could deliver it twice. No retry.
			e.dropConn(to, c)
			c.conn.Close()
			return fmt.Errorf("transport: send to %s: connection lost mid-write", to)
		}
	}
}

// Call performs a request/reply round-trip, pipelined with any other
// calls in flight to the same destination — their frames coalesce into
// batched writes on the shared connection.
func (e *TCPEndpoint) Call(ctx context.Context, to Address, kind string, payload []byte) ([]byte, error) {
	if len(payload) > MaxEnvelope {
		CountDrop(DropOversized)
		return nil, fmt.Errorf("%w: %d bytes to %s", ErrTooLarge, len(payload), to)
	}
	frame := tcpFrame{From: string(e.addr), Kind: kind, Payload: payload}
	for attempt := 0; ; attempt++ {
		c, err := e.getConn(ctx, to)
		if err != nil {
			return nil, err
		}
		id, ch, ok := c.register()
		if !ok {
			// Known-dead pooled connection; redial once.
			if attempt == 0 {
				continue
			}
			return nil, fmt.Errorf("%w: %s: connection lost", ErrUnreachable, to)
		}
		frame.ID = id
		status, err := c.ship(ctx, &frame)
		if err != nil {
			c.unregister(id)
			return nil, err
		}
		switch status {
		case writeFailed:
			// The frame never touched the wire: safe to resend once on a
			// fresh connection.
			c.unregister(id)
			e.dropConn(to, c)
			c.conn.Close()
			if attempt == 0 {
				continue
			}
			return nil, fmt.Errorf("transport: send to %s: connection lost", to)
		case writeAmbiguous:
			// The coalesced write died inside this frame; the peer may
			// have received and served it. The handler may or may not
			// have run, so no retry: at-most-once stays with the upper
			// layers.
			c.unregister(id)
			e.dropConn(to, c)
			c.conn.Close()
			return nil, fmt.Errorf("%w: %s: connection lost mid-write", ErrUnreachable, to)
		}
		mMessagesSent.Inc()
		mBytesSent.Add(uint64(len(payload)))
		select {
		case reply, alive := <-ch:
			if !alive {
				// The frame was written but the connection died before a
				// reply arrived. The handler may or may not have run, so
				// no retry: at-most-once stays with the upper layers.
				return nil, fmt.Errorf("%w: %s: connection lost", ErrUnreachable, to)
			}
			if reply.Err != "" {
				return nil, fmt.Errorf("%w: %s", ErrRemote, reply.Err)
			}
			mMessagesReceived.Inc()
			mBytesReceived.Add(uint64(len(reply.Payload)))
			return reply.Payload, nil
		case <-ctx.Done():
			c.unregister(id)
			return nil, ctx.Err()
		}
	}
}

// Close stops the listener, tears down the pooled connections, and waits
// for in-flight handlers.
func (e *TCPEndpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	conns := e.conns
	e.conns = make(map[Address]*tcpConn)
	inbound := make([]net.Conn, 0, len(e.inbound))
	for c := range e.inbound {
		inbound = append(inbound, c)
	}
	e.mu.Unlock()
	err := e.listener.Close()
	for _, c := range inbound {
		c.Close()
	}
	for _, c := range conns {
		<-c.dialed // dialing is bounded by tcpDialTimeout
		if c.conn != nil {
			c.conn.Close()
		}
	}
	e.wg.Wait()
	return err
}
