package transport

import "sync"

// Pooled encode buffers and a string intern cache: the two allocation
// sinks shared by every fast codec. Message encoding used to allocate a
// fresh buffer per message and message decoding a fresh string per
// identifier field; at hundreds of thousands of messages per second the
// garbage collector became a first-order cost on the request path, so
// both are recycled here.

const (
	// maxPooledBuf caps the capacity of a recycled buffer. Checkpoints
	// can reach MaxEnvelope; pooling those would pin large arrays on
	// behalf of the common small request/delta traffic.
	maxPooledBuf = 32 << 10
	// encFreeSlots bounds the pool so a burst cannot pin more than
	// encFreeSlots*maxPooledBuf bytes.
	encFreeSlots = 512
)

// encFree is a bounded free list of encode buffers. A channel (rather
// than sync.Pool) keeps the slice headers out of interface boxes: both
// Get and Put are allocation-free.
var encFree = make(chan []byte, encFreeSlots)

// GetBuf returns an empty byte buffer from the pool.
func GetBuf() []byte {
	select {
	case b := <-encFree:
		return b[:0]
	default:
		return make([]byte, 0, 512)
	}
}

// PutBuf recycles buf. The caller must hold the only live reference:
// after PutBuf the contents may be overwritten at any time. Oversized
// buffers are dropped so checkpoint-scale arrays are not pinned.
func PutBuf(buf []byte) {
	if cap(buf) == 0 || cap(buf) > maxPooledBuf {
		return
	}
	select {
	case encFree <- buf[:0]:
	default:
	}
}

// internShards is a sharded canonical-string cache. Identifier-like
// wire fields (client IDs, operation names, message kinds, addresses)
// recur endlessly; decoding them through the cache makes the steady
// state allocation-free. The map lookup with a string([]byte) key
// compiles to a no-allocation access.
var internShards [16]internShard

type internShard struct {
	mu sync.RWMutex
	m  map[string]string
}

// maxInternedPerShard bounds each shard; beyond it new values are
// returned uncached so an adversarial key stream cannot grow the cache
// without bound.
const maxInternedPerShard = 1024

func init() {
	for i := range internShards {
		internShards[i].m = make(map[string]string, 64)
	}
}

func internShardFor(b []byte) *internShard {
	var h byte
	if len(b) > 0 {
		h = b[0] + byte(len(b))
	}
	return &internShards[h&15]
}

// Intern returns a canonical string equal to b, allocating only the
// first time a value is seen.
func Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	sh := internShardFor(b)
	sh.mu.RLock()
	s, ok := sh.m[string(b)]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	sh.mu.Lock()
	if len(sh.m) < maxInternedPerShard {
		sh.m[s] = s
	}
	sh.mu.Unlock()
	return s
}
