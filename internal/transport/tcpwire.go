package transport

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"
)

// Binary TCP framing and the coalescing writer.
//
// A v2 stream opens with one magic byte and then carries length-prefixed
// binary frames: [4-byte big-endian body length][body]. The magic byte
// cannot open a gob stream (gob's first byte is a message length — a
// single byte up to 0x7f, or a 0xFF/0xFE/0xFD byte-count marker for
// realistic message sizes), so a receiver sniffs one byte and serves
// either format: gob survives as the compatibility decode arm for peers
// that still speak v1.
//
// Frames from concurrent senders — a commit wave's checkpoint plus the
// request forwards and replies pipelined around it — coalesce in a
// per-connection write queue and leave in one writev-style
// net.Buffers write: one syscall per batch per peer instead of one per
// frame.

// tcpMagic opens a v2 stream in each direction.
const tcpMagic = 0xFB

// tcpFrameOverhead bounds the frame body minus payload: ID, flags and
// the three length-prefixed strings (From and Kind are addresses and
// kind names; Err is an error string).
const tcpFrameOverhead = 4 << 10

// Frame flag bits.
const (
	tcpFlagOneWay = 1 << 0
)

// appendTCPFrame appends f as one length-prefixed v2 frame.
func appendTCPFrame(buf []byte, f *tcpFrame) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length prefix, fixed below
	var flags byte
	if f.OneWay {
		flags |= tcpFlagOneWay
	}
	buf = AppendUvarint(buf, f.ID)
	buf = append(buf, flags)
	buf = AppendLenString(buf, f.From)
	buf = AppendLenString(buf, f.Kind)
	buf = AppendLenString(buf, f.Err)
	// The payload runs to the end of the body: the length prefix already
	// bounds it, so it carries no length of its own.
	buf = append(buf, f.Payload...)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// decodeTCPFrame decodes one v2 frame body in place: From, Kind and Err
// intern (tiny recurring sets), Payload aliases body. The caller owns
// body until the frame's consumer is done with it.
func decodeTCPFrame(body []byte, f *tcpFrame) error {
	var err error
	var flags byte
	if f.ID, body, err = ReadUvarint(body); err != nil {
		return fmt.Errorf("transport: frame id: %w", err)
	}
	if len(body) < 1 {
		return fmt.Errorf("transport: frame flags: %w", ErrShortBuffer)
	}
	flags, body = body[0], body[1:]
	f.OneWay = flags&tcpFlagOneWay != 0
	if f.From, body, err = ReadLenStringInterned(body); err != nil {
		return fmt.Errorf("transport: frame from: %w", err)
	}
	if f.Kind, body, err = ReadLenStringInterned(body); err != nil {
		return fmt.Errorf("transport: frame kind: %w", err)
	}
	if f.Err, body, err = ReadLenStringInterned(body); err != nil {
		return fmt.Errorf("transport: frame err: %w", err)
	}
	f.Payload = body
	return nil
}

// writeStatus is the per-frame outcome of a coalesced write. The
// three-way split is what keeps redial-once sound across a batch that
// failed midway: only a frame whose bytes never reached the connection
// may be re-shipped on a fresh one.
type writeStatus int32

const (
	// writeDone: the frame was fully handed to the connection.
	writeDone writeStatus = iota
	// writeFailed: no byte of the frame was written — safe to resend.
	writeFailed
	// writeAmbiguous: the batch write died inside this frame; some of
	// its bytes are on the wire, so resending could deliver it twice.
	writeAmbiguous
)

// pendingFrame is one queued frame. done (when non-nil) closes once
// status is decided; the writer owns buf and recycles it afterwards.
type pendingFrame struct {
	buf    []byte
	status writeStatus
	done   chan struct{}
}

func (p *pendingFrame) finish(s writeStatus) {
	p.status = s
	if p.done != nil {
		close(p.done)
	}
}

// tcpWriter coalesces outbound frames on one connection. Frames queue
// under mu; a single flusher drains the queue with one net.Buffers
// write per batch, so frames enqueued while a write is in flight leave
// together on the next one. A write error is sticky: the connection is
// closed (waking its read loop) and every later enqueue fails fast.
type tcpWriter struct {
	conn net.Conn

	mu       sync.Mutex
	queue    []*pendingFrame
	flushing bool
	err      error
}

func newTCPWriter(conn net.Conn) *tcpWriter {
	return &tcpWriter{conn: conn}
}

// enqueue hands buf to the writer (which owns and recycles it) and
// returns the pending frame. track asks for a done channel; reply
// writers skip it and rely on the sticky error alone.
func (w *tcpWriter) enqueue(buf []byte, track bool) *pendingFrame {
	pf := &pendingFrame{buf: buf}
	if track {
		pf.done = make(chan struct{})
	}
	w.mu.Lock()
	if w.err != nil {
		w.mu.Unlock()
		PutBuf(buf)
		pf.finish(writeFailed)
		return pf
	}
	w.queue = append(w.queue, pf)
	start := !w.flushing
	if start {
		w.flushing = true
	}
	w.mu.Unlock()
	if start {
		go w.flush()
	}
	return pf
}

// fail marks the writer broken without writing; queued frames resolve
// as never-written.
func (w *tcpWriter) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	q := w.queue
	w.queue = nil
	w.mu.Unlock()
	for _, pf := range q {
		PutBuf(pf.buf)
		pf.finish(writeFailed)
	}
}

// flush drains the queue, one coalesced write per batch, until the
// queue is empty or the connection broke.
func (w *tcpWriter) flush() {
	for {
		w.mu.Lock()
		if w.err != nil || len(w.queue) == 0 {
			w.flushing = false
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.mu.Unlock()

		bufs := make(net.Buffers, len(batch))
		for i, pf := range batch {
			bufs[i] = pf.buf
		}
		// One writev-style write for the whole batch. (WriteTo may split
		// a very large batch across several syscalls — the counter reads
		// as "batched writes", a lower bound on the syscalls saved.)
		_, err := bufs.WriteTo(w.conn)
		mWriteSyscalls.Inc()
		mFramesPerWrite.Observe(time.Duration(len(batch)))
		if err == nil {
			for _, pf := range batch {
				PutBuf(pf.buf)
				pf.finish(writeDone)
			}
			continue
		}
		// WriteTo consumed bufs as it wrote: fully-written frames left
		// the slice, a partially-written one leads it shortened. Split
		// the batch accordingly so redial-once upstream only re-ships
		// frames that never touched the wire.
		written := len(batch) - len(bufs)
		partial := len(bufs) > 0 && len(bufs[0]) != len(batch[written].buf)
		for i, pf := range batch {
			switch {
			case i < written:
				PutBuf(pf.buf)
				pf.finish(writeDone)
			case i == written && partial:
				PutBuf(pf.buf)
				pf.finish(writeAmbiguous)
			default:
				PutBuf(pf.buf)
				pf.finish(writeFailed)
			}
		}
		w.mu.Lock()
		if w.err == nil {
			w.err = err
		}
		rest := w.queue
		w.queue = nil
		w.mu.Unlock()
		for _, pf := range rest {
			PutBuf(pf.buf)
			pf.finish(writeFailed)
		}
		// Wake the connection's read loop so pending calls fail over.
		w.conn.Close()
		w.mu.Lock()
		w.flushing = false
		w.mu.Unlock()
		return
	}
}

// frameBuf returns a pooled buffer sized for a frame body of n bytes.
func frameBuf(n int) []byte {
	buf := GetBuf()
	if cap(buf) >= n {
		return buf[:n]
	}
	PutBuf(buf)
	return make([]byte, n)
}
