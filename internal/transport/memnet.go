package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// MemNetwork is an in-memory simulated network. Delivery incurs a
// configurable latency (with jitter), one-way messages can be lost with a
// configurable probability, and links between addresses can be
// partitioned — symmetrically or per direction — or degraded with
// per-direction gray-failure profiles (LinkFault). All randomness is
// seeded, so experiments are reproducible.
//
// Locking is split for concurrent request traffic: the routing state
// (endpoints, partitions, link faults) sits behind a read-mostly
// RWMutex, and the random source — only touched when jitter, loss or
// corruption are configured — has its own lock so that delivery of
// independent messages never serializes on it. The base
// latency/jitter/loss knobs are fixed at construction; partitions and
// link faults change at runtime.
type MemNetwork struct {
	mu        sync.RWMutex
	endpoints map[Address]*memEndpoint
	// partitions and links are keyed by direction: [from, to]. A
	// symmetric Partition writes both directions.
	partitions map[[2]Address]bool
	links      map[[2]Address]LinkFault

	latency  time.Duration
	jitter   time.Duration
	lossRate float64

	rngMu sync.Mutex
	rng   *rand.Rand
}

// LinkFault is a per-direction gray-failure profile: the link stays up —
// routing succeeds — but deliveries over it are slow, lossy or corrupt.
// The zero value is a clean link.
type LinkFault struct {
	// ExtraLatency is added to the network's base latency on this link.
	ExtraLatency time.Duration
	// Jitter adds up to this much extra random latency per delivery.
	Jitter time.Duration
	// Loss is the drop probability for one-way sends over this link,
	// added to the network's base loss rate.
	Loss float64
	// DropCalls is the probability that a call leg over this link
	// vanishes. On the request leg the handler never runs; on the reply
	// leg (the reverse-direction link) the handler HAS executed and only
	// the caller is left in the dark — the executed-but-unacknowledged
	// shape that retry deduplication exists for.
	DropCalls float64
	// Corrupt is the probability that a delivered payload has a few
	// random bits flipped before the handler sees it.
	Corrupt float64
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork)

// WithLatency sets the base one-way delivery latency.
func WithLatency(d time.Duration) MemOption {
	return func(n *MemNetwork) { n.latency = d }
}

// WithJitter sets the maximum extra random latency per delivery.
func WithJitter(d time.Duration) MemOption {
	return func(n *MemNetwork) { n.jitter = d }
}

// WithLoss sets the loss probability (0..1) for one-way messages.
func WithLoss(p float64) MemOption {
	return func(n *MemNetwork) { n.lossRate = p }
}

// WithSeed seeds the network's random source.
func WithSeed(seed int64) MemOption {
	return func(n *MemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// NewMemNetwork returns a simulated network.
func NewMemNetwork(opts ...MemOption) *MemNetwork {
	n := &MemNetwork{
		endpoints:  make(map[Address]*memEndpoint),
		rng:        rand.New(rand.NewSource(1)),
		partitions: make(map[[2]Address]bool),
		links:      make(map[[2]Address]LinkFault),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint attaches a new endpoint at addr. An address whose previous
// endpoint was closed may be reused — that is how a restarted host
// reclaims its address.
func (n *MemNetwork) Endpoint(addr Address) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if prev, ok := n.endpoints[addr]; ok && !prev.isClosed() {
		return nil, fmt.Errorf("transport: address %q already attached", addr)
	}
	ep := &memEndpoint{net: n, addr: addr, handlers: make(map[string]Handler)}
	n.endpoints[addr] = ep
	return ep, nil
}

// Partition blocks traffic between a and b in both directions.
func (n *MemNetwork) Partition(a, b Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[[2]Address{a, b}] = true
	n.partitions[[2]Address{b, a}] = true
}

// PartitionOneWay blocks traffic from from to to only; to can still
// reach from — the asymmetric-link shape of a gray network failure,
// where e.g. a peer's heartbeats arrive while deliveries to it vanish.
func (n *MemNetwork) PartitionOneWay(from, to Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[[2]Address{from, to}] = true
}

// Heal restores traffic between a and b in both directions.
func (n *MemNetwork) Heal(a, b Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, [2]Address{a, b})
	delete(n.partitions, [2]Address{b, a})
}

// HealOneWay restores traffic from from to to only.
func (n *MemNetwork) HealOneWay(from, to Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, [2]Address{from, to})
}

// HealAll removes every partition.
func (n *MemNetwork) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions = make(map[[2]Address]bool)
}

// Partitioned reports whether from->to traffic is currently blocked.
func (n *MemNetwork) Partitioned(from, to Address) bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.partitions[[2]Address{from, to}]
}

// SetLinkFault installs (or replaces) the gray-failure profile on the
// directional link from->to.
func (n *MemNetwork) SetLinkFault(from, to Address, f LinkFault) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[[2]Address{from, to}] = f
}

// ClearLinkFault removes the fault profile on the directional link
// from->to.
func (n *MemNetwork) ClearLinkFault(from, to Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, [2]Address{from, to})
}

// ClearLinkFaults removes every link-fault profile.
func (n *MemNetwork) ClearLinkFaults() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links = make(map[[2]Address]LinkFault)
}

// Stats returns the traffic counters of addr.
func (n *MemNetwork) Stats(addr Address) Stats {
	n.mu.RLock()
	ep, ok := n.endpoints[addr]
	n.mu.RUnlock()
	if !ok {
		return Stats{}
	}
	return ep.statsSnapshot()
}

// routeInfo is a resolved directional hop: where the packet goes, how
// long it takes, and whether the link's faults drop or corrupt it.
type routeInfo struct {
	target  *memEndpoint
	delay   time.Duration
	dropped bool
	corrupt bool
}

// route resolves delivery of a packet over the directional link
// from->to: the target endpoint or an error, plus the delay to impose
// and whether the link's loss/corruption faults hit this delivery.
func (n *MemNetwork) route(from, to Address, oneWay bool) (routeInfo, error) {
	n.mu.RLock()
	partitioned := n.partitions[[2]Address{from, to}]
	lf, gray := n.links[[2]Address{from, to}]
	target, ok := n.endpoints[to]
	n.mu.RUnlock()
	if partitioned {
		CountDrop(DropPartition)
		return routeInfo{}, fmt.Errorf("%w: %s -> %s (partitioned)", ErrUnreachable, from, to)
	}
	if !ok || target.isClosed() {
		CountDrop(DropUnreachable)
		return routeInfo{}, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	ri := routeInfo{target: target, delay: n.latency}
	jitter := n.jitter
	var loss float64
	if oneWay {
		loss = n.lossRate
	}
	if gray {
		ri.delay += lf.ExtraLatency
		jitter += lf.Jitter
		if oneWay {
			loss += lf.Loss
		} else {
			loss += lf.DropCalls
		}
	}
	if jitter > 0 || loss > 0 || (gray && lf.Corrupt > 0) {
		n.rngMu.Lock()
		if jitter > 0 {
			ri.delay += time.Duration(n.rng.Int63n(int64(jitter)))
		}
		ri.dropped = loss > 0 && n.rng.Float64() < loss
		ri.corrupt = gray && lf.Corrupt > 0 && n.rng.Float64() < lf.Corrupt
		n.rngMu.Unlock()
	}
	return ri, nil
}

// replyRoute resolves the reverse leg of a call — the delay to impose on
// the reply and whether it is lost to a partition or link fault cutting
// the from->to direction. By the time it is consulted the handler has
// already executed: a lost reply leaves the caller uncertain while the
// effect stands, which is exactly the ambiguity at-most-once retry
// machinery must absorb.
func (n *MemNetwork) replyRoute(from, to Address) (time.Duration, bool) {
	n.mu.RLock()
	partitioned := n.partitions[[2]Address{from, to}]
	lf, gray := n.links[[2]Address{from, to}]
	n.mu.RUnlock()
	if partitioned {
		CountDrop(DropPartition)
		return 0, true
	}
	delay := n.latency
	jitter := n.jitter
	var loss float64
	if gray {
		delay += lf.ExtraLatency
		jitter += lf.Jitter
		loss = lf.DropCalls
	}
	if jitter > 0 || loss > 0 {
		n.rngMu.Lock()
		if jitter > 0 {
			delay += time.Duration(n.rng.Int63n(int64(jitter)))
		}
		if loss > 0 && n.rng.Float64() < loss {
			n.rngMu.Unlock()
			CountDrop(DropCallLoss)
			return 0, true
		}
		n.rngMu.Unlock()
	}
	return delay, false
}

// corruptPayload flips a few seeded-random bits of b in place and
// accounts for the corruption. Chaos campaigns replay identically under
// the same network seed.
func (n *MemNetwork) corruptPayload(b []byte) {
	if len(b) == 0 {
		return
	}
	n.rngMu.Lock()
	flips := 1 + n.rng.Intn(3)
	for i := 0; i < flips; i++ {
		b[n.rng.Intn(len(b))] ^= 1 << uint(n.rng.Intn(8))
	}
	n.rngMu.Unlock()
	mCorrupted.Inc()
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// epStats holds an endpoint's traffic counters as atomics so accounting
// on the message hot path never takes a lock.
type epStats struct {
	messagesSent     atomic.Uint64
	messagesReceived atomic.Uint64
	bytesSent        atomic.Uint64
	bytesReceived    atomic.Uint64
}

type memEndpoint struct {
	net  *MemNetwork
	addr Address

	mu       sync.RWMutex
	handlers map[string]Handler

	closed atomic.Bool
	stats  epStats
}

var _ Endpoint = (*memEndpoint)(nil)

func (e *memEndpoint) Addr() Address { return e.addr }

func (e *memEndpoint) Handle(kind string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h == nil {
		delete(e.handlers, kind)
		return
	}
	e.handlers[kind] = h
}

func (e *memEndpoint) handler(kind string) (Handler, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	e.mu.RLock()
	h, ok := e.handlers[kind]
	e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q at %s", ErrNoHandler, kind, e.addr)
	}
	return h, nil
}

func (e *memEndpoint) isClosed() bool { return e.closed.Load() }

func (e *memEndpoint) accountSent(bytes int) {
	e.stats.messagesSent.Add(1)
	e.stats.bytesSent.Add(uint64(bytes))
	mMessagesSent.Inc()
	mBytesSent.Add(uint64(bytes))
}

func (e *memEndpoint) accountReceived(bytes int) {
	e.stats.messagesReceived.Add(1)
	e.stats.bytesReceived.Add(uint64(bytes))
	mMessagesReceived.Inc()
	mBytesReceived.Add(uint64(bytes))
}

func (e *memEndpoint) statsSnapshot() Stats {
	return Stats{
		MessagesSent:     e.stats.messagesSent.Load(),
		MessagesReceived: e.stats.messagesReceived.Load(),
		BytesSent:        e.stats.bytesSent.Load(),
		BytesReceived:    e.stats.bytesReceived.Load(),
	}
}

func (e *memEndpoint) Send(ctx context.Context, to Address, kind string, payload []byte) error {
	if e.isClosed() {
		CountDrop(DropClosed)
		return ErrClosed
	}
	if len(payload) > MaxEnvelope {
		CountDrop(DropOversized)
		return fmt.Errorf("%w: %d bytes to %s", ErrTooLarge, len(payload), to)
	}
	ri, err := e.net.route(e.addr, to, true)
	if err != nil {
		return err
	}
	e.accountSent(len(payload))
	if ri.dropped {
		CountDrop(DropLoss)
		return nil // fire-and-forget loss is silent, like UDP
	}
	// The delivery is asynchronous, so the payload is copied once to
	// decouple it from any buffer the caller reuses.
	pkt := Packet{From: e.addr, To: to, Kind: kind, Payload: append([]byte(nil), payload...)}
	if ri.corrupt {
		e.net.corruptPayload(pkt.Payload)
	}
	target, delay := ri.target, ri.delay
	go func() {
		if err := sleepCtx(context.Background(), delay); err != nil {
			return
		}
		h, err := target.handler(kind)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				CountDrop(DropClosed)
			} else {
				CountDrop(DropNoHandler)
			}
			return
		}
		target.accountReceived(len(pkt.Payload))
		_, _ = h(context.Background(), pkt)
	}()
	return nil
}

func (e *memEndpoint) Call(ctx context.Context, to Address, kind string, payload []byte) ([]byte, error) {
	if e.isClosed() {
		CountDrop(DropClosed)
		return nil, ErrClosed
	}
	if len(payload) > MaxEnvelope {
		CountDrop(DropOversized)
		return nil, fmt.Errorf("%w: %d bytes to %s", ErrTooLarge, len(payload), to)
	}
	ri, err := e.net.route(e.addr, to, false)
	if err != nil {
		return nil, err
	}
	e.accountSent(len(payload))
	if ri.dropped {
		// The request leg vanished before dispatch: the handler never
		// runs, and the caller sees the same unreachability a timeout
		// would surface — retry-safe.
		CountDrop(DropCallLoss)
		return nil, fmt.Errorf("%w: %s -> %s (call lost)", ErrUnreachable, e.addr, to)
	}
	target, delay := ri.target, ri.delay
	if err := sleepCtx(ctx, delay); err != nil {
		return nil, err
	}
	h, err := target.handler(kind)
	if err != nil {
		if errors.Is(err, ErrClosed) {
			CountDrop(DropClosed)
		} else {
			CountDrop(DropNoHandler)
		}
		return nil, err
	}
	if target.isClosed() {
		CountDrop(DropUnreachable)
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	// The caller blocks for the reply, so the payload travels without a
	// defensive copy — unless corruption must mutate it, which may not
	// touch the caller's buffer.
	body := payload
	if ri.corrupt {
		body = append([]byte(nil), payload...)
		e.net.corruptPayload(body)
	}
	pkt := Packet{From: e.addr, To: to, Kind: kind, Payload: body}
	target.accountReceived(len(pkt.Payload))

	done := getCallSlot()
	dispatchCall(callTask{ctx: ctx, h: h, pkt: pkt, done: done})
	select {
	case <-ctx.Done():
		// The abandoned handler still owns the slot; it is garbage, not
		// pooled.
		return nil, ctx.Err()
	case r := <-done:
		putCallSlot(done)
		if r.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRemote, r.err)
		}
		// The remote produced and sent the reply at this point: account
		// for it before modelling its transit delay, so a caller that
		// gives up mid-flight still observes the received traffic. The
		// reply travels the reverse link, which carries its own
		// partition and fault state — losing it here models
		// executed-but-unacknowledged calls.
		e.accountReceived(len(r.reply))
		replyDelay, lost := e.net.replyRoute(to, e.addr)
		if lost {
			return nil, fmt.Errorf("%w: %s -> %s (reply lost)", ErrUnreachable, to, e.addr)
		}
		if err := sleepCtx(ctx, replyDelay); err != nil {
			return nil, err
		}
		return r.reply, nil
	}
}

// callResult carries a handler's reply to the blocked caller.
type callResult struct {
	reply []byte
	err   error
}

// callSlots recycles the per-call result channels of the simulated
// network; like the encode-buffer pool it is a plain channel so neither
// Get nor Put boxes anything. A call abandoned on context expiry leaks
// its slot to the garbage collector rather than risking a stale send
// into a reused channel.
var callSlots = make(chan chan callResult, 256)

func getCallSlot() chan callResult {
	select {
	case c := <-callSlots:
		return c
	default:
		return make(chan callResult, 1)
	}
}

func putCallSlot(c chan callResult) {
	select {
	case callSlots <- c:
	default:
	}
}

// callTask is one handler invocation dispatched to a worker.
type callTask struct {
	ctx  context.Context
	h    Handler
	pkt  Packet
	done chan callResult
}

// callWorkers parks idle worker goroutines. Handler call chains run deep
// (a replica's component pipeline), so a goroutine spawned per call pays
// runtime.newstack on every request; a parked worker keeps its grown
// stack warm across calls. Dispatch never blocks — when no worker is
// parked a new one is spawned — so a handler that issues nested Calls
// cannot deadlock the pool.
var callWorkers = make(chan chan callTask, 64)

func dispatchCall(t callTask) {
	select {
	case w := <-callWorkers:
		w <- t
	default:
		go callWorker(t)
	}
}

// callWorker runs its first task, then parks for more; it exits when the
// parking lot is full.
func callWorker(t callTask) {
	ch := make(chan callTask)
	for {
		reply, err := t.h(t.ctx, t.pkt)
		t.done <- callResult{reply: reply, err: err}
		t = callTask{} // drop references while parked
		select {
		case callWorkers <- ch:
			t = <-ch
		default:
			return
		}
	}
}

func (e *memEndpoint) Close() error {
	e.closed.Store(true)
	return nil
}
