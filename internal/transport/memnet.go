package transport

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// MemNetwork is an in-memory simulated network. Delivery incurs a
// configurable latency (with jitter), one-way messages can be lost with a
// configurable probability, and pairs of addresses can be partitioned.
// All randomness is seeded, so experiments are reproducible.
type MemNetwork struct {
	mu         sync.Mutex
	endpoints  map[Address]*memEndpoint
	latency    time.Duration
	jitter     time.Duration
	lossRate   float64
	rng        *rand.Rand
	partitions map[[2]Address]bool
}

// MemOption configures a MemNetwork.
type MemOption func(*MemNetwork)

// WithLatency sets the base one-way delivery latency.
func WithLatency(d time.Duration) MemOption {
	return func(n *MemNetwork) { n.latency = d }
}

// WithJitter sets the maximum extra random latency per delivery.
func WithJitter(d time.Duration) MemOption {
	return func(n *MemNetwork) { n.jitter = d }
}

// WithLoss sets the loss probability (0..1) for one-way messages.
func WithLoss(p float64) MemOption {
	return func(n *MemNetwork) { n.lossRate = p }
}

// WithSeed seeds the network's random source.
func WithSeed(seed int64) MemOption {
	return func(n *MemNetwork) { n.rng = rand.New(rand.NewSource(seed)) }
}

// NewMemNetwork returns a simulated network.
func NewMemNetwork(opts ...MemOption) *MemNetwork {
	n := &MemNetwork{
		endpoints:  make(map[Address]*memEndpoint),
		rng:        rand.New(rand.NewSource(1)),
		partitions: make(map[[2]Address]bool),
	}
	for _, o := range opts {
		o(n)
	}
	return n
}

// Endpoint attaches a new endpoint at addr. An address whose previous
// endpoint was closed may be reused — that is how a restarted host
// reclaims its address.
func (n *MemNetwork) Endpoint(addr Address) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if prev, ok := n.endpoints[addr]; ok && !prev.isClosed() {
		return nil, fmt.Errorf("transport: address %q already attached", addr)
	}
	ep := &memEndpoint{net: n, addr: addr, handlers: make(map[string]Handler)}
	n.endpoints[addr] = ep
	return ep, nil
}

// Partition blocks traffic between a and b in both directions.
func (n *MemNetwork) Partition(a, b Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pairKey(a, b)] = true
}

// Heal restores traffic between a and b.
func (n *MemNetwork) Heal(a, b Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pairKey(a, b))
}

// HealAll removes every partition.
func (n *MemNetwork) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions = make(map[[2]Address]bool)
}

func pairKey(a, b Address) [2]Address {
	if a > b {
		a, b = b, a
	}
	return [2]Address{a, b}
}

// Stats returns the traffic counters of addr.
func (n *MemNetwork) Stats(addr Address) Stats {
	n.mu.Lock()
	ep, ok := n.endpoints[addr]
	n.mu.Unlock()
	if !ok {
		return Stats{}
	}
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.stats
}

// route resolves delivery of a packet: the target endpoint or an error,
// plus the delay to impose and whether a lossy send drops the packet.
func (n *MemNetwork) route(from, to Address, oneWay bool) (*memEndpoint, time.Duration, bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.partitions[pairKey(from, to)] {
		return nil, 0, false, fmt.Errorf("%w: %s -> %s (partitioned)", ErrUnreachable, from, to)
	}
	target, ok := n.endpoints[to]
	if !ok || target.isClosed() {
		return nil, 0, false, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	delay := n.latency
	if n.jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.jitter)))
	}
	dropped := oneWay && n.lossRate > 0 && n.rng.Float64() < n.lossRate
	return target, delay, dropped, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

type memEndpoint struct {
	net  *MemNetwork
	addr Address

	mu       sync.Mutex
	handlers map[string]Handler
	closed   bool
	stats    Stats
}

var _ Endpoint = (*memEndpoint)(nil)

func (e *memEndpoint) Addr() Address { return e.addr }

func (e *memEndpoint) Handle(kind string, h Handler) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if h == nil {
		delete(e.handlers, kind)
		return
	}
	e.handlers[kind] = h
}

func (e *memEndpoint) handler(kind string) (Handler, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	h, ok := e.handlers[kind]
	if !ok {
		return nil, fmt.Errorf("%w: %q at %s", ErrNoHandler, kind, e.addr)
	}
	return h, nil
}

func (e *memEndpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

func (e *memEndpoint) account(send bool, bytes int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if send {
		e.stats.MessagesSent++
		e.stats.BytesSent += uint64(bytes)
	} else {
		e.stats.MessagesReceived++
		e.stats.BytesReceived += uint64(bytes)
	}
}

func (e *memEndpoint) Send(ctx context.Context, to Address, kind string, payload []byte) error {
	if e.isClosed() {
		return ErrClosed
	}
	target, delay, dropped, err := e.net.route(e.addr, to, true)
	if err != nil {
		return err
	}
	e.account(true, len(payload))
	if dropped {
		return nil // fire-and-forget loss is silent, like UDP
	}
	pkt := Packet{From: e.addr, To: to, Kind: kind, Payload: append([]byte(nil), payload...)}
	go func() {
		if err := sleepCtx(context.Background(), delay); err != nil {
			return
		}
		h, err := target.handler(kind)
		if err != nil {
			return
		}
		target.account(false, len(pkt.Payload))
		_, _ = h(context.Background(), pkt)
	}()
	return nil
}

func (e *memEndpoint) Call(ctx context.Context, to Address, kind string, payload []byte) ([]byte, error) {
	if e.isClosed() {
		return nil, ErrClosed
	}
	target, delay, _, err := e.net.route(e.addr, to, false)
	if err != nil {
		return nil, err
	}
	e.account(true, len(payload))
	if err := sleepCtx(ctx, delay); err != nil {
		return nil, err
	}
	h, err := target.handler(kind)
	if err != nil {
		return nil, err
	}
	if target.isClosed() {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	pkt := Packet{From: e.addr, To: to, Kind: kind, Payload: append([]byte(nil), payload...)}
	target.account(false, len(pkt.Payload))

	type result struct {
		reply []byte
		err   error
	}
	done := make(chan result, 1)
	go func() {
		reply, err := h(ctx, pkt)
		done <- result{reply: reply, err: err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case r := <-done:
		if r.err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRemote, r.err)
		}
		if err := sleepCtx(ctx, delay); err != nil {
			return nil, err
		}
		e.account(false, len(r.reply))
		return r.reply, nil
	}
}

func (e *memEndpoint) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.closed = true
	return nil
}
