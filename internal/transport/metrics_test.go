package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDropCountersCoverDiscardPaths exercises every way the in-memory
// transport discards a message and checks each one is accounted under
// its reason instead of vanishing.
func TestDropCountersCoverDiscardPaths(t *testing.T) {
	ctx := context.Background()

	t.Run("loss", func(t *testing.T) {
		before := DropCount(DropLoss)
		net := NewMemNetwork(WithLoss(1.0), WithSeed(7))
		a, _ := net.Endpoint("a")
		b, _ := net.Endpoint("b")
		b.Handle("k", func(ctx context.Context, p Packet) ([]byte, error) { return nil, nil })
		if err := a.Send(ctx, "b", "k", []byte("x")); err != nil {
			t.Fatal(err)
		}
		if DropCount(DropLoss) != before+1 {
			t.Fatalf("loss drop not counted")
		}
	})

	t.Run("partition", func(t *testing.T) {
		before := DropCount(DropPartition)
		net := NewMemNetwork()
		a, _ := net.Endpoint("a")
		if _, err := net.Endpoint("b"); err != nil {
			t.Fatal(err)
		}
		net.Partition("a", "b")
		if err := a.Send(ctx, "b", "k", []byte("x")); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("send through partition: %v", err)
		}
		if DropCount(DropPartition) != before+1 {
			t.Fatalf("partition drop not counted")
		}
	})

	t.Run("unreachable", func(t *testing.T) {
		before := DropCount(DropUnreachable)
		net := NewMemNetwork()
		a, _ := net.Endpoint("a")
		if _, err := a.Call(ctx, "nobody", "k", []byte("x")); !errors.Is(err, ErrUnreachable) {
			t.Fatalf("call to nobody: %v", err)
		}
		if DropCount(DropUnreachable) != before+1 {
			t.Fatalf("unreachable drop not counted")
		}
	})

	t.Run("closed sender", func(t *testing.T) {
		before := DropCount(DropClosed)
		net := NewMemNetwork()
		a, _ := net.Endpoint("a")
		a.Close()
		if err := a.Send(ctx, "b", "k", []byte("x")); !errors.Is(err, ErrClosed) {
			t.Fatalf("send on closed endpoint: %v", err)
		}
		if DropCount(DropClosed) != before+1 {
			t.Fatalf("closed drop not counted")
		}
	})

	t.Run("no handler", func(t *testing.T) {
		before := DropCount(DropNoHandler)
		net := NewMemNetwork()
		a, _ := net.Endpoint("a")
		if _, err := net.Endpoint("b"); err != nil {
			t.Fatal(err)
		}
		if _, err := a.Call(ctx, "b", "unknown", []byte("x")); !errors.Is(err, ErrNoHandler) {
			t.Fatalf("call without handler: %v", err)
		}
		if DropCount(DropNoHandler) != before+1 {
			t.Fatalf("no-handler drop not counted")
		}
	})

	t.Run("oversized", func(t *testing.T) {
		before := DropCount(DropOversized)
		net := NewMemNetwork()
		a, _ := net.Endpoint("a")
		b, _ := net.Endpoint("b")
		b.Handle("k", func(ctx context.Context, p Packet) ([]byte, error) { return nil, nil })
		big := make([]byte, MaxEnvelope+1)
		if err := a.Send(ctx, "b", "k", big); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("oversized send: %v", err)
		}
		if _, err := a.Call(ctx, "b", "k", big); !errors.Is(err, ErrTooLarge) {
			t.Fatalf("oversized call: %v", err)
		}
		if DropCount(DropOversized) != before+2 {
			t.Fatalf("oversized drops not counted")
		}
	})

	t.Run("codec mismatch", func(t *testing.T) {
		before := DropCount(DropCodecMismatch)
		// Fast-coded bytes decoded into a type without DecodeFast.
		data := []byte{fastTag, 0x01, 0x02}
		var s string
		if err := Decode(data, &s); err == nil {
			t.Fatal("expected codec mismatch error")
		}
		if DropCount(DropCodecMismatch) != before+1 {
			t.Fatalf("codec-mismatch drop not counted")
		}
	})
}

// TestTrafficCountersAccumulate checks the process-wide traffic series
// move with endpoint traffic.
func TestTrafficCountersAccumulate(t *testing.T) {
	sentBefore := mMessagesSent.Value()
	bytesBefore := mBytesSent.Value()

	net := NewMemNetwork()
	a, _ := net.Endpoint("ta")
	b, _ := net.Endpoint("tb")
	b.Handle("echo", func(ctx context.Context, p Packet) ([]byte, error) { return p.Payload, nil })
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	payload := []byte("hello")
	if _, err := a.Call(ctx, "tb", "echo", payload); err != nil {
		t.Fatal(err)
	}
	if mMessagesSent.Value() < sentBefore+1 {
		t.Fatal("messages_sent did not advance")
	}
	if mBytesSent.Value() < bytesBefore+uint64(len(payload)) {
		t.Fatal("bytes_sent did not advance")
	}
}
