package adaptation

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/fscript"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/telemetry"
)

// StepTimings breaks a transition into the paper's three steps
// (Figure 9): transition-package deployment, reconfiguration-script
// execution, residual-package removal.
type StepTimings struct {
	Deploy time.Duration
	Script time.Duration
	Remove time.Duration
}

// Total returns the summed step time.
func (s StepTimings) Total() time.Duration { return s.Deploy + s.Script + s.Remove }

// ReplicaReport is the outcome of one replica's transition.
type ReplicaReport struct {
	Host     string
	Role     core.Role
	Replaced []string
	Steps    StepTimings
	// Killed reports fail-silent enforcement: the script raised an
	// exception and the replica was killed (§5.3).
	Killed bool
	Err    error
}

// Report is the outcome of a system-wide transition.
type Report struct {
	System   string
	From, To core.ID
	Replicas []ReplicaReport
}

// Succeeded reports whether every replica transitioned.
func (r *Report) Succeeded() bool {
	if len(r.Replicas) == 0 {
		return false
	}
	for _, rep := range r.Replicas {
		if rep.Err != nil {
			return false
		}
	}
	return true
}

// MaxSteps returns the slowest replica's step timings (transitions run
// in parallel on the replicas; the paper reports one replica's time).
func (r *Report) MaxSteps() StepTimings {
	var out StepTimings
	for _, rep := range r.Replicas {
		if rep.Steps.Total() > out.Total() {
			out = rep.Steps
		}
	}
	return out
}

// Engine is the Adaptation Engine: it fetches transition packages from
// the repository and orchestrates differential on-line transitions over
// the replicas of a running system.
type Engine struct {
	repo *Repository
}

// NewEngine returns an engine over a repository.
func NewEngine(repo *Repository) *Engine {
	if repo == nil {
		repo = NewRepository()
	}
	return &Engine{repo: repo}
}

// Repository returns the engine's package repository.
func (e *Engine) Repository() *Repository { return e.repo }

// TransitionSystem executes the differential transition current→to on
// every live replica of the system, in parallel (paper §6.1). A replica
// whose script fails is killed (fail-silent); the transition then reports
// an error but the surviving replica, already reconfigured or not yet
// touched, carries on under the failure detector's authority.
func (e *Engine) TransitionSystem(ctx context.Context, sys *ftm.System, to core.ID) (*Report, error) {
	replicas := sys.Replicas()
	return e.TransitionReplicas(ctx, replicas[:], to)
}

// TransitionCluster executes the transition on every live member of a
// multi-replica group.
func (e *Engine) TransitionCluster(ctx context.Context, c *ftm.Cluster, to core.ID) (*Report, error) {
	return e.TransitionReplicas(ctx, c.Replicas(), to)
}

// TransitionReplicas executes the transition on every live replica of
// the given set, in parallel.
func (e *Engine) TransitionReplicas(ctx context.Context, replicas []*ftm.Replica, to core.ID) (*Report, error) {
	var live []*ftm.Replica
	for _, r := range replicas {
		if r != nil && !r.Host().Crashed() {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("adaptation: no live replicas")
	}
	report := &Report{System: live[0].System(), From: live[0].FTM(), To: to}
	report.Replicas = make([]ReplicaReport, len(live))

	var wg sync.WaitGroup
	for i, r := range live {
		wg.Add(1)
		go func(i int, r *ftm.Replica) {
			defer wg.Done()
			report.Replicas[i] = e.TransitionReplica(ctx, r, to)
		}(i, r)
	}
	wg.Wait()

	var errs []error
	for _, rep := range report.Replicas {
		if rep.Err != nil {
			errs = append(errs, fmt.Errorf("replica %s: %w", rep.Host, rep.Err))
		}
	}
	if len(errs) > 0 {
		return report, errors.Join(errs...)
	}
	return report, nil
}

// TransitionReplica executes the three-step differential transition on
// one replica.
func (e *Engine) TransitionReplica(ctx context.Context, r *ftm.Replica, to core.ID) ReplicaReport {
	// Hold the replica's reconfiguration lock for the whole transition so
	// a concurrent failover promotion cannot interleave with the script.
	unlock := r.LockReconfig()
	defer unlock()

	report := ReplicaReport{Host: r.Host().Name(), Role: r.Role()}
	from := r.FTM()
	if from == to {
		return report
	}
	pkg, err := e.repo.Get(r.System(), r.Path(), from, to, r.Role())
	if err != nil {
		report.Err = err
		return report
	}
	report.Replaced = pkg.Replaced
	rt := r.Host().Runtime()
	if rt == nil {
		report.Err = host.ErrCrashed
		return report
	}

	emitStep := func(step string, d time.Duration, status string) {
		telemetry.Emit("transition", step, d,
			"host", report.Host, "from", string(from), "to", string(to),
			"status", status)
	}

	// Step 1 — deploy the transition package: transfer each bundle into
	// the local staging area, verify its seal and link its symbols
	// against the replica's registry.
	start := time.Now()
	staged, err := stageBundles(rt.Registry(), pkg)
	report.Steps.Deploy = time.Since(start)
	mStepDeploy.Observe(report.Steps.Deploy)
	if err != nil {
		emitStep("deploy", report.Steps.Deploy, "error")
		mTransitionsErr.Inc()
		report.Err = err
		return report
	}
	emitStep("deploy", report.Steps.Deploy, "ok")

	// Step 2 — execute the reconfiguration script with the composite
	// boundary closed: client requests buffer and replay in the new
	// configuration (§5.3). A script exception kills the replica to
	// enforce fail-silence.
	start = time.Now()
	err = e.executeScript(ctx, rt, r, pkg)
	report.Steps.Script = time.Since(start)
	mStepScript.Observe(report.Steps.Script)
	if err != nil {
		var serr *fscript.ScriptError
		if errors.As(err, &serr) {
			r.Kill()
			report.Killed = true
		}
		emitStep("script", report.Steps.Script, "error")
		if report.Killed {
			mTransitionsKilled.Inc()
		} else {
			mTransitionsErr.Inc()
		}
		report.Err = err
		return report
	}
	emitStep("script", report.Steps.Script, "ok")

	// Step 3 — remove residuals: discard the staged package and verify
	// the resulting architecture (old bricks are gone, integrity holds,
	// the live scheme is the target's).
	start = time.Now()
	err = e.removeResiduals(rt, r, to, pkg, staged)
	report.Steps.Remove = time.Since(start)
	mStepRemove.Observe(report.Steps.Remove)
	if err != nil {
		emitStep("remove", report.Steps.Remove, "error")
		mTransitionsErr.Inc()
		report.Err = err
		return report
	}
	emitStep("remove", report.Steps.Remove, "ok")
	mTransitionsOK.Inc()

	r.SetFTM(to)
	return report
}

// stagedBundle is one transferred bundle awaiting removal.
type stagedBundle struct {
	typ  string
	data []byte
}

func stageBundles(reg *component.Registry, pkg *TransitionPackage) ([]stagedBundle, error) {
	// Open the archive: the manifest's seal covers dependency metadata
	// and signatures for the whole package.
	if err := pkg.Manifest.Verify(); err != nil {
		return nil, fmt.Errorf("adaptation: package manifest: %w", err)
	}
	staged := make([]stagedBundle, 0, len(pkg.Env.Definitions))
	for name, def := range pkg.Env.Definitions {
		// Transfer: the package bytes land in the staging area.
		buf := append([]byte(nil), def.Bundle.Code...)
		// Verify the seal, then resolve the bundle's symbols locally.
		if err := def.Bundle.Verify(); err != nil {
			return nil, fmt.Errorf("adaptation: deploy %s: %w", name, err)
		}
		if err := reg.Link(def.Bundle); err != nil {
			return nil, fmt.Errorf("adaptation: link %s: %w", name, err)
		}
		staged = append(staged, stagedBundle{typ: def.Type, data: buf})
	}
	return staged, nil
}

func (e *Engine) executeScript(ctx context.Context, rt *component.Runtime, r *ftm.Replica, pkg *TransitionPackage) error {
	if err := rt.Stop(ctx, r.Path()); err != nil {
		return err
	}
	if _, err := fscript.Execute(ctx, rt, pkg.Script, pkg.Env); err != nil {
		return err
	}
	return rt.Start(ctx, r.Path())
}

func (e *Engine) removeResiduals(rt *component.Runtime, r *ftm.Replica, to core.ID, pkg *TransitionPackage, staged []stagedBundle) error {
	// Audit the removal receipt, then wipe the staging area (a torn
	// staging area would poison the next transition).
	if err := pkg.Receipt.Verify(); err != nil {
		return fmt.Errorf("adaptation: removal receipt: %w", err)
	}
	for i := range staged {
		for j := range staged[i].data {
			staged[i].data[j] = 0
		}
		staged[i].data = nil
	}
	if violations := rt.CheckIntegrity(); len(violations) > 0 {
		return fmt.Errorf("%w: after transition: %v", component.ErrIntegrity, violations)
	}
	scheme, err := r.CurrentScheme()
	if err != nil {
		return err
	}
	want := core.MustLookup(to).Scheme(r.Role())
	if scheme != want {
		return fmt.Errorf("adaptation: post-transition scheme %+v does not match %s's %+v", scheme, to, want)
	}
	return nil
}
