package adaptation

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
	"resilientft/internal/slo"
)

// SLO-fed adaptation: the slo engine concludes that a shard is
// burning its error budget too hot; the reactor here decides what to
// do about it — shed the expensive FTM for a cheaper one before the
// budget is gone, and climb back once it refills. This closes ROADMAP
// item 5 (latency-SLO probe driving FTM transitions) with the same
// edge-acting discipline as the HealthReactor: a persistently paging
// shard produces one transition, not a storm, and every decision is
// counted and traced.

// SLOSource is the slice of the slo engine a reactor consumes.
// *slo.Engine implements it; tests substitute fakes.
type SLOSource interface {
	Snapshot(shard string) (slo.ShardSnapshot, bool)
}

var _ SLOSource = (*slo.Engine)(nil)

// SLOPolicy is one replica group's reaction record: what to degrade
// to when the shard pages and when it has earned its way back.
type SLOPolicy struct {
	// DegradeTo is the FTM a paging shard is moved to (default LFR:
	// keep crash tolerance, shed checkpointing load).
	DegradeTo core.ID
	// RecoverBudget is the budget_remaining fraction the shard must
	// regain before recovery (default 0.5: half the budget back). With
	// RecoverAfter it forms the hysteresis that keeps a marginal shard
	// from flapping between mechanisms.
	RecoverBudget float64
	// RecoverAfter is the quiet period since the last paging tick
	// before recovery (default 30s).
	RecoverAfter time.Duration
	// Interval paces the polling loop started by Start (default 1s).
	Interval time.Duration
}

func (p SLOPolicy) withDefaults() SLOPolicy {
	if p.DegradeTo == "" {
		p.DegradeTo = core.LFR
	}
	if p.RecoverBudget <= 0 {
		p.RecoverBudget = 0.5
	}
	if p.RecoverAfter <= 0 {
		p.RecoverAfter = 30 * time.Second
	}
	if p.Interval <= 0 {
		p.Interval = time.Second
	}
	return p
}

// SLOReactor degrades one replica group's FTM while its SLO pages and
// recovers it with hysteresis once the budget refills. Edge-acting in
// both directions: a shard already in the degraded FTM is left alone,
// and recovery happens once per degradation.
type SLOReactor struct {
	engine *Engine
	src    SLOSource
	group  string
	shard  string // the slo engine's shard key (rpc.ShardLabel(group))
	pol    SLOPolicy

	current    func() (core.ID, bool)
	transition func(ctx context.Context, to core.ID) error

	mu           sync.Mutex
	degradedFrom core.ID
	stop         chan struct{}
	done         chan struct{}
}

// NewSLOReactorForSystem returns a reactor over a two-replica test
// System: transitions apply to both replicas through the engine.
func NewSLOReactorForSystem(engine *Engine, sys *ftm.System, group string, src SLOSource, pol SLOPolicy) *SLOReactor {
	sr := newSLOReactor(engine, group, src, pol)
	sr.current = func() (core.ID, bool) {
		m := sys.Master()
		if m == nil {
			return "", false
		}
		return m.FTM(), true
	}
	sr.transition = func(ctx context.Context, to core.ID) error {
		_, err := engine.TransitionSystem(ctx, sys, to)
		return err
	}
	return sr
}

// NewSLOReactorForReplica returns a reactor over a single daemon
// replica — the resilientd shape, where each process reacts for its
// own replica (peer replicas run their own daemons and reactors).
func NewSLOReactorForReplica(engine *Engine, r *ftm.Replica, src SLOSource, pol SLOPolicy) *SLOReactor {
	sr := newSLOReactor(engine, r.Group(), src, pol)
	sr.current = func() (core.ID, bool) { return r.FTM(), true }
	sr.transition = func(ctx context.Context, to core.ID) error {
		report := engine.TransitionReplica(ctx, r, to)
		return report.Err
	}
	return sr
}

func newSLOReactor(engine *Engine, group string, src SLOSource, pol SLOPolicy) *SLOReactor {
	if engine == nil {
		engine = NewEngine(nil)
	}
	return &SLOReactor{
		engine: engine,
		src:    src,
		group:  group,
		shard:  rpc.ShardLabel(group),
		pol:    pol.withDefaults(),
	}
}

// React consults the SLO once and acts on an edge: degrade when the
// shard pages in a non-degraded FTM, recover when the shard it
// degraded has been quiet long enough with enough budget back. It
// returns whether a transition was attempted.
func (sr *SLOReactor) React(ctx context.Context) (bool, error) {
	snap, ok := sr.src.Snapshot(sr.shard)
	if !ok {
		return false, nil
	}
	cur, ok := sr.current()
	if !ok {
		return false, nil
	}
	sr.mu.Lock()
	degradedFrom := sr.degradedFrom
	sr.mu.Unlock()

	switch {
	case snap.Grade == slo.GradePage && cur != sr.pol.DegradeTo:
		sr.mu.Lock()
		sr.degradedFrom = cur
		sr.mu.Unlock()
		decided(sr.group, "slo-degrade",
			"from", string(cur), "to", string(sr.pol.DegradeTo),
			"burn_short", fmtRate(snap.Windows, 0), "burn_long", fmtRate(snap.Windows, 1),
			"budget_remaining", fmtRatio(snap.BudgetRemaining))
		return true, sr.transition(ctx, sr.pol.DegradeTo)

	case degradedFrom != "" && cur == sr.pol.DegradeTo:
		if snap.Grade != slo.GradeOK ||
			snap.BudgetRemaining < sr.pol.RecoverBudget ||
			snap.LastPage.IsZero() ||
			time.Since(snap.LastPage) < sr.pol.RecoverAfter {
			return false, nil
		}
		decided(sr.group, "slo-recover",
			"from", string(cur), "to", string(degradedFrom),
			"budget_remaining", fmtRatio(snap.BudgetRemaining))
		err := sr.transition(ctx, degradedFrom)
		if err == nil {
			sr.mu.Lock()
			sr.degradedFrom = ""
			sr.mu.Unlock()
		}
		return true, err
	}
	return false, nil
}

// Start polls React at the given interval (<= 0: the policy interval)
// until Stop.
func (sr *SLOReactor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = sr.pol.Interval
	}
	sr.mu.Lock()
	if sr.stop != nil {
		sr.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	sr.stop, sr.done = stop, done
	sr.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_, _ = sr.React(context.Background())
			}
		}
	}()
}

// Stop halts the polling loop.
func (sr *SLOReactor) Stop() {
	sr.mu.Lock()
	stop, done := sr.stop, sr.done
	sr.stop, sr.done = nil, nil
	sr.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func fmtRate(windows []slo.WindowStat, i int) string {
	if i >= len(windows) {
		return "0.00"
	}
	return fmtRatio(windows[i].Burn)
}

// fmtRatio matches the two-decimal grain of the slo engine's own
// event attributes.
func fmtRatio(v float64) string {
	return fmt.Sprintf("%.2f", v)
}
