package adaptation

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
)

// TestCrashDuringTransitionCampaign is a seeded fault-injection campaign:
// while a system-wide transition runs, one host crashes after a random
// delay. Whatever the interleaving, the campaign requires that (a) the
// surviving replica ends up serving clients, (b) no acknowledged write is
// lost, and (c) a restarted replica rejoins in the committed
// configuration.
func TestCrashDuringTransitionCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign is slow")
	}
	rng := rand.New(rand.NewSource(2026))
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		trial := trial
		delay := time.Duration(rng.Intn(1200)) * time.Microsecond
		crashMaster := rng.Intn(2) == 0
		t.Run(time.Duration(delay).String(), func(t *testing.T) {
			sys, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
				System:            "campaign",
				FTM:               core.PBR,
				HeartbeatInterval: 5 * time.Millisecond,
				SuspectTimeout:    30 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sys.Shutdown()
			client, err := sys.NewClient(rpc.WithCallTimeout(time.Second), rpc.WithMaxRounds(50))
			if err != nil {
				t.Fatal(err)
			}
			invoke(t, client, "set:x", int64(trial))

			victim := sys.Master()
			if !crashMaster {
				victim = sys.Slave()
			}
			engine := NewEngine(nil)
			done := make(chan error, 1)
			go func() {
				_, err := engine.TransitionSystem(context.Background(), sys, core.LFR)
				done <- err
			}()
			time.Sleep(delay)
			victim.Host().Crash()
			<-done // the transition completes or reports the dead replica

			// (a) someone serves, (b) the acknowledged write survived.
			deadline := time.Now().Add(10 * time.Second)
			var got int64 = -1
			for time.Now().Before(deadline) {
				resp, err := client.Invoke(context.Background(), "get:x", ftm.EncodeArg(0))
				if err == nil {
					got, _ = ftm.DecodeResult(resp.Payload)
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if got != int64(trial) {
				t.Fatalf("acknowledged write lost: got %d, want %d", got, trial)
			}

			// (c) the crashed replica restarts into the survivor's FTM.
			idx := -1
			for i, r := range sys.Replicas() {
				if r == victim {
					idx = i
				}
			}
			rejoined, err := sys.RestartReplica(context.Background(), idx)
			if err != nil {
				t.Fatalf("rejoin: %v", err)
			}
			if m := sys.Master(); m != nil && rejoined.FTM() != m.FTM() {
				t.Fatalf("rejoined in %s, survivor runs %s", rejoined.FTM(), m.FTM())
			}
			// The rejoined pair still serves and makes progress.
			resp, err := client.Invoke(context.Background(), "add:x", ftm.EncodeArg(1))
			if err != nil {
				t.Fatalf("post-rejoin request: %v", err)
			}
			v, _ := ftm.DecodeResult(resp.Payload)
			if v != int64(trial)+1 {
				t.Fatalf("post-rejoin add = %d, want %d", v, trial+1)
			}
		})
	}
}

// TestRepeatedTransitionsUnderWorkload drives a mixed read/write workload
// through a chain of transitions covering the whole deployable set and
// checks every result against the workload's shadow model.
func TestRepeatedTransitionsUnderWorkload(t *testing.T) {
	sys, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{
		System:            "chain",
		FTM:               core.PBR,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Shutdown()
	client, err := sys.NewClient(rpc.WithCallTimeout(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(nil)

	// A deterministic mixed workload with its shadow model.
	type op struct {
		name     string
		arg      int64
		expected int64
	}
	model := map[string]int64{}
	rng := rand.New(rand.NewSource(99))
	nextOp := func() op {
		reg := []string{"a", "b", "c"}[rng.Intn(3)]
		arg := int64(rng.Intn(100))
		switch rng.Intn(3) {
		case 0:
			model[reg] = arg
			return op{"set:" + reg, arg, arg}
		case 1:
			model[reg] += arg
			return op{"add:" + reg, arg, model[reg]}
		default:
			return op{"get:" + reg, 0, model[reg]}
		}
	}

	chain := []core.ID{core.LFR, core.LFRTR, core.ALFR, core.APBR, core.PBRTR, core.PBR}
	for _, next := range chain {
		for i := 0; i < 10; i++ {
			o := nextOp()
			resp, err := client.Invoke(context.Background(), o.name, ftm.EncodeArg(o.arg))
			if err != nil {
				t.Fatalf("under %s before %s: %s: %v", sys.Master().FTM(), next, o.name, err)
			}
			got, _ := ftm.DecodeResult(resp.Payload)
			if got != o.expected {
				t.Fatalf("under %s: %s %d = %d, want %d", sys.Master().FTM(), o.name, o.arg, got, o.expected)
			}
		}
		if _, err := engine.TransitionSystem(context.Background(), sys, next); err != nil {
			t.Fatalf("transition to %s: %v", next, err)
		}
	}
	// Final read-back of the whole model.
	for reg, want := range model {
		resp, err := client.Invoke(context.Background(), "get:"+reg, ftm.EncodeArg(0))
		if err != nil {
			t.Fatal(err)
		}
		got, _ := ftm.DecodeResult(resp.Payload)
		if got != want {
			t.Fatalf("final state %s = %d, want %d", reg, got, want)
		}
	}
}
