package adaptation

import (
	"context"
	"testing"

	"resilientft/internal/core"
	"resilientft/internal/telemetry"
)

// TestTransitionTraceRecordsEveryStep drives PBR→LFR→LFR+TR and checks
// the trace ring captured the full reconfiguration: the three engine
// steps (deploy, script, remove) per replica and one event per script
// statement (stop/remove/add/wire/start/...), all with non-zero
// durations.
func TestTransitionTraceRecordsEveryStep(t *testing.T) {
	s := newSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 7)
	engine := NewEngine(nil)

	transition := func(to core.ID) {
		t.Helper()
		mark := telemetry.DefaultTracer().Mark()
		report, err := engine.TransitionSystem(context.Background(), s, to)
		if err != nil {
			t.Fatalf("TransitionSystem(%s): %v", to, err)
		}
		if !report.Succeeded() {
			t.Fatalf("transition to %s did not succeed: %+v", to, report)
		}

		events := telemetry.DefaultTracer().Since(mark)
		steps := map[string]int{}  // engine step name -> count
		verbs := map[string]bool{} // script statement verb -> seen
		for _, ev := range events {
			switch ev.Kind {
			case "transition":
				if ev.Attrs["status"] != "ok" {
					t.Errorf("%s: engine step %s status %q", to, ev.Name, ev.Attrs["status"])
				}
				if ev.Dur <= 0 {
					t.Errorf("%s: engine step %s has zero duration", to, ev.Name)
				}
				if ev.Attrs["to"] != string(to) {
					t.Errorf("%s: engine step %s tagged to=%q", to, ev.Name, ev.Attrs["to"])
				}
				steps[ev.Name]++
			case "transition.step":
				if ev.Attrs["status"] != "ok" {
					t.Errorf("%s: script step %q status %q", to, ev.Attrs["stmt"], ev.Attrs["status"])
				}
				if ev.Dur <= 0 {
					t.Errorf("%s: script step %q has zero duration", to, ev.Attrs["stmt"])
				}
				if ev.Attrs["stmt"] == "" || ev.Attrs["line"] == "" {
					t.Errorf("%s: script step missing stmt/line attrs: %+v", to, ev.Attrs)
				}
				verbs[ev.Name] = true
			}
		}
		// Both replicas transition, each through the three-step process.
		for _, step := range []string{"deploy", "script", "remove"} {
			if steps[step] != 2 {
				t.Errorf("%s: engine step %s traced %d times, want 2", to, step, steps[step])
			}
		}
		// A differential brick swap stops the composite's bricks, removes
		// the old ones, adds, wires and starts the new ones.
		for _, verb := range []string{"stop", "remove", "add", "wire", "start"} {
			if !verbs[verb] {
				t.Errorf("%s: no %q statement in the transition trace (saw %v)", to, verb, verbs)
			}
		}
	}

	transition(core.LFR)
	if got := invoke(t, c, "get:x", 0); got != 7 {
		t.Fatalf("state after PBR->LFR = %d, want 7", got)
	}
	transition(core.LFRTR)
	if got := invoke(t, c, "get:x", 0); got != 7 {
		t.Fatalf("state after LFR->LFR+TR = %d, want 7", got)
	}
}
