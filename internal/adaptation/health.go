package adaptation

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/telemetry"
)

// Health-fed adaptation: the decisions below consume the graded host
// health model (worst-of collector verdicts, freshly measured) instead
// of declared resource numbers. Two decision kinds close the paper's
// (FT, A, R) loop from measurement: placement — an Unhealthy host is
// not given a slave — and FTM selection — a master whose own health
// degrades sheds the bandwidth-hungry checkpointing FTM for a cheaper
// one. Every decision is counted and traced.

// healthDecision counts one adaptation decision made from measured
// health, split by decision kind.
func healthDecision(decision string) *telemetry.Counter {
	return telemetry.Default().Counter("adaptation_health_decision_total", "decision", decision)
}

// shardDecision counts the same decisions per replica group, so a
// sharded deployment's dashboards attribute adaptations to shards.
func shardDecision(group, decision string) *telemetry.Counter {
	return telemetry.Default().Counter("adaptation_shard_decision_total", "shard", group, "decision", decision)
}

// decided records one decision on both series and the event trace.
func decided(group, decision string, kv ...string) {
	healthDecision(decision).Inc()
	if group != "" {
		shardDecision(group, decision).Inc()
		kv = append(kv, "shard", group)
	}
	telemetry.Emit("adaptation", decision, 0, kv...)
}

// ErrNoHealthyHost reports that every placement candidate measured
// Unhealthy.
var ErrNoHealthyHost = fmt.Errorf("adaptation: no healthy candidate host")

// ChooseSlaveHost picks the healthiest candidate for slave placement,
// running each candidate's collectors for a fresh verdict. Unhealthy
// hosts are never chosen (each avoidance is a counted decision); among
// the rest the best verdict wins, earliest candidate breaking ties, so
// a Degraded host is still usable when nothing Healthy remains. With
// only Unhealthy candidates it returns ErrNoHealthyHost — refusing a
// placement is itself the decision.
func ChooseSlaveHost(candidates []*host.Host) (*host.Host, error) {
	return chooseSlaveHost("", candidates)
}

// ChooseSlaveHostFor is ChooseSlaveHost with its decisions attributed
// to one replica group on the shard-labeled decision series.
func ChooseSlaveHostFor(group string, candidates []*host.Host) (*host.Host, error) {
	return chooseSlaveHost(group, candidates)
}

func chooseSlaveHost(group string, candidates []*host.Host) (*host.Host, error) {
	var best *host.Host
	bestVerdict := host.Unhealthy
	for _, h := range candidates {
		if h == nil || h.Crashed() {
			continue
		}
		v := h.Health().Check()
		if v == host.Unhealthy {
			decided(group, "avoid-unhealthy",
				"host", h.Name(), "verdict", v.String(),
				"cause", lastCause(h.Health()))
			continue
		}
		if best == nil || v < bestVerdict {
			best, bestVerdict = h, v
		}
	}
	if best == nil {
		return nil, ErrNoHealthyHost
	}
	decided(group, "place-slave",
		"host", best.Name(), "verdict", bestVerdict.String())
	return best, nil
}

// lastCause extracts the newest transition cause from a health report,
// for decision traces.
func lastCause(hm *host.HealthMonitor) string {
	rep := hm.Report()
	if n := len(rep.Transitions); n > 0 {
		return rep.Transitions[n-1].Cause
	}
	return ""
}

// HealthReactor degrades a system's FTM when the master's measured
// health crosses a verdict threshold: the canonical move is PBR→LFR —
// checkpointing load is shed from a struggling master while crash
// tolerance is kept. The reactor is edge-acting: it transitions only
// when the system is not already in the target FTM, so a persistently
// bad verdict produces one transition, not a storm.
type HealthReactor struct {
	engine *Engine
	sys    *ftm.System
	// group attributes this reactor's decisions to one replica shard on
	// the shard-labeled decision series (empty: unsharded).
	group string
	// DegradeAt is the verdict at which the reactor acts (default
	// Unhealthy; Degraded makes it eager).
	degradeAt host.Verdict
	to        core.ID

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// NewHealthReactor returns a reactor moving sys to the FTM `to` when
// the master host's health reaches degradeAt.
func NewHealthReactor(engine *Engine, sys *ftm.System, degradeAt host.Verdict, to core.ID) *HealthReactor {
	return NewHealthReactorFor(engine, sys, "", degradeAt, to)
}

// NewHealthReactorFor is NewHealthReactor for one replica group of a
// sharded deployment.
func NewHealthReactorFor(engine *Engine, sys *ftm.System, group string, degradeAt host.Verdict, to core.ID) *HealthReactor {
	if engine == nil {
		engine = NewEngine(nil)
	}
	return &HealthReactor{engine: engine, sys: sys, group: group, degradeAt: degradeAt, to: to}
}

// React measures the master's health once and transitions the system
// if the verdict warrants it. It returns the transition report and
// whether a transition was attempted.
func (hr *HealthReactor) React(ctx context.Context) (*Report, bool, error) {
	master := hr.sys.Master()
	if master == nil {
		return nil, false, nil
	}
	h := master.Host()
	verdict := h.Health().Check()
	if verdict < hr.degradeAt || master.FTM() == hr.to {
		return nil, false, nil
	}
	from := master.FTM()
	decided(hr.group, "ftm-degrade",
		"host", h.Name(), "verdict", verdict.String(),
		"from", string(from), "to", string(hr.to),
		"cause", lastCause(h.Health()))
	report, err := hr.engine.TransitionSystem(ctx, hr.sys, hr.to)
	return report, true, err
}

// Start polls React at the given interval until Stop.
func (hr *HealthReactor) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	hr.mu.Lock()
	if hr.stop != nil {
		hr.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	hr.stop, hr.done = stop, done
	hr.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				_, _, _ = hr.React(context.Background())
			}
		}
	}()
}

// Stop halts the polling loop.
func (hr *HealthReactor) Stop() {
	hr.mu.Lock()
	stop, done := hr.stop, hr.done
	hr.stop, hr.done = nil, nil
	hr.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
