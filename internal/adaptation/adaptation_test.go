package adaptation

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/faultinject"
	"resilientft/internal/fscript"
	"resilientft/internal/ftm"
	"resilientft/internal/rpc"
)

func fastConfig(ftmID core.ID) ftm.SystemConfig {
	return ftm.SystemConfig{
		System:            "calc",
		FTM:               ftmID,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	}
}

func newSystem(t *testing.T, ftmID core.ID) *ftm.System {
	t.Helper()
	s, err := ftm.NewSystem(context.Background(), fastConfig(ftmID))
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", ftmID, err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func invoke(t *testing.T, c *rpc.Client, op string, arg int64) int64 {
	t.Helper()
	resp, err := c.Invoke(context.Background(), op, ftm.EncodeArg(arg))
	if err != nil {
		t.Fatalf("Invoke(%s, %d): %v", op, arg, err)
	}
	v, err := ftm.DecodeResult(resp.Payload)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return v
}

func waitUntil(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestBuildPackageDiffSizes(t *testing.T) {
	cases := []struct {
		from, to core.ID
		role     core.Role
		want     int
	}{
		{core.LFR, core.LFRTR, core.RoleMaster, 1},
		{core.PBR, core.LFR, core.RoleMaster, 2},
		{core.PBR, core.LFRTR, core.RoleMaster, 3},
		{core.PBR, core.PBRTR, core.RoleMaster, 1},
		{core.PBR, core.LFR, core.RoleSlave, 3}, // backup scheme shares nothing with follower's
	}
	for _, tc := range cases {
		pkg, err := BuildPackage("calc", tc.from, tc.to, tc.role)
		if err != nil {
			t.Fatalf("BuildPackage(%s->%s/%s): %v", tc.from, tc.to, tc.role, err)
		}
		if len(pkg.Replaced) != tc.want {
			t.Errorf("%s->%s/%s replaced %v, want %d slots", tc.from, tc.to, tc.role, pkg.Replaced, tc.want)
		}
		if len(pkg.Env.Definitions) != tc.want {
			t.Errorf("%s->%s/%s ships %d definitions, want %d", tc.from, tc.to, tc.role, len(pkg.Env.Definitions), tc.want)
		}
		if len(pkg.Bundles()) != tc.want {
			t.Errorf("%s->%s/%s bundles = %d", tc.from, tc.to, tc.role, len(pkg.Bundles()))
		}
		text := pkg.Script.String()
		for _, slot := range pkg.Replaced {
			if !strings.Contains(text, "remove calc/"+slot) {
				t.Errorf("script misses removal of %s:\n%s", slot, text)
			}
		}
	}
}

func TestBuildPackageRejectsTopologyChange(t *testing.T) {
	if _, err := BuildPackage("calc", core.PBR, core.TR, core.RoleMaster); err == nil {
		t.Fatal("PBR->TR (2 hosts -> 1 host) accepted")
	}
}

func TestTransitionPBRToLFR(t *testing.T) {
	s := newSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 10)

	engine := NewEngine(nil)
	report, err := engine.TransitionSystem(context.Background(), s, core.LFR)
	if err != nil {
		t.Fatalf("TransitionSystem: %v", err)
	}
	if !report.Succeeded() {
		t.Fatalf("report not successful: %+v", report)
	}
	if len(report.Replicas) != 2 {
		t.Fatalf("replicas in report = %d", len(report.Replicas))
	}
	for _, rep := range report.Replicas {
		if rep.Steps.Deploy <= 0 || rep.Steps.Script <= 0 || rep.Steps.Remove <= 0 {
			t.Errorf("replica %s has unmeasured steps: %+v", rep.Host, rep.Steps)
		}
	}

	// The system still serves, from the same state.
	if got := invoke(t, c, "add:x", 5); got != 15 {
		t.Fatalf("post-transition add = %d", got)
	}
	// Both replicas now run LFR and the follower computes requests.
	if s.Master().FTM() != core.LFR || s.Slave().FTM() != core.LFR {
		t.Fatal("FTM bookkeeping not updated")
	}
	followerApp := s.Slave().App().(*ftm.Calculator)
	waitUntil(t, 2*time.Second, func() bool {
		return followerApp.StateManager() != nil && followerValue(followerApp) == 15
	}, "follower does not compute after PBR->LFR transition")
}

func followerValue(c *ftm.Calculator) int64 {
	data, err := c.StateManager().CaptureState()
	if err != nil {
		return -1
	}
	clone := ftm.NewCalculator()
	if err := clone.StateManager().RestoreState(data); err != nil {
		return -1
	}
	v, _, _ := clone.Process("get:x", 0)
	return v
}

func TestTransitionChainAcrossDeployableSet(t *testing.T) {
	s := newSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	engine := NewEngine(nil)
	chain := []core.ID{core.PBRTR, core.LFRTR, core.ALFR, core.APBR, core.PBR, core.LFR}
	value := int64(0)
	invoke(t, c, "set:x", 0)
	for _, next := range chain {
		report, err := engine.TransitionSystem(context.Background(), s, next)
		if err != nil {
			t.Fatalf("transition to %s: %v", next, err)
		}
		if !report.Succeeded() {
			t.Fatalf("transition to %s failed: %+v", next, report)
		}
		value++
		if got := invoke(t, c, "add:x", 1); got != value {
			t.Fatalf("after transition to %s: add = %d, want %d", next, got, value)
		}
		scheme, err := s.Master().CurrentScheme()
		if err != nil {
			t.Fatal(err)
		}
		if scheme != core.MustLookup(next).MasterScheme {
			t.Fatalf("after transition to %s: live scheme %+v", next, scheme)
		}
	}
}

func TestTransitionUnderLoadLosesNothing(t *testing.T) {
	s := newSystem(t, core.PBR)
	engine := NewEngine(nil)

	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 0)

	// A writer increments x continuously while the transition runs;
	// every accepted increment must be reflected exactly once.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	accepted := int64(0)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			resp, err := c.Invoke(ctx, "add:x", ftm.EncodeArg(1))
			cancel()
			if err == nil && resp.Status == rpc.StatusOK {
				accepted++
			}
		}
	}()

	time.Sleep(20 * time.Millisecond)
	if _, err := engine.TransitionSystem(context.Background(), s, core.LFR); err != nil {
		t.Fatalf("TransitionSystem under load: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()

	if accepted == 0 {
		t.Fatal("no requests accepted around the transition")
	}
	if got := invoke(t, c, "get:x", 0); got != accepted {
		t.Fatalf("x = %d but %d increments were acknowledged", got, accepted)
	}
}

func TestScriptFailureEnforcesFailSilence(t *testing.T) {
	s := newSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 33)

	repo := NewRepository()
	// Sabotage the master-role package: its script fails mid-way.
	good, err := BuildPackage("calc", core.PBR, core.LFR, core.RoleMaster)
	if err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.Script = fscript.MustParse("stop calc/syncBefore\nfail \"injected transition fault\"")
	repo.Upload("calc", &bad)

	engine := NewEngine(repo)
	oldMaster := s.Master()
	report, err := engine.TransitionSystem(context.Background(), s, core.LFR)
	if err == nil {
		t.Fatal("sabotaged transition reported success")
	}
	// The master was killed (fail-silent); the slave transitioned.
	var masterRep, slaveRep *ReplicaReport
	for i := range report.Replicas {
		switch report.Replicas[i].Role {
		case core.RoleMaster:
			masterRep = &report.Replicas[i]
		case core.RoleSlave:
			slaveRep = &report.Replicas[i]
		}
	}
	if masterRep == nil || !masterRep.Killed {
		t.Fatalf("master not killed: %+v", report.Replicas)
	}
	if slaveRep == nil || slaveRep.Err != nil {
		t.Fatalf("slave failed too: %+v", slaveRep)
	}
	if !oldMaster.Host().Crashed() {
		t.Fatal("killed master's host still alive")
	}

	// The reconfigured slave detects the silence and takes over in the
	// NEW configuration; clients keep being served.
	waitUntil(t, 5*time.Second, func() bool {
		m := s.Master()
		return m != nil && m != oldMaster
	}, "slave never took over after fail-silent master")
	if got := invoke(t, c, "get:x", 0); got != 33 {
		t.Fatalf("state after fail-silent takeover = %d, want 33", got)
	}
	if s.Master().FTM() != core.LFR {
		t.Fatalf("survivor runs %s, want lfr", s.Master().FTM())
	}

	// Recovery of adaptation (§5.3): the killed replica restarts and
	// rejoins in the configuration committed by its counterpart.
	idx := -1
	for i, r := range s.Replicas() {
		if r == oldMaster {
			idx = i
		}
	}
	rejoined, err := s.RestartReplica(context.Background(), idx)
	if err != nil {
		t.Fatalf("RestartReplica: %v", err)
	}
	if rejoined.FTM() != core.LFR {
		t.Fatalf("rejoined replica runs %s, want lfr (from stable storage)", rejoined.FTM())
	}
}

func TestTransitionedFTMActuallyMasksFaults(t *testing.T) {
	// Behavioural validation of a transition: after LFR -> LFR⊕TR
	// (triggered in the paper by fault-model hardening), a transient
	// value fault is masked — before it, it is not.
	inj := faultinject.NewValueInjector(21)
	first := true
	cfg := fastConfig(core.LFR)
	cfg.AppFactory = func() ftm.Application {
		c := ftm.NewCalculator()
		if first {
			c.SetInjector(inj)
			first = false
		}
		return c
	}
	s, err := ftm.NewSystem(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 10)
	inj.InjectTransient(1)
	if got := invoke(t, c, "add:x", 1); got == 11 {
		t.Fatal("plain LFR masked a value fault; injection broken")
	}
	invoke(t, c, "set:x", 10)

	engine := NewEngine(nil)
	if _, err := engine.TransitionSystem(context.Background(), s, core.LFRTR); err != nil {
		t.Fatalf("TransitionSystem: %v", err)
	}
	inj.InjectTransient(1)
	if got := invoke(t, c, "add:x", 1); got != 11 {
		t.Fatalf("LFR⊕TR result under fault = %d, want 11", got)
	}
}

func TestRepositoryUploadPrecedenceAndBuilds(t *testing.T) {
	repo := NewRepository()
	pkg, err := repo.Get("calc", "calc", core.PBR, core.LFR, core.RoleMaster)
	if err != nil {
		t.Fatal(err)
	}
	if repo.Builds() != 1 {
		t.Fatalf("Builds = %d, want 1", repo.Builds())
	}
	marked := *pkg
	marked.Replaced = []string{"marker"}
	repo.Upload("calc", &marked)
	got, err := repo.Get("calc", "calc", core.PBR, core.LFR, core.RoleMaster)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Replaced) != 1 || got.Replaced[0] != "marker" {
		t.Fatal("uploaded package not preferred")
	}
	if repo.Builds() != 1 {
		t.Fatalf("Builds after upload hit = %d, want 1", repo.Builds())
	}
	// Another system's lookup does not see the upload.
	other, err := repo.Get("other", "other", core.PBR, core.LFR, core.RoleMaster)
	if err != nil {
		t.Fatal(err)
	}
	if len(other.Replaced) == 1 && other.Replaced[0] == "marker" {
		t.Fatal("upload leaked across systems")
	}
}

func TestNoOpTransition(t *testing.T) {
	s := newSystem(t, core.PBR)
	engine := NewEngine(nil)
	report, err := engine.TransitionSystem(context.Background(), s, core.PBR)
	if err != nil {
		t.Fatalf("no-op transition: %v", err)
	}
	for _, rep := range report.Replicas {
		if len(rep.Replaced) != 0 {
			t.Fatalf("no-op replaced %v", rep.Replaced)
		}
	}
}

func TestAtMostOnceAcrossTransition(t *testing.T) {
	s := newSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "add:x", 7) // seq 1 executed, x = 7
	engine := NewEngine(nil)
	if _, err := engine.TransitionSystem(context.Background(), s, core.LFR); err != nil {
		t.Fatal(err)
	}
	// The same request identity redelivered after the transition must
	// replay from the reply log, not re-execute.
	resp, err := c.Redeliver(context.Background(), 1, "add:x", ftm.EncodeArg(7))
	if err != nil {
		t.Fatalf("Redeliver: %v", err)
	}
	if !resp.Replayed {
		t.Fatal("redelivered request re-executed after transition")
	}
	if got := invoke(t, c, "get:x", 0); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
}

func TestReportMaxSteps(t *testing.T) {
	r := &Report{Replicas: []ReplicaReport{
		{Steps: StepTimings{Deploy: 10, Script: 5, Remove: 5}},
		{Steps: StepTimings{Deploy: 30, Script: 10, Remove: 10}},
	}}
	if got := r.MaxSteps().Total(); got != 50 {
		t.Fatalf("MaxSteps total = %v", got)
	}
	if (&Report{}).Succeeded() {
		t.Fatal("empty report succeeded")
	}
}

func ExampleEngine_transition() {
	s, err := ftm.NewSystem(context.Background(), ftm.SystemConfig{System: "demo", FTM: core.PBR})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Shutdown()
	engine := NewEngine(nil)
	report, err := engine.TransitionSystem(context.Background(), s, core.LFR)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("transitioned %s -> %s on %d replicas\n", report.From, report.To, len(report.Replicas))
	// Output: transitioned pbr -> lfr on 2 replicas
}

func TestTransitionClusterAppliesToEveryMember(t *testing.T) {
	c, err := ftm.NewCluster(context.Background(), ftm.ClusterConfig{
		System:            "calc",
		FTM:               core.PBR,
		Replicas:          3,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	client, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Invoke(context.Background(), "set:x", ftm.EncodeArg(3))
	if err != nil || resp.Status != rpc.StatusOK {
		t.Fatalf("set: %v / %v", err, resp.Status)
	}

	engine := NewEngine(nil)
	report, err := engine.TransitionCluster(context.Background(), c, core.LFR)
	if err != nil {
		t.Fatalf("TransitionCluster: %v", err)
	}
	if len(report.Replicas) != 3 || !report.Succeeded() {
		t.Fatalf("report = %+v", report)
	}
	for _, r := range c.Replicas() {
		if r.FTM() != core.LFR {
			t.Fatalf("%s runs %s", r.Host().Name(), r.FTM())
		}
		scheme, err := r.CurrentScheme()
		if err != nil {
			t.Fatal(err)
		}
		if scheme != core.MustLookup(core.LFR).Scheme(r.Role()) {
			t.Fatalf("%s scheme %+v", r.Host().Name(), scheme)
		}
	}
	// The transitioned group still serves and the followers compute.
	resp, err = client.Invoke(context.Background(), "add:x", ftm.EncodeArg(4))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := ftm.DecodeResult(resp.Payload)
	if v != 7 {
		t.Fatalf("post-transition add = %d", v)
	}
}
