package adaptation

import (
	"context"
	"sort"
	"sync"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
)

// Per-shard resilience management: when the state space is partitioned
// into independent replica groups, the paper's (FT, A, R) record stops
// being a process-wide singleton — each group carries its own policy
// and reacts to its own hosts' measured health. One shard's master may
// shed PBR for LFR while its neighbours keep checkpointing.

// ShardPolicy is one replica group's resilience record: when to act
// (DegradeAt), what to degrade to (DegradeTo), and how often to look
// (Interval, for the polling loops).
type ShardPolicy struct {
	// DegradeAt is the health verdict that triggers degradation
	// (default Unhealthy).
	DegradeAt host.Verdict
	// DegradeTo is the FTM degraded to (default LFR: keep crash
	// tolerance, shed checkpointing bandwidth).
	DegradeTo core.ID
	// Interval paces the polling loop started by StartAll (default 1s).
	Interval time.Duration
}

func (p ShardPolicy) withDefaults() ShardPolicy {
	if p.DegradeAt == 0 {
		p.DegradeAt = host.Unhealthy
	}
	if p.DegradeTo == "" {
		p.DegradeTo = core.LFR
	}
	if p.Interval <= 0 {
		p.Interval = time.Second
	}
	return p
}

type shardEntry struct {
	policy  ShardPolicy
	reactor *HealthReactor
}

type sloEntry struct {
	policy  SLOPolicy
	reactor *SLOReactor
}

// ShardManager owns one edge-acting HealthReactor per replica group,
// each under its own policy, all sharing one adaptation engine (the
// repository and its packages are process-wide; the decisions are not).
// Groups may additionally carry an SLOReactor: health reacts to the
// hosts' measured condition, SLO reacts to what the users experienced.
type ShardManager struct {
	engine *Engine

	mu        sync.Mutex
	shards    map[string]*shardEntry
	sloShards map[string]*sloEntry
}

// NewShardManager returns an empty manager over engine (a fresh engine
// when nil).
func NewShardManager(engine *Engine) *ShardManager {
	if engine == nil {
		engine = NewEngine(nil)
	}
	return &ShardManager{
		engine:    engine,
		shards:    make(map[string]*shardEntry),
		sloShards: make(map[string]*sloEntry),
	}
}

// Engine returns the shared adaptation engine.
func (m *ShardManager) Engine() *Engine { return m.engine }

// Manage installs (or replaces) the policy for one group's system and
// returns its reactor. A replaced group's polling loop is stopped.
func (m *ShardManager) Manage(group string, sys *ftm.System, pol ShardPolicy) *HealthReactor {
	pol = pol.withDefaults()
	hr := NewHealthReactorFor(m.engine, sys, group, pol.DegradeAt, pol.DegradeTo)
	m.mu.Lock()
	old := m.shards[group]
	m.shards[group] = &shardEntry{policy: pol, reactor: hr}
	m.mu.Unlock()
	if old != nil {
		old.reactor.Stop()
	}
	return hr
}

// ManageSharded installs a policy for every group of a sharded system:
// base for all, overridden per group ID by overrides.
func (m *ShardManager) ManageSharded(s *ftm.ShardedSystem, base ShardPolicy, overrides map[string]ShardPolicy) {
	ids := s.IDs()
	for k, g := range s.Groups() {
		pol := base
		if o, ok := overrides[ids[k]]; ok {
			pol = o
		}
		m.Manage(ids[k], g, pol)
	}
}

// ManageSLO installs (or replaces) the SLO reaction for one group's
// system and returns its reactor. A replaced group's polling loop is
// stopped.
func (m *ShardManager) ManageSLO(group string, sys *ftm.System, src SLOSource, pol SLOPolicy) *SLOReactor {
	return m.installSLO(group, NewSLOReactorForSystem(m.engine, sys, group, src, pol), pol)
}

// ManageSLOReplica installs (or replaces) the SLO reaction for one
// daemon replica and returns its reactor.
func (m *ShardManager) ManageSLOReplica(r *ftm.Replica, src SLOSource, pol SLOPolicy) *SLOReactor {
	return m.installSLO(r.Group(), NewSLOReactorForReplica(m.engine, r, src, pol), pol)
}

func (m *ShardManager) installSLO(group string, sr *SLOReactor, pol SLOPolicy) *SLOReactor {
	m.mu.Lock()
	old := m.sloShards[group]
	m.sloShards[group] = &sloEntry{policy: pol.withDefaults(), reactor: sr}
	m.mu.Unlock()
	if old != nil {
		old.reactor.Stop()
	}
	return sr
}

// SLOReactor returns the SLO reactor managing a group, or nil.
func (m *ShardManager) SLOReactor(group string) *SLOReactor {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.sloShards[group]; ok {
		return e.reactor
	}
	return nil
}

// Groups returns the managed group IDs, sorted.
func (m *ShardManager) Groups() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.shards))
	for g := range m.shards {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Reactor returns the reactor managing a group, or nil.
func (m *ShardManager) Reactor(group string) *HealthReactor {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.shards[group]; ok {
		return e.reactor
	}
	return nil
}

// ReactAll runs one measurement sweep over every managed group and
// returns the groups that transitioned (acted edge: a group already in
// its degraded FTM is not re-transitioned). The first error is
// returned after the sweep completes — one shard's failing transition
// must not stop the others' reactions.
func (m *ShardManager) ReactAll(ctx context.Context) ([]string, error) {
	m.mu.Lock()
	groups := make([]string, 0, len(m.shards))
	reactors := make([]*HealthReactor, 0, len(m.shards))
	for g, e := range m.shards {
		groups = append(groups, g)
		reactors = append(reactors, e.reactor)
	}
	sloGroups := make([]string, 0, len(m.sloShards))
	sloReactors := make([]*SLOReactor, 0, len(m.sloShards))
	for g, e := range m.sloShards {
		sloGroups = append(sloGroups, g)
		sloReactors = append(sloReactors, e.reactor)
	}
	m.mu.Unlock()

	actedSet := make(map[string]bool)
	var firstErr error
	for i, hr := range reactors {
		_, did, err := hr.React(ctx)
		if did {
			actedSet[groups[i]] = true
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i, sr := range sloReactors {
		did, err := sr.React(ctx)
		if did {
			actedSet[sloGroups[i]] = true
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	acted := make([]string, 0, len(actedSet))
	for g := range actedSet {
		acted = append(acted, g)
	}
	sort.Strings(acted)
	return acted, firstErr
}

// StartAll starts every group's polling loops (health and SLO) at
// their policy intervals.
func (m *ShardManager) StartAll() {
	m.mu.Lock()
	entries := make([]*shardEntry, 0, len(m.shards))
	for _, e := range m.shards {
		entries = append(entries, e)
	}
	sloEntries := make([]*sloEntry, 0, len(m.sloShards))
	for _, e := range m.sloShards {
		sloEntries = append(sloEntries, e)
	}
	m.mu.Unlock()
	for _, e := range entries {
		e.reactor.Start(e.policy.Interval)
	}
	for _, e := range sloEntries {
		e.reactor.Start(e.policy.Interval)
	}
}

// StopAll stops every group's polling loops.
func (m *ShardManager) StopAll() {
	m.mu.Lock()
	entries := make([]*shardEntry, 0, len(m.shards))
	for _, e := range m.shards {
		entries = append(entries, e)
	}
	sloEntries := make([]*sloEntry, 0, len(m.sloShards))
	for _, e := range m.sloShards {
		sloEntries = append(sloEntries, e)
	}
	m.mu.Unlock()
	for _, e := range entries {
		e.reactor.Stop()
	}
	for _, e := range sloEntries {
		e.reactor.Stop()
	}
}
