package adaptation

import (
	"context"
	"testing"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/host"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

func healthTestHost(t *testing.T, name string) *host.Host {
	t.Helper()
	h, err := host.New(name, transport.NewMemNetwork(), component.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestChooseSlaveHostAvoidsUnhealthy: placement driven by a measured
// verdict — the candidate with starved CPU is skipped even though it
// comes first, and the avoidance is a counted, traced decision.
func TestChooseSlaveHostAvoidsUnhealthy(t *testing.T) {
	sick := healthTestHost(t, "sick")
	sick.Resources().SetCPUFree(0.01) // measured Unhealthy
	well := healthTestHost(t, "well")

	avoided := telemetry.Default().Counter("adaptation_health_decision_total", "decision", "avoid-unhealthy").Value()
	placed := telemetry.Default().Counter("adaptation_health_decision_total", "decision", "place-slave").Value()
	mark := telemetry.DefaultTracer().Mark()

	got, err := ChooseSlaveHost([]*host.Host{sick, well})
	if err != nil {
		t.Fatal(err)
	}
	if got != well {
		t.Fatalf("placed slave on %s, want the healthy host", got.Name())
	}
	if v := telemetry.Default().Counter("adaptation_health_decision_total", "decision", "avoid-unhealthy").Value(); v != avoided+1 {
		t.Fatalf("avoid-unhealthy decisions = %d, want %d", v, avoided+1)
	}
	if v := telemetry.Default().Counter("adaptation_health_decision_total", "decision", "place-slave").Value(); v != placed+1 {
		t.Fatalf("place-slave decisions = %d, want %d", v, placed+1)
	}
	var traced bool
	for _, e := range telemetry.DefaultTracer().Since(mark) {
		if e.Kind == "adaptation" && e.Name == "avoid-unhealthy" && e.Attrs["host"] == "sick" {
			traced = true
		}
	}
	if !traced {
		t.Fatal("placement avoidance emitted no trace event")
	}
}

func TestChooseSlaveHostPrefersHealthyOverDegraded(t *testing.T) {
	degraded := healthTestHost(t, "tired")
	degraded.Resources().SetEnergy(0.1) // Degraded, not Unhealthy
	healthy := healthTestHost(t, "fresh")

	got, err := ChooseSlaveHost([]*host.Host{degraded, healthy})
	if err != nil {
		t.Fatal(err)
	}
	if got != healthy {
		t.Fatalf("placed slave on %s, want the healthy host over the degraded one", got.Name())
	}

	// With only the degraded host left it is still usable.
	got, err = ChooseSlaveHost([]*host.Host{degraded})
	if err != nil {
		t.Fatal(err)
	}
	if got != degraded {
		t.Fatalf("placed slave on %s, want the degraded host as last resort", got.Name())
	}
}

func TestChooseSlaveHostRefusesWhenAllUnhealthy(t *testing.T) {
	sick := healthTestHost(t, "sick2")
	sick.Resources().SetCPUFree(0.0)
	if _, err := ChooseSlaveHost([]*host.Host{sick, nil}); err != ErrNoHealthyHost {
		t.Fatalf("err = %v, want ErrNoHealthyHost", err)
	}
}

// TestHealthReactorDegradesPBRToLFR: the tentpole's automated decision
// — a PBR system whose master host measures Unhealthy transitions to
// LFR, driven end to end by the health sweep, with the decision counted
// and traced. A second React is a no-op (edge-acting, no storm).
func TestHealthReactorDegradesPBRToLFR(t *testing.T) {
	s := newSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 7)

	hr := NewHealthReactor(nil, s, host.Unhealthy, core.LFR)

	// Healthy master: no action.
	if _, acted, err := hr.React(context.Background()); err != nil || acted {
		t.Fatalf("reactor acted on a healthy master (acted=%v err=%v)", acted, err)
	}

	// Starve the master host's energy; the next sweep measures
	// Unhealthy and the reactor sheds PBR.
	decisions := telemetry.Default().Counter("adaptation_health_decision_total", "decision", "ftm-degrade").Value()
	mark := telemetry.DefaultTracer().Mark()
	s.Master().Host().Resources().SetEnergy(0.01)

	report, acted, err := hr.React(context.Background())
	if err != nil {
		t.Fatalf("React: %v", err)
	}
	if !acted || report == nil || !report.Succeeded() {
		t.Fatalf("reactor did not transition (acted=%v report=%+v)", acted, report)
	}
	for _, r := range s.Replicas() {
		if r.FTM() != core.LFR {
			t.Fatalf("replica %s FTM = %s, want lfr", r.Host().Name(), r.FTM())
		}
	}
	if v := telemetry.Default().Counter("adaptation_health_decision_total", "decision", "ftm-degrade").Value(); v != decisions+1 {
		t.Fatalf("ftm-degrade decisions = %d, want %d", v, decisions+1)
	}
	var traced bool
	for _, e := range telemetry.DefaultTracer().Since(mark) {
		if e.Kind == "adaptation" && e.Name == "ftm-degrade" && e.Attrs["to"] == "lfr" {
			traced = true
			if e.Attrs["cause"] == "" {
				t.Fatal("degrade decision traced without a cause")
			}
		}
	}
	if !traced {
		t.Fatal("ftm-degrade emitted no trace event")
	}

	// Still unhealthy, already in LFR: no second transition.
	if _, acted, err := hr.React(context.Background()); err != nil || acted {
		t.Fatalf("reactor re-fired in the target FTM (acted=%v err=%v)", acted, err)
	}

	// The system still serves after the health-driven transition.
	if got := invoke(t, c, "get:x", 0); got != 7 {
		t.Fatalf("get:x = %d after degrade transition, want 7", got)
	}
}
