package adaptation

import "resilientft/internal/telemetry"

// Transition series. One transition produces three step observations
// (the paper's deploy / script / remove breakdown) and one outcome
// count; the interpreter underneath adds a trace event per script
// statement.
var (
	mStepDeploy = telemetry.Default().Histogram("adaptation_step_latency", "step", "deploy")
	mStepScript = telemetry.Default().Histogram("adaptation_step_latency", "step", "script")
	mStepRemove = telemetry.Default().Histogram("adaptation_step_latency", "step", "remove")

	mTransitionsOK     = telemetry.Default().Counter("adaptation_transitions_total", "outcome", "ok")
	mTransitionsErr    = telemetry.Default().Counter("adaptation_transitions_total", "outcome", "error")
	mTransitionsKilled = telemetry.Default().Counter("adaptation_transitions_total", "outcome", "killed")
)
