package adaptation

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/slo"
)

// fakeSLO serves one canned snapshot per shard.
type fakeSLO struct {
	mu    sync.Mutex
	snaps map[string]slo.ShardSnapshot
}

func (f *fakeSLO) set(shard string, snap slo.ShardSnapshot) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.snaps == nil {
		f.snaps = make(map[string]slo.ShardSnapshot)
	}
	snap.Shard = shard
	f.snaps[shard] = snap
}

func (f *fakeSLO) Snapshot(shard string) (slo.ShardSnapshot, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.snaps[shard]
	return s, ok
}

// harnessed reactor: current/transition are swapped for a fake FTM
// holder so the decision logic is tested without live replicas.
type sloHarness struct {
	*SLOReactor
	mu          sync.Mutex
	ftm         core.ID
	transitions []core.ID
	failNext    error
}

func newSLOHarness(t *testing.T, src SLOSource, pol SLOPolicy) *sloHarness {
	t.Helper()
	h := &sloHarness{
		SLOReactor: newSLOReactor(nil, "g0", src, pol),
		ftm:        core.PBR,
	}
	h.SLOReactor.current = func() (core.ID, bool) {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.ftm, true
	}
	h.SLOReactor.transition = func(_ context.Context, to core.ID) error {
		h.mu.Lock()
		defer h.mu.Unlock()
		if err := h.failNext; err != nil {
			h.failNext = nil
			return err
		}
		h.ftm = to
		h.transitions = append(h.transitions, to)
		return nil
	}
	return h
}

func (h *sloHarness) history() []core.ID {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]core.ID(nil), h.transitions...)
}

func pagingSnap() slo.ShardSnapshot {
	return slo.ShardSnapshot{
		Grade:           slo.GradePage,
		Windows:         []slo.WindowStat{{Burn: 120}, {Burn: 80}},
		BudgetRemaining: 0.1,
		LastPage:        time.Now(),
	}
}

func recoveredSnap(budget float64, sinceLastPage time.Duration) slo.ShardSnapshot {
	return slo.ShardSnapshot{
		Grade:           slo.GradeOK,
		Windows:         []slo.WindowStat{{Burn: 0}, {Burn: 0}},
		BudgetRemaining: budget,
		LastPage:        time.Now().Add(-sinceLastPage),
	}
}

func TestSLOReactorDegradesOnPageEdge(t *testing.T) {
	src := &fakeSLO{}
	h := newSLOHarness(t, src, SLOPolicy{})
	ctx := context.Background()

	// No snapshot for the shard yet: nothing to do.
	if acted, err := h.React(ctx); acted || err != nil {
		t.Fatalf("acted on missing snapshot: acted=%v err=%v", acted, err)
	}

	src.set("g0", pagingSnap())
	acted, err := h.React(ctx)
	if !acted || err != nil {
		t.Fatalf("degrade: acted=%v err=%v", acted, err)
	}
	if got := h.history(); len(got) != 1 || got[0] != core.LFR {
		t.Fatalf("transitions = %v, want [LFR]", got)
	}

	// Still paging, already degraded: edge-acting, no second transition.
	for i := 0; i < 3; i++ {
		if acted, _ := h.React(ctx); acted {
			t.Fatal("re-degraded an already degraded shard")
		}
	}
	if got := h.history(); len(got) != 1 {
		t.Fatalf("transitions = %v, want exactly one", got)
	}
}

func TestSLOReactorRecoveryHysteresis(t *testing.T) {
	src := &fakeSLO{}
	h := newSLOHarness(t, src, SLOPolicy{RecoverBudget: 0.5, RecoverAfter: 50 * time.Millisecond})
	ctx := context.Background()

	src.set("g0", pagingSnap())
	if acted, _ := h.React(ctx); !acted {
		t.Fatal("no degrade")
	}

	// Each gate alone must hold recovery back.
	cases := []struct {
		name string
		snap slo.ShardSnapshot
	}{
		{"still paging", pagingSnap()},
		{"warn grade", func() slo.ShardSnapshot {
			s := recoveredSnap(0.9, time.Second)
			s.Grade = slo.GradeWarn
			return s
		}()},
		{"budget low", recoveredSnap(0.4, time.Second)},
		{"too soon", recoveredSnap(0.9, 10*time.Millisecond)},
		{"never paged", func() slo.ShardSnapshot {
			s := recoveredSnap(0.9, time.Second)
			s.LastPage = time.Time{}
			return s
		}()},
	}
	for _, tc := range cases {
		src.set("g0", tc.snap)
		if acted, _ := h.React(ctx); acted {
			t.Fatalf("%s: recovered through a closed gate", tc.name)
		}
	}

	// All gates open: recover once, back to the original FTM.
	src.set("g0", recoveredSnap(0.9, time.Second))
	acted, err := h.React(ctx)
	if !acted || err != nil {
		t.Fatalf("recover: acted=%v err=%v", acted, err)
	}
	if got := h.history(); len(got) != 2 || got[1] != core.PBR {
		t.Fatalf("transitions = %v, want [LFR PBR]", got)
	}

	// Fully recovered: idle.
	if acted, _ := h.React(ctx); acted {
		t.Fatal("acted after full recovery")
	}
}

func TestSLOReactorRecoveryRetriesAfterFailedTransition(t *testing.T) {
	src := &fakeSLO{}
	h := newSLOHarness(t, src, SLOPolicy{RecoverBudget: 0.5, RecoverAfter: time.Millisecond})
	ctx := context.Background()

	src.set("g0", pagingSnap())
	if acted, _ := h.React(ctx); !acted {
		t.Fatal("no degrade")
	}

	src.set("g0", recoveredSnap(0.9, time.Second))
	h.mu.Lock()
	h.failNext = errors.New("transition refused")
	h.mu.Unlock()
	acted, err := h.React(ctx)
	if !acted || err == nil {
		t.Fatalf("failed recovery: acted=%v err=%v", acted, err)
	}
	// degradedFrom survives the failure, so the next tick retries.
	acted, err = h.React(ctx)
	if !acted || err != nil {
		t.Fatalf("retry: acted=%v err=%v", acted, err)
	}
	if got := h.history(); len(got) != 2 || got[1] != core.PBR {
		t.Fatalf("transitions = %v, want [LFR PBR]", got)
	}
}

func TestSLOReactorDegradeTargetConfigurable(t *testing.T) {
	src := &fakeSLO{}
	h := newSLOHarness(t, src, SLOPolicy{DegradeTo: core.TR})
	src.set("g0", pagingSnap())
	if acted, _ := h.React(context.Background()); !acted {
		t.Fatal("no degrade")
	}
	if got := h.history(); len(got) != 1 || got[0] != core.TR {
		t.Fatalf("transitions = %v, want [TR]", got)
	}
}

func TestSLOPolicyDefaults(t *testing.T) {
	p := SLOPolicy{}.withDefaults()
	if p.DegradeTo != core.LFR || p.RecoverBudget != 0.5 ||
		p.RecoverAfter != 30*time.Second || p.Interval != time.Second {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestShardManagerSLOInstallAndSweep(t *testing.T) {
	src := &fakeSLO{}
	m := NewShardManager(nil)

	h := &sloHarness{SLOReactor: newSLOReactor(m.Engine(), "g0", src, SLOPolicy{}), ftm: core.PBR}
	h.SLOReactor.current = func() (core.ID, bool) {
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.ftm, true
	}
	h.SLOReactor.transition = func(_ context.Context, to core.ID) error {
		h.mu.Lock()
		defer h.mu.Unlock()
		h.ftm = to
		h.transitions = append(h.transitions, to)
		return nil
	}
	m.installSLO("g0", h.SLOReactor, SLOPolicy{})

	if m.SLOReactor("g0") != h.SLOReactor {
		t.Fatal("SLOReactor getter missed the installed reactor")
	}
	if m.SLOReactor("missing") != nil {
		t.Fatal("SLOReactor invented a reactor")
	}

	src.set("g0", pagingSnap())
	acted, err := m.ReactAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(acted) != 1 || acted[0] != "g0" {
		t.Fatalf("acted = %v, want [g0]", acted)
	}
	if got := h.history(); len(got) != 1 || got[0] != core.LFR {
		t.Fatalf("transitions = %v, want [LFR]", got)
	}

	// Replacing the reaction stops the old reactor and installs the new.
	h2 := newSLOHarness(t, src, SLOPolicy{DegradeTo: core.TR})
	m.installSLO("g0", h2.SLOReactor, SLOPolicy{DegradeTo: core.TR})
	if m.SLOReactor("g0") != h2.SLOReactor {
		t.Fatal("replacement not installed")
	}
}
