package adaptation

import (
	"context"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/ftm"
	"resilientft/internal/host"
	"resilientft/internal/telemetry"
)

// TestShardManagerDegradesOneGroup starves one shard's master and
// checks the per-shard loop acts exactly there: the starved group
// sheds PBR for LFR, the others keep checkpointing, and the decision
// lands on the shard-labeled series.
func TestShardManagerDegradesOneGroup(t *testing.T) {
	s, err := ftm.NewShardedSystem(context.Background(), ftm.ShardedConfig{
		System:            "calc",
		FTM:               core.PBR,
		Shards:            3,
		HeartbeatInterval: time.Hour,
		SuspectTimeout:    24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)

	m := NewShardManager(nil)
	m.ManageSharded(s, ShardPolicy{}, nil)
	if got := m.Groups(); len(got) != 3 {
		t.Fatalf("managed groups = %v", got)
	}

	// All healthy: a sweep does nothing.
	acted, err := m.ReactAll(context.Background())
	if err != nil || len(acted) != 0 {
		t.Fatalf("healthy sweep acted=%v err=%v", acted, err)
	}

	// Starve shard 1's master.
	s.Group(1).Master().Host().Resources().SetCPUFree(0.01)
	acted, err = m.ReactAll(context.Background())
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(acted) != 1 || acted[0] != "1" {
		t.Fatalf("acted = %v, want [1]", acted)
	}
	for k, want := range []core.ID{core.PBR, core.LFR, core.PBR} {
		if got := s.Group(k).Master().FTM(); got != want {
			t.Fatalf("shard %d FTM = %s, want %s", k, got, want)
		}
	}

	// Edge-acting: the verdict persists but the transition does not
	// repeat.
	if acted, _ = m.ReactAll(context.Background()); len(acted) != 0 {
		t.Fatalf("repeat sweep re-acted: %v", acted)
	}

	c, ok := telemetry.Default().FindCounter("adaptation_shard_decision_total", "shard", "1", "decision", "ftm-degrade")
	if !ok || c.Value() == 0 {
		t.Fatal("shard-labeled degrade decision not recorded")
	}
	if _, ok := telemetry.Default().FindCounter("adaptation_shard_decision_total", "shard", "0", "decision", "ftm-degrade"); ok {
		t.Fatal("healthy shard carries a degrade decision")
	}
}

// TestChooseSlaveHostForLabelsDecisions checks the group-attributed
// placement variant records its avoidances and choice per shard.
func TestChooseSlaveHostForLabelsDecisions(t *testing.T) {
	s, err := ftm.NewShardedSystem(context.Background(), ftm.ShardedConfig{
		System:            "place",
		FTM:               core.PBR,
		Shards:            1,
		HeartbeatInterval: time.Hour,
		SuspectTimeout:    24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)

	hosts := s.Group(0).Hosts()
	hosts[0].Resources().SetCPUFree(0.01) // unhealthy: must be avoided
	got, err := ChooseSlaveHostFor("0", []*host.Host{hosts[0], hosts[1]})
	if err != nil {
		t.Fatal(err)
	}
	if got != hosts[1] {
		t.Fatalf("chose %s, want %s", got.Name(), hosts[1].Name())
	}
	for _, decision := range []string{"avoid-unhealthy", "place-slave"} {
		c, ok := telemetry.Default().FindCounter("adaptation_shard_decision_total", "shard", "0", "decision", decision)
		if !ok || c.Value() == 0 {
			t.Fatalf("shard-labeled %s decision not recorded", decision)
		}
	}
}
