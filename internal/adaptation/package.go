// Package adaptation implements the hot side of the paper's resilient
// computing loop: the FTM & Adaptation Repository holding transition
// packages (new component bundles + a reconfiguration script, developed
// off-line), and the Adaptation Engine that executes differential
// transitions on-line in three steps — deploy the package, run the
// script, remove residuals — across both replicas, with fail-silent
// enforcement and stable-storage recovery (paper §5).
package adaptation

import (
	"fmt"
	"sync"

	"resilientft/internal/component"
	"resilientft/internal/core"
	"resilientft/internal/fscript"
	"resilientft/internal/ftm"
)

// Package-archive sizing: a transition package is a sealed archive whose
// manifest (dependency metadata, signatures, resolution tables) is
// verified when the package is deployed, and whose removal receipt is
// verified when residuals are cleaned up. These fixed costs dominate the
// per-brick costs, reproducing the deployment-heavy cost structure the
// paper measures over FraSCAti/OSGi packages (Figure 9).
const (
	manifestSize = 192 * 1024
	receiptSize  = 96 * 1024
)

// TransitionPackage is what the repository ships for one differential
// transition on one replica role: the new bricks (as deployable
// definitions with sealed bundles), the reconfiguration script, and the
// sealed archive metadata.
type TransitionPackage struct {
	From, To core.ID
	Role     core.Role
	Script   *fscript.Script
	Env      fscript.Env
	// Replaced lists the variable-feature slots the transition swaps.
	Replaced []string
	// Manifest seals the package archive; verified at deployment.
	Manifest component.Bundle
	// Receipt seals the removal audit; verified when residuals are
	// removed.
	Receipt component.Bundle
}

// Bundles returns the package's deployable bundles.
func (p *TransitionPackage) Bundles() []component.Bundle {
	out := make([]component.Bundle, 0, len(p.Env.Definitions))
	for _, def := range p.Env.Definitions {
		out = append(out, def.Bundle)
	}
	return out
}

// packageKey identifies a package in the repository.
type packageKey struct {
	from, to core.ID
	role     core.Role
	system   string
}

// Repository is the FTM & Adaptation Repository (the cold side of the
// loop). Packages for the catalogue transitions are synthesized on
// demand from the Table 2 schemes — modelling their off-line development
// — and externally developed packages can be uploaded at any time during
// service life (the agile path for transitions unknown at design time).
type Repository struct {
	mu       sync.Mutex
	uploaded map[packageKey]*TransitionPackage
	// builds counts package constructions, so tests can verify on-demand
	// synthesis vs upload hits.
	builds int
}

// NewRepository returns an empty repository (catalogue transitions are
// synthesized on demand).
func NewRepository() *Repository {
	return &Repository{uploaded: make(map[packageKey]*TransitionPackage)}
}

// Upload installs an externally developed transition package for a
// system. Uploaded packages take precedence over synthesized ones.
func (r *Repository) Upload(system string, pkg *TransitionPackage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.uploaded[packageKey{from: pkg.From, to: pkg.To, role: pkg.Role, system: system}] = pkg
}

// Builds reports how many packages were synthesized so far.
func (r *Repository) Builds() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.builds
}

// Get returns the transition package for from→to on a replica of the
// given role, whose FTM composite lives at path. Uploaded packages are
// preferred; otherwise the package is synthesized from the catalogue
// schemes.
func (r *Repository) Get(system, path string, from, to core.ID, role core.Role) (*TransitionPackage, error) {
	r.mu.Lock()
	if pkg, ok := r.uploaded[packageKey{from: from, to: to, role: role, system: system}]; ok {
		r.mu.Unlock()
		return pkg, nil
	}
	r.builds++
	r.mu.Unlock()
	return BuildPackage(path, from, to, role)
}

// BuildPackage synthesizes the differential transition package from the
// catalogue's Table 2 schemes.
func BuildPackage(path string, from, to core.ID, role core.Role) (*TransitionPackage, error) {
	fromDesc, err := core.Lookup(from)
	if err != nil {
		return nil, err
	}
	toDesc, err := core.Lookup(to)
	if err != nil {
		return nil, err
	}
	if fromDesc.Hosts != toDesc.Hosts {
		return nil, fmt.Errorf("adaptation: %s and %s occupy different host counts; a differential transition cannot change the replica topology", from, to)
	}
	fromScheme := fromDesc.Scheme(role)
	toScheme := toDesc.Scheme(role)
	script, env, err := ftm.TransitionScript(path, fromScheme, toScheme)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("%s->%s/%s", from, to, role)
	return &TransitionPackage{
		From:     from,
		To:       to,
		Role:     role,
		Script:   script,
		Env:      env,
		Replaced: core.Diff(fromScheme, toScheme),
		Manifest: component.NewBundle("manifest:"+name, manifestSize),
		Receipt:  component.NewBundle("receipt:"+name, receiptSize),
	}, nil
}
