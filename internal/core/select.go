package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrNoGenericSolution reports that no FTM in the catalogue is valid for
// the given (FT, A, R) — the "No generic solution" state of Figure 8
// (typically a non-deterministic application without state access).
var ErrNoGenericSolution = errors.New("core: no generic solution for these (FT, A, R) values")

// Inconsistency is one reason an FTM is invalid for given parameters.
type Inconsistency struct {
	// Param names the violated parameter class: "FT", "A" or "R".
	Param string
	// Detail is the human-readable diagnosis.
	Detail string
}

// String renders the inconsistency.
func (i Inconsistency) String() string { return i.Param + ": " + i.Detail }

// Validate checks an FTM against the current (FT, A, R) values and
// returns every inconsistency found. An empty result means the FTM is
// consistent — the resilience invariant the system maintains.
func Validate(d Descriptor, ft FaultModel, a AppTraits, r ResourceState, th Thresholds) []Inconsistency {
	var out []Inconsistency
	if !d.Tolerates.Covers(ft) {
		missing := make([]string, 0, 2)
		for _, c := range ft.Classes() {
			if !d.Tolerates.Has(c) {
				missing = append(missing, c.String())
			}
		}
		out = append(out, Inconsistency{
			Param:  "FT",
			Detail: fmt.Sprintf("%s does not tolerate %s", d.ID, strings.Join(missing, "+")),
		})
	}
	if d.NeedsDeterminism && !a.Deterministic {
		out = append(out, Inconsistency{
			Param:  "A",
			Detail: fmt.Sprintf("%s requires behavioural determinism", d.ID),
		})
	}
	if d.NeedsStateAccess && !a.StateAccess {
		out = append(out, Inconsistency{
			Param:  "A",
			Detail: fmt.Sprintf("%s requires application state access for checkpointing", d.ID),
		})
	}
	if d.Hosts > r.Hosts {
		out = append(out, Inconsistency{
			Param:  "R",
			Detail: fmt.Sprintf("%s needs %d hosts, %d available", d.ID, d.Hosts, r.Hosts),
		})
	}
	if d.Bandwidth == LevelHigh && th.BandwidthConstrained(r) {
		out = append(out, Inconsistency{
			Param:  "R",
			Detail: fmt.Sprintf("%s needs high bandwidth, %.0f kbit/s available", d.ID, r.BandwidthKbps),
		})
	}
	if d.CPU == LevelHigh && th.CPUConstrained(r) {
		out = append(out, Inconsistency{
			Param:  "R",
			Detail: fmt.Sprintf("%s needs high CPU, %.0f%% free", d.ID, r.CPUFree*100),
		})
	}
	return out
}

// Select returns the preferred FTM for the given (FT, A, R): among the
// catalogue entries whose assumptions hold, the one covering the fault
// model with the least over-provisioning and the lowest resource cost.
func Select(ft FaultModel, a AppTraits, r ResourceState, th Thresholds) (Descriptor, error) {
	type candidate struct {
		d     Descriptor
		extra int // fault classes covered beyond those required
		cost  int
	}
	var valid []candidate
	all := append(Catalogue(), Extensions()...)
	for _, d := range all {
		if len(Validate(d, ft, a, r, th)) > 0 {
			continue
		}
		extra := 0
		for _, c := range d.Tolerates.Classes() {
			if !ft.Has(c) {
				extra++
			}
		}
		// Under resource pressure, penalize demand on the constrained
		// dimension so the trade-off the paper describes (more CPU vs
		// less bandwidth) resolves toward the plentiful resource. With no
		// pressure the cost is zero and the catalogue preference decides.
		cost := 0
		if th.BandwidthConstrained(r) {
			cost += 2 * d.BandwidthCost
		}
		if th.CPUConstrained(r) {
			cost += 2 * d.CPUCost
		}
		valid = append(valid, candidate{d: d, extra: extra, cost: cost})
	}
	if len(valid) == 0 {
		return Descriptor{}, fmt.Errorf("%w: FT=%s A=%s", ErrNoGenericSolution, ft, a)
	}
	sort.Slice(valid, func(i, j int) bool {
		if valid[i].extra != valid[j].extra {
			return valid[i].extra < valid[j].extra
		}
		if valid[i].cost != valid[j].cost {
			return valid[i].cost < valid[j].cost
		}
		return valid[i].d.Preference < valid[j].d.Preference
	})
	return valid[0].d, nil
}
