package core

import (
	"errors"
	"testing"
)

func resources(bw, cpu float64) ResourceState {
	return ResourceState{BandwidthKbps: bw, CPUFree: cpu, Energy: 1, Hosts: 2}
}

func TestFaultModelOps(t *testing.T) {
	m := NewFaultModel(FaultCrash)
	if !m.Has(FaultCrash) || m.Has(FaultTransientValue) {
		t.Fatal("Has wrong")
	}
	m2 := m.With(FaultTransientValue)
	if !m2.Has(FaultCrash) || !m2.Has(FaultTransientValue) {
		t.Fatal("With wrong")
	}
	if m.Has(FaultTransientValue) {
		t.Fatal("With mutated the receiver")
	}
	if !m2.Covers(m) || m.Covers(m2) {
		t.Fatal("Covers wrong")
	}
	m3 := m2.Without(FaultTransientValue)
	if !m3.Equal(m) {
		t.Fatalf("Without wrong: %s", m3)
	}
	if got := m2.String(); got != "crash+transient-value" {
		t.Fatalf("String = %q", got)
	}
	if got := NewFaultModel().String(); got != "none" {
		t.Fatalf("empty String = %q", got)
	}
}

// TestTable1 pins the catalogue to the paper's Table 1 values.
func TestTable1(t *testing.T) {
	cases := []struct {
		id               ID
		crash, trans     bool
		permanent        bool
		needsDet         bool
		needsState       bool
		bandwidth, cpu   ResourceLevel
		supportsNonDeter bool
	}{
		{PBR, true, false, false, false, true, LevelHigh, LevelLow, true},
		{LFR, true, false, false, true, false, LevelLow, LevelLow, false},
		{TR, false, true, false, true, true, LevelNA, LevelHigh, false},
		// A&Duplex tolerates crash, transient and permanent value faults.
		{APBR, true, true, true, true, true, LevelHigh, LevelHigh, false},
		{ALFR, true, true, true, true, false, LevelLow, LevelHigh, false},
		// Compositions.
		{PBRTR, true, true, false, true, true, LevelHigh, LevelHigh, false},
		{LFRTR, true, true, false, true, true, LevelLow, LevelHigh, false},
	}
	for _, tc := range cases {
		d, err := Lookup(tc.id)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", tc.id, err)
		}
		if d.Tolerates.Has(FaultCrash) != tc.crash {
			t.Errorf("%s: crash tolerance = %v", tc.id, !tc.crash)
		}
		if d.Tolerates.Has(FaultTransientValue) != tc.trans {
			t.Errorf("%s: transient tolerance = %v", tc.id, !tc.trans)
		}
		if d.Tolerates.Has(FaultPermanentValue) != tc.permanent {
			t.Errorf("%s: permanent tolerance = %v", tc.id, !tc.permanent)
		}
		if d.NeedsDeterminism != tc.needsDet {
			t.Errorf("%s: NeedsDeterminism = %v", tc.id, d.NeedsDeterminism)
		}
		if d.NeedsStateAccess != tc.needsState {
			t.Errorf("%s: NeedsStateAccess = %v", tc.id, d.NeedsStateAccess)
		}
		if d.Bandwidth != tc.bandwidth {
			t.Errorf("%s: Bandwidth = %v, want %v", tc.id, d.Bandwidth, tc.bandwidth)
		}
		if d.CPU != tc.cpu {
			t.Errorf("%s: CPU = %v, want %v", tc.id, d.CPU, tc.cpu)
		}
		if !d.NeedsDeterminism != tc.supportsNonDeter {
			t.Errorf("%s: non-determinism support = %v", tc.id, !d.NeedsDeterminism)
		}
	}
}

// TestTable2Schemes pins the generic execution schemes to Table 2.
func TestTable2Schemes(t *testing.T) {
	cases := []struct {
		id     ID
		role   Role
		scheme Scheme
	}{
		// PBR (Primary): Nothing / Compute / Checkpoint to Backup.
		{PBR, RoleMaster, Scheme{TypeNop, TypeComputeProceed, TypePBRCheckpoint}},
		// PBR (Backup): Nothing / Nothing / Process checkpoint.
		{PBR, RoleSlave, Scheme{TypeNop, TypeNoProceed, TypePBRApply}},
		// LFR (Leader): Forward request / Compute / Notify Follower.
		{LFR, RoleMaster, Scheme{TypeLFRForward, TypeComputeProceed, TypeLFRNotify}},
		// LFR (Follower): Receive request / Compute / Process notification.
		{LFR, RoleSlave, Scheme{TypeLFRReceive, TypeComputeProceed, TypeLFRAck}},
		// TR: Capture state / Compute / Restore state.
		{TR, RoleMaster, Scheme{TypeTRCapture, TypeTRProceed, TypeTRRestore}},
		// A&Duplex: Nothing / Compute / Assert output (over the PBR base).
		{APBR, RoleMaster, Scheme{TypeNop, TypeAssertProceed, TypePBRCheckpoint}},
	}
	for _, tc := range cases {
		got := MustLookup(tc.id).Scheme(tc.role)
		if got != tc.scheme {
			t.Errorf("%s/%s scheme = %+v, want %+v", tc.id, tc.role, got, tc.scheme)
		}
	}
}

// TestDiffCounts pins the differential-transition sizes the evaluation
// relies on (Figure 9: 1, 2 and 3 components replaced).
func TestDiffCounts(t *testing.T) {
	cases := []struct {
		from, to ID
		want     int
	}{
		{LFR, LFRTR, 1},  // replace proceed only
		{PBR, LFR, 2},    // replace syncBefore and syncAfter
		{PBR, LFRTR, 3},  // replace all three variable features
		{PBR, PBRTR, 1},  // replace proceed only
		{PBRTR, APBR, 1}, // swap TR proceed for assertion proceed
		{PBRTR, LFRTR, 2},
		{LFRTR, ALFR, 1},
		{PBR, APBR, 1},
		{LFR, ALFR, 1},
		{APBR, ALFR, 3}, // different duplex base and nothing shared but compute? before+after+proceed? assert==assert
	}
	for _, tc := range cases {
		from := MustLookup(tc.from).MasterScheme
		to := MustLookup(tc.to).MasterScheme
		got := len(Diff(from, to))
		want := tc.want
		if tc.from == APBR && tc.to == ALFR {
			// Both use the assertion proceed: only the duplex sync pair
			// differs.
			want = 2
		}
		if got != want {
			t.Errorf("Diff(%s -> %s) = %d components, want %d", tc.from, tc.to, got, want)
		}
	}
}

func TestDiffSymmetric(t *testing.T) {
	set := DeployableSet()
	for _, a := range set {
		for _, b := range set {
			ab := len(Diff(MustLookup(a).MasterScheme, MustLookup(b).MasterScheme))
			ba := len(Diff(MustLookup(b).MasterScheme, MustLookup(a).MasterScheme))
			if ab != ba {
				t.Errorf("Diff(%s,%s)=%d but Diff(%s,%s)=%d", a, b, ab, b, a, ba)
			}
			if a == b && ab != 0 {
				t.Errorf("Diff(%s,%s) = %d, want 0", a, b, ab)
			}
		}
	}
}

func TestValidateDetectsEachInconsistency(t *testing.T) {
	th := DefaultThresholds()
	det := AppTraits{Deterministic: true, StateAccess: true}

	// FT: PBR cannot tolerate transient value faults.
	inc := Validate(MustLookup(PBR), NewFaultModel(FaultCrash, FaultTransientValue), det, resources(5000, 0.9), th)
	if len(inc) != 1 || inc[0].Param != "FT" {
		t.Fatalf("FT violation = %v", inc)
	}
	// A: LFR needs determinism.
	inc = Validate(MustLookup(LFR), NewFaultModel(FaultCrash), AppTraits{Deterministic: false}, resources(5000, 0.9), th)
	if len(inc) != 1 || inc[0].Param != "A" {
		t.Fatalf("A violation (determinism) = %v", inc)
	}
	// A: PBR needs state access.
	inc = Validate(MustLookup(PBR), NewFaultModel(FaultCrash), AppTraits{Deterministic: true}, resources(5000, 0.9), th)
	if len(inc) != 1 || inc[0].Param != "A" {
		t.Fatalf("A violation (state) = %v", inc)
	}
	// R: PBR needs bandwidth.
	inc = Validate(MustLookup(PBR), NewFaultModel(FaultCrash), det, resources(100, 0.9), th)
	if len(inc) != 1 || inc[0].Param != "R" {
		t.Fatalf("R violation (bandwidth) = %v", inc)
	}
	// R: LFR⊕TR needs CPU.
	inc = Validate(MustLookup(LFRTR), NewFaultModel(FaultCrash, FaultTransientValue), det, resources(5000, 0.1), th)
	if len(inc) != 1 || inc[0].Param != "R" {
		t.Fatalf("R violation (CPU) = %v", inc)
	}
	// R: duplex needs two hosts.
	oneHost := ResourceState{BandwidthKbps: 5000, CPUFree: 0.9, Energy: 1, Hosts: 1}
	inc = Validate(MustLookup(LFR), NewFaultModel(FaultCrash), det, oneHost, th)
	if len(inc) != 1 || inc[0].Param != "R" {
		t.Fatalf("R violation (hosts) = %v", inc)
	}
	// Consistent: no violations.
	inc = Validate(MustLookup(PBR), NewFaultModel(FaultCrash), det, resources(5000, 0.9), th)
	if len(inc) != 0 {
		t.Fatalf("consistent configuration flagged: %v", inc)
	}
}

func TestSelectPolicies(t *testing.T) {
	th := DefaultThresholds()
	crash := NewFaultModel(FaultCrash)
	crashTransient := crash.With(FaultTransientValue)
	all := crashTransient.With(FaultPermanentValue)

	cases := []struct {
		name string
		ft   FaultModel
		a    AppTraits
		r    ResourceState
		want ID
	}{
		{"crash, non-deterministic app -> PBR (only duplex allowing it)",
			crash, AppTraits{Deterministic: false, StateAccess: true}, resources(5000, 0.9), PBR},
		{"crash, deterministic, plenty of everything -> PBR (lowest CPU cost)",
			crash, AppTraits{Deterministic: true, StateAccess: true}, resources(5000, 0.9), PBR},
		{"crash, bandwidth-constrained -> LFR",
			crash, AppTraits{Deterministic: true, StateAccess: true}, resources(100, 0.9), LFR},
		{"crash, no state access -> LFR",
			crash, AppTraits{Deterministic: true, StateAccess: false}, resources(5000, 0.9), LFR},
		{"crash+transient, state access, low bandwidth -> LFR⊕TR",
			crashTransient, AppTraits{Deterministic: true, StateAccess: true}, resources(100, 0.9), LFRTR},
		{"crash+transient, no state access -> A&LFR",
			crashTransient, AppTraits{Deterministic: true, StateAccess: false}, resources(5000, 0.9), ALFR},
		{"all faults, state access -> A&PBR or A&LFR (assertion duplex)",
			all, AppTraits{Deterministic: true, StateAccess: true}, resources(5000, 0.9), APBR},
		{"transient only, single host -> TR",
			NewFaultModel(FaultTransientValue), AppTraits{Deterministic: true, StateAccess: true},
			ResourceState{BandwidthKbps: 0, CPUFree: 0.9, Energy: 1, Hosts: 1}, TR},
	}
	for _, tc := range cases {
		got, err := Select(tc.ft, tc.a, tc.r, th)
		if err != nil {
			t.Errorf("%s: Select: %v", tc.name, err)
			continue
		}
		if got.ID != tc.want {
			t.Errorf("%s: Select = %s, want %s", tc.name, got.ID, tc.want)
		}
	}
}

func TestSelectNoGenericSolution(t *testing.T) {
	// Non-deterministic application without state access: the paper's
	// illustrative set has no generic solution (the Figure 8 dead end);
	// the semi-active extension (Delta-4 XPA style) fills exactly that
	// gap, so Select now resolves it.
	d, err := Select(NewFaultModel(FaultCrash),
		AppTraits{Deterministic: false, StateAccess: false},
		resources(5000, 0.9), DefaultThresholds())
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if d.ID != SemiActive {
		t.Fatalf("Select = %s, want the semi-active extension", d.ID)
	}
	// A combination nothing covers: software faults in a
	// non-deterministic application (recovery blocks need determinism for
	// their acceptance comparison).
	_, err = Select(NewFaultModel(FaultCrash, FaultSoftware),
		AppTraits{Deterministic: false, StateAccess: true},
		resources(5000, 0.9), DefaultThresholds())
	if !errors.Is(err, ErrNoGenericSolution) {
		t.Fatalf("Select = %v, want ErrNoGenericSolution", err)
	}
}

func TestSelectedFTMAlwaysValid(t *testing.T) {
	th := DefaultThresholds()
	models := []FaultModel{
		NewFaultModel(FaultCrash),
		NewFaultModel(FaultTransientValue),
		NewFaultModel(FaultCrash, FaultTransientValue),
		NewFaultModel(FaultCrash, FaultTransientValue, FaultPermanentValue),
	}
	traits := []AppTraits{
		{Deterministic: true, StateAccess: true},
		{Deterministic: true, StateAccess: false},
		{Deterministic: false, StateAccess: true},
	}
	states := []ResourceState{resources(5000, 0.9), resources(100, 0.9), resources(5000, 0.1)}
	for _, ft := range models {
		for _, a := range traits {
			for _, r := range states {
				d, err := Select(ft, a, r, th)
				if errors.Is(err, ErrNoGenericSolution) {
					continue
				}
				if err != nil {
					t.Fatalf("Select(%s,%s): %v", ft, a, err)
				}
				if inc := Validate(d, ft, a, r, th); len(inc) != 0 {
					t.Errorf("Select(%s,%s,%+v) returned invalid %s: %v", ft, a, r, d.ID, inc)
				}
			}
		}
	}
}

func TestFigure2Graph(t *testing.T) {
	edges := TransitionGraph()
	if len(edges) != 8 {
		t.Fatalf("Figure 2 has %d edges, want 8", len(edges))
	}
	vertices := GraphVertices()
	if len(vertices) != 5 {
		t.Fatalf("Figure 2 has %d vertices, want 5", len(vertices))
	}
	// The passive<->active swaps are labelled A,R; compositions FT.
	nb := Neighbors(VertexPBR)
	if labels := nb[VertexLFR]; len(labels) != 2 {
		t.Fatalf("PBR<->LFR labels = %v", labels)
	}
	if labels := nb[VertexPBRTR]; len(labels) != 1 || labels[0] != ParamFT {
		t.Fatalf("PBR<->PBR⊕TR labels = %v", labels)
	}
	// Every deployable FTM maps onto a Figure 2 vertex.
	for _, id := range DeployableSet() {
		if _, err := VertexFor(id); err != nil {
			t.Errorf("VertexFor(%s): %v", id, err)
		}
	}
}

// TestFigure2EdgeLabelsConsistent checks each edge's labels against the
// Table 1 deltas of its endpoints: an FT label requires differing fault
// models; an A label differing application assumptions; an R label
// differing resource profiles.
func TestFigure2EdgeLabelsConsistent(t *testing.T) {
	// Representative descriptor per vertex (A&Duplex -> A&LFR).
	rep := map[GraphVertex]Descriptor{
		VertexPBR:     MustLookup(PBR),
		VertexLFR:     MustLookup(LFR),
		VertexPBRTR:   MustLookup(PBRTR),
		VertexLFRTR:   MustLookup(LFRTR),
		VertexADuplex: MustLookup(ALFR),
	}
	// The A label of a composed pair refers to the assumptions of its
	// duplex base (PBR⊕TR vs LFR⊕TR trade state access for determinism
	// exactly as PBR vs LFR do).
	baseOf := func(d Descriptor) Descriptor {
		if d.Base != "" {
			return MustLookup(d.Base)
		}
		return d
	}
	for _, e := range TransitionGraph() {
		a, b := rep[e.A], rep[e.B]
		for _, label := range e.Labels {
			switch label {
			case ParamFT:
				if a.Tolerates.Equal(b.Tolerates) {
					t.Errorf("edge %s: FT label but same fault model", e)
				}
			case ParamA:
				ba, bb := baseOf(a), baseOf(b)
				ownDiffer := a.NeedsDeterminism != b.NeedsDeterminism || a.NeedsStateAccess != b.NeedsStateAccess
				baseDiffer := ba.NeedsDeterminism != bb.NeedsDeterminism || ba.NeedsStateAccess != bb.NeedsStateAccess
				if !ownDiffer && !baseDiffer {
					t.Errorf("edge %s: A label but same application assumptions", e)
				}
			case ParamR:
				if a.Bandwidth == b.Bandwidth && a.CPUCost == b.CPUCost {
					t.Errorf("edge %s: R label but same resource profile", e)
				}
			}
		}
	}
}

func TestScenarioGraphClassification(t *testing.T) {
	for _, e := range ScenarioGraph() {
		class := TriggerClass(e.Trigger)
		if class == "" {
			t.Errorf("edge %s: trigger has no class", e)
			continue
		}
		// Paper §5.4: R changes are probe-detected, A and FT changes need
		// manager input; A and R transitions are reactive, FT proactive.
		switch class {
		case ParamR:
			if e.Detection != ByProbe || e.Nature != Reactive {
				t.Errorf("edge %s: R trigger must be probe/reactive", e)
			}
		case ParamA:
			if e.Detection != ByManager || e.Nature != Reactive {
				t.Errorf("edge %s: A trigger must be manager/reactive", e)
			}
		case ParamFT:
			if e.Detection != ByManager || e.Nature != Proactive {
				t.Errorf("edge %s: FT trigger must be manager/proactive", e)
			}
		}
	}
}

// TestScenarioNoMandatoryOscillation verifies the stability argument of
// §5.4: the reverse of a mandatory transition is never mandatory, so a
// parameter oscillating near a threshold cannot flip the system back and
// forth automatically.
func TestScenarioNoMandatoryOscillation(t *testing.T) {
	mandatory := make(map[[2]ScenState]bool)
	for _, e := range ScenarioGraph() {
		if e.Kind == Mandatory {
			mandatory[[2]ScenState{e.From, e.To}] = true
		}
	}
	for pair := range mandatory {
		if mandatory[[2]ScenState{pair[1], pair[0]}] {
			t.Errorf("mandatory cycle between %s and %s", pair[0], pair[1])
		}
	}
}

func TestScenarioEveryMandatoryLeavesInvalidState(t *testing.T) {
	// Sanity: every non-None state has at least one outgoing mandatory
	// edge (there is always a way to be invalidated) and the None state
	// has a (manager-gated) way out.
	mandatoryOut := make(map[ScenState]int)
	anyOut := make(map[ScenState]int)
	for _, e := range ScenarioGraph() {
		anyOut[e.From]++
		if e.Kind == Mandatory {
			mandatoryOut[e.From]++
		}
	}
	for _, s := range ScenarioStates() {
		if s == StNone {
			continue
		}
		if mandatoryOut[s] == 0 {
			t.Errorf("state %s has no mandatory exit", s)
		}
	}
	if anyOut[StNone] == 0 {
		t.Error("no way out of the no-generic-solution state")
	}
}

func TestStateForFTMForRoundTrip(t *testing.T) {
	traits := []AppTraits{
		{Deterministic: true, StateAccess: true},
		{Deterministic: true, StateAccess: false},
		{Deterministic: false, StateAccess: true},
	}
	for _, a := range traits {
		for _, id := range DeployableSet() {
			st, err := StateFor(id, a)
			if err != nil {
				t.Fatalf("StateFor(%s): %v", id, err)
			}
			back, err := FTMFor(st, a)
			if err != nil {
				t.Fatalf("FTMFor(%s): %v", st, err)
			}
			// The round trip maps into the same Figure 2 vertex (A&PBR
			// and A&LFR share the A&Duplex state; PBR⊕TR shares PBR's).
			v1, err := VertexFor(id)
			if err != nil {
				t.Fatal(err)
			}
			v2, err := VertexFor(back)
			if err != nil {
				t.Fatal(err)
			}
			if id == PBRTR {
				continue // folds into the PBR state by construction
			}
			if v1 != v2 {
				t.Errorf("round trip %s -> %s -> %s crosses vertices (%s -> %s)", id, st, back, v1, v2)
			}
		}
	}
	if _, err := FTMFor(StNone, AppTraits{}); !errors.Is(err, ErrNoGenericSolution) {
		t.Fatalf("FTMFor(None) err = %v", err)
	}
}

func TestOutgoing(t *testing.T) {
	edges := Outgoing(StPBRDet, TrigBandwidthDrop)
	if len(edges) != 1 || edges[0].To != StLFRState || edges[0].Kind != Mandatory {
		t.Fatalf("Outgoing(PBRdet, bandwidth-drop) = %v", edges)
	}
	if edges := Outgoing(StPBRDet, TrigHardwareReplaced); len(edges) != 0 {
		t.Fatalf("unexpected edges: %v", edges)
	}
}

func TestStateForScenarioGraphClosure(t *testing.T) {
	// Every edge endpoint is a state the mapping functions understand.
	for _, e := range ScenarioGraph() {
		for _, s := range []ScenState{e.From, e.To} {
			if s == StNone {
				continue
			}
			if _, err := FTMFor(s, AppTraits{Deterministic: true, StateAccess: true}); err != nil {
				t.Errorf("state %s is not deployable: %v", s, err)
			}
		}
	}
}
