package core

import (
	"fmt"
	"sort"
)

// ScenState is a vertex of the Figure 8 extended scenario graph: an FTM
// paired with the application-characteristic configuration it runs under.
type ScenState string

// Figure 8 states.
const (
	StPBRDet     ScenState = "PBR/determinism"
	StPBRNonDet  ScenState = "PBR/non-determinism"
	StLFRState   ScenState = "LFR/state-access"
	StLFRNoState ScenState = "LFR/no-state-access"
	StLFRTR      ScenState = "LFR⊕TR"
	StADuplex    ScenState = "A&Duplex"
	StNone       ScenState = "no-generic-solution"
)

// TransitionKind classifies an edge of the scenario graph.
type TransitionKind int

// Transition kinds (paper §5.4).
const (
	// Mandatory transitions follow parameter variations that invalidate
	// the current FTM; they execute automatically.
	Mandatory TransitionKind = iota + 1
	// Possible transitions follow variations that merely make another
	// FTM preferable; the system manager decides.
	Possible
	// Intra transitions reconfigure the current FTM without changing it.
	Intra
)

// String returns the kind name.
func (k TransitionKind) String() string {
	switch k {
	case Mandatory:
		return "mandatory"
	case Possible:
		return "possible"
	case Intra:
		return "intra-FTM"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Detection says who observes the triggering change.
type Detection int

// Detection modes.
const (
	// ByProbe marks changes detected automatically by monitoring probes
	// (the R variations).
	ByProbe Detection = iota + 1
	// ByManager marks changes requiring input from the application
	// developer or system manager (A and FT variations).
	ByManager
)

// String returns the detection mode name.
func (d Detection) String() string {
	switch d {
	case ByProbe:
		return "probe"
	case ByManager:
		return "manager"
	default:
		return fmt.Sprintf("detection(%d)", int(d))
	}
}

// Nature says when the transition must fire relative to the change.
type Nature int

// Transition natures (paper §5.4).
const (
	// Reactive transitions respond to a change that already happened
	// (A and R variations).
	Reactive Nature = iota + 1
	// Proactive transitions fire in advance of a foreseen fault-model
	// change (FT variations) — before the current FTM becomes unable to
	// tolerate the new faults.
	Proactive
)

// String returns the nature name.
func (n Nature) String() string {
	switch n {
	case Reactive:
		return "reactive"
	case Proactive:
		return "proactive"
	default:
		return fmt.Sprintf("nature(%d)", int(n))
	}
}

// Trigger is a named adaptation trigger computed by the monitoring engine
// or supplied by the system manager.
type Trigger string

// Triggers labelling Figure 8 edges.
const (
	TrigBandwidthDrop     Trigger = "bandwidth-drop"
	TrigBandwidthIncrease Trigger = "bandwidth-increase"
	TrigCPUDrop           Trigger = "cpu-drop"
	TrigCPUIncrease       Trigger = "cpu-increase"
	TrigStateAccessLoss   Trigger = "state-access-loss"
	TrigStateAccess       Trigger = "state-access"
	TrigAppDeterminism    Trigger = "application-determinism"
	TrigAppNonDeterminism Trigger = "application-non-determinism"
	TrigHardwareAging     Trigger = "hardware-aging"
	TrigHardwareReplaced  Trigger = "hardware-replaced"
	TrigCriticalPhase     Trigger = "start-more-critical-phase"
	TrigLessCriticalPhase Trigger = "start-less-critical-phase"
)

// TriggerClass returns the parameter class a trigger varies.
func TriggerClass(t Trigger) ParamClass {
	switch t {
	case TrigBandwidthDrop, TrigBandwidthIncrease, TrigCPUDrop, TrigCPUIncrease:
		return ParamR
	case TrigStateAccessLoss, TrigStateAccess, TrigAppDeterminism, TrigAppNonDeterminism:
		return ParamA
	case TrigHardwareAging, TrigHardwareReplaced, TrigCriticalPhase, TrigLessCriticalPhase:
		return ParamFT
	default:
		return ""
	}
}

// ScenarioEdge is one edge of the Figure 8 extended graph of transition
// scenarios.
type ScenarioEdge struct {
	From, To  ScenState
	Trigger   Trigger
	Kind      TransitionKind
	Detection Detection
	Nature    Nature
}

// String renders the edge.
func (e ScenarioEdge) String() string {
	return fmt.Sprintf("%s --%s--> %s [%s, %s, %s]",
		e.From, e.Trigger, e.To, e.Kind, e.Detection, e.Nature)
}

// edge builds a ScenarioEdge deriving detection and nature from the
// trigger's parameter class: R changes are probe-detected and reactive,
// A changes are manager-reported and reactive, FT changes are
// manager-anticipated and proactive (paper §5.4).
func edge(from ScenState, trig Trigger, to ScenState, kind TransitionKind) ScenarioEdge {
	e := ScenarioEdge{From: from, To: to, Trigger: trig, Kind: kind}
	switch TriggerClass(trig) {
	case ParamR:
		e.Detection, e.Nature = ByProbe, Reactive
	case ParamA:
		e.Detection, e.Nature = ByManager, Reactive
	case ParamFT:
		e.Detection, e.Nature = ByManager, Proactive
	}
	return e
}

// ScenarioGraph returns the Figure 8 extended graph of transition
// scenarios. The figure's edge set is reconstructed from its labels;
// every mandatory edge's reverse, when present, is possible — the
// oscillation guard of §5.4 (verified by tests).
func ScenarioGraph() []ScenarioEdge {
	return []ScenarioEdge{
		// --- Mandatory inter-FTM transitions (current FTM invalidated).
		// PBR's checkpoints need bandwidth and state access.
		edge(StPBRDet, TrigBandwidthDrop, StLFRState, Mandatory),
		edge(StPBRDet, TrigStateAccessLoss, StLFRNoState, Mandatory),
		// A non-deterministic application without state access has no
		// generic solution.
		edge(StPBRNonDet, TrigStateAccessLoss, StNone, Mandatory),
		// LFR needs determinism; PBR is the fallback, or nothing.
		edge(StLFRState, TrigAppNonDeterminism, StPBRNonDet, Mandatory),
		edge(StLFRNoState, TrigAppNonDeterminism, StNone, Mandatory),
		edge(StLFRTR, TrigAppNonDeterminism, StPBRNonDet, Mandatory),
		edge(StADuplex, TrigAppNonDeterminism, StNone, Mandatory),
		// TR needs state access; assertion-based duplex does not.
		edge(StLFRTR, TrigStateAccessLoss, StADuplex, Mandatory),
		// Fault-model hardening (proactive): transient faults appear with
		// hardware aging; critical phases demand the assertion-checked
		// duplex derived from the safety analysis.
		edge(StLFRState, TrigHardwareAging, StLFRTR, Mandatory),
		edge(StLFRNoState, TrigHardwareAging, StADuplex, Mandatory),
		edge(StLFRState, TrigCriticalPhase, StADuplex, Mandatory),
		edge(StLFRNoState, TrigCriticalPhase, StADuplex, Mandatory),
		edge(StLFRTR, TrigCriticalPhase, StADuplex, Mandatory),
		// --- Possible inter-FTM transitions (manager's choice).
		// Leaving the dead end once the blocking characteristic returns:
		// re-attaching an FTM is the manager's call, and making these
		// possible rather than mandatory keeps every mandatory edge's
		// reverse non-mandatory (the oscillation guard).
		edge(StNone, TrigStateAccess, StPBRNonDet, Possible),
		edge(StNone, TrigAppDeterminism, StLFRNoState, Possible),
		// More CPU headroom permits the active strategy.
		edge(StPBRDet, TrigCPUIncrease, StLFRState, Possible),
		// Bandwidth back / CPU pressure permit returning to the passive
		// strategy (the reverse of the mandatory bandwidth-drop edge).
		edge(StLFRState, TrigBandwidthIncrease, StPBRDet, Possible),
		edge(StLFRState, TrigCPUDrop, StPBRDet, Possible),
		// A newly deterministic application may move to LFR.
		edge(StPBRNonDet, TrigAppDeterminism, StLFRState, Possible),
		// (State access returning on LFR is the intra-FTM edge below: the
		// FTM does not change, only its configuration.)
		// Fault-model relaxation (reverse of the proactive hardening).
		edge(StLFRTR, TrigHardwareReplaced, StLFRState, Possible),
		edge(StADuplex, TrigHardwareReplaced, StLFRNoState, Possible),
		edge(StADuplex, TrigLessCriticalPhase, StLFRState, Possible),
		edge(StADuplex, TrigLessCriticalPhase, StLFRNoState, Possible),
		edge(StADuplex, TrigStateAccess, StLFRTR, Possible),

		// --- Intra-FTM transitions (configuration change, same FTM).
		edge(StPBRNonDet, TrigAppDeterminism, StPBRDet, Intra),
		edge(StPBRDet, TrigAppNonDeterminism, StPBRNonDet, Intra),
		edge(StLFRState, TrigStateAccessLoss, StLFRNoState, Intra),
		edge(StLFRNoState, TrigStateAccess, StLFRState, Intra),
	}
}

// ScenarioStates returns the graph's states, sorted.
func ScenarioStates() []ScenState {
	seen := make(map[ScenState]bool)
	for _, e := range ScenarioGraph() {
		seen[e.From] = true
		seen[e.To] = true
	}
	out := make([]ScenState, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StateFor maps a deployed FTM plus application traits to its Figure 8
// state.
func StateFor(id ID, a AppTraits) (ScenState, error) {
	switch id {
	case PBR, PBRTR:
		if a.Deterministic {
			return StPBRDet, nil
		}
		return StPBRNonDet, nil
	case LFR:
		if a.StateAccess {
			return StLFRState, nil
		}
		return StLFRNoState, nil
	case LFRTR:
		return StLFRTR, nil
	case APBR, ALFR:
		return StADuplex, nil
	default:
		return "", fmt.Errorf("core: FTM %q has no Figure 8 state", id)
	}
}

// FTMFor maps a Figure 8 state back to the deployable FTM the adaptation
// engine instantiates for it (A&Duplex resolves to the state-access
// variant when available).
func FTMFor(state ScenState, a AppTraits) (ID, error) {
	switch state {
	case StPBRDet, StPBRNonDet:
		return PBR, nil
	case StLFRState, StLFRNoState:
		return LFR, nil
	case StLFRTR:
		return LFRTR, nil
	case StADuplex:
		if a.StateAccess {
			return APBR, nil
		}
		return ALFR, nil
	case StNone:
		return "", ErrNoGenericSolution
	default:
		return "", fmt.Errorf("core: unknown scenario state %q", state)
	}
}

// Outgoing returns the edges leaving state whose trigger matches t.
func Outgoing(state ScenState, t Trigger) []ScenarioEdge {
	var out []ScenarioEdge
	for _, e := range ScenarioGraph() {
		if e.From == state && e.Trigger == t {
			out = append(out, e)
		}
	}
	return out
}
