package core

import (
	"fmt"
	"sort"
	"strings"
)

// ParamClass names one of the three parameter classes whose variation
// labels transition-graph edges.
type ParamClass string

// Parameter classes.
const (
	ParamFT ParamClass = "FT"
	ParamA  ParamClass = "A"
	ParamR  ParamClass = "R"
)

// GraphVertex names a vertex of the Figure 2 transition graph. The graph
// abstracts the two Assertion&Duplex variants into one "A&Duplex" vertex,
// as the paper draws it.
type GraphVertex string

// Figure 2 vertices.
const (
	VertexPBR     GraphVertex = "PBR"
	VertexLFR     GraphVertex = "LFR"
	VertexPBRTR   GraphVertex = "PBR⊕TR"
	VertexLFRTR   GraphVertex = "LFR⊕TR"
	VertexADuplex GraphVertex = "A&Duplex"
)

// GraphEdge is one undirected edge of Figure 2: transitions can occur in
// both directions, triggered by variation of the labelled parameters.
type GraphEdge struct {
	A, B   GraphVertex
	Labels []ParamClass
}

// String renders the edge as the figure labels it.
func (e GraphEdge) String() string {
	labels := make([]string, 0, len(e.Labels))
	for _, l := range e.Labels {
		labels = append(labels, string(l))
	}
	return fmt.Sprintf("%s <-> %s [%s]", e.A, e.B, strings.Join(labels, ","))
}

// TransitionGraph returns the Figure 2 graph of possible transitions
// between the illustrative FTM set.
func TransitionGraph() []GraphEdge {
	return []GraphEdge{
		// Passive <-> active swaps react to application characteristics
		// or resources.
		{A: VertexPBR, B: VertexLFR, Labels: []ParamClass{ParamA, ParamR}},
		{A: VertexPBRTR, B: VertexLFRTR, Labels: []ParamClass{ParamA, ParamR}},
		// Composing/decomposing time redundancy follows the fault model.
		{A: VertexPBR, B: VertexPBRTR, Labels: []ParamClass{ParamFT}},
		{A: VertexLFR, B: VertexLFRTR, Labels: []ParamClass{ParamFT}},
		// Moving to assertion-based duplex follows the fault model.
		{A: VertexPBR, B: VertexADuplex, Labels: []ParamClass{ParamFT}},
		{A: VertexLFR, B: VertexADuplex, Labels: []ParamClass{ParamFT}},
		// From the TR compositions, A&Duplex swaps both the value-fault
		// strategy (FT) and drops the state-access assumption (A).
		{A: VertexPBRTR, B: VertexADuplex, Labels: []ParamClass{ParamA, ParamFT}},
		{A: VertexLFRTR, B: VertexADuplex, Labels: []ParamClass{ParamA, ParamFT}},
	}
}

// Neighbors returns the vertices adjacent to v in the Figure 2 graph,
// sorted, with the edge labels.
func Neighbors(v GraphVertex) map[GraphVertex][]ParamClass {
	out := make(map[GraphVertex][]ParamClass)
	for _, e := range TransitionGraph() {
		switch v {
		case e.A:
			out[e.B] = append([]ParamClass(nil), e.Labels...)
		case e.B:
			out[e.A] = append([]ParamClass(nil), e.Labels...)
		}
	}
	return out
}

// GraphVertices returns the Figure 2 vertices, sorted.
func GraphVertices() []GraphVertex {
	seen := make(map[GraphVertex]bool)
	for _, e := range TransitionGraph() {
		seen[e.A] = true
		seen[e.B] = true
	}
	out := make([]GraphVertex, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// VertexFor maps a deployable FTM to its Figure 2 vertex.
func VertexFor(id ID) (GraphVertex, error) {
	switch id {
	case PBR:
		return VertexPBR, nil
	case LFR:
		return VertexLFR, nil
	case PBRTR:
		return VertexPBRTR, nil
	case LFRTR:
		return VertexLFRTR, nil
	case APBR, ALFR:
		return VertexADuplex, nil
	default:
		return "", fmt.Errorf("core: FTM %q has no Figure 2 vertex", id)
	}
}
