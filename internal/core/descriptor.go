package core

import (
	"fmt"
	"sort"
)

// ID identifies a fault tolerance mechanism.
type ID string

// The FTM catalogue: the paper's illustrative set (§3.2.1) plus the
// compositions of Figure 3 that the evaluation deploys (Table 3).
const (
	// PBR is Primary-Backup Replication (passive duplex).
	PBR ID = "pbr"
	// LFR is Leader-Follower Replication (active duplex).
	LFR ID = "lfr"
	// TR is Time Redundancy on a single host.
	TR ID = "tr"
	// PBRTR is PBR composed with Time Redundancy (PBR⊕TR).
	PBRTR ID = "pbr_tr"
	// LFRTR is LFR composed with Time Redundancy (LFR⊕TR).
	LFRTR ID = "lfr_tr"
	// APBR is Assertion&Duplex over PBR (A&PBR).
	APBR ID = "a_pbr"
	// ALFR is Assertion&Duplex over LFR (A&LFR).
	ALFR ID = "a_lfr"

	// Extension mechanisms (paper §3.2.1, "Dealing with more complex
	// fault tolerance strategies"): implemented beyond the illustrative
	// set. Their updates demonstrate the paper's point that the Lego
	// approach upgrades a technique without changing its execution
	// logic — for RB by changing the acceptance test, for TMR by
	// replacing the decision algorithm (both are property updates, no
	// brick replacement).

	// RBPBR is Recovery Blocks (diversified alternates behind an
	// acceptance test) composed over the PBR duplex — the distributed
	// recovery blocks of [14].
	RBPBR ID = "rb_pbr"
	// TMRT is temporal triple-modular redundancy on a single host:
	// three executions and a pluggable decision algorithm.
	TMRT ID = "tmr"
	// SemiActive is semi-active replication in the style of Delta-4 XPA
	// (the paper's reference [6]): the leader computes, capturing its
	// non-deterministic decisions, and the follower replays them — so
	// crash tolerance works for non-deterministic applications without
	// state access.
	SemiActive ID = "lfr_nd"
)

// Role distinguishes the two replicas of a duplex FTM.
type Role string

// Replica roles.
const (
	// RoleMaster is the replica answering clients (primary / leader).
	RoleMaster Role = "master"
	// RoleSlave is the standby replica (backup / follower).
	RoleSlave Role = "slave"
)

// Scheme is one row of Table 2: which variable-feature component fills
// each step of the Before-Proceed-After generic execution scheme. Values
// are component type names resolved by the FTM package's registry.
type Scheme struct {
	Before  string
	Proceed string
	After   string
}

// Slots returns the scheme as an ordered slot-name -> type map entry
// list, the shape transition diffs operate on.
func (s Scheme) Slots() map[string]string {
	return map[string]string{
		SlotBefore:  s.Before,
		SlotProceed: s.Proceed,
		SlotAfter:   s.After,
	}
}

// Variable-feature slot names — also the component names inside an FTM
// composite (Figure 6).
const (
	SlotBefore  = "syncBefore"
	SlotProceed = "proceed"
	SlotAfter   = "syncAfter"
)

// Component type names of the variable features. The ftm package
// registers an implementation for each.
const (
	TypeNop            = "ftm.nop"             // "Nothing" entries of Table 2
	TypeComputeProceed = "ftm.proceed.compute" // plain request processing
	TypeTRProceed      = "ftm.proceed.tr"      // time-redundant processing
	TypeAssertProceed  = "ftm.proceed.assert"  // processing + safety assertion
	TypeNoProceed      = "ftm.proceed.none"    // PBR backup: no processing
	TypePBRCheckpoint  = "ftm.after.pbr.checkpoint"
	TypePBRApply       = "ftm.after.pbr.apply"
	TypeLFRForward     = "ftm.before.lfr.forward"
	TypeLFRReceive     = "ftm.before.lfr.receive"
	TypeLFRNotify      = "ftm.after.lfr.notify"
	TypeLFRAck         = "ftm.after.lfr.ack"
	TypeTRCapture      = "ftm.before.tr.capture"
	TypeTRRestore      = "ftm.after.tr.restore"
	TypeRBProceed      = "ftm.proceed.rb"     // recovery blocks: alternates + acceptance test
	TypeTMRProceed     = "ftm.proceed.tmr"    // temporal TMR: 3 executions + decider
	TypeRecordProceed  = "ftm.proceed.record" // semi-active leader: compute + capture decisions
	TypeXPANotify      = "ftm.after.xpa.notify"
	TypeXPAApply       = "ftm.after.xpa.apply"
)

// Descriptor is the catalogue entry of one FTM: its Table 1
// characteristics, its Table 2 execution schemes per role, and cost
// ordinals the selection policy uses for tie-breaking.
type Descriptor struct {
	ID   ID
	Name string

	// Tolerates is the FT column: the fault model covered.
	Tolerates FaultModel
	// NeedsDeterminism is true when the FTM only works for
	// behaviourally-deterministic applications.
	NeedsDeterminism bool
	// NeedsStateAccess is true for checkpointing-based strategies.
	NeedsStateAccess bool
	// Bandwidth and CPU are the R columns of Table 1.
	Bandwidth ResourceLevel
	CPU       ResourceLevel
	// Hosts is how many hosts the FTM occupies.
	Hosts int

	// CPUCost orders FTMs by processing demand (Table 1's coarse levels
	// hide that LFR computes on both replicas; the scenario graph of
	// Figure 8 relies on this finer ordering).
	CPUCost int
	// BandwidthCost orders FTMs by inter-replica traffic.
	BandwidthCost int
	// Preference ranks equally-valid FTMs; the selection policy breaks
	// ties toward the lowest rank (passive replication is the classic
	// default, matching the scenario graph's PBR start state).
	Preference int
	// Base is the duplex protocol a composition builds on (empty for
	// non-composed FTMs).
	Base ID

	// MasterScheme and SlaveScheme are the Table 2 rows.
	MasterScheme Scheme
	SlaveScheme  Scheme
}

// Scheme returns the execution scheme for a role.
func (d Descriptor) Scheme(role Role) Scheme {
	if role == RoleSlave {
		return d.SlaveScheme
	}
	return d.MasterScheme
}

// catalogue is the static FTM catalogue (Table 1 + Table 2 + Figure 3
// compositions).
var catalogue = map[ID]Descriptor{
	PBR: {
		ID:   PBR,
		Name: "Primary-Backup Replication",
		// PBR tolerates crash faults; works for deterministic and
		// non-deterministic applications; requires state access; high
		// bandwidth (checkpoints), low CPU.
		Tolerates:        NewFaultModel(FaultCrash),
		NeedsDeterminism: false,
		NeedsStateAccess: true,
		Bandwidth:        LevelHigh,
		CPU:              LevelLow,
		Hosts:            2,
		CPUCost:          1,
		BandwidthCost:    3,
		Preference:       1,
		MasterScheme:     Scheme{Before: TypeNop, Proceed: TypeComputeProceed, After: TypePBRCheckpoint},
		SlaveScheme:      Scheme{Before: TypeNop, Proceed: TypeNoProceed, After: TypePBRApply},
	},
	LFR: {
		ID:   LFR,
		Name: "Leader-Follower Replication",
		// LFR tolerates crash faults; deterministic applications only; no
		// state access needed; low bandwidth, both replicas compute.
		Tolerates:        NewFaultModel(FaultCrash),
		NeedsDeterminism: true,
		NeedsStateAccess: false,
		Bandwidth:        LevelLow,
		CPU:              LevelLow,
		Hosts:            2,
		CPUCost:          2,
		BandwidthCost:    1,
		Preference:       2,
		MasterScheme:     Scheme{Before: TypeLFRForward, Proceed: TypeComputeProceed, After: TypeLFRNotify},
		SlaveScheme:      Scheme{Before: TypeLFRReceive, Proceed: TypeComputeProceed, After: TypeLFRAck},
	},
	TR: {
		ID:   TR,
		Name: "Time Redundancy",
		// TR tolerates transient value faults on a single host; needs
		// determinism (result comparison) and state access (restore
		// between executions); no bandwidth, high CPU.
		Tolerates:        NewFaultModel(FaultTransientValue),
		NeedsDeterminism: true,
		NeedsStateAccess: true,
		Bandwidth:        LevelNA,
		CPU:              LevelHigh,
		Hosts:            1,
		CPUCost:          3,
		BandwidthCost:    0,
		Preference:       7,
		MasterScheme:     Scheme{Before: TypeTRCapture, Proceed: TypeTRProceed, After: TypeTRRestore},
		SlaveScheme:      Scheme{},
	},
	PBRTR: {
		ID:               PBRTR,
		Name:             "PBR ⊕ TR",
		Tolerates:        NewFaultModel(FaultCrash, FaultTransientValue),
		NeedsDeterminism: true, // TR's re-execution comparison
		NeedsStateAccess: true,
		Bandwidth:        LevelHigh,
		CPU:              LevelHigh,
		Hosts:            2,
		CPUCost:          4,
		BandwidthCost:    3,
		Preference:       3,
		Base:             PBR,
		MasterScheme:     Scheme{Before: TypeNop, Proceed: TypeTRProceed, After: TypePBRCheckpoint},
		SlaveScheme:      Scheme{Before: TypeNop, Proceed: TypeNoProceed, After: TypePBRApply},
	},
	LFRTR: {
		ID:               LFRTR,
		Name:             "LFR ⊕ TR",
		Tolerates:        NewFaultModel(FaultCrash, FaultTransientValue),
		NeedsDeterminism: true,
		NeedsStateAccess: true, // TR restores state between executions
		Bandwidth:        LevelLow,
		CPU:              LevelHigh,
		Hosts:            2,
		CPUCost:          5,
		BandwidthCost:    1,
		Preference:       4,
		Base:             LFR,
		MasterScheme:     Scheme{Before: TypeLFRForward, Proceed: TypeTRProceed, After: TypeLFRNotify},
		SlaveScheme:      Scheme{Before: TypeLFRReceive, Proceed: TypeTRProceed, After: TypeLFRAck},
	},
	APBR: {
		ID:   APBR,
		Name: "A&PBR (Assertion ⊕ PBR)",
		// Assertion catches value faults (including permanent ones: the
		// re-execution moves to the other host); the duplex base adds
		// crash tolerance.
		Tolerates:        NewFaultModel(FaultCrash, FaultTransientValue, FaultPermanentValue),
		NeedsDeterminism: true,
		NeedsStateAccess: true, // PBR base checkpoints
		Bandwidth:        LevelHigh,
		CPU:              LevelHigh,
		Hosts:            2,
		CPUCost:          4,
		BandwidthCost:    3,
		Preference:       5,
		Base:             PBR,
		MasterScheme:     Scheme{Before: TypeNop, Proceed: TypeAssertProceed, After: TypePBRCheckpoint},
		SlaveScheme:      Scheme{Before: TypeNop, Proceed: TypeNoProceed, After: TypePBRApply},
	},
	ALFR: {
		ID:               ALFR,
		Name:             "A&LFR (Assertion ⊕ LFR)",
		Tolerates:        NewFaultModel(FaultCrash, FaultTransientValue, FaultPermanentValue),
		NeedsDeterminism: true,
		NeedsStateAccess: false,
		Bandwidth:        LevelLow,
		CPU:              LevelHigh,
		Hosts:            2,
		CPUCost:          5,
		BandwidthCost:    1,
		Preference:       6,
		Base:             LFR,
		MasterScheme:     Scheme{Before: TypeLFRForward, Proceed: TypeAssertProceed, After: TypeLFRNotify},
		SlaveScheme:      Scheme{Before: TypeLFRReceive, Proceed: TypeAssertProceed, After: TypeLFRAck},
	},
}

// extensionCatalogue holds the beyond-the-paper mechanisms.
var extensionCatalogue = map[ID]Descriptor{
	RBPBR: {
		ID:   RBPBR,
		Name: "Recovery Blocks ⊕ PBR",
		// Recovery blocks tolerate development faults in the primary
		// variant (the acceptance test rejects them, the diversified
		// alternate recovers) plus transient value faults caught by the
		// same test; the PBR base adds crash tolerance.
		Tolerates:        NewFaultModel(FaultCrash, FaultSoftware, FaultTransientValue),
		NeedsDeterminism: true,
		NeedsStateAccess: true, // rollback to the recovery point
		Bandwidth:        LevelHigh,
		CPU:              LevelHigh,
		Hosts:            2,
		CPUCost:          4,
		BandwidthCost:    3,
		Preference:       8,
		Base:             PBR,
		MasterScheme:     Scheme{Before: TypeNop, Proceed: TypeRBProceed, After: TypePBRCheckpoint},
		SlaveScheme:      Scheme{Before: TypeNop, Proceed: TypeNoProceed, After: TypePBRApply},
	},
	TMRT: {
		ID:   TMRT,
		Name: "Temporal TMR",
		// Three executions and a decision algorithm on one host: like TR
		// but with an always-voting decider that can be upgraded (e.g.
		// majority -> median) without touching the execution logic.
		Tolerates:        NewFaultModel(FaultTransientValue),
		NeedsDeterminism: true,
		NeedsStateAccess: true,
		Bandwidth:        LevelNA,
		CPU:              LevelHigh,
		Hosts:            1,
		CPUCost:          4,
		BandwidthCost:    0,
		Preference:       9,
		MasterScheme:     Scheme{Before: TypeTRCapture, Proceed: TypeTMRProceed, After: TypeTRRestore},
		SlaveScheme:      Scheme{},
	},
	SemiActive: {
		ID:   SemiActive,
		Name: "Semi-Active Replication (XPA)",
		// The leader computes first, capturing its non-deterministic
		// decisions; the follower replays deterministically given those
		// decisions. Crash tolerance without determinism and without
		// state access — the combination the illustrative set lacks.
		Tolerates:        NewFaultModel(FaultCrash),
		NeedsDeterminism: false,
		NeedsStateAccess: false,
		Bandwidth:        LevelLow,
		CPU:              LevelLow,
		Hosts:            2,
		CPUCost:          2,
		BandwidthCost:    1,
		Preference:       10,
		Base:             LFR,
		MasterScheme:     Scheme{Before: TypeNop, Proceed: TypeRecordProceed, After: TypeXPANotify},
		SlaveScheme:      Scheme{Before: TypeNop, Proceed: TypeNoProceed, After: TypeXPAApply},
	},
}

// Lookup returns the descriptor of an FTM (catalogue or extension).
func Lookup(id ID) (Descriptor, error) {
	if d, ok := catalogue[id]; ok {
		return d, nil
	}
	if d, ok := extensionCatalogue[id]; ok {
		return d, nil
	}
	return Descriptor{}, fmt.Errorf("core: unknown FTM %q", id)
}

// MustLookup is Lookup that panics on unknown IDs.
func MustLookup(id ID) Descriptor {
	d, err := Lookup(id)
	if err != nil {
		panic(err)
	}
	return d
}

// Catalogue returns the illustrative-set descriptors, ordered by ID.
func Catalogue() []Descriptor {
	out := make([]Descriptor, 0, len(catalogue))
	for _, d := range catalogue {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Extensions returns the beyond-the-paper mechanism descriptors, ordered
// by ID.
func Extensions() []Descriptor {
	out := make([]Descriptor, 0, len(extensionCatalogue))
	for _, d := range extensionCatalogue {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// DeployableSet is the Table 3 evaluation set: the six stand-alone duplex
// FTMs between which every differential transition is measured.
func DeployableSet() []ID {
	return []ID{PBR, LFR, PBRTR, LFRTR, APBR, ALFR}
}

// Diff returns the variable-feature slots whose component type differs
// between two schemes — the components a differential transition
// replaces. Slots are returned in pipeline order.
func Diff(from, to Scheme) []string {
	var out []string
	fromSlots, toSlots := from.Slots(), to.Slots()
	for _, slot := range []string{SlotBefore, SlotProceed, SlotAfter} {
		if fromSlots[slot] != toSlots[slot] {
			out = append(out, slot)
		}
	}
	return out
}
