// Package core encodes the paper's conceptual model: the three parameter
// classes governing FTM choice — fault tolerance requirements (FT),
// application characteristics (A) and available resources (R) — the
// catalogue of fault tolerance mechanisms with their Table 1
// characteristics and Table 2 generic execution schemes, the validity and
// selection logic, and the transition graphs of Figures 2 and 8.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// FaultClass is one class of the paper's fault model taxonomy.
type FaultClass int

// Fault classes considered by the paper (hardware faults).
const (
	// FaultCrash is a fail-silent node crash.
	FaultCrash FaultClass = iota + 1
	// FaultTransientValue is a transient hardware value fault (bit flip):
	// a re-execution computes cleanly.
	FaultTransientValue
	// FaultPermanentValue is a permanent hardware value fault: every
	// computation on the afflicted host is corrupted.
	FaultPermanentValue
	// FaultSoftware is a development (design) fault: a deterministic bug
	// in the primary implementation, the class recovery blocks address
	// with diversified alternates.
	FaultSoftware
)

// String returns the fault class name.
func (f FaultClass) String() string {
	switch f {
	case FaultCrash:
		return "crash"
	case FaultTransientValue:
		return "transient-value"
	case FaultPermanentValue:
		return "permanent-value"
	case FaultSoftware:
		return "software"
	default:
		return fmt.Sprintf("fault(%d)", int(f))
	}
}

// FaultModel is the FT parameter: the set of fault classes the system
// must tolerate.
type FaultModel struct {
	classes map[FaultClass]bool
}

// NewFaultModel returns a fault model covering the given classes.
func NewFaultModel(classes ...FaultClass) FaultModel {
	m := FaultModel{classes: make(map[FaultClass]bool, len(classes))}
	for _, c := range classes {
		m.classes[c] = true
	}
	return m
}

// Has reports whether the model includes a class.
func (m FaultModel) Has(c FaultClass) bool { return m.classes[c] }

// With returns a model extended by the given classes.
func (m FaultModel) With(classes ...FaultClass) FaultModel {
	all := m.Classes()
	all = append(all, classes...)
	return NewFaultModel(all...)
}

// Without returns a model with the given classes removed.
func (m FaultModel) Without(classes ...FaultClass) FaultModel {
	drop := make(map[FaultClass]bool, len(classes))
	for _, c := range classes {
		drop[c] = true
	}
	var keep []FaultClass
	for _, c := range m.Classes() {
		if !drop[c] {
			keep = append(keep, c)
		}
	}
	return NewFaultModel(keep...)
}

// Classes returns the classes in the model, sorted.
func (m FaultModel) Classes() []FaultClass {
	out := make([]FaultClass, 0, len(m.classes))
	for c := range m.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Covers reports whether every class of other is in m.
func (m FaultModel) Covers(other FaultModel) bool {
	for c := range other.classes {
		if !m.classes[c] {
			return false
		}
	}
	return true
}

// Equal reports whether two models cover exactly the same classes.
func (m FaultModel) Equal(other FaultModel) bool {
	return m.Covers(other) && other.Covers(m)
}

// String renders the model as "crash+transient-value".
func (m FaultModel) String() string {
	classes := m.Classes()
	if len(classes) == 0 {
		return "none"
	}
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, c.String())
	}
	return strings.Join(parts, "+")
}

// AppTraits is the A parameter class: the application characteristics
// that constrain FTM choice.
type AppTraits struct {
	// Deterministic reports behavioural determinism: same inputs produce
	// same outputs in the absence of faults (mandatory for active
	// replication and time redundancy).
	Deterministic bool
	// StateAccess reports whether the application exposes capture/restore
	// hooks (mandatory for checkpointing-based strategies).
	StateAccess bool
	// Version identifies the installed application version; version
	// changes are the typical source of A variations.
	Version string
}

// String renders the traits compactly.
func (a AppTraits) String() string {
	det := "non-deterministic"
	if a.Deterministic {
		det = "deterministic"
	}
	st := "no-state-access"
	if a.StateAccess {
		st = "state-access"
	}
	return det + "/" + st
}

// ResourceLevel is the coarse resource-demand qualifier of Table 1.
type ResourceLevel int

// Resource demand levels.
const (
	// LevelNA marks a resource the FTM does not use (single host ⇒ no
	// bandwidth).
	LevelNA ResourceLevel = iota + 1
	// LevelLow is a modest demand.
	LevelLow
	// LevelHigh is a heavy demand.
	LevelHigh
)

// String returns "n/a", "low" or "high".
func (l ResourceLevel) String() string {
	switch l {
	case LevelNA:
		return "n/a"
	case LevelLow:
		return "low"
	case LevelHigh:
		return "high"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// ResourceState is the R parameter class as observed by the monitoring
// engine: current availabilities on the hosts running the FTM.
type ResourceState struct {
	// BandwidthKbps is the available inter-replica bandwidth.
	BandwidthKbps float64
	// CPUFree is the free CPU fraction (0..1) on the replica hosts.
	CPUFree float64
	// Energy is the remaining energy budget fraction (0..1).
	Energy float64
	// Hosts is the number of distinct hosts available.
	Hosts int
}

// Thresholds partition the continuous resource state into the coarse
// levels the selection logic reasons about.
type Thresholds struct {
	// LowBandwidthKbps is the floor under which high-bandwidth FTMs
	// (checkpointing) become invalid.
	LowBandwidthKbps float64
	// LowCPUFree is the floor under which high-CPU FTMs (multiple
	// executions) become invalid.
	LowCPUFree float64
}

// DefaultThresholds are the thresholds used by the examples and
// experiments.
func DefaultThresholds() Thresholds {
	return Thresholds{LowBandwidthKbps: 1000, LowCPUFree: 0.25}
}

// BandwidthConstrained reports whether the state cannot sustain a
// high-bandwidth FTM.
func (t Thresholds) BandwidthConstrained(r ResourceState) bool {
	return r.BandwidthKbps < t.LowBandwidthKbps
}

// CPUConstrained reports whether the state cannot sustain a high-CPU FTM.
func (t Thresholds) CPUConstrained(r ResourceState) bool {
	return r.CPUFree < t.LowCPUFree
}
