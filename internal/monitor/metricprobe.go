package monitor

import (
	"math"
	"sort"
	"sync"
	"time"

	"resilientft/internal/telemetry"
)

// The probes in this file read the telemetry registry instead of host
// resource models: the Monitoring Engine's rules can then react to what
// the instrumented request path actually observed — error spikes, tail
// latency, replica resyncs — with the same hysteresis machinery as the
// resource probes.

// rateProbe turns a monotonically growing reading into a per-second
// rate. The first sample reports zero (there is no interval to rate
// over yet), like BusyFractionProbe.
func rateProbe(name string, value func() uint64) Probe {
	var mu sync.Mutex
	var last uint64
	var lastAt time.Time
	return ProbeFunc{ProbeName: name, Fn: func() float64 {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		v := value()
		if lastAt.IsZero() {
			lastAt, last = now, v
			return 0
		}
		prev, prevAt := last, lastAt
		lastAt, last = now, v
		if v <= prev {
			return 0
		}
		elapsed := now.Sub(prevAt)
		if elapsed < time.Nanosecond {
			elapsed = time.Nanosecond
		}
		return float64(v-prev) / elapsed.Seconds()
	}}
}

// CounterRateProbe samples the per-second growth of one counter series
// in reg (created on first use, so probe and instrumentation may
// initialize in either order).
func CounterRateProbe(name string, reg *telemetry.Registry, metric string, labels ...string) Probe {
	c := reg.Counter(metric, labels...)
	return rateProbe(name, c.Value)
}

// FamilyRateProbe samples the per-second growth of a whole counter
// family: the sum over every label set registered under the base name.
func FamilyRateProbe(name string, reg *telemetry.Registry, metric string) Probe {
	return rateProbe(name, func() uint64 { return reg.SumCounters(metric) })
}

// ErrorRateProbe samples the per-second rate of failed request
// outcomes: the rpc server's app-error and unavailable responses plus
// clients giving up after exhausting every replica.
func ErrorRateProbe(name string, reg *telemetry.Registry) Probe {
	appErr := reg.Counter("rpc_server_responses_total", "status", "app-error")
	unavail := reg.Counter("rpc_server_responses_total", "status", "unavailable")
	exhausted := reg.Counter("rpc_client_exhausted_total")
	return rateProbe(name, func() uint64 {
		return appErr.Value() + unavail.Value() + exhausted.Value()
	})
}

// ResyncRateProbe samples the per-second rate of PBR checkpoint
// resyncs (both the primary observing a NACK and the backup raising
// one); a sustained rate means the pair keeps falling out of sync and
// the mechanism is wasting its delta machinery.
func ResyncRateProbe(name string, reg *telemetry.Registry) Probe {
	return FamilyRateProbe(name, reg, "ftm_resync_total")
}

// QuantileLatencyProbe samples a latency quantile of a histogram series
// in milliseconds (0 until the series exists and has observations).
// The series is resolved through a cached handle: the registry lookup
// (label sort plus key build) happens once, not on every evaluation
// tick.
func QuantileLatencyProbe(name string, reg *telemetry.Registry, metric string, q float64, labels ...string) Probe {
	handle := reg.HistogramHandle(metric, labels...)
	return ProbeFunc{ProbeName: name, Fn: func() float64 {
		h, ok := handle.Get()
		if !ok {
			return 0
		}
		return float64(h.Quantile(q).Nanoseconds()) / 1e6
	}}
}

// P99LatencyProbe samples the 99th-percentile of the rpc server's
// request latency in milliseconds.
func P99LatencyProbe(name string, reg *telemetry.Registry) Probe {
	return QuantileLatencyProbe(name, reg, "rpc_server_request_latency", 0.99)
}

// spanQuantileProbe samples a duration quantile over the retained spans
// of one name, in milliseconds (0 while no such span was recorded).
// Span-fed probes see only sampled traffic, so they trade statistical
// coverage for phase-level attribution the histograms cannot give: the
// same spans a probe reads are browsable via /trace/{id}.
func spanQuantileProbe(name string, spans *telemetry.SpanRecorder, spanName string, q float64) Probe {
	return ProbeFunc{ProbeName: name, Fn: func() float64 {
		recorded := spans.Named(spanName)
		if len(recorded) == 0 {
			return 0
		}
		durs := make([]time.Duration, len(recorded))
		for i, s := range recorded {
			durs[i] = s.Dur
		}
		sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
		// Nearest-rank quantile: small samples resolve to the tail
		// observation rather than truncating toward the median.
		idx := int(math.Ceil(q*float64(len(durs)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		return float64(durs[idx].Nanoseconds()) / 1e6
	}}
}

// WaveShipLatencyProbe samples the 95th-percentile duration of recorded
// commit-wave ships ("ftm.wave.ship" spans) in milliseconds — how long
// the master-side synchronization that releases replies is taking,
// capture and peer round-trip included.
func WaveShipLatencyProbe(name string, spans *telemetry.SpanRecorder) Probe {
	return spanQuantileProbe(name, spans, "ftm.wave.ship", 0.95)
}

// SlaveApplyLagProbe samples the 95th-percentile duration of recorded
// inter-replica applies ("ftm.replica.apply" spans) in milliseconds —
// how far the slave trails each ship it processes. A rising value with
// stable ship latency points the rule engine at the slave, not the wire.
func SlaveApplyLagProbe(name string, spans *telemetry.SpanRecorder) Probe {
	return spanQuantileProbe(name, spans, "ftm.replica.apply", 0.95)
}
