package monitor

import "resilientft/internal/host"

// Health probes bridge the graded host-health model into the rule
// engine: a verdict is sampled as its ordinal (0 healthy, 1 degraded,
// 2 unhealthy), so threshold rules compose naturally — `Above 0.5`
// fires on any degradation, `Above 1.5` only on unhealthy. Sampling
// reads the monitor's last sweep; it never runs collectors itself, so
// probe polling stays off the measurement path.

// HealthProbe samples a host's overall health verdict as a float.
func HealthProbe(name string, hm *host.HealthMonitor) Probe {
	return ProbeFunc{ProbeName: name, Fn: func() float64 {
		return float64(hm.Overall())
	}}
}

// CollectorHealthProbe samples one collector's verdict from the latest
// report (0 while the collector has not run or is unregistered —
// absence of evidence is not a failure verdict).
func CollectorHealthProbe(name string, hm *host.HealthMonitor, collector string) Probe {
	return ProbeFunc{ProbeName: name, Fn: func() float64 {
		for _, c := range hm.Report().Collectors {
			if c.Name == collector {
				return float64(c.Verdict)
			}
		}
		return 0
	}}
}
