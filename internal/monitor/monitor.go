// Package monitor implements the Monitoring Engine of the resilient
// system architecture: probes sampling the resource state R (bandwidth,
// CPU, energy), observers counting error events (the non-functional
// behaviour analysis the paper describes), and threshold rules that turn
// probe readings into adaptation triggers with hysteresis so a noisy
// reading does not fire storms of triggers.
package monitor

import (
	"sort"
	"sync"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/host"
)

// Probe samples one scalar of the system state.
type Probe interface {
	// Name identifies the probe in rules.
	Name() string
	// Sample reads the current value.
	Sample() float64
}

// ProbeFunc adapts a function to the Probe interface.
type ProbeFunc struct {
	ProbeName string
	Fn        func() float64
}

// Name returns the probe name.
func (p ProbeFunc) Name() string { return p.ProbeName }

// Sample calls the function.
func (p ProbeFunc) Sample() float64 { return p.Fn() }

// BandwidthProbe reads a host's available bandwidth.
func BandwidthProbe(name string, res *host.Resources) Probe {
	return ProbeFunc{ProbeName: name, Fn: res.Bandwidth}
}

// CPUFreeProbe reads a host's free CPU fraction.
func CPUFreeProbe(name string, res *host.Resources) Probe {
	return ProbeFunc{ProbeName: name, Fn: res.CPUFree}
}

// EnergyProbe reads a host's remaining energy budget.
func EnergyProbe(name string, res *host.Resources) Probe {
	return ProbeFunc{ProbeName: name, Fn: res.Energy}
}

// BusyFractionProbe samples the fraction of wall time spent busy since
// the previous sample, given a monotonically growing busy-time counter
// (e.g. component.InvocationMetrics.BusyTime). The first sample reports
// zero — measured load, not a configured value.
func BusyFractionProbe(name string, busy func() time.Duration) Probe {
	var mu sync.Mutex
	var lastBusy time.Duration
	var lastAt time.Time
	return ProbeFunc{ProbeName: name, Fn: func() float64 {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		b := busy()
		if lastAt.IsZero() {
			lastAt, lastBusy = now, b
			return 0
		}
		wall := now.Sub(lastAt)
		delta := b - lastBusy
		lastAt, lastBusy = now, b
		if wall <= 0 {
			return 0
		}
		f := float64(delta) / float64(wall)
		if f < 0 {
			return 0
		}
		if f > 1 {
			return 1
		}
		return f
	}}
}

// Condition relates a sample to a rule threshold.
type Condition int

// Conditions.
const (
	// Below fires while sample < threshold.
	Below Condition = iota + 1
	// Above fires while sample > threshold.
	Above
)

// Rule maps a probe condition to an adaptation trigger. The rule is
// edge-triggered with hysteresis: the condition must hold for Consecutive
// samples to fire, and must clear before the rule can fire again — the
// first line of defence against oscillation (§5.4).
type Rule struct {
	Name        string
	Probe       string
	Cond        Condition
	Threshold   float64
	Consecutive int
	Trigger     core.Trigger
}

func (r Rule) holds(sample float64) bool {
	if r.Cond == Below {
		return sample < r.Threshold
	}
	return sample > r.Threshold
}

// ruleState tracks a rule's hysteresis.
type ruleState struct {
	count int
	fired bool
}

// Engine is the Monitoring Engine: it polls probes, evaluates rules and
// emits triggers to its sink (typically the Resilience Management
// Service).
type Engine struct {
	mu     sync.Mutex
	probes map[string]Probe
	rules  []Rule
	states []ruleState
	sink   func(core.Trigger)
	fired  []core.Trigger

	interval time.Duration
	stop     chan struct{}
	done     chan struct{}
	started  bool
	once     sync.Once
}

// New returns an engine polling at interval and delivering triggers to
// sink (which may be nil; fired triggers are always also recorded).
func New(interval time.Duration, sink func(core.Trigger)) *Engine {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	return &Engine{
		probes:   make(map[string]Probe),
		sink:     sink,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// AddProbe registers a probe.
func (e *Engine) AddProbe(p Probe) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.probes[p.Name()] = p
}

// AddRule registers a rule. Consecutive defaults to 1.
func (e *Engine) AddRule(r Rule) {
	if r.Consecutive < 1 {
		r.Consecutive = 1
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = append(e.rules, r)
	e.states = append(e.states, ruleState{})
}

// Probes returns the registered probe names, sorted.
func (e *Engine) Probes() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, 0, len(e.probes))
	for name := range e.probes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Poll evaluates every rule once against fresh samples and returns the
// triggers fired by this evaluation. Start calls it periodically; tests
// and deterministic experiments call it directly.
func (e *Engine) Poll() []core.Trigger {
	e.mu.Lock()
	type eval struct {
		rule  Rule
		probe Probe
		idx   int
	}
	evals := make([]eval, 0, len(e.rules))
	for i, r := range e.rules {
		p, ok := e.probes[r.Probe]
		if !ok {
			continue
		}
		evals = append(evals, eval{rule: r, probe: p, idx: i})
	}
	e.mu.Unlock()

	var out []core.Trigger
	for _, ev := range evals {
		sample := ev.probe.Sample()
		e.mu.Lock()
		st := &e.states[ev.idx]
		if ev.rule.holds(sample) {
			st.count++
			if st.count >= ev.rule.Consecutive && !st.fired {
				st.fired = true
				out = append(out, ev.rule.Trigger)
				e.fired = append(e.fired, ev.rule.Trigger)
			}
		} else {
			st.count = 0
			st.fired = false
		}
		e.mu.Unlock()
	}
	if e.sink != nil {
		for _, t := range out {
			e.sink(t)
		}
	}
	return out
}

// Fired returns every trigger emitted so far.
func (e *Engine) Fired() []core.Trigger {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]core.Trigger(nil), e.fired...)
}

// Start launches periodic polling.
func (e *Engine) Start() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	go func() {
		defer close(e.done)
		ticker := time.NewTicker(e.interval)
		defer ticker.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-ticker.C:
				e.Poll()
			}
		}
	}()
}

// Stop halts periodic polling. Safe to call more than once; a never-
// started engine stops immediately.
func (e *Engine) Stop() {
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	e.once.Do(func() { close(e.stop) })
	if started {
		<-e.done
	}
}

// ErrorObserver counts error events (exception rates, OS call errors,
// logged anomalies) over a sliding window; exposed as a probe it lets
// rules detect fault-model drift such as hardware aging.
type ErrorObserver struct {
	mu     sync.Mutex
	window time.Duration
	events []time.Time
	name   string
	now    func() time.Time
}

// NewErrorObserver returns an observer with the given probe name and
// window.
func NewErrorObserver(name string, window time.Duration) *ErrorObserver {
	return &ErrorObserver{name: name, window: window, now: time.Now}
}

var _ Probe = (*ErrorObserver)(nil)

// Report records one error event.
func (o *ErrorObserver) Report() {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.events = append(o.events, o.now())
	o.gcLocked()
}

func (o *ErrorObserver) gcLocked() {
	cutoff := o.now().Add(-o.window)
	i := 0
	for i < len(o.events) && o.events[i].Before(cutoff) {
		i++
	}
	o.events = o.events[i:]
}

// Name returns the probe name.
func (o *ErrorObserver) Name() string { return o.name }

// Sample returns the number of error events within the window.
func (o *ErrorObserver) Sample() float64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.gcLocked()
	return float64(len(o.events))
}
