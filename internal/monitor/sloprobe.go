package monitor

// SLO probes bridge the slo engine's conclusions into the rule
// engine, the same way health probes bridge graded verdicts: sampled
// as plain floats so threshold rules, hysteresis and triggers compose
// unchanged. The probes take closures rather than the engine itself —
// monitor stays ignorant of slo's types, and tests feed synthetic
// readings.

// SLOBreachProbe samples 1 while paging() holds (the shard's fast
// windows burn above the page threshold) and 0 otherwise, so a rule
// `Above 0.5, Consecutive N` fires after N confirmed paging polls.
// Wire it with the slo engine's Paging method:
//
//	monitor.SLOBreachProbe("slo-page-0", func() bool { return eng.Paging("0") })
func SLOBreachProbe(name string, paging func() bool) Probe {
	return ProbeFunc{ProbeName: name, Fn: func() float64 {
		if paging() {
			return 1
		}
		return 0
	}}
}

// BurnRateProbe samples an error-budget burn rate (1.0 = spending the
// budget exactly at the sustainable pace), for rules that want their
// own thresholds rather than the engine's page/warn grading. Wire it
// with the slo engine's Burn method.
func BurnRateProbe(name string, burn func() float64) Probe {
	return ProbeFunc{ProbeName: name, Fn: func() float64 { return burn() }}
}
