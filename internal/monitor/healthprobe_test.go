package monitor

import (
	"testing"

	"resilientft/internal/core"
	"resilientft/internal/host"
)

func TestHealthProbeSamplesVerdictOrdinal(t *testing.T) {
	hm := host.NewHealthMonitor("m1")
	verdict := host.Healthy
	hm.Register(host.CollectorFunc{CollectorName: "dim", Fn: func() host.CheckResult {
		return host.CheckResult{Verdict: verdict, Reason: "test"}
	}})
	hm.Check()

	p := HealthProbe("m1-health", hm)
	if got := p.Sample(); got != 0 {
		t.Fatalf("healthy sample = %v, want 0", got)
	}
	verdict = host.Unhealthy
	hm.Check()
	if got := p.Sample(); got != 2 {
		t.Fatalf("unhealthy sample = %v, want 2", got)
	}

	cp := CollectorHealthProbe("m1-dim", hm, "dim")
	if got := cp.Sample(); got != 2 {
		t.Fatalf("collector sample = %v, want 2", got)
	}
	if got := CollectorHealthProbe("m1-none", hm, "absent").Sample(); got != 0 {
		t.Fatalf("absent-collector sample = %v, want 0", got)
	}
}

// TestHealthRuleFiresTrigger closes the probe->rule->trigger loop on a
// measured degradation: the engine fires exactly once while the host
// stays unhealthy (edge-triggered hysteresis), the decision input being
// the health sweep, not a declared resource number.
func TestHealthRuleFiresTrigger(t *testing.T) {
	hm := host.NewHealthMonitor("m2")
	cpuFree := 0.9
	hm.Register(host.NewCPUCollector(host.NewResources(10_000, cpuFree, 1.0), 0.2, 0.05))
	res := host.NewResources(10_000, 0.9, 1.0)
	hm.Register(host.CollectorFunc{CollectorName: "cpu", Fn: func() host.CheckResult {
		return host.CheckResult{Verdict: gradeOf(res.CPUFree()), Reason: "cpu"}
	}})
	hm.Check()

	var fired []core.Trigger
	e := New(0, func(tr core.Trigger) { fired = append(fired, tr) })
	e.AddProbe(HealthProbe("m2-health", hm))
	e.AddRule(Rule{
		Name:      "cpu-health-drop",
		Probe:     "m2-health",
		Cond:      Above,
		Threshold: 1.5, // unhealthy only
		Trigger:   core.TrigCPUDrop,
	})

	e.Poll()
	if len(fired) != 0 {
		t.Fatalf("trigger fired while healthy: %v", fired)
	}
	res.SetCPUFree(0.01)
	hm.Check()
	e.Poll()
	e.Poll() // still unhealthy: must not refire
	if len(fired) != 1 || fired[0] != core.TrigCPUDrop {
		t.Fatalf("fired = %v, want exactly one cpu-drop", fired)
	}
}

func gradeOf(cpuFree float64) host.Verdict {
	switch {
	case cpuFree < 0.05:
		return host.Unhealthy
	case cpuFree < 0.2:
		return host.Degraded
	default:
		return host.Healthy
	}
}
