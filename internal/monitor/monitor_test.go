package monitor

import (
	"sync"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/host"
)

func TestRuleFiresOnceUntilRearmed(t *testing.T) {
	res := host.NewResources(5000, 0.9, 1.0)
	e := New(time.Hour, nil) // manual polling
	e.AddProbe(BandwidthProbe("bw", res))
	e.AddRule(Rule{Name: "bw-drop", Probe: "bw", Cond: Below, Threshold: 1000, Trigger: core.TrigBandwidthDrop})

	if got := e.Poll(); len(got) != 0 {
		t.Fatalf("fired above threshold: %v", got)
	}
	res.SetBandwidth(500)
	if got := e.Poll(); len(got) != 1 || got[0] != core.TrigBandwidthDrop {
		t.Fatalf("first crossing fired %v", got)
	}
	// Still below: no re-fire (edge-triggered).
	for i := 0; i < 5; i++ {
		if got := e.Poll(); len(got) != 0 {
			t.Fatalf("re-fired while held: %v", got)
		}
	}
	// Clear and cross again: re-armed.
	res.SetBandwidth(5000)
	e.Poll()
	res.SetBandwidth(400)
	if got := e.Poll(); len(got) != 1 {
		t.Fatalf("did not re-fire after re-arm: %v", got)
	}
	if total := e.Fired(); len(total) != 2 {
		t.Fatalf("Fired = %v", total)
	}
}

func TestRuleHysteresisConsecutive(t *testing.T) {
	res := host.NewResources(5000, 0.9, 1.0)
	e := New(time.Hour, nil)
	e.AddProbe(CPUFreeProbe("cpu", res))
	e.AddRule(Rule{Name: "cpu-low", Probe: "cpu", Cond: Below, Threshold: 0.25,
		Consecutive: 3, Trigger: core.TrigCPUDrop})

	res.SetCPUFree(0.1)
	if got := e.Poll(); len(got) != 0 {
		t.Fatal("fired on first sample despite Consecutive=3")
	}
	// A bounce resets the count — noise never fires.
	res.SetCPUFree(0.9)
	e.Poll()
	res.SetCPUFree(0.1)
	e.Poll()
	e.Poll()
	if got := e.Poll(); len(got) != 1 || got[0] != core.TrigCPUDrop {
		t.Fatalf("third consecutive sample fired %v", got)
	}
}

func TestAboveCondition(t *testing.T) {
	obs := NewErrorObserver("errors", time.Minute)
	e := New(time.Hour, nil)
	e.AddProbe(obs)
	e.AddRule(Rule{Name: "aging", Probe: "errors", Cond: Above, Threshold: 2, Trigger: core.TrigHardwareAging})
	e.Poll()
	obs.Report()
	obs.Report()
	if got := e.Poll(); len(got) != 0 {
		t.Fatalf("fired at threshold: %v", got)
	}
	obs.Report()
	if got := e.Poll(); len(got) != 1 || got[0] != core.TrigHardwareAging {
		t.Fatalf("error-rate rule fired %v", got)
	}
}

func TestErrorObserverWindow(t *testing.T) {
	obs := NewErrorObserver("errors", 50*time.Millisecond)
	now := time.Unix(1000, 0)
	obs.now = func() time.Time { return now }
	obs.Report()
	obs.Report()
	if got := obs.Sample(); got != 2 {
		t.Fatalf("Sample = %v", got)
	}
	now = now.Add(100 * time.Millisecond)
	if got := obs.Sample(); got != 0 {
		t.Fatalf("Sample after window = %v", got)
	}
}

func TestSinkReceivesTriggers(t *testing.T) {
	res := host.NewResources(100, 0.9, 1.0)
	var mu sync.Mutex
	var got []core.Trigger
	e := New(time.Hour, func(tr core.Trigger) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, tr)
	})
	e.AddProbe(BandwidthProbe("bw", res))
	e.AddRule(Rule{Probe: "bw", Cond: Below, Threshold: 1000, Trigger: core.TrigBandwidthDrop})
	e.Poll()
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != core.TrigBandwidthDrop {
		t.Fatalf("sink received %v", got)
	}
}

func TestEngineStartStopPolls(t *testing.T) {
	res := host.NewResources(100, 0.9, 1.0)
	e := New(5*time.Millisecond, nil)
	e.AddProbe(BandwidthProbe("bw", res))
	e.AddRule(Rule{Probe: "bw", Cond: Below, Threshold: 1000, Trigger: core.TrigBandwidthDrop})
	e.Start()
	deadline := time.Now().Add(2 * time.Second)
	for len(e.Fired()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	e.Stop()
	e.Stop() // idempotent
	if len(e.Fired()) == 0 {
		t.Fatal("periodic polling never fired")
	}
}

func TestUnknownProbeRuleIgnored(t *testing.T) {
	e := New(time.Hour, nil)
	e.AddRule(Rule{Probe: "ghost", Cond: Below, Threshold: 1, Trigger: core.TrigCPUDrop})
	if got := e.Poll(); len(got) != 0 {
		t.Fatalf("rule over missing probe fired: %v", got)
	}
	if len(e.Probes()) != 0 {
		t.Fatal("phantom probes listed")
	}
}

func TestBusyFractionProbe(t *testing.T) {
	var busy time.Duration
	var mu sync.Mutex
	p := BusyFractionProbe("load", func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return busy
	})
	if got := p.Sample(); got != 0 {
		t.Fatalf("first sample = %v, want 0", got)
	}
	// Simulate ~100%% busy: the counter advances with wall time.
	start := time.Now()
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	busy = time.Since(start)
	mu.Unlock()
	if got := p.Sample(); got < 0.5 {
		t.Fatalf("busy sample = %v, want >= 0.5", got)
	}
	// Idle window: counter frozen.
	time.Sleep(20 * time.Millisecond)
	if got := p.Sample(); got > 0.2 {
		t.Fatalf("idle sample = %v, want near 0", got)
	}
}
