package monitor

import (
	"testing"

	"resilientft/internal/core"
)

func TestSLOBreachProbeSamplesPaging(t *testing.T) {
	paging := false
	p := SLOBreachProbe("slo-page-0", func() bool { return paging })
	if p.Name() != "slo-page-0" {
		t.Fatalf("name = %q", p.Name())
	}
	if got := p.Sample(); got != 0 {
		t.Fatalf("idle sample = %v, want 0", got)
	}
	paging = true
	if got := p.Sample(); got != 1 {
		t.Fatalf("paging sample = %v, want 1", got)
	}
}

func TestBurnRateProbeSamplesBurn(t *testing.T) {
	burn := 0.0
	p := BurnRateProbe("slo-burn-0", func() float64 { return burn })
	if got := p.Sample(); got != 0 {
		t.Fatalf("sample = %v, want 0", got)
	}
	burn = 14.4
	if got := p.Sample(); got != 14.4 {
		t.Fatalf("sample = %v, want 14.4", got)
	}
}

// The breach probe composes with the rule engine like any resource
// probe: `Above 0.5, Consecutive 2` fires once per confirmed paging
// episode, edge-triggered.
func TestSLOBreachRuleFiresOncePerEpisode(t *testing.T) {
	paging := false
	var fired []core.Trigger
	e := New(0, func(tr core.Trigger) { fired = append(fired, tr) })
	e.AddProbe(SLOBreachProbe("slo-page", func() bool { return paging }))
	e.AddRule(Rule{
		Name:        "slo-page-confirmed",
		Probe:       "slo-page",
		Cond:        Above,
		Threshold:   0.5,
		Consecutive: 2,
		Trigger:     core.TrigCriticalPhase,
	})

	e.Poll() // idle
	paging = true
	e.Poll() // first paging poll: not yet confirmed
	if len(fired) != 0 {
		t.Fatalf("fired before Consecutive held: %v", fired)
	}
	e.Poll() // confirmed
	if len(fired) != 1 || fired[0] != core.TrigCriticalPhase {
		t.Fatalf("fired = %v, want one TrigCriticalPhase", fired)
	}
	e.Poll() // still paging: edge-triggered, no refire
	if len(fired) != 1 {
		t.Fatalf("refired while paging persisted: %v", fired)
	}
	paging = false
	e.Poll()
	paging = true
	e.Poll()
	e.Poll() // new episode, reconfirmed
	if len(fired) != 2 {
		t.Fatalf("second episode did not refire: %v", fired)
	}
}
