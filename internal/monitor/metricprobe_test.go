package monitor

import (
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/telemetry"
)

// pollAfter lets the rate probes see a non-zero interval between
// samples without depending on scheduler timing.
func pollAfter(e *Engine) []core.Trigger {
	time.Sleep(2 * time.Millisecond)
	return e.Poll()
}

// TestErrorRateRuleFiresOnceWithHysteresis drives a threshold rule from
// the error-rate probe: a spike of failed responses fires the trigger
// exactly once, a sustained spike does not re-fire it, and after the
// errors stop (rate back to zero) the rule clears and can fire again.
func TestErrorRateRuleFiresOnceWithHysteresis(t *testing.T) {
	reg := telemetry.NewRegistry()
	errs := reg.Counter("rpc_server_responses_total", "status", "unavailable")

	e := New(time.Hour, nil) // never self-polls; the test drives Poll
	defer e.Stop()
	e.AddProbe(ErrorRateProbe("error-rate", reg))
	trigger := core.Trigger("error-spike")
	e.AddRule(Rule{
		Name:      "error-spike",
		Probe:     "error-rate",
		Cond:      Above,
		Threshold: 0.0, // any positive error rate
		Trigger:   trigger,
	})

	// First poll establishes the rate baseline: no interval yet, so the
	// probe reports zero and nothing fires even though errors exist.
	errs.Add(5)
	if fired := e.Poll(); len(fired) != 0 {
		t.Fatalf("rule fired on the baseline sample: %v", fired)
	}

	// The counter grew since the baseline: the rate is positive and the
	// rule fires exactly once.
	errs.Add(5)
	if fired := pollAfter(e); len(fired) != 1 || fired[0] != trigger {
		t.Fatalf("spike poll fired %v, want [error-spike]", fired)
	}

	// The spike continues: the condition still holds, but hysteresis
	// keeps the trigger from firing again.
	errs.Add(10)
	if fired := pollAfter(e); len(fired) != 0 {
		t.Fatalf("sustained spike re-fired: %v", fired)
	}

	// Errors stop: the rate returns to zero and the rule clears.
	if fired := pollAfter(e); len(fired) != 0 {
		t.Fatalf("recovery poll fired: %v", fired)
	}

	// A fresh spike after recovery fires again — the edge re-arms.
	errs.Add(3)
	if fired := pollAfter(e); len(fired) != 1 {
		t.Fatalf("post-recovery spike fired %v, want one trigger", fired)
	}

	if total := len(e.Fired()); total != 2 {
		t.Fatalf("total fired = %d, want 2", total)
	}
}

// TestResyncRateProbeSumsFamily checks the resync probe rates over the
// whole ftm_resync_total family, both label sets included.
func TestResyncRateProbeSumsFamily(t *testing.T) {
	reg := telemetry.NewRegistry()
	primary := reg.Counter("ftm_resync_total", "side", "primary")
	backup := reg.Counter("ftm_resync_total", "side", "backup")

	p := ResyncRateProbe("resync-rate", reg)
	if v := p.Sample(); v != 0 {
		t.Fatalf("baseline sample = %v, want 0", v)
	}
	primary.Inc()
	backup.Inc()
	time.Sleep(2 * time.Millisecond)
	if v := p.Sample(); v <= 0 {
		t.Fatalf("sample after resyncs on both sides = %v, want > 0", v)
	}
}

// TestQuantileLatencyProbe checks the latency probe reads quantiles in
// milliseconds and reports zero before the series exists.
func TestQuantileLatencyProbe(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := P99LatencyProbe("p99", reg)
	if v := p.Sample(); v != 0 {
		t.Fatalf("sample before the series exists = %v, want 0", v)
	}
	h := reg.Histogram("rpc_server_request_latency")
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	v := p.Sample()
	// Power-of-two buckets: the observation lands in the (2.097ms]
	// bucket, so the reported quantile is its upper edge.
	if v < 2 || v > 8 {
		t.Fatalf("p99 = %vms, want within a bucket of 2ms", v)
	}
}

// TestSpanFedProbes drives the two trace-derived probes from recorded
// spans: p95 ship latency over "ftm.wave.ship" and slave apply lag over
// "ftm.replica.apply", and shows the ship-latency probe feeding a
// threshold rule.
func TestSpanFedProbes(t *testing.T) {
	spans := telemetry.NewSpanRecorder(64)
	ship := WaveShipLatencyProbe("ship-latency", spans)
	lag := SlaveApplyLagProbe("apply-lag", spans)
	if v := ship.Sample(); v != 0 {
		t.Fatalf("ship latency with no spans = %v, want 0", v)
	}
	if v := lag.Sample(); v != 0 {
		t.Fatalf("apply lag with no spans = %v, want 0", v)
	}

	parent := telemetry.SpanContext{TraceID: 7, SpanID: 1}
	base := time.Now()
	for i, d := range []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 40 * time.Millisecond,
	} {
		spans.Add(parent, "ftm.wave.ship", base.Add(time.Duration(i)), d, "ftm", "pbr")
	}
	spans.Add(parent, "ftm.replica.apply", base, 5*time.Millisecond, "kind", "pbr.delta")

	if v := ship.Sample(); v < 2 || v > 41 {
		t.Fatalf("ship p95 = %vms, want the 40ms tail to dominate", v)
	}
	if v := lag.Sample(); v != 5 {
		t.Fatalf("apply lag = %vms, want 5", v)
	}

	e := New(time.Hour, nil)
	defer e.Stop()
	e.AddProbe(ship)
	e.AddRule(Rule{
		Name: "slow-ship", Probe: "ship-latency",
		Cond: Above, Threshold: 10, Trigger: core.Trigger("ship-slow"),
	})
	if fired := e.Poll(); len(fired) != 1 || fired[0] != core.Trigger("ship-slow") {
		t.Fatalf("ship-latency rule fired %v, want [ship-slow]", fired)
	}
}
