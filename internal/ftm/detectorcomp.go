package ftm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/detector"
	"resilientft/internal/faultinject"
	"resilientft/internal/transport"
)

// TypeDetector is the component type of the failure-detector component.
const TypeDetector = "ftm.detector"

// detectorContent wraps the heartbeat/watchdog substrate as the "failure
// detector" component of Figure 6. It heartbeats the peer, watches the
// peer's heartbeats, and reports suspicion transitions to the protocol's
// control service. It falls silent with the host's crash switch.
type detectorContent struct {
	brickRefs

	mu       sync.Mutex
	ep       transport.Endpoint
	peer     transport.Address
	crash    *faultinject.CrashSwitch
	interval time.Duration
	timeout  time.Duration

	hb *detector.Heartbeater
	wd *detector.Watchdog
}

func newDetectorContent(ep transport.Endpoint, peer transport.Address, crash *faultinject.CrashSwitch, interval, timeout time.Duration) *detectorContent {
	if interval <= 0 {
		interval = 15 * time.Millisecond
	}
	if timeout <= 0 {
		timeout = 80 * time.Millisecond
	}
	return &detectorContent{ep: ep, peer: peer, crash: crash, interval: interval, timeout: timeout}
}

var (
	_ component.Content          = (*detectorContent)(nil)
	_ component.Lifecycle        = (*detectorContent)(nil)
	_ component.PropertyReceiver = (*detectorContent)(nil)
)

// SetProperty re-points the watched peer at runtime (membership changes
// after a failover in a multi-replica group).
func (d *detectorContent) SetProperty(name string, value any) error {
	if name != "peer" {
		return nil
	}
	var peer transport.Address
	switch v := value.(type) {
	case string:
		peer = transport.Address(v)
	case transport.Address:
		peer = v
	default:
		return fmt.Errorf("ftm: detector peer property is %T", value)
	}
	d.mu.Lock()
	old := d.peer
	d.peer = peer
	hb, wd := d.hb, d.wd
	d.mu.Unlock()
	if hb != nil {
		hb.SetPeers(peer)
	}
	if wd != nil && old != peer {
		wd.Forget(old)
		if peer != "" {
			wd.Monitor(peer)
		}
	}
	return nil
}

// OnStart launches the heartbeat and watchdog loops.
func (d *detectorContent) OnStart(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.hb = detector.NewHeartbeater(d.ep, d.interval, d.peer)
	d.wd = detector.NewWatchdog(d.ep, d.timeout, func(peer transport.Address, suspected bool) {
		protocol := d.ref("protocol")
		if protocol == nil {
			return
		}
		_, _ = protocol.Invoke(context.Background(), component.Message{Op: OpPeerChange, Payload: suspected})
	})
	d.wd.Monitor(d.peer)
	d.hb.Start()
	d.wd.Start()
	hb, wd := d.hb, d.wd
	if d.crash != nil {
		d.crash.OnTrip(func() {
			// A crashed host stops heartbeating and watching; Stop is
			// idempotent so a later OnStop is safe.
			go func() {
				hb.Stop()
				wd.Stop()
			}()
		})
	}
	return nil
}

// OnStop halts the loops.
func (d *detectorContent) OnStop(ctx context.Context) error {
	d.mu.Lock()
	hb, wd := d.hb, d.wd
	d.mu.Unlock()
	if hb != nil {
		hb.Stop()
	}
	if wd != nil {
		wd.Stop()
	}
	return nil
}

func (d *detectorContent) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	if service != "status" {
		return component.Message{}, fmt.Errorf("%w: service %q on detector", component.ErrNotFound, service)
	}
	d.mu.Lock()
	wd, peer := d.wd, d.peer
	d.mu.Unlock()
	suspected := wd != nil && wd.Suspected(peer)
	return component.NewMessage("ok", suspected), nil
}
