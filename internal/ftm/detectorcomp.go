package ftm

import (
	"context"
	"fmt"
	"sync"
	"time"

	"resilientft/internal/component"
	"resilientft/internal/detector"
	"resilientft/internal/faultinject"
	"resilientft/internal/host"
	"resilientft/internal/telemetry"
	"resilientft/internal/transport"
)

// TypeDetector is the component type of the failure-detector component.
const TypeDetector = "ftm.detector"

// detectorContent wraps the heartbeat/watchdog substrate as the "failure
// detector" component of Figure 6. It heartbeats the peer, watches the
// peer's heartbeats, and reports suspicion transitions to the protocol's
// control service. It falls silent with the host's crash switch.
type detectorContent struct {
	brickRefs

	mu       sync.Mutex
	ep       transport.Endpoint
	peer     transport.Address
	crash    *faultinject.CrashSwitch
	interval time.Duration
	timeout  time.Duration

	hb *detector.Heartbeater
	wd *detector.Watchdog
	// reported is the last suspected-bool edge sent per peer: the φ
	// detector grades alive/suspected/evicted, but the replication
	// protocol consumes a binary suspicion, so suspected→evicted must
	// not re-fire OpPeerChange.
	reported map[transport.Address]bool
	// health is the host's monitor (wired by deploy); the detector
	// contributes the heartbeat-quality collector to it.
	health *host.HealthMonitor
	// skew is the clock offset to apply to the watchdog (chaos
	// injection); kept here so a skew set before OnStart survives into
	// the watchdog it builds.
	skew time.Duration
}

func newDetectorContent(ep transport.Endpoint, peer transport.Address, crash *faultinject.CrashSwitch, interval, timeout time.Duration, health *host.HealthMonitor) *detectorContent {
	if interval <= 0 {
		interval = 15 * time.Millisecond
	}
	if timeout <= 0 {
		timeout = 80 * time.Millisecond
	}
	return &detectorContent{ep: ep, peer: peer, crash: crash, interval: interval, timeout: timeout, health: health}
}

var (
	_ component.Content          = (*detectorContent)(nil)
	_ component.Lifecycle        = (*detectorContent)(nil)
	_ component.PropertyReceiver = (*detectorContent)(nil)
)

// SetProperty re-points the watched peer at runtime (membership changes
// after a failover in a multi-replica group) or injects a clock-skew
// offset into the live watchdog (the chaos engine's clock fault).
func (d *detectorContent) SetProperty(name string, value any) error {
	if name == "clock-skew" {
		var skew time.Duration
		switch v := value.(type) {
		case time.Duration:
			skew = v
		case string:
			d, err := time.ParseDuration(v)
			if err != nil {
				return fmt.Errorf("ftm: detector clock-skew: %w", err)
			}
			skew = d
		default:
			return fmt.Errorf("ftm: detector clock-skew property is %T", value)
		}
		d.mu.Lock()
		d.skew = skew
		wd := d.wd
		d.mu.Unlock()
		if wd != nil {
			wd.SetSkew(skew)
		}
		return nil
	}
	if name == "reset" {
		// Re-arm the verdict for one peer: out-of-band proof of life (a
		// role-query reply during split-brain resolution) arrived while
		// the watchdog may still be holding an unrecovered suspicion.
		// The watchdog and the reported map survive role-change
		// reconfigurations (the detector is a fixed feature), so without
		// this a replica demoted mid-suspicion would never see another
		// suspicion edge for that peer — re-anchor the model and clear
		// the reported edge so the next real silence fires fresh.
		var peer transport.Address
		switch v := value.(type) {
		case string:
			peer = transport.Address(v)
		case transport.Address:
			peer = v
		default:
			return fmt.Errorf("ftm: detector reset property is %T", value)
		}
		if peer == "" {
			return nil
		}
		d.mu.Lock()
		wd := d.wd
		delete(d.reported, peer)
		d.mu.Unlock()
		if wd != nil {
			wd.Forget(peer)
			wd.Monitor(peer)
		}
		return nil
	}
	if name != "peer" {
		return nil
	}
	var peer transport.Address
	switch v := value.(type) {
	case string:
		peer = transport.Address(v)
	case transport.Address:
		peer = v
	default:
		return fmt.Errorf("ftm: detector peer property is %T", value)
	}
	d.mu.Lock()
	old := d.peer
	d.peer = peer
	hb, wd := d.hb, d.wd
	d.mu.Unlock()
	if hb != nil {
		hb.SetPeers(peer)
	}
	if wd != nil && old != peer {
		wd.Forget(old)
		if peer != "" {
			wd.Monitor(peer)
		}
	}
	return nil
}

// OnStart launches the heartbeat and watchdog loops.
func (d *detectorContent) OnStart(ctx context.Context) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reported = make(map[transport.Address]bool)
	d.hb = detector.NewHeartbeater(d.ep, d.interval, d.peer)
	d.wd = detector.NewWatchdog(d.ep, d.timeout, d.onTransition)
	if d.skew != 0 {
		d.wd.SetSkew(d.skew)
	}
	d.wd.Monitor(d.peer)
	d.hb.Start()
	d.wd.Start()
	if d.health != nil {
		// The detector contributes heartbeat quality as a health
		// dimension: the host degrades at half the suspect level and is
		// unhealthy at the suspect level itself, so /health flips while
		// the watchdog is still only accruing suspicion.
		wd := d.wd
		d.health.Register(host.NewHeartbeatCollector(wd.MaxPhi,
			detector.DefaultSuspectPhi/2, detector.DefaultSuspectPhi))
	}
	hb, wd := d.hb, d.wd
	if d.crash != nil {
		d.crash.OnTrip(func() {
			// A crashed host stops heartbeating and watching; Stop is
			// idempotent so a later OnStop is safe.
			go func() {
				hb.Stop()
				wd.Stop()
			}()
		})
	}
	return nil
}

// onTransition consumes graded watchdog transitions: the protocol gets
// the deduplicated binary suspicion edge (suspected→evicted is an
// escalation of an already-reported suspicion), and an eviction dumps
// the flight recorder — the black box captures the telemetry window in
// which the peer died, silence evidence included.
func (d *detectorContent) onTransition(tr detector.Transition) {
	if tr.To == detector.StateEvicted {
		telemetry.DumpBlackBox("peer-evicted",
			"peer", string(tr.Peer),
			"phi", fmt.Sprintf("%.2f", tr.Phi),
			"silence", tr.Silence.String(),
			"silent_since", tr.SilentSince.Format(time.RFC3339Nano))
	}
	suspected := tr.Suspected()
	d.mu.Lock()
	last, seen := d.reported[tr.Peer]
	if seen && last == suspected {
		d.mu.Unlock()
		return
	}
	if d.reported == nil {
		d.reported = make(map[transport.Address]bool)
	}
	d.reported[tr.Peer] = suspected
	d.mu.Unlock()
	protocol := d.ref("protocol")
	if protocol == nil {
		return
	}
	_, _ = protocol.Invoke(context.Background(), component.Message{Op: OpPeerChange, Payload: suspected})
}

// OnStop halts the loops.
func (d *detectorContent) OnStop(ctx context.Context) error {
	d.mu.Lock()
	hb, wd := d.hb, d.wd
	d.mu.Unlock()
	if hb != nil {
		hb.Stop()
	}
	if wd != nil {
		wd.Stop()
	}
	return nil
}

func (d *detectorContent) Invoke(ctx context.Context, service string, msg component.Message) (component.Message, error) {
	if service != "status" {
		return component.Message{}, fmt.Errorf("%w: service %q on detector", component.ErrNotFound, service)
	}
	d.mu.Lock()
	wd, peer := d.wd, d.peer
	d.mu.Unlock()
	suspected := wd != nil && wd.Suspected(peer)
	return component.NewMessage("ok", suspected), nil
}
