package ftm

import (
	"context"
	"testing"
	"time"

	"resilientft/internal/core"
	"resilientft/internal/faultinject"
	"resilientft/internal/fscript"
	"resilientft/internal/host"
	"resilientft/internal/rpc"
	"resilientft/internal/transport"
)

func TestCalculatorAlternateMatchesPrimary(t *testing.T) {
	primary := NewCalculator()
	alternate := NewCalculator()
	ops := []struct {
		op  string
		arg int64
	}{
		{"set:x", 10}, {"add:x", 5}, {"sub:x", 3}, {"get:x", 0},
		{"add:y", -7}, {"sub:y", -2}, {"set:z", 0}, {"get:z", 0},
	}
	for _, tc := range ops {
		p, pb, err := primary.Process(tc.op, tc.arg)
		if err != nil {
			t.Fatal(err)
		}
		a, ab, err := alternate.ProcessAlternate(tc.op, tc.arg)
		if err != nil {
			t.Fatal(err)
		}
		if p != a || pb != ab {
			t.Fatalf("%s %d: primary (%d,%d) vs alternate (%d,%d)", tc.op, tc.arg, p, pb, a, ab)
		}
	}
}

func TestCalculatorBugOnlyAffectsPrimary(t *testing.T) {
	c := NewCalculator()
	c.SetBug("add")
	got, _, err := c.Process("add:x", 5)
	if err != nil {
		t.Fatal(err)
	}
	if got == 5 {
		t.Fatal("bug did not fire in the primary path")
	}
	// State stayed correct; only the reported result is wrong.
	if c.regs.Get("x") != 5 {
		t.Fatalf("state corrupted by the reply-path bug: %d", c.regs.Get("x"))
	}
	alt, _, err := c.ProcessAlternate("add:x", 5)
	if err != nil {
		t.Fatal(err)
	}
	if alt != 10 {
		t.Fatalf("alternate affected by the primary's bug: %d", alt)
	}
	c.SetBug("")
	if got, _, _ := c.Process("get:x", 0); got != 10 {
		t.Fatalf("bug not cleared: %d", got)
	}
}

// rbSystem deploys a single-host-per-replica RB⊕PBR system with the
// master application exposed for fault planting.
func rbSystem(t *testing.T, ftmID core.ID) (*System, *Calculator) {
	t.Helper()
	var masterApp *Calculator
	cfg := SystemConfig{
		System:            "rb",
		FTM:               ftmID,
		HeartbeatInterval: 10 * time.Millisecond,
		SuspectTimeout:    60 * time.Millisecond,
		AppFactory: func() Application {
			c := NewCalculator()
			if masterApp == nil {
				masterApp = c
			}
			return c
		},
	}
	s, err := NewSystem(context.Background(), cfg)
	if err != nil {
		t.Fatalf("NewSystem(%s): %v", ftmID, err)
	}
	t.Cleanup(s.Shutdown)
	return s, masterApp
}

func TestRecoveryBlocksMaskSoftwareFault(t *testing.T) {
	s, app := rbSystem(t, core.RBPBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 100)

	// Plant a development fault in the primary variant: without recovery
	// blocks every add would be answered wrongly, and time redundancy
	// would NOT catch it (both executions are equally wrong).
	app.SetBug("add")
	if got := invoke(t, c, "add:x", 11); got != 111 {
		t.Fatalf("RB result under software fault = %d, want 111", got)
	}
	if got := invoke(t, c, "get:x", 0); got != 111 {
		t.Fatalf("state after RB recovery = %d, want 111", got)
	}
}

func TestTimeRedundancyDoesNotMaskSoftwareFault(t *testing.T) {
	// Negative control for the RB claim: LFR⊕TR re-executes the same
	// buggy code and happily agrees with itself.
	s, app := rbSystem(t, core.LFRTR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 100)
	app.SetBug("add")
	if got := invoke(t, c, "add:x", 11); got == 111 {
		t.Fatal("TR unexpectedly masked a deterministic software fault")
	}
}

func TestRecoveryBlocksMaskTransientFault(t *testing.T) {
	s, app := rbSystem(t, core.RBPBR)
	inj := faultinject.NewValueInjector(31)
	app.SetInjector(inj)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 50)
	inj.InjectTransient(1)
	if got := invoke(t, c, "add:x", 5); got != 55 {
		t.Fatalf("RB result under transient fault = %d, want 55", got)
	}
}

func TestAcceptanceTestUpdateByReconfiguration(t *testing.T) {
	// The paper: "for RB, an update consists of changing the acceptance
	// test" — an intra-FTM property reconfiguration, no brick replaced.
	s, app := rbSystem(t, core.RBPBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	master := s.Master()
	rt := master.Host().Runtime()

	// Degrade the acceptance test to the trivial one via a script.
	script := fscript.MustParse(`set rb/proceed.acceptance = "none"`)
	if _, err := fscript.Execute(context.Background(), rt, script, fscript.Env{}); err != nil {
		t.Fatalf("acceptance update: %v", err)
	}
	app.SetBug("add")
	invoke(t, c, "set:x", 10)
	if got := invoke(t, c, "add:x", 5); got == 15 {
		t.Fatal("trivial acceptance test still rejected the bug (update had no effect)")
	}

	// Upgrade back to the inverse check: the bug is rejected again.
	script = fscript.MustParse(`set rb/proceed.acceptance = "inverse"`)
	if _, err := fscript.Execute(context.Background(), rt, script, fscript.Env{}); err != nil {
		t.Fatalf("acceptance upgrade: %v", err)
	}
	if got := invoke(t, c, "add:x", 5); got != 20 {
		t.Fatalf("inverse acceptance test did not recover: %d, want 20", got)
	}
}

func TestRBRejectsBadAcceptanceSpecs(t *testing.T) {
	brick := &rbProceed{}
	if err := brick.SetProperty("acceptance", "bogus"); err == nil {
		t.Fatal("bogus acceptance mode accepted")
	}
	if err := brick.SetProperty("acceptance", "range:abc"); err == nil {
		t.Fatal("malformed range bound accepted")
	}
	if err := brick.SetProperty("acceptance", "range:1000"); err != nil {
		t.Fatalf("valid range rejected: %v", err)
	}
}

func newTMRReplica(t *testing.T) (*Replica, *Calculator, *rpc.Client) {
	t.Helper()
	net := transport.NewMemNetwork(transport.WithSeed(3))
	h, err := host.New("tmr-host", net, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Crash)
	app := NewCalculator()
	r, err := NewReplica(context.Background(), h, ReplicaConfig{
		System: "tmr",
		FTM:    core.TMRT,
		Role:   core.RoleMaster,
		App:    app,
	})
	if err != nil {
		t.Fatalf("NewReplica(TMRT): %v", err)
	}
	cep, err := net.Endpoint("client")
	if err != nil {
		t.Fatal(err)
	}
	return r, app, rpc.NewClient("c1", cep, []transport.Address{h.Addr()})
}

func TestTMRMasksTransientFault(t *testing.T) {
	_, app, c := newTMRReplica(t)
	inj := faultinject.NewValueInjector(41)
	app.SetInjector(inj)
	invoke(t, c, "set:x", 9)
	inj.InjectTransient(1)
	if got := invoke(t, c, "add:x", 1); got != 10 {
		t.Fatalf("TMR result under transient fault = %d, want 10", got)
	}
}

func TestTMRDeciderUpgradeByReconfiguration(t *testing.T) {
	// The paper: "for TMR, an update consists of replacing the decision
	// algorithm". Three distinct corruptions defeat majority voting but
	// not the median decider.
	r, app, c := newTMRReplica(t)
	inj := faultinject.NewValueInjector(43)
	app.SetInjector(inj)
	invoke(t, c, "set:x", 9)

	inj.InjectTransient(3) // every execution corrupted differently
	resp, err := c.Invoke(context.Background(), "add:x", EncodeArg(1))
	if err == nil {
		v, _ := DecodeResult(resp.Payload)
		if v != 10 {
			t.Fatalf("majority decider answered %d under triple corruption", v)
		}
	}

	// Upgrade the decider via an intra-FTM reconfiguration.
	rt := r.Host().Runtime()
	script := fscript.MustParse(`set tmr/proceed.decider = "median"`)
	if _, err := fscript.Execute(context.Background(), rt, script, fscript.Env{}); err != nil {
		t.Fatalf("decider update: %v", err)
	}
	for inj.Armed() {
		inj.Apply(0) // drain leftovers deterministically
	}
	invoke(t, c, "set:x", 9)
	inj.InjectTransient(1)
	if got := invoke(t, c, "add:x", 1); got != 10 {
		t.Fatalf("median decider result = %d, want 10", got)
	}
}

func TestTMRUnanimousDecider(t *testing.T) {
	r, app, c := newTMRReplica(t)
	rt := r.Host().Runtime()
	script := fscript.MustParse(`set tmr/proceed.decider = "unanimous"`)
	if _, err := fscript.Execute(context.Background(), rt, script, fscript.Env{}); err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 4)
	// Clean run passes unanimously.
	if got := invoke(t, c, "add:x", 1); got != 5 {
		t.Fatalf("unanimous clean run = %d", got)
	}
	// A single corruption defeats unanimity (majority would mask it) —
	// the client gets an error, not a wrong value.
	inj := faultinject.NewValueInjector(47)
	app.SetInjector(inj)
	inj.InjectTransient(1)
	resp, err := c.Invoke(context.Background(), "add:x", EncodeArg(1))
	if err == nil {
		v, _ := DecodeResult(resp.Payload)
		if v != 6 {
			t.Fatalf("unanimous decider delivered a wrong value: %d", v)
		}
	}
}

func TestExtensionCatalogue(t *testing.T) {
	ext := core.Extensions()
	if len(ext) != 3 {
		t.Fatalf("extensions = %d", len(ext))
	}
	rb := core.MustLookup(core.RBPBR)
	if !rb.Tolerates.Has(core.FaultSoftware) {
		t.Fatal("RB does not claim software-fault tolerance")
	}
	// Selection reaches the extension when software faults are required.
	d, err := core.Select(
		core.NewFaultModel(core.FaultCrash, core.FaultSoftware),
		core.AppTraits{Deterministic: true, StateAccess: true},
		core.ResourceState{BandwidthKbps: 10_000, CPUFree: 0.9, Energy: 1, Hosts: 2},
		core.DefaultThresholds())
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != core.RBPBR {
		t.Fatalf("Select for software faults = %s", d.ID)
	}
}

func TestDifferentialTransitionToRB(t *testing.T) {
	// A running PBR system hardens against software faults by swapping
	// one brick: proceed.compute -> proceed.rb.
	s, app := rbSystem(t, core.PBR)
	c, err := s.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	invoke(t, c, "set:x", 7)

	master := s.Master()
	rt := master.Host().Runtime()
	from := core.MustLookup(core.PBR).MasterScheme
	to := core.MustLookup(core.RBPBR).MasterScheme
	if diff := core.Diff(from, to); len(diff) != 1 {
		t.Fatalf("PBR -> RB⊕PBR replaces %v, want just the proceed", diff)
	}
	script, env, err := TransitionScript(master.Path(), from, to)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Stop(context.Background(), master.Path()); err != nil {
		t.Fatal(err)
	}
	if _, err := fscript.Execute(context.Background(), rt, script, env); err != nil {
		t.Fatalf("transition to RB: %v", err)
	}
	if err := rt.Start(context.Background(), master.Path()); err != nil {
		t.Fatal(err)
	}
	app.SetBug("add")
	if got := invoke(t, c, "add:x", 3); got != 10 {
		t.Fatalf("post-transition RB result = %d, want 10", got)
	}
}
